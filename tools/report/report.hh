// replikit-report: turns one run's observability artifacts — Chrome trace
// JSON (TRACE_*.json), NDJSON metrics (STATS_*.ndjson), and bench reports
// (BENCH_*.json) — into a markdown report: measured ASCII phase diagrams
// per technique (regenerated from spans, validating the figure pipeline),
// health tables (staleness, divergence, aborts, failover), and a cross-run
// comparison when several bench reports are given.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace repli::tools {

struct TraceSpan {
  std::int64_t node = -1;
  std::uint64_t trace = 0;  // causal trace id (0 when absent)
  std::string name;
  std::string request;
  double ts = 0;
  double dur = 0;
  bool instant = false;
};

struct TraceFlow {
  std::int64_t id = 0;
  std::uint64_t trace = 0;
  std::string name;
  std::int64_t from = -1;
  std::int64_t to = -1;
  double sent = 0;
  double recv = 0;
};

struct TraceData {
  std::string tag;  // TRACE_<tag>.json
  std::vector<TraceSpan> spans;
  std::vector<TraceFlow> flows;  // matched s/f pairs
};

/// One parsed STATS_*.ndjson line (counter/gauge/histogram as JSON).
struct StatsData {
  std::string tag;
  std::vector<obs::JsonValue> metrics;
};

struct BenchData {
  std::string name;  // BENCH_<name>.json
  std::string git_sha;
  obs::JsonValue doc;
};

/// Parses Chrome trace_event JSON (the exporter's format). Nullopt on
/// malformed input; unmatched flow halves are dropped.
std::optional<TraceData> parse_chrome_trace(std::string_view text, std::string tag = "");

std::optional<StatsData> parse_stats_ndjson(std::string_view text, std::string tag = "");

std::optional<BenchData> parse_bench_json(std::string_view text, std::string name = "");

/// Request ids appearing in core/ phase spans, in first-appearance order.
std::vector<std::string> trace_requests(const TraceData& trace);

/// Measured phase pattern of `request` (e.g. "RE SC EX END"): phases
/// ordered by the earliest time any node entered them — the same rule
/// sim::Trace::pattern applies, but recomputed from the exported artifact.
std::string trace_pattern(const TraceData& trace, const std::string& request);

/// Nodes touched by `request`'s phase spans.
std::vector<std::int64_t> trace_nodes(const TraceData& trace, const std::string& request);

/// ASCII phase diagram of one request (paper-figure style).
void write_ascii_timeline(const TraceData& trace, const std::string& request, std::ostream& os);

struct ReportInputs {
  std::vector<TraceData> traces;
  std::vector<StatsData> stats;
  std::vector<BenchData> benches;
};

/// Emits the full markdown report.
void write_report(const ReportInputs& inputs, std::ostream& os);

/// CLI: replikit-report [-o out.md] <files-or-dirs...>. Scans directories
/// for TRACE_*.json / STATS_*.ndjson / BENCH_*.json. Returns a process
/// exit code (0 ok; 1 usage or I/O error; 2 no inputs found).
int report_main(int argc, char** argv);

}  // namespace repli::tools
