// replikit-report: turns one run's observability artifacts — Chrome trace
// JSON (TRACE_*.json), NDJSON metrics (STATS_*.ndjson), and bench reports
// (BENCH_*.json) — into a markdown report: measured ASCII phase diagrams
// per technique (regenerated from spans, validating the figure pipeline),
// health tables (staleness, divergence, aborts, failover), and a cross-run
// comparison when several bench reports are given.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace repli::tools {

struct TraceSpan {
  std::int64_t node = -1;
  std::uint64_t trace = 0;  // causal trace id (0 when absent)
  std::string name;
  std::string request;
  double ts = 0;
  double dur = 0;
  bool instant = false;
};

struct TraceFlow {
  std::int64_t id = 0;
  std::uint64_t trace = 0;
  std::string name;
  std::int64_t from = -1;
  std::int64_t to = -1;
  double sent = 0;
  double recv = 0;
};

struct TraceData {
  std::string tag;  // TRACE_<tag>.json
  std::vector<TraceSpan> spans;
  std::vector<TraceFlow> flows;  // matched s/f pairs
};

/// One parsed STATS_*.ndjson line (counter/gauge/histogram as JSON).
struct StatsData {
  std::string tag;
  std::vector<obs::JsonValue> metrics;
};

struct BenchData {
  std::string name;  // BENCH_<name>.json
  std::string git_sha;
  obs::JsonValue doc;
};

/// One parsed PROF_<name>.json cost-accounting report (schema v1: the
/// profiler's per-cost-center self-time and heap activity).
struct ProfData {
  std::string name;  // PROF_<name>.json
  std::string git_sha;
  obs::JsonValue doc;
};

/// One parsed CRIT_<name>.json critical-path report (schema v1: per-txn
/// causal waterfall segments plus the per-segment percentile summary and
/// p99-vs-p50 tail differential).
struct CritData {
  std::string name;  // CRIT_<name>.json
  obs::JsonValue doc;
};

/// Parses Chrome trace_event JSON (the exporter's format). Nullopt on
/// malformed input; unmatched flow halves are dropped.
std::optional<TraceData> parse_chrome_trace(std::string_view text, std::string tag = "");

std::optional<StatsData> parse_stats_ndjson(std::string_view text, std::string tag = "");

std::optional<BenchData> parse_bench_json(std::string_view text, std::string name = "");

std::optional<ProfData> parse_prof_json(std::string_view text, std::string name = "");

std::optional<CritData> parse_crit_json(std::string_view text, std::string name = "");

/// Request ids appearing in core/ phase spans, in first-appearance order.
std::vector<std::string> trace_requests(const TraceData& trace);

/// Measured phase pattern of `request` (e.g. "RE SC EX END"): phases
/// ordered by the earliest time any node entered them — the same rule
/// sim::Trace::pattern applies, but recomputed from the exported artifact.
std::string trace_pattern(const TraceData& trace, const std::string& request);

/// Nodes touched by `request`'s phase spans.
std::vector<std::int64_t> trace_nodes(const TraceData& trace, const std::string& request);

/// ASCII phase diagram of one request (paper-figure style).
void write_ascii_timeline(const TraceData& trace, const std::string& request, std::ostream& os);

struct ReportInputs {
  std::vector<TraceData> traces;
  std::vector<StatsData> stats;
  std::vector<BenchData> benches;
  std::vector<ProfData> profs;
  std::vector<CritData> crits;
};

/// Emits the full markdown report.
void write_report(const ReportInputs& inputs, std::ostream& os);

/// Emits the latency-waterfall markdown document from CRIT_*.json inputs:
/// one ASCII waterfall + tail-differential table per artifact, the slowest
/// transactions with their full critical paths, and a cross-technique
/// comparison when several artifacts are given. Output is deterministic for
/// deterministic inputs (golden-file tested).
void write_waterfall(const std::vector<CritData>& crits, std::ostream& os);

/// Recomputes folded flamegraph stacks ("node<N>;root;...;leaf <self-us>",
/// lexicographically sorted, instants and zero-self stacks dropped) from a
/// parsed Chrome trace, applying the tracer's containment rule to the
/// exported spans. Matches obs::write_folded for traces without explicit
/// parent overrides (the export does not carry those).
void write_folded_from_trace(const TraceData& trace, std::ostream& os);

/// One gate violation found by check_against_baseline.
struct CheckIssue {
  std::string artifact;  // e.g. "BENCH_perf_workloads"
  std::string row;       // row identity (technique+config+sweep key, op, center)
  std::string metric;
  double base = 0;
  double fresh = 0;
  std::string message;  // human-readable verdict
};

struct CheckResult {
  std::size_t compared = 0;  // metric comparisons performed
  std::vector<CheckIssue> regressions;
  bool ok() const { return regressions.empty(); }
};

/// Perf-regression gate: compares fresh BENCH/PROF artifacts against a
/// baseline set. Rows are matched by identity (workload rows: technique +
/// config + seed + sweep fields; micro rows: "op"; prof rows: cost center),
/// then each gated metric is checked against a per-metric direction and
/// relative threshold. A baseline artifact or row with no fresh counterpart
/// is itself a regression (coverage must not silently shrink).
CheckResult check_against_baseline(const ReportInputs& baseline, const ReportInputs& fresh);

/// CLI: replikit-report [-o out.md] <files-or-dirs...>
///      replikit-report --check --baseline DIR <files-or-dirs...>
///      replikit-report flame <TRACE_*.json> [-o out.folded]
///      replikit-report waterfall <files-or-dirs...> [-o out.md]
/// Scans directories for TRACE_*.json / STATS_*.ndjson / BENCH_*.json /
/// PROF_*.json / CRIT_*.json. Returns a process exit code (0 ok; 1 usage
/// or I/O error; 2 no inputs found; 3 regression gate failed; 4 truncated
/// or malformed artifact).
int report_main(int argc, char** argv);

}  // namespace repli::tools
