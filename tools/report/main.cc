#include "tools/report/report.hh"

int main(int argc, char** argv) { return repli::tools::report_main(argc, argv); }
