#include "tools/report/report.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "core/technique.hh"
#include "sim/trace.hh"

namespace repli::tools {

namespace {

using obs::JsonValue;

std::string str_or(const JsonValue* v, std::string def = "") {
  return v != nullptr && v->is(JsonValue::Type::String) ? v->str : std::move(def);
}

double num_or(const JsonValue* v, double def = 0) {
  return v != nullptr && v->is(JsonValue::Type::Number) ? v->number : def;
}

std::string label_of(const JsonValue& line, std::string_view key) {
  const auto* labels = line.find("labels");
  return labels != nullptr ? str_or(labels->find(key)) : "";
}

/// Spans named "core/<abbrev>" are the functional-model phase events.
struct PhaseSpan {
  std::int64_t node = -1;
  sim::Phase phase{};
  double start = 0;
  double end = 0;
};

std::optional<sim::Phase> span_phase(const TraceSpan& span) {
  constexpr std::string_view kPrefix = "core/";
  if (span.name.rfind(kPrefix, 0) != 0) return std::nullopt;
  return sim::phase_from_abbrev(std::string_view(span.name).substr(kPrefix.size()));
}

std::vector<PhaseSpan> phase_spans(const TraceData& trace, const std::string& request) {
  std::vector<PhaseSpan> out;
  for (const auto& span : trace.spans) {
    if (span.request != request) continue;
    const auto phase = span_phase(span);
    if (!phase.has_value()) continue;
    out.push_back(PhaseSpan{span.node, *phase, span.ts, span.ts + span.dur});
  }
  std::stable_sort(out.begin(), out.end(), [](const PhaseSpan& a, const PhaseSpan& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.node < b.node;
  });
  return out;
}

/// Bench trace tags are "<technique-name-sanitized>-<seq>"; map back to the
/// technique by longest sanitized-name prefix match.
const core::TechniqueInfo* technique_for_tag(const std::string& tag) {
  const core::TechniqueInfo* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& info : core::all_techniques()) {
    std::string sanitized(info.name);
    for (auto& ch : sanitized) {
      if (std::isalnum(static_cast<unsigned char>(ch)) == 0) ch = '-';
    }
    const bool matches =
        tag == sanitized ||
        (tag.size() > sanitized.size() && tag.rfind(sanitized + "-", 0) == 0);
    if (matches && sanitized.size() > best_len) {
      best = &info;
      best_len = sanitized.size();
    }
  }
  return best;
}

const core::TechniqueInfo* technique_for_name(const std::string& name) {
  for (const auto& info : core::all_techniques()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

std::string fmt(double v, int precision = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string read_file_error;  // last I/O failure, for the CLI's diagnostics

std::optional<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    read_file_error = "cannot open " + path.string();
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    read_file_error = "read failed for " + path.string();
    return std::nullopt;
  }
  return buf.str();
}

}  // namespace

std::optional<TraceData> parse_chrome_trace(std::string_view text, std::string tag) {
  const auto doc = obs::json_parse(text);
  if (!doc.has_value()) return std::nullopt;
  const auto* events = doc->find("traceEvents");
  if (events == nullptr || !events->is(JsonValue::Type::Array)) return std::nullopt;
  TraceData out;
  out.tag = std::move(tag);
  std::map<std::int64_t, TraceFlow> pending;  // flow starts awaiting their finish
  for (const auto& ev : events->array) {
    if (!ev.is(JsonValue::Type::Object)) return std::nullopt;
    const std::string ph = str_or(ev.find("ph"));
    const auto* args = ev.find("args");
    if (ph == "X" || ph == "i") {
      TraceSpan span;
      span.node = static_cast<std::int64_t>(num_or(ev.find("tid"), -1));
      span.name = str_or(ev.find("name"));
      span.ts = num_or(ev.find("ts"));
      span.dur = num_or(ev.find("dur"));
      span.instant = ph == "i";
      if (args != nullptr) {
        span.request = str_or(args->find("request"));
        span.trace = static_cast<std::uint64_t>(num_or(args->find("trace")));
      }
      out.spans.push_back(std::move(span));
    } else if (ph == "s") {
      TraceFlow flow;
      flow.id = static_cast<std::int64_t>(num_or(ev.find("id"), -1));
      flow.name = str_or(ev.find("name"));
      flow.from = static_cast<std::int64_t>(num_or(ev.find("tid"), -1));
      flow.sent = num_or(ev.find("ts"));
      if (args != nullptr) flow.trace = static_cast<std::uint64_t>(num_or(args->find("trace")));
      pending[flow.id] = flow;
    } else if (ph == "f") {
      const auto it = pending.find(static_cast<std::int64_t>(num_or(ev.find("id"), -1)));
      if (it == pending.end()) continue;  // finish without start: drop
      it->second.to = static_cast<std::int64_t>(num_or(ev.find("tid"), -1));
      it->second.recv = num_or(ev.find("ts"));
      out.flows.push_back(it->second);
      pending.erase(it);
    }
    // "M" metadata and anything else: ignored.
  }
  return out;
}

std::optional<StatsData> parse_stats_ndjson(std::string_view text, std::string tag) {
  StatsData out;
  out.tag = std::move(tag);
  std::size_t pos = 0;
  while (pos < text.size()) {
    auto eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const auto line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.find_first_not_of(" \t\r") == std::string_view::npos) continue;
    auto value = obs::json_parse(line);
    if (!value.has_value() || !value->is(JsonValue::Type::Object)) return std::nullopt;
    out.metrics.push_back(std::move(*value));
  }
  return out;
}

std::optional<BenchData> parse_bench_json(std::string_view text, std::string name) {
  auto doc = obs::json_parse(text);
  if (!doc.has_value() || !doc->is(JsonValue::Type::Object)) return std::nullopt;
  BenchData out;
  out.name = std::move(name);
  if (out.name.empty()) out.name = str_or(doc->find("bench"), "(unnamed)");
  if (const auto* prov = doc->find("provenance"); prov != nullptr) {
    out.git_sha = str_or(prov->find("git_sha"), "unknown");
  } else {
    out.git_sha = "unknown";  // schema v1 reports predate provenance
  }
  out.doc = std::move(*doc);
  return out;
}

std::optional<ProfData> parse_prof_json(std::string_view text, std::string name) {
  auto doc = obs::json_parse(text);
  if (!doc.has_value() || !doc->is(JsonValue::Type::Object)) return std::nullopt;
  if (doc->find("centers") == nullptr) return std::nullopt;  // not a profiler report
  ProfData out;
  out.name = std::move(name);
  if (out.name.empty()) out.name = str_or(doc->find("prof"), "(unnamed)");
  if (const auto* prov = doc->find("provenance"); prov != nullptr) {
    out.git_sha = str_or(prov->find("git_sha"), "unknown");
  } else {
    out.git_sha = "unknown";
  }
  out.doc = std::move(*doc);
  return out;
}

std::optional<CritData> parse_crit_json(std::string_view text, std::string name) {
  auto doc = obs::json_parse(text);
  if (!doc.has_value() || !doc->is(JsonValue::Type::Object)) return std::nullopt;
  const auto* summary = doc->find("summary");
  if (summary == nullptr || !summary->is(JsonValue::Type::Object)) return std::nullopt;
  const auto* txns = doc->find("txns");
  if (txns == nullptr || !txns->is(JsonValue::Type::Array)) return std::nullopt;
  CritData out;
  out.name = std::move(name);
  if (out.name.empty()) out.name = str_or(doc->find("crit"), "(unnamed)");
  out.doc = std::move(*doc);
  return out;
}

std::vector<std::string> trace_requests(const TraceData& trace) {
  std::vector<std::string> out;
  for (const auto& span : trace.spans) {
    if (span.request.empty() || !span_phase(span).has_value()) continue;
    if (std::find(out.begin(), out.end(), span.request) == out.end()) {
      out.push_back(span.request);
    }
  }
  return out;
}

std::string trace_pattern(const TraceData& trace, const std::string& request) {
  // Same rule as sim::Trace::pattern: phases ordered by the earliest time
  // any node entered them, concurrent same-phase occurrences merged.
  std::map<sim::Phase, double> first_start;
  for (const auto& ev : phase_spans(trace, request)) {
    const auto [it, inserted] = first_start.emplace(ev.phase, ev.start);
    if (!inserted) it->second = std::min(it->second, ev.start);
  }
  std::vector<std::pair<double, sim::Phase>> ordered;
  ordered.reserve(first_start.size());
  for (const auto& [phase, t] : first_start) ordered.emplace_back(t, phase);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return static_cast<int>(a.second) < static_cast<int>(b.second);
  });
  std::vector<sim::Phase> pattern;
  pattern.reserve(ordered.size());
  for (const auto& [t, phase] : ordered) pattern.push_back(phase);
  return sim::pattern_to_string(pattern);
}

std::vector<std::int64_t> trace_nodes(const TraceData& trace, const std::string& request) {
  std::set<std::int64_t> nodes;
  for (const auto& ev : phase_spans(trace, request)) nodes.insert(ev.node);
  return {nodes.begin(), nodes.end()};
}

void write_ascii_timeline(const TraceData& trace, const std::string& request,
                          std::ostream& os) {
  const auto events = phase_spans(trace, request);
  if (events.empty()) {
    os << "  (no phase events recorded)\n";
    return;
  }
  double t_min = events.front().start;
  double t_max = t_min;
  for (const auto& ev : events) {
    t_min = std::min(t_min, ev.start);
    t_max = std::max(t_max, ev.end);
  }
  const double span = std::max(1.0, t_max - t_min);
  constexpr int kCols = 60;

  std::map<std::int64_t, std::string> rows;
  for (const auto& ev : events) {
    auto& row = rows.try_emplace(ev.node, std::string(kCols + 1, '.')).first->second;
    const int a = static_cast<int>((ev.start - t_min) / span * kCols);
    const int b = std::max(a, static_cast<int>((ev.end - t_min) / span * kCols));
    const auto abbrev = sim::phase_abbrev(ev.phase);
    for (int i = a; i <= b && i <= kCols; ++i) {
      row[static_cast<std::size_t>(i)] =
          abbrev[static_cast<std::size_t>((i - a) % static_cast<int>(abbrev.size()))];
    }
  }
  os << "  timeline (" << fmt(t_max - t_min, 0) << "us total, request " << request << ")\n";
  for (const auto& [node, row] : rows) {
    os << "    " << std::left << std::setw(18) << ("node " + std::to_string(node)) << " |"
       << row << "|\n";
  }
  os << "    legend: RE request  SC server-coordination  EX execution  "
        "AC agreement-coordination  END response\n";
}

namespace {

void write_trace_section(const TraceData& trace, std::ostream& os) {
  os << "### `" << (trace.tag.empty() ? "(trace)" : trace.tag) << "`\n\n";
  const auto* info = technique_for_tag(trace.tag);
  if (info != nullptr) {
    os << "- technique: **" << info->name << "** (" << info->figure << "), paper pattern `"
       << info->paper_pattern << "`\n";
  }

  // Causal-trace summary: distinct trace ids, and how many tie >= 3 nodes
  // together (the cross-node causality the wire context exists for).
  std::map<std::uint64_t, std::set<std::int64_t>> trace_node_sets;
  for (const auto& span : trace.spans) {
    if (span.trace != 0) trace_node_sets[span.trace].insert(span.node);
  }
  for (const auto& flow : trace.flows) {
    if (flow.trace != 0) {
      trace_node_sets[flow.trace].insert(flow.from);
      trace_node_sets[flow.trace].insert(flow.to);
    }
  }
  std::size_t wide = 0;
  for (const auto& [id, nodes] : trace_node_sets) {
    if (nodes.size() >= 3) ++wide;
  }
  const auto requests = trace_requests(trace);
  os << "- requests traced: " << requests.size() << ", message flows: " << trace.flows.size()
     << ", causal traces: " << trace_node_sets.size() << " (" << wide
     << " spanning >= 3 nodes)\n";

  if (requests.empty()) {
    os << "- no phase spans recorded\n\n";
    return;
  }
  // Pattern census over every request. The paper's figures depict update
  // transactions; reads legitimately measure shorter patterns (no AC under
  // lazy schemes, for one), so the verdict uses a representative request —
  // the first whose pattern reproduces the figure, if any does.
  std::vector<std::string> patterns;
  patterns.reserve(requests.size());
  std::map<std::string, std::size_t> census;
  for (const auto& r : requests) {
    patterns.push_back(trace_pattern(trace, r));
    ++census[patterns.back()];
  }
  os << "- measured patterns: ";
  bool first = true;
  for (const auto& [pattern, n] : census) {
    os << (first ? "" : ", ") << "`" << pattern << "` x" << n;
    first = false;
  }
  os << "\n";
  std::size_t rep = 0;
  if (info != nullptr) {
    for (std::size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i] == info->paper_pattern) {
        rep = i;
        break;
      }
    }
  }
  const auto& request = requests[rep];
  const auto& measured = patterns[rep];
  os << "- request `" << request << "`: measured pattern `" << measured << "`";
  if (info != nullptr) {
    os << (measured == info->paper_pattern ? " — matches the paper figure"
                                           : " — DIFFERS from the paper figure");
  }
  os << "\n\n```\n";
  write_ascii_timeline(trace, request, os);
  os << "```\n\n";
}

void write_health_section(const StatsData& stats, std::ostream& os) {
  os << "### `" << (stats.tag.empty() ? "(run)" : stats.tag) << "`\n\n";

  // Staleness: one histogram per node for version lag and for age.
  struct NodeStaleness {
    const JsonValue* versions = nullptr;
    const JsonValue* age = nullptr;
  };
  std::map<std::string, NodeStaleness> staleness;
  const JsonValue* divergence_window_us = nullptr;
  const JsonValue* failover_us = nullptr;
  double divergence_windows = 0;
  std::map<std::string, double> aborts;
  for (const auto& line : stats.metrics) {
    const auto metric = str_or(line.find("metric"));
    if (metric == "monitor.staleness_versions") {
      staleness[label_of(line, "node")].versions = &line;
    } else if (metric == "monitor.staleness_age_us") {
      staleness[label_of(line, "node")].age = &line;
    } else if (metric == "monitor.divergence_window_us") {
      divergence_window_us = &line;
    } else if (metric == "monitor.divergence_windows") {
      divergence_windows = num_or(line.find("value"));
    } else if (metric == "monitor.failover_us") {
      failover_us = &line;
    } else if (metric == "monitor.aborts") {
      aborts[label_of(line, "cause")] += num_or(line.find("value"));
    }
  }

  if (!staleness.empty()) {
    os << "**Staleness** (committed-version lag behind the freshest replica)\n\n";
    os << "| node | samples | p95 lag (versions) | max lag | p95 age (ms) |\n";
    os << "|---|---|---|---|---|\n";
    for (const auto& [node, ns] : staleness) {
      os << "| " << node << " | "
         << (ns.versions != nullptr ? fmt(num_or(ns.versions->find("count")), 0) : "0") << " | "
         << (ns.versions != nullptr ? fmt(num_or(ns.versions->find("p95"))) : "-") << " | "
         << (ns.versions != nullptr ? fmt(num_or(ns.versions->find("max"))) : "-") << " | "
         << (ns.age != nullptr ? fmt(num_or(ns.age->find("p95")) / 1000.0, 2) : "-") << " |\n";
    }
    os << "\n";
  } else {
    os << "**Staleness**: no samples (health monitor disabled for this run)\n\n";
  }

  os << "**Divergence**: " << fmt(divergence_windows, 0) << " window(s)";
  if (divergence_window_us != nullptr && num_or(divergence_window_us->find("count")) > 0) {
    os << ", mean " << fmt(num_or(divergence_window_us->find("mean")) / 1000.0, 2)
       << " ms, max " << fmt(num_or(divergence_window_us->find("max")) / 1000.0, 2) << " ms";
  }
  os << "\n\n";

  if (!aborts.empty()) {
    os << "**Aborts by cause**\n\n| cause | count |\n|---|---|\n";
    for (const auto& [cause, count] : aborts) {
      os << "| " << cause << " | " << fmt(count, 0) << " |\n";
    }
    os << "\n";
  } else {
    os << "**Aborts**: none recorded\n\n";
  }

  if (failover_us != nullptr && num_or(failover_us->find("count")) > 0) {
    os << "**Failover**: " << fmt(num_or(failover_us->find("count")), 0)
       << " completed timeline(s), suspicion -> first commit mean "
       << fmt(num_or(failover_us->find("mean")) / 1000.0, 2) << " ms, max "
       << fmt(num_or(failover_us->find("max")) / 1000.0, 2) << " ms\n\n";
  } else {
    os << "**Failover**: none observed\n\n";
  }
}

struct BenchRowView {
  std::string bench;
  std::string technique;
  std::string config;
  double replicas = 0;
  double seed = 0;
  double throughput = 0;
  double p95 = 0;
  double msgs_per_op = 0;
  bool converged = false;
};

std::vector<BenchRowView> bench_rows(const BenchData& bench) {
  std::vector<BenchRowView> out;
  const auto* rows = bench.doc.find("rows");
  if (rows == nullptr || !rows->is(JsonValue::Type::Array)) return out;
  for (const auto& row : rows->array) {
    BenchRowView v;
    v.bench = bench.name;
    v.technique = str_or(row.find("technique"));
    v.config = str_or(row.find("technique_config"));
    v.replicas = num_or(row.find("replicas"));
    v.seed = num_or(row.find("seed"));
    v.throughput = num_or(row.find("throughput_ops_per_s"));
    if (const auto* lat = row.find("latency_us"); lat != nullptr) {
      v.p95 = num_or(lat->find("p95"));
    }
    v.msgs_per_op = num_or(row.find("msgs_per_op"));
    if (const auto* c = row.find("converged"); c != nullptr) v.converged = c->boolean;
    out.push_back(std::move(v));
  }
  return out;
}

void write_bench_sections(const std::vector<BenchData>& benches, std::ostream& os) {
  os << "## Bench results\n\n";
  os << "| bench | technique | config | replicas | seed | throughput (ops/s) | p95 (us) | "
        "msgs/op | converged |\n";
  os << "|---|---|---|---|---|---|---|---|---|\n";
  std::vector<BenchRowView> all;
  for (const auto& bench : benches) {
    for (auto& row : bench_rows(bench)) all.push_back(std::move(row));
  }
  for (const auto& row : all) {
    os << "| " << row.bench << " | " << row.technique << " | "
       << (row.config.empty() ? "-" : "`" + row.config + "`") << " | " << fmt(row.replicas, 0)
       << " | " << fmt(row.seed, 0) << " | " << fmt(row.throughput, 0) << " | "
       << fmt(row.p95, 0) << " | " << fmt(row.msgs_per_op, 1) << " | "
       << (row.converged ? "yes" : "no") << " |\n";
  }
  os << "\n";

  if (benches.size() < 2) return;
  // Cross-run comparison: for techniques measured by more than one bench,
  // show the throughput/latency spread so regressions stand out.
  std::map<std::string, std::vector<const BenchRowView*>> by_technique;
  for (const auto& row : all) by_technique[row.technique].push_back(&row);
  bool any = false;
  std::ostringstream cmp;
  cmp << "## Cross-run comparison\n\n";
  cmp << "| technique | paper pattern | runs | throughput min..max (ops/s) | "
         "p95 min..max (us) |\n";
  cmp << "|---|---|---|---|---|\n";
  for (const auto& [technique, rows] : by_technique) {
    if (rows.size() < 2) continue;
    any = true;
    double tp_min = rows.front()->throughput, tp_max = tp_min;
    double p95_min = rows.front()->p95, p95_max = p95_min;
    for (const auto* row : rows) {
      tp_min = std::min(tp_min, row->throughput);
      tp_max = std::max(tp_max, row->throughput);
      p95_min = std::min(p95_min, row->p95);
      p95_max = std::max(p95_max, row->p95);
    }
    const auto* info = technique_for_name(technique);
    cmp << "| " << technique << " | `" << (info != nullptr ? info->paper_pattern : "?")
        << "` | " << rows.size() << " | " << fmt(tp_min, 0) << " .. " << fmt(tp_max, 0)
        << " | " << fmt(p95_min, 0) << " .. " << fmt(p95_max, 0) << " |\n";
  }
  if (any) os << cmp.str() << "\n";
}

/// Batching comparison: rows carrying a batch_max_ops field (the
/// perf_batching sweep) grouped as technique x batch size, with the traffic
/// reduction relative to the unbatched (batch_max_ops=1) baseline.
void write_batching_section(const std::vector<BenchData>& benches, std::ostream& os) {
  struct Cell {
    double msgs_per_op = 0;
    double throughput = 0;
    double p50 = 0;
  };
  // (technique, replicas) -> batch_max_ops -> best-known cell.
  std::map<std::pair<std::string, int>, std::map<int, Cell>> grid;
  for (const auto& bench : benches) {
    const auto* rows = bench.doc.find("rows");
    if (rows == nullptr || !rows->is(JsonValue::Type::Array)) continue;
    for (const auto& row : rows->array) {
      const auto* batch = row.find("batch_max_ops");
      if (batch == nullptr || !batch->is(JsonValue::Type::Number)) continue;
      Cell cell;
      cell.msgs_per_op = num_or(row.find("msgs_per_op"));
      cell.throughput = num_or(row.find("throughput_ops_per_s"));
      if (const auto* lat = row.find("latency_us"); lat != nullptr) {
        cell.p50 = num_or(lat->find("p50"));
      }
      grid[{str_or(row.find("technique")), static_cast<int>(num_or(row.find("replicas")))}]
          [static_cast<int>(batch->number)] = cell;
    }
  }
  if (grid.empty()) return;

  os << "## Batching comparison\n\n";
  os << "Rows from sweeps that vary `batch_max_ops`; reduction is unbatched msgs/op "
        "divided by this row's msgs/op (same technique and replica count).\n\n";
  os << "| technique | replicas | batch_max_ops | msgs/op | reduction | throughput (ops/s) | "
        "p50 (us) |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const auto& [key, cells] : grid) {
    const auto baseline = cells.find(1);
    for (const auto& [batch, cell] : cells) {
      os << "| " << key.first << " | " << key.second << " | " << batch << " | "
         << fmt(cell.msgs_per_op, 1) << " | ";
      if (baseline != cells.end() && cell.msgs_per_op > 0) {
        os << fmt(baseline->second.msgs_per_op / cell.msgs_per_op, 2) << "x";
      } else {
        os << "-";
      }
      os << " | " << fmt(cell.throughput, 0) << " | " << fmt(cell.p50, 0) << " |\n";
    }
  }
  os << "\n";
}

// -- latency waterfalls ------------------------------------------------------

struct CritSegView {
  std::string kind;
  double txns_touched = 0;
  double p50 = 0, p95 = 0, p99 = 0, mean = 0, max = 0;
};

struct CritView {
  double txns = 0, total_us = 0, attributed_us = 0, coverage = 0;
  double p50_total = 0, p99_total = 0;
  std::vector<CritSegView> segments;  // artifact order (taxonomy order)
};

/// Nearest-rank percentile, matching obs::critpath's rule.
double rank_percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  auto idx = static_cast<std::size_t>(q * static_cast<double>(v.size()) + 0.999999);
  if (idx > 0) --idx;
  return v[std::min(idx, v.size() - 1)];
}

CritView crit_view(const CritData& crit) {
  CritView v;
  const auto* sum = crit.doc.find("summary");
  if (sum == nullptr) return v;
  v.txns = num_or(sum->find("txns"));
  v.total_us = num_or(sum->find("total_us"));
  v.attributed_us = num_or(sum->find("attributed_us"));
  v.coverage = num_or(sum->find("coverage"));
  if (const auto* segs = sum->find("segments");
      segs != nullptr && segs->is(JsonValue::Type::Array)) {
    for (const auto& s : segs->array) {
      CritSegView seg;
      seg.kind = str_or(s.find("kind"), "?");
      seg.txns_touched = num_or(s.find("txns_touched"));
      seg.p50 = num_or(s.find("p50_us"));
      seg.p95 = num_or(s.find("p95_us"));
      seg.p99 = num_or(s.find("p99_us"));
      seg.mean = num_or(s.find("mean_us"));
      seg.max = num_or(s.find("max_us"));
      v.segments.push_back(std::move(seg));
    }
  }
  std::vector<double> totals;
  if (const auto* txns = crit.doc.find("txns");
      txns != nullptr && txns->is(JsonValue::Type::Array)) {
    for (const auto& t : txns->array) {
      const auto* ok = t.find("ok");
      if (ok != nullptr && ok->is(JsonValue::Type::Bool) && !ok->boolean) continue;
      totals.push_back(num_or(t.find("total_us")));
    }
  }
  v.p50_total = rank_percentile(totals, 0.50);
  v.p99_total = rank_percentile(totals, 0.99);
  return v;
}

void write_waterfall_section(const CritData& crit, std::ostream& os) {
  const CritView v = crit_view(crit);
  os << "### `" << crit.name << "`\n\n";
  if (const auto* info = technique_for_tag(crit.name); info != nullptr) {
    os << "- technique: **" << info->name << "** (" << info->figure << ")\n";
  }
  os << "- committed txns: " << fmt(v.txns, 0) << ", coverage " << fmt(v.coverage * 100, 1)
     << "% (" << fmt(v.attributed_us, 0) << " of " << fmt(v.total_us, 0)
     << " us attributed)\n";
  os << "- end-to-end latency: p50 " << fmt(v.p50_total, 0) << " us, p99 "
     << fmt(v.p99_total, 0) << " us\n\n";
  if (v.txns <= 0) {
    os << "(no committed transactions)\n\n";
    return;
  }

  // The waterfall: each segment's share of the mean end-to-end latency.
  // Per-kind means are per-txn means over ALL committed txns (0 when a txn
  // never touches the kind), so they sum to the mean total.
  double denom = 0;
  for (const auto& seg : v.segments) denom += seg.mean;
  if (denom <= 0) denom = 1;
  constexpr int kBar = 40;
  os << "```\n";
  for (const auto& seg : v.segments) {
    if (seg.mean <= 0) continue;
    const double share = seg.mean / denom;
    const int width = std::min(kBar, static_cast<int>(share * kBar + 0.5));
    os << "  " << std::left << std::setw(14) << seg.kind << std::right << " |"
       << std::string(static_cast<std::size_t>(width), '#')
       << std::string(static_cast<std::size_t>(kBar - width), ' ') << "| " << std::setw(5)
       << fmt(share * 100, 1) << "%  mean " << fmt(seg.mean, 0) << "us\n";
  }
  os << "```\n\n";

  os << "| segment | txns | p50 (us) | p95 (us) | p99 (us) | mean (us) | max (us) |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const auto& seg : v.segments) {
    if (seg.txns_touched <= 0) continue;
    os << "| " << seg.kind << " | " << fmt(seg.txns_touched, 0) << " | " << fmt(seg.p50, 0)
       << " | " << fmt(seg.p95, 0) << " | " << fmt(seg.p99, 0) << " | " << fmt(seg.mean, 1)
       << " | " << fmt(seg.max, 0) << " |\n";
  }
  os << "\n";

  // Tail differential: which segments explain p99 - p50.
  const auto* summary = crit.doc.find("summary");
  if (const auto* tail = summary != nullptr ? summary->find("tail") : nullptr;
      tail != nullptr && tail->is(JsonValue::Type::Array) && !tail->array.empty()) {
    std::ostringstream rows;
    for (const auto& tc : tail->array) {
      if (num_or(tc.find("delta_us")) <= 0) continue;
      rows << "| " << str_or(tc.find("kind"), "?") << " | " << fmt(num_or(tc.find("p50_us")), 0)
           << " | " << fmt(num_or(tc.find("p99_us")), 0) << " | "
           << fmt(num_or(tc.find("delta_us")), 0) << " |\n";
    }
    if (!rows.str().empty()) {
      os << "**Tail differential** (per-segment p99 minus p50 — what makes the slow "
            "tail slow)\n\n";
      os << "| segment | p50 (us) | p99 (us) | delta (us) |\n|---|---|---|---|\n"
         << rows.str() << "\n";
    }
  }

  // The slowest committed transactions, with their full critical paths.
  const auto* txns = crit.doc.find("txns");
  std::vector<const JsonValue*> slowest;
  if (txns != nullptr && txns->is(JsonValue::Type::Array)) {
    for (const auto& t : txns->array) {
      const auto* ok = t.find("ok");
      if (ok != nullptr && ok->is(JsonValue::Type::Bool) && !ok->boolean) continue;
      slowest.push_back(&t);
    }
  }
  std::stable_sort(slowest.begin(), slowest.end(), [](const JsonValue* a, const JsonValue* b) {
    return num_or(a->find("total_us")) > num_or(b->find("total_us"));
  });
  if (slowest.size() > 3) slowest.resize(3);
  if (!slowest.empty()) {
    os << "Slowest transactions:\n\n```\n";
    for (const JsonValue* t : slowest) {
      os << "  " << str_or(t->find("request"), "?") << "  " << fmt(num_or(t->find("total_us")), 0)
         << "us end to end, " << fmt(num_or(t->find("hops")), 0) << " hop(s)\n";
      if (const auto* segs = t->find("segments");
          segs != nullptr && segs->is(JsonValue::Type::Array)) {
        for (const auto& s : segs->array) {
          os << "    [" << std::setw(6) << fmt(num_or(s.find("start_us")), 0) << " +"
             << std::setw(5) << fmt(num_or(s.find("dur_us")), 0) << "us] node "
             << fmt(num_or(s.find("node")), 0) << "  " << str_or(s.find("kind"), "?");
          const auto detail = str_or(s.find("detail"));
          if (!detail.empty()) os << "  " << detail;
          os << "\n";
        }
      }
    }
    os << "```\n\n";
  }
}

void write_crit_comparison(const std::vector<CritData>& crits, std::ostream& os) {
  os << "### Cross-technique comparison\n\n";
  os << "| artifact | txns | coverage | p50 (us) | p99 (us) | dominant segment |\n";
  os << "|---|---|---|---|---|---|\n";
  for (const auto& crit : crits) {
    const CritView v = crit_view(crit);
    double denom = 0;
    const CritSegView* top = nullptr;
    for (const auto& seg : v.segments) {
      denom += seg.mean;
      if (top == nullptr || seg.mean > top->mean) top = &seg;
    }
    os << "| " << crit.name << " | " << fmt(v.txns, 0) << " | " << fmt(v.coverage * 100, 1)
       << "% | " << fmt(v.p50_total, 0) << " | " << fmt(v.p99_total, 0) << " | ";
    if (top != nullptr && top->mean > 0 && denom > 0) {
      os << top->kind << " (" << fmt(top->mean / denom * 100, 1) << "%)";
    } else {
      os << "-";
    }
    os << " |\n";
  }
  os << "\n";
}

void write_prof_section(const std::vector<ProfData>& profs, std::ostream& os) {
  os << "## Cost profile\n\n";
  os << "Per-cost-center self-time and heap activity from the scoped profiler "
        "(PROF_*.json). Wall-clock columns are machine-dependent; the alloc and "
        "call columns are deterministic per seed.\n\n";
  for (const auto& prof : profs) {
    const auto* centers = prof.doc.find("centers");
    if (centers == nullptr || !centers->is(JsonValue::Type::Array)) continue;
    os << "### " << prof.name << "\n\n";
    os << "| center | calls | self (ms) | total (ms) | allocs | alloc MB |";
    const bool per_op = num_or(prof.doc.find("ops")) > 0;
    if (per_op) os << " calls/op | allocs/op |";
    os << "\n|---|---|---|---|---|---|";
    if (per_op) os << "---|---|";
    os << "\n";
    for (const auto& row : centers->array) {
      os << "| " << str_or(row.find("center")) << " | " << fmt(num_or(row.find("calls")), 0)
         << " | " << fmt(num_or(row.find("self_ns")) / 1e6, 2) << " | "
         << fmt(num_or(row.find("total_ns")) / 1e6, 2) << " | "
         << fmt(num_or(row.find("allocs")), 0) << " | "
         << fmt(num_or(row.find("alloc_bytes")) / 1e6, 2) << " |";
      if (per_op) {
        os << " " << fmt(num_or(row.find("calls_per_op")), 2) << " | "
           << fmt(num_or(row.find("allocs_per_op")), 2) << " |";
      }
      os << "\n";
    }
    os << "\n";
  }
}

}  // namespace

void write_folded_from_trace(const TraceData& trace, std::ostream& os) {
  const auto& spans = trace.spans;

  // Containment resolution, replicating obs::Tracer::resolve on the
  // exported spans: per node, sort by (start asc, end desc, file order asc)
  // and sweep with an enclosing-span stack. The exporter emits spans in
  // (start, id) order, so file order stands in for span id on ties.
  constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::vector<std::size_t> parent(spans.size(), kNoParent);
  std::map<std::int64_t, std::vector<std::size_t>> by_node;
  for (std::size_t i = 0; i < spans.size(); ++i) by_node[spans[i].node].push_back(i);
  for (auto& [node, list] : by_node) {
    std::sort(list.begin(), list.end(), [&spans](std::size_t a, std::size_t b) {
      if (spans[a].ts != spans[b].ts) return spans[a].ts < spans[b].ts;
      const double ea = spans[a].ts + spans[a].dur;
      const double eb = spans[b].ts + spans[b].dur;
      if (ea != eb) return ea > eb;
      return a < b;
    });
    std::vector<std::size_t> stack;
    for (const std::size_t idx : list) {
      const double end = spans[idx].ts + spans[idx].dur;
      while (!stack.empty() &&
             spans[stack.back()].ts + spans[stack.back()].dur < end) {
        stack.pop_back();
      }
      while (!stack.empty() && spans[stack.back()].instant) stack.pop_back();
      if (!stack.empty()) parent[idx] = stack.back();
      stack.push_back(idx);
    }
  }

  // Self-time = duration minus direct children's durations, clamped at zero.
  std::vector<double> self(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    self[i] = spans[i].instant ? 0 : spans[i].dur;
  }
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].instant || parent[i] == kNoParent) continue;
    self[parent[i]] -= spans[i].dur;
  }

  std::map<std::string, std::int64_t> folded;
  std::vector<std::string_view> frames;
  for (std::size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].instant) continue;
    frames.clear();
    for (std::size_t cur = i; cur != kNoParent; cur = parent[cur]) {
      frames.push_back(spans[cur].name);
    }
    std::string stack = "node" + std::to_string(spans[i].node);
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      stack += ';';
      stack += *it;
    }
    folded[stack] += std::max<std::int64_t>(static_cast<std::int64_t>(self[i]), 0);
  }
  for (const auto& [stack, us] : folded) {
    if (us <= 0) continue;
    os << stack << ' ' << us << '\n';
  }
}

namespace {

// -- perf-regression gate ----------------------------------------------------

/// One gated metric: where to find it in a row, which direction is worse,
/// and how much relative movement in the worse direction the gate accepts.
/// Thresholds are deliberately per-metric: simulated metrics (throughput,
/// latency, msgs/op) are deterministic per seed, so small windows suffice;
/// wall-clock ns metrics are machine- and load-dependent, so they get a
/// very loose window that still catches order-of-magnitude blowups.
struct GatedMetric {
  const char* path;    // "latency_us.p95" -> nested one level
  bool higher_better;  // regressions move the other way
  double tolerance;    // max relative degradation, e.g. 0.15 = 15%
};

constexpr GatedMetric kWorkloadGates[] = {
    {"throughput_ops_per_s", true, 0.15},
    {"ops_ok", true, 0.05},
    {"latency_us.mean", false, 0.25},
    {"latency_us.p95", false, 0.25},
    {"msgs_per_op", false, 0.10},
    {"bytes_per_op", false, 0.15},
};

constexpr GatedMetric kMicroGates[] = {
    {"allocs_per_op", false, 0.25},
    {"alloc_bytes_per_op", false, 0.25},
    {"ns_per_op", false, 3.0},  // wall clock: only catastrophic slowdowns
};

constexpr GatedMetric kProfGates[] = {
    {"calls_per_op", false, 0.25},
    {"allocs_per_op", false, 0.25},
    {"alloc_bytes_per_op", false, 0.25},
    {"self_ns_per_op", false, 3.0},  // wall clock: only catastrophic slowdowns
};

/// Resolves "a.b" one level deep into a row object.
const JsonValue* metric_at(const JsonValue& row, std::string_view path) {
  const auto dot = path.find('.');
  if (dot == std::string_view::npos) return row.find(path);
  const auto* nested = row.find(path.substr(0, dot));
  return nested != nullptr ? nested->find(path.substr(dot + 1)) : nullptr;
}

/// Workload-row identity: technique, config, seed, replicas, plus every
/// field that is not a known measurement — sweep parameters (write_ratio,
/// zipf_theta, batch_max_ops, ...) identify the row, whatever the bench
/// calls them. Future measurement fields added to RunStats must be listed
/// here or rows will stop matching across versions (loud, not wrong).
std::string workload_row_identity(const JsonValue& row) {
  static const std::set<std::string_view> kMeasurements = {
      "ops_attempted", "ops_ok",     "ops_failed",           "throughput_ops_per_s",
      "latency_us",    "msgs_per_op", "bytes_per_op",        "client_timeouts",
      "lazy_undone",   "certification_aborts", "mean_staleness_ms", "converged",
  };
  std::string id;
  for (const auto& [key, value] : row.object) {
    if (kMeasurements.count(key) > 0) continue;
    id += key;
    id += '=';
    if (value.is(JsonValue::Type::String)) {
      id += value.str;
    } else if (value.is(JsonValue::Type::Number)) {
      id += fmt(value.number, 6);
    } else if (value.is(JsonValue::Type::Bool)) {
      id += value.boolean ? "true" : "false";
    }
    id += ';';
  }
  return id;
}

/// Pretty row label for gate messages (identity minus the noise).
std::string workload_row_label(const JsonValue& row) {
  std::string label = str_or(row.find("technique"), "?");
  const auto* cfg = row.find("technique_config");
  if (cfg != nullptr && cfg->is(JsonValue::Type::String) && !cfg->str.empty()) {
    label += " " + cfg->str;
  }
  for (const char* key : {"write_ratio", "zipf_theta", "batch_max_ops", "seed"}) {
    if (const auto* v = row.find(key); v != nullptr && v->is(JsonValue::Type::Number)) {
      label += std::string(" ") + key + "=" + fmt(v->number, 2);
    }
  }
  return label;
}

void check_metrics(const JsonValue& base_row, const JsonValue* fresh_row,
                   const GatedMetric* gates, std::size_t gate_count,
                   const std::string& artifact, const std::string& row_label,
                   CheckResult& result) {
  if (fresh_row == nullptr) {
    result.regressions.push_back(
        {artifact, row_label, "(row)", 0, 0, "row present in baseline but missing from fresh run"});
    return;
  }
  for (std::size_t i = 0; i < gate_count; ++i) {
    const GatedMetric& gate = gates[i];
    const auto* base = metric_at(base_row, gate.path);
    const auto* fresh = metric_at(*fresh_row, gate.path);
    if (base == nullptr || !base->is(JsonValue::Type::Number)) continue;
    if (base->number <= 0) continue;  // nothing to regress from; ratios undefined
    ++result.compared;
    if (fresh == nullptr || !fresh->is(JsonValue::Type::Number)) {
      result.regressions.push_back({artifact, row_label, gate.path, base->number, 0,
                                    "metric missing from fresh run"});
      continue;
    }
    const double degradation = gate.higher_better
                                   ? (base->number - fresh->number) / base->number
                                   : (fresh->number - base->number) / base->number;
    if (degradation > gate.tolerance) {
      std::ostringstream msg;
      msg << (gate.higher_better ? "dropped " : "grew ") << fmt(degradation * 100, 1)
          << "% (tolerance " << fmt(gate.tolerance * 100, 0) << "%)";
      result.regressions.push_back(
          {artifact, row_label, gate.path, base->number, fresh->number, msg.str()});
    }
  }

  // converged is a hard invariant, not a threshold: once a configuration
  // converges in the baseline it must keep converging.
  const auto* base_conv = base_row.find("converged");
  const auto* fresh_conv = fresh_row->find("converged");
  if (base_conv != nullptr && base_conv->is(JsonValue::Type::Bool) && base_conv->boolean) {
    ++result.compared;
    if (fresh_conv == nullptr || !fresh_conv->boolean) {
      result.regressions.push_back(
          {artifact, row_label, "converged", 1, 0, "baseline converged, fresh run did not"});
    }
  }
}

/// Groups rows by identity; duplicate identities within one artifact are
/// matched positionally (k-th baseline occurrence vs k-th fresh one).
std::map<std::string, std::vector<const JsonValue*>> rows_by_identity(
    const JsonValue& doc, std::string (*identity)(const JsonValue&)) {
  std::map<std::string, std::vector<const JsonValue*>> out;
  const auto* rows = doc.find("rows");
  if (rows == nullptr || !rows->is(JsonValue::Type::Array)) return out;
  for (const auto& row : rows->array) out[identity(row)].push_back(&row);
  return out;
}

std::string micro_row_identity(const JsonValue& row) { return str_or(row.find("op"), "?"); }

void check_bench(const BenchData& base, const BenchData* fresh, CheckResult& result) {
  const std::string artifact = "BENCH_" + base.name;
  if (fresh == nullptr) {
    result.regressions.push_back(
        {artifact, "", "(artifact)", 0, 0, "baseline artifact missing from fresh run"});
    return;
  }
  const bool micro = [&] {
    const auto* m = base.doc.find("micro");
    return m != nullptr && m->is(JsonValue::Type::Bool) && m->boolean;
  }();
  const auto identity = micro ? micro_row_identity : workload_row_identity;
  const auto base_rows = rows_by_identity(base.doc, identity);
  const auto fresh_rows = rows_by_identity(fresh->doc, identity);
  for (const auto& [id, group] : base_rows) {
    const auto it = fresh_rows.find(id);
    for (std::size_t k = 0; k < group.size(); ++k) {
      const JsonValue* fresh_row =
          (it != fresh_rows.end() && k < it->second.size()) ? it->second[k] : nullptr;
      const std::string label = micro ? id : workload_row_label(*group[k]);
      if (micro) {
        check_metrics(*group[k], fresh_row, kMicroGates, std::size(kMicroGates), artifact,
                      label, result);
      } else {
        check_metrics(*group[k], fresh_row, kWorkloadGates, std::size(kWorkloadGates), artifact,
                      label, result);
      }
    }
  }
}

void check_prof(const ProfData& base, const ProfData* fresh, CheckResult& result) {
  const std::string artifact = "PROF_" + base.name;
  if (fresh == nullptr) {
    result.regressions.push_back(
        {artifact, "", "(artifact)", 0, 0, "baseline artifact missing from fresh run"});
    return;
  }
  std::map<std::string, const JsonValue*> fresh_centers;
  if (const auto* centers = fresh->doc.find("centers");
      centers != nullptr && centers->is(JsonValue::Type::Array)) {
    for (const auto& row : centers->array) fresh_centers[str_or(row.find("center"))] = &row;
  }
  const auto* base_centers = base.doc.find("centers");
  if (base_centers == nullptr || !base_centers->is(JsonValue::Type::Array)) return;
  for (const auto& row : base_centers->array) {
    // Centers the baseline never exercised gate nothing; per-op fields only
    // exist when the bench recorded a workload-op count.
    if (num_or(row.find("calls")) <= 0) continue;
    const std::string center = str_or(row.find("center"), "?");
    const auto it = fresh_centers.find(center);
    check_metrics(row, it == fresh_centers.end() ? nullptr : it->second, kProfGates,
                  std::size(kProfGates), artifact, center, result);
  }
}

/// Segment-level latency gates: per-kind critical-path percentiles from the
/// CRIT summary. Simulated time, deterministic per seed — windows stay
/// tight. These localize a latency regression to the causal segment that
/// grew, where the workload-level p95 gate only says "something got slower".
constexpr GatedMetric kCritSegmentGates[] = {
    {"p50_us", false, 0.25},
    {"p95_us", false, 0.25},
    {"p99_us", false, 0.35},
};

void check_crit(const CritData& base, const CritData* fresh, CheckResult& result) {
  const std::string artifact = "CRIT_" + base.name;
  if (fresh == nullptr) {
    result.regressions.push_back(
        {artifact, "", "(artifact)", 0, 0, "baseline artifact missing from fresh run"});
    return;
  }
  // Attribution coverage is a floor, not a ratio gate: the waterfall is only
  // trustworthy while nearly all commit latency stays attributed.
  const double base_cov = num_or(base.doc.find("summary")->find("coverage"));
  const double fresh_cov = num_or(fresh->doc.find("summary")->find("coverage"));
  if (base_cov > 0) {
    ++result.compared;
    if (fresh_cov < base_cov - 0.02) {
      result.regressions.push_back({artifact, "", "coverage", base_cov, fresh_cov,
                                    "attribution coverage dropped more than 2 points"});
    }
  }
  std::map<std::string, const JsonValue*> fresh_segs;
  if (const auto* segs = fresh->doc.find("summary")->find("segments");
      segs != nullptr && segs->is(JsonValue::Type::Array)) {
    for (const auto& row : segs->array) fresh_segs[str_or(row.find("kind"))] = &row;
  }
  const auto* base_segs = base.doc.find("summary")->find("segments");
  if (base_segs == nullptr || !base_segs->is(JsonValue::Type::Array)) return;
  for (const auto& row : base_segs->array) {
    // Segments the baseline never hit gate nothing (their percentiles are 0).
    if (num_or(row.find("txns_touched")) <= 0) continue;
    const std::string kind = str_or(row.find("kind"), "?");
    const auto it = fresh_segs.find(kind);
    check_metrics(row, it == fresh_segs.end() ? nullptr : it->second, kCritSegmentGates,
                  std::size(kCritSegmentGates), artifact, kind, result);
  }
}

}  // namespace

CheckResult check_against_baseline(const ReportInputs& baseline, const ReportInputs& fresh) {
  CheckResult result;
  for (const auto& base : baseline.benches) {
    const BenchData* match = nullptr;
    for (const auto& candidate : fresh.benches) {
      if (candidate.name == base.name) match = &candidate;
    }
    check_bench(base, match, result);
  }
  for (const auto& base : baseline.profs) {
    const ProfData* match = nullptr;
    for (const auto& candidate : fresh.profs) {
      if (candidate.name == base.name) match = &candidate;
    }
    check_prof(base, match, result);
  }
  for (const auto& base : baseline.crits) {
    const CritData* match = nullptr;
    for (const auto& candidate : fresh.crits) {
      if (candidate.name == base.name) match = &candidate;
    }
    check_crit(base, match, result);
  }
  return result;
}

void write_report(const ReportInputs& inputs, std::ostream& os) {
  os << "# replikit run report\n\n";
  os << "Inputs: " << inputs.traces.size() << " trace file(s), " << inputs.stats.size()
     << " metrics file(s), " << inputs.benches.size() << " bench report(s), "
     << inputs.profs.size() << " cost profile(s), " << inputs.crits.size()
     << " critical-path report(s).\n\n";

  if (!inputs.benches.empty()) {
    os << "## Provenance\n\n| bench | git sha | schema | rows |\n|---|---|---|---|\n";
    for (const auto& bench : inputs.benches) {
      const auto* rows = bench.doc.find("rows");
      os << "| " << bench.name << " | `" << bench.git_sha << "` | "
         << fmt(num_or(bench.doc.find("schema_version"), 1), 0) << " | "
         << (rows != nullptr && rows->is(JsonValue::Type::Array) ? rows->array.size() : 0)
         << " |\n";
    }
    os << "\n";
  }

  if (!inputs.traces.empty()) {
    os << "## Measured phase diagrams\n\n";
    os << "Regenerated from exported trace spans — these must reproduce the paper's "
          "figures from measurement, not from the paper's table.\n\n";
    for (const auto& trace : inputs.traces) write_trace_section(trace, os);
  }

  if (!inputs.stats.empty()) {
    os << "## Replication health\n\n";
    for (const auto& stats : inputs.stats) write_health_section(stats, os);
  }

  if (!inputs.benches.empty()) {
    write_bench_sections(inputs.benches, os);
    write_batching_section(inputs.benches, os);
  }

  if (!inputs.profs.empty()) write_prof_section(inputs.profs, os);

  if (!inputs.crits.empty()) {
    os << "## Latency waterfalls\n\n";
    os << "Per-transaction causal critical paths (CRIT_*.json): where each "
          "committed transaction's end-to-end latency actually went.\n\n";
    for (const auto& crit : inputs.crits) write_waterfall_section(crit, os);
    if (inputs.crits.size() >= 2) write_crit_comparison(inputs.crits, os);
  }
}

void write_waterfall(const std::vector<CritData>& crits, std::ostream& os) {
  os << "# replikit latency waterfalls\n\n";
  os << "Critical-path attribution: each committed transaction's end-to-end "
        "latency, cut into causal segments along its critical path. Bars show "
        "each segment's share of the mean commit latency; the tail tables show "
        "which segments make the p99 slow.\n\n";
  os << "Inputs: " << crits.size() << " critical-path report(s).\n\n";
  for (const auto& crit : crits) write_waterfall_section(crit, os);
  if (crits.size() >= 2) write_crit_comparison(crits, os);
}

namespace {

void usage(std::ostream& os) {
  os << "usage: replikit-report [-o OUT.md] <file-or-dir>...\n"
        "       replikit-report --check --baseline DIR [--alloc-budget CENTER=N]... "
        "<file-or-dir>...\n"
        "       replikit-report --rebaseline [--baseline DIR] <file-or-dir>...\n"
        "       replikit-report flame <TRACE_*.json> [-o OUT.folded]\n"
        "       replikit-report waterfall [-o OUT.md] <file-or-dir>...\n"
        "  Consumes TRACE_*.json (Chrome trace), STATS_*.ndjson (metrics),\n"
        "  BENCH_*.json (bench reports), PROF_*.json (cost profiles) and\n"
        "  CRIT_*.json (critical-path reports); directories are scanned for\n"
        "  all five. A truncated or malformed artifact is reported on stderr\n"
        "  and yields exit code 4 (the rest still report).\n"
        "  Default: writes a markdown run report to stdout (or OUT.md with -o).\n"
        "  --check: compares fresh BENCH/PROF artifacts against the baseline\n"
        "  directory with per-metric thresholds; exit 3 on regression.\n"
        "  --alloc-budget CENTER=N (repeatable, with --check): additionally\n"
        "  asserts the fresh PROF allocs/op for cost center CENTER is <= N —\n"
        "  an absolute ceiling, immune to baseline drift.\n"
        "  --rebaseline: validates fresh BENCH/PROF artifacts (parseable,\n"
        "  provenance-stamped) and installs them as the committed baselines\n"
        "  (default DIR: bench/baselines).\n"
        "  flame: recomputes folded flamegraph stacks from an exported trace.\n"
        "  waterfall: renders per-transaction latency waterfalls (ASCII\n"
        "  segment bars, tail differentials, slowest critical paths, and a\n"
        "  cross-technique table) from CRIT_*.json artifacts.\n";
}

/// "TRACE_foo-1.json" -> "foo-1" (the stem between prefix and extension).
std::string tag_of(const std::string& filename, std::string_view prefix,
                   std::string_view extension) {
  return filename.substr(prefix.size(),
                         filename.size() - prefix.size() - extension.size());
}

/// Expands files/directories into the regular files inside them, sorted
/// (directory iteration order is unspecified). Returns false on any
/// unreadable root; the good ones still land in `files`.
bool expand_roots(const std::vector<std::filesystem::path>& roots,
                  std::vector<std::filesystem::path>& files) {
  bool ok = true;
  for (const auto& root : roots) {
    std::error_code ec;
    if (std::filesystem::is_directory(root, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      if (ec) {
        std::cerr << "replikit-report: cannot scan " << root << ": " << ec.message() << "\n";
        ok = false;
      }
    } else if (std::filesystem::exists(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "replikit-report: no such file or directory: " << root << "\n";
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());
  return ok;
}

/// Parses every recognized artifact among `files` into `inputs`. Returns
/// false if any recognized file was unreadable or malformed; additionally
/// sets *malformed when a file was readable but truncated/corrupt, so
/// callers can distinguish "bad artifact" (exit 4) from plain I/O trouble.
bool collect_inputs(const std::vector<std::filesystem::path>& files, ReportInputs& inputs,
                    bool* malformed = nullptr) {
  bool ok = true;
  const auto corrupt = [&](const char* what, const std::filesystem::path& path) {
    std::cerr << "replikit-report: truncated or malformed " << what << ": "
              << path.string() << " (skipped)\n";
    ok = false;
    if (malformed != nullptr) *malformed = true;
  };
  for (const auto& path : files) {
    const auto filename = path.filename().string();
    const bool is_trace = filename.rfind("TRACE_", 0) == 0 && filename.ends_with(".json");
    const bool is_stats = filename.rfind("STATS_", 0) == 0 && filename.ends_with(".ndjson");
    const bool is_bench = filename.rfind("BENCH_", 0) == 0 && filename.ends_with(".json");
    const bool is_prof = filename.rfind("PROF_", 0) == 0 && filename.ends_with(".json");
    const bool is_crit = filename.rfind("CRIT_", 0) == 0 && filename.ends_with(".json");
    if (!is_trace && !is_stats && !is_bench && !is_prof && !is_crit) continue;  // unrelated
    const auto text = read_file(path);
    if (!text.has_value()) {
      std::cerr << "replikit-report: " << read_file_error << "\n";
      ok = false;
      continue;
    }
    if (is_trace) {
      auto trace = parse_chrome_trace(*text, tag_of(filename, "TRACE_", ".json"));
      if (!trace.has_value()) {
        corrupt("Chrome trace", path);
        continue;
      }
      inputs.traces.push_back(std::move(*trace));
    } else if (is_stats) {
      auto stats = parse_stats_ndjson(*text, tag_of(filename, "STATS_", ".ndjson"));
      if (!stats.has_value()) {
        corrupt("NDJSON metrics", path);
        continue;
      }
      inputs.stats.push_back(std::move(*stats));
    } else if (is_bench) {
      auto bench = parse_bench_json(*text, tag_of(filename, "BENCH_", ".json"));
      if (!bench.has_value()) {
        corrupt("bench report", path);
        continue;
      }
      inputs.benches.push_back(std::move(*bench));
    } else if (is_prof) {
      auto prof = parse_prof_json(*text, tag_of(filename, "PROF_", ".json"));
      if (!prof.has_value()) {
        corrupt("cost profile", path);
        continue;
      }
      inputs.profs.push_back(std::move(*prof));
    } else {
      auto crit = parse_crit_json(*text, tag_of(filename, "CRIT_", ".json"));
      if (!crit.has_value()) {
        corrupt("critical-path report", path);
        continue;
      }
      inputs.crits.push_back(std::move(*crit));
    }
  }
  return ok;
}

/// Writes `text` to OUT (or stdout when `out_path` is empty).
bool write_output(const std::string& out_path, const std::string& text) {
  if (out_path.empty()) {
    std::cout << text;
    return true;
  }
  std::ofstream out(out_path, std::ios::trunc);
  out << text;
  out.flush();
  if (!out) {
    std::cerr << "replikit-report: cannot write " << out_path << "\n";
    return false;
  }
  return true;
}

/// `replikit-report flame TRACE_x.json [-o out.folded]`.
int flame_main(const std::string& out_path, const std::vector<std::filesystem::path>& roots) {
  if (roots.size() != 1) {
    usage(std::cerr);
    return 1;
  }
  const auto text = read_file(roots.front());
  if (!text.has_value()) {
    std::cerr << "replikit-report: " << read_file_error << "\n";
    return 1;
  }
  const auto trace = parse_chrome_trace(*text, roots.front().filename().string());
  if (!trace.has_value()) {
    std::cerr << "replikit-report: malformed Chrome trace: " << roots.front() << "\n";
    return 1;
  }
  std::ostringstream folded;
  write_folded_from_trace(*trace, folded);
  return write_output(out_path, folded.str()) ? 0 : 1;
}

/// `replikit-report waterfall <files-or-dirs...> [-o out.md]`.
int waterfall_main(const std::string& out_path,
                   const std::vector<std::filesystem::path>& roots) {
  std::vector<std::filesystem::path> files;
  bool ok = expand_roots(roots, files);
  ReportInputs inputs;
  bool malformed = false;
  ok = collect_inputs(files, inputs, &malformed) && ok;
  if (inputs.crits.empty()) {
    std::cerr << "replikit-report: no CRIT_*.json inputs found\n";
    return malformed ? 4 : (ok ? 2 : 1);
  }
  std::ostringstream doc;
  write_waterfall(inputs.crits, doc);
  if (!write_output(out_path, doc.str())) return 1;
  if (malformed) return 4;
  return ok ? 0 : 1;
}

/// Absolute allocs/op ceiling for one cost center (--alloc-budget).
struct AllocBudget {
  std::string center;
  double max_allocs_per_op = 0;
};

/// Parses "CENTER=N"; returns nullopt on malformed input.
std::optional<AllocBudget> parse_alloc_budget(std::string_view arg) {
  const auto eq = arg.find('=');
  if (eq == std::string_view::npos || eq == 0) return std::nullopt;
  AllocBudget budget;
  budget.center = std::string(arg.substr(0, eq));
  const std::string num(arg.substr(eq + 1));
  char* end = nullptr;
  budget.max_allocs_per_op = std::strtod(num.c_str(), &end);
  if (end == num.c_str() || *end != '\0' || budget.max_allocs_per_op < 0) return std::nullopt;
  return budget;
}

/// Applies absolute allocs/op budgets to the fresh PROF artifacts. Unlike
/// the relative gates, a budget cannot be eroded by gradual baseline
/// refreshes — it pins the cost floor a PR claimed. A center named by a
/// budget but absent from every fresh profile is a failure (a silently
/// vacuous budget would be worse than none).
void check_alloc_budgets(const std::vector<AllocBudget>& budgets, const ReportInputs& fresh,
                         CheckResult& result) {
  for (const auto& budget : budgets) {
    bool found = false;
    for (const auto& prof : fresh.profs) {
      const auto* centers = prof.doc.find("centers");
      if (centers == nullptr || !centers->is(JsonValue::Type::Array)) continue;
      for (const auto& row : centers->array) {
        if (str_or(row.find("center")) != budget.center) continue;
        const auto* allocs = row.find("allocs_per_op");
        if (allocs == nullptr || !allocs->is(JsonValue::Type::Number)) continue;
        found = true;
        ++result.compared;
        if (allocs->number > budget.max_allocs_per_op) {
          result.regressions.push_back({"PROF_" + prof.name, budget.center, "allocs_per_op",
                                        budget.max_allocs_per_op, allocs->number,
                                        "exceeds absolute --alloc-budget"});
        }
      }
    }
    if (!found) {
      result.regressions.push_back({"(alloc-budget)", budget.center, "allocs_per_op",
                                    budget.max_allocs_per_op, 0,
                                    "cost center not found in any fresh PROF artifact"});
    }
  }
}

/// `replikit-report --check --baseline DIR <fresh...>`: the regression gate.
int check_main(const std::filesystem::path& baseline_dir,
               const std::vector<std::filesystem::path>& roots,
               const std::vector<AllocBudget>& budgets) {
  std::vector<std::filesystem::path> baseline_files;
  std::vector<std::filesystem::path> fresh_files;
  bool ok = expand_roots({baseline_dir}, baseline_files);
  ok = expand_roots(roots, fresh_files) && ok;

  ReportInputs baseline;
  ReportInputs fresh;
  bool malformed = false;
  ok = collect_inputs(baseline_files, baseline, &malformed) && ok;
  ok = collect_inputs(fresh_files, fresh, &malformed) && ok;
  if (baseline.benches.empty() && baseline.profs.empty() && baseline.crits.empty()) {
    std::cerr << "replikit-report: no BENCH_/PROF_/CRIT_ baselines under " << baseline_dir
              << "\n";
    return malformed ? 4 : (ok ? 2 : 1);
  }
  if (fresh.benches.empty() && fresh.profs.empty() && fresh.crits.empty()) {
    std::cerr << "replikit-report: no fresh BENCH_/PROF_/CRIT_ artifacts to check\n";
    return malformed ? 4 : (ok ? 2 : 1);
  }

  CheckResult result = check_against_baseline(baseline, fresh);
  check_alloc_budgets(budgets, fresh, result);
  std::cout << "replikit-report --check: " << result.compared << " metric(s) compared, "
            << result.regressions.size() << " regression(s)\n";
  for (const auto& issue : result.regressions) {
    std::cout << "  REGRESSION " << issue.artifact;
    if (!issue.row.empty()) std::cout << " [" << issue.row << "]";
    std::cout << " " << issue.metric;
    if (issue.metric != "(row)" && issue.metric != "(artifact)") {
      std::cout << ": baseline " << fmt(issue.base, 4) << " -> fresh " << fmt(issue.fresh, 4);
    }
    std::cout << " — " << issue.message << "\n";
  }
  if (!result.ok()) {
    std::cout << "FAIL: performance gate\n";
    return 3;  // a gate failure outranks a malformed side artifact
  }
  std::cout << "OK: no regressions against baseline\n";
  if (malformed) return 4;
  return ok ? 0 : 1;
}

/// `replikit-report --rebaseline [--baseline DIR] <fresh...>`: validates
/// fresh BENCH_/PROF_ artifacts and installs them as the committed
/// baselines. Validation is the point — a truncated or provenance-less
/// file must never become the thing the gate compares against.
int rebaseline_main(const std::filesystem::path& baseline_dir,
                    const std::vector<std::filesystem::path>& roots) {
  std::vector<std::filesystem::path> files;
  bool ok = expand_roots(roots, files);

  struct Install {
    std::filesystem::path source;
    std::string filename;
    std::string git_sha;
  };
  std::vector<Install> installs;
  for (const auto& path : files) {
    const auto filename = path.filename().string();
    const bool is_bench = filename.rfind("BENCH_", 0) == 0 && filename.ends_with(".json");
    const bool is_prof = filename.rfind("PROF_", 0) == 0 && filename.ends_with(".json");
    const bool is_crit = filename.rfind("CRIT_", 0) == 0 && filename.ends_with(".json");
    if (!is_bench && !is_prof && !is_crit) continue;
    const auto text = read_file(path);
    if (!text.has_value()) {
      std::cerr << "replikit-report: " << read_file_error << "\n";
      ok = false;
      continue;
    }
    std::string git_sha;
    if (is_bench) {
      const auto bench = parse_bench_json(*text, tag_of(filename, "BENCH_", ".json"));
      if (!bench.has_value()) {
        std::cerr << "replikit-report: refusing to rebaseline malformed bench report: " << path
                  << "\n";
        ok = false;
        continue;
      }
      git_sha = bench->git_sha;
    } else if (is_prof) {
      const auto prof = parse_prof_json(*text, tag_of(filename, "PROF_", ".json"));
      if (!prof.has_value()) {
        std::cerr << "replikit-report: refusing to rebaseline malformed cost profile: " << path
                  << "\n";
        ok = false;
        continue;
      }
      git_sha = prof->git_sha;
    } else {
      // CRIT carries no provenance stamp (schema v1): validate parseability
      // only — the gate matches it to a fresh run by name, not by sha.
      const auto crit = parse_crit_json(*text, tag_of(filename, "CRIT_", ".json"));
      if (!crit.has_value()) {
        std::cerr << "replikit-report: refusing to rebaseline malformed critical-path report: "
                  << path << "\n";
        ok = false;
        continue;
      }
      installs.push_back({path, filename, "(crit)"});
      continue;
    }
    if (git_sha == "unknown") {
      std::cerr << "replikit-report: refusing to rebaseline " << path
                << ": no provenance (git_sha) — rebuild from a git checkout\n";
      ok = false;
      continue;
    }
    installs.push_back({path, filename, git_sha});
  }

  if (installs.empty()) {
    std::cerr << "replikit-report: no valid BENCH_/PROF_/CRIT_ artifacts to rebaseline\n";
    return ok ? 2 : 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(baseline_dir, ec);
  if (ec) {
    std::cerr << "replikit-report: cannot create " << baseline_dir << ": " << ec.message()
              << "\n";
    return 1;
  }
  for (const auto& install : installs) {
    const auto dest = baseline_dir / install.filename;
    std::filesystem::copy_file(install.source, dest,
                               std::filesystem::copy_options::overwrite_existing, ec);
    if (ec) {
      std::cerr << "replikit-report: cannot write " << dest << ": " << ec.message() << "\n";
      ok = false;
      continue;
    }
    std::cout << "rebaselined " << dest.string() << " (git_sha " << install.git_sha << ")\n";
  }
  std::cout << "replikit-report --rebaseline: " << installs.size()
            << " artifact(s) installed into " << baseline_dir.string()
            << " — commit them alongside the change they measure\n";
  return ok ? 0 : 1;
}

}  // namespace

int report_main(int argc, char** argv) {
  std::string out_path;
  std::string baseline_dir;
  bool check = false;
  bool rebaseline = false;
  bool flame = false;
  bool waterfall = false;
  std::vector<AllocBudget> budgets;
  std::vector<std::filesystem::path> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o" || arg == "--output") {
      if (i + 1 >= argc) {
        usage(std::cerr);
        return 1;
      }
      out_path = argv[++i];
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--rebaseline") {
      rebaseline = true;
    } else if (arg == "--baseline") {
      if (i + 1 >= argc) {
        usage(std::cerr);
        return 1;
      }
      baseline_dir = argv[++i];
    } else if (arg == "--alloc-budget") {
      if (i + 1 >= argc) {
        usage(std::cerr);
        return 1;
      }
      const auto budget = parse_alloc_budget(argv[++i]);
      if (!budget.has_value()) {
        std::cerr << "replikit-report: bad --alloc-budget (want CENTER=N): " << argv[i] << "\n";
        return 1;
      }
      budgets.push_back(*budget);
    } else if (arg == "flame" && roots.empty() && !check && !rebaseline && !waterfall) {
      flame = true;
    } else if (arg == "waterfall" && roots.empty() && !check && !rebaseline && !flame) {
      waterfall = true;
    } else if (arg == "-h" || arg == "--help") {
      usage(std::cout);
      return 0;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty() || (check && baseline_dir.empty()) || (check && flame) ||
      (check && rebaseline) || (rebaseline && flame) || (waterfall && flame) ||
      (!budgets.empty() && !check)) {
    usage(std::cerr);
    return 1;
  }
  if (flame) return flame_main(out_path, roots);
  if (waterfall) return waterfall_main(out_path, roots);
  if (check) return check_main(baseline_dir, roots, budgets);
  if (rebaseline) {
    return rebaseline_main(baseline_dir.empty() ? "bench/baselines" : baseline_dir, roots);
  }

  std::vector<std::filesystem::path> files;
  bool ok = expand_roots(roots, files);

  ReportInputs inputs;
  bool malformed = false;
  ok = collect_inputs(files, inputs, &malformed) && ok;

  if (inputs.traces.empty() && inputs.stats.empty() && inputs.benches.empty() &&
      inputs.profs.empty() && inputs.crits.empty()) {
    std::cerr << "replikit-report: no TRACE_/STATS_/BENCH_/PROF_/CRIT_ inputs found\n";
    // A bad path or unreadable file is an error, not "empty".
    return malformed ? 4 : (ok ? 2 : 1);
  }

  std::ostringstream report;
  write_report(inputs, report);
  if (!write_output(out_path, report.str())) return 1;
  if (malformed) return 4;
  return ok ? 0 : 1;
}

}  // namespace repli::tools
