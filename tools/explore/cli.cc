#include "tools/explore/cli.hh"

#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "explore/artifact.hh"
#include "explore/explore.hh"
#include "util/log.hh"

namespace repli::tools {

namespace {

constexpr int kOk = 0;
constexpr int kIoError = 1;
constexpr int kUsage = 2;
constexpr int kViolation = 3;
constexpr int kCorrupt = 4;

void usage(std::ostream& os) {
  os << "usage:\n"
        "  replikit-explore run --technique <name|all> [--trials N] [--seed S]\n"
        "      [--replicas R] [--clients C] [--ops N] [--keys K] [--max-faults F]\n"
        "      [--max-jitter US] [--no-shrink] [--out-dir DIR]\n"
        "  replikit-explore replay --technique <name> --workload-seed S\n"
        "      --schedule-seed S --plan \"<plan>\" [--replicas R] [--clients C]\n"
        "      [--ops N] [--keys K]\n"
        "  replikit-explore replay --artifact EXPLORE_<t>.json\n"
        "      (--trial N | --violation N [--original])\n"
        "  replikit-explore shrink --technique <name> --workload-seed S\n"
        "      --schedule-seed S --plan \"<plan>\" [--replicas R] [--clients C]\n"
        "      [--ops N] [--keys K]\n"
        "\n"
        "Seeds accept decimal or 0x-hex. Plans use the fault-plan grammar\n"
        "(docs/EXPLORATION.md), e.g. \"tie; jitter=400; crash@sc2:r1\".\n";
}

/// argv -> {flag: value}; returns nullopt on an unknown or valueless flag.
std::optional<std::map<std::string, std::string>> parse_flags(
    int argc, char** argv, int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::cerr << "replikit-explore: unexpected argument '" << arg << "'\n";
      return std::nullopt;
    }
    if (arg == "--no-shrink" || arg == "--original") {
      flags[arg.substr(2)] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      std::cerr << "replikit-explore: flag '" << arg << "' needs a value\n";
      return std::nullopt;
    }
    flags[arg.substr(2)] = argv[++i];
  }
  return flags;
}

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.rfind("0x", 0) == 0) return explore::parse_hex_u64(s);
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

int flag_int(const std::map<std::string, std::string>& flags, const std::string& name,
             int fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  return static_cast<int>(std::strtol(it->second.c_str(), nullptr, 10));
}

void apply_shape_flags(const std::map<std::string, std::string>& flags,
                       explore::TrialConfig& tc) {
  tc.replicas = flag_int(flags, "replicas", tc.replicas);
  tc.clients = flag_int(flags, "clients", tc.clients);
  tc.ops_per_client = flag_int(flags, "ops", tc.ops_per_client);
  tc.keys = flag_int(flags, "keys", tc.keys);
}

void print_trial(std::ostream& os, const explore::TrialConfig& tc,
                 const explore::TrialResult& result) {
  os << "technique:       " << core::technique_name(tc.kind) << "\n"
     << "workload seed:   " << explore::hex_u64(tc.workload_seed) << "\n"
     << "schedule seed:   " << explore::hex_u64(tc.schedule_seed) << "\n"
     << "plan:            " << explore::format_plan(tc.plan) << "\n"
     << "events:          " << result.events << "\n"
     << "schedule digest: " << explore::hex_u64(result.schedule_digest) << "\n"
     << "ops ok/failed:   " << result.ops_ok << "/" << result.ops_failed << "\n"
     << "faults injected: " << result.faults_injected << "\n"
     << "verdict:         " << (result.ok ? "PASS" : "VIOLATION") << "\n";
  if (!result.ok) {
    os << "failed check:    " << result.failed_check << "\n"
       << "witness:         " << result.violation << "\n";
  }
}

/// Builds a TrialConfig from --technique/--workload-seed/--schedule-seed/
/// --plan flags; kUsage via the int* on any missing or malformed piece.
std::optional<explore::TrialConfig> trial_from_flags(
    const std::map<std::string, std::string>& flags, int* exit_code) {
  *exit_code = kUsage;
  const auto technique_it = flags.find("technique");
  if (technique_it == flags.end()) {
    std::cerr << "replikit-explore: --technique is required\n";
    return std::nullopt;
  }
  const auto kind = core::technique_from_name(technique_it->second);
  if (!kind.has_value()) {
    std::cerr << "replikit-explore: unknown technique '" << technique_it->second << "'\n";
    return std::nullopt;
  }
  explore::TrialConfig tc;
  tc.kind = *kind;
  for (const auto& [flag, member] :
       std::vector<std::pair<std::string, std::uint64_t explore::TrialConfig::*>>{
           {"workload-seed", &explore::TrialConfig::workload_seed},
           {"schedule-seed", &explore::TrialConfig::schedule_seed}}) {
    const auto it = flags.find(flag);
    if (it == flags.end()) {
      std::cerr << "replikit-explore: --" << flag << " is required\n";
      return std::nullopt;
    }
    const auto seed = parse_u64(it->second);
    if (!seed.has_value()) {
      std::cerr << "replikit-explore: bad seed '" << it->second << "'\n";
      return std::nullopt;
    }
    tc.*member = *seed;
  }
  const auto plan_it = flags.find("plan");
  if (plan_it == flags.end()) {
    std::cerr << "replikit-explore: --plan is required\n";
    return std::nullopt;
  }
  std::string error;
  const auto plan = explore::parse_plan(plan_it->second, &error);
  if (!plan.has_value()) {
    std::cerr << "replikit-explore: bad plan: " << error << "\n";
    return std::nullopt;
  }
  tc.plan = *plan;
  apply_shape_flags(flags, tc);
  return tc;
}

int cmd_run(const std::map<std::string, std::string>& flags) {
  const auto technique_it = flags.find("technique");
  if (technique_it == flags.end()) {
    std::cerr << "replikit-explore: --technique is required (a name, or 'all')\n";
    return kUsage;
  }
  std::vector<core::TechniqueKind> kinds;
  if (technique_it->second == "all") {
    for (const auto& info : core::all_techniques()) kinds.push_back(info.kind);
  } else {
    const auto kind = core::technique_from_name(technique_it->second);
    if (!kind.has_value()) {
      std::cerr << "replikit-explore: unknown technique '" << technique_it->second
                << "'\n";
      return kUsage;
    }
    kinds.push_back(*kind);
  }
  if (const auto it = flags.find("out-dir"); it != flags.end()) {
    std::error_code ec;
    std::filesystem::create_directories(it->second, ec);
    if (ec) {
      std::cerr << "replikit-explore: cannot create out-dir '" << it->second
                << "': " << ec.message() << "\n";
      return kIoError;
    }
    setenv("REPLI_BENCH_DIR", it->second.c_str(), 1);
  }

  explore::ExploreConfig base;
  base.trials = flag_int(flags, "trials", base.trials);
  if (const auto it = flags.find("seed"); it != flags.end()) {
    const auto seed = parse_u64(it->second);
    if (!seed.has_value()) {
      std::cerr << "replikit-explore: bad seed '" << it->second << "'\n";
      return kUsage;
    }
    base.seed = *seed;
  }
  base.replicas = flag_int(flags, "replicas", base.replicas);
  base.clients = flag_int(flags, "clients", base.clients);
  base.ops_per_client = flag_int(flags, "ops", base.ops_per_client);
  base.keys = flag_int(flags, "keys", base.keys);
  base.max_faults = flag_int(flags, "max-faults", base.max_faults);
  base.max_jitter =
      static_cast<sim::Time>(flag_int(flags, "max-jitter", static_cast<int>(base.max_jitter)));
  base.shrink_violations = flags.count("no-shrink") == 0;

  bool any_violation = false;
  bool io_failure = false;
  std::cout << "| technique | trials | events | faults | violations | artifact |\n"
            << "|---|---|---|---|---|---|\n";
  for (const auto kind : kinds) {
    explore::ExploreConfig config = base;
    config.kind = kind;
    const auto result = explore::explore(config);
    const auto path = explore::save_explore(result);
    if (path.empty()) io_failure = true;
    std::cout << "| " << core::technique_name(kind) << " | " << config.trials << " | "
              << result.events_total << " | " << result.faults_injected_total << " | "
              << result.violations.size() << " | "
              << (path.empty() ? "(write failed)" : path) << " |\n";
    for (const auto& v : result.violations) {
      any_violation = true;
      std::cout << "\nVIOLATION: " << core::technique_name(kind) << " trial "
                << v.trial.trial << " failed " << v.trial.result.failed_check << "\n"
                << "  plan:          " << v.trial.plan << "\n"
                << "  minimal plan:  " << v.minimal_plan << " (after "
                << v.shrink_steps << " reductions, " << v.shrink_runs << " runs)\n"
                << "  witness:       " << v.trial.result.violation << "\n"
                << "  replay:        replikit-explore replay --technique "
                << core::technique_name(kind) << " --workload-seed "
                << explore::hex_u64(v.trial.workload_seed) << " --schedule-seed "
                << explore::hex_u64(v.trial.schedule_seed) << " --plan \""
                << v.minimal_plan << "\"\n";
    }
  }
  if (any_violation) return kViolation;
  if (io_failure) return kIoError;
  return kOk;
}

int cmd_replay(const std::map<std::string, std::string>& flags) {
  explore::TrialConfig tc;
  if (const auto it = flags.find("artifact"); it != flags.end()) {
    std::string error;
    const auto loaded = explore::load_explore_file(it->second, &error);
    if (!loaded.has_value()) {
      std::cerr << "replikit-explore: " << error << "\n";
      return error.rfind("cannot open", 0) == 0 ? kIoError : kCorrupt;
    }
    const explore::TrialRow* row = nullptr;
    std::string plan_text;
    if (const auto trial_it = flags.find("trial"); trial_it != flags.end()) {
      const int index = flag_int(flags, "trial", -1);
      for (const auto& r : loaded->rows) {
        if (r.trial == index) row = &r;
      }
      if (row == nullptr) {
        std::cerr << "replikit-explore: no trial " << index << " in artifact\n";
        return kUsage;
      }
      plan_text = row->plan;
    } else if (const auto viol_it = flags.find("violation"); viol_it != flags.end()) {
      const int index = flag_int(flags, "violation", 0);
      if (index < 0 || index >= static_cast<int>(loaded->violations.size())) {
        std::cerr << "replikit-explore: no violation " << index << " in artifact\n";
        return kUsage;
      }
      const auto& v = loaded->violations[static_cast<std::size_t>(index)];
      row = &v.trial;
      // Default to the minimal reproducer; --original replays the full plan.
      plan_text = flags.count("original") != 0 ? v.trial.plan : v.minimal_plan;
    } else {
      std::cerr << "replikit-explore: --artifact needs --trial N or --violation N\n";
      return kUsage;
    }
    std::string error2;
    const auto plan = explore::parse_plan(plan_text, &error2);
    if (!plan.has_value()) {
      std::cerr << "replikit-explore: artifact plan unparsable: " << error2 << "\n";
      return kCorrupt;
    }
    tc.kind = loaded->config.kind;
    tc.workload_seed = row->workload_seed;
    tc.schedule_seed = row->schedule_seed;
    tc.plan = *plan;
    tc.replicas = loaded->config.replicas;
    tc.clients = loaded->config.clients;
    tc.ops_per_client = loaded->config.ops_per_client;
    tc.keys = loaded->config.keys;
    if (loaded->config.settle > 0) tc.settle = loaded->config.settle;
  } else {
    int exit_code = kUsage;
    const auto parsed = trial_from_flags(flags, &exit_code);
    if (!parsed.has_value()) return exit_code;
    tc = *parsed;
  }

  const auto result = explore::run_trial(tc);
  print_trial(std::cout, tc, result);
  return result.ok ? kOk : kViolation;
}

int cmd_shrink(const std::map<std::string, std::string>& flags) {
  int exit_code = kUsage;
  const auto parsed = trial_from_flags(flags, &exit_code);
  if (!parsed.has_value()) return exit_code;
  const auto probe = explore::run_trial(*parsed);
  if (probe.ok) {
    std::cout << "trial passes all checks; nothing to shrink\n";
    return kOk;
  }
  const auto shrunk = explore::shrink(*parsed);
  std::cout << "original plan: " << explore::format_plan(parsed->plan) << "\n"
            << "minimal plan:  " << explore::format_plan(shrunk.minimal) << "\n"
            << "reductions:    " << shrunk.steps << " (over " << shrunk.runs
            << " runs)\n"
            << "failed check:  " << shrunk.result.failed_check << "\n"
            << "witness:       " << shrunk.result.violation << "\n";
  return kViolation;
}

}  // namespace

int explore_main(int argc, char** argv) {
  // Exploration sweeps are log-noisy at Info; default to Error so the
  // summary table is the output. REPLI_LOG=off|error|info|debug overrides.
  auto level = util::LogLevel::Error;
  if (const char* env = std::getenv("REPLI_LOG"); env != nullptr) {
    const std::string v(env);
    if (v == "off") level = util::LogLevel::Off;
    if (v == "error") level = util::LogLevel::Error;
    if (v == "info") level = util::LogLevel::Info;
    if (v == "debug") level = util::LogLevel::Debug;
  }
  util::Logger::instance().set_level(level);

  if (argc < 2) {
    usage(std::cerr);
    return kUsage;
  }
  const std::string verb = argv[1];
  if (verb == "--help" || verb == "-h" || verb == "help") {
    usage(std::cout);
    return kOk;
  }
  const auto flags = parse_flags(argc, argv, 2);
  if (!flags.has_value()) return kUsage;
  if (verb == "run") return cmd_run(*flags);
  if (verb == "replay") return cmd_replay(*flags);
  if (verb == "shrink") return cmd_shrink(*flags);
  std::cerr << "replikit-explore: unknown command '" << verb << "'\n";
  usage(std::cerr);
  return kUsage;
}

}  // namespace repli::tools
