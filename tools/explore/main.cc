#include "tools/explore/cli.hh"

int main(int argc, char** argv) { return repli::tools::explore_main(argc, argv); }
