// replikit-explore: schedule & fault exploration over the deterministic
// simulator. Three verbs:
//
//   run     N randomized trials per technique, checkers on every trial,
//           violations shrunk to minimal reproducers, EXPLORE_*.json out
//   replay  re-run one trial from its decision trace (seeds + plan),
//           either given inline or pulled out of an EXPLORE artifact
//   shrink  delta-debug a failing (seeds + plan) triple to a minimal plan
//
// Exit codes follow the replikit-report convention: 0 ok, 1 I/O error,
// 2 usage error, 3 violation found (run) or reproduced (replay), 4 corrupt
// artifact.
#pragma once

namespace repli::tools {

int explore_main(int argc, char** argv);

}  // namespace repli::tools
