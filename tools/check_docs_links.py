#!/usr/bin/env python3
"""Check that every relative markdown link in the repo's docs resolves.

Stdlib-only (CI runs it with a bare python3). Scans *.md at the repo root
and under docs/, extracts inline links [text](target), and fails if a
relative target does not exist on disk. External links (http/https/mailto)
and pure in-page anchors (#...) are skipped; a "path#anchor" target is
checked for the path part only.
"""

import re
import sys
from pathlib import Path

LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def check(repo: Path) -> int:
    docs = sorted(repo.glob("*.md")) + sorted(repo.glob("docs/*.md"))
    if not docs:
        print("check_docs_links: no markdown files found", file=sys.stderr)
        return 1
    bad = 0
    for doc in docs:
        text = doc.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), 1):
            for match in LINK.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = (doc.parent / path).resolve()
                if not resolved.exists():
                    print(f"{doc.relative_to(repo)}:{lineno}: broken link -> {target}")
                    bad += 1
    checked = len(docs)
    if bad:
        print(f"check_docs_links: {bad} broken link(s) across {checked} files")
        return 1
    print(f"check_docs_links: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).resolve().parent.parent
    sys.exit(check(root))
