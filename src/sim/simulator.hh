// Deterministic discrete-event simulator.
//
// A run is a pure function of (NetworkConfig, seed, protocol code): events
// are ordered by (time, insertion sequence) and all randomness flows from
// one seeded Rng. Processes are actors owned by the simulator; crashing a
// process silences its timers and its network traffic (crash-stop model).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "obs/context.hh"
#include "obs/metrics.hh"
#include "obs/time.hh"
#include "obs/trace.hh"
#include "sim/network.hh"
#include "sim/time.hh"
#include "sim/trace.hh"
#include "util/rng.hh"

namespace repli::sim {

class Process;

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed, NetworkConfig net_config = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  using EventId = std::uint64_t;
  static constexpr EventId kNoEvent = 0;

  EventId schedule_at(Time t, std::function<void()> fn);
  EventId schedule_after(Time delay, std::function<void()> fn);
  void cancel(EventId id);

  /// Constructs a process of type T, registers it, and returns a reference.
  /// NodeIds are assigned densely in spawn order, so a fixed construction
  /// order yields fixed ids.
  template <typename T, typename... Args>
  T& spawn(Args&&... args) {
    auto proc = std::make_unique<T>(next_node_id(), *this, std::forward<Args>(args)...);
    T& ref = *proc;
    register_process(std::move(proc));
    return ref;
  }

  Process& process(NodeId id);
  const Process& process(NodeId id) const;
  std::size_t process_count() const { return processes_.size(); }

  /// Calls start() on every spawned process (in id order).
  void start_all();

  /// Crash-stop `id` at the current time: no more sends, receives, or timers.
  void crash(NodeId id);
  bool crashed(NodeId id) const;

  /// Runs events until the queue empties or `t_end` passes. Returns the
  /// number of events executed. Throws if `max_events` is exceeded
  /// (runaway-protocol guard).
  std::size_t run_until(Time t_end, std::size_t max_events = 50'000'000);

  /// Runs until the event queue is empty.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Events currently queued (incl. cancelled-but-unpopped) — the
  /// saturation gauge sampled by the cluster monitor.
  std::size_t pending_events() const { return queue_.size(); }

  util::Rng& rng() { return rng_; }
  obs::Registry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  Trace& trace() { return trace_; }
  Network& net() { return net_; }
  obs::LamportClocks& lamports() { return lamports_; }

 private:
  struct Event {
    Time time = 0;
    EventId id = 0;
    std::function<void()> fn;
    // The scheduling context propagates to the event: a timer or cpu slice
    // scheduled inside a traced request stays part of that trace.
    obs::TraceContext ctx;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;  // min-heap
      return a.id > b.id;
    }
  };

  NodeId next_node_id() const { return static_cast<NodeId>(processes_.size()); }
  void register_process(std::unique_ptr<Process> proc);

  Time now_ = 0;
  EventId next_event_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::unordered_set<EventId> cancelled_;
  std::vector<std::unique_ptr<Process>> processes_;
  util::Rng rng_;
  obs::Registry metrics_;
  obs::Tracer tracer_;
  Trace trace_;
  Network net_;
  obs::LamportClocks lamports_;
  obs::TimeSource::Token time_token_ = obs::TimeSource::kNoToken;
};

}  // namespace repli::sim
