// Deterministic discrete-event simulator.
//
// A run is a pure function of (NetworkConfig, seed, protocol code): events
// are ordered by (time, insertion sequence) and all randomness flows from
// one seeded Rng. Processes are actors owned by the simulator; crashing a
// process silences its timers and its network traffic (crash-stop model).
//
// The event queue is a 4-ary min-heap with lazy deletion (sim/event_heap.hh):
// cancel() flips a liveness flag in O(1) — validated against the id window,
// so cancelling an already-executed or unknown id is a no-op — and dead
// entries are reclaimed on pop or compacted in bulk when they outnumber
// live ones. Pop order is byte-identical to the std::priority_queue this
// replaced (fuzz-tested).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/context.hh"
#include "obs/metrics.hh"
#include "obs/time.hh"
#include "obs/trace.hh"
#include "sim/event_heap.hh"
#include "sim/network.hh"
#include "sim/time.hh"
#include "sim/trace.hh"
#include "util/rng.hh"
#include "util/smallfn.hh"

namespace repli::sim {

class Process;

/// Schedule perturbation for exploration runs (src/explore): seeded random
/// tie-breaking among same-timestamp events plus bounded extra delivery
/// delay. All perturbation randomness flows from its own seeded stream, so
/// a perturbed run stays a pure function of (config, workload seed,
/// schedule seed) — a failing schedule replays from two integers.
struct PerturbConfig {
  std::uint64_t seed = 0;    // schedule-choice stream (independent of workload)
  bool tie_break = true;     // randomize order among same-time events
  Time max_extra_delay = 0;  // per-delivery jitter bound, uniform [0, max]; 0 = off
};

/// One recorded tie-break decision: at `time`, `ties` events were ready and
/// the `chosen`-th (in (time, id) order) ran first.
struct TieDecision {
  Time time = 0;
  std::uint32_t ties = 0;
  std::uint32_t chosen = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed, NetworkConfig net_config = {});
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  using EventId = std::uint64_t;
  static constexpr EventId kNoEvent = 0;

  /// No owner: the event fires unconditionally.
  static constexpr NodeId kNoOwner = -1;

  /// Schedules `fn` at `t`. If `owner` is a node id, the handler is
  /// skipped (but the event still dispatches) when that node has crashed
  /// by fire time — the crash-stop guard for timers and cpu slices,
  /// hoisted here so callers don't wrap `fn` in a guard lambda (a SmallFn
  /// never fits inside another SmallFn's inline buffer).
  EventId schedule_at(Time t, util::SmallFn fn, NodeId owner = kNoOwner);
  EventId schedule_after(Time delay, util::SmallFn fn, NodeId owner = kNoOwner);

  /// Cancels a scheduled event. Safe for any id: an already-executed,
  /// already-cancelled, or never-issued id is an O(1) no-op (stale timer
  /// handles from long-lived processes cannot leak queue state).
  void cancel(EventId id);

  /// Constructs a process of type T, registers it, and returns a reference.
  /// NodeIds are assigned densely in spawn order, so a fixed construction
  /// order yields fixed ids.
  template <typename T, typename... Args>
  T& spawn(Args&&... args) {
    auto proc = std::make_unique<T>(next_node_id(), *this, std::forward<Args>(args)...);
    T& ref = *proc;
    register_process(std::move(proc));
    return ref;
  }

  Process& process(NodeId id);
  const Process& process(NodeId id) const;
  std::size_t process_count() const { return processes_.size(); }

  /// Calls start() on every spawned process (in id order).
  void start_all();

  /// Crash-stop `id` at the current time: no more sends, receives, or timers.
  void crash(NodeId id);
  bool crashed(NodeId id) const;

  /// Runs events until the queue empties or `t_end` passes. Returns the
  /// number of events executed. Throws if `max_events` is exceeded
  /// (runaway-protocol guard).
  std::size_t run_until(Time t_end, std::size_t max_events = 50'000'000);

  /// Runs until the event queue is empty.
  std::size_t run(std::size_t max_events = 50'000'000);

  /// Live events currently queued — cancelled-but-unreclaimed entries are
  /// excluded, so the `queue.events` gauge reports true queue depth.
  std::size_t pending_events() const { return live_.live_count(); }

  /// Events dispatched so far (the run's logical step counter).
  std::uint64_t events_dispatched() const { return dispatched_; }

  /// Installs schedule perturbation. Must be called before any event has
  /// dispatched (the perturbed prefix could otherwise not be replayed).
  /// Off by default: an unperturbed run keeps the exact (time, id) order.
  void enable_perturbation(const PerturbConfig& config);
  bool perturbing() const { return perturb_ != nullptr; }

  /// Extra delivery delay drawn from the perturbation stream — uniform in
  /// [0, max_extra_delay]. 0 (and no stream consumption) when perturbation
  /// is off or the jitter bound is 0. Called by Network per delivery.
  Time perturb_extra_delay();

  /// Tie-break decisions recorded so far (empty unless perturbing with
  /// tie_break; only genuine ties — 2+ ready events — are recorded).
  const std::vector<TieDecision>& tie_decisions() const;

  /// FNV-1a digest over the (time, id) sequence of every dispatched event:
  /// two runs with equal digests executed byte-identical event orders.
  std::uint64_t schedule_digest() const { return schedule_digest_; }

  util::Rng& rng() { return rng_; }
  obs::Registry& metrics() { return metrics_; }
  obs::Tracer& tracer() { return tracer_; }
  Trace& trace() { return trace_; }
  Network& net() { return net_; }
  obs::LamportClocks& lamports() { return lamports_; }

 private:
  struct Event {
    Time time = 0;
    EventId id = 0;
    NodeId owner = kNoOwner;  // crash-stop guard; kNoOwner fires always
    util::SmallFn fn;
    // The scheduling context propagates to the event: a timer or cpu slice
    // scheduled inside a traced request stays part of that trace.
    obs::TraceContext ctx;
  };

  NodeId next_node_id() const { return static_cast<NodeId>(processes_.size()); }
  void register_process(std::unique_ptr<Process> proc);

  struct Perturb {
    PerturbConfig config;
    util::Rng rng;
    std::vector<TieDecision> decisions;
    explicit Perturb(const PerturbConfig& c) : config(c), rng(c.seed) {}
  };

  /// Pops the next live event into `ev` (skipping and reclaiming dead
  /// entries). Returns false when the queue holds no live event. With
  /// tie-break perturbation on, a random ready event runs first instead of
  /// the lowest-id one.
  bool pop_next(Event& ev);
  /// The unperturbed part of pop_next: lowest (time, id) live event.
  bool pop_live(Event& ev);
  /// Checked dispatch shared by run() and run_until(): asserts time never
  /// rewinds, advances the clock, and runs the handler in its context.
  void dispatch(Event& ev);
  void maybe_compact();

  Time now_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t schedule_digest_ = 14695981039346656037ull;  // FNV-1a basis
  std::unique_ptr<Perturb> perturb_;
  EventId next_event_id_ = 1;
  EventHeap<Event> queue_;
  IdWindow live_;              // liveness per event id; validates cancels
  std::size_t lazy_dead_ = 0;  // cancelled entries still inside queue_
  std::vector<std::unique_ptr<Process>> processes_;
  util::Rng rng_;
  obs::Registry metrics_;
  obs::Tracer tracer_;
  Trace trace_;
  Network net_;
  obs::LamportClocks lamports_;
  obs::TimeSource::Token time_token_ = obs::TimeSource::kNoToken;
};

}  // namespace repli::sim
