#include "sim/network.hh"

#include <algorithm>
#include <utility>

#include "obs/context.hh"
#include "sim/process.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::sim {

Network::Network(Simulator& sim, NetworkConfig config) : sim_(sim), config_(config) {}

void Network::set_partition(std::function<bool(NodeId, NodeId)> blocked) {
  blocked_ = std::move(blocked);
}

Time Network::delivery_delay(NodeId from, NodeId to, std::size_t bytes) {
  if (from == to) return 0;
  Time delay = config_.base_latency;
  delay += static_cast<Time>(sim_.rng().exponential(static_cast<double>(config_.jitter_mean)));
  if (config_.bytes_per_usec > 0.0) {
    delay += static_cast<Time>(static_cast<double>(bytes) / config_.bytes_per_usec);
  }
  return delay;
}

void Network::send(NodeId from, NodeId to, wire::MessagePtr msg) {
  util::ensure(msg != nullptr, "Network::send: null message");
  const bool cross_link = from != to;

  // Stamp the causal context onto the wire frame: trace id from the ambient
  // context, parent span = the innermost span open on the sender, Lamport
  // clock ticked per cross-node send.
  wire::WireContext wctx;
  const obs::TraceContext& cur = obs::current_context();
  wctx.trace_id = cur.trace_id;
  const obs::SpanId src_span = sim_.tracer().innermost_open(from);
  wctx.parent_span = src_span != obs::kNoSpan ? src_span : cur.parent_span;
  wctx.lamport = cross_link ? sim_.lamports().tick(from) : sim_.lamports().value(from);

  const std::vector<std::uint8_t> bytes = wire::encode_framed(*msg, wctx);
  ++messages_sent_;
  bytes_sent_ += static_cast<std::int64_t>(bytes.size());
  ++per_type_count_[std::string(msg->type_name())];
  per_type_bytes_[std::string(msg->type_name())] += static_cast<std::int64_t>(bytes.size());

  MessageEvent ev;
  ev.from = from;
  ev.to = to;
  ev.type = std::string(msg->type_name());
  ev.sent = sim_.now();
  ev.bytes = bytes.size();

  if (cross_link && blocked_ && blocked_(from, to)) {
    drop(ev, "partition");
    return;
  }
  if (cross_link && sim_.rng().bernoulli(config_.drop_probability)) {
    drop(ev, "loss");
    return;
  }

  Time delay = delivery_delay(from, to, bytes.size());
  if (config_.fifo_links && cross_link) {
    const auto key = std::make_pair(from, to);
    Time& last = last_delivery_[key];
    const Time at = std::max(sim_.now() + delay, last + 1);
    delay = at - sim_.now();
    last = at;
  }

  // Deliver a decoded copy so receivers can never alias sender state.
  wire::MessagePtr delivered = msg;
  if (config_.serialize) {
    delivered = wire::decode_framed(bytes).msg;
  }

  ev.delivered = sim_.now() + delay;
  sim_.trace().message(ev);

  // Record the message edge for cross-node deliveries; the receiver-side
  // Lamport value is filled in when the delivery event runs.
  std::uint64_t flow_id = 0;
  if (cross_link) {
    obs::Flow flow;
    flow.trace = wctx.trace_id;
    flow.src_span = src_span;
    flow.from = from;
    flow.to = to;
    flow.sent = ev.sent;
    flow.recv = ev.delivered;
    flow.lamport_send = wctx.lamport;
    flow.type = ev.type;
    flow_id = sim_.tracer().flow(std::move(flow));
  }

  sim_.schedule_after(delay, [this, from, to, wctx, flow_id,
                              delivered = std::move(delivered)] {
    if (sim_.crashed(to)) return;
    if (from != to && blocked_ && blocked_(from, to)) return;  // partition cut in-flight
    if (from != to) {
      const std::int64_t merged = sim_.lamports().merge(to, wctx.lamport);
      if (flow_id != 0) sim_.tracer().flow_recv_lamport(flow_id, merged);
      obs::ContextScope scope(obs::TraceContext{
          wctx.trace_id, static_cast<obs::SpanId>(wctx.parent_span), merged});
      sim_.process(to).on_message(from, delivered);
    } else {
      sim_.process(to).on_message(from, delivered);
    }
  });
}

void Network::drop(MessageEvent& ev, const char* reason) {
  ev.dropped = true;
  ++messages_dropped_;
  sim_.trace().message(ev);
  sim_.metrics().incr("net.dropped");
  sim_.metrics().counter("net.dropped_by_reason", obs::label("reason", reason)).incr();
  sim_.tracer().instant(ev.from, "net/drop", ev.sent, "",
                        obs::Attrs{{"type", ev.type},
                                   {"to", std::to_string(ev.to)},
                                   {"reason", reason}});
  util::log_info("drop (", reason, "): ", ev.type, " ", ev.from, " -> ", ev.to);
}

std::int64_t Network::messages_excluding(const std::string& type) const {
  const auto it = per_type_count_.find(type);
  return messages_sent_ - (it == per_type_count_.end() ? 0 : it->second);
}

std::int64_t Network::bytes_excluding(const std::string& type) const {
  const auto it = per_type_bytes_.find(type);
  return bytes_sent_ - (it == per_type_bytes_.end() ? 0 : it->second);
}

void Network::reset_accounting() {
  messages_sent_ = 0;
  messages_dropped_ = 0;
  bytes_sent_ = 0;
  per_type_count_.clear();
  per_type_bytes_.clear();
}

}  // namespace repli::sim
