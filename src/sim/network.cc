#include "sim/network.hh"

#include <algorithm>
#include <utility>

#include "obs/context.hh"
#include "obs/profile.hh"
#include "sim/process.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::sim {

Network::Network(Simulator& sim, NetworkConfig config) : sim_(sim), config_(config) {}

void Network::set_partition(std::function<bool(NodeId, NodeId)> blocked) {
  // Replacing the predicate mid-run is a clean swap: deliveries consult
  // blocked_ at delivery time, so in-flight messages obey the *new*
  // predicate, and buffered coalescing frames were already filtered at
  // send time. Exploration swaps partitions constantly; count the swaps so
  // a runaway fault plan is visible in the metrics.
  const bool replacing = static_cast<bool>(blocked_);
  blocked_ = std::move(blocked);
  sim_.metrics().incr("net.partition_swaps");
  if (replacing) {
    util::log_debug("set_partition: replaced active predicate (swap, in-flight "
                    "messages follow the new one)");
  }
}

Time Network::delivery_delay(NodeId from, NodeId to, std::size_t bytes) {
  if (from == to) return 0;
  Time delay = config_.base_latency;
  delay += static_cast<Time>(sim_.rng().exponential(static_cast<double>(config_.jitter_mean)));
  if (config_.bytes_per_usec > 0.0) {
    delay += static_cast<Time>(static_cast<double>(bytes) / config_.bytes_per_usec);
  }
  // Exploration jitter: bounded extra delay from the schedule-perturbation
  // stream (0, and no stream consumption, when perturbation is off).
  delay += sim_.perturb_extra_delay();
  return delay;
}

void Network::send(NodeId from, NodeId to, wire::MessagePtr msg) {
  obs::ProfScope prof(obs::CostCenter::NetDelivery);
  util::ensure(msg != nullptr, "Network::send: null message");
  const bool cross_link = from != to;

  // Stamp the causal context onto the wire frame: trace id from the ambient
  // context, parent span = the innermost span open on the sender, Lamport
  // clock ticked per cross-node send.
  wire::WireContext wctx;
  const obs::TraceContext& cur = obs::current_context();
  wctx.trace_id = cur.trace_id;
  const obs::SpanId src_span = sim_.tracer().innermost_open(from);
  wctx.parent_span = src_span != obs::kNoSpan ? src_span : cur.parent_span;
  wctx.lamport = cross_link ? sim_.lamports().tick(from) : sim_.lamports().value(from);

  // Encode into the reused scratch writer: the bytes are only needed
  // synchronously (size accounting + the immediate decode below), so the
  // buffer's capacity is recycled across sends.
  scratch_.clear();
  wire::encode_framed_into(scratch_, *msg, wctx);
  const std::span<const std::uint8_t> bytes = scratch_.span();
  const std::string_view type = msg->type_name();
  bytes_sent_ += static_cast<std::int64_t>(bytes.size());
  ++per_type_count_[type];
  per_type_bytes_[type] += static_cast<std::int64_t>(bytes.size());

  MessageEvent ev;
  ev.from = from;
  ev.to = to;
  ev.type = type;
  ev.sent = sim_.now();
  ev.bytes = bytes.size();

  // Frame coalescing: buffer eligible cross-link messages per (from, to)
  // and ship them as one physical frame. Heartbeats are exempt (failure
  // detection latency; exact heartbeat-exclusion accounting), self-sends
  // are already free.
  const bool coalesce =
      config_.coalesce_window > 0 && cross_link && ev.type != "gcs.Heartbeat";
  if (coalesce) {
    // Loss and partitions apply per logical message at send time, exactly
    // like the per-message path (ARQ above retransmits individually).
    if (blocked_ && blocked_(from, to)) {
      ++messages_sent_;
      drop(ev, "partition");
      return;
    }
    if (sim_.rng().bernoulli(config_.drop_probability)) {
      ++messages_sent_;
      drop(ev, "loss");
      return;
    }
    FrameEntry entry;
    entry.wctx = wctx;
    entry.src_span = src_span;
    entry.msg = config_.serialize ? wire::decode_framed(bytes).msg : msg;
    entry.type = ev.type;
    entry.bytes = bytes.size();
    entry.enqueued = sim_.now();
    FrameBuffer& buf = frames_[{from, to}];
    buf.entries.push_back(std::move(entry));
    if (static_cast<int>(buf.entries.size()) >= config_.coalesce_max_msgs) {
      flush_frame(from, to);
      return;
    }
    if (buf.entries.size() == 1) {
      const std::uint64_t epoch = buf.epoch;
      sim_.schedule_after(config_.coalesce_window, [this, from, to, epoch] {
        const auto it = frames_.find({from, to});
        if (it != frames_.end() && it->second.epoch == epoch && !it->second.entries.empty()) {
          flush_frame(from, to);
        }
      });
    }
    return;
  }

  ++messages_sent_;
  if (cross_link && blocked_ && blocked_(from, to)) {
    drop(ev, "partition");
    return;
  }
  if (cross_link && sim_.rng().bernoulli(config_.drop_probability)) {
    drop(ev, "loss");
    return;
  }

  Time delay = delivery_delay(from, to, bytes.size());
  if (config_.fifo_links && cross_link) {
    const auto key = std::make_pair(from, to);
    Time& last = last_delivery_[key];
    const Time at = std::max(sim_.now() + delay, last + 1);
    delay = at - sim_.now();
    last = at;
  }

  // Deliver a decoded copy so receivers can never alias sender state.
  wire::MessagePtr delivered = msg;
  if (config_.serialize) {
    delivered = wire::decode_framed(bytes).msg;
  }

  ev.delivered = sim_.now() + delay;
  sim_.trace().message(ev);

  // Record the message edge for cross-node deliveries; the receiver-side
  // Lamport value is filled in when the delivery event runs.
  std::uint64_t flow_id = 0;
  if (cross_link) {
    obs::Flow flow;
    flow.trace = wctx.trace_id;
    flow.src_span = src_span;
    flow.from = from;
    flow.to = to;
    flow.sent = ev.sent;
    flow.recv = ev.delivered;
    flow.lamport_send = wctx.lamport;
    flow.type = ev.type;
    flow_id = sim_.tracer().flow(std::move(flow));
  }

  ++inflight_[{from, to}];
  ++inflight_total_;
  auto deliver = [this, from, to, wctx, flow_id,
                  delivered = std::move(delivered)] {
    obs::ProfScope dprof(obs::CostCenter::NetDelivery);
    --inflight_[{from, to}];
    --inflight_total_;
    if (sim_.crashed(to)) return;
    if (from != to && blocked_ && blocked_(from, to)) return;  // partition cut in-flight
    if (from != to) {
      const std::int64_t merged = sim_.lamports().merge(to, wctx.lamport);
      if (flow_id != 0) sim_.tracer().flow_recv_lamport(flow_id, merged);
      obs::ContextScope scope(obs::TraceContext{
          wctx.trace_id, static_cast<obs::SpanId>(wctx.parent_span), merged});
      sim_.process(to).on_message(from, delivered);
    } else {
      sim_.process(to).on_message(from, delivered);
    }
  };
  // The per-delivery event is the hottest schedule site in the system; its
  // captures must stay within SmallFn's inline buffer or every message
  // costs a heap allocation again.
  static_assert(sizeof(deliver) <= util::SmallFn::kInlineBytes);
  sim_.schedule_after(delay, std::move(deliver));
}

void Network::flush_frame(NodeId from, NodeId to) {
  obs::ProfScope prof(obs::CostCenter::NetDelivery);
  FrameBuffer& buf = frames_[{from, to}];
  ++buf.epoch;
  std::vector<FrameEntry> entries = std::move(buf.entries);
  buf.entries.clear();
  if (entries.empty()) return;

  // One physical frame for the whole batch.
  ++messages_sent_;
  std::size_t frame_bytes = 0;
  for (const FrameEntry& e : entries) frame_bytes += e.bytes;
  sim_.metrics().histogram("net.coalesce.occupancy")
      .observe(static_cast<double>(entries.size()));
  sim_.metrics().incr("net.coalesce.frames");
  sim_.metrics().incr("net.coalesce.msgs", static_cast<std::int64_t>(entries.size()));

  Time delay = delivery_delay(from, to, frame_bytes);
  if (config_.fifo_links) {
    const auto key = std::make_pair(from, to);
    Time& last = last_delivery_[key];
    const Time at = std::max(sim_.now() + delay, last + 1);
    delay = at - sim_.now();
    last = at;
  }
  const Time arrival = sim_.now() + delay;

  for (FrameEntry& e : entries) {
    MessageEvent ev;
    ev.from = from;
    ev.to = to;
    ev.type = e.type;
    ev.sent = e.enqueued;
    ev.delivered = arrival;
    ev.bytes = e.bytes;
    sim_.trace().message(ev);

    obs::Flow flow;
    flow.trace = e.wctx.trace_id;
    flow.src_span = e.src_span;
    flow.from = from;
    flow.to = to;
    flow.sent = e.enqueued;
    flow.recv = arrival;
    flow.lamport_send = e.wctx.lamport;
    flow.type = e.type;
    e.flow_id = sim_.tracer().flow(std::move(flow));
  }

  ++inflight_[{from, to}];
  ++inflight_total_;
  sim_.schedule_after(delay, [this, from, to, entries = std::move(entries)] {
    obs::ProfScope dprof(obs::CostCenter::NetDelivery);
    --inflight_[{from, to}];
    --inflight_total_;
    if (sim_.crashed(to)) return;
    if (blocked_ && blocked_(from, to)) return;  // partition cut in-flight
    for (const FrameEntry& e : entries) {
      const std::int64_t merged = sim_.lamports().merge(to, e.wctx.lamport);
      if (e.flow_id != 0) sim_.tracer().flow_recv_lamport(e.flow_id, merged);
      obs::ContextScope scope(obs::TraceContext{
          e.wctx.trace_id, static_cast<obs::SpanId>(e.wctx.parent_span), merged});
      sim_.process(to).on_message(from, e.msg);
    }
  });
}

void Network::drop(MessageEvent& ev, const char* reason) {
  ev.dropped = true;
  ++messages_dropped_;
  sim_.trace().message(ev);
  sim_.metrics().incr("net.dropped");
  sim_.metrics().counter("net.dropped_by_reason", obs::label("reason", reason)).incr();
  sim_.tracer().instant(ev.from, "net/drop", ev.sent, "",
                        obs::Attrs{{"type", std::string(ev.type)},
                                   {"to", std::to_string(ev.to)},
                                   {"reason", reason}});
  util::log_info("drop (", reason, "): ", ev.type, " ", ev.from, " -> ", ev.to);
}

std::int64_t Network::inflight_max_link() const {
  std::int64_t max = 0;
  for (const auto& [link, n] : inflight_) max = std::max(max, n);
  return max;
}

std::int64_t Network::messages_excluding(std::string_view type) const {
  const auto it = per_type_count_.find(type);
  return messages_sent_ - (it == per_type_count_.end() ? 0 : it->second);
}

std::int64_t Network::bytes_excluding(std::string_view type) const {
  const auto it = per_type_bytes_.find(type);
  return bytes_sent_ - (it == per_type_bytes_.end() ? 0 : it->second);
}

void Network::reset_accounting() {
  messages_sent_ = 0;
  messages_dropped_ = 0;
  bytes_sent_ = 0;
  per_type_count_.clear();
  per_type_bytes_.clear();
}

}  // namespace repli::sim
