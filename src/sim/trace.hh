// Run traces: the functional-model phase timeline (the paper's RE/SC/EX/AC/
// END phases, Fig. 1) plus a message log. Figure benches render these
// directly; Fig. 15/16 are derived from `pattern()`.
//
// The span tracer is the single source of truth for phase events: `phase()`
// records a "core/<abbrev>" span (on the bound tracer — the Simulator binds
// its own — or an owned fallback for standalone use) and `phases()` &c. are
// derived from those spans, so the phase timeline and the lower-layer spans
// (gcs/, db/) can never disagree.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "sim/time.hh"

namespace repli::sim {

/// The five phases of the paper's functional model (Section 2.2).
enum class Phase {
  Request,         // RE
  ServerCoord,     // SC
  Execution,       // EX
  AgreementCoord,  // AC
  Response,        // END
};

std::string_view phase_name(Phase p);        // long name, e.g. "Server Coordination"
std::string_view phase_abbrev(Phase p);      // paper abbreviation, e.g. "SC"

struct PhaseEvent {
  std::string request;  // request/transaction id the phase belongs to
  NodeId node = kNoNode;
  Phase phase{};
  Time start = 0;
  Time end = 0;
};

struct MessageEvent {
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  // Wire type name. Views the message type's static kTypeName storage
  // (program lifetime), so the hot send path copies no string.
  std::string_view type;
  Time sent = 0;
  Time delivered = 0;  // meaningful only when !dropped
  std::size_t bytes = 0;
  bool dropped = false;
};

class Trace {
 public:
  /// Phase spans land on `tracer` (nullptr unbinds; an owned fallback
  /// tracer is then used). Not owned.
  void bind_spans(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Observer called on every recorded phase span — the protocol-phase
  /// boundary stream the exploration driver injects faults at. The hook
  /// runs inside the recording event; act on the simulator only by
  /// scheduling (e.g. schedule a crash at the current time), never by
  /// mutating processes re-entrantly. nullptr uninstalls.
  using PhaseHook =
      std::function<void(const std::string& request, NodeId node, Phase phase, Time start,
                         Time end)>;
  void set_phase_hook(PhaseHook hook) { phase_hook_ = std::move(hook); }

  /// Records the phase span and returns its id (for attaching attrs, e.g.
  /// the ok flag on a failed response).
  obs::SpanId phase(std::string request, NodeId node, Phase phase, Time start, Time end);
  void message(const MessageEvent& ev);

  /// Phase events, derived from the tracer's core/RE..core/END spans in
  /// recording order.
  std::vector<PhaseEvent> phases() const;
  const std::vector<MessageEvent>& messages() const { return messages_; }

  /// Phase events of one request, ordered by (start, node).
  std::vector<PhaseEvent> phases_for(const std::string& request) const;

  /// Canonical phase pattern of a request: phases ordered by first start
  /// time, consecutive duplicates merged — e.g. {RE, SC, EX, END} for
  /// active replication. This is what Figures 15 and 16 tabulate.
  std::vector<Phase> pattern(const std::string& request) const;

  /// All distinct request ids seen, in first-appearance order.
  std::vector<std::string> requests() const;

  /// Clears the message log and, when using the owned fallback tracer, its
  /// spans. Spans on a bound tracer belong to its owner and are kept.
  void clear();

 private:
  obs::Tracer& sink();
  const obs::Tracer* source() const;

  std::vector<MessageEvent> messages_;
  PhaseHook phase_hook_;
  obs::Tracer* tracer_ = nullptr;
  std::unique_ptr<obs::Tracer> own_;  // standalone Trace (no bound tracer)
};

/// Maps a paper abbreviation back to the phase (nullopt for other strings).
std::optional<Phase> phase_from_abbrev(std::string_view abbrev);

/// Renders a pattern as the paper prints it, e.g. "RE SC EX END".
std::string pattern_to_string(const std::vector<Phase>& pattern);

}  // namespace repli::sim
