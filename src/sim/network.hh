// Simulated point-to-point network.
//
// Latency = base + Exp(jitter_mean) + bytes/bandwidth; messages can be
// dropped randomly or by a partition predicate; link FIFO-ness is
// configurable (off by default: the asynchronous model of the paper).
// Every send really encodes the message to bytes and every delivery decodes
// a fresh object through the wire registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"
#include "sim/trace.hh"
#include "wire/codec.hh"
#include "wire/message.hh"

namespace repli::sim {

class Simulator;

struct NetworkConfig {
  Time base_latency = 100 * kUsec;   // fixed one-way cost
  Time jitter_mean = 50 * kUsec;     // mean of exponential jitter
  double bytes_per_usec = 100.0;     // bandwidth (transmission delay = size/bw)
  double drop_probability = 0.0;     // iid per message
  bool fifo_links = false;           // enforce per-(from,to) ordering
  bool serialize = true;             // encode/decode through the wire layer
  /// Frame coalescing: with coalesce_window > 0, cross-link messages to the
  /// same destination are gathered for up to the window (or until
  /// coalesce_max_msgs) and shipped as ONE physical frame — messages_sent()
  /// then counts frames, while per_type_count() keeps counting logical
  /// messages. Heartbeats ("gcs.Heartbeat") are exempt so failure detection
  /// latency and the heartbeat-exclusion accounting stay exact. 0 (the
  /// default) is the exact legacy per-message path.
  Time coalesce_window = 0;
  int coalesce_max_msgs = 16;
};

class Network {
 public:
  Network(Simulator& sim, NetworkConfig config);

  /// Sends `msg` from `from` to `to`. Self-sends are delivered with zero
  /// network cost (but still on a fresh event, never re-entrantly).
  void send(NodeId from, NodeId to, wire::MessagePtr msg);

  /// Cuts/heals links according to `blocked(from, to)`; nullptr heals all.
  void set_partition(std::function<bool(NodeId, NodeId)> blocked);

  const NetworkConfig& config() const { return config_; }

  // Accounting (since construction).
  std::int64_t messages_sent() const { return messages_sent_; }
  std::int64_t messages_dropped() const { return messages_dropped_; }
  std::int64_t bytes_sent() const { return bytes_sent_; }
  // Keys view the message types' static kTypeName storage, so per-send
  // accounting builds no temporary strings.
  const std::map<std::string_view, std::int64_t>& per_type_count() const {
    return per_type_count_;
  }
  const std::map<std::string_view, std::int64_t>& per_type_bytes() const {
    return per_type_bytes_;
  }
  /// Messages/bytes excluding a wire type (e.g. failure-detector heartbeats).
  std::int64_t messages_excluding(std::string_view type) const;
  std::int64_t bytes_excluding(std::string_view type) const;

  // Saturation gauges (sampled by the cluster monitor): physical frames
  // currently scheduled but not yet delivered, in total and on the fullest
  // single (from, to) link.
  std::int64_t inflight_total() const { return inflight_total_; }
  std::int64_t inflight_max_link() const;

  void reset_accounting();

 private:
  /// One logical message buffered for a coalesced frame.
  struct FrameEntry {
    wire::WireContext wctx;
    std::uint64_t src_span = 0;
    wire::MessagePtr msg;  // decoded copy (or the original when !serialize)
    std::string_view type;
    std::size_t bytes = 0;
    Time enqueued = 0;
    std::uint64_t flow_id = 0;  // assigned at flush
  };
  struct FrameBuffer {
    std::vector<FrameEntry> entries;
    std::uint64_t epoch = 0;  // invalidates stale flush events
  };

  Time delivery_delay(NodeId from, NodeId to, std::size_t bytes);
  /// Records a dropped message: trace event, net/drop instant, counters.
  void drop(MessageEvent& ev, const char* reason);
  void flush_frame(NodeId from, NodeId to);

  Simulator& sim_;
  NetworkConfig config_;
  std::function<bool(NodeId, NodeId)> blocked_;
  std::map<std::pair<NodeId, NodeId>, Time> last_delivery_;  // for fifo_links
  std::map<std::pair<NodeId, NodeId>, FrameBuffer> frames_;  // coalescing buffers
  std::map<std::pair<NodeId, NodeId>, std::int64_t> inflight_;  // scheduled, undelivered
  std::int64_t inflight_total_ = 0;
  std::int64_t messages_sent_ = 0;
  std::int64_t messages_dropped_ = 0;
  std::int64_t bytes_sent_ = 0;
  std::map<std::string_view, std::int64_t> per_type_count_;
  std::map<std::string_view, std::int64_t> per_type_bytes_;
  wire::Writer scratch_;  // reused per send: encode allocates only to warm up
};

}  // namespace repli::sim
