// Simulated time and node identity. Time is in integer microseconds; there
// is no wall clock anywhere in the library.
#pragma once

#include <cstdint>

namespace repli::sim {

using Time = std::int64_t;

constexpr Time kUsec = 1;
constexpr Time kMsec = 1000 * kUsec;
constexpr Time kSec = 1000 * kMsec;

using NodeId = std::int32_t;
constexpr NodeId kNoNode = -1;

}  // namespace repli::sim
