#include "sim/simulator.hh"

#include "obs/profile.hh"
#include "sim/process.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::sim {

Simulator::Simulator(std::uint64_t seed, NetworkConfig net_config)
    : rng_(seed), net_(*this, net_config) {
  trace_.bind_spans(&tracer_);
  obs::install_log_time_prefix();
  time_token_ = obs::TimeSource::instance().push([this] { return now_; });
}

Simulator::~Simulator() { obs::TimeSource::instance().remove(time_token_); }

Simulator::EventId Simulator::schedule_at(Time t, std::function<void()> fn) {
  util::ensure(t >= now_, "Simulator::schedule_at: scheduling into the past");
  const EventId id = next_event_id_++;
  queue_.push(Event{t, id, std::move(fn), obs::current_context()});
  return id;
}

Simulator::EventId Simulator::schedule_after(Time delay, std::function<void()> fn) {
  util::ensure(delay >= 0, "Simulator::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (id != kNoEvent) cancelled_.insert(id);
}

void Simulator::register_process(std::unique_ptr<Process> proc) {
  util::ensure(proc->id() == static_cast<NodeId>(processes_.size()),
               "Simulator: process id out of sequence");
  processes_.push_back(std::move(proc));
}

Process& Simulator::process(NodeId id) {
  util::ensure(id >= 0 && static_cast<std::size_t>(id) < processes_.size(),
               "Simulator::process: bad node id");
  return *processes_[static_cast<std::size_t>(id)];
}

const Process& Simulator::process(NodeId id) const {
  util::ensure(id >= 0 && static_cast<std::size_t>(id) < processes_.size(),
               "Simulator::process: bad node id");
  return *processes_[static_cast<std::size_t>(id)];
}

void Simulator::start_all() {
  for (const auto& proc : processes_) {
    if (!proc->crashed()) proc->start();
  }
}

void Simulator::crash(NodeId id) {
  auto& proc = process(id);
  if (proc.crashed()) return;
  util::log_info("crash: node ", id, " (", proc.name(), ")");
  proc.mark_crashed();
  metrics_.incr("sim.crashes");
}

bool Simulator::crashed(NodeId id) const { return process(id).crashed(); }

std::size_t Simulator::run_until(Time t_end, std::size_t max_events) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    Event ev = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    util::ensure(ev.time >= now_, "Simulator: time went backwards");
    now_ = ev.time;
    {
      obs::ProfScope prof(obs::CostCenter::SimDispatch);
      obs::ContextScope scope(ev.ctx);
      ev.fn();
    }
    if (++executed > max_events) util::fail("Simulator::run_until: event budget exceeded");
  }
  // The horizon has been simulated: nothing can happen before t_end any
  // more, so the clock advances to it even if later events are pending.
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (const auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.time;
    {
      obs::ProfScope prof(obs::CostCenter::SimDispatch);
      obs::ContextScope scope(ev.ctx);
      ev.fn();
    }
    if (++executed > max_events) util::fail("Simulator::run: event budget exceeded");
  }
  return executed;
}

}  // namespace repli::sim
