#include "sim/simulator.hh"

#include "obs/profile.hh"
#include "sim/process.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::sim {
namespace {

// Bulk-compact the heap once dead entries both exceed this floor and
// outnumber live ones; below the floor, pop-time skipping is cheaper than
// an O(n) rebuild.
constexpr std::size_t kCompactFloor = 64;

}  // namespace

Simulator::Simulator(std::uint64_t seed, NetworkConfig net_config)
    : rng_(seed), net_(*this, net_config) {
  trace_.bind_spans(&tracer_);
  obs::install_log_time_prefix();
  time_token_ = obs::TimeSource::instance().push([this] { return now_; });
}

Simulator::~Simulator() { obs::TimeSource::instance().remove(time_token_); }

Simulator::EventId Simulator::schedule_at(Time t, util::SmallFn fn, NodeId owner) {
  util::ensure(t >= now_, "Simulator::schedule_at: scheduling into the past");
  const EventId id = next_event_id_++;
  live_.push(id);
  queue_.push(Event{t, id, owner, std::move(fn), obs::current_context()});
  return id;
}

Simulator::EventId Simulator::schedule_after(Time delay, util::SmallFn fn, NodeId owner) {
  util::ensure(delay >= 0, "Simulator::schedule_after: negative delay");
  return schedule_at(now_ + delay, std::move(fn), owner);
}

void Simulator::cancel(EventId id) {
  // Only a currently-queued event can be cancelled; ids that already
  // executed, were already cancelled, or were never issued are no-ops.
  // (The previous implementation recorded every cancel in a set forever,
  // so stale timer handles leaked an entry each.)
  if (id == kNoEvent || !live_.is_live(id)) return;
  live_.kill(id);
  ++lazy_dead_;
  maybe_compact();
}

void Simulator::maybe_compact() {
  if (lazy_dead_ < kCompactFloor || lazy_dead_ * 2 <= queue_.size()) return;
  const std::size_t removed =
      queue_.compact([this](const Event& ev) { return !live_.is_live(ev.id); });
  util::ensure(removed == lazy_dead_, "Simulator: dead-entry accounting drifted");
  lazy_dead_ = 0;
}

bool Simulator::pop_live(Event& ev) {
  while (!queue_.empty()) {
    ev = queue_.pop_min();
    if (live_.is_live(ev.id)) return true;
    // A cancelled entry surfaced before compaction kicked in: reclaim it.
    util::ensure(lazy_dead_ > 0, "Simulator: dead-entry accounting drifted");
    --lazy_dead_;
  }
  return false;
}

bool Simulator::pop_next(Event& ev) {
  if (!pop_live(ev)) return false;
  if (perturb_ == nullptr || !perturb_->config.tie_break) return true;
  if (queue_.empty() || queue_.min().time != ev.time) return true;

  // Two or more events are ready at the same instant: gather the whole tie
  // set, pick one uniformly from the schedule-choice stream, and push the
  // rest back (their ids stay live — only dispatch kills ids). Events the
  // chosen handler schedules for the same instant join the next draw, so
  // repeated draws walk a random interleaving of the ready set.
  std::vector<Event> ties;
  ties.push_back(std::move(ev));
  while (!queue_.empty() && queue_.min().time == ties.front().time) {
    Event next = queue_.pop_min();
    if (!live_.is_live(next.id)) {
      util::ensure(lazy_dead_ > 0, "Simulator: dead-entry accounting drifted");
      --lazy_dead_;
      continue;
    }
    ties.push_back(std::move(next));
  }
  std::size_t pick = 0;
  if (ties.size() > 1) {
    pick = static_cast<std::size_t>(
        perturb_->rng.uniform(0, static_cast<std::int64_t>(ties.size()) - 1));
    perturb_->decisions.push_back(TieDecision{ties.front().time,
                                              static_cast<std::uint32_t>(ties.size()),
                                              static_cast<std::uint32_t>(pick)});
  }
  for (std::size_t i = 0; i < ties.size(); ++i) {
    if (i != pick) queue_.push(std::move(ties[i]));
  }
  ev = std::move(ties[pick]);
  return true;
}

void Simulator::enable_perturbation(const PerturbConfig& config) {
  util::ensure(dispatched_ == 0,
               "Simulator::enable_perturbation: events already dispatched "
               "(a perturbed prefix could not be replayed)");
  util::ensure(perturb_ == nullptr, "Simulator::enable_perturbation: already enabled");
  perturb_ = std::make_unique<Perturb>(config);
}

Time Simulator::perturb_extra_delay() {
  if (perturb_ == nullptr || perturb_->config.max_extra_delay <= 0) return 0;
  return perturb_->rng.uniform(0, perturb_->config.max_extra_delay);
}

const std::vector<TieDecision>& Simulator::tie_decisions() const {
  static const std::vector<TieDecision> kEmpty;
  return perturb_ == nullptr ? kEmpty : perturb_->decisions;
}

void Simulator::dispatch(Event& ev) {
  util::ensure(ev.time >= now_, "Simulator: time went backwards");
  now_ = ev.time;
  ++dispatched_;
  // Order digest: FNV-1a over the dispatched (time, id) stream. Two runs
  // with equal digests executed the exact same event order.
  constexpr std::uint64_t kFnvPrime = 1099511628211ull;
  schedule_digest_ = (schedule_digest_ ^ static_cast<std::uint64_t>(ev.time)) * kFnvPrime;
  schedule_digest_ = (schedule_digest_ ^ ev.id) * kFnvPrime;
  live_.kill(ev.id);
  obs::ProfScope prof(obs::CostCenter::SimDispatch);
  obs::ContextScope scope(ev.ctx);
  // Owner-guarded events (timers, cpu slices) go silent once their node
  // crashes; the event itself still dispatches and counts.
  if (ev.owner == kNoOwner || !processes_[static_cast<std::size_t>(ev.owner)]->crashed()) {
    ev.fn();
  }
}

void Simulator::register_process(std::unique_ptr<Process> proc) {
  util::ensure(proc->id() == static_cast<NodeId>(processes_.size()),
               "Simulator: process id out of sequence");
  processes_.push_back(std::move(proc));
}

Process& Simulator::process(NodeId id) {
  util::ensure(id >= 0 && static_cast<std::size_t>(id) < processes_.size(),
               "Simulator::process: bad node id");
  return *processes_[static_cast<std::size_t>(id)];
}

const Process& Simulator::process(NodeId id) const {
  util::ensure(id >= 0 && static_cast<std::size_t>(id) < processes_.size(),
               "Simulator::process: bad node id");
  return *processes_[static_cast<std::size_t>(id)];
}

void Simulator::start_all() {
  for (const auto& proc : processes_) {
    if (!proc->crashed()) proc->start();
  }
}

void Simulator::crash(NodeId id) {
  // process() validates the id with a clear message; crashing an
  // already-crashed node is a validated no-op (crash-stop is idempotent) —
  // exploration fault plans hit both constantly, and neither may corrupt
  // the run or double-count sim.crashes.
  auto& proc = process(id);
  if (proc.crashed()) {
    util::log_debug("crash: node ", id, " already crashed (no-op)");
    return;
  }
  util::log_info("crash: node ", id, " (", proc.name(), ")");
  proc.mark_crashed();
  metrics_.incr("sim.crashes");
}

bool Simulator::crashed(NodeId id) const { return process(id).crashed(); }

std::size_t Simulator::run_until(Time t_end, std::size_t max_events) {
  std::size_t executed = 0;
  Event ev;
  while (!queue_.empty() && queue_.min().time <= t_end) {
    if (!pop_next(ev)) break;
    if (ev.time > t_end) {
      // The live minimum can sit past t_end behind a dead entry that was
      // within it; the event belongs to a later horizon — push it back
      // (its id is still live in the window: only dispatch kills ids).
      queue_.push(std::move(ev));
      break;
    }
    dispatch(ev);
    if (++executed > max_events) util::fail("Simulator::run_until: event budget exceeded");
  }
  // The horizon has been simulated: nothing can happen before t_end any
  // more, so the clock advances to it even if later events are pending.
  if (now_ < t_end) now_ = t_end;
  return executed;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t executed = 0;
  Event ev;
  while (pop_next(ev)) {
    dispatch(ev);
    if (++executed > max_events) util::fail("Simulator::run: event budget exceeded");
  }
  return executed;
}

}  // namespace repli::sim
