// 4-ary min-heap event queue with lazy deletion.
//
// Replaces std::priority_queue<Event> in the simulator. Pop order is the
// total order (time asc, id asc) — identical to the binary heap it replaces
// (the order is unique, so heap arity cannot change it; a fuzz test holds
// the two implementations byte-identical). Wins over std::priority_queue:
//
//  - 4-ary layout: ~half the tree depth, comparisons stay in one or two
//    cache lines per level — measurably faster sift-down on pop.
//  - pop_min() *moves* the event out; priority_queue::top() is const, so
//    the old loop copied every event (and its std::function, one heap
//    allocation per dispatched event).
//  - Cancellation is a lazy liveness flip validated against an IdWindow:
//    cancelling an executed or never-scheduled id is an O(1) no-op (the
//    PR-6 implementation leaked a set entry per stale cancel, forever).
//    Dead entries are reclaimed when popped, or compacted in bulk when
//    they outnumber the live ones.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/assert.hh"

namespace repli::sim {

/// Liveness window over densely increasing event ids: one byte per id
/// between the oldest live id and the newest issued one. push() must see
/// strictly increasing ids (the simulator's next_event_id_ counter).
/// kill() and is_live() are O(1); the window's base advances past dead
/// prefixes so memory tracks the live id *span*, not run length.
class IdWindow {
 public:
  using Id = std::uint64_t;

  void push(Id id) {
    util::ensure(id >= base_ + count_, "IdWindow: ids must increase");
    // Ids can skip forward (never happens today, but harmless): pad dead.
    while (base_ + count_ < id) append(kDead);
    append(kLive);
    ++live_;
  }

  bool is_live(Id id) const {
    if (id < base_ || id >= base_ + count_) return false;
    return ring_[index(id)] == kLive;
  }

  /// Marks `id` dead (executed or cancelled). Caller checks is_live first.
  void kill(Id id) {
    util::ensure(is_live(id), "IdWindow::kill: id not live");
    ring_[index(id)] = kDead;
    --live_;
    advance();
  }

  std::size_t live_count() const { return live_; }
  std::size_t window_span() const { return count_; }

 private:
  static constexpr std::uint8_t kDead = 0;
  static constexpr std::uint8_t kLive = 1;

  std::size_t index(Id id) const {
    return (head_ + static_cast<std::size_t>(id - base_)) % ring_.size();
  }

  void append(std::uint8_t flag) {
    if (count_ == ring_.size()) grow();
    ring_[(head_ + count_) % ring_.size()] = flag;
    ++count_;
  }

  /// Pops dead flags off the front so the window tracks the live span.
  void advance() {
    while (count_ > 0 && ring_[head_] == kDead) {
      head_ = (head_ + 1) % ring_.size();
      ++base_;
      --count_;
    }
  }

  void grow() {
    const std::size_t old_cap = ring_.size();
    const std::size_t new_cap = old_cap == 0 ? 1024 : old_cap * 2;
    std::vector<std::uint8_t> next(new_cap, kDead);
    for (std::size_t i = 0; i < count_; ++i) next[i] = ring_[(head_ + i) % old_cap];
    ring_.swap(next);
    head_ = 0;
  }

  std::vector<std::uint8_t> ring_;
  std::size_t head_ = 0;   // ring index of base_'s flag
  std::size_t count_ = 0;  // flags currently in the window
  Id base_ = 1;            // first id inside the window (event ids start at 1)
  std::size_t live_ = 0;
};

/// The heap proper. TEvent must expose `time` and `id` members and be
/// movable; ordering is (time, id) ascending.
template <typename TEvent>
class EventHeap {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  const TEvent& min() const { return heap_.front(); }

  void push(TEvent ev) {
    heap_.push_back(std::move(ev));
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the minimum element (moved out, never copied).
  TEvent pop_min() {
    util::ensure(!heap_.empty(), "EventHeap::pop_min: empty");
    TEvent out = std::move(heap_.front());
    TEvent last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = std::move(last);
      sift_down(0);
    }
    return out;
  }

  /// Drops every element for which `dead(ev)` holds and re-heapifies:
  /// O(n), called only when dead entries dominate (amortized O(1) per
  /// cancellation).
  template <typename Pred>
  std::size_t compact(Pred&& dead) {
    std::size_t removed = 0;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (dead(heap_[i])) {
        ++removed;
        continue;
      }
      if (keep != i) heap_[keep] = std::move(heap_[i]);
      ++keep;
    }
    heap_.resize(keep);
    heapify();
    return removed;
  }

  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  static constexpr std::size_t kArity = 4;

  static bool less(const TEvent& a, const TEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }

  void sift_up(std::size_t i) {
    TEvent ev = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!less(ev, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(ev);
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    TEvent ev = std::move(heap_[i]);
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less(heap_[c], heap_[best])) best = c;
      }
      if (!less(heap_[best], ev)) break;
      heap_[i] = std::move(heap_[best]);
      i = best;
    }
    heap_[i] = std::move(ev);
  }

  void heapify() {
    if (heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;) sift_down(i);
  }

  std::vector<TEvent> heap_;
};

}  // namespace repli::sim
