#include "sim/trace.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::sim {

std::string_view phase_name(Phase p) {
  switch (p) {
    case Phase::Request: return "Request";
    case Phase::ServerCoord: return "Server Coordination";
    case Phase::Execution: return "Execution";
    case Phase::AgreementCoord: return "Agreement Coordination";
    case Phase::Response: return "Response";
  }
  util::fail("phase_name: bad phase");
}

std::string_view phase_abbrev(Phase p) {
  switch (p) {
    case Phase::Request: return "RE";
    case Phase::ServerCoord: return "SC";
    case Phase::Execution: return "EX";
    case Phase::AgreementCoord: return "AC";
    case Phase::Response: return "END";
  }
  util::fail("phase_abbrev: bad phase");
}

std::optional<Phase> phase_from_abbrev(std::string_view abbrev) {
  for (const Phase p : {Phase::Request, Phase::ServerCoord, Phase::Execution,
                        Phase::AgreementCoord, Phase::Response}) {
    if (phase_abbrev(p) == abbrev) return p;
  }
  return std::nullopt;
}

obs::Tracer& Trace::sink() {
  if (tracer_ != nullptr) return *tracer_;
  if (own_ == nullptr) own_ = std::make_unique<obs::Tracer>();
  return *own_;
}

const obs::Tracer* Trace::source() const {
  return tracer_ != nullptr ? tracer_ : own_.get();
}

obs::SpanId Trace::phase(std::string request, NodeId node, Phase phase, Time start, Time end) {
  util::ensure(end >= start, "Trace::phase: end before start");
  if (phase_hook_) phase_hook_(request, node, phase, start, end);
  return sink().record(node, "core/" + std::string(phase_abbrev(phase)), start, end,
                       std::move(request));
}

void Trace::message(const MessageEvent& ev) { messages_.push_back(ev); }

std::vector<PhaseEvent> Trace::phases() const {
  std::vector<PhaseEvent> out;
  const obs::Tracer* tracer = source();
  if (tracer == nullptr) return out;
  constexpr std::string_view kPrefix = "core/";
  for (const auto& span : tracer->spans()) {
    if (span.name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    const auto phase = phase_from_abbrev(std::string_view(span.name).substr(kPrefix.size()));
    if (!phase.has_value()) continue;  // other core/ spans are not phases
    out.push_back(PhaseEvent{span.request, span.node, *phase, span.start, span.end});
  }
  return out;
}

std::vector<PhaseEvent> Trace::phases_for(const std::string& request) const {
  std::vector<PhaseEvent> out;
  for (const auto& ev : phases()) {
    if (ev.request == request) out.push_back(ev);
  }
  std::stable_sort(out.begin(), out.end(), [](const PhaseEvent& a, const PhaseEvent& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.node < b.node;
  });
  return out;
}

std::vector<Phase> Trace::pattern(const std::string& request) const {
  const auto events = phases_for(request);
  // Order phases by the earliest time any node entered them, then merge
  // consecutive duplicates: concurrent occurrences of the same phase on
  // several replicas are one step of the functional model.
  std::map<Phase, Time> first_start;
  for (const auto& ev : events) {
    auto [it, inserted] = first_start.emplace(ev.phase, ev.start);
    if (!inserted) it->second = std::min(it->second, ev.start);
  }
  std::vector<std::pair<Time, Phase>> ordered;
  ordered.reserve(first_start.size());
  for (const auto& [phase, t] : first_start) ordered.emplace_back(t, phase);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first < b.first;
    return static_cast<int>(a.second) < static_cast<int>(b.second);
  });
  std::vector<Phase> pattern;
  for (const auto& [t, phase] : ordered) pattern.push_back(phase);
  return pattern;
}

std::vector<std::string> Trace::requests() const {
  std::vector<std::string> out;
  for (const auto& ev : phases()) {
    if (std::find(out.begin(), out.end(), ev.request) == out.end()) out.push_back(ev.request);
  }
  return out;
}

void Trace::clear() {
  messages_.clear();
  if (own_ != nullptr) own_->clear();
}

std::string pattern_to_string(const std::vector<Phase>& pattern) {
  std::string out;
  for (const Phase p : pattern) {
    if (!out.empty()) out += ' ';
    out += phase_abbrev(p);
  }
  return out;
}

}  // namespace repli::sim
