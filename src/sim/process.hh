// Actor base class: a process reacts to messages and timers, and owns a
// one-core "CPU" that serializes its execution costs (so redundant work —
// e.g. active replication executing everywhere — shows up in throughput).
#pragma once

#include <string>

#include "sim/time.hh"
#include "util/smallfn.hh"
#include "wire/message.hh"

namespace repli::sim {

class Simulator;
class Network;

class Process {
 public:
  Process(NodeId id, Simulator& sim, std::string name);
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  bool crashed() const { return crashed_; }

  /// Called once by Simulator::start_all before any messages flow.
  virtual void start() {}

  /// Called by the network on delivery. `from` is the sending node.
  virtual void on_message(NodeId from, wire::MessagePtr msg) = 0;

  // The action API is public so that protocol components (failure detector,
  // broadcast layers, ...) embedded in a process can act through their host.

  void send(NodeId to, wire::MessagePtr msg);

  using TimerId = std::uint64_t;
  static constexpr TimerId kNoTimer = 0;

  /// One-shot timer; silently suppressed if this process crashes first.
  TimerId set_timer(Time delay, util::SmallFn fn);
  void cancel_timer(TimerId id);

  /// Models CPU work: `done` runs after `cost` of busy time on this
  /// process's single core, queued behind earlier work. Suppressed on crash.
  void cpu_execute(Time cost, util::SmallFn done);

  Time now() const;
  Simulator& sim() { return sim_; }
  const Simulator& sim() const { return sim_; }

 private:
  friend class Simulator;
  void mark_crashed() { crashed_ = true; }

  NodeId id_;
  Simulator& sim_;
  std::string name_;
  bool crashed_ = false;
  Time cpu_free_at_ = 0;
};

}  // namespace repli::sim
