#include "sim/process.hh"

#include <utility>

#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::sim {

Process::Process(NodeId id, Simulator& sim, std::string name)
    : id_(id), sim_(sim), name_(std::move(name)) {}

Process::~Process() = default;

void Process::send(NodeId to, wire::MessagePtr msg) {
  if (crashed_) return;  // a crashed process is silent
  sim_.net().send(id_, to, std::move(msg));
}

Process::TimerId Process::set_timer(Time delay, util::SmallFn fn) {
  if (crashed_) return kNoTimer;
  // Owner-guarded: the simulator suppresses the handler if this node has
  // crashed by fire time, so no guard lambda (and no re-erasure) is needed.
  return sim_.schedule_after(delay, std::move(fn), id_);
}

void Process::cancel_timer(TimerId id) { sim_.cancel(id); }

void Process::cpu_execute(Time cost, util::SmallFn done) {
  util::ensure(cost >= 0, "Process::cpu_execute: negative cost");
  if (crashed_) return;
  const Time start = std::max(now(), cpu_free_at_);
  cpu_free_at_ = start + cost;
  sim_.schedule_at(cpu_free_at_, std::move(done), id_);
}

Time Process::now() const { return sim_.now(); }

}  // namespace repli::sim
