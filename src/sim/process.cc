#include "sim/process.hh"

#include <utility>

#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::sim {

Process::Process(NodeId id, Simulator& sim, std::string name)
    : id_(id), sim_(sim), name_(std::move(name)) {}

Process::~Process() = default;

void Process::send(NodeId to, wire::MessagePtr msg) {
  if (crashed_) return;  // a crashed process is silent
  sim_.net().send(id_, to, std::move(msg));
}

Process::TimerId Process::set_timer(Time delay, std::function<void()> fn) {
  if (crashed_) return kNoTimer;
  return sim_.schedule_after(delay, [this, fn = std::move(fn)] {
    if (!crashed_) fn();
  });
}

void Process::cancel_timer(TimerId id) { sim_.cancel(id); }

void Process::cpu_execute(Time cost, std::function<void()> done) {
  util::ensure(cost >= 0, "Process::cpu_execute: negative cost");
  if (crashed_) return;
  const Time start = std::max(now(), cpu_free_at_);
  cpu_free_at_ = start + cost;
  sim_.schedule_at(cpu_free_at_, [this, done = std::move(done)] {
    if (!crashed_) done();
  });
}

Time Process::now() const { return sim_.now(); }

}  // namespace repli::sim
