#include "explore/artifact.hh"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "util/log.hh"

namespace repli::explore {

namespace {

std::string output_dir() {
  if (const char* env = std::getenv("REPLI_BENCH_DIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return ".";
}

void write_trial_row(obs::JsonWriter& w, const TrialRow& row) {
  w.begin_object();
  w.field("trial", row.trial);
  w.field("workload_seed", hex_u64(row.workload_seed));
  w.field("schedule_seed", hex_u64(row.schedule_seed));
  w.field("plan", row.plan);
  w.field("ok", row.result.ok);
  w.field("failed_check", row.result.failed_check);
  w.field("violation", row.result.violation);
  w.field("schedule_digest", hex_u64(row.result.schedule_digest));
  w.field("events", row.result.events);
  w.field("ops_ok", static_cast<std::uint64_t>(row.result.ops_ok));
  w.field("ops_failed", static_cast<std::uint64_t>(row.result.ops_failed));
  w.field("faults_injected", static_cast<std::uint64_t>(row.result.faults_injected));
  w.field("ties_randomized", static_cast<std::uint64_t>(row.result.ties_randomized));
  w.field("tainted_keys", static_cast<std::uint64_t>(row.result.tainted_keys));
  w.field("keys_checked", static_cast<std::uint64_t>(row.result.keys_checked));
  w.field("keys_skipped", static_cast<std::uint64_t>(row.result.keys_skipped));
  w.end_object();
}

double num_or(const obs::JsonValue* v, double fallback) {
  return v != nullptr && v->is(obs::JsonValue::Type::Number) ? v->number : fallback;
}

std::string str_or(const obs::JsonValue* v, std::string fallback) {
  return v != nullptr && v->is(obs::JsonValue::Type::String) ? v->str
                                                             : std::move(fallback);
}

bool bool_or(const obs::JsonValue* v, bool fallback) {
  return v != nullptr && v->is(obs::JsonValue::Type::Bool) ? v->boolean : fallback;
}

std::uint64_t hex_or(const obs::JsonValue* v, std::uint64_t fallback) {
  if (v == nullptr || !v->is(obs::JsonValue::Type::String)) return fallback;
  return parse_hex_u64(v->str).value_or(fallback);
}

bool load_fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

}  // namespace

std::string hex_u64(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x0000000000000000";
  for (int i = 0; i < 16; ++i) {
    out[static_cast<std::size_t>(17 - i)] = digits[(v >> (4 * i)) & 0xF];
  }
  return out;
}

std::optional<std::uint64_t> parse_hex_u64(std::string_view s) {
  if (s.size() < 3 || s[0] != '0' || s[1] != 'x') return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(s.data() + 2, s.data() + s.size(), v, 16);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

void write_explore_json(const ExploreResult& result, std::ostream& os) {
  obs::JsonWriter w(os);
  w.begin_object();
  w.field("artifact", "EXPLORE");
  w.field("schema_version", kExploreSchemaVersion);
  w.key("provenance").begin_object();
#ifdef REPLI_GIT_SHA
  w.field("git_sha", REPLI_GIT_SHA);
#else
  w.field("git_sha", "unknown");
#endif
  w.end_object();
  w.field("technique", std::string(core::technique_name(result.config.kind)));
  w.field("seed", hex_u64(result.config.seed));
  w.field("trials", result.config.trials);

  w.key("config").begin_object();
  w.field("replicas", result.config.replicas);
  w.field("clients", result.config.clients);
  w.field("ops_per_client", result.config.ops_per_client);
  w.field("keys", result.config.keys);
  w.field("settle_us", static_cast<std::uint64_t>(result.config.settle));
  w.field("max_faults", result.config.max_faults);
  w.field("max_jitter_us", static_cast<std::uint64_t>(result.config.max_jitter));
  w.field("allow_crash", result.config.allow_crash);
  w.field("allow_partition", result.config.allow_partition);
  w.field("allow_jitter", result.config.allow_jitter);
  w.field("allow_tie", result.config.allow_tie);
  w.end_object();

  w.key("totals").begin_object();
  w.field("events", result.events_total);
  w.field("faults_injected", result.faults_injected_total);
  w.field("violations", static_cast<std::uint64_t>(result.violations.size()));
  w.end_object();

  w.key("violations").begin_array();
  for (const auto& v : result.violations) {
    w.begin_object();
    w.field("trial", v.trial.trial);
    w.field("workload_seed", hex_u64(v.trial.workload_seed));
    w.field("schedule_seed", hex_u64(v.trial.schedule_seed));
    w.field("plan", v.trial.plan);
    w.field("failed_check", v.trial.result.failed_check);
    w.field("violation", v.trial.result.violation);
    w.field("minimal_plan", v.minimal_plan);
    w.field("minimal_failed_check", v.minimal_failed_check);
    w.field("minimal_schedule_digest", hex_u64(v.minimal_schedule_digest));
    w.field("shrink_steps", v.shrink_steps);
    w.field("shrink_runs", v.shrink_runs);
    w.end_object();
  }
  w.end_array();

  w.key("trial_rows").begin_array();
  for (const auto& row : result.rows) write_trial_row(w, row);
  w.end_array();

  w.end_object();
  os << "\n";
}

std::string save_explore(const ExploreResult& result) {
  const std::string path = output_dir() + "/EXPLORE_" +
                           std::string(core::technique_name(result.config.kind)) +
                           ".json";
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    util::log_error("save_explore: cannot open ", path);
    return "";
  }
  write_explore_json(result, os);
  os.flush();
  if (!os) {
    util::log_error("save_explore: write failed for ", path);
    return "";
  }
  return path;
}

std::optional<ExploreResult> load_explore_json(std::string_view text,
                                               std::string* error) {
  const auto doc = obs::json_parse(text);
  if (!doc.has_value() || !doc->is(obs::JsonValue::Type::Object)) {
    load_fail(error, "not a JSON object");
    return std::nullopt;
  }
  if (str_or(doc->find("artifact"), "") != "EXPLORE") {
    load_fail(error, "not an EXPLORE artifact");
    return std::nullopt;
  }
  if (static_cast<int>(num_or(doc->find("schema_version"), 0)) != kExploreSchemaVersion) {
    load_fail(error, "unsupported EXPLORE schema version");
    return std::nullopt;
  }

  ExploreResult out;
  const auto technique = str_or(doc->find("technique"), "");
  const auto kind = core::technique_from_name(technique);
  if (!kind.has_value()) {
    load_fail(error, "unknown technique '" + technique + "'");
    return std::nullopt;
  }
  out.config.kind = *kind;
  out.config.seed = hex_or(doc->find("seed"), 1);
  out.config.trials = static_cast<int>(num_or(doc->find("trials"), 0));
  if (const auto* cfg = doc->find("config"); cfg != nullptr) {
    out.config.replicas = static_cast<int>(num_or(cfg->find("replicas"), 3));
    out.config.clients = static_cast<int>(num_or(cfg->find("clients"), 3));
    out.config.ops_per_client = static_cast<int>(num_or(cfg->find("ops_per_client"), 25));
    out.config.keys = static_cast<int>(num_or(cfg->find("keys"), 4));
    out.config.settle = static_cast<sim::Time>(num_or(cfg->find("settle_us"), 0));
    out.config.max_faults = static_cast<int>(num_or(cfg->find("max_faults"), 2));
    out.config.max_jitter = static_cast<sim::Time>(num_or(cfg->find("max_jitter_us"), 0));
    out.config.allow_crash = bool_or(cfg->find("allow_crash"), true);
    out.config.allow_partition = bool_or(cfg->find("allow_partition"), true);
    out.config.allow_jitter = bool_or(cfg->find("allow_jitter"), true);
    out.config.allow_tie = bool_or(cfg->find("allow_tie"), true);
  }
  if (const auto* totals = doc->find("totals"); totals != nullptr) {
    out.events_total = static_cast<std::uint64_t>(num_or(totals->find("events"), 0));
    out.faults_injected_total =
        static_cast<std::uint64_t>(num_or(totals->find("faults_injected"), 0));
  }

  if (const auto* rows = doc->find("trial_rows");
      rows != nullptr && rows->is(obs::JsonValue::Type::Array)) {
    for (const auto& r : rows->array) {
      TrialRow row;
      row.trial = static_cast<int>(num_or(r.find("trial"), 0));
      row.workload_seed = hex_or(r.find("workload_seed"), 0);
      row.schedule_seed = hex_or(r.find("schedule_seed"), 0);
      row.plan = str_or(r.find("plan"), "none");
      row.result.ok = bool_or(r.find("ok"), true);
      row.result.failed_check = str_or(r.find("failed_check"), "");
      row.result.violation = str_or(r.find("violation"), "");
      row.result.schedule_digest = hex_or(r.find("schedule_digest"), 0);
      row.result.events = static_cast<std::uint64_t>(num_or(r.find("events"), 0));
      row.result.ops_ok = static_cast<std::size_t>(num_or(r.find("ops_ok"), 0));
      row.result.ops_failed = static_cast<std::size_t>(num_or(r.find("ops_failed"), 0));
      row.result.faults_injected =
          static_cast<std::size_t>(num_or(r.find("faults_injected"), 0));
      out.rows.push_back(std::move(row));
    }
  }

  if (const auto* violations = doc->find("violations");
      violations != nullptr && violations->is(obs::JsonValue::Type::Array)) {
    for (const auto& v : violations->array) {
      ViolationRecord rec;
      rec.trial.trial = static_cast<int>(num_or(v.find("trial"), 0));
      rec.trial.workload_seed = hex_or(v.find("workload_seed"), 0);
      rec.trial.schedule_seed = hex_or(v.find("schedule_seed"), 0);
      rec.trial.plan = str_or(v.find("plan"), "none");
      rec.trial.result.ok = false;
      rec.trial.result.failed_check = str_or(v.find("failed_check"), "");
      rec.trial.result.violation = str_or(v.find("violation"), "");
      rec.minimal_plan = str_or(v.find("minimal_plan"), rec.trial.plan);
      rec.minimal_failed_check = str_or(v.find("minimal_failed_check"), "");
      rec.minimal_schedule_digest = hex_or(v.find("minimal_schedule_digest"), 0);
      rec.shrink_steps = static_cast<int>(num_or(v.find("shrink_steps"), 0));
      rec.shrink_runs = static_cast<int>(num_or(v.find("shrink_runs"), 0));
      out.violations.push_back(std::move(rec));
    }
  }
  return out;
}

std::optional<ExploreResult> load_explore_file(const std::string& path,
                                               std::string* error) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    load_fail(error, "cannot open " + path);
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << is.rdbuf();
  return load_explore_json(buffer.str(), error);
}

}  // namespace repli::explore
