#include "explore/explore.hh"

#include <algorithm>

#include "gcs/fd.hh"
#include "util/assert.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace repli::explore {

namespace {

/// splitmix64: decorrelates (master, trial, lane) into independent seeds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t master, int trial, int lane) {
  return mix(master ^ mix(static_cast<std::uint64_t>(trial) * 3 +
                          static_cast<std::uint64_t>(lane)));
}

Plan generate_plan(const ExploreConfig& config, int trial) {
  util::Rng rng(derive_seed(config.seed, trial, 2));
  Plan plan;
  plan.tie_break = config.allow_tie && rng.bernoulli(0.75);
  if (config.allow_jitter && rng.bernoulli(0.5)) {
    plan.jitter = static_cast<sim::Time>(rng.uniform(100, config.max_jitter));
  }

  // Generated partitions stay inside the accurate-failure-detector envelope:
  // every protocol here assumes the paper's crash-stop model, so a partition
  // that outlives the suspicion timeout looks like a crash to BOTH sides and
  // the fixed-sequencer / primary-based variants split-brain (two sequencers
  // assign conflicting gseqs; DESIGN.md documents the assumption). The
  // envelope is the suspicion timeout minus the worst-case silent window
  // around the partition: one heartbeat interval just missed at onset, one
  // sent after heal, its delivery latency, and any schedule jitter we add
  // ourselves. Longer partitions remain expressible in hand-written plans
  // (replay/shrink accept them) — the generator just doesn't emit them.
  const gcs::FdConfig fd;
  const sim::Time jitter_cap = 800;  // usec; keeps the envelope positive
  const sim::Time delivery_slack = 1 * sim::kMsec;
  const sim::Time max_partition =
      fd.timeout - 2 * fd.interval - delivery_slack - jitter_cap;
  util::ensure(max_partition > 1 * sim::kMsec,
               "generate_plan: failure-detector config leaves no room for "
               "in-model partitions");

  // Crash-stop at most a minority: a crashed majority only measures the
  // client timeout path, not the protocol.
  int crashes_left = (config.replicas - 1) / 2;
  const int faults = static_cast<int>(rng.uniform(0, config.max_faults));
  const auto phases = core::technique_fault_phases(config.kind);
  for (int i = 0; i < faults; ++i) {
    const bool want_crash =
        config.allow_crash && crashes_left > 0 &&
        (!config.allow_partition || rng.bernoulli(0.5));
    if (!want_crash && !config.allow_partition) break;
    Fault fault;
    fault.kind = want_crash ? Fault::Kind::Crash : Fault::Kind::Partition;
    fault.replica = static_cast<int>(rng.uniform(0, config.replicas - 1));
    if (rng.bernoulli(0.5) || phases.empty()) {
      fault.trigger.kind = Trigger::Kind::Time;
      fault.trigger.at = static_cast<sim::Time>(rng.uniform(2000, 150000));  // 2..150 ms
    } else {
      fault.trigger.kind = Trigger::Kind::Phase;
      std::string abbrev{phases[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(phases.size()) - 1))]};
      for (auto& c : abbrev) c = static_cast<char>(c - 'A' + 'a');
      fault.trigger.phase = std::move(abbrev);
      fault.trigger.occurrence = static_cast<std::uint32_t>(rng.uniform(1, 15));
    }
    if (fault.kind == Fault::Kind::Crash) {
      --crashes_left;
    } else {
      fault.heal_after = static_cast<sim::Time>(rng.uniform(500, max_partition));
      plan.jitter = std::min(plan.jitter, jitter_cap);
    }
    plan.faults.push_back(std::move(fault));
  }
  return plan;
}

TrialConfig trial_config(const ExploreConfig& config, int trial) {
  TrialConfig tc;
  tc.kind = config.kind;
  tc.workload_seed = derive_seed(config.seed, trial, 0);
  tc.schedule_seed = derive_seed(config.seed, trial, 1);
  tc.plan = generate_plan(config, trial);
  tc.replicas = config.replicas;
  tc.clients = config.clients;
  tc.ops_per_client = config.ops_per_client;
  tc.keys = config.keys;
  tc.settle = config.settle;
  return tc;
}

ExploreResult explore(const ExploreConfig& config) {
  util::ensure(config.trials >= 1, "explore: need at least one trial");
  ExploreResult result;
  result.config = config;
  for (int t = 0; t < config.trials; ++t) {
    const auto tc = trial_config(config, t);
    TrialRow row;
    row.trial = t;
    row.workload_seed = tc.workload_seed;
    row.schedule_seed = tc.schedule_seed;
    row.plan = format_plan(tc.plan);
    row.result = run_trial(tc);
    result.events_total += row.result.events;
    result.faults_injected_total += row.result.faults_injected;
    if (!row.result.ok) {
      util::log_info("explore: ", core::technique_name(config.kind), " trial ", t,
                     " violated ", row.result.failed_check, " under plan '", row.plan,
                     "'");
      ViolationRecord rec;
      rec.trial = row;
      if (config.shrink_violations) {
        const auto shrunk = shrink(tc);
        rec.minimal_plan = format_plan(shrunk.minimal);
        rec.minimal_failed_check = shrunk.result.failed_check;
        rec.minimal_schedule_digest = shrunk.result.schedule_digest;
        rec.shrink_steps = shrunk.steps;
        rec.shrink_runs = shrunk.runs;
      } else {
        rec.minimal_plan = row.plan;
        rec.minimal_failed_check = row.result.failed_check;
        rec.minimal_schedule_digest = row.result.schedule_digest;
      }
      result.violations.push_back(std::move(rec));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

ShrinkResult shrink(const TrialConfig& failing) {
  ShrinkResult out;
  TrialConfig current = failing;

  const auto still_fails = [&out](const TrialConfig& candidate, TrialResult* result) {
    ++out.runs;
    *result = run_trial(candidate);
    return !result->ok;
  };

  TrialResult last = run_trial(current);
  ++out.runs;
  util::ensure(!last.ok, "shrink: the given trial does not fail to begin with");

  bool progress = true;
  while (progress) {
    progress = false;
    // Faults, one at a time (greedy ddmin with subset size 1).
    for (std::size_t i = 0; i < current.plan.faults.size();) {
      TrialConfig candidate = current;
      candidate.plan.faults.erase(candidate.plan.faults.begin() +
                                  static_cast<std::ptrdiff_t>(i));
      TrialResult result;
      if (still_fails(candidate, &result)) {
        current = candidate;
        last = result;
        ++out.steps;
        progress = true;  // do not advance i: the next fault shifted down
      } else {
        ++i;
      }
    }
    if (current.plan.jitter > 0) {
      TrialConfig candidate = current;
      candidate.plan.jitter = 0;
      TrialResult result;
      if (still_fails(candidate, &result)) {
        current = candidate;
        last = result;
        ++out.steps;
        progress = true;
      }
    }
    if (current.plan.tie_break) {
      TrialConfig candidate = current;
      candidate.plan.tie_break = false;
      TrialResult result;
      if (still_fails(candidate, &result)) {
        current = candidate;
        last = result;
        ++out.steps;
        progress = true;
      }
    }
  }

  out.minimal = current.plan;
  out.result = last;
  return out;
}

}  // namespace repli::explore
