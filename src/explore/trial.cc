#include "explore/trial.hh"

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "check/batch.hh"
#include "util/assert.hh"
#include "util/log.hh"
#include "util/rng.hh"

namespace repli::explore {

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (auto& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

}  // namespace

TrialResult run_trial(const TrialConfig& config) {
  util::ensure(config.replicas >= 1, "run_trial: need at least one replica");
  util::ensure(config.clients >= 1, "run_trial: need at least one client");
  for (const auto& fault : config.plan.faults) {
    util::ensure(fault.replica >= 0 && fault.replica < config.replicas,
                 "run_trial: fault plan names a replica outside the cluster");
  }

  core::ClusterConfig cc;
  cc.kind = config.kind;
  cc.replicas = config.replicas;
  cc.clients = config.clients;
  cc.seed = config.workload_seed;
  cc.record_history = true;
  core::Cluster cluster(cc);
  auto& sim = cluster.sim();

  // Schedule perturbation must be armed before the first dispatch.
  if (config.plan.tie_break || config.plan.jitter > 0) {
    sim::PerturbConfig pc;
    pc.seed = config.schedule_seed;
    pc.tie_break = config.plan.tie_break;
    pc.max_extra_delay = config.plan.jitter;
    sim.enable_perturbation(pc);
  }

  // ---- Fault injection -------------------------------------------------
  struct FaultState {
    std::vector<Fault> pending;          // phase-triggered, not yet fired
    std::map<std::string, std::uint64_t> phase_counts;
    std::multiset<int> isolated;         // replicas currently cut off
    std::size_t injected = 0;
    std::size_t heals = 0;
    bool frozen = false;  // workload done: no further injections
  };
  auto fs = std::make_shared<FaultState>();

  const int replicas = config.replicas;
  const auto apply_partition = [&sim, fs, replicas] {
    if (fs->isolated.empty()) {
      sim.net().set_partition(nullptr);
      return;
    }
    // Copy the isolated set into the predicate: the predicate must not
    // share mutable state with later swaps.
    std::vector<int> cut(fs->isolated.begin(), fs->isolated.end());
    sim.net().set_partition([cut, replicas](sim::NodeId from, sim::NodeId to) {
      if (from >= static_cast<sim::NodeId>(replicas) ||
          to >= static_cast<sim::NodeId>(replicas)) {
        return false;  // client links stay up; only replica gossip is cut
      }
      const auto is_cut = [&cut](sim::NodeId n) {
        for (const int r : cut) {
          if (n == static_cast<sim::NodeId>(r)) return true;
        }
        return false;
      };
      return is_cut(from) || is_cut(to);
    });
  };

  // `inject` runs inside a scheduled event of its own (never from inside
  // the phase hook directly), so crashing / repartitioning is safe.
  const auto inject = [&cluster, &sim, fs, apply_partition](const Fault& fault) {
    if (fs->frozen) return;
    ++fs->injected;
    if (fault.kind == Fault::Kind::Crash) {
      cluster.crash_replica(fault.replica);
      return;
    }
    fs->isolated.insert(fault.replica);
    apply_partition();
    const int target = fault.replica;
    sim.schedule_after(fault.heal_after, [fs, apply_partition, target] {
      const auto it = fs->isolated.find(target);
      if (it == fs->isolated.end()) return;  // already healed wholesale
      fs->isolated.erase(it);
      ++fs->heals;
      apply_partition();
    });
  };

  for (const auto& fault : config.plan.faults) {
    if (fault.trigger.kind == Trigger::Kind::Time) {
      sim.schedule_after(fault.trigger.at, [inject, fault] { inject(fault); });
    } else {
      fs->pending.push_back(fault);
    }
  }
  if (!fs->pending.empty()) {
    sim.trace().set_phase_hook(
        [&sim, fs, inject](const std::string&, sim::NodeId, sim::Phase phase, sim::Time,
                           sim::Time) {
          if (fs->frozen || fs->pending.empty()) return;
          const auto abbrev = lowercase(sim::phase_abbrev(phase));
          const auto count = ++fs->phase_counts[abbrev];
          for (auto it = fs->pending.begin(); it != fs->pending.end();) {
            if (it->trigger.phase == abbrev && it->trigger.occurrence == count) {
              const Fault fault = *it;
              it = fs->pending.erase(it);
              // Defer to a fresh event: the hook runs mid-record.
              sim.schedule_after(0, [inject, fault] { inject(fault); });
            } else {
              ++it;
            }
          }
        });
  }

  // ---- Workload --------------------------------------------------------
  // Closed loop per client over a deliberately tiny keyspace: every client
  // issues get/put/add with unique put values (so duplicate execution is
  // observable, not masked). Submission happens in the previous op's
  // completion callback, so the workload adapts to whatever latency the
  // perturbed schedule produces.
  struct WorkloadState {
    std::vector<util::Rng> rng;
    std::vector<int> issued;
    int active = 0;
    std::size_t ok = 0;
    std::size_t failed = 0;
  };
  auto ws = std::make_shared<WorkloadState>();
  for (int c = 0; c < config.clients; ++c) {
    ws->rng.emplace_back(config.workload_seed * 0x9E3779B97F4A7C15ull +
                         static_cast<std::uint64_t>(c) + 1);
    ws->issued.push_back(0);
  }
  ws->active = config.clients;

  std::function<void(int)> submit_next = [&](int c) {
    auto& rng = ws->rng[static_cast<std::size_t>(c)];
    const int n = ws->issued[static_cast<std::size_t>(c)]++;
    const auto slot = rng.uniform(0, config.keys - 1);
    const auto dice = rng.uniform(0, 9);
    db::Operation op;
    // Counters live in their own keyspace: `add` needs numeric state (the
    // stored procedure rejects a key holding a put string).
    if (dice < 5) {
      op = core::op_get("k" + std::to_string(slot));
    } else if (dice < 8) {
      op = core::op_put("k" + std::to_string(slot),
                        "v" + std::to_string(c) + "-" + std::to_string(n));
    } else {
      op = core::op_add("c" + std::to_string(slot), 1);
    }
    cluster.submit_op(c, std::move(op), [&submit_next, ws, c, &config](
                                            const core::ClientReply& reply) {
      reply.ok ? ++ws->ok : ++ws->failed;
      if (ws->issued[static_cast<std::size_t>(c)] < config.ops_per_client) {
        submit_next(c);
      } else {
        --ws->active;
      }
    });
  };
  for (int c = 0; c < config.clients; ++c) submit_next(c);

  while (ws->active > 0 && sim.now() < config.budget) {
    sim.run_until(sim.now() + 10 * sim::kMsec);
  }

  // ---- Heal, settle, check ---------------------------------------------
  fs->frozen = true;  // late triggers must not fire into the settle window
  sim.trace().set_phase_hook(nullptr);
  if (!fs->isolated.empty()) {
    fs->heals += fs->isolated.size();
    fs->isolated.clear();
  }
  sim.net().set_partition(nullptr);
  cluster.settle(config.settle);

  auto& metrics = sim.metrics();
  metrics.incr("explore.faults_injected", static_cast<std::int64_t>(fs->injected));
  metrics.incr("explore.partition_heals", static_cast<std::int64_t>(fs->heals));
  metrics.incr("explore.ties_randomized",
               static_cast<std::int64_t>(sim.tie_decisions().size()));

  TrialResult result;
  result.schedule_digest = sim.schedule_digest();
  result.events = sim.events_dispatched();
  result.ops_ok = ws->ok;
  result.ops_failed = ws->failed;
  result.faults_injected = fs->injected;
  result.ties_randomized = sim.tie_decisions().size();

  auto opts = check::checks_for(config.kind);
  opts.taint_slow_ops = cc.client_retry_timeout;
  const auto verdict =
      check::run_checks(cluster.history(), cluster.storage_digests(), opts);
  result.tainted_keys = verdict.tainted_keys;
  result.keys_checked = verdict.linearizability.keys_checked;
  result.keys_skipped = verdict.linearizability.keys_skipped;
  if (!verdict.ok) {
    result.ok = false;
    result.failed_check = verdict.failed_check;
    result.violation = verdict.violation;
  }

  // The hook runs even when a standard check already failed, so tests and
  // diagnostics can observe the cluster; the standard verdict wins.
  if (config.extra_check) {
    const auto extra = config.extra_check(config, cluster);
    if (result.ok && !extra.empty()) {
      result.ok = false;
      result.failed_check = "extra";
      result.violation = extra;
    }
  }
  return result;
}

}  // namespace repli::explore
