// Fault plans: the replayable decision record of one exploration trial.
//
// A trial is fully determined by (workload seed, schedule seed, plan). The
// plan says *what* the explorer perturbs beyond the seeds: whether
// same-timestamp ties are randomized, how much delivery jitter is allowed,
// and which faults fire when. Plans have a canonical one-line textual form
// so a CI failure can be replayed from a log line:
//
//   plan  := "none" | entry ("; " entry)*
//   entry := "tie"                     randomize same-time event order
//          | "jitter=" N               extra delivery delay in [0, N] us
//          | "crash@" trig ":r" I      crash-stop replica I
//          | "part@" trig ":r" I "+" D isolate replica I for D us, then heal
//   trig  := "t" N                     at absolute simulated time N us
//          | ph K                      at the K-th cluster-wide completion
//                                      of protocol phase ph
//   ph    := "re" | "sc" | "ex" | "ac" | "end"
//
// Examples: "tie; jitter=400; crash@sc2:r1", "part@t20000:r0+50000".
// format_plan and parse_plan round-trip exactly.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hh"

namespace repli::explore {

struct Trigger {
  enum class Kind { Time, Phase };
  Kind kind = Kind::Time;
  sim::Time at = 0;              // Time: absolute simulated time (us)
  std::string phase;             // Phase: lowercase abbrev ("re".."end")
  std::uint32_t occurrence = 1;  // Phase: the k-th completion, 1-based
};

struct Fault {
  enum class Kind { Crash, Partition };
  Kind kind = Kind::Crash;
  Trigger trigger;
  int replica = 0;            // crash target / isolated replica
  sim::Time heal_after = 0;   // Partition only: isolation duration (us)
};

struct Plan {
  bool tie_break = false;
  sim::Time jitter = 0;  // max extra delivery delay (us); 0 = off
  std::vector<Fault> faults;

  bool empty() const { return !tie_break && jitter == 0 && faults.empty(); }
};

/// Canonical textual form (see grammar above); "none" for an empty plan.
std::string format_plan(const Plan& plan);

/// Strict parse of the canonical form (tolerates extra spaces around ";").
/// nullopt on malformed input, with a diagnostic in *error when given.
std::optional<Plan> parse_plan(std::string_view text, std::string* error = nullptr);

}  // namespace repli::explore
