// EXPLORE artifact (schema v1): the machine-readable record of one
// exploration run — config envelope, per-trial replay table, violations
// with their shrunk minimal reproducers. Written byte-deterministically:
// same ExploreResult, identical file (no wall-clock fields; 64-bit seeds
// and digests are hex strings so they round-trip through JSON exactly).
// Documented field-by-field in docs/EXPLORATION.md.
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "explore/explore.hh"

namespace repli::explore {

inline constexpr int kExploreSchemaVersion = 1;

/// Serializes `result` as EXPLORE schema v1 JSON.
void write_explore_json(const ExploreResult& result, std::ostream& os);

/// Writes EXPLORE_<technique>.json into $REPLI_BENCH_DIR (default: the
/// working directory, same convention as the benches). Returns the path,
/// or empty on I/O failure (logged).
std::string save_explore(const ExploreResult& result);

/// Parses an EXPLORE schema v1 document back into an ExploreResult —
/// enough of one to replay any trial or violation (config envelope, seeds,
/// plan strings, verdicts). nullopt on malformed input or wrong schema.
std::optional<ExploreResult> load_explore_json(std::string_view text,
                                               std::string* error = nullptr);

/// Reads and parses the file at `path`. nullopt on I/O or parse failure.
std::optional<ExploreResult> load_explore_file(const std::string& path,
                                               std::string* error = nullptr);

/// 16-digit lowercase hex with "0x" prefix; the artifact encoding for
/// seeds and digests.
std::string hex_u64(std::uint64_t v);
std::optional<std::uint64_t> parse_hex_u64(std::string_view s);

}  // namespace repli::explore
