// The exploration driver: N trials per technique, each with seeds and a
// fault plan derived deterministically from one master seed, plus the
// delta-debugging shrinker that reduces a failing trial to a minimal
// reproducer. ExploreResult is the in-memory form of the EXPLORE artifact
// (see explore/artifact.hh).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/trial.hh"

namespace repli::explore {

struct ExploreConfig {
  core::TechniqueKind kind = core::TechniqueKind::Active;
  std::uint64_t seed = 1;  // master seed: every trial derives from (seed, index)
  int trials = 100;

  // Per-trial shape (copied into each TrialConfig).
  int replicas = 3;
  int clients = 3;
  int ops_per_client = 25;
  int keys = 4;
  sim::Time settle = 5 * sim::kSec;

  // Plan-generation envelope.
  int max_faults = 2;
  bool allow_crash = true;
  bool allow_partition = true;
  bool allow_jitter = true;
  bool allow_tie = true;
  sim::Time max_jitter = 3000;  // us

  bool shrink_violations = true;
};

/// One line of the trial table: everything needed to replay the trial.
struct TrialRow {
  int trial = 0;
  std::uint64_t workload_seed = 0;
  std::uint64_t schedule_seed = 0;
  std::string plan;  // canonical format_plan form
  TrialResult result;
};

struct ShrinkResult {
  Plan minimal;
  TrialResult result;  // the minimal plan's (still failing) result
  int steps = 0;       // accepted reductions
  int runs = 0;        // trials executed while shrinking
};

struct ViolationRecord {
  TrialRow trial;        // the original failing trial
  std::string minimal_plan;
  std::string minimal_failed_check;
  std::uint64_t minimal_schedule_digest = 0;
  int shrink_steps = 0;
  int shrink_runs = 0;
};

struct ExploreResult {
  ExploreConfig config;
  std::vector<TrialRow> rows;
  std::vector<ViolationRecord> violations;
  std::uint64_t events_total = 0;
  std::uint64_t faults_injected_total = 0;
};

/// Deterministic per-trial derivation (exposed so `replay` can rebuild any
/// trial from the artifact header alone). `lane` 0 = workload seed,
/// 1 = schedule seed, 2 = plan stream.
std::uint64_t derive_seed(std::uint64_t master, int trial, int lane);

/// The plan trial `trial` runs under `config` (pure function).
Plan generate_plan(const ExploreConfig& config, int trial);

/// The full TrialConfig for one trial index.
TrialConfig trial_config(const ExploreConfig& config, int trial);

/// Runs the whole exploration; shrinks each violation when configured.
ExploreResult explore(const ExploreConfig& config);

/// Greedy delta debugging on a failing trial: drop faults one at a time,
/// then zero the jitter, then disable tie randomization, re-running after
/// each candidate reduction and keeping it only if the trial still fails;
/// repeats to a fixed point. The returned plan is 1-minimal: removing any
/// single remaining element makes the violation vanish.
ShrinkResult shrink(const TrialConfig& failing);

}  // namespace repli::explore
