#include "explore/plan.hh"

#include <array>
#include <charconv>

namespace repli::explore {

namespace {

constexpr std::array<std::string_view, 5> kPhases = {"re", "sc", "ex", "ac", "end"};

bool is_phase(std::string_view s) {
  for (const auto p : kPhases) {
    if (s == p) return true;
  }
  return false;
}

std::string format_trigger(const Trigger& t) {
  if (t.kind == Trigger::Kind::Time) return "t" + std::to_string(t.at);
  return t.phase + std::to_string(t.occurrence);
}

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

/// Parses a non-negative integer starting at s[pos]; advances pos.
bool parse_uint(std::string_view s, std::size_t& pos, std::uint64_t& out,
                std::string* error) {
  const char* begin = s.data() + pos;
  const char* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc() || ptr == begin) {
    return fail(error, "expected a number at '" + std::string(s.substr(pos)) + "'");
  }
  pos += static_cast<std::size_t>(ptr - begin);
  return true;
}

bool parse_trigger(std::string_view s, std::size_t& pos, Trigger& out,
                   std::string* error) {
  // "t<us>" or "<phase><k>". "t" is not a phase abbreviation, so the
  // leading letter disambiguates.
  if (pos < s.size() && s[pos] == 't') {
    ++pos;
    std::uint64_t at = 0;
    if (!parse_uint(s, pos, at, error)) return false;
    out.kind = Trigger::Kind::Time;
    out.at = static_cast<sim::Time>(at);
    return true;
  }
  std::size_t len = 0;
  while (pos + len < s.size() && s[pos + len] >= 'a' && s[pos + len] <= 'z') ++len;
  const auto abbrev = s.substr(pos, len);
  if (!is_phase(abbrev)) {
    return fail(error, "unknown phase '" + std::string(abbrev) +
                           "' (expected re/sc/ex/ac/end or t<us>)");
  }
  pos += len;
  std::uint64_t k = 0;
  if (!parse_uint(s, pos, k, error)) return false;
  if (k == 0) return fail(error, "phase occurrence is 1-based");
  out.kind = Trigger::Kind::Phase;
  out.phase = std::string(abbrev);
  out.occurrence = static_cast<std::uint32_t>(k);
  return true;
}

bool parse_fault(std::string_view entry, Fault::Kind kind, Plan& plan,
                 std::string* error) {
  // After the "crash@"/"part@" prefix: trig ":r" I ["+" D]
  std::size_t pos = 0;
  Fault fault;
  fault.kind = kind;
  if (!parse_trigger(entry, pos, fault.trigger, error)) return false;
  if (pos + 1 >= entry.size() || entry[pos] != ':' || entry[pos + 1] != 'r') {
    return fail(error, "expected ':r<replica>' in '" + std::string(entry) + "'");
  }
  pos += 2;
  std::uint64_t replica = 0;
  if (!parse_uint(entry, pos, replica, error)) return false;
  fault.replica = static_cast<int>(replica);
  if (kind == Fault::Kind::Partition) {
    if (pos >= entry.size() || entry[pos] != '+') {
      return fail(error, "partition needs '+<duration_us>' in '" + std::string(entry) + "'");
    }
    ++pos;
    std::uint64_t duration = 0;
    if (!parse_uint(entry, pos, duration, error)) return false;
    if (duration == 0) return fail(error, "partition duration must be > 0");
    fault.heal_after = static_cast<sim::Time>(duration);
  }
  if (pos != entry.size()) {
    return fail(error, "trailing garbage in '" + std::string(entry) + "'");
  }
  plan.faults.push_back(std::move(fault));
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
  while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
  return s;
}

}  // namespace

std::string format_plan(const Plan& plan) {
  if (plan.empty()) return "none";
  std::string out;
  const auto emit = [&out](std::string entry) {
    if (!out.empty()) out += "; ";
    out += std::move(entry);
  };
  if (plan.tie_break) emit("tie");
  if (plan.jitter > 0) emit("jitter=" + std::to_string(plan.jitter));
  for (const auto& f : plan.faults) {
    std::string entry = f.kind == Fault::Kind::Crash ? "crash@" : "part@";
    entry += format_trigger(f.trigger);
    entry += ":r" + std::to_string(f.replica);
    if (f.kind == Fault::Kind::Partition) entry += "+" + std::to_string(f.heal_after);
    emit(std::move(entry));
  }
  return out;
}

std::optional<Plan> parse_plan(std::string_view text, std::string* error) {
  Plan plan;
  const auto trimmed = trim(text);
  if (trimmed.empty() || trimmed == "none") return plan;
  std::size_t start = 0;
  while (start <= trimmed.size()) {
    const auto semi = trimmed.find(';', start);
    const auto entry =
        trim(trimmed.substr(start, semi == std::string_view::npos ? semi : semi - start));
    if (entry.empty()) {
      fail(error, "empty plan entry");
      return std::nullopt;
    }
    if (entry == "tie") {
      plan.tie_break = true;
    } else if (entry.rfind("jitter=", 0) == 0) {
      std::size_t pos = 7;
      std::uint64_t jitter = 0;
      if (!parse_uint(entry, pos, jitter, error) || pos != entry.size()) {
        if (error != nullptr && error->empty()) *error = "bad jitter entry";
        return std::nullopt;
      }
      plan.jitter = static_cast<sim::Time>(jitter);
    } else if (entry.rfind("crash@", 0) == 0) {
      if (!parse_fault(entry.substr(6), Fault::Kind::Crash, plan, error)) return std::nullopt;
    } else if (entry.rfind("part@", 0) == 0) {
      if (!parse_fault(entry.substr(5), Fault::Kind::Partition, plan, error)) {
        return std::nullopt;
      }
    } else {
      fail(error, "unknown plan entry '" + std::string(entry) + "'");
      return std::nullopt;
    }
    if (semi == std::string_view::npos) break;
    start = semi + 1;
  }
  return plan;
}

}  // namespace repli::explore
