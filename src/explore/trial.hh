// One exploration trial: build a cluster, perturb its schedule, inject the
// plan's faults at their triggers, drive a contended workload to
// quiescence, heal, settle, and run every checker that is sound for the
// technique. A trial is a pure function of its TrialConfig — same config,
// byte-identical result (including the schedule digest).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/cluster.hh"
#include "core/technique.hh"
#include "explore/plan.hh"

namespace repli::explore {

struct TrialConfig {
  core::TechniqueKind kind = core::TechniqueKind::Active;
  std::uint64_t workload_seed = 1;  // cluster seed: workload + network RNG
  std::uint64_t schedule_seed = 0;  // perturbation stream (ties + jitter)
  Plan plan;

  int replicas = 3;
  int clients = 3;
  int ops_per_client = 25;
  int keys = 4;  // small keyspace: contention is the point
  sim::Time settle = 5 * sim::kSec;      // post-heal reconciliation window
  sim::Time budget = 120 * sim::kSec;    // hard cap on simulated run time

  /// Test hook: an extra predicate run after the standard checkers; a
  /// non-empty return is reported as a "extra" check violation. Not part
  /// of the replayable trial identity (artifacts never carry it).
  std::function<std::string(const TrialConfig&, core::Cluster&)> extra_check;
};

struct TrialResult {
  bool ok = true;
  std::string failed_check;  // "digest" | "serializability" | "linearizability" | "extra"
  std::string violation;

  // Replay fingerprint: FNV-1a over the dispatched (time, id) stream.
  std::uint64_t schedule_digest = 0;
  std::uint64_t events = 0;

  std::size_t ops_ok = 0;
  std::size_t ops_failed = 0;       // timed out / aborted (tolerated under faults)
  std::size_t faults_injected = 0;  // triggers that actually fired
  std::size_t ties_randomized = 0;  // same-time groups the perturber reordered
  std::size_t tainted_keys = 0;     // keys excluded from the register check
  std::size_t keys_checked = 0;
  std::size_t keys_skipped = 0;
};

TrialResult run_trial(const TrialConfig& config);

}  // namespace repli::explore
