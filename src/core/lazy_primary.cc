#include "core/lazy_primary.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

LazyPrimaryReplica::LazyPrimaryReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                                       LazyConfig config)
    : ReplicaBase(id, sim, "lazy-primary-" + std::to_string(id), std::move(env)),
      ship_(*this, kShipChannel, batched_link_of(this->env())),
      config_(config) {
  add_component(ship_);
  ship_.set_deliver([this](sim::NodeId /*from*/, wire::MessagePtr msg) {
    const auto update = wire::message_cast<LzUpdate>(msg);
    if (update) on_update(*update);
  });
}

void LazyPrimaryReplica::on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) {
  const auto request = wire::message_cast<ClientRequest>(msg);
  if (!request) return;
  on_request(*request);
}

void LazyPrimaryReplica::on_request(const ClientRequest& request) {
  if (replay_cached_reply(request.client, request.request_id)) return;
  if (!request.read_only() && !is_primary()) {
    // Updates belong at the primary copy.
    auto redirect = std::make_shared<Redirect>();
    redirect->request_id = request.request_id;
    redirect->try_instead = group().members().front();
    send(request.client, std::move(redirect));
    return;
  }
  const auto exec_start = now();
  cpu_execute(env().exec_cost * static_cast<sim::Time>(request.ops.size()),
              [this, request, exec_start] {
    // Execute the whole transaction locally (for lazy replication it makes
    // no difference whether it has one or many operations, §5.3).
    db::TxnExec txn(request.request_id, storage_);
    db::SeededChoices choices(wire::fnv1a(request.request_id));
    std::string result;
    try {
      for (const auto& op : request.ops) result = txn.run(registry(), op, choices);
    } catch (const std::exception& e) {
      reply(request.client, request.request_id, false, e.what());
      return;
    }
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(request.ops.back(), exec_start, request.request_id);

    const auto writes = txn.writes();
    if (!writes.empty()) {
      const auto seq = txn.commit_into(storage_);
      record_commit(request.request_id, writes, txn.read_versions(), seq);
    }
    cache_reply(request.request_id, true, result);
    // END before AC: the client hears back *before* any replica coordination.
    reply(request.client, request.request_id, true, result);

    if (!writes.empty()) {
      LzUpdate update;
      update.txn = request.request_id;
      update.writes = writes;
      update.committed_at = now();
      set_timer(config_.propagation_delay, [this, update, request] {
        phase_now(request.request_id, sim::Phase::AgreementCoord);
        for (const auto m : group().members()) {
          if (m != id()) ship_.send_fifo(m, update);
        }
      });
    }
  });
}

void LazyPrimaryReplica::on_update(const LzUpdate& update) {
  const auto apply_start = now();
  cpu_execute(env().apply_cost, [this, update, apply_start] {
    const auto seq = storage_.next_commit_seq();
    for (const auto& [key, value] : update.writes) {
      storage_.put(key, value, seq, update.txn);
    }
    record_commit(update.txn, update.writes, {}, seq);
    sim().metrics().histogram("lazy.staleness_us")
        .observe(static_cast<double>(now() - update.committed_at));
    phase(update.txn, sim::Phase::AgreementCoord, apply_start, now());
    span("db/exec.apply", apply_start, now(), update.txn,
         obs::Attrs{{"writes", std::to_string(update.writes.size())}});
  });
}

}  // namespace repli::core
