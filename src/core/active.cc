#include "core/active.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

ActiveReplica::ActiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                             AbcastImpl impl)
    : ReplicaBase(id, sim, "active-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}) {
  add_component(fd_);
  if (impl == AbcastImpl::Sequencer) {
    abcast_ = std::make_unique<gcs::SequencerAbcast>(*this, group(), fd_, kAbcastChannel,
                                                     sequencer_config_of(this->env()));
  } else {
    abcast_ = std::make_unique<gcs::ConsensusAbcast>(*this, group(), fd_, kAbcastChannel,
                                                     consensus_config_of(this->env()));
  }
  add_component(*abcast_);
  // Replica-local randomness: nondeterministic procedures will diverge.
  exec_rng_ = std::make_unique<util::Rng>(sim.rng().split());
  choices_ = std::make_unique<db::LocalRandomChoices>(*exec_rng_);

  abcast_->set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto request = wire::message_cast<ClientRequest>(msg);
    if (request) on_request(*request);
  });
}

void ActiveReplica::on_request(const ClientRequest& request) {
  // Client retries re-enter the ABCAST; total order makes the dedup
  // decision identical at every replica. Re-replying from the cache covers
  // the case where every original reply was lost.
  if (!seen_.insert(request.request_id).second) {
    replay_cached_reply(request.client, request.request_id);
    return;
  }
  util::ensure(request.ops.size() == 1,
               "active replication implements the single-operation model (§2.2)");
  phase_now(request.request_id, sim::Phase::ServerCoord);

  const db::Operation op = request.ops.front();
  const auto exec_start = now();
  cpu_execute(env().exec_cost, [this, request, op, exec_start] {
    const auto outcome =
        db::execute_and_commit(registry(), op, storage_, *choices_, request.request_id);
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(op, exec_start, request.request_id);
    if (!outcome.writes.empty()) {
      record_commit(request.request_id, outcome.writes, outcome.read_versions,
                    outcome.commit_seq);
    }
    cache_reply(request.request_id, true, outcome.result);
    // Every replica answers; the client keeps the first reply (§3.2 step 5).
    reply(request.client, request.request_id, true, outcome.result);
  });
}

}  // namespace repli::core
