// Base class shared by every technique's replica: storage, stored-procedure
// registry, CPU cost model, phase tracing, reply/dedup plumbing.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "core/history.hh"
#include "core/messages.hh"
#include "core/technique.hh"
#include "db/exec.hh"
#include "gcs/component.hh"
#include "gcs/group.hh"
#include "obs/context.hh"
#include "obs/metrics.hh"
#include "obs/monitor.hh"
#include "obs/trace.hh"
#include "sim/trace.hh"

namespace repli::core {

struct ReplicaEnv {
  gcs::Group group;                            // all replica node ids
  const db::ProcRegistry* registry = nullptr;  // shared, outlives replicas
  History* history = nullptr;                  // shared recorder (may be null)
  obs::HealthMonitor* monitor = nullptr;       // shared health monitor (may be null)
  sim::Time exec_cost = 100 * sim::kUsec;      // CPU time to execute an operation
  sim::Time apply_cost = 20 * sim::kUsec;      // CPU time to apply a writeset
  // Batching knobs, threaded from ClusterConfig: max ops per batch (group
  // commit / writeset batch / abcast envelope) and the flush window. 1 = off.
  int batch_max_ops = 1;
  sim::Time batch_flush = 200 * sim::kUsec;
};

class ReplicaBase : public gcs::ComponentHost {
 public:
  ReplicaBase(sim::NodeId id, sim::Simulator& sim, std::string name, ReplicaEnv env);

  db::Storage& storage() { return storage_; }
  const db::Storage& storage() const { return storage_; }
  const gcs::Group& group() const { return env_.group; }

  /// Transactions queued behind locks here right now (0 for techniques
  /// without a lock manager) — a saturation gauge for the cluster monitor.
  virtual std::size_t lock_waiters() const { return 0; }

 protected:
  const ReplicaEnv& env() const { return env_; }
  const db::ProcRegistry& registry() const { return *env_.registry; }

  /// Marks a functional-model phase for `request` on this replica.
  void phase(const std::string& request, sim::Phase p, sim::Time start, sim::Time end);
  void phase_now(const std::string& request, sim::Phase p);

  /// The run-wide span tracer / metrics registry (owned by the Simulator).
  obs::Tracer& tracer();
  obs::Registry& metrics();

  /// The shared health monitor (nullptr when the harness runs without one).
  obs::HealthMonitor* monitor() { return env_.monitor; }

  /// Records a completed sub-phase span on this node. Record the enclosing
  /// phase() first: identical intervals nest under the earlier-recorded span.
  obs::SpanId span(std::string name, sim::Time start, sim::Time end, const std::string& request,
                   obs::Attrs attrs = {});
  obs::SpanId span_now(std::string name, const std::string& request, obs::Attrs attrs = {});

  /// Records a db/exec.op span for `op` run over [start, now] and bumps the
  /// db.exec.op_us histogram.
  void exec_span(const db::Operation& op, sim::Time start, const std::string& request);

  /// Sends a ClientReply.
  void reply(sim::NodeId client, const std::string& request_id, bool ok, std::string result);

  /// Reply cache for exactly-once semantics: returns true (and re-replies)
  /// when `request_id` was already answered here.
  bool replay_cached_reply(sim::NodeId client, const std::string& request_id);
  void cache_reply(const std::string& request_id, bool ok, const std::string& result);
  bool has_cached_reply(const std::string& request_id) const {
    return reply_cache_.contains(request_id);
  }
  std::optional<std::pair<bool, std::string>> cached_reply(const std::string& request_id) const;

  /// Records a commit in the shared history (no-op when not recording).
  void record_commit(const std::string& txn, const std::map<db::Key, db::Value>& writes,
                     const std::map<db::Key, std::uint64_t>& reads, std::uint64_t commit_seq);

  /// Remembers the causal trace id `request_id` arrived under (the ambient
  /// context of the current delivery event). Call from on_request.
  void note_request_trace(const std::string& request_id);
  std::uint64_t request_trace(const std::string& request_id) const;
  void forget_request_trace(const std::string& request_id);

  /// RAII: re-enters the causal trace `request_id` arrived under (no-op when
  /// unknown). Use when resuming work for a request from an event that
  /// belongs to another transaction — queue pumps, lock grants, batch
  /// flushes — so the spans recorded and messages sent while resumed stay in
  /// the right trace.
  class TraceResume {
   public:
    TraceResume(ReplicaBase& replica, const std::string& request_id) {
      const auto trace = replica.request_trace(request_id);
      if (trace != 0 && trace != obs::current_context().trace_id) {
        scope_.emplace(obs::TraceContext{trace, obs::kNoSpan, 0});
      }
    }

   private:
    std::optional<obs::ContextScope> scope_;
  };

  db::Storage storage_;

 private:
  ReplicaEnv env_;
  std::map<std::string, std::pair<bool, std::string>> reply_cache_;
  std::map<std::string, std::uint64_t> request_traces_;
};

}  // namespace repli::core
