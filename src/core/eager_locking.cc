#include "core/eager_locking.hh"

#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::core {

EagerLockingReplica::EagerLockingReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                                         EagerLockingConfig config)
    : ReplicaBase(id, sim, "eager-locking-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      link_(*this, kLockChannel),
      tpc_(*this, kTpcChannel),
      locks_(*this, [config] {
        auto lock_config = config.lock;
        lock_config.wait_die = true;  // distributed deadlock prevention
        return lock_config;
      }()),
      config_(config) {
  add_component(fd_);
  add_component(link_);
  add_component(tpc_);

  link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    if (const auto acquire = wire::message_cast<LkAcquire>(msg)) {
      local_acquire(from, *acquire);
      return;
    }
    if (const auto exec = wire::message_cast<LkExec>(msg)) {
      local_exec(from, *exec);
      return;
    }
    if (const auto reply = wire::message_cast<LkReply>(msg)) {
      on_lock_reply(from, *reply);
      return;
    }
    if (const auto done = wire::message_cast<LkExecDone>(msg)) {
      on_exec_done(from, *done);
      return;
    }
    if (const auto abort = wire::message_cast<LkAbort>(msg)) {
      local_abort(abort->txn, abort->attempt);
      return;
    }
  });

  tpc_.set_vote_handler([this](const std::string& txn, const std::string& payload) {
    if (!payload.empty()) {
      const auto parsed = wire::from_blob(payload);
      if (const auto meta = wire::message_cast<LkCommitMeta>(parsed)) {
        if (parts_.contains(txn)) {
          parts_.at(txn).client = meta->client;
          parts_.at(txn).result = meta->result;
        }
      } else if (const auto gm = wire::message_cast<LkGroupMeta>(parsed)) {
        // Group commit: vote yes iff we hold EVERY member's locks and staged
        // execution (one missing member aborts the whole group — rare, since
        // the delegate only groups transactions whose EX phase completed at
        // all replicas). The membership is recorded regardless of the vote
        // so an abort outcome can release each member's locks.
        bool all = true;
        std::vector<std::string> members;
        for (const auto& entry : gm->entries) {
          members.push_back(entry.txn);
          if (const auto pit = parts_.find(entry.txn); pit != parts_.end()) {
            pit->second.client = entry.client;
            pit->second.result = entry.result;
          } else {
            all = false;
          }
        }
        commit_groups_[txn] = std::move(members);
        return all;
      }
    }
    return parts_.contains(txn);  // we hold locks and the staged execution
  });
  tpc_.set_outcome_handler([this](const std::string& txn, bool commit) {
    if (const auto git = commit_groups_.find(txn); git != commit_groups_.end()) {
      const std::vector<std::string> members = std::move(git->second);
      commit_groups_.erase(git);
      for (const auto& member : members) local_outcome(member, commit);
      return;
    }
    local_outcome(txn, commit);
  });
}

void EagerLockingReplica::on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) {
  if (const auto request = wire::message_cast<ClientRequest>(msg)) {
    on_request(*request);
  }
}

void EagerLockingReplica::on_request(const ClientRequest& request) {
  if (replay_cached_reply(request.client, request.request_id)) return;
  if (driving_.contains(request.request_id)) return;
  // A client retry landing at a second replica must not spawn a second
  // driver: whoever drove the transaction first keeps owning it.
  if (const auto oit = owner_.find(request.request_id);
      oit != owner_.end() && oit->second != id()) {
    return;
  }

  note_request_trace(request.request_id);
  Drive drive;
  drive.request = request;
  // Wait-die needs a stable age: assigned at first contact, kept across
  // retries so an unlucky transaction eventually becomes the oldest.
  drive.priority = now() * 16 + id();
  driving_.emplace(request.request_id, std::move(drive));
  drive_next_op(request.request_id);
}

void EagerLockingReplica::drive_next_op(const std::string& txn_id) {
  auto& drive = driving_.at(txn_id);
  if (drive.next_op >= drive.request.ops.size()) {
    start_commit(txn_id);
    return;
  }
  // SC phase for this operation: lock at every replica.
  const auto& op = drive.request.ops[drive.next_op];
  LkAcquire acquire;
  acquire.txn = txn_id;
  acquire.priority = drive.priority;  // older transactions win deadlocks
  acquire.op_index = static_cast<std::uint32_t>(drive.next_op);
  acquire.attempt = static_cast<std::uint32_t>(drive.attempt);
  acquire.plan = op.lock_plan();

  drive.executing = false;
  drive.sc_start = now();
  drive.awaiting.clear();
  if (!op.read_only()) drive.wrote = true;
  // Read-one/write-all: a read-only operation locks only the local copy.
  const bool local_only = config_.read_one_write_all && op.read_only();
  for (const auto m : group().members()) {
    if (fd_.suspects(m)) continue;
    if (local_only && m != id()) continue;
    drive.awaiting.insert(m);
    if (m == id()) {
      local_acquire(id(), acquire);
    } else {
      link_.send_reliable(m, acquire);
    }
  }
}

void EagerLockingReplica::local_acquire(sim::NodeId delegate, const LkAcquire& acquire) {
  const auto oit = owner_.emplace(acquire.txn, delegate).first;
  if (oit->second != delegate) return;  // a different delegate owns this txn
  if (const auto ait = aborted_upto_.find(acquire.txn);
      ait != aborted_upto_.end() && acquire.attempt <= ait->second) {
    return;  // late acquire of an attempt that was already aborted here
  }
  auto pit = parts_.find(acquire.txn);
  if (pit != parts_.end() && pit->second.attempt > acquire.attempt) return;  // stale
  if (pit != parts_.end() && pit->second.attempt < acquire.attempt) {
    // A newer attempt supersedes whatever this site still holds.
    local_abort(acquire.txn, pit->second.attempt);
    pit = parts_.end();
  }
  if (pit == parts_.end()) {
    Part part;
    part.attempt = acquire.attempt;
    part.exec = std::make_unique<db::TxnExec>(acquire.txn, storage_);
    pit = parts_.emplace(acquire.txn, std::move(part)).first;
  }
  // Remember the causal trace this acquire arrived under: a contended lock's
  // grant callback fires from the *releasing* transaction's event, and the
  // reply it triggers must re-enter this transaction's trace.
  note_request_trace(acquire.txn);

  // Acquire the plan's locks one after another; when the whole plan is
  // held, report the grant to the delegate.
  auto plan = std::make_shared<std::vector<std::pair<db::Key, bool>>>(acquire.plan);
  auto step = std::make_shared<std::function<void(std::size_t)>>();
  const std::string txn = acquire.txn;
  const auto op_index = acquire.op_index;
  const auto attempt = acquire.attempt;
  const auto priority = acquire.priority;
  auto respond = [this, txn, op_index, attempt, delegate](bool granted) {
    TraceResume resume{*this, txn};
    LkReply reply;
    reply.txn = txn;
    reply.op_index = op_index;
    reply.attempt = attempt;
    reply.granted = granted;
    if (delegate == id()) {
      // Deliver on a fresh event: lock-manager callbacks may fire while the
      // delegate is mid-loop in drive_next_op, and re-entering its driver
      // state synchronously would mutate structures under iteration.
      set_timer(0, [this, reply] { on_lock_reply(id(), reply); });
    } else {
      link_.send_reliable(delegate, reply);
    }
  };
  *step = [this, plan, step, txn, attempt, priority, respond](std::size_t i) {
    // Re-enter the transaction's own trace: a contended grant resumes here
    // from the releasing transaction's event.
    TraceResume resume{*this, txn};
    const auto it = parts_.find(txn);
    if (it == parts_.end() || it->second.attempt != attempt) return;  // aborted meanwhile
    if (i == plan->size()) {
      respond(true);
      return;
    }
    const auto& [key, exclusive] = (*plan)[i];
    locks_.acquire(txn, priority, key,
                   exclusive ? db::LockMode::Exclusive : db::LockMode::Shared,
                   [step, i] { (*step)(i + 1); },
                   [this, txn, attempt, respond] {
                     // Deadlock victim or wait timeout: deny; the delegate
                     // aborts the transaction globally and retries.
                     ++lock_aborts_;
                     metrics().incr("core.lock_aborts");
                     local_abort(txn, attempt);
                     respond(false);
                   });
  };
  (*step)(0);
}

void EagerLockingReplica::on_lock_reply(sim::NodeId from, const LkReply& reply) {
  const auto it = driving_.find(reply.txn);
  if (it == driving_.end()) return;
  Drive& drive = it->second;
  if (reply.attempt != static_cast<std::uint32_t>(drive.attempt)) return;  // stale
  if (drive.executing || reply.op_index != drive.next_op) return;
  if (!reply.granted) {
    abort_and_retry(reply.txn);
    return;
  }
  drive.awaiting.erase(from);
  if (!drive.awaiting.empty()) return;
  phase(reply.txn, sim::Phase::ServerCoord, drive.sc_start, now());

  // EX phase: every locked replica executes the operation (under ROWA a
  // read-only operation runs at the delegate only).
  LkExec exec;
  exec.txn = reply.txn;
  exec.op_index = reply.op_index;
  exec.attempt = reply.attempt;
  exec.op = drive.request.ops[drive.next_op];
  const bool local_only = config_.read_one_write_all && exec.op.read_only();
  drive.executing = true;
  for (const auto m : group().members()) {
    if (fd_.suspects(m)) continue;
    if (local_only && m != id()) continue;
    drive.awaiting.insert(m);
    if (m == id()) {
      local_exec(id(), exec);
    } else {
      link_.send_reliable(m, exec);
    }
  }
}

void EagerLockingReplica::local_exec(sim::NodeId delegate, const LkExec& exec) {
  const auto exec_start = now();
  cpu_execute(env().exec_cost, [this, delegate, exec, exec_start] {
    const auto it = parts_.find(exec.txn);
    if (it == parts_.end() || it->second.attempt != exec.attempt) return;  // aborted
    db::SeededChoices choices(wire::fnv1a(exec.txn) + exec.op_index);
    std::string result;
    try {
      result = it->second.exec->run(registry(), exec.op, choices);
    } catch (const std::exception&) {
      result = "error";
    }
    it->second.result = result;
    phase(exec.txn, sim::Phase::Execution, exec_start, now());
    exec_span(exec.op, exec_start, exec.txn);
    LkExecDone done;
    done.txn = exec.txn;
    done.op_index = exec.op_index;
    done.attempt = exec.attempt;
    if (delegate == id()) {
      on_exec_done(id(), done);
    } else {
      link_.send_reliable(delegate, done);
    }
  });
}

void EagerLockingReplica::on_exec_done(sim::NodeId from, const LkExecDone& done) {
  const auto it = driving_.find(done.txn);
  if (it == driving_.end()) return;
  Drive& drive = it->second;
  if (done.attempt != static_cast<std::uint32_t>(drive.attempt)) return;
  if (!drive.executing || done.op_index != drive.next_op) return;
  drive.awaiting.erase(from);
  if (!drive.awaiting.empty()) return;
  if (parts_.contains(done.txn)) drive.last_result = parts_.at(done.txn).result;
  ++drive.next_op;
  drive_next_op(done.txn);
}

void EagerLockingReplica::abort_and_retry(const std::string& txn_id) {
  auto& drive = driving_.at(txn_id);
  const auto aborted_attempt = static_cast<std::uint32_t>(drive.attempt);
  ++drive.attempt;  // fences every message of the aborted attempt
  if (monitor() != nullptr) {
    monitor()->abort_event(id(), now(), obs::AbortCause::Deadlock, txn_id, "wait-die");
  }
  // Global abort: every replica drops the transaction and releases locks.
  for (const auto m : group().members()) {
    if (m == id()) {
      local_abort(txn_id, aborted_attempt);
    } else {
      LkAbort abort;
      abort.txn = txn_id;
      abort.attempt = aborted_attempt;
      link_.send_reliable(m, abort);
    }
  }
  if (drive.attempt > config_.max_attempts) {
    reply(drive.request.client, txn_id, false, "lock-abort");
    driving_.erase(txn_id);
    return;
  }
  drive.next_op = 0;
  drive.executing = false;
  drive.awaiting.clear();
  const auto backoff =
      static_cast<sim::Time>(sim().rng().exponential(static_cast<double>(config_.retry_backoff))) +
      sim::kMsec;
  const auto aborted_at = now();
  set_timer(backoff, [this, txn_id, aborted_at] {
    if (!driving_.contains(txn_id)) return;
    // The backoff is on the critical path (the retry cannot start sooner) but
    // fires from a bare timer — no incoming flow re-enters the trace, so
    // resume it explicitly and span the wait, or the whole backoff shows up
    // as unattributed time in the latency waterfall.
    TraceResume resume{*this, txn_id};
    span("core/lock.retry_backoff", aborted_at, now(), txn_id,
         obs::Attrs{{"attempt", std::to_string(driving_.at(txn_id).attempt)}});
    drive_next_op(txn_id);
  });
}

void EagerLockingReplica::local_abort(const std::string& txn_id, std::uint32_t attempt) {
  auto& high_water = aborted_upto_[txn_id];
  high_water = std::max(high_water, attempt);
  const auto it = parts_.find(txn_id);
  if (it == parts_.end() || it->second.attempt > attempt) return;  // newer attempt lives on
  parts_.erase(it);
  locks_.release_all(txn_id);
}

void EagerLockingReplica::start_commit(const std::string& txn_id) {
  Drive& drive = driving_.at(txn_id);
  // Group commit: commit-ready write transactions wait (bounded by the flush
  // window) to share one 2PC round. ROWA read-only transactions stay on the
  // local per-txn path — they never involve another site to begin with.
  const bool local_only = config_.read_one_write_all && !drive.wrote;
  if (env().batch_max_ops > 1 && !local_only) {
    commit_buffer_.push_back({txn_id, drive.request.client, drive.last_result});
    if (static_cast<int>(commit_buffer_.size()) >= env().batch_max_ops) {
      flush_commit_group();
      return;
    }
    if (commit_buffer_.size() == 1) {
      const std::uint64_t epoch = commit_epoch_;
      set_timer(env().batch_flush, [this, epoch] {
        if (epoch == commit_epoch_ && !commit_buffer_.empty()) flush_commit_group();
      });
    }
    return;
  }
  LkCommitMeta meta;
  meta.txn = txn_id;
  meta.client = drive.request.client;
  meta.result = drive.last_result;

  // ROWA: an entirely read-only transaction involved no other site, so the
  // commit is local too (no 2PC round for queries).
  std::vector<sim::NodeId> participants;
  if (drive.wrote || !config_.read_one_write_all) {
    for (const auto m : group().members()) {
      if (!fd_.suspects(m)) participants.push_back(m);
    }
  } else {
    participants.push_back(id());
  }
  const auto client = drive.request.client;
  const auto result = drive.last_result;
  tpc_.coordinate(txn_id, participants, wire::to_blob(meta),
                  [this, client, result](const std::string& txn_id2, bool commit) {
                    reply(client, txn_id2, commit, commit ? result : "aborted");
                    driving_.erase(txn_id2);
                  });
}

void EagerLockingReplica::flush_commit_group() {
  ++commit_epoch_;
  std::vector<PendingCommit> batch = std::move(commit_buffer_);
  commit_buffer_.clear();
  metrics().histogram("core.group_commit.occupancy")
      .observe(static_cast<double>(batch.size()));
  const std::string group_id =
      "lkgrp@" + std::to_string(id()) + "." + std::to_string(++group_seq_);
  span_now("core/group_commit.start", group_id,
           obs::Attrs{{"occupancy", std::to_string(batch.size())}});

  LkGroupMeta meta;
  meta.group = group_id;
  std::vector<std::string> members;
  for (const auto& e : batch) {
    meta.entries.push_back({e.txn, e.client, e.result});
    members.push_back(e.txn);
  }
  commit_groups_[group_id] = std::move(members);

  std::vector<sim::NodeId> participants;
  for (const auto m : group().members()) {
    if (!fd_.suspects(m)) participants.push_back(m);
  }
  tpc_.coordinate(group_id, participants, wire::to_blob(meta),
                  [this, batch](const std::string& /*group_id2*/, bool commit) {
                    for (const auto& e : batch) {
                      reply(e.client, e.txn, commit, commit ? e.result : "aborted");
                      driving_.erase(e.txn);
                    }
                  });
}

void EagerLockingReplica::local_outcome(const std::string& txn_id, bool commit) {
  const auto it = parts_.find(txn_id);
  if (it == parts_.end()) return;
  if (!commit) {
    local_abort(txn_id, it->second.attempt);
    return;
  }
  auto part = std::make_shared<Part>(std::move(it->second));
  parts_.erase(it);
  const auto apply_start = now();
  cpu_execute(env().apply_cost, [this, txn_id, part, apply_start] {
    const auto seq = part->exec->commit_into(storage_);
    if (!part->exec->writes().empty()) {
      record_commit(txn_id, part->exec->writes(), part->exec->read_versions(), seq);
    }
    cache_reply(txn_id, true, part->result);
    locks_.release_all(txn_id);
    phase(txn_id, sim::Phase::AgreementCoord, apply_start, now());
    span("db/exec.apply", apply_start, now(), txn_id,
         obs::Attrs{{"writes", std::to_string(part->exec->writes().size())}});
  });
}

}  // namespace repli::core
