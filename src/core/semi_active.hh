// Semi-active replication, §3.4 / Fig. 4.
//
//   RE  client ABCASTs the request
//   SC  total order of the Atomic Broadcast
//   EX  every replica executes in delivery order — but nondeterministic
//       choices are made only by the leader...
//   AC  ...which VSCASTs each choice log to the followers
//   END all replicas answer
//
// Followers execute with the leader's recorded choices replayed, so
// nondeterministic procedures stay consistent (unlike active replication).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>

#include "core/replica.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/fd.hh"
#include "gcs/view.hh"

namespace repli::core {

struct SaDecision : wire::MessageBase<SaDecision> {
  static constexpr const char* kTypeName = "core.SaDecision";
  std::string request_id;
  std::vector<std::int64_t> choices;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(choices);
  }
};

class SemiActiveReplica : public ReplicaBase {
 public:
  SemiActiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env);

  bool is_leader() const { return vg_.view().primary() == id(); }

 private:
  void on_request(const ClientRequest& request);
  void pump();
  void execute_head(db::ChoiceSource& choices, bool record);

  gcs::FailureDetector fd_;
  gcs::SequencerAbcast abcast_;
  gcs::ViewGroup vg_;
  std::unique_ptr<util::Rng> exec_rng_;

  std::deque<ClientRequest> queue_;  // abcast delivery order
  std::set<std::string> seen_;
  std::map<std::string, std::vector<std::int64_t>> decisions_;
  bool busy_ = false;  // head execution in progress
};

}  // namespace repli::core
