// Eager update-everywhere with distributed locking, §4.4.1 / Fig. 8
// (single-op) and §5.4.1 / Fig. 13 (multi-operation transactions).
//
//   RE  client sends to its local server (the delegate)
//   SC  the delegate requests locks at *all* replicas; each site's lock
//       manager grants per local state — repeated per operation
//   EX  all replicas execute the operation (deterministically seeded)
//   AC  2PC commits or aborts the transaction everywhere, releasing locks
//   END the delegate answers the client
//
// Distributed deadlocks are broken by each site's local wait-for-graph
// detection plus the wait-timeout backstop; a denied lock aborts the
// transaction globally and the delegate retries after a randomized backoff
// (the paper: "the transaction can be delayed and the request repeated").
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/replica.hh"
#include "db/lock.hh"
#include "db/tpc.hh"
#include "gcs/fd.hh"
#include "gcs/link.hh"

namespace repli::core {

struct LkAcquire : wire::MessageBase<LkAcquire> {
  static constexpr const char* kTypeName = "core.LkAcquire";
  std::string txn;
  std::int64_t priority = 0;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 1;
  std::vector<std::pair<db::Key, bool>> plan;  // (key, exclusive?)
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(priority);
    ar(op_index);
    ar(attempt);
    ar(plan);
  }
};

struct LkReply : wire::MessageBase<LkReply> {
  static constexpr const char* kTypeName = "core.LkReply";
  std::string txn;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 1;
  bool granted = false;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(op_index);
    ar(attempt);
    ar(granted);
  }
};

struct LkExec : wire::MessageBase<LkExec> {
  static constexpr const char* kTypeName = "core.LkExec";
  std::string txn;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 1;
  db::Operation op;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(op_index);
    ar(attempt);
    ar(op);
  }
};

struct LkExecDone : wire::MessageBase<LkExecDone> {
  static constexpr const char* kTypeName = "core.LkExecDone";
  std::string txn;
  std::uint32_t op_index = 0;
  std::uint32_t attempt = 1;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(op_index);
    ar(attempt);
  }
};

struct LkAbort : wire::MessageBase<LkAbort> {
  static constexpr const char* kTypeName = "core.LkAbort";
  std::string txn;
  std::uint32_t attempt = 1;  // aborts this attempt and everything older
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(attempt);
  }
};

struct LkCommitMeta : wire::MessageBase<LkCommitMeta> {
  static constexpr const char* kTypeName = "core.LkCommitMeta";
  std::string txn;
  std::int32_t client = 0;
  std::string result;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(client);
    ar(result);
  }
};

/// One member of a group commit (the delegate's commit-ready transactions).
struct LkGroupEntry {
  std::string txn;
  std::int32_t client = 0;
  std::string result;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(client);
    ar(result);
  }
};

/// Group commit (batched fast path): the delegate runs ONE 2PC round for a
/// group of commit-ready write transactions; each participant votes yes iff
/// it holds every member's locks and staged execution.
struct LkGroupMeta : wire::MessageBase<LkGroupMeta> {
  static constexpr const char* kTypeName = "core.LkGroupMeta";
  std::string group;  // group id (the 2PC transaction id)
  std::vector<LkGroupEntry> entries;
  template <class Ar>
  void fields(Ar& ar) {
    ar(group);
    ar(entries);
  }
};

struct EagerLockingConfig {
  db::LockConfig lock;
  sim::Time retry_backoff = 20 * sim::kMsec;  // mean of randomized backoff
  int max_attempts = 10;
  /// Read-one/write-all (§5.4.1, [BHG87]): read-only operations lock and
  /// execute at the delegate only; writes still involve every replica.
  bool read_one_write_all = true;
};

class EagerLockingReplica : public ReplicaBase {
 public:
  EagerLockingReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                      EagerLockingConfig config = {});

  std::int64_t lock_aborts() const { return lock_aborts_; }
  std::size_t lock_waiters() const override { return locks_.waiting_count(); }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  // Delegate-side transaction driver.
  struct Drive {
    ClientRequest request;
    std::size_t next_op = 0;
    int attempt = 1;
    std::int64_t priority = 0;  // assigned once; kept across retries (wait-die)
    bool wrote = false;         // any write op so far (ROWA: read-only txns commit locally)
    std::set<sim::NodeId> awaiting;  // lock grants / exec dones outstanding
    bool executing = false;          // false: SC (locks), true: EX
    std::string last_result;
    sim::Time sc_start = 0;
  };
  // Participant-side state (every replica, including the delegate).
  struct Part {
    std::uint32_t attempt = 1;  // fences stale messages from aborted attempts
    std::unique_ptr<db::TxnExec> exec;
    std::int32_t client = 0;
    std::string result;
  };

  void on_request(const ClientRequest& request);
  void drive_next_op(const std::string& txn_id);
  void on_lock_reply(sim::NodeId from, const LkReply& reply);
  void on_exec_done(sim::NodeId from, const LkExecDone& done);
  void abort_and_retry(const std::string& txn_id);
  void start_commit(const std::string& txn_id);
  void flush_commit_group();

  void local_acquire(sim::NodeId delegate, const LkAcquire& acquire);
  void local_exec(sim::NodeId delegate, const LkExec& exec);
  void local_abort(const std::string& txn_id, std::uint32_t attempt);
  void local_outcome(const std::string& txn_id, bool commit);

  gcs::FailureDetector fd_;
  gcs::ReliableLink link_;
  db::TwoPhaseCommit tpc_;
  db::LockManager locks_;
  EagerLockingConfig config_;

  std::map<std::string, Drive> driving_;
  std::map<std::string, Part> parts_;
  // First delegate seen for a transaction owns it at this site for the whole
  // run: acquires/execs/aborts from any other delegate are ignored, and a
  // client retry landing here does not spawn a competing driver.
  std::map<std::string, sim::NodeId> owner_;
  // Highest attempt number already aborted here, per txn: an in-flight
  // LkAcquire of an aborted attempt must not take zombie locks.
  std::map<std::string, std::uint32_t> aborted_upto_;
  std::int64_t lock_aborts_ = 0;

  // Group commit (env().batch_max_ops > 1): commit-ready write transactions
  // gather here until the batch fills or the flush window expires.
  struct PendingCommit {
    std::string txn;
    std::int32_t client = 0;
    std::string result;
  };
  std::vector<PendingCommit> commit_buffer_;
  std::uint64_t commit_epoch_ = 0;  // invalidates stale flush timers
  std::uint64_t group_seq_ = 0;
  // Both sides: group id -> member txns, recorded at prepare so the 2PC
  // outcome can be fanned out per member.
  std::map<std::string, std::vector<std::string>> commit_groups_;
};

}  // namespace repli::core
