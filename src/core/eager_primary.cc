#include "core/eager_primary.hh"

#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::core {

EagerPrimaryReplica::EagerPrimaryReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env)
    : ReplicaBase(id, sim, "eager-primary-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      ship_(*this, kShipChannel),
      tpc_(*this, kTpcChannel) {
  add_component(fd_);
  add_component(ship_);
  add_component(tpc_);

  wal_.set_observer([this](const db::WalRecord& rec) {
    metrics().counter("db.wal.appends", obs::node_label(this->id())).incr();
    metrics().counter("db.wal.bytes", obs::node_label(this->id()))
        .incr(static_cast<std::int64_t>(db::Wal::record_bytes(rec)));
  });

  ship_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    if (const auto change = wire::message_cast<EpChange>(msg)) {
      if (resolved_.contains(change->txn)) return;  // late records of a resolved txn
      // Secondary: stage the shipped log records (apply happens at commit).
      Staged& staged = staged_[change->txn];
      if (staged.ac_start == 0) staged.ac_start = now();
      for (const auto& [key, value] : change->writes) staged.writes[key] = value;
      EpChangeAck ack;
      ack.txn = change->txn;
      ack.op_index = change->op_index;
      ship_.send_fifo(current_primary(), ack);  // reliable: a lost ack stalls the txn
      return;
    }
    // The ack and termination traffic also rides the reliable channel.
    on_unhandled(from, std::move(msg));
  });

  tpc_.set_vote_handler([this](const std::string& txn, const std::string& payload) {
    // Vote yes iff every shipped change arrived (FIFO + acks make this the
    // normal case). The prepare payload carries the commit metadata — or,
    // for a group commit, the whole group's log records (ship folded into
    // prepare: staging happens here).
    if (!payload.empty()) {
      const auto parsed = wire::from_blob(payload);
      if (const auto meta = wire::message_cast<EpCommitMeta>(parsed)) {
        Staged& staged = staged_[txn];
        staged.client = meta->client;
        staged.result = meta->result;
        staged.request_id = meta->request_id;
      } else if (const auto change = wire::message_cast<EpGroupChange>(parsed)) {
        if (!resolved_.contains(txn)) staged_group_[txn] = change->entries;
      }
    }
    return staged_.contains(txn) || staged_group_.contains(txn);
  });
  tpc_.set_outcome_handler(
      [this](const std::string& txn, bool commit) { apply_commit(txn, commit); });

  fd_.on_suspect([this](sim::NodeId who) {
    if (monitor() != nullptr) {
      monitor()->suspected(who, this->id(), now());
      // Hot standby: suspicion of a lower-ranked node is itself the view
      // change — whoever now ranks first has taken over.
      if (is_primary() && who < this->id()) monitor()->promoted(this->id(), now());
    }
    on_primary_suspected(who);
  });
}

void EagerPrimaryReplica::on_unhandled(sim::NodeId from, wire::MessagePtr msg) {
  if (const auto request = wire::message_cast<ClientRequest>(msg)) {
    on_request(*request);
    return;
  }
  if (const auto ack = wire::message_cast<EpChangeAck>(msg)) {
    on_change_ack(from, *ack);
    return;
  }
  if (const auto query = wire::message_cast<EpTermQuery>(msg)) {
    EpTermInfo info;
    info.txn = query->txn;
    if (const auto it = resolved_.find(query->txn); it != resolved_.end()) {
      info.knowledge = it->second ? 1 : 2;
    }
    ship_.send_fifo(from, info);
    return;
  }
  if (const auto info = wire::message_cast<EpTermInfo>(msg)) {
    const auto it = term_waiting_.find(info->txn);
    if (it == term_waiting_.end()) return;
    if (info->knowledge == 1) {
      term_waiting_.erase(it);
      apply_commit(info->txn, true);
      return;
    }
    it->second.erase(from);
    if (it->second.empty()) {
      // Nobody saw a commit: the paper's rule — primary failure aborts its
      // active transactions. Attributed once, by the new primary.
      term_waiting_.erase(it);
      if (monitor() != nullptr && is_primary()) {
        monitor()->abort_event(id(), now(), obs::AbortCause::Failover, info->txn,
                               "primary-crash-termination");
      }
      apply_commit(info->txn, false);
    }
    return;
  }
}

void EagerPrimaryReplica::on_request(const ClientRequest& request) {
  if (!is_primary()) {
    auto redirect = std::make_shared<Redirect>();
    redirect->request_id = request.request_id;
    redirect->try_instead = current_primary();
    send(request.client, std::move(redirect));
    return;
  }
  if (replay_cached_reply(request.client, request.request_id)) return;
  if (active_.contains(request.request_id) || queued_ids_.contains(request.request_id) ||
      group_inflight_.contains(request.request_id)) {
    return;
  }
  note_request_trace(request.request_id);
  queued_ids_.insert(request.request_id);
  queued_at_.emplace(request.request_id, now());
  queue_.push_back(request);
  pump();
}

void EagerPrimaryReplica::close_queue_wait(const std::string& request_id) {
  const auto it = queued_at_.find(request_id);
  if (it == queued_at_.end()) return;
  if (now() > it->second) span("core/queue.wait", it->second, now(), request_id);
  queued_at_.erase(it);
}

void EagerPrimaryReplica::pump() {
  if (busy_ || queue_.empty() || !is_primary()) return;
  busy_ = true;
  if (env().batch_max_ops > 1) {
    start_group();
    return;
  }
  const ClientRequest request = queue_.front();
  queue_.pop_front();
  queued_ids_.erase(request.request_id);
  // The pump often runs inside the event that finished the *previous*
  // transaction; resume this request's own causal trace before any work.
  TraceResume resume{*this, request.request_id};
  close_queue_wait(request.request_id);

  // A fresh internal id per acceptance: a client retry of a request whose
  // earlier incarnation was aborted (e.g. by the termination protocol after
  // a primary crash) must not collide with the resolved old transaction.
  Txn txn;
  txn.id = request.request_id + "@" + std::to_string(id()) + "." +
           std::to_string(++accept_seq_);
  txn.request = request;
  txn.exec = std::make_unique<db::TxnExec>(txn.id, storage_);
  const std::string txn_id = txn.id;
  request_of_txn_.emplace(txn_id, request.request_id);
  active_.emplace(txn_id, std::move(txn));
  run_next_op(txn_id);
}

void EagerPrimaryReplica::start_group() {
  // Natural batching: take whatever has queued up while the pump was busy,
  // capped at batch_max_ops. No gather timer — an idle primary still starts
  // a lone request immediately (latency never waits on the batch filling).
  GroupTxn grp;
  grp.id = "grp@" + std::to_string(id()) + "." + std::to_string(++accept_seq_);
  const auto limit = static_cast<std::size_t>(env().batch_max_ops);
  while (!queue_.empty() && grp.requests.size() < limit) {
    grp.requests.push_back(queue_.front());
    queue_.pop_front();
    queued_ids_.erase(grp.requests.back().request_id);
    {
      TraceResume resume{*this, grp.requests.back().request_id};
      close_queue_wait(grp.requests.back().request_id);
    }
    group_inflight_.insert(grp.requests.back().request_id);
  }
  grp.scratch = storage_;  // each txn in the group sees its predecessors
  const std::string group_id = grp.id;
  active_groups_.emplace(group_id, std::move(grp));
  run_group_step(group_id);
}

void EagerPrimaryReplica::run_group_step(const std::string& group_id) {
  auto it = active_groups_.find(group_id);
  if (it == active_groups_.end()) return;
  GroupTxn& grp = it->second;
  if (grp.next >= grp.requests.size()) {
    group_commit(group_id);
    return;
  }
  const ClientRequest request = grp.requests[grp.next];
  const auto exec_start = now();
  // Each group member executes under its own causal trace (the continuation
  // captures the ambient context at schedule time).
  TraceResume resume{*this, request.request_id};
  cpu_execute(env().exec_cost * static_cast<sim::Time>(request.ops.size()),
              [this, group_id, request, exec_start] {
    const auto it = active_groups_.find(group_id);
    if (it == active_groups_.end()) return;  // dropped meanwhile
    GroupTxn& grp = it->second;
    const std::string txn_id = request.request_id + "@" + std::to_string(id()) + "." +
                               std::to_string(++accept_seq_);
    db::TxnExec exec(txn_id, grp.scratch);
    db::SeededChoices choices(wire::fnv1a(request.request_id));
    std::string result;
    bool ok = true;
    try {
      for (const auto& op : request.ops) result = exec.run(registry(), op, choices);
    } catch (const std::exception& e) {
      // A failed transaction answers immediately and leaves the scratch
      // state untouched — the rest of the group is unaffected.
      reply(request.client, request.request_id, false, e.what());
      group_inflight_.erase(request.request_id);
      ok = false;
    }
    if (ok) {
      phase(request.request_id, sim::Phase::Execution, exec_start, now());
      exec_span(request.ops.back(), exec_start, request.request_id);
      EpGroupEntry entry;
      entry.txn = txn_id;
      entry.request_id = request.request_id;
      entry.client = request.client;
      entry.result = result;
      entry.writes = exec.writes();
      exec.commit_into(grp.scratch);
      request_of_txn_.emplace(txn_id, request.request_id);
      grp.entries.push_back(std::move(entry));
    }
    ++grp.next;
    run_group_step(group_id);
  });
}

void EagerPrimaryReplica::group_commit(const std::string& group_id) {
  GroupTxn grp = std::move(active_groups_.at(group_id));
  active_groups_.erase(group_id);
  if (grp.entries.empty()) {  // every member failed at execution
    busy_ = false;
    pump();
    return;
  }
  metrics().histogram("core.group_commit.occupancy")
      .observe(static_cast<double>(grp.entries.size()));
  span_now("core/group_commit.start", group_id,
           obs::Attrs{{"occupancy", std::to_string(grp.entries.size())}});

  EpGroupChange change;
  change.group = group_id;
  change.entries = grp.entries;
  staged_group_[group_id] = grp.entries;  // stage our own copy

  std::vector<sim::NodeId> participants;
  for (const auto m : group().members()) {
    if (m == id() || !fd_.suspects(m)) participants.push_back(m);
  }
  std::vector<EpGroupEntry> replies;
  for (const auto& e : grp.entries) {
    EpGroupEntry r;
    r.request_id = e.request_id;
    r.client = e.client;
    r.result = e.result;
    replies.push_back(std::move(r));
  }
  const auto ac_start = now();
  tpc_.coordinate(group_id, participants, wire::to_blob(change),
                  [this, replies, ac_start](const std::string& group_id2, bool commit) {
                    for (const auto& r : replies) {
                      if (!commit && monitor() != nullptr) {
                        monitor()->abort_event(id(), now(), obs::AbortCause::Failover,
                                               r.request_id, "2pc-abort");
                      }
                      phase(r.request_id, sim::Phase::AgreementCoord, ac_start, now());
                      reply(r.client, r.request_id, commit, commit ? r.result : "aborted");
                      group_inflight_.erase(r.request_id);
                    }
                    busy_ = false;
                    pump();
                    (void)group_id2;
                  });
}

void EagerPrimaryReplica::finish_txn(const std::string& txn_id) {
  active_.erase(txn_id);
  busy_ = false;
  pump();
}

void EagerPrimaryReplica::run_next_op(const std::string& txn_id) {
  auto& txn = active_.at(txn_id);
  if (txn.next_op >= txn.request.ops.size()) {
    start_commit(txn_id);
    return;
  }
  const db::Operation op = txn.request.ops[txn.next_op];
  const auto exec_start = now();
  cpu_execute(env().exec_cost, [this, txn_id, op, exec_start] {
    const auto it = active_.find(txn_id);
    if (it == active_.end()) return;  // aborted meanwhile
    Txn& txn = it->second;
    db::SeededChoices choices(wire::fnv1a(txn.request.request_id));
    try {
      txn.last_result = txn.exec->run(registry(), op, choices);
    } catch (const std::exception& e) {
      reply(txn.request.client, txn.request.request_id, false, e.what());
      finish_txn(txn_id);
      return;
    }
    phase(txn.request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(op, exec_start, txn.request.request_id);
    ++txn.next_op;
    ship_changes(txn_id);
  });
}

void EagerPrimaryReplica::ship_changes(const std::string& txn_id) {
  Txn& txn = active_.at(txn_id);
  // Ship the cumulative writeset after this operation (per-op AC loop of
  // Fig. 12; degenerates to one shipment for single-op transactions).
  EpChange change;
  change.txn = txn_id;
  change.op_index = static_cast<std::uint32_t>(txn.next_op);
  change.writes = txn.exec->writes();
  txn.ac_start = now();
  txn.awaiting_acks.clear();
  for (const auto m : group().members()) {
    if (m == id() || fd_.suspects(m)) continue;
    txn.awaiting_acks.insert(m);
    ship_.send_fifo(m, change);
  }
  if (txn.awaiting_acks.empty()) {
    phase(txn.request.request_id, sim::Phase::AgreementCoord, txn.ac_start, now());
    span("core/ac.ship", txn.ac_start, now(), txn.request.request_id,
         obs::Attrs{{"acks", "0"}});
    run_next_op(txn_id);
  }
}

void EagerPrimaryReplica::on_change_ack(sim::NodeId from, const EpChangeAck& ack) {
  const auto it = active_.find(ack.txn);
  if (it == active_.end()) return;
  Txn& txn = it->second;
  if (ack.op_index != txn.next_op) return;  // stale ack from an earlier op
  txn.awaiting_acks.erase(from);
  if (txn.awaiting_acks.empty()) {
    phase(txn.request.request_id, sim::Phase::AgreementCoord, txn.ac_start, now());
    span("core/ac.ship", txn.ac_start, now(), txn.request.request_id,
         obs::Attrs{{"acks", std::to_string(group().size() - 1)}});
    run_next_op(ack.txn);
  }
}

void EagerPrimaryReplica::start_commit(const std::string& txn_id) {
  Txn& txn = active_.at(txn_id);
  // Stage our own writes so commit application is uniform across roles.
  Staged& staged = staged_[txn_id];
  staged.writes = txn.exec->writes();
  staged.client = txn.request.client;
  staged.result = txn.last_result;
  staged.ac_start = txn.ac_start;

  EpCommitMeta meta;
  meta.txn = txn_id;
  meta.request_id = txn.request.request_id;
  meta.client = txn.request.client;
  meta.result = txn.last_result;
  staged.request_id = txn.request.request_id;

  std::vector<sim::NodeId> participants;
  for (const auto m : group().members()) {
    if (m == id() || !fd_.suspects(m)) participants.push_back(m);
  }
  const auto client = txn.request.client;
  const auto request_id = txn.request.request_id;
  const auto result = txn.last_result;
  tpc_.coordinate(txn_id, participants, wire::to_blob(meta),
                  [this, client, request_id, result](const std::string& txn_id2, bool commit) {
                    if (!commit && monitor() != nullptr) {
                      monitor()->abort_event(id(), now(), obs::AbortCause::Failover,
                                             request_id, "2pc-abort");
                    }
                    reply(client, request_id, commit, commit ? result : "aborted");
                    finish_txn(txn_id2);
                  });
}

void EagerPrimaryReplica::apply_commit(const std::string& txn_id, bool commit) {
  resolved_[txn_id] = commit;
  if (const auto git = staged_group_.find(txn_id); git != staged_group_.end()) {
    // Group commit: redo every entry in group order, one WAL flush and one
    // apply-cost charge for the whole group.
    std::vector<EpGroupEntry> entries = std::move(git->second);
    staged_group_.erase(git);
    if (!commit) {
      for (const auto& e : entries) wal_.abort(e.txn);
      return;
    }
    const auto apply_start = now();
    cpu_execute(env().apply_cost, [this, txn_id, entries, apply_start] {
      for (const auto& e : entries) {
        wal_.begin(e.txn);
        for (const auto& [key, value] : e.writes) wal_.write(e.txn, key, value);
        wal_.commit(e.txn);
        const auto seq = storage_.next_commit_seq();
        for (const auto& [key, value] : e.writes) {
          storage_.put(key, value, seq, e.txn);
        }
        if (!e.writes.empty()) record_commit(e.txn, e.writes, {}, seq);
        cache_reply(e.request_id, true, e.result);
      }
      phase(txn_id, sim::Phase::AgreementCoord, apply_start, now());
      span("db/wal.flush", apply_start, now(), txn_id,
           obs::Attrs{{"group_ops", std::to_string(entries.size())},
                      {"lsn", std::to_string(wal_.last_lsn())}});
    });
    return;
  }
  const auto it = staged_.find(txn_id);
  if (it == staged_.end()) return;
  Staged staged = std::move(it->second);
  staged_.erase(it);
  if (!commit) {
    wal_.abort(txn_id);
    return;
  }
  const auto apply_start = now();
  cpu_execute(env().apply_cost, [this, txn_id, staged, apply_start] {
    // Write-ahead: log the transaction before touching storage.
    wal_.begin(txn_id);
    for (const auto& [key, value] : staged.writes) wal_.write(txn_id, key, value);
    wal_.commit(txn_id);
    const auto seq = storage_.next_commit_seq();
    for (const auto& [key, value] : staged.writes) {
      storage_.put(key, value, seq, txn_id);
    }
    if (!staged.writes.empty()) record_commit(txn_id, staged.writes, {}, seq);
    // The reply cache is keyed by the client-visible request id.
    const auto& reply_key = staged.request_id.empty() ? txn_id : staged.request_id;
    cache_reply(reply_key, true, staged.result);
    phase(reply_key, sim::Phase::AgreementCoord, apply_start, now());
    span("db/wal.flush", apply_start, now(), reply_key,
         obs::Attrs{{"records", std::to_string(staged.writes.size() + 2)},
                    {"lsn", std::to_string(wal_.last_lsn())}});
  });
}

void EagerPrimaryReplica::on_primary_suspected(sim::NodeId who) {
  // Cooperative termination of the dead primary's in-doubt transactions.
  if (fd_.lowest_trusted() == sim::kNoNode) return;
  const auto in_doubt = tpc_.in_doubt();  // copy: we mutate below
  for (const auto& [txn_id, doubt] : in_doubt) {
    if (doubt.coordinator != who) continue;  // its coordinator is still alive
    if (resolved_.contains(txn_id) || term_waiting_.contains(txn_id)) continue;
    std::set<sim::NodeId> peers;
    for (const auto m : group().members()) {
      if (m != id() && m != who && !fd_.suspects(m)) peers.insert(m);
    }
    if (peers.empty()) {
      if (monitor() != nullptr && is_primary()) {
        monitor()->abort_event(id(), now(), obs::AbortCause::Failover, txn_id,
                               "primary-crash-termination");
      }
      apply_commit(txn_id, false);
      continue;
    }
    term_waiting_.emplace(txn_id, peers);
    EpTermQuery query;
    query.txn = txn_id;
    for (const auto peer : peers) ship_.send_fifo(peer, query);
  }
  // Staged-but-never-prepared work from the dead primary is dropped.
  for (auto it = staged_.begin(); it != staged_.end();) {
    if (!tpc_.in_doubt().contains(it->first) && !resolved_.contains(it->first) &&
        !active_.contains(it->first)) {
      it = staged_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = staged_group_.begin(); it != staged_group_.end();) {
    if (!tpc_.in_doubt().contains(it->first) && !resolved_.contains(it->first) &&
        !active_groups_.contains(it->first)) {
      it = staged_group_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace repli::core
