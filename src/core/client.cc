#include "core/client.hh"

#include "gcs/abcast.hh"
#include "obs/context.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::core {

Client::Client(sim::NodeId id, sim::Simulator& sim, ClientConfig config)
    : ComponentHost(id, sim, "client-" + std::to_string(id)), config_(std::move(config)) {
  util::ensure(config_.replicas.size() > 0, "Client: empty replica group");
  primary_hint_ = config_.replicas.members().front();
  if (config_.mode == SubmitMode::AbcastGroup || config_.mode == SubmitMode::FloodGroup) {
    util::ensure(config_.group_channel != 0, "Client: group mode needs a channel");
    flood_ = std::make_unique<gcs::Flooder>(*this, config_.replicas, config_.group_channel);
    add_component(*flood_);  // routes the link acks of our floods
  }
}

void Client::submit(Transaction txn, DoneFn done) {
  util::ensure(!txn.empty(), "Client::submit: empty transaction");
  auto request = std::make_shared<ClientRequest>();
  request->request_id = "c" + std::to_string(id()) + "-" + std::to_string(next_seq_++);
  request->client = id();
  request->ops = txn;

  Outstanding out;
  out.request = request;
  out.done = std::move(done);
  if (config_.history != nullptr) {
    OpRecord rec;
    rec.client = id();
    rec.request_id = request->request_id;
    rec.ops = txn;
    rec.invoke = now();
    out.history_index = config_.history->begin_op(std::move(rec));
    out.recorded = true;
  }
  const std::string request_id = request->request_id;
  auto [it, inserted] = outstanding_.emplace(request_id, std::move(out));
  util::ensure(inserted, "Client::submit: duplicate request id");

  // Each submit roots a fresh causal trace: the RE span and every message
  // sent while dispatching (and everything they transitively cause on the
  // replicas) carries this trace id.
  obs::ContextScope scope(
      obs::TraceContext{sim().tracer().new_trace_id(), obs::kNoSpan, 0});
  sim().trace().phase(request_id, id(), sim::Phase::Request, now(), now());
  dispatch(it->second);
}

sim::NodeId Client::next_target(sim::NodeId current) const {
  const auto& members = config_.replicas.members();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i] == current) return members[(i + 1) % members.size()];
  }
  return members.front();
}

void Client::dispatch(Outstanding& out) {
  ++out.attempts;
  switch (config_.mode) {
    case SubmitMode::AbcastGroup: {
      // Inject the request into the replicas' ABCAST data channel: the
      // client addresses the group, not an individual server (§3.2).
      gcs::AbData data;
      data.origin = id();
      data.lseq = next_abcast_lseq_++;
      data.payload = wire::to_blob(*out.request);
      flood_->rbcast(data);
      break;
    }
    case SubmitMode::FloodGroup:
      flood_->rbcast(*out.request);
      break;
    case SubmitMode::ToPrimary:
      out.target = primary_hint_;
      send(out.target, out.request);
      break;
    case SubmitMode::ToHome: {
      sim::NodeId target = config_.home;
      if (config_.reads_at_home) {
        // Lazy primary copy: updates must go to the primary; reads are
        // served by the client's local replica.
        target = out.request->read_only() ? config_.home : primary_hint_;
      }
      if (out.attempts > 1) target = out.target == sim::kNoNode ? target : next_target(out.target);
      out.target = target;
      send(target, out.request);
      break;
    }
  }
  arm_retry(out.request->request_id);
}

void Client::arm_retry(const std::string& request_id) {
  auto& out = outstanding_.at(request_id);
  out.armed = now();
  out.timer = set_timer(config_.retry_timeout, [this, request_id] {
    const auto it = outstanding_.find(request_id);
    if (it == outstanding_.end()) return;
    ++timeouts_;
    Outstanding& out = it->second;
    // The wait for an answer that never came is backoff time on the
    // critical path; name it so the waterfall files it under retransmit.
    sim().tracer().record(id(), "core/client.retry_wait", out.armed, now(), request_id);
    if (out.attempts >= config_.max_attempts) {
      if (config_.monitor != nullptr) {
        config_.monitor->abort_event(id(), now(), obs::AbortCause::Timeout, request_id,
                                     "client-gave-up");
      }
      ClientReply failure;
      failure.request_id = request_id;
      failure.ok = false;
      failure.result = "timeout";
      finish(request_id, failure);
      return;
    }
    // The paper's failure model for primary-based schemes: the client
    // notices the failure and retries against the next server.
    if (config_.mode == SubmitMode::ToPrimary) primary_hint_ = next_target(out.target);
    sim().metrics().incr("client.retries");
    util::log_info("client ", id(), ": retrying ", request_id, " (attempt ",
                   out.attempts + 1, ")");
    dispatch(out);
  });
}

void Client::finish(const std::string& request_id, const ClientReply& reply) {
  const auto it = outstanding_.find(request_id);
  if (it == outstanding_.end()) return;  // duplicate reply (active replication)
  Outstanding out = std::move(it->second);
  outstanding_.erase(it);
  cancel_timer(out.timer);
  const auto end_span = sim().trace().phase(request_id, id(), sim::Phase::Response, now(), now());
  if (!reply.ok) sim().tracer().attr(end_span, "ok", "0");
  if (out.recorded && config_.history != nullptr) {
    OpRecord& rec = config_.history->op(out.history_index);
    rec.response = now();
    rec.ok = reply.ok;
    rec.result = reply.result;
  }
  if (out.done) out.done(reply);
}

void Client::on_unhandled(sim::NodeId from, wire::MessagePtr msg) {
  if (const auto reply = wire::message_cast<ClientReply>(msg)) {
    finish(reply->request_id, *reply);
    return;
  }
  if (const auto redirect = wire::message_cast<Redirect>(msg)) {
    const auto it = outstanding_.find(redirect->request_id);
    if (it == outstanding_.end()) return;
    primary_hint_ = redirect->try_instead;
    Outstanding& out = it->second;
    cancel_timer(out.timer);
    out.target = redirect->try_instead;
    send(out.target, out.request);
    arm_retry(redirect->request_id);
    return;
  }
  (void)from;
}

}  // namespace repli::core
