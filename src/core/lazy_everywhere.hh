// Lazy update-everywhere replication, §4.6 / Fig. 11.
//
//   RE  client talks to its local replica
//   EX  the local replica executes and commits optimistically
//   END the client is answered immediately...
//   AC  ...then the update propagates and *reconciliation* decides the
//       after-commit order. Following the paper's suggestion, updates are
//       run through an Atomic Broadcast and the delivery order is the
//       after-commit order; a local commit whose write is overtaken by a
//       later-ordered conflicting update is "undone" (last-ordered wins).
//
// Metrics: "lazy.staleness_us" (commit-to-apply lag) and "lazy.undone"
// (transactions whose effect was lost in reconciliation — the dangers of
// replication, Gray et al. [GHPO96]).
#pragma once

#include <map>
#include <memory>

#include "core/lazy_primary.hh"  // LazyConfig
#include "core/replica.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/fd.hh"

namespace repli::core {

struct LeUpdate : wire::MessageBase<LeUpdate> {
  static constexpr const char* kTypeName = "core.LeUpdate";
  std::string txn;
  std::int32_t origin = 0;
  std::map<db::Key, db::Value> writes;
  std::int64_t committed_at = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(origin);
    ar(writes);
    ar(committed_at);
  }
};

class LazyEverywhereReplica : public ReplicaBase {
 public:
  LazyEverywhereReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                        LazyConfig config = {});

  std::int64_t undone() const { return undone_; }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  void on_request(const ClientRequest& request);
  void on_ordered(const LeUpdate& update);  // AbcastOrder policy
  void on_lww(const LeUpdate& update);      // TimestampLww policy
  void count_undone(const std::string& txn);

  gcs::FailureDetector fd_;
  gcs::SequencerAbcast abcast_;
  gcs::Flooder flood_;  // dissemination for the LWW policy (no ordering)
  LazyConfig config_;

  // AbcastOrder policy state.
  std::uint64_t order_counter_ = 0;               // abcast delivery position
  std::map<db::Key, std::uint64_t> key_order_;    // key -> position that wrote it
  std::map<db::Key, std::string> local_pending_;  // optimistic writes awaiting order

  // TimestampLww policy state: per key, the winning (commit time, origin).
  struct Stamp {
    std::int64_t at = -1;
    std::int32_t origin = -1;
    bool operator<(const Stamp& o) const { return std::tie(at, origin) < std::tie(o.at, o.origin); }
  };
  std::map<db::Key, Stamp> key_stamp_;

  std::set<std::string> undone_txns_;
  std::int64_t undone_ = 0;
};

}  // namespace repli::core
