// Passive (primary-backup) replication, §3.3 / Fig. 3.
//
//   RE  client sends the request to the primary
//   SC  — none — (only the primary processes)
//   EX  the primary executes the request (nondeterminism is fine)
//   AC  the primary VSCASTs the resulting update; backups apply it;
//       the primary waits until every backup of the current view acked
//   END the primary answers the client
//
// Failover: view change promotes the next-lowest member; the reply cache
// travels inside the updates, so a retried request is answered exactly once.
// The client notices primary failure (timeout/redirect) — per Fig. 5 this
// technique is *not* failure-transparent.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <vector>

#include "core/replica.hh"
#include "gcs/fd.hh"
#include "gcs/link.hh"
#include "gcs/view.hh"

namespace repli::core {

struct PbUpdate : wire::MessageBase<PbUpdate> {
  static constexpr const char* kTypeName = "core.PbUpdate";
  std::string request_id;
  std::int32_t client = 0;
  std::string result;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(client);
    ar(result);
    ar(writes);
  }
};

/// One transaction inside a batched update.
struct PbBatchEntry {
  std::string request_id;
  std::int32_t client = 0;
  std::string result;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(client);
    ar(result);
    ar(writes);
  }
};

/// Writeset batching (batched fast path): the primary executes up to
/// batch_max_ops queued requests back-to-back and VSCASTs their updates as
/// ONE message; backups apply the entries in order and ack once per batch.
struct PbUpdateBatch : wire::MessageBase<PbUpdateBatch> {
  static constexpr const char* kTypeName = "core.PbUpdateBatch";
  std::string batch;  // batch id (the ack key)
  std::vector<PbBatchEntry> entries;
  template <class Ar>
  void fields(Ar& ar) {
    ar(batch);
    ar(entries);
  }
};

struct PbUpdateAck : wire::MessageBase<PbUpdateAck> {
  static constexpr const char* kTypeName = "core.PbUpdateAck";
  std::string request_id;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
  }
};

class PassiveReplica : public ReplicaBase {
 public:
  PassiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env);

  bool is_primary() const { return vg_.view().primary() == id(); }
  const gcs::View& view() const { return vg_.view(); }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  void on_request(const ClientRequest& request);
  void on_update(const PbUpdate& update);
  void on_update_batch(const PbUpdateBatch& batch);
  void on_ack(sim::NodeId from, const PbUpdateAck& ack);
  void maybe_reply(const std::string& request_id);
  void maybe_reply_batch(const std::string& batch_id);
  void on_view(const gcs::View& view);
  void pump_batch();

  gcs::FailureDetector fd_;
  gcs::ViewGroup vg_;
  gcs::ReliableLink ack_link_;  // update acks must survive message loss
  std::unique_ptr<util::Rng> exec_rng_;
  std::unique_ptr<db::LocalRandomChoices> choices_;

  struct PendingReply {
    std::int32_t client = 0;
    std::string result;
    std::set<sim::NodeId> awaiting;  // backups whose ack is outstanding
    sim::Time ac_start = 0;
  };
  std::map<std::string, PendingReply> pending_;  // primary-side

  // Batched fast path (env().batch_max_ops > 1).
  struct BatchReply {
    std::string request_id;
    std::int32_t client = 0;
    std::string result;
  };
  struct PendingBatch {
    std::vector<BatchReply> entries;
    std::set<sim::NodeId> awaiting;  // backups whose batch ack is outstanding
    sim::Time ac_start = 0;
    bool applied = false;  // own VS-delivery applied locally
  };
  std::map<std::string, PendingBatch> pending_batches_;  // primary-side
  std::uint64_t batch_seq_ = 0;
  // Requests process one at a time at the primary: the next execution only
  // starts after the previous update has been applied locally, so each
  // transaction observes its predecessors (serializable primary order).
  std::deque<ClientRequest> queue_;
  std::set<std::string> queued_ids_;
  bool busy_ = false;
  void pump();
};

}  // namespace repli::core
