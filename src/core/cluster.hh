// Cluster: one-stop harness wiring a simulator, N replicas of a chosen
// technique, M clients with the matching interaction style, a shared
// stored-procedure registry, and history/trace recording. Tests, benches
// and examples all build on this.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/active.hh"
#include "core/certification.hh"
#include "core/client.hh"
#include "core/cluster_config.hh"
#include "core/eager_locking.hh"
#include "core/history.hh"
#include "core/lazy_primary.hh"
#include "core/replica.hh"
#include "core/technique.hh"
#include "db/exec.hh"
#include "obs/monitor.hh"
#include "sim/simulator.hh"

namespace repli::core {

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);

  sim::Simulator& sim() { return *sim_; }
  History& history() { return history_; }
  db::ProcRegistry& registry() { return registry_; }
  obs::HealthMonitor& monitor() { return monitor_; }
  const ClusterConfig& config() const { return config_; }

  int replica_count() const { return config_.replicas; }
  int client_count() const { return config_.clients; }
  ReplicaBase& replica(int i);
  Client& client(int i);
  sim::NodeId replica_node(int i) const { return static_cast<sim::NodeId>(i); }
  sim::NodeId client_node(int i) const {
    return static_cast<sim::NodeId>(config_.replicas + i);
  }

  /// Crash-stops replica `i`. Validated: an out-of-range index fails with
  /// a clear message (it would otherwise silently crash a *client* node),
  /// and re-crashing an already-crashed replica is an explicit no-op.
  void crash_replica(int i);

  /// Async submit from client `i`.
  void submit(int client, Transaction txn, Client::DoneFn done);
  void submit_op(int client, db::Operation op, Client::DoneFn done);

  /// Submit and run the simulation until the reply arrives (or `budget`
  /// simulated time passes — then the returned reply has ok=false).
  ClientReply run_op(int client, db::Operation op, sim::Time budget = 30 * sim::kSec);
  ClientReply run_txn(int client, Transaction txn, sim::Time budget = 30 * sim::kSec);

  /// Runs the simulation for `duration` more simulated time (propagation,
  /// failover, reconciliation, ...).
  void settle(sim::Time duration);

  /// True when all *live* replicas hold value-identical storage.
  bool converged() const;
  std::vector<std::uint64_t> storage_digests() const;

  /// Takes one health-monitor sample right now. Call at run teardown: a
  /// run shorter than monitor_interval would otherwise end with zero
  /// samples and an empty STATS artifact.
  void final_monitor_sample() { sample_monitor(); }

 private:
  void sample_monitor();
  void monitor_tick();

  ClusterConfig config_;
  db::ProcRegistry registry_;
  History history_;
  obs::HealthMonitor monitor_;
  std::unique_ptr<sim::Simulator> sim_;
  std::vector<ReplicaBase*> replicas_;
  std::vector<Client*> clients_;
};

/// Convenience operation builders shared by tests/benches/examples.
db::Operation op_get(const db::Key& key);
db::Operation op_put(const db::Key& key, const db::Value& value);
db::Operation op_add(const db::Key& key, std::int64_t delta);
db::Operation op_append(const db::Key& key, const db::Value& suffix);
db::Operation op_transfer(const db::Key& from, const db::Key& to, std::int64_t amount);
db::Operation op_spin_nondet(const db::Key& key);

}  // namespace repli::core
