// Run histories collected for the consistency checkers: client-observed
// operation intervals (linearizability) and per-replica commit streams
// (1-copy serializability, convergence, staleness).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "db/exec.hh"
#include "sim/time.hh"

namespace repli::core {

struct OpRecord {
  std::int32_t client = 0;
  std::string request_id;
  std::vector<db::Operation> ops;
  sim::Time invoke = 0;
  sim::Time response = 0;  // 0 while outstanding
  bool ok = false;
  std::string result;
};

struct CommitRecord {
  sim::NodeId replica = sim::kNoNode;
  std::string txn;
  std::map<db::Key, db::Value> writes;
  std::map<db::Key, std::uint64_t> read_versions;  // base versions read
  std::uint64_t commit_seq = 0;                    // replica-local sequence
  sim::Time at = 0;
};

class History {
 public:
  /// Returns the index of the new record so the response can be filled in.
  std::size_t begin_op(OpRecord rec) {
    ops_.push_back(std::move(rec));
    return ops_.size() - 1;
  }
  OpRecord& op(std::size_t index) { return ops_.at(index); }

  void commit(CommitRecord rec) { commits_.push_back(std::move(rec)); }

  const std::vector<OpRecord>& ops() const { return ops_; }
  const std::vector<CommitRecord>& commits() const { return commits_; }

  std::vector<CommitRecord> commits_at(sim::NodeId replica) const {
    std::vector<CommitRecord> out;
    for (const auto& c : commits_) {
      if (c.replica == replica) out.push_back(c);
    }
    return out;
  }

  std::size_t completed_ok() const {
    std::size_t n = 0;
    for (const auto& op : ops_) n += (op.response != 0 && op.ok) ? 1 : 0;
    return n;
  }

 private:
  std::vector<OpRecord> ops_;
  std::vector<CommitRecord> commits_;
};

}  // namespace repli::core
