// Certification-based database replication, §5.4.2 / Fig. 14.
//
//   RE  client sends to its local server (the delegate)
//   EX  the delegate executes the whole transaction on shadow copies,
//       recording the versions it read — *optimistically*, without any
//       prior coordination
//   AC  the (readset-versions, writeset) pair is ABCAST; every replica
//       certifies it in delivery order: if any item read has been
//       overwritten since, the transaction aborts — identically everywhere,
//       because certification is a deterministic function of the delivery
//       order
//   END the delegate answers (after a bounded number of abort-and-retry
//       rounds for contended transactions)
#pragma once

#include <map>
#include <set>

#include "core/replica.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/fd.hh"

namespace repli::core {

struct CtCertify : wire::MessageBase<CtCertify> {
  static constexpr const char* kTypeName = "core.CtCertify";
  std::string txn;
  std::uint32_t attempt = 1;
  std::int32_t delegate = 0;
  std::int32_t client = 0;
  std::string result;
  std::map<db::Key, std::uint64_t> read_versions;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(attempt);
    ar(delegate);
    ar(client);
    ar(result);
    ar(read_versions);
    ar(writes);
  }
};

struct CertificationConfig {
  int max_attempts = 10;  // re-execute + re-certify rounds before giving up
  /// Serve read-only transactions from the local copy without certifying
  /// them ([KA98]'s optimization). Reads become as cheap as lazy ones but
  /// may observe a slightly stale serialization point (the local replica's
  /// prefix of the total order) — the SER/CS trade-off the KA98 protocol
  /// suite exposes.
  bool local_reads = false;
};

class CertificationReplica : public ReplicaBase {
 public:
  CertificationReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                       CertificationConfig config = {});

  std::int64_t certification_aborts() const { return aborts_; }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  void on_request(const ClientRequest& request);
  void execute_and_broadcast(const ClientRequest& request, int attempt);
  void on_delivered(const CtCertify& cert);
  void close_ac_span(const std::string& txn, const char* verdict);

  gcs::FailureDetector fd_;
  gcs::SequencerAbcast abcast_;
  CertificationConfig config_;

  std::map<std::string, ClientRequest> driving_;  // delegate-side, for retries
  std::set<std::string> decided_;                 // txns certified (either way)
  std::int64_t aborts_ = 0;
  std::map<std::string, obs::SpanId> ac_spans_;   // delegate: broadcast -> verdict
};

}  // namespace repli::core
