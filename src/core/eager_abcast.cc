#include "core/eager_abcast.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

EagerAbcastReplica::EagerAbcastReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                                       EagerAbcastConfig config)
    : ReplicaBase(id, sim, "eager-abcast-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      abcast_(*this, group(), fd_, kAbcastChannel, sequencer_config_of(this->env())),
      config_(config) {
  add_component(fd_);
  add_component(abcast_);
  abcast_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto fwd = wire::message_cast<EaForward>(msg);
    if (fwd) on_delivered(*fwd);
  });
  if (config_.optimistic_execution) {
    abcast_.set_opt_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
      const auto fwd = wire::message_cast<EaForward>(msg);
      if (fwd) on_optimistic(*fwd);
    });
  }
}

void EagerAbcastReplica::on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) {
  const auto request = wire::message_cast<ClientRequest>(msg);
  if (!request) return;
  if (replay_cached_reply(request->client, request->request_id)) return;
  util::ensure(request->ops.size() == 1,
               "eager update-everywhere ABCAST implements the single-operation model "
               "(use certification-based replication for multi-op transactions, §5.4.2)");
  // RE -> SC: forward the request into the total order.
  EaForward fwd;
  fwd.delegate = id();
  fwd.request = *request;
  abcast_.abcast(fwd);
}

void EagerAbcastReplica::on_optimistic(const EaForward& fwd) {
  // Tentative execution, overlapping the ordering round. The CPU work is
  // the same; what we buy is that it happens *now* instead of after the
  // sequencer's round trip.
  const ClientRequest request = fwd.request;
  if (seen_.contains(request.request_id) || tentative_.contains(request.request_id)) return;
  tentative_.emplace(request.request_id, Tentative{});
  cpu_execute(env().exec_cost, [this, request] {
    // Note: the final delivery may already have *arrived* — that is fine,
    // its commit task sits behind this one on the CPU queue and will pick
    // the tentative result up. Only a finished transaction (entry erased)
    // makes this work pointless.
    const auto it = tentative_.find(request.request_id);
    if (it == tentative_.end()) return;
    Tentative& t = it->second;
    db::TxnExec txn(request.request_id, storage_);
    db::SeededChoices choices(wire::fnv1a(request.request_id));
    try {
      t.result = txn.run(registry(), request.ops.front(), choices);
    } catch (const std::exception&) {
      tentative_.erase(it);  // fall back to the final-delivery path
      return;
    }
    t.writes = txn.writes();
    t.reads = txn.read_versions();
    t.done = true;
  });
}

void EagerAbcastReplica::on_delivered(const EaForward& fwd) {
  const ClientRequest request = fwd.request;
  if (!seen_.insert(request.request_id).second) return;  // duplicate forward
  phase_now(request.request_id, sim::Phase::ServerCoord);
  const auto delegate = fwd.delegate;

  // A tentative execution validates iff everything it read is unchanged
  // (certification-style): then its effects equal what executing at the
  // final position would produce.
  auto validates = [this](const Tentative& t) {
    if (!t.done) return false;
    for (const auto& [key, version] : t.reads) {
      const auto rec = storage_.get(key);
      const std::uint64_t current = rec.has_value() ? rec->version : 0;
      if (current != version) return false;
    }
    return true;
  };
  // A tentative entry — even one whose execution is still queued — will be
  // complete by the time our task reaches the front of the (FIFO) CPU
  // queue, so its existence predicts a hit; validation happens in-task.
  const bool predicted_hit = tentative_.contains(request.request_id);
  const auto exec_start = now();

  auto commit = [this, request, delegate, exec_start](std::map<db::Key, db::Value> writes,
                                                      std::map<db::Key, std::uint64_t> reads,
                                                      std::string result) {
    tentative_.erase(request.request_id);
    if (!writes.empty()) {
      const auto commit_seq = storage_.next_commit_seq();
      for (const auto& [key, value] : writes) {
        storage_.put(key, value, commit_seq, request.request_id);
      }
      record_commit(request.request_id, writes, reads, commit_seq);
    }
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(request.ops.front(), exec_start, request.request_id);
    cache_reply(request.request_id, true, result);
    if (delegate == id()) {
      reply(request.client, request.request_id, true, result);
    }
  };
  auto execute_now = [this, request, commit] {
    db::TxnExec txn(request.request_id, storage_);
    db::SeededChoices choices(wire::fnv1a(request.request_id));
    const auto result = txn.run(registry(), request.ops.front(), choices);
    if (config_.optimistic_execution) {
      ++misses_;
      sim().metrics().incr("optimistic.misses");
    }
    commit(txn.writes(), txn.read_versions(), result);
  };

  if (!predicted_hit) {
    cpu_execute(env().exec_cost, execute_now);
    return;
  }
  cpu_execute(env().apply_cost, [this, request, validates, commit, execute_now] {
    const auto it = tentative_.find(request.request_id);
    if (it != tentative_.end() && validates(it->second)) {
      ++hits_;
      sim().metrics().incr("optimistic.hits");
      commit(std::move(it->second.writes), std::move(it->second.reads),
             std::move(it->second.result));
      return;
    }
    // Mis-speculation: redo in place. Committing must stay in delivery
    // order, so the redo cannot be re-queued behind later transactions;
    // the (rare) miss is therefore undercharged by exec_cost - apply_cost
    // of simulated CPU — an accepted approximation.
    execute_now();
  });
}

}  // namespace repli::core
