// Eager update-everywhere based on Atomic Broadcast, §4.4.2 / Fig. 9.
//
//   RE  client sends to its local server (the delegate)
//   SC  the delegate forwards the operation through ABCAST; the total order
//       dictates how conflicting operations serialize
//   EX  every replica executes in delivery order
//   AC  — none — (the paper's point: ordering makes the extra round
//       unnecessary when execution is deterministic)
//   END the delegate answers the client
#pragma once

#include <deque>
#include <memory>
#include <set>

#include "core/replica.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/fd.hh"

namespace repli::core {

struct EaForward : wire::MessageBase<EaForward> {
  static constexpr const char* kTypeName = "core.EaForward";
  std::int32_t delegate = 0;
  ClientRequest request;
  template <class Ar>
  void fields(Ar& ar) {
    ar(delegate);
    ar(request);
  }
};

struct EagerAbcastConfig {
  /// Optimistic processing over atomic broadcast ([KPAS99a], the DRAGON
  /// result the paper's introduction highlights): execute tentatively on
  /// *optimistic* delivery (payload arrival), overlapping execution with
  /// the ordering round; at final delivery, commit the precomputed writes
  /// if the state basis is unchanged, else re-execute. Hides (most of) the
  /// execution cost behind the group-communication latency.
  bool optimistic_execution = false;
};

class EagerAbcastReplica : public ReplicaBase {
 public:
  EagerAbcastReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                     EagerAbcastConfig config = {});

  std::int64_t optimistic_hits() const { return hits_; }
  std::int64_t optimistic_misses() const { return misses_; }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  void on_optimistic(const EaForward& fwd);
  void on_delivered(const EaForward& fwd);

  struct Tentative {
    bool done = false;
    std::map<db::Key, db::Value> writes;
    std::map<db::Key, std::uint64_t> reads;
    std::string result;
  };

  gcs::FailureDetector fd_;
  gcs::SequencerAbcast abcast_;
  EagerAbcastConfig config_;
  std::set<std::string> seen_;
  std::map<std::string, Tentative> tentative_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

}  // namespace repli::core
