// Lazy primary copy replication, §4.5 / Fig. 10.
//
//   RE  update transactions go to the primary; reads go to the client's
//       local replica (that locality is the whole point of lazy schemes)
//   EX  the primary executes and commits locally
//   END the client is answered immediately...
//   AC  ...and the changes propagate to the secondaries afterwards, over
//       FIFO channels, in primary commit order
//
// Secondaries serve (possibly stale) reads; the staleness histogram
// ("lazy.staleness_us") is the weak-consistency price Fig. 16 tabulates.
#pragma once

#include <map>

#include "core/replica.hh"
#include "gcs/fifo.hh"

namespace repli::core {

struct LzUpdate : wire::MessageBase<LzUpdate> {
  static constexpr const char* kTypeName = "core.LzUpdate";
  std::string txn;
  std::map<db::Key, db::Value> writes;
  std::int64_t committed_at = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(writes);
    ar(committed_at);
  }
};

/// How lazy update-everywhere decides which concurrent update wins (§4.6:
/// "reconciliation is needed to decide which updates are the winners").
enum class Reconciliation {
  AbcastOrder,   // the paper's suggestion: ABCAST delivery = after-commit order
  TimestampLww,  // classic last-writer-wins on (commit time, origin)
};

struct LazyConfig {
  /// Delay between local commit and propagation (batching window).
  sim::Time propagation_delay = 5 * sim::kMsec;
  Reconciliation reconciliation = Reconciliation::AbcastOrder;  // update-everywhere only
};

class LazyPrimaryReplica : public ReplicaBase {
 public:
  LazyPrimaryReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                     LazyConfig config = {});

  bool is_primary() const { return group().members().front() == id(); }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  void on_request(const ClientRequest& request);
  void on_update(const LzUpdate& update);

  gcs::FifoChannel ship_;
  LazyConfig config_;
};

}  // namespace repli::core
