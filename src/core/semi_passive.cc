#include "core/semi_passive.hh"

#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

SemiPassiveReplica::SemiPassiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env)
    : ReplicaBase(id, sim, "semi-passive-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      requests_(*this, group(), kRequestChannel),
      consensus_(*this, group(), fd_, kConsensusChannel) {
  add_component(fd_);
  add_component(requests_);
  add_component(consensus_);
  exec_rng_ = std::make_unique<util::Rng>(sim.rng().split());

  requests_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto request = wire::message_cast<ClientRequest>(msg);
    if (request) on_request(*request);
  });
  consensus_.set_value_provider(
      [this](std::uint64_t instance) { return provide(instance); });
  consensus_.set_decide(
      [this](std::uint64_t instance, const std::string& value) { on_decide(instance, value); });
}

void SemiPassiveReplica::on_request(const ClientRequest& request) {
  if (done_.contains(request.request_id)) {
    replay_cached_reply(request.client, request.request_id);
    return;
  }
  util::ensure(request.ops.size() == 1,
               "semi-passive replication implements the single-operation model (§2.2)");
  pending_.emplace(request.request_id, request);
  maybe_participate();
}

void SemiPassiveReplica::maybe_participate() {
  if (pending_.empty()) return;
  if (participated_upto_ >= next_instance_) return;
  participated_upto_ = next_instance_;
  consensus_.participate(next_instance_);
}

std::optional<std::string> SemiPassiveReplica::provide(std::uint64_t instance) {
  // Deferred initial value: only called when we coordinate a round.
  if (instance != next_instance_ || pending_.empty()) return std::nullopt;
  const ClientRequest& request = pending_.begin()->second;

  phase_now(request.request_id, sim::Phase::Execution);
  const auto exec_start = now();
  db::LocalRandomChoices choices(*exec_rng_);
  db::TxnExec txn(request.request_id, storage_);
  SpDecision decision;
  decision.request_id = request.request_id;
  decision.client = request.client;
  decision.result = txn.run(registry(), request.ops.front(), choices);
  decision.writes = txn.writes();
  exec_span(request.ops.front(), exec_start, request.request_id);
  return wire::to_blob(decision);
}

void SemiPassiveReplica::on_decide(std::uint64_t instance, const std::string& value) {
  decisions_.emplace(instance, value);
  apply_ready();
}

void SemiPassiveReplica::apply_ready() {
  for (;;) {
    const auto it = decisions_.find(next_instance_);
    if (it == decisions_.end()) break;
    const auto decision = wire::message_cast<SpDecision>(wire::from_blob(it->second));
    util::ensure(decision != nullptr, "semi-passive: decision is not an SpDecision");
    decisions_.erase(it);
    ++next_instance_;

    if (done_.insert(decision->request_id).second) {
      const auto seq = storage_.next_commit_seq();
      for (const auto& [key, value] : decision->writes) {
        storage_.put(key, value, seq, decision->request_id);
      }
      if (!decision->writes.empty()) {
        record_commit(decision->request_id, decision->writes, {}, seq);
      }
      pending_.erase(decision->request_id);
      cache_reply(decision->request_id, true, decision->result);
      phase_now(decision->request_id, sim::Phase::AgreementCoord);
      span_now("db/exec.apply", decision->request_id,
               obs::Attrs{{"writes", std::to_string(decision->writes.size())}});
      // Every replica answers (failure transparency; client keeps the first).
      reply(decision->client, decision->request_id, true, decision->result);
    }
  }
  maybe_participate();
}

}  // namespace repli::core
