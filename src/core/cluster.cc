#include "core/cluster.hh"

#include "core/channels.hh"
#include "core/eager_abcast.hh"
#include "core/eager_primary.hh"
#include "core/lazy_everywhere.hh"
#include "core/passive.hh"
#include "core/semi_active.hh"
#include "core/semi_passive.hh"
#include "util/assert.hh"

namespace repli::core {

Cluster::Cluster(ClusterConfig config)
    : config_(config), registry_(db::ProcRegistry::with_builtins()) {
  util::ensure(config_.replicas >= 1, "Cluster: need at least one replica");
  util::ensure(config_.clients >= 1, "Cluster: need at least one client");
  util::ensure(config_.batch_max_ops >= 1, "Cluster: batch_max_ops must be >= 1");
  if (config_.batch_max_ops > 1 && config_.net.coalesce_window == 0) {
    // Batching implies frame coalescing unless the caller pinned a window.
    config_.net.coalesce_window = config_.batch_flush_us * sim::kUsec;
  }
  sim_ = std::make_unique<sim::Simulator>(config_.seed, config_.net);
  monitor_.bind(&sim_->tracer(), &sim_->metrics());

  std::vector<sim::NodeId> members;
  for (int i = 0; i < config_.replicas; ++i) members.push_back(static_cast<sim::NodeId>(i));
  const gcs::Group group(members);

  ReplicaEnv env;
  env.group = group;
  env.registry = &registry_;
  env.history = config_.record_history ? &history_ : nullptr;
  env.monitor = &monitor_;
  env.exec_cost = config_.costs.exec_cost;
  env.apply_cost = config_.costs.apply_cost;
  env.batch_max_ops = config_.batch_max_ops;
  env.batch_flush = config_.batch_flush_us * sim::kUsec;

  for (int i = 0; i < config_.replicas; ++i) {
    switch (config_.kind) {
      case TechniqueKind::Active:
        replicas_.push_back(&sim_->spawn<ActiveReplica>(
            env, config_.active_abcast_impl == 0 ? AbcastImpl::Sequencer
                                                 : AbcastImpl::Consensus));
        break;
      case TechniqueKind::Passive:
        replicas_.push_back(&sim_->spawn<PassiveReplica>(env));
        break;
      case TechniqueKind::SemiActive:
        replicas_.push_back(&sim_->spawn<SemiActiveReplica>(env));
        break;
      case TechniqueKind::SemiPassive:
        replicas_.push_back(&sim_->spawn<SemiPassiveReplica>(env));
        break;
      case TechniqueKind::EagerPrimary:
        replicas_.push_back(&sim_->spawn<EagerPrimaryReplica>(env));
        break;
      case TechniqueKind::EagerLocking: {
        EagerLockingConfig lk;
        lk.max_attempts = config_.locking_max_attempts;
        lk.lock.wait_timeout = config_.locking_wait_timeout;
        lk.read_one_write_all = config_.locking_read_one_write_all;
        replicas_.push_back(&sim_->spawn<EagerLockingReplica>(env, lk));
        break;
      }
      case TechniqueKind::EagerAbcast: {
        EagerAbcastConfig ea;
        ea.optimistic_execution = config_.eager_abcast_optimistic;
        replicas_.push_back(&sim_->spawn<EagerAbcastReplica>(env, ea));
        break;
      }
      case TechniqueKind::LazyPrimary: {
        LazyConfig lazy;
        lazy.propagation_delay = config_.lazy_propagation_delay;
        replicas_.push_back(&sim_->spawn<LazyPrimaryReplica>(env, lazy));
        break;
      }
      case TechniqueKind::LazyEverywhere: {
        LazyConfig lazy;
        lazy.propagation_delay = config_.lazy_propagation_delay;
        lazy.reconciliation = config_.lazy_reconciliation == 0
                                  ? Reconciliation::AbcastOrder
                                  : Reconciliation::TimestampLww;
        replicas_.push_back(&sim_->spawn<LazyEverywhereReplica>(env, lazy));
        break;
      }
      case TechniqueKind::Certification: {
        CertificationConfig ct;
        ct.max_attempts = config_.certification_max_attempts;
        ct.local_reads = config_.certification_local_reads;
        replicas_.push_back(&sim_->spawn<CertificationReplica>(env, ct));
        break;
      }
    }
  }

  for (int i = 0; i < config_.clients; ++i) {
    ClientConfig cc;
    cc.replicas = group;
    cc.history = config_.record_history ? &history_ : nullptr;
    cc.monitor = &monitor_;
    cc.retry_timeout = config_.client_retry_timeout;
    cc.max_attempts = config_.client_max_attempts;
    cc.home = static_cast<sim::NodeId>(i % config_.replicas);
    switch (config_.kind) {
      case TechniqueKind::Active:
      case TechniqueKind::SemiActive:
        cc.mode = SubmitMode::AbcastGroup;
        cc.group_channel = kAbcastChannel;
        break;
      case TechniqueKind::SemiPassive:
        cc.mode = SubmitMode::FloodGroup;
        cc.group_channel = kRequestChannel;
        break;
      case TechniqueKind::Passive:
      case TechniqueKind::EagerPrimary:
        cc.mode = SubmitMode::ToPrimary;
        break;
      case TechniqueKind::LazyPrimary:
        cc.mode = SubmitMode::ToHome;
        cc.reads_at_home = true;
        break;
      case TechniqueKind::EagerLocking:
        cc.mode = SubmitMode::ToHome;
        // A locking transaction may legitimately stall for several
        // lock-wait timeouts plus retry backoffs; retrying the client
        // earlier would spawn duplicate work at another delegate (§4.1:
        // the client waits for "its" server).
        cc.retry_timeout =
            std::max(cc.retry_timeout, 6 * config_.locking_wait_timeout);
        break;
      case TechniqueKind::EagerAbcast:
      case TechniqueKind::LazyEverywhere:
      case TechniqueKind::Certification:
        cc.mode = SubmitMode::ToHome;
        break;
    }
    clients_.push_back(&sim_->spawn<Client>(cc));
  }

  sim_->start_all();
  if (config_.monitor_interval > 0) {
    sim_->schedule_after(config_.monitor_interval, [this] { monitor_tick(); });
  }
}

void Cluster::sample_monitor() {
  std::vector<std::pair<obs::NodeId, std::uint64_t>> versions;
  std::vector<std::pair<obs::NodeId, std::uint64_t>> digests;
  std::size_t lock_waiters = 0;
  for (int i = 0; i < config_.replicas; ++i) {
    const auto node = replica_node(i);
    if (sim_->crashed(node)) continue;
    const auto& replica = *replicas_[static_cast<std::size_t>(i)];
    versions.emplace_back(node, replica.storage().last_commit_seq());
    digests.emplace_back(node, replica.storage().value_digest());
    lock_waiters += replica.lock_waiters();
  }
  monitor_.sample_versions(sim_->now(), versions);
  monitor_.digest_sample(sim_->now(), digests);
  // Saturation gauges: depth of the run's queues at the sampling instant —
  // rising depths flag an overloaded layer long before latency shows it.
  auto& metrics = sim_->metrics();
  metrics.histogram("queue.sim_events")
      .observe(static_cast<double>(sim_->pending_events()));
  metrics.histogram("queue.net_inflight")
      .observe(static_cast<double>(sim_->net().inflight_total()));
  metrics.histogram("queue.net_inflight_max_link")
      .observe(static_cast<double>(sim_->net().inflight_max_link()));
  metrics.histogram("queue.lock_waiters").observe(static_cast<double>(lock_waiters));
}

void Cluster::monitor_tick() {
  sample_monitor();
  sim_->schedule_after(config_.monitor_interval, [this] { monitor_tick(); });
}

void Cluster::crash_replica(int i) {
  util::ensure(i >= 0 && i < config_.replicas,
               "Cluster::crash_replica: index is not a replica (crashing a "
               "client node is almost certainly a fault-plan bug)");
  sim_->crash(replica_node(i));
}

ReplicaBase& Cluster::replica(int i) {
  util::ensure(i >= 0 && i < config_.replicas, "Cluster::replica: bad index");
  return *replicas_[static_cast<std::size_t>(i)];
}

Client& Cluster::client(int i) {
  util::ensure(i >= 0 && i < config_.clients, "Cluster::client: bad index");
  return *clients_[static_cast<std::size_t>(i)];
}

void Cluster::submit(int client_index, Transaction txn, Client::DoneFn done) {
  client(client_index).submit(std::move(txn), std::move(done));
}

void Cluster::submit_op(int client_index, db::Operation op, Client::DoneFn done) {
  client(client_index).submit_op(std::move(op), std::move(done));
}

ClientReply Cluster::run_op(int client_index, db::Operation op, sim::Time budget) {
  return run_txn(client_index, Transaction{std::move(op)}, budget);
}

ClientReply Cluster::run_txn(int client_index, Transaction txn, sim::Time budget) {
  std::optional<ClientReply> reply;
  submit(client_index, std::move(txn), [&reply](const ClientReply& r) { reply = r; });
  const sim::Time deadline = sim_->now() + budget;
  while (!reply.has_value() && sim_->now() < deadline) {
    sim_->run_until(std::min(deadline, sim_->now() + 10 * sim::kMsec));
  }
  if (!reply.has_value()) {
    ClientReply failure;
    failure.ok = false;
    failure.result = "simulation-budget-exhausted";
    return failure;
  }
  return *reply;
}

void Cluster::settle(sim::Time duration) { sim_->run_until(sim_->now() + duration); }

std::vector<std::uint64_t> Cluster::storage_digests() const {
  std::vector<std::uint64_t> out;
  for (int i = 0; i < config_.replicas; ++i) {
    const auto node = static_cast<sim::NodeId>(i);
    if (sim_->crashed(node)) continue;
    out.push_back(replicas_[static_cast<std::size_t>(i)]->storage().value_digest());
  }
  return out;
}

bool Cluster::converged() const {
  const auto digests = storage_digests();
  for (const auto d : digests) {
    if (d != digests.front()) return false;
  }
  return true;
}

db::Operation op_get(const db::Key& key) {
  db::Operation op;
  op.proc = "get";
  op.args = {key};
  op.read_set = {key};
  return op;
}

db::Operation op_put(const db::Key& key, const db::Value& value) {
  db::Operation op;
  op.proc = "put";
  op.args = {key, value};
  op.write_set = {key};
  return op;
}

db::Operation op_add(const db::Key& key, std::int64_t delta) {
  db::Operation op;
  op.proc = "add";
  op.args = {key, std::to_string(delta)};
  op.read_set = {key};
  op.write_set = {key};
  return op;
}

db::Operation op_append(const db::Key& key, const db::Value& suffix) {
  db::Operation op;
  op.proc = "append";
  op.args = {key, suffix};
  op.read_set = {key};
  op.write_set = {key};
  return op;
}

db::Operation op_transfer(const db::Key& from, const db::Key& to, std::int64_t amount) {
  db::Operation op;
  op.proc = "transfer";
  op.args = {from, to, std::to_string(amount)};
  op.read_set = {from, to};
  op.write_set = {from, to};
  return op;
}

db::Operation op_spin_nondet(const db::Key& key) {
  db::Operation op;
  op.proc = "spin_nondet";
  op.args = {key};
  op.write_set = {key};
  return op;
}

}  // namespace repli::core
