#include "core/lazy_everywhere.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"

namespace repli::core {

LazyEverywhereReplica::LazyEverywhereReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                                             LazyConfig config)
    : ReplicaBase(id, sim, "lazy-everywhere-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      abcast_(*this, group(), fd_, kAbcastChannel, sequencer_config_of(this->env())),
      flood_(*this, group(), kRequestChannel, batched_link_of(this->env())),
      config_(config) {
  add_component(fd_);
  add_component(abcast_);
  add_component(flood_);
  abcast_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto update = wire::message_cast<LeUpdate>(msg);
    if (update) on_ordered(*update);
  });
  flood_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto update = wire::message_cast<LeUpdate>(msg);
    if (update) on_lww(*update);
  });
}

void LazyEverywhereReplica::on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) {
  const auto request = wire::message_cast<ClientRequest>(msg);
  if (!request) return;
  on_request(*request);
}

void LazyEverywhereReplica::on_request(const ClientRequest& request) {
  if (replay_cached_reply(request.client, request.request_id)) return;
  const auto exec_start = now();
  cpu_execute(env().exec_cost * static_cast<sim::Time>(request.ops.size()),
              [this, request, exec_start] {
    db::TxnExec txn(request.request_id, storage_);
    db::SeededChoices choices(wire::fnv1a(request.request_id));
    std::string result;
    try {
      for (const auto& op : request.ops) result = txn.run(registry(), op, choices);
    } catch (const std::exception& e) {
      reply(request.client, request.request_id, false, e.what());
      return;
    }
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(request.ops.back(), exec_start, request.request_id);

    const auto writes = txn.writes();
    if (!writes.empty()) {
      // Optimistic local commit: visible to local reads immediately.
      const auto seq = txn.commit_into(storage_);
      record_commit(request.request_id, writes, txn.read_versions(), seq);
      if (config_.reconciliation == Reconciliation::AbcastOrder) {
        for (const auto& [key, value] : writes) local_pending_[key] = request.request_id;
      } else {
        const Stamp mine{now(), id()};
        for (const auto& [key, value] : writes) {
          auto& stamp = key_stamp_[key];
          if (stamp < mine) stamp = mine;
        }
      }
    }
    cache_reply(request.request_id, true, result);
    // END before AC: reply now, reconcile later.
    reply(request.client, request.request_id, true, result);

    if (!writes.empty()) {
      LeUpdate update;
      update.txn = request.request_id;
      update.origin = id();
      update.writes = writes;
      update.committed_at = now();
      set_timer(config_.propagation_delay, [this, update] {
        if (config_.reconciliation == Reconciliation::AbcastOrder) {
          abcast_.abcast(update);
        } else {
          flood_.rbcast(update);
        }
      });
    }
  });
}

void LazyEverywhereReplica::on_ordered(const LeUpdate& update) {
  // Reconciliation: the ABCAST delivery order is the after-commit order;
  // per key, the last-ordered write wins everywhere (the delivery counter
  // is identical at every replica, so all converge to the same state).
  const std::uint64_t position = ++order_counter_;
  std::uint64_t update_seq = 0;  // all of an update's writes share one version
  phase(update.txn, sim::Phase::AgreementCoord, now(), now());
  if (update.origin != id()) {
    sim().metrics().histogram("lazy.staleness_us")
        .observe(static_cast<double>(now() - update.committed_at));
  }

  for (const auto& [key, value] : update.writes) {
    if (const auto pit = local_pending_.find(key); pit != local_pending_.end()) {
      if (update.origin == id() && pit->second == update.txn) {
        // Our optimistic write reached its slot in the global order.
        local_pending_.erase(pit);
      } else if (update.origin != id()) {
        // A remote update, ordered now, conflicts with a local optimistic
        // commit that is still awaiting its slot: the two transactions ran
        // concurrently on diverged copies, so reconciliation sacrifices
        // one of the two effects (Gray et al.'s lost work).
        count_undone(pit->second);
      }
    }
    auto& order = key_order_[key];
    if (order > position) continue;  // a later-ordered write already landed
    order = position;
    if (update_seq == 0) update_seq = storage_.next_commit_seq();
    storage_.force_put(key, value, update_seq, update.txn);
  }
}

void LazyEverywhereReplica::count_undone(const std::string& txn) {
  if (undone_txns_.insert(txn).second) {
    ++undone_;
    sim().metrics().incr("lazy.undone");
    if (monitor() != nullptr) {
      monitor()->abort_event(id(), now(), obs::AbortCause::Other, txn, "lazy-undo");
    }
  }
}

void LazyEverywhereReplica::on_lww(const LeUpdate& update) {
  // Last-writer-wins: per key, the highest (commit time, origin) stamp wins
  // everywhere — convergent without any ordering traffic. A local value
  // beaten by a remote stamp is the lost concurrent update.
  phase(update.txn, sim::Phase::AgreementCoord, now(), now());
  if (update.origin == id()) return;  // our own flood coming back
  sim().metrics().histogram("lazy.staleness_us")
      .observe(static_cast<double>(now() - update.committed_at));

  const Stamp incoming{update.committed_at, update.origin};
  std::uint64_t update_seq = 0;
  for (const auto& [key, value] : update.writes) {
    auto& stamp = key_stamp_[key];
    if (!(stamp < incoming)) continue;  // the installed write wins or ties
    // If the value being overwritten was written locally, that local
    // transaction's effect is now globally lost.
    const auto current = storage_.get(key);
    if (current.has_value() && stamp.origin == id()) count_undone(current->writer_txn);
    stamp = incoming;
    if (update_seq == 0) update_seq = storage_.next_commit_seq();
    storage_.force_put(key, value, update_seq, update.txn);
  }
}

}  // namespace repli::core
