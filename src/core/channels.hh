// Link/flood channel assignments. Components multiplexing one process's
// traffic are separated by channel id; techniques and their client stubs
// must agree on these (a client injecting a request into the replicas'
// ABCAST uses the ABCAST data channel).
#pragma once

#include <cstdint>

namespace repli::core {

// ABCAST stack (sequencer: ch, ch+1; consensus-based: ch..ch+3).
inline constexpr std::uint32_t kAbcastChannel = 100;
// Request dissemination to the whole group (semi-passive).
inline constexpr std::uint32_t kRequestChannel = 120;
// View-synchronous membership (passive, semi-active decisions).
inline constexpr std::uint32_t kViewChannel = 140;
// Two-phase commit.
inline constexpr std::uint32_t kTpcChannel = 160;
// Distributed lock requests/grants (eager update-everywhere locking).
inline constexpr std::uint32_t kLockChannel = 200;
// Point-to-point FIFO update shipping (eager/lazy primary copy).
inline constexpr std::uint32_t kShipChannel = 220;
// Consensus for semi-passive (ch..ch+1 internal to Consensus).
inline constexpr std::uint32_t kConsensusChannel = 240;

}  // namespace repli::core
