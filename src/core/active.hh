// Active replication (state machine approach, §3.2 / Fig. 2).
//
//   RE  client ABCASTs the request to the server group
//   SC  total order of the Atomic Broadcast
//   EX  every replica executes the request (determinism required!)
//   AC  — none —
//   END every replica replies; the client keeps the first answer
//
// Determinism is *not* assumed away: operations whose stored procedure is
// nondeterministic execute against replica-local randomness, so replicas
// genuinely diverge — exactly the failure mode the paper says this
// technique cannot handle (tests and Fig-5 probes rely on it).
#pragma once

#include <memory>
#include <set>

#include "core/replica.hh"
#include "gcs/abcast.hh"
#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/fd.hh"

namespace repli::core {

enum class AbcastImpl { Sequencer, Consensus };

class ActiveReplica : public ReplicaBase {
 public:
  ActiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                AbcastImpl impl = AbcastImpl::Sequencer);

 private:
  void on_request(const ClientRequest& request);

  gcs::FailureDetector fd_;
  std::unique_ptr<gcs::AtomicBroadcast> abcast_;
  std::set<std::string> seen_;  // request ids already processed (retries)
  std::unique_ptr<db::LocalRandomChoices> choices_;
  std::unique_ptr<util::Rng> exec_rng_;
};

}  // namespace repli::core
