#include "core/technique.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::core {

const std::vector<TechniqueInfo>& all_techniques() {
  static const std::vector<TechniqueInfo> table = {
      // kind, name, figure, db, update-everywhere, eager, determinism,
      // failure-transparent, paper pattern, consistency, multi-op
      {TechniqueKind::Active, "active", "Fig. 2", false, true, true, true, true,
       "RE SC EX END", Consistency::Strong, false},
      {TechniqueKind::Passive, "passive", "Fig. 3", false, false, true, false, false,
       "RE EX AC END", Consistency::Strong, false},
      {TechniqueKind::SemiActive, "semi-active", "Fig. 4", false, true, true, false, true,
       "RE SC EX AC END", Consistency::Strong, false},
      {TechniqueKind::SemiPassive, "semi-passive", "§3.5", false, false, true, false, true,
       "RE EX AC END", Consistency::Strong, false},
      {TechniqueKind::EagerPrimary, "eager-primary-copy", "Fig. 7 / Fig. 12", true, false, true,
       false, false, "RE EX AC END", Consistency::Strong, true},
      {TechniqueKind::EagerLocking, "eager-update-everywhere-locking", "Fig. 8 / Fig. 13", true,
       true, true, false, false, "RE SC EX AC END", Consistency::Strong, true},
      {TechniqueKind::EagerAbcast, "eager-update-everywhere-abcast", "Fig. 9", true, true, true,
       true, false, "RE SC EX END", Consistency::Strong, false},
      {TechniqueKind::LazyPrimary, "lazy-primary-copy", "Fig. 10", true, false, false, false,
       false, "RE EX END AC", Consistency::Weak, true},
      {TechniqueKind::LazyEverywhere, "lazy-update-everywhere", "Fig. 11", true, true, false,
       false, false, "RE EX END AC", Consistency::Weak, true},
      {TechniqueKind::Certification, "certification-based", "Fig. 14", true, true, true, true,
       false, "RE EX AC END", Consistency::Strong, true},
  };
  return table;
}

const TechniqueInfo& technique_info(TechniqueKind kind) {
  for (const auto& info : all_techniques()) {
    if (info.kind == kind) return info;
  }
  util::fail("technique_info: unknown kind");
}

std::string_view technique_name(TechniqueKind kind) { return technique_info(kind).name; }

std::optional<TechniqueKind> technique_from_name(std::string_view name) {
  for (const auto& info : all_techniques()) {
    if (info.name == name) return info.kind;
  }
  return std::nullopt;
}

std::vector<std::string_view> technique_fault_phases(TechniqueKind kind) {
  const std::string_view pattern = technique_info(kind).paper_pattern;
  std::vector<std::string_view> phases;
  std::size_t pos = 0;
  while (pos < pattern.size()) {
    const auto space = pattern.find(' ', pos);
    const auto token = pattern.substr(pos, space == std::string_view::npos ? space : space - pos);
    if (!token.empty() &&
        std::find(phases.begin(), phases.end(), token) == phases.end()) {
      phases.push_back(token);
    }
    if (space == std::string_view::npos) break;
    pos = space + 1;
  }
  return phases;
}

}  // namespace repli::core
