// Helpers that translate ReplicaEnv batching knobs into the gcs-layer
// configs. Every technique passes these in its member-init list so that the
// whole stack (abcast envelopes, ordering batches, link packs) follows one
// pair of knobs. batch_max_ops <= 1 yields the exact default configs — the
// byte-identical unbatched path.
#pragma once

#include "core/replica.hh"
#include "gcs/abcast.hh"
#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/link.hh"

namespace repli::core {

inline gcs::AbcastBatchConfig abcast_batch_of(const ReplicaEnv& env) {
  gcs::AbcastBatchConfig batch;
  if (env.batch_max_ops > 1) {
    batch.max_msgs = env.batch_max_ops;
    batch.flush_window = env.batch_flush;
  }
  return batch;
}

inline gcs::LinkConfig batched_link_of(const ReplicaEnv& env, gcs::LinkConfig base = {}) {
  if (env.batch_max_ops > 1) {
    base.batch_max_msgs = env.batch_max_ops;
    base.batch_window = env.batch_flush;
  }
  return base;
}

inline gcs::SequencerConfig sequencer_config_of(const ReplicaEnv& env) {
  gcs::SequencerConfig config;
  config.batch = abcast_batch_of(env);
  config.link = batched_link_of(env, config.link);
  return config;
}

inline gcs::ConsensusConfig consensus_config_of(const ReplicaEnv& env) {
  gcs::ConsensusConfig config;
  config.batch = abcast_batch_of(env);
  config.link = batched_link_of(env, config.link);
  return config;
}

}  // namespace repli::core
