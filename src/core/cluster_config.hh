// Configuration for Cluster (kept separate so techniques' headers can stay
// out of config-only includes).
#pragma once

#include <cstdint>

#include "core/technique.hh"
#include "sim/network.hh"
#include "sim/time.hh"

namespace repli::core {

enum class AbcastImpl;  // defined in core/active.hh

struct ClusterCosts {
  sim::Time exec_cost = 100 * sim::kUsec;
  sim::Time apply_cost = 20 * sim::kUsec;
};

struct ClusterConfig {
  TechniqueKind kind = TechniqueKind::Active;
  int replicas = 3;
  int clients = 1;
  std::uint64_t seed = 1;
  sim::NetworkConfig net;
  ClusterCosts costs;
  bool record_history = true;
  // Health-monitor sampling period (staleness + divergence digests over all
  // live replicas); 0 disables periodic sampling (events still flow).
  sim::Time monitor_interval = 20 * sim::kMsec;

  // Technique-specific knobs (defaults are fine for most uses).
  int active_abcast_impl = 0;             // 0 sequencer, 1 consensus-based
  sim::Time lazy_propagation_delay = 5 * sim::kMsec;
  int locking_max_attempts = 10;
  sim::Time locking_wait_timeout = 500 * sim::kMsec;
  bool locking_read_one_write_all = true;  // §5.4.1: reads lock locally only
  int lazy_reconciliation = 0;  // 0 = ABCAST after-commit order, 1 = timestamp LWW
  bool eager_abcast_optimistic = false;  // [KPAS99a] optimistic processing
  int certification_max_attempts = 10;
  bool certification_local_reads = false;  // [KA98] reads served locally
  sim::Time client_retry_timeout = 500 * sim::kMsec;
  int client_max_attempts = 8;

  // Batching fast path. batch_max_ops > 1 turns on every batching layer:
  // abcast submission batching + ordering batching (gcs), link payload
  // packing, group commit / writeset batching in the techniques, and
  // physical frame coalescing in the network (coalesce_window defaults to
  // batch_flush_us when unset). batch_max_ops == 1 (the default) is the
  // byte-identical unbatched path.
  int batch_max_ops = 1;
  std::int64_t batch_flush_us = 200;  // flush window for every batching layer
};

}  // namespace repli::core
