#include "core/passive.hh"

#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::core {

PassiveReplica::PassiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env)
    : ReplicaBase(id, sim, "passive-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      vg_(*this, group(), fd_, kViewChannel),
      ack_link_(*this, kShipChannel) {
  add_component(fd_);
  add_component(vg_);
  add_component(ack_link_);
  ack_link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    const auto ack = wire::message_cast<PbUpdateAck>(msg);
    if (ack) on_ack(from, *ack);
  });
  exec_rng_ = std::make_unique<util::Rng>(sim.rng().split());
  choices_ = std::make_unique<db::LocalRandomChoices>(*exec_rng_);
  vg_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    if (const auto update = wire::message_cast<PbUpdate>(msg)) {
      on_update(*update);
      return;
    }
    if (const auto batch = wire::message_cast<PbUpdateBatch>(msg)) {
      on_update_batch(*batch);
      return;
    }
  });
  vg_.on_view([this](const gcs::View& view) { on_view(view); });
  fd_.on_suspect([this](sim::NodeId who) {
    if (monitor() != nullptr) monitor()->suspected(who, this->id(), now());
  });
}

void PassiveReplica::on_unhandled(sim::NodeId from, wire::MessagePtr msg) {
  if (const auto request = wire::message_cast<ClientRequest>(msg)) {
    on_request(*request);
    return;
  }
  if (const auto ack = wire::message_cast<PbUpdateAck>(msg)) {
    on_ack(from, *ack);
    return;
  }
}

void PassiveReplica::on_request(const ClientRequest& request) {
  if (!is_primary()) {
    auto redirect = std::make_shared<Redirect>();
    redirect->request_id = request.request_id;
    redirect->try_instead = vg_.view().primary();
    send(request.client, std::move(redirect));
    return;
  }
  if (replay_cached_reply(request.client, request.request_id)) return;
  if (pending_.contains(request.request_id) || queued_ids_.contains(request.request_id)) return;
  util::ensure(request.ops.size() == 1,
               "passive replication implements the single-operation model (§2.2)");
  note_request_trace(request.request_id);
  queued_ids_.insert(request.request_id);
  queue_.push_back(request);
  pump();
}

void PassiveReplica::pump() {
  if (busy_ || queue_.empty()) return;
  if (!is_primary()) return;  // demoted: clients will be redirected on retry
  if (env().batch_max_ops > 1) {
    pump_batch();
    return;
  }
  busy_ = true;
  const ClientRequest request = queue_.front();
  // The pump often runs inside the event that finished the *previous*
  // transaction; resume this request's own causal trace before scheduling.
  TraceResume resume{*this, request.request_id};

  const db::Operation op = request.ops.front();
  const auto exec_start = now();
  cpu_execute(env().exec_cost, [this, request, op, exec_start] {
    if (!is_primary()) {  // demoted while executing (rare; client retries)
      busy_ = false;
      return;
    }
    // Execute on a shadow: the canonical state change happens when the
    // update is VS-delivered, in the same order at primary and backups.
    db::TxnExec txn(request.request_id, storage_);
    std::string result;
    try {
      result = txn.run(registry(), op, *choices_);
    } catch (const std::exception& e) {
      reply(request.client, request.request_id, false, e.what());
      queue_.pop_front();
      queued_ids_.erase(request.request_id);
      busy_ = false;
      pump();
      return;
    }
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(op, exec_start, request.request_id);

    PendingReply pending;
    pending.client = request.client;
    pending.result = result;
    pending.ac_start = now();
    for (const auto m : vg_.view().members) {
      if (m != id()) pending.awaiting.insert(m);
    }
    pending_.emplace(request.request_id, std::move(pending));

    PbUpdate update;
    update.request_id = request.request_id;
    update.client = request.client;
    update.result = result;
    update.writes = txn.writes();
    vg_.vscast(update);  // applies locally via VS self-delivery
    maybe_reply(request.request_id);  // zero-backup view
  });
}

void PassiveReplica::pump_batch() {
  // Natural batching: drain whatever queued up while the pipeline was busy,
  // capped at batch_max_ops, and ship all resulting updates as one VSCAST.
  busy_ = true;
  std::vector<ClientRequest> requests;
  const auto limit = static_cast<std::size_t>(env().batch_max_ops);
  while (!queue_.empty() && requests.size() < limit) {
    requests.push_back(queue_.front());
    queue_.pop_front();
    queued_ids_.erase(requests.back().request_id);
  }
  const auto exec_start = now();
  cpu_execute(env().exec_cost * static_cast<sim::Time>(requests.size()),
              [this, requests, exec_start] {
    if (!is_primary()) {  // demoted while executing (rare; clients retry)
      busy_ = false;
      return;
    }
    // Execute on a scratch copy so each transaction in the batch sees its
    // predecessors; the canonical state change still happens at VS-delivery.
    db::Storage scratch = storage_;
    PbUpdateBatch batch;
    batch.batch = "pbgrp@" + std::to_string(id()) + "." + std::to_string(++batch_seq_);
    PendingBatch pending;
    for (const auto& request : requests) {
      db::TxnExec txn(request.request_id, scratch);
      std::string result;
      try {
        result = txn.run(registry(), request.ops.front(), *choices_);
      } catch (const std::exception& e) {
        reply(request.client, request.request_id, false, e.what());
        continue;  // scratch untouched: the rest of the batch is unaffected
      }
      phase(request.request_id, sim::Phase::Execution, exec_start, now());
      exec_span(request.ops.front(), exec_start, request.request_id);
      PbBatchEntry entry;
      entry.request_id = request.request_id;
      entry.client = request.client;
      entry.result = result;
      entry.writes = txn.writes();
      txn.commit_into(scratch);
      batch.entries.push_back(std::move(entry));
      pending.entries.push_back({request.request_id, request.client, result});
    }
    if (batch.entries.empty()) {  // every member failed at execution
      busy_ = false;
      pump();
      return;
    }
    metrics().histogram("core.group_commit.occupancy")
        .observe(static_cast<double>(batch.entries.size()));
    span_now("core/group_commit.start", batch.batch,
             obs::Attrs{{"occupancy", std::to_string(batch.entries.size())}});
    pending.ac_start = now();
    for (const auto m : vg_.view().members) {
      if (m != id()) pending.awaiting.insert(m);
    }
    pending_batches_.emplace(batch.batch, std::move(pending));
    vg_.vscast(batch);  // applies locally via VS self-delivery
  });
}

void PassiveReplica::on_update_batch(const PbUpdateBatch& batch) {
  const auto apply_start = now();
  cpu_execute(env().apply_cost, [this, batch, apply_start] {
    for (const auto& entry : batch.entries) {
      if (has_cached_reply(entry.request_id)) continue;  // already applied here
      const auto seq = storage_.next_commit_seq();
      for (const auto& [key, value] : entry.writes) {
        storage_.put(key, value, seq, entry.request_id);
      }
      if (!entry.writes.empty()) {
        record_commit(entry.request_id, entry.writes, {}, seq);
      }
      cache_reply(entry.request_id, true, entry.result);
      phase(entry.request_id, sim::Phase::AgreementCoord, apply_start, now());
    }
    span("db/exec.apply", apply_start, now(), batch.batch,
         obs::Attrs{{"batch_ops", std::to_string(batch.entries.size())}});
    if (!is_primary()) {
      PbUpdateAck ack;
      ack.request_id = batch.batch;  // one ack for the whole batch
      ack_link_.send_reliable(vg_.view().primary(), ack);
      return;
    }
    const auto it = pending_batches_.find(batch.batch);
    if (it == pending_batches_.end()) {
      // We became primary after the old one crashed mid-broadcast: the batch
      // stabilized through the view change; answer the clients.
      for (const auto& entry : batch.entries) {
        reply(entry.client, entry.request_id, true, entry.result);
      }
      return;
    }
    it->second.applied = true;
    maybe_reply_batch(batch.batch);
  });
}

void PassiveReplica::on_update(const PbUpdate& update) {
  if (has_cached_reply(update.request_id)) return;  // already applied here
  const auto apply_start = now();
  cpu_execute(env().apply_cost, [this, update, apply_start] {
    if (has_cached_reply(update.request_id)) return;
    const auto seq = storage_.next_commit_seq();
    for (const auto& [key, value] : update.writes) {
      storage_.put(key, value, seq, update.request_id);
    }
    if (!update.writes.empty()) {
      record_commit(update.request_id, update.writes, {}, seq);
    }
    cache_reply(update.request_id, true, update.result);
    phase(update.request_id, sim::Phase::AgreementCoord, apply_start, now());
    span("db/exec.apply", apply_start, now(), update.request_id,
         obs::Attrs{{"writes", std::to_string(update.writes.size())}});
    if (!is_primary()) {
      PbUpdateAck ack;
      ack.request_id = update.request_id;
      ack_link_.send_reliable(vg_.view().primary(), ack);
    } else if (!pending_.contains(update.request_id)) {
      // We became primary after the old one crashed mid-broadcast: the
      // update stabilized through the view change; answer the client.
      reply(update.client, update.request_id, true, update.result);
    } else {
      // Own apply finished; backups may already have acked.
      maybe_reply(update.request_id);
    }
    // The primary's serial pipeline: start the next queued request once
    // this one's update has been applied locally.
    if (is_primary() && !queue_.empty() && queue_.front().request_id == update.request_id) {
      queue_.pop_front();
      queued_ids_.erase(update.request_id);
      busy_ = false;
      pump();
    }
  });
}

void PassiveReplica::on_ack(sim::NodeId from, const PbUpdateAck& ack) {
  if (const auto bit = pending_batches_.find(ack.request_id); bit != pending_batches_.end()) {
    bit->second.awaiting.erase(from);
    maybe_reply_batch(ack.request_id);
    return;
  }
  const auto it = pending_.find(ack.request_id);
  if (it == pending_.end()) return;
  it->second.awaiting.erase(from);
  maybe_reply(ack.request_id);
}

void PassiveReplica::maybe_reply_batch(const std::string& batch_id) {
  const auto it = pending_batches_.find(batch_id);
  if (it == pending_batches_.end()) return;
  if (!it->second.awaiting.empty() || !it->second.applied) return;
  for (const auto& entry : it->second.entries) {
    phase(entry.request_id, sim::Phase::AgreementCoord, it->second.ac_start, now());
    reply(entry.client, entry.request_id, true, entry.result);
  }
  pending_batches_.erase(it);
  busy_ = false;
  pump();
}

void PassiveReplica::maybe_reply(const std::string& request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (!it->second.awaiting.empty()) return;
  if (!has_cached_reply(request_id)) return;  // own VS-delivery still pending
  phase(request_id, sim::Phase::AgreementCoord, it->second.ac_start, now());
  reply(it->second.client, request_id, true, it->second.result);
  pending_.erase(it);
}

void PassiveReplica::on_view(const gcs::View& view) {
  // Stop waiting for acks from members that left the view.
  for (auto& [request_id, pending] : pending_) {
    for (auto it = pending.awaiting.begin(); it != pending.awaiting.end();) {
      if (!view.contains(*it)) {
        it = pending.awaiting.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [batch_id, pending] : pending_batches_) {
    for (auto it = pending.awaiting.begin(); it != pending.awaiting.end();) {
      if (!view.contains(*it)) {
        it = pending.awaiting.erase(it);
      } else {
        ++it;
      }
    }
  }
  // maybe_reply mutates pending_; collect ready ids first.
  std::vector<std::string> ready;
  for (const auto& [request_id, pending] : pending_) {
    if (pending.awaiting.empty()) ready.push_back(request_id);
  }
  for (const auto& request_id : ready) maybe_reply(request_id);
  std::vector<std::string> ready_batches;
  for (const auto& [batch_id, pending] : pending_batches_) {
    if (pending.awaiting.empty()) ready_batches.push_back(batch_id);
  }
  for (const auto& batch_id : ready_batches) maybe_reply_batch(batch_id);
  // The monitor folds this into an open failover timeline (no-op when the
  // view change wasn't failure-driven).
  if (monitor() != nullptr && view.primary() == id()) monitor()->promoted(id(), now());
  util::log_debug("passive ", id(), ": view ", view.id, " primary ", view.primary());
  pump();
}

}  // namespace repli::core
