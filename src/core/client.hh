// Client process: submits transactions to the replicated service using the
// interaction style its technique dictates, handles redirects, retries on
// timeout (the paper's non-transparent failure model), records the
// functional-model RE/END phases and the linearizability history.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "core/history.hh"
#include "core/messages.hh"
#include "gcs/flood.hh"
#include "gcs/group.hh"
#include "obs/monitor.hh"

namespace repli::core {

enum class SubmitMode {
  AbcastGroup,  // inject into the replicas' ABCAST (active, semi-active)
  FloodGroup,   // reliably disseminate to all replicas (semi-passive)
  ToPrimary,    // talk to the believed primary, follow redirects (passive,
                // eager/lazy primary copy)
  ToHome,       // talk to an assigned local replica (update-everywhere DB)
};

struct ClientConfig {
  SubmitMode mode = SubmitMode::ToHome;
  gcs::Group replicas;
  sim::NodeId home = 0;            // ToHome target / LazyPrimary read target
  bool reads_at_home = false;      // lazy primary: read-only ops go to home
  std::uint32_t group_channel = 0; // flood channel for AbcastGroup/FloodGroup
  sim::Time retry_timeout = 500 * sim::kMsec;
  int max_attempts = 8;
  History* history = nullptr;
  obs::HealthMonitor* monitor = nullptr;  // abort attribution (may be null)
};

class Client : public gcs::ComponentHost {
 public:
  using DoneFn = std::function<void(const ClientReply&)>;

  Client(sim::NodeId id, sim::Simulator& sim, ClientConfig config);

  /// Submits a transaction; `done` fires exactly once, with ok=false after
  /// `max_attempts` unanswered tries.
  void submit(Transaction txn, DoneFn done);

  /// Convenience for the single-operation model.
  void submit_op(db::Operation op, DoneFn done) { submit(Transaction{std::move(op)}, done); }

  int timeouts() const { return timeouts_; }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  struct Outstanding {
    std::shared_ptr<ClientRequest> request;
    DoneFn done;
    TimerId timer = kNoTimer;
    sim::Time armed = 0;  // when the retry timer was set (retry-wait span)
    int attempts = 0;
    sim::NodeId target = sim::kNoNode;  // point-to-point modes
    std::size_t history_index = 0;
    bool recorded = false;
  };

  void dispatch(Outstanding& out);
  void arm_retry(const std::string& request_id);
  void finish(const std::string& request_id, const ClientReply& reply);
  sim::NodeId next_target(sim::NodeId current) const;

  ClientConfig config_;
  std::unique_ptr<gcs::Flooder> flood_;  // AbcastGroup / FloodGroup modes
  std::map<std::string, Outstanding> outstanding_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_abcast_lseq_ = 1;
  sim::NodeId primary_hint_ = sim::kNoNode;
  int timeouts_ = 0;
};

}  // namespace repli::core
