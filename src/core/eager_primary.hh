// Eager primary copy replication, §4.3 / Fig. 7 (single-op) and §5.2 /
// Fig. 12 (multi-operation transactions).
//
//   RE  client sends to the primary
//   EX  primary executes an operation
//   AC  primary ships the change (log records) to the secondaries over a
//       FIFO channel and waits for their acks — repeated per operation for
//       multi-op transactions — then runs 2PC to commit everywhere
//   END primary answers the client
//
// Hot-standby semantics: when the primary crashes, the next replica takes
// over; in-doubt transactions of the dead primary are resolved among the
// survivors (commit if anyone saw the commit decision, abort otherwise) —
// the paper's "if the primary fails, all active transactions are aborted".
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/replica.hh"
#include "db/tpc.hh"
#include "db/wal.hh"
#include "gcs/fd.hh"
#include "gcs/fifo.hh"

namespace repli::core {

struct EpChange : wire::MessageBase<EpChange> {
  static constexpr const char* kTypeName = "core.EpChange";
  std::string txn;
  std::uint32_t op_index = 0;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(op_index);
    ar(writes);
  }
};

struct EpChangeAck : wire::MessageBase<EpChangeAck> {
  static constexpr const char* kTypeName = "core.EpChangeAck";
  std::string txn;
  std::uint32_t op_index = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(op_index);
  }
};

struct EpCommitMeta : wire::MessageBase<EpCommitMeta> {
  static constexpr const char* kTypeName = "core.EpCommitMeta";
  std::string txn;
  std::string request_id;  // the client-visible id (reply-cache key)
  std::int32_t client = 0;
  std::string result;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(request_id);
    ar(client);
    ar(result);
  }
};

/// One transaction inside a group commit: everything a secondary needs to
/// redo it and answer a retried client (reply-cache entry).
struct EpGroupEntry {
  std::string txn;         // internal id
  std::string request_id;  // client-visible id (reply-cache key)
  std::int32_t client = 0;
  std::string result;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(request_id);
    ar(client);
    ar(result);
    ar(writes);
  }
};

/// Group commit (batched fast path): N transactions executed serially at the
/// primary, shipped and committed with ONE 2PC round. The blob of this
/// message is the 2PC prepare payload — the ship round is folded into
/// prepare, amortizing the agreement cost over the whole group.
struct EpGroupChange : wire::MessageBase<EpGroupChange> {
  static constexpr const char* kTypeName = "core.EpGroupChange";
  std::string group;  // group id (the 2PC transaction id)
  std::vector<EpGroupEntry> entries;
  template <class Ar>
  void fields(Ar& ar) {
    ar(group);
    ar(entries);
  }
};

struct EpTermQuery : wire::MessageBase<EpTermQuery> {
  static constexpr const char* kTypeName = "core.EpTermQuery";
  std::string txn;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
  }
};

struct EpTermInfo : wire::MessageBase<EpTermInfo> {
  static constexpr const char* kTypeName = "core.EpTermInfo";
  std::string txn;
  std::int32_t knowledge = 0;  // 0 unknown, 1 commit, 2 abort
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(knowledge);
  }
};

class EagerPrimaryReplica : public ReplicaBase {
 public:
  EagerPrimaryReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env);

  sim::NodeId current_primary() const { return fd_.lowest_trusted(); }
  bool is_primary() const { return current_primary() == id(); }
  /// The local redo log: every committed transaction's records, in commit
  /// order (what a real primary would ship / a secondary would redo from).
  const db::Wal& wal() const { return wal_; }

 protected:
  void on_unhandled(sim::NodeId from, wire::MessagePtr msg) override;

 private:
  struct Txn {
    std::string id;  // internal id, unique per acceptance (a retried request
                     // aborted by the termination protocol gets a fresh one)
    ClientRequest request;
    std::size_t next_op = 0;
    std::unique_ptr<db::TxnExec> exec;
    std::set<sim::NodeId> awaiting_acks;
    std::string last_result;
    sim::Time ac_start = 0;
  };

  // Group commit (env().batch_max_ops > 1): requests drained from the queue
  // are executed serially against a scratch copy of storage, then committed
  // together with one 2PC round (EpGroupChange as the prepare payload).
  struct GroupTxn {
    std::string id;  // 2PC transaction id for the whole group
    std::vector<ClientRequest> requests;
    std::size_t next = 0;
    db::Storage scratch;  // accumulates the group's writes pre-commit
    std::vector<EpGroupEntry> entries;
  };

  void on_request(const ClientRequest& request);
  void pump();
  /// Closes the core/queue.wait span for a request leaving the admit queue.
  void close_queue_wait(const std::string& request_id);
  void finish_txn(const std::string& txn_id);
  void run_next_op(const std::string& txn_id);
  void ship_changes(const std::string& txn_id);
  void on_change_ack(sim::NodeId from, const EpChangeAck& ack);
  void start_commit(const std::string& txn_id);
  void apply_commit(const std::string& txn_id, bool commit);
  void on_primary_suspected(sim::NodeId who);
  void start_group();
  void run_group_step(const std::string& group_id);
  void group_commit(const std::string& group_id);

  gcs::FailureDetector fd_;
  gcs::FifoChannel ship_;
  db::TwoPhaseCommit tpc_;
  db::Wal wal_;

  // The primary processes transactions serially: each sees its
  // predecessor's committed state (the primary's concurrency control).
  std::deque<ClientRequest> queue_;
  std::set<std::string> queued_ids_;
  std::map<std::string, sim::Time> queued_at_;  // enqueue time (core/queue.wait span)
  bool busy_ = false;
  std::uint64_t accept_seq_ = 0;  // makes internal txn ids unique
  std::map<std::string, std::string> request_of_txn_;  // txn id -> request id
  std::map<std::string, Txn> active_;  // primary-side (at most one entry)
  struct Staged {
    std::map<db::Key, db::Value> writes;
    std::string request_id;
    std::int32_t client = 0;
    std::string result;
    sim::Time ac_start = 0;
  };
  std::map<std::string, Staged> staged_;           // both sides: pre-commit writes
  std::map<std::string, bool> resolved_;           // txn -> final outcome seen here
  std::map<std::string, std::set<sim::NodeId>> term_waiting_;  // termination protocol
  std::map<std::string, GroupTxn> active_groups_;  // primary-side (at most one)
  std::map<std::string, std::vector<EpGroupEntry>> staged_group_;  // pre-commit groups
  std::set<std::string> group_inflight_;  // request ids inside an active group
};

}  // namespace repli::core
