// The technique taxonomy: every replication approach the paper describes,
// with the classification attributes of Figures 5, 6, 15 and 16. The table
// is the *claimed* classification; benches verify each claim against
// instrumented runs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace repli::core {

enum class TechniqueKind {
  Active,           // §3.2, Fig 2
  Passive,          // §3.3, Fig 3
  SemiActive,       // §3.4, Fig 4
  SemiPassive,      // §3.5
  EagerPrimary,     // §4.3, Fig 7 (and §5.2/Fig 12 with multi-op txns)
  EagerLocking,     // §4.4.1, Fig 8 (and §5.4.1/Fig 13 with multi-op txns)
  EagerAbcast,      // §4.4.2, Fig 9
  LazyPrimary,      // §4.5, Fig 10
  LazyEverywhere,   // §4.6, Fig 11
  Certification,    // §5.4.2, Fig 14
};

enum class Consistency { Strong, Weak };

struct TechniqueInfo {
  TechniqueKind kind;
  std::string_view name;
  std::string_view figure;        // the paper figure describing it
  bool database;                  // database community (vs distributed systems)
  bool update_everywhere;         // any copy accepts updates (vs primary copy)
  bool eager;                     // coordination before the client reply
  bool needs_determinism;         // replicas must execute deterministically
  bool failure_transparent;       // client never observes a server failure
  std::string_view paper_pattern; // phase order per Fig 16, e.g. "RE SC EX END"
  Consistency consistency;
  bool supports_multi_op;         // handles Section-5 multi-operation txns
};

/// All techniques, in the paper's presentation order (Fig 16 rows).
const std::vector<TechniqueInfo>& all_techniques();

const TechniqueInfo& technique_info(TechniqueKind kind);
std::string_view technique_name(TechniqueKind kind);

/// Reverse lookup by table name (e.g. "active", "lazy-primary-copy");
/// nullopt for unknown names. CLI / artifact surface.
std::optional<TechniqueKind> technique_from_name(std::string_view name);

/// The distinct protocol-phase abbreviations ("RE", "SC", "EX", "AC",
/// "END") in this technique's paper pattern, in pattern order. These are
/// the phase boundaries a fault plan can trigger on: crash-of-each-role ×
/// each of these boundaries covers every point the paper's five-phase
/// model distinguishes.
std::vector<std::string_view> technique_fault_phases(TechniqueKind kind);

}  // namespace repli::core
