#include "core/semi_active.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

SemiActiveReplica::SemiActiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env)
    : ReplicaBase(id, sim, "semi-active-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      abcast_(*this, group(), fd_, kAbcastChannel, sequencer_config_of(this->env())),
      vg_(*this, group(), fd_, kViewChannel) {
  add_component(fd_);
  add_component(abcast_);
  add_component(vg_);
  exec_rng_ = std::make_unique<util::Rng>(sim.rng().split());

  abcast_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto request = wire::message_cast<ClientRequest>(msg);
    if (request) on_request(*request);
  });
  vg_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto decision = wire::message_cast<SaDecision>(msg);
    if (!decision) return;
    decisions_.emplace(decision->request_id, decision->choices);
    pump();
  });
  vg_.on_view([this](const gcs::View& /*view*/) { pump(); });  // leader may have changed
}

void SemiActiveReplica::on_request(const ClientRequest& request) {
  if (!seen_.insert(request.request_id).second) {
    replay_cached_reply(request.client, request.request_id);
    return;
  }
  util::ensure(request.ops.size() == 1,
               "semi-active replication implements the single-operation model (§2.2)");
  phase_now(request.request_id, sim::Phase::ServerCoord);
  queue_.push_back(request);
  pump();
}

void SemiActiveReplica::pump() {
  if (busy_ || queue_.empty()) return;
  const ClientRequest& head = queue_.front();

  if (const auto it = decisions_.find(head.request_id); it != decisions_.end()) {
    // Follower path (and leader path after its own decision round-trips):
    // execute with the leader's choices replayed.
    busy_ = true;
    const auto exec_start = now();
    const auto choices = it->second;
    cpu_execute(env().exec_cost, [this, choices, exec_start] {
      db::ReplayChoices replay(choices);
      phase(queue_.front().request_id, sim::Phase::Execution, exec_start, now());
      exec_span(queue_.front().ops.front(), exec_start, queue_.front().request_id);
      execute_head(replay, false);
    });
    return;
  }
  if (is_leader()) {
    // Leader path: execute, recording every nondeterministic choice, and
    // VSCAST the choice log (the AC phase, one iteration per decision
    // point, Fig. 4). The VSCAST self-delivery stores the decision; the
    // actual commit happens in execute_head below.
    busy_ = true;
    const auto exec_start = now();
    cpu_execute(env().exec_cost, [this, exec_start] {
      if (!is_leader()) {  // demoted while queued: let the new leader decide
        busy_ = false;
        pump();
        return;
      }
      db::LocalRandomChoices local(*exec_rng_);
      db::RecordingChoices recording(local);
      phase(queue_.front().request_id, sim::Phase::Execution, exec_start, now());
      exec_span(queue_.front().ops.front(), exec_start, queue_.front().request_id);

      // Dry-run to collect choices (state unchanged), then decide.
      const ClientRequest head = queue_.front();
      db::TxnExec probe(head.request_id, storage_);
      probe.run(registry(), head.ops.front(), recording);

      SaDecision decision;
      decision.request_id = head.request_id;
      decision.choices = recording.log();
      phase_now(head.request_id, sim::Phase::AgreementCoord);
      decisions_.emplace(decision.request_id, decision.choices);
      vg_.vscast(decision);

      db::ReplayChoices replay(recording.log());
      execute_head(replay, true);
    });
  }
  // Follower without a decision: wait for the leader's VSCAST.
}

void SemiActiveReplica::execute_head(db::ChoiceSource& choices, bool /*record*/) {
  const ClientRequest head = queue_.front();
  queue_.pop_front();
  busy_ = false;

  const auto outcome =
      db::execute_and_commit(registry(), head.ops.front(), storage_, choices, head.request_id);
  if (!outcome.writes.empty()) {
    record_commit(head.request_id, outcome.writes, outcome.read_versions, outcome.commit_seq);
  }
  if (!is_leader()) phase_now(head.request_id, sim::Phase::AgreementCoord);
  cache_reply(head.request_id, true, outcome.result);
  reply(head.client, head.request_id, true, outcome.result);
  pump();
}

}  // namespace repli::core
