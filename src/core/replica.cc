#include "core/replica.hh"

#include "sim/simulator.hh"
#include "util/assert.hh"

namespace repli::core {

ReplicaBase::ReplicaBase(sim::NodeId id, sim::Simulator& sim, std::string name, ReplicaEnv env)
    : ComponentHost(id, sim, std::move(name)), env_(std::move(env)) {
  util::ensure(env_.registry != nullptr, "ReplicaBase: null procedure registry");
  util::ensure(env_.group.contains(id), "ReplicaBase: replica not in its own group");
}

void ReplicaBase::phase(const std::string& request, sim::Phase p, sim::Time start,
                        sim::Time end) {
  sim().trace().phase(request, id(), p, start, end);
}

void ReplicaBase::phase_now(const std::string& request, sim::Phase p) {
  phase(request, p, now(), now());
}

obs::Tracer& ReplicaBase::tracer() { return sim().tracer(); }

obs::Registry& ReplicaBase::metrics() { return sim().metrics(); }

obs::SpanId ReplicaBase::span(std::string name, sim::Time start, sim::Time end,
                              const std::string& request, obs::Attrs attrs) {
  return tracer().record(id(), std::move(name), start, end, request, std::move(attrs));
}

obs::SpanId ReplicaBase::span_now(std::string name, const std::string& request, obs::Attrs attrs) {
  return span(std::move(name), now(), now(), request, std::move(attrs));
}

void ReplicaBase::exec_span(const db::Operation& op, sim::Time start, const std::string& request) {
  span("db/exec.op", start, now(), request, obs::Attrs{{"proc", op.proc}});
  metrics().histogram("db.exec.op_us").observe(static_cast<double>(now() - start));
}

void ReplicaBase::reply(sim::NodeId client, const std::string& request_id, bool ok,
                        std::string result) {
  auto msg = std::make_shared<ClientReply>();
  msg->request_id = request_id;
  msg->ok = ok;
  msg->result = std::move(result);
  send(client, std::move(msg));
}

bool ReplicaBase::replay_cached_reply(sim::NodeId client, const std::string& request_id) {
  const auto it = reply_cache_.find(request_id);
  if (it == reply_cache_.end()) return false;
  reply(client, request_id, it->second.first, it->second.second);
  return true;
}

void ReplicaBase::cache_reply(const std::string& request_id, bool ok, const std::string& result) {
  reply_cache_.emplace(request_id, std::make_pair(ok, result));
}

std::optional<std::pair<bool, std::string>> ReplicaBase::cached_reply(
    const std::string& request_id) const {
  const auto it = reply_cache_.find(request_id);
  if (it == reply_cache_.end()) return std::nullopt;
  return it->second;
}

void ReplicaBase::note_request_trace(const std::string& request_id) {
  const auto trace = obs::current_context().trace_id;
  if (trace != 0) request_traces_[request_id] = trace;
}

std::uint64_t ReplicaBase::request_trace(const std::string& request_id) const {
  const auto it = request_traces_.find(request_id);
  return it == request_traces_.end() ? 0 : it->second;
}

void ReplicaBase::forget_request_trace(const std::string& request_id) {
  request_traces_.erase(request_id);
}

void ReplicaBase::record_commit(const std::string& txn,
                                const std::map<db::Key, db::Value>& writes,
                                const std::map<db::Key, std::uint64_t>& reads,
                                std::uint64_t commit_seq) {
  if (env_.monitor != nullptr) env_.monitor->committed(id(), now());
  if (env_.history == nullptr) return;
  CommitRecord rec;
  rec.replica = id();
  rec.txn = txn;
  rec.writes = writes;
  rec.read_versions = reads;
  rec.commit_seq = commit_seq;
  rec.at = now();
  env_.history->commit(std::move(rec));
}

}  // namespace repli::core
