#include "core/certification.hh"

#include "core/batching.hh"
#include "core/channels.hh"
#include "sim/simulator.hh"

namespace repli::core {

CertificationReplica::CertificationReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env,
                                           CertificationConfig config)
    : ReplicaBase(id, sim, "certification-" + std::to_string(id), std::move(env)),
      fd_(*this, group(), gcs::FdConfig{}),
      abcast_(*this, group(), fd_, kAbcastChannel, sequencer_config_of(this->env())),
      config_(config) {
  add_component(fd_);
  add_component(abcast_);
  abcast_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto cert = wire::message_cast<CtCertify>(msg);
    if (!cert) return;
    // Certification must observe every previously-delivered transaction's
    // writes, so the check+apply runs as one unit on the CPU queue, which
    // preserves delivery order.
    cpu_execute(this->env().apply_cost, [this, cert] { on_delivered(*cert); });
  });
}

void CertificationReplica::on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) {
  const auto request = wire::message_cast<ClientRequest>(msg);
  if (!request) return;
  on_request(*request);
}

void CertificationReplica::on_request(const ClientRequest& request) {
  if (replay_cached_reply(request.client, request.request_id)) return;
  if (driving_.contains(request.request_id)) return;  // retry of an in-flight txn
  if (config_.local_reads && request.read_only()) {
    // [KA98] local reads: no broadcast, no certification — answer from the
    // local copy's committed state.
    const auto exec_start = now();
    cpu_execute(env().exec_cost * static_cast<sim::Time>(request.ops.size()),
                [this, request, exec_start] {
      db::TxnExec txn(request.request_id, storage_);
      db::SeededChoices choices(wire::fnv1a(request.request_id));
      std::string result;
      try {
        for (const auto& op : request.ops) result = txn.run(registry(), op, choices);
      } catch (const std::exception& e) {
        reply(request.client, request.request_id, false, e.what());
        return;
      }
      phase(request.request_id, sim::Phase::Execution, exec_start, now());
      exec_span(request.ops.back(), exec_start, request.request_id);
      cache_reply(request.request_id, true, result);
      reply(request.client, request.request_id, true, result);
    });
    return;
  }
  driving_.emplace(request.request_id, request);
  execute_and_broadcast(request, 1);
}

void CertificationReplica::execute_and_broadcast(const ClientRequest& request, int attempt) {
  const auto exec_start = now();
  cpu_execute(env().exec_cost * static_cast<sim::Time>(request.ops.size()),
              [this, request, attempt, exec_start] {
    if (!driving_.contains(request.request_id)) return;  // resolved meanwhile
    // Optimistic execution on shadow copies (no coordination yet).
    db::TxnExec txn(request.request_id, storage_);
    db::SeededChoices choices(wire::fnv1a(request.request_id) + static_cast<std::uint64_t>(attempt));
    std::string result;
    try {
      for (const auto& op : request.ops) result = txn.run(registry(), op, choices);
    } catch (const std::exception& e) {
      reply(request.client, request.request_id, false, e.what());
      driving_.erase(request.request_id);
      return;
    }
    phase(request.request_id, sim::Phase::Execution, exec_start, now());
    exec_span(request.ops.back(), exec_start, request.request_id);

    CtCertify cert;
    cert.txn = request.request_id;
    cert.attempt = static_cast<std::uint32_t>(attempt);
    cert.delegate = id();
    cert.client = request.client;
    cert.result = result;
    cert.read_versions = txn.read_versions();
    cert.writes = txn.writes();
    // Delegate-side AC span: open now, closed when the certification verdict
    // arrives back through the total order.
    ac_spans_[request.request_id] =
        tracer().begin(id(), "core/ac.certify", now(), request.request_id);
    tracer().attr(ac_spans_[request.request_id], "attempt", std::to_string(attempt));
    abcast_.abcast(cert);
  });
}

void CertificationReplica::close_ac_span(const std::string& txn, const char* verdict) {
  const auto it = ac_spans_.find(txn);
  if (it == ac_spans_.end()) return;
  tracer().attr(it->second, "verdict", verdict);
  tracer().end(it->second, now());
  ac_spans_.erase(it);
}

void CertificationReplica::on_delivered(const CtCertify& cert) {
  if (decided_.contains(cert.txn)) return;  // earlier attempt already passed
  const auto cert_start = now();

  // The certification test: did anything we read change since we read it?
  bool pass = true;
  for (const auto& [key, version_read] : cert.read_versions) {
    const auto current = storage_.get(key);
    const std::uint64_t version_now = current.has_value() ? current->version : 0;
    if (version_now != version_read) {
      pass = false;
      break;
    }
  }

  if (pass) {
    decided_.insert(cert.txn);
    if (!cert.writes.empty()) {
      const auto seq = storage_.next_commit_seq();
      for (const auto& [key, value] : cert.writes) {
        storage_.put(key, value, seq, cert.txn);
      }
      record_commit(cert.txn, cert.writes, cert.read_versions, seq);
    }
    cache_reply(cert.txn, true, cert.result);
    phase(cert.txn, sim::Phase::AgreementCoord, cert_start, now());
    if (cert.delegate == id()) {
      close_ac_span(cert.txn, "commit");
      driving_.erase(cert.txn);
      reply(cert.client, cert.txn, true, cert.result);
    }
    return;
  }

  // Certification abort: deterministic at every replica; counted once, at
  // the delegate, so the metric means "transaction attempts aborted".
  ++aborts_;
  phase(cert.txn, sim::Phase::AgreementCoord, cert_start, now());
  if (cert.delegate != id()) return;
  close_ac_span(cert.txn, "abort");
  sim().metrics().incr("certification.aborts");
  if (monitor() != nullptr) {
    monitor()->abort_event(id(), now(), obs::AbortCause::Certification, cert.txn,
                           "writeset-conflict");
  }
  const auto it = driving_.find(cert.txn);
  if (it == driving_.end()) return;
  if (static_cast<int>(cert.attempt) >= config_.max_attempts) {
    reply(cert.client, cert.txn, false, "certification-abort");
    driving_.erase(it);
    return;
  }
  // Re-execute against fresher state and try again.
  execute_and_broadcast(it->second, static_cast<int>(cert.attempt) + 1);
}

}  // namespace repli::core
