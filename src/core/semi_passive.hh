// Semi-passive replication, §3.5 (Défago–Schiper–Sergent).
//
// Requests are disseminated to the whole group; processing order and update
// content are agreed through *consensus with deferred initial values*: the
// round coordinator executes the request only when its round actually runs
// and proposes (result, writeset). No group views are needed — the paper's
// key point — and false suspicions cost only an extra consensus round.
//
//   RE  client sends to all replicas
//   EX  the consensus coordinator executes
//   SC+AC merged: the consensus instance (paper: "one single coordination
//         protocol called Consensus with Deferred Initial Values")
//   END every replica answers with the decided result
#pragma once

#include <map>
#include <memory>
#include <set>

#include "core/replica.hh"
#include "gcs/consensus.hh"
#include "gcs/flood.hh"

namespace repli::core {

struct SpDecision : wire::MessageBase<SpDecision> {
  static constexpr const char* kTypeName = "core.SpDecision";
  std::string request_id;
  std::int32_t client = 0;
  std::string result;
  std::map<db::Key, db::Value> writes;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(client);
    ar(result);
    ar(writes);
  }
};

class SemiPassiveReplica : public ReplicaBase {
 public:
  SemiPassiveReplica(sim::NodeId id, sim::Simulator& sim, ReplicaEnv env);

 private:
  void on_request(const ClientRequest& request);
  std::optional<std::string> provide(std::uint64_t instance);
  void on_decide(std::uint64_t instance, const std::string& value);
  void apply_ready();
  void maybe_participate();

  gcs::FailureDetector fd_;
  gcs::Flooder requests_;
  gcs::Consensus consensus_;
  std::unique_ptr<util::Rng> exec_rng_;

  std::map<std::string, ClientRequest> pending_;  // undecided requests
  std::set<std::string> done_;
  std::uint64_t next_instance_ = 1;
  std::uint64_t participated_upto_ = 0;
  std::map<std::uint64_t, std::string> decisions_;
};

}  // namespace repli::core
