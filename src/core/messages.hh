// Client-facing wire messages shared by every replication technique.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "db/exec.hh"
#include "wire/message.hh"

namespace repli::core {

/// A transaction: one or more operations executed atomically. The paper's
/// single-operation model (Sections 3-4) is the size-1 case; Section 5's
/// protocols process longer vectors operation by operation.
using Transaction = std::vector<db::Operation>;

struct ClientRequest : wire::MessageBase<ClientRequest> {
  static constexpr const char* kTypeName = "core.ClientRequest";
  std::string request_id;
  std::int32_t client = 0;
  std::vector<db::Operation> ops;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(client);
    ar(ops);
  }
  bool read_only() const {
    for (const auto& op : ops) {
      if (!op.read_only()) return false;
    }
    return true;
  }
};

struct ClientReply : wire::MessageBase<ClientReply> {
  static constexpr const char* kTypeName = "core.ClientReply";
  std::string request_id;
  bool ok = false;
  std::string result;  // result of the last operation, or error text
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(ok);
    ar(result);
  }
};

/// "I am not the node you should be talking to" — used by primary-based
/// techniques so a client with a stale primary hint can re-route.
struct Redirect : wire::MessageBase<Redirect> {
  static constexpr const char* kTypeName = "core.Redirect";
  std::string request_id;
  std::int32_t try_instead = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(request_id);
    ar(try_instead);
  }
};

}  // namespace repli::core
