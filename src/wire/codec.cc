#include "wire/codec.hh"

#include <bit>
#include <cstring>
#include <limits>

namespace repli::wire {

void Writer::put_u64(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::put_i64(std::int64_t v) {
  // Zig-zag: small magnitudes (positive or negative) encode small.
  const auto u = (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
  put_u64(u);
}

void Writer::put_double(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  // Fixed 8-byte little-endian: doubles rarely benefit from varints.
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void Writer::put_bytes(std::span<const std::uint8_t> bytes) {
  put_u64(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void Writer::put_string(std::string_view s) {
  put_u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

std::uint8_t Reader::next_byte() {
  if (pos_ >= data_.size()) throw WireError("Reader: truncated input");
  return data_[pos_++];
}

std::uint64_t Reader::get_u64() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift > 63) throw WireError("Reader: varint overflow");
    const std::uint8_t b = next_byte();
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t Reader::get_i64() {
  const std::uint64_t u = get_u64();
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

std::uint32_t Reader::get_u32() {
  const std::uint64_t v = get_u64();
  if (v > std::numeric_limits<std::uint32_t>::max()) throw WireError("Reader: u32 overflow");
  return static_cast<std::uint32_t>(v);
}

std::int32_t Reader::get_i32() {
  const std::int64_t v = get_i64();
  if (v > std::numeric_limits<std::int32_t>::max() || v < std::numeric_limits<std::int32_t>::min())
    throw WireError("Reader: i32 overflow");
  return static_cast<std::int32_t>(v);
}

bool Reader::get_bool() {
  const std::uint64_t v = get_u64();
  if (v > 1) throw WireError("Reader: bad bool");
  return v == 1;
}

double Reader::get_double() {
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(next_byte()) << (8 * i);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string Reader::get_string() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) throw WireError("Reader: truncated string");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

void Reader::get_string_into(std::string& out) {
  const std::uint64_t n = get_u64();
  if (n > remaining()) throw WireError("Reader: truncated string");
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
}

std::string_view Reader::get_string_view() {
  const std::uint64_t n = get_u64();
  if (n > remaining()) throw WireError("Reader: truncated string");
  const std::string_view v(reinterpret_cast<const char*>(data_.data() + pos_),
                           static_cast<std::size_t>(n));
  pos_ += n;
  return v;
}

}  // namespace repli::wire
