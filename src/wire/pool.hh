// Per-type message pooling: recycled objects and recycled shared_ptr
// control blocks.
//
// The PR-6 profile put ~78% of wire.decode allocations in the
// make_shared<Derived>() every decode performed. A pooled decode instead:
//
//  - pulls the Derived object from a per-type freelist (its string/vector
//    fields keep their heap buffers, so re-decoding reuses capacity), and
//  - allocates the shared_ptr control block through PoolAlloc, a sized
//    freelist, so the control block is recycled too.
//
// Steady state is therefore zero heap allocations per decode. The deleter
// recycles instead of destroying; objects live for the process (they are
// reachable from the freelist, so this is a cache, not a leak). The
// simulator is single-threaded by design — the freelists are not locked.
#pragma once

#include <memory>
#include <vector>

namespace repli::wire {

namespace detail {

/// Minimal allocator whose storage comes from a per-(type, size) freelist.
/// shared_ptr rebinds it to its internal control-block type, so each
/// control-block shape gets its own list. Never frees: blocks shuttle
/// between live shared_ptrs and the freelist.
template <typename T>
struct PoolAlloc {
  using value_type = T;

  PoolAlloc() = default;
  template <typename U>
  PoolAlloc(const PoolAlloc<U>&) {}  // NOLINT(google-explicit-constructor)

  T* allocate(std::size_t n) {
    if (n != 1) return static_cast<T*>(::operator new(n * sizeof(T)));
    auto& fl = freelist();
    if (fl.empty()) return static_cast<T*>(::operator new(sizeof(T)));
    T* p = static_cast<T*>(fl.back());
    fl.pop_back();
    return p;
  }

  void deallocate(T* p, std::size_t n) {
    if (n != 1) {
      ::operator delete(p);
      return;
    }
    freelist().push_back(p);
  }

  template <typename U>
  bool operator==(const PoolAlloc<U>&) const {
    return true;
  }

 private:
  static std::vector<void*>& freelist() {
    // Leaked singleton: immune to static-destruction-order races with
    // late-destroyed shared_ptrs.
    static auto* fl = new std::vector<void*>();
    return *fl;
  }
};

}  // namespace detail

template <typename Derived>
class MessagePool {
 public:
  /// A Derived whose deleter recycles it here; steady-state allocation-free.
  static std::shared_ptr<Derived> acquire() {
    auto& fl = freelist();
    Derived* obj;
    if (fl.empty()) {
      obj = new Derived();
    } else {
      obj = fl.back();
      fl.pop_back();
    }
    return std::shared_ptr<Derived>(obj, Recycler{}, detail::PoolAlloc<Derived>{});
  }

  static std::size_t idle_count() { return freelist().size(); }

 private:
  struct Recycler {
    void operator()(Derived* p) const { freelist().push_back(p); }
  };

  static std::vector<Derived*>& freelist() {
    static auto* fl = new std::vector<Derived*>();
    return *fl;
  }
};

}  // namespace repli::wire
