// Field-visitor (de)serialization.
//
// A message type defines a single member
//     template <class Ar> void fields(Ar& ar) { ar(a); ar(b); ... }
// and gets encode and decode from that one definition (byte accounting comes from
// the encoded frames the network actually carries).
// Supported field types: bool, (u)int32/64, double, std::string, enums,
// std::vector<T>, std::optional<T>, std::pair<A,B>, std::map<K,V>, and any
// nested struct that itself defines fields().
#pragma once

#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "wire/codec.hh"

namespace repli::wire {

class Encoder;
class Decoder;

template <typename T, typename Ar>
concept HasFields = requires(T t, Ar ar) { t.fields(ar); };

class Encoder {
 public:
  explicit Encoder(Writer& w) : w_(w) {}

  void operator()(bool v) { w_.put_bool(v); }
  void operator()(std::uint32_t v) { w_.put_u32(v); }
  void operator()(std::int32_t v) { w_.put_i32(v); }
  void operator()(std::uint64_t v) { w_.put_u64(v); }
  void operator()(std::int64_t v) { w_.put_i64(v); }
  void operator()(double v) { w_.put_double(v); }
  void operator()(const std::string& v) { w_.put_string(v); }

  template <typename E>
    requires std::is_enum_v<E>
  void operator()(E v) {
    w_.put_i64(static_cast<std::int64_t>(v));
  }

  template <typename T>
  void operator()(const std::vector<T>& v) {
    w_.put_u64(v.size());
    for (const auto& e : v) (*this)(e);
  }

  template <typename T>
  void operator()(const std::optional<T>& v) {
    w_.put_bool(v.has_value());
    if (v.has_value()) (*this)(*v);
  }

  template <typename A, typename B>
  void operator()(const std::pair<A, B>& v) {
    (*this)(v.first);
    (*this)(v.second);
  }

  template <typename K, typename V>
  void operator()(const std::map<K, V>& v) {
    w_.put_u64(v.size());
    for (const auto& [k, val] : v) {
      (*this)(k);
      (*this)(val);
    }
  }

  template <typename T>
    requires HasFields<T, Encoder>
  void operator()(const T& v) {
    // fields() is written non-const so one definition serves encode and
    // decode; encoding only reads, so this cast is safe by construction.
    const_cast<T&>(v).fields(*this);
  }

 private:
  Writer& w_;
};

class Decoder {
 public:
  explicit Decoder(Reader& r) : r_(r) {}

  void operator()(bool& v) { v = r_.get_bool(); }
  void operator()(std::uint32_t& v) { v = r_.get_u32(); }
  void operator()(std::int32_t& v) { v = r_.get_i32(); }
  void operator()(std::uint64_t& v) { v = r_.get_u64(); }
  void operator()(std::int64_t& v) { v = r_.get_i64(); }
  void operator()(double& v) { v = r_.get_double(); }
  // Assigns in place: a recycled message's string fields keep their buffers.
  void operator()(std::string& v) { r_.get_string_into(v); }

  template <typename E>
    requires std::is_enum_v<E>
  void operator()(E& v) {
    v = static_cast<E>(r_.get_i64());
  }

  template <typename T>
  void operator()(std::vector<T>& v) {
    const std::uint64_t n = r_.get_u64();
    // Each element costs at least one byte on the wire; reject sizes that
    // cannot possibly be satisfied so malformed input cannot OOM us.
    if (n > r_.remaining()) throw WireError("Decoder: vector length exceeds input");
    v.clear();
    v.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      T e{};
      (*this)(e);
      v.push_back(std::move(e));
    }
  }

  template <typename T>
  void operator()(std::optional<T>& v) {
    if (r_.get_bool()) {
      T e{};
      (*this)(e);
      v = std::move(e);
    } else {
      v.reset();
    }
  }

  template <typename A, typename B>
  void operator()(std::pair<A, B>& v) {
    (*this)(v.first);
    (*this)(v.second);
  }

  template <typename K, typename V>
  void operator()(std::map<K, V>& v) {
    const std::uint64_t n = r_.get_u64();
    if (n > r_.remaining()) throw WireError("Decoder: map length exceeds input");
    v.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      K k{};
      (*this)(k);
      V val{};
      (*this)(val);
      v.emplace(std::move(k), std::move(val));
    }
  }

  template <typename T>
    requires HasFields<T, Decoder>
  void operator()(T& v) {
    v.fields(*this);
  }

 private:
  Reader& r_;
};

}  // namespace repli::wire
