// Polymorphic message base plus a decode registry.
//
// The simulated network carries real bytes: every send encodes the message
// and every delivery decodes a fresh object, so sender/receiver aliasing
// bugs cannot hide and byte accounting in benches is honest.
//
// Defining a message:
//     struct Heartbeat : wire::MessageBase<Heartbeat> {
//       static constexpr const char* kTypeName = "gcs.Heartbeat";
//       std::int64_t epoch = 0;
//       template <class Ar> void fields(Ar& ar) { ar(epoch); }
//     };
// Registration with the decode registry is automatic on first encode.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "wire/flat.hh"
#include "wire/pool.hh"
#include "wire/visit.hh"

namespace repli::wire {

using TypeId = std::uint32_t;

constexpr TypeId fnv1a(std::string_view s) {
  std::uint32_t h = 2166136261u;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

class Message {
 public:
  virtual ~Message() = default;
  virtual TypeId type_id() const = 0;
  virtual std::string_view type_name() const = 0;
  virtual void encode_into(Writer& w) const = 0;
};

using MessagePtr = std::shared_ptr<const Message>;

class Registry {
 public:
  using DecodeFn = std::function<MessagePtr(Reader&)>;

  static Registry& instance();

  /// Registers a decoder; throws on TypeId collision between distinct names.
  void add(TypeId id, std::string_view name, DecodeFn fn);
  bool contains(TypeId id) const { return decoders_.contains(id); }
  MessagePtr decode(TypeId id, Reader& r) const;

 private:
  struct Entry {
    std::string name;
    DecodeFn fn;
  };
  std::unordered_map<TypeId, Entry> decoders_;
};

/// A message type may define `void decode_flat(Reader&)` — a hand-rolled
/// field-by-field read of the SAME byte layout fields() encodes. When
/// present it becomes the default decode path (the visitor stays as oracle
/// behind the flat_decode_enabled() switch).
template <typename T>
concept HasFlatDecode = requires(T t, Reader& r) { t.decode_flat(r); };

template <typename Derived>
class MessageBase : public Message {
 public:
  static constexpr TypeId kTypeId = fnv1a(Derived::kTypeName);

  TypeId type_id() const final { return kTypeId; }
  std::string_view type_name() const final { return Derived::kTypeName; }

  void encode_into(Writer& w) const final {
    ensure_registered();
    Encoder enc(w);
    const_cast<Derived&>(static_cast<const Derived&>(*this)).fields(enc);
  }

  /// Registers the decoder for Derived. Called automatically on first
  /// encode; tests that decode hand-crafted bytes call it directly.
  /// Decoded objects come from MessagePool (zero steady-state allocation);
  /// every field is assigned by decode, so recycling cannot leak state.
  static void ensure_registered() {
    static const bool done = [] {
      Registry::instance().add(kTypeId, Derived::kTypeName, [](Reader& r) -> MessagePtr {
        std::shared_ptr<Derived> m = MessagePool<Derived>::acquire();
        if constexpr (HasFlatDecode<Derived>) {
          if (flat_decode_enabled()) {
            m->decode_flat(r);
            return m;
          }
        }
        Decoder dec(r);
        m->fields(dec);
        return m;
      });
      return true;
    }();
    (void)done;
  }
};

/// Frames `msg` as [type id][payload] bytes.
std::vector<std::uint8_t> encode_message(const Message& msg);

/// As encode_message, but appends into `w` — pass a cleared scratch Writer
/// to reuse its capacity across encodes (the steady-state send path).
void encode_message_into(Writer& w, const Message& msg);

/// Inverse of encode_message. Throws WireError on unknown type, malformed
/// payload, or trailing bytes.
MessagePtr decode_message(std::span<const std::uint8_t> bytes);

/// Causal metadata carried on the wire alongside every framed message: the
/// trace id and parent span of the sending context plus the sender's
/// Lamport clock.
struct WireContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::int64_t lamport = 0;
};

/// Sentinel type id marking a context-framed message; reserved (Registry
/// rejects user messages hashing to it).
constexpr TypeId kContextFrameId = fnv1a("wire.TraceContext");

/// Frames `msg` with its trace context:
/// [kContextFrameId][trace id][parent span][lamport][type id][payload].
std::vector<std::uint8_t> encode_framed(const Message& msg, const WireContext& ctx);

/// As encode_framed, but appends into `w` (scratch-Writer form).
void encode_framed_into(Writer& w, const Message& msg, const WireContext& ctx);

struct FramedMessage {
  WireContext ctx;  // zeroed when the bytes used the plain framing
  MessagePtr msg;
};

/// Inverse of encode_framed; also accepts plain encode_message bytes (the
/// context then decodes as zeroes).
FramedMessage decode_framed(std::span<const std::uint8_t> bytes);

/// Encodes a message into a string blob suitable for embedding as a field
/// of another message (used by broadcast layers that carry opaque payloads).
std::string to_blob(const Message& msg);

/// As to_blob, but assigns into `out`, reusing its capacity — the envelope
/// fields of pooled messages keep their buffers across recycles.
void to_blob_into(const Message& msg, std::string& out);

/// Inverse of to_blob. Decodes straight from the blob's bytes (no copy).
MessagePtr from_blob(std::string_view blob);

/// Convenience downcast; returns nullptr when the runtime type differs.
template <typename T>
std::shared_ptr<const T> message_cast(const MessagePtr& msg) {
  return std::dynamic_pointer_cast<const T>(msg);
}

}  // namespace repli::wire
