// Flat in-place views over the hottest wire payloads.
//
// The visitor codec (wire/visit.hh) is the general path: one fields()
// definition serves encode and decode for every message type. For the three
// types that dominate wire.decode self-time in the PR-6 profile —
// gcs.LinkData and gcs.LinkAck (the ARQ wraps every application payload)
// and gcs.Heartbeat (the failure detector broadcasts each interval) — this
// header adds flat views and the types add hand-rolled decode_flat()
// methods (registered automatically by MessageBase when present).
//
// The bytes are unchanged: flat code parses the exact varint layout the
// visitor writes, so traces stay bit-identical whichever path runs. A view
// is zero-copy (string fields are string_views into the input) and suits
// inspection without materializing a Message; decode_flat() materializes
// into a pooled object with no visitor template dispatch.
//
// Contract (see DESIGN.md "Flat views"): the visitor path remains the
// oracle — set_flat_decode_enabled(false) forces every decode through it,
// and the flat tests assert field-identical results both ways.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "wire/codec.hh"

namespace repli::wire {

/// Process-wide kill switch for decode_flat registration (default on).
/// Flipping it affects decodes from then on — the oracle cross-check in
/// tests runs the same bytes through both paths.
bool flat_decode_enabled();
void set_flat_decode_enabled(bool on);

/// View over a gcs.LinkData payload (bytes after the type id). Bounds are
/// checked on parse; `payload` aliases the input bytes.
struct LinkDataView {
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;
  std::string_view payload;

  static LinkDataView parse(std::span<const std::uint8_t> bytes) {
    Reader r(bytes);
    LinkDataView v;
    v.channel = r.get_u32();
    v.seq = r.get_u64();
    v.payload = r.get_string_view();
    if (!r.at_end()) throw WireError("LinkDataView: trailing bytes");
    return v;
  }
};

/// View over a gcs.LinkAck payload.
struct LinkAckView {
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;

  static LinkAckView parse(std::span<const std::uint8_t> bytes) {
    Reader r(bytes);
    LinkAckView v;
    v.channel = r.get_u32();
    v.seq = r.get_u64();
    if (!r.at_end()) throw WireError("LinkAckView: trailing bytes");
    return v;
  }
};

/// View over a gcs.Heartbeat payload.
struct HeartbeatView {
  std::uint64_t count = 0;

  static HeartbeatView parse(std::span<const std::uint8_t> bytes) {
    Reader r(bytes);
    HeartbeatView v;
    v.count = r.get_u64();
    if (!r.at_end()) throw WireError("HeartbeatView: trailing bytes");
    return v;
  }
};

}  // namespace repli::wire
