#include "wire/message.hh"

#include "obs/profile.hh"
#include "util/assert.hh"

namespace repli::wire {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(TypeId id, std::string_view name, DecodeFn fn) {
  util::ensure(id != kContextFrameId || name == "wire.TraceContext",
               "Registry: type name '" + std::string(name) +
                   "' collides with the reserved context frame id");
  const auto it = decoders_.find(id);
  if (it != decoders_.end()) {
    util::ensure(it->second.name == name,
                 "Registry: TypeId hash collision between '" + it->second.name + "' and '" +
                     std::string(name) + "'");
    return;  // benign re-registration (e.g. across translation units)
  }
  decoders_.emplace(id, Entry{std::string(name), std::move(fn)});
}

MessagePtr Registry::decode(TypeId id, Reader& r) const {
  const auto it = decoders_.find(id);
  if (it == decoders_.end()) throw WireError("Registry: unknown message type id");
  return it->second.fn(r);
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  obs::ProfScope prof(obs::CostCenter::WireEncode);
  Writer w;
  w.put_u32(msg.type_id());
  msg.encode_into(w);
  return w.take();
}

std::string to_blob(const Message& msg) {
  const auto bytes = encode_message(msg);
  return std::string(bytes.begin(), bytes.end());
}

MessagePtr from_blob(const std::string& blob) {
  std::vector<std::uint8_t> bytes(blob.begin(), blob.end());
  return decode_message(bytes);
}

MessagePtr decode_message(std::span<const std::uint8_t> bytes) {
  obs::ProfScope prof(obs::CostCenter::WireDecode);
  Reader r(bytes);
  const TypeId id = r.get_u32();
  MessagePtr msg = Registry::instance().decode(id, r);
  if (!r.at_end()) throw WireError("decode_message: trailing bytes");
  return msg;
}

std::vector<std::uint8_t> encode_framed(const Message& msg, const WireContext& ctx) {
  obs::ProfScope prof(obs::CostCenter::WireEncode);
  Writer w;
  w.put_u32(kContextFrameId);
  w.put_u64(ctx.trace_id);
  w.put_u64(ctx.parent_span);
  w.put_i64(ctx.lamport);
  w.put_u32(msg.type_id());
  msg.encode_into(w);
  return w.take();
}

FramedMessage decode_framed(std::span<const std::uint8_t> bytes) {
  obs::ProfScope prof(obs::CostCenter::WireDecode);
  Reader r(bytes);
  FramedMessage out;
  TypeId id = r.get_u32();
  if (id == kContextFrameId) {
    out.ctx.trace_id = r.get_u64();
    out.ctx.parent_span = r.get_u64();
    out.ctx.lamport = r.get_i64();
    id = r.get_u32();
  }
  out.msg = Registry::instance().decode(id, r);
  if (!r.at_end()) throw WireError("decode_framed: trailing bytes");
  return out;
}

}  // namespace repli::wire
