#include "wire/message.hh"

#include "obs/profile.hh"
#include "util/assert.hh"

namespace repli::wire {

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(TypeId id, std::string_view name, DecodeFn fn) {
  util::ensure(id != kContextFrameId || name == "wire.TraceContext",
               "Registry: type name '" + std::string(name) +
                   "' collides with the reserved context frame id");
  const auto it = decoders_.find(id);
  if (it != decoders_.end()) {
    util::ensure(it->second.name == name,
                 "Registry: TypeId hash collision between '" + it->second.name + "' and '" +
                     std::string(name) + "'");
    return;  // benign re-registration (e.g. across translation units)
  }
  decoders_.emplace(id, Entry{std::string(name), std::move(fn)});
}

MessagePtr Registry::decode(TypeId id, Reader& r) const {
  const auto it = decoders_.find(id);
  if (it == decoders_.end()) throw WireError("Registry: unknown message type id");
  return it->second.fn(r);
}

namespace {

bool g_flat_decode_enabled = true;

// Scratch writer for the blob encoders: capacity persists across calls, so
// envelope building stops allocating once warmed up. Single-threaded by
// design (the simulator is); thread_local keeps tools and tests honest.
Writer& blob_scratch() {
  thread_local Writer w;
  return w;
}

}  // namespace

bool flat_decode_enabled() { return g_flat_decode_enabled; }
void set_flat_decode_enabled(bool on) { g_flat_decode_enabled = on; }

void encode_message_into(Writer& w, const Message& msg) {
  obs::ProfScope prof(obs::CostCenter::WireEncode);
  w.put_u32(msg.type_id());
  msg.encode_into(w);
}

std::vector<std::uint8_t> encode_message(const Message& msg) {
  obs::ProfScope prof(obs::CostCenter::WireEncode);
  Writer w;
  w.put_u32(msg.type_id());
  msg.encode_into(w);
  return w.take();
}

std::string to_blob(const Message& msg) {
  std::string out;
  to_blob_into(msg, out);
  return out;
}

void to_blob_into(const Message& msg, std::string& out) {
  Writer& w = blob_scratch();
  w.clear();
  encode_message_into(w, msg);
  out.assign(reinterpret_cast<const char*>(w.span().data()), w.size());
}

MessagePtr from_blob(std::string_view blob) {
  return decode_message(
      {reinterpret_cast<const std::uint8_t*>(blob.data()), blob.size()});
}

MessagePtr decode_message(std::span<const std::uint8_t> bytes) {
  obs::ProfScope prof(obs::CostCenter::WireDecode);
  Reader r(bytes);
  const TypeId id = r.get_u32();
  MessagePtr msg = Registry::instance().decode(id, r);
  if (!r.at_end()) throw WireError("decode_message: trailing bytes");
  return msg;
}

std::vector<std::uint8_t> encode_framed(const Message& msg, const WireContext& ctx) {
  Writer w;
  encode_framed_into(w, msg, ctx);
  return w.take();
}

void encode_framed_into(Writer& w, const Message& msg, const WireContext& ctx) {
  obs::ProfScope prof(obs::CostCenter::WireEncode);
  w.put_u32(kContextFrameId);
  w.put_u64(ctx.trace_id);
  w.put_u64(ctx.parent_span);
  w.put_i64(ctx.lamport);
  w.put_u32(msg.type_id());
  msg.encode_into(w);
}

FramedMessage decode_framed(std::span<const std::uint8_t> bytes) {
  obs::ProfScope prof(obs::CostCenter::WireDecode);
  Reader r(bytes);
  FramedMessage out;
  TypeId id = r.get_u32();
  if (id == kContextFrameId) {
    out.ctx.trace_id = r.get_u64();
    out.ctx.parent_span = r.get_u64();
    out.ctx.lamport = r.get_i64();
    id = r.get_u32();
  }
  out.msg = Registry::instance().decode(id, r);
  if (!r.at_end()) throw WireError("decode_framed: trailing bytes");
  return out;
}

}  // namespace repli::wire
