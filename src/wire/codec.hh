// Byte-level encoding primitives.
//
// Integers are encoded as LEB128-style varints (zig-zag for signed values);
// strings and containers carry a varint length prefix. `Reader` is strictly
// bounds-checked and throws `WireError` on malformed input, so decoding
// untrusted bytes can never read out of bounds.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace repli::wire {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

class Writer {
 public:
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);  // zig-zag
  void put_u32(std::uint32_t v) { put_u64(v); }
  void put_i32(std::int32_t v) { put_i64(v); }
  void put_bool(bool v) { put_u64(v ? 1 : 0); }
  void put_double(double v);
  void put_bytes(std::span<const std::uint8_t> bytes);
  void put_string(std::string_view s);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::span<const std::uint8_t> span() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

  /// Rewinds to empty, keeping the buffer's capacity — a Writer reused as
  /// scratch (clear + encode per send) stops allocating once warmed up.
  void clear() { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : data_(bytes) {}

  std::uint64_t get_u64();
  std::int64_t get_i64();
  std::uint32_t get_u32();
  std::int32_t get_i32();
  bool get_bool();
  double get_double();
  std::string get_string();
  /// Like get_string but assigns into `out`, reusing its capacity — the
  /// decode path for pooled messages whose string fields keep their buffers.
  void get_string_into(std::string& out);
  /// Zero-copy: a view into the input bytes, valid only while they live.
  std::string_view get_string_view();

  bool at_end() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::uint8_t next_byte();
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace repli::wire
