// Ambient trace context and per-node Lamport clocks.
//
// The simulator is single-threaded, so "the context of the currently
// executing event" is a plain global: Simulator captures it when an event
// is scheduled and restores it (via ContextScope) around the event's
// execution, which covers timers, cpu_execute continuations, and network
// deliveries alike. Network::send stamps the ambient context onto the wire
// frame; delivery opens a scope carrying the merged Lamport clock, so one
// client request yields one connected trace across every replica it
// touches.
#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hh"

namespace repli::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;   // 0: no active trace
  SpanId parent_span = kNoSpan; // causal parent span (sender side)
  std::int64_t lamport = 0;     // logical clock of the originating node

  bool valid() const { return trace_id != 0; }
};

/// Context of the event currently executing (zero outside any scope).
const TraceContext& current_context();

/// RAII: installs `ctx` as the current context, restores the previous one
/// on destruction. Scopes nest.
class ContextScope {
 public:
  explicit ContextScope(TraceContext ctx);
  ~ContextScope();

  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// One Lamport clock per node. tick() before a send, merge() on delivery.
class LamportClocks {
 public:
  /// Advances `node`'s clock by one and returns the new value.
  std::int64_t tick(NodeId node);
  /// Merges a clock value seen on an incoming message: clock becomes
  /// max(local, seen) + 1. Returns the new value.
  std::int64_t merge(NodeId node, std::int64_t seen);
  std::int64_t value(NodeId node) const;

 private:
  std::int64_t& slot(NodeId node);
  std::vector<std::int64_t> clocks_;
};

}  // namespace repli::obs
