#include "obs/trace.hh"

#include <algorithm>
#include <map>

#include "obs/context.hh"
#include "util/assert.hh"

namespace repli::obs {

Span& Tracer::span_at(SpanId id) {
  util::ensure(id != kNoSpan && id <= spans_.size(), "Tracer: bad span id");
  resolved_ = false;
  return spans_[static_cast<std::size_t>(id - 1)];
}

std::vector<SpanId>& Tracer::open_stack(NodeId node) {
  const auto idx = static_cast<std::size_t>(node + 1);  // node -1 fits at 0
  if (open_.size() <= idx) open_.resize(idx + 1);
  return open_[idx];
}

void Tracer::unregister_open(NodeId node, SpanId id) {
  auto& stack = open_stack(node);
  // Usually the innermost span closes first, so scan from the back.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == id) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  util::fail("Tracer: closing a span that is not open");
}

SpanId Tracer::begin(NodeId node, std::string name, Time start, std::string request) {
  Span span;
  span.id = static_cast<SpanId>(spans_.size() + 1);
  span.node = node;
  span.trace = current_context().trace_id;
  span.name = std::move(name);
  span.request = std::move(request);
  span.start = start;
  span.end = start;
  span.open = true;
  latest_ = std::max(latest_, start);
  resolved_ = false;
  spans_.push_back(std::move(span));
  open_stack(node).push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::end(SpanId id, Time end_time) {
  Span& span = span_at(id);
  util::ensure(span.open, "Tracer::end: span already closed");
  util::ensure(end_time >= span.start, "Tracer::end: end before start");
  span.end = end_time;
  span.open = false;
  latest_ = std::max(latest_, end_time);
  unregister_open(span.node, id);
}

SpanId Tracer::record(NodeId node, std::string name, Time start, Time end, std::string request,
                      Attrs attrs) {
  util::ensure(end >= start, "Tracer::record: end before start");
  const SpanId id = begin(node, std::move(name), start, std::move(request));
  Span& span = span_at(id);
  span.end = end;
  span.open = false;
  span.attrs = std::move(attrs);
  latest_ = std::max(latest_, end);
  open_stack(node).pop_back();  // begin() just pushed this id
  return id;
}

SpanId Tracer::instant(NodeId node, std::string name, Time at, std::string request, Attrs attrs) {
  const SpanId id = record(node, std::move(name), at, at, std::move(request), std::move(attrs));
  span_at(id).kind = SpanKind::Instant;
  return id;
}

void Tracer::attr(SpanId id, std::string key, std::string value) {
  span_at(id).attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::set_parent(SpanId id, SpanId parent) { span_at(id).explicit_parent = parent; }

std::uint64_t Tracer::flow(Flow f) {
  f.id = static_cast<std::uint64_t>(flows_.size() + 1);
  flows_.push_back(std::move(f));
  return flows_.back().id;
}

void Tracer::flow_recv_lamport(std::uint64_t id, std::int64_t lamport) {
  util::ensure(id != 0 && id <= flows_.size(), "Tracer::flow_recv_lamport: bad flow id");
  flows_[static_cast<std::size_t>(id - 1)].lamport_recv = lamport;
}

SpanId Tracer::innermost_open(NodeId node) const {
  const auto idx = static_cast<std::size_t>(node + 1);
  if (idx >= open_.size() || open_[idx].empty()) return kNoSpan;
  return open_[idx].back();
}

void Tracer::close_open(Time t) {
  for (auto& span : spans_) {
    if (!span.open) continue;
    span.end = std::max(span.start, t);
    span.open = false;
    latest_ = std::max(latest_, span.end);
  }
  for (auto& stack : open_) stack.clear();
  resolved_ = false;
}

const Span* Tracer::find(SpanId id) const {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(id - 1)];
}

void Tracer::resolve() const {
  if (resolved_) return;
  parents_.assign(spans_.size(), kNoSpan);

  // Per node: sort by (start asc, effective end desc, id asc) and sweep with
  // an enclosing-span stack. With that order, when a span is visited every
  // span still on the stack starts no later than it; popping everything that
  // ends before it leaves its smallest encloser on top. Identical intervals
  // sort by id, so the earlier-recorded span becomes the parent.
  std::map<NodeId, std::vector<const Span*>> by_node;
  for (const auto& span : spans_) by_node[span.node].push_back(&span);

  for (auto& [node, list] : by_node) {
    std::sort(list.begin(), list.end(), [this](const Span* a, const Span* b) {
      if (a->start != b->start) return a->start < b->start;
      const Time ea = a->effective_end(latest_);
      const Time eb = b->effective_end(latest_);
      if (ea != eb) return ea > eb;
      return a->id < b->id;
    });
    std::vector<const Span*> stack;
    for (const Span* span : list) {
      const Time end = span->effective_end(latest_);
      while (!stack.empty() && stack.back()->effective_end(latest_) < end) stack.pop_back();
      // Instants never contain intervals; skip instant enclosers for
      // non-instant spans of the same zero-width interval.
      while (!stack.empty() && stack.back()->kind == SpanKind::Instant) stack.pop_back();
      if (!stack.empty()) {
        parents_[static_cast<std::size_t>(span->id - 1)] = stack.back()->id;
      }
      stack.push_back(span);
    }
  }

  // Explicit parents override containment.
  for (const auto& span : spans_) {
    if (span.explicit_parent != kNoSpan) {
      parents_[static_cast<std::size_t>(span.id - 1)] = span.explicit_parent;
    }
  }
  resolved_ = true;
}

SpanId Tracer::parent_of(SpanId id) const {
  util::ensure(id != kNoSpan && id <= spans_.size(), "Tracer::parent_of: bad span id");
  resolve();
  return parents_[static_cast<std::size_t>(id - 1)];
}

std::vector<SpanId> Tracer::children_of(SpanId id) const {
  resolve();
  std::vector<SpanId> out;
  for (const auto& span : spans_) {
    if (parents_[static_cast<std::size_t>(span.id - 1)] == id) out.push_back(span.id);
  }
  std::sort(out.begin(), out.end(), [this](SpanId a, SpanId b) {
    const Span* sa = find(a);
    const Span* sb = find(b);
    if (sa->start != sb->start) return sa->start < sb->start;
    return a < b;
  });
  return out;
}

bool Tracer::has_ancestor_named(SpanId id, std::string_view name_prefix) const {
  resolve();
  SpanId cur = parent_of(id);
  // Parent chains are acyclic by construction (containment is a partial
  // order; explicit parents could form a cycle, so bound the walk).
  for (std::size_t hops = 0; cur != kNoSpan && hops <= spans_.size(); ++hops) {
    const Span* span = find(cur);
    if (span->name.compare(0, name_prefix.size(), name_prefix) == 0) return true;
    cur = parents_[static_cast<std::size_t>(cur - 1)];
  }
  return false;
}

std::vector<const Span*> Tracer::named(std::string_view name_prefix) const {
  std::vector<const Span*> out;
  for (const auto& span : spans_) {
    if (span.name.compare(0, name_prefix.size(), name_prefix) == 0) out.push_back(&span);
  }
  return out;
}

void Tracer::clear() {
  spans_.clear();
  flows_.clear();
  parents_.clear();
  open_.clear();
  latest_ = 0;
  resolved_ = false;
}

}  // namespace repli::obs
