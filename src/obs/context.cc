#include "obs/context.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::obs {

namespace {
TraceContext g_current;  // single-threaded simulator: a global is the scope
}  // namespace

const TraceContext& current_context() { return g_current; }

ContextScope::ContextScope(TraceContext ctx) : saved_(g_current) { g_current = ctx; }

ContextScope::~ContextScope() { g_current = saved_; }

std::int64_t& LamportClocks::slot(NodeId node) {
  util::ensure(node >= 0, "LamportClocks: negative node id");
  if (static_cast<std::size_t>(node) >= clocks_.size()) {
    clocks_.resize(static_cast<std::size_t>(node) + 1, 0);
  }
  return clocks_[static_cast<std::size_t>(node)];
}

std::int64_t LamportClocks::tick(NodeId node) { return ++slot(node); }

std::int64_t LamportClocks::merge(NodeId node, std::int64_t seen) {
  std::int64_t& clock = slot(node);
  clock = std::max(clock, seen) + 1;
  return clock;
}

std::int64_t LamportClocks::value(NodeId node) const {
  if (node < 0 || static_cast<std::size_t>(node) >= clocks_.size()) return 0;
  return clocks_[static_cast<std::size_t>(node)];
}

}  // namespace repli::obs
