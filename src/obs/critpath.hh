// Per-transaction causal critical paths.
//
// Reconstructs, for every transaction that has both a core/RE and a
// core/END span, the chain of waits that produced its end-to-end latency:
// starting from the response on the client, walk backwards along the
// cross-node flow arrows of the transaction's trace (always following the
// latest-arriving message, which is by definition the one the next step
// waited on), and classify every local interval in between by the innermost
// span covering it. The result is a contiguous tiling of [invoke, response]
// into taxonomy segments — a latency waterfall — plus per-segment
// percentile summaries and a p50-vs-p99 differential naming the segments
// that explain the tail.
//
// The walk is trace-strict: it only follows flows stamped with the
// transaction's own trace id. Time it cannot reach (causality lost because
// an instrumentation gap let a continuation run under another trace) is
// reported as Unattributed, never silently folded into a real segment —
// coverage = attributed / total is the honesty metric the integration tests
// hold at >= 95%.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace repli::obs {

/// Fixed waterfall taxonomy. Every critical-path microsecond lands in
/// exactly one bucket.
enum class SegmentKind {
  ClientQueue,   // client-side time before a (re)send: think/queue/dispatch
  SubmitWait,    // abcast submission waiting for its ordering to come back
  Ordering,      // sequencer/consensus ordering work and server coordination
  NetTransit,    // a message on the wire (flow send -> delivery)
  Retransmit,    // client retry backoff, link-layer retransmission waits
  LockWait,      // blocked on a lock
  StorageExec,   // executing operations / WAL flush against storage
  CommitFanin,   // waiting for commit acks / 2PC votes / shipped-change acks
  ReplicaApply,  // applying a propagated writeset at a replica
  Other,         // covered by a span outside the taxonomy
  Unattributed,  // no span covers it / causality lost
};

constexpr std::size_t kSegmentKindCount = 11;

std::string_view segment_kind_name(SegmentKind kind);

/// Maps a span name onto the taxonomy (Other when nothing matches).
SegmentKind classify_span_name(std::string_view name);

/// One step of a transaction's critical path.
struct PathSegment {
  SegmentKind kind = SegmentKind::Unattributed;
  NodeId node = -1;     // for NetTransit: the sending node
  Time start = 0;
  Time dur = 0;
  std::string detail;   // span name or wire type behind the classification
};

/// A transaction's reconstructed critical path. Segments are contiguous and
/// in time order; they tile [start, end] exactly.
struct TxnPath {
  std::string request;
  std::uint64_t trace = 0;
  NodeId client = -1;
  Time start = 0;  // core/RE (client invoke)
  Time end = 0;    // core/END (client response)
  bool ok = true;  // false when the client reply failed (timeout/abort)
  int hops = 0;    // cross-node flows followed
  std::vector<PathSegment> segments;

  Time total() const { return end - start; }
  Time attributed() const;  // total minus Unattributed time
};

/// Reconstructs critical paths for every complete transaction in the
/// tracer, in client-invoke order (ties: request id).
std::vector<TxnPath> critical_paths(const Tracer& tracer);

/// Per-kind distribution over per-transaction totals (a transaction that
/// never touched the kind contributes 0, so the percentiles answer "how
/// much of a typical/tail transaction is spent here").
struct SegmentStat {
  SegmentKind kind = SegmentKind::Other;
  std::size_t txns_touched = 0;  // transactions with > 0 time in this kind
  Time p50_us = 0;
  Time p95_us = 0;
  Time p99_us = 0;
  double mean_us = 0.0;
  Time max_us = 0;
};

/// The p50-vs-p99 differential: how much more of the p99 transaction's
/// latency than the p50 transaction's goes to this segment kind.
struct TailContribution {
  SegmentKind kind = SegmentKind::Other;
  Time p50_us = 0;
  Time p99_us = 0;
  Time delta_us = 0;  // p99 - p50
};

struct CritSummary {
  std::size_t txns = 0;            // committed transactions summarized
  Time total_us = 0;               // sum of end-to-end latencies
  Time attributed_us = 0;          // sum of non-Unattributed segment time
  double coverage = 0.0;           // attributed / total (1.0 when total 0)
  std::vector<SegmentStat> segments;        // one entry per taxonomy kind
  std::vector<TailContribution> tail;       // sorted by delta desc, kind asc
};

/// Summarizes committed (ok) transactions only.
CritSummary summarize(const std::vector<TxnPath>& paths);

/// Writes the CRIT artifact (schema v1) for a traced run.
void write_crit_json(std::ostream& os, const std::string& name,
                     const std::vector<TxnPath>& paths);
bool write_crit_json_file(const Tracer& tracer, const std::string& name,
                          const std::string& path);

}  // namespace repli::obs
