#include "obs/export_stats.hh"

#include <fstream>

#include "obs/json.hh"
#include "util/log.hh"

namespace repli::obs {

namespace {

void write_labels(JsonWriter& w, const Labels& labels) {
  if (labels.empty()) return;
  w.key("labels").begin_object();
  for (const auto& [key, value] : labels) w.field(key, value);
  w.end_object();
}

}  // namespace

void write_stats_ndjson(const Registry& registry, std::ostream& os) {
  for (const auto& [key, counter] : registry.counters()) {
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", key.name).field("type", "counter");
    write_labels(w, key.labels);
    w.field("value", counter.value());
    w.end_object();
    os << '\n';
  }
  for (const auto& [key, gauge] : registry.gauges()) {
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", key.name).field("type", "gauge");
    write_labels(w, key.labels);
    w.field("value", gauge.value());
    w.end_object();
    os << '\n';
  }
  for (const auto& [key, histogram] : registry.histograms()) {
    const util::Histogram& h = histogram.data();
    JsonWriter w(os);
    w.begin_object();
    w.field("metric", key.name).field("type", "histogram");
    write_labels(w, key.labels);
    w.field("count", static_cast<std::int64_t>(h.count()));
    w.field("mean", h.mean()).field("min", h.min()).field("max", h.max());
    w.field("p50", h.p50()).field("p95", h.p95()).field("p99", h.p99());
    w.end_object();
    os << '\n';
  }
}

bool write_stats_ndjson_file(const Registry& registry, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    util::log_error("stats export: cannot open ", path);
    return false;
  }
  write_stats_ndjson(registry, os);
  return os.good();
}

}  // namespace repli::obs
