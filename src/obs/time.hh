// Process-wide simulated-time source.
//
// The library has no wall clock: time belongs to whichever Simulator is
// running. Components that sit outside the simulator (the Logger's line
// prefix, exporters stamping files) read the current time through this
// registry instead of reaching into a Simulator they cannot see. Providers
// nest: a Simulator registers itself on construction and removes exactly its
// own entry on destruction, so benches that build clusters inside clusters
// (or destroy them out of order) always see the innermost live clock.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace repli::obs {

class TimeSource {
 public:
  using Fn = std::function<std::int64_t()>;
  using Token = std::uint64_t;
  static constexpr Token kNoToken = 0;

  static TimeSource& instance();

  /// Registers `fn` as the innermost clock; returns a token for remove().
  Token push(Fn fn);
  /// Removes the provider registered under `token`, wherever it sits in the
  /// stack (out-of-order destruction is legal).
  void remove(Token token);

  bool active() const { return !providers_.empty(); }
  /// Current time of the innermost provider; 0 when none is registered.
  std::int64_t now() const;

 private:
  TimeSource() = default;
  std::vector<std::pair<Token, Fn>> providers_;
  Token next_token_ = 1;
};

/// Installs the Logger prefix hook (once): every log line is prefixed with
/// "[t=<now>us] " read from the TimeSource. Idempotent.
void install_log_time_prefix();

}  // namespace repli::obs
