#include "obs/metrics.hh"

#include <algorithm>

namespace repli::obs {

Registry::Key Registry::make_key(std::string_view name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return Key{std::string(name), std::move(labels)};
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return counters_[make_key(name, std::move(labels))];
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return gauges_[make_key(name, std::move(labels))];
}

HistogramMetric& Registry::histogram(std::string_view name, Labels labels) {
  return histograms_[make_key(name, std::move(labels))];
}

std::int64_t Registry::counter_value(std::string_view name) const {
  std::int64_t sum = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) sum += counter.value();
  }
  return sum;
}

const HistogramMetric* Registry::find_histogram(std::string_view name, const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const auto it = histograms_.find(Key{std::string(name), std::move(sorted)});
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

HistogramSummary summarize(const util::Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  if (s.count == 0) return s;  // defined=false, all zeros
  s.defined = true;
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.p50();
  s.p95 = h.p95();
  s.p99 = h.p99();
  s.stddev = h.stddev();
  return s;
}

}  // namespace repli::obs
