#include "obs/metrics.hh"

#include <algorithm>

namespace repli::obs {

template <typename T>
T& Registry::lookup(std::map<Key, T, KeyLess>& store, std::string_view name, Labels&& labels) {
  std::sort(labels.begin(), labels.end());
  const KeyLess::View view{name, labels};
  const auto it = store.find(view);  // transparent: no Key built on the hit path
  if (it != store.end()) return it->second;
  return store.emplace(Key{std::string(name), std::move(labels)}, T{}).first->second;
}

Counter& Registry::counter(std::string_view name, Labels labels) {
  return lookup(counters_, name, std::move(labels));
}

Gauge& Registry::gauge(std::string_view name, Labels labels) {
  return lookup(gauges_, name, std::move(labels));
}

HistogramMetric& Registry::histogram(std::string_view name, Labels labels) {
  return lookup(histograms_, name, std::move(labels));
}

std::int64_t Registry::counter_value(std::string_view name) const {
  std::int64_t sum = 0;
  for (const auto& [key, counter] : counters_) {
    if (key.name == name) sum += counter.value();
  }
  return sum;
}

const HistogramMetric* Registry::find_histogram(std::string_view name, const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  const auto it = histograms_.find(KeyLess::View{name, sorted});
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

HistogramSummary summarize(const util::Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  if (s.count == 0) return s;  // defined=false, all zeros
  s.defined = true;
  s.mean = h.mean();
  s.min = h.min();
  s.max = h.max();
  s.p50 = h.p50();
  s.p95 = h.p95();
  s.p99 = h.p99();
  s.stddev = h.stddev();
  return s;
}

}  // namespace repli::obs
