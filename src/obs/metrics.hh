// Labeled metrics registry: counters, gauges, and histograms keyed by
// (name, label set). Replaces the flat string-keyed util::Metrics — a
// metric can now be sliced ("db.wal.appends" per node) and every histogram
// carries p50/p95/p99. One Registry belongs to one Simulator run; the
// NDJSON exporter (obs/export_stats.hh) turns it into machine-readable
// output.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/metrics.hh"

namespace repli::obs {

/// Label set, e.g. {{"node", "2"}}. Stored sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void incr(std::int64_t by = 1) { value_ += by; }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class HistogramMetric {
 public:
  void observe(double v) { data_.add(v); }
  const util::Histogram& data() const { return data_; }

 private:
  util::Histogram data_;
};

class Registry {
 public:
  struct Key {
    std::string name;
    Labels labels;  // sorted by label key
    bool operator<(const Key& other) const {
      if (name != other.name) return name < other.name;
      return labels < other.labels;
    }
  };

  /// Heterogeneous comparator: metric lookups compare (string_view, Labels&)
  /// against stored Keys directly, so the hit path — every incr() on the
  /// simulator hot loop — performs zero allocations. A Key is materialized
  /// only when a metric is seen for the first time.
  struct KeyLess {
    using is_transparent = void;
    struct View {
      std::string_view name;
      const Labels& labels;
    };
    bool operator()(const Key& a, const Key& b) const { return a < b; }
    bool operator()(const Key& a, const View& b) const {
      if (a.name != b.name) return a.name < b.name;
      return a.labels < b.labels;
    }
    bool operator()(const View& a, const Key& b) const {
      if (a.name != b.name) return a.name < b.name;
      return a.labels < b.labels;
    }
  };

  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  HistogramMetric& histogram(std::string_view name, Labels labels = {});

  /// Flat conveniences for unlabeled counters (the common case).
  void incr(std::string_view name, std::int64_t by = 1) { counter(name).incr(by); }
  /// Sum of `name` across every label set (0 when absent).
  std::int64_t counter_value(std::string_view name) const;
  /// Exact-match lookup; nullptr when absent.
  const HistogramMetric* find_histogram(std::string_view name, const Labels& labels = {}) const;

  const std::map<Key, Counter, KeyLess>& counters() const { return counters_; }
  const std::map<Key, Gauge, KeyLess>& gauges() const { return gauges_; }
  const std::map<Key, HistogramMetric, KeyLess>& histograms() const { return histograms_; }

  void clear();

 private:
  template <typename T>
  static T& lookup(std::map<Key, T, KeyLess>& store, std::string_view name, Labels&& labels);
  std::map<Key, Counter, KeyLess> counters_;
  std::map<Key, Gauge, KeyLess> gauges_;
  std::map<Key, HistogramMetric, KeyLess> histograms_;
};

/// Convenience: a one-pair label set.
inline Labels label(std::string key, std::string value) {
  return Labels{{std::move(key), std::move(value)}};
}
inline Labels node_label(std::int32_t node) { return label("node", std::to_string(node)); }

/// A histogram snapshot with *defined* values for every field, including
/// the degenerate cases util::Histogram answers with NaN: 0 samples gives
/// defined=false and all-zero statistics, 1 sample gives that sample for
/// every percentile and stddev 0. Exporters and the regression gate consume
/// this instead of raw percentiles so they never propagate NaN into
/// arithmetic or thresholds.
struct HistogramSummary {
  bool defined = false;  // false: no samples; every numeric field is 0
  std::size_t count = 0;
  double mean = 0, min = 0, max = 0;
  double p50 = 0, p95 = 0, p99 = 0;
  double stddev = 0;
};

HistogramSummary summarize(const util::Histogram& h);

}  // namespace repli::obs
