#include "obs/profile.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <string>

namespace repli::obs {
namespace {

// Thread-local allocation counters, bumped by the replacement operator new
// below. Plain (non-atomic) because they are thread-local; the replacement
// operators themselves must be async-signal-unsafe-free and reentrant-safe,
// which malloc/free plus two increments are.
thread_local std::uint64_t t_alloc_count = 0;
thread_local std::uint64_t t_alloc_bytes = 0;

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t thread_alloc_count() { return t_alloc_count; }
std::uint64_t thread_alloc_bytes() { return t_alloc_bytes; }

std::string_view cost_center_name(CostCenter c) {
  switch (c) {
    case CostCenter::WireEncode: return "wire.encode";
    case CostCenter::WireDecode: return "wire.decode";
    case CostCenter::SimDispatch: return "sim.dispatch";
    case CostCenter::NetDelivery: return "net.delivery";
    case CostCenter::GcsAbcast: return "gcs.abcast";
    case CostCenter::GcsLink: return "gcs.link";
    case CostCenter::LockMgr: return "db.lock";
    case CostCenter::Technique: return "core.technique";
    case CostCenter::Checker: return "check";
  }
  return "?";
}

Profiler& Profiler::global() {
  static Profiler p;
  return p;
}

void Profiler::clear() {
  buckets_ = {};
  // Open frames keep their start snapshots; their eventual deltas simply
  // land in the fresh buckets.
}

ProfScope::ProfScope(CostCenter center) {
  Profiler& p = Profiler::global();
  active_ = p.enabled_;
  if (!active_) return;
  p.stack_.push_back(Profiler::Frame{center, steady_ns(), t_alloc_count, t_alloc_bytes, 0, 0, 0});
}

ProfScope::~ProfScope() {
  if (!active_) return;
  Profiler& p = Profiler::global();
  if (p.stack_.empty()) return;  // clear()+disable() race; nothing to pop
  Profiler::Frame f = p.stack_.back();
  p.stack_.pop_back();

  const std::uint64_t now = steady_ns();
  const std::uint64_t total_ns = now >= f.start_ns ? now - f.start_ns : 0;
  const std::uint64_t total_allocs = t_alloc_count - f.start_allocs;
  const std::uint64_t total_bytes = t_alloc_bytes - f.start_alloc_bytes;
  const std::uint64_t self_ns = total_ns >= f.child_ns ? total_ns - f.child_ns : 0;
  const std::uint64_t self_allocs =
      total_allocs >= f.child_allocs ? total_allocs - f.child_allocs : 0;
  const std::uint64_t self_bytes =
      total_bytes >= f.child_alloc_bytes ? total_bytes - f.child_alloc_bytes : 0;

  CostBucket& b = p.buckets_[static_cast<std::size_t>(f.center)];
  b.calls += 1;
  b.self_ns += self_ns;
  b.total_ns += total_ns;
  b.self_allocs += self_allocs;
  b.self_alloc_bytes += self_bytes;

  if (!p.stack_.empty()) {
    Profiler::Frame& parent = p.stack_.back();
    parent.child_ns += total_ns;
    parent.child_allocs += total_allocs;
    parent.child_alloc_bytes += total_bytes;
  }
}

void write_folded(const Tracer& tracer, std::ostream& os) {
  const auto& spans = tracer.spans();
  const Time latest = tracer.latest();

  // Self-time per span: duration minus the summed durations of direct
  // children (clamped at zero — identical-interval ties give the parent
  // zero self-time, which is the honest answer).
  std::vector<std::int64_t> self(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    self[i] = s.kind == SpanKind::Instant ? 0 : s.effective_end(latest) - s.start;
  }
  for (const Span& s : spans) {
    if (s.kind == SpanKind::Instant) continue;
    SpanId parent = tracer.parent_of(s.id);
    if (parent == kNoSpan) continue;
    self[parent - 1] -= s.effective_end(latest) - s.start;
  }

  // Folded stack per span: "node<N>;<root name>;...;<span name>".
  std::map<std::string, std::int64_t> folded;
  std::vector<std::string_view> frames;
  for (const Span& s : spans) {
    if (s.kind == SpanKind::Instant) continue;
    frames.clear();
    for (SpanId id = s.id; id != kNoSpan; id = tracer.parent_of(id)) {
      frames.push_back(tracer.find(id)->name);
    }
    std::string stack = "node" + std::to_string(s.node);
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      stack += ';';
      stack += *it;
    }
    folded[stack] += std::max<std::int64_t>(self[s.id - 1], 0);
  }

  for (const auto& [stack, us] : folded) {
    if (us <= 0) continue;
    os << stack << ' ' << us << '\n';
  }
}

bool write_folded_file(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_folded(tracer, os);
  return os.good();
}

}  // namespace repli::obs

// -- Counting global allocator ----------------------------------------------
//
// Replacing the global operator new/delete pair lets the profiler attribute
// heap churn without touching call sites. The replacements forward to
// malloc/free (so sanitizers still interpose at the malloc layer) and bump
// the thread-local counters unconditionally — two increments, no branches,
// cheap enough to leave on always. Sized/aligned/nothrow variants must all
// be replaced together or the default ones would bypass counting.

namespace {

void* counted_alloc(std::size_t size) {
  repli::obs::t_alloc_count += 1;
  repli::obs::t_alloc_bytes += size;
  return std::malloc(size ? size : 1);
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  repli::obs::t_alloc_count += 1;
  repli::obs::t_alloc_bytes += size;
  // aligned_alloc requires size to be a multiple of alignment.
  std::size_t rounded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, rounded ? rounded : align);
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept { return counted_alloc(size); }

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_alloc_aligned(size, static_cast<std::size_t>(align));
  if (!p) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept { std::free(p); }
