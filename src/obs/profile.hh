// Scoped per-op cost accounting.
//
// The span tracer answers *what happened* in simulated time; the profiler
// answers *what the host pays* for it: wall-clock self-time (steady-clock
// ns) and heap activity (allocation count/bytes, via the counting global
// operator new installed in profile.cc) attributed to a small fixed
// taxonomy of cost centers — the layers the ROADMAP's mechanical-sympathy
// item wants to make visible and then crush.
//
// Attribution is by scope nesting: a ProfScope pushes a frame; on exit the
// frame's *self* cost (total minus the totals of nested scopes) is added to
// its cost center, and its total is propagated to the parent frame. So
// "gcs.abcast" self-time excludes the wire encodes it triggers, which land
// in "wire.encode" — exactly the breakdown a flamegraph gives, collapsed to
// the taxonomy.
//
// Profiling is strictly read-only with respect to the simulation: it never
// touches simulated time, the RNG, the tracer, or the metrics registry, so
// runs are bit-identical with profiling on or off (a tested guarantee).
// When the global profiler is disabled (the default) a ProfScope is one
// branch; heap counting is two thread-local increments per allocation.
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

#include "obs/trace.hh"

namespace repli::obs {

/// The cost-center taxonomy. Keep in sync with cost_center_name() and
/// docs/METRICS.md; the PROF_*.json schema spells these names out.
enum class CostCenter : std::uint8_t {
  WireEncode,   // wire.encode: message/frame encoding to bytes
  WireDecode,   // wire.decode: bytes back to message objects
  SimDispatch,  // sim.dispatch: event-loop pop/run + un-attributed handler code
  NetDelivery,  // net.delivery: simulated network send/deliver bookkeeping
  GcsAbcast,    // gcs.abcast: total-order broadcast protocol logic
  GcsLink,      // gcs.link: reliable-link ARQ (seq/ack/retransmit/dedup)
  LockMgr,      // db.lock: lock table, queues, deadlock detection
  Technique,    // core.technique: replication-technique logic + execution
  Checker,      // check: 1SR / linearizability / sequential checkers
};

inline constexpr std::size_t kCostCenterCount = 9;

std::string_view cost_center_name(CostCenter c);

/// Accumulated cost of one center. "self" excludes nested scopes; "total"
/// includes them (useful to sanity-check the hierarchy, not for summing).
struct CostBucket {
  std::uint64_t calls = 0;
  std::uint64_t self_ns = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_allocs = 0;
  std::uint64_t self_alloc_bytes = 0;
};

/// Allocation counters of the current thread (monotonic since thread
/// start). Counted by the replacement operator new in profile.cc; exposed
/// for microbenchmarks that want raw deltas without a Profiler.
std::uint64_t thread_alloc_count();
std::uint64_t thread_alloc_bytes();

class Profiler {
 public:
  /// The process-global profiler (the simulator is single-threaded; one
  /// accumulator per process matches one PROF artifact per bench run).
  static Profiler& global();

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  const std::array<CostBucket, kCostCenterCount>& buckets() const { return buckets_; }
  const CostBucket& bucket(CostCenter c) const {
    return buckets_[static_cast<std::size_t>(c)];
  }

  /// Drops all accumulated cost (open scopes keep working).
  void clear();

 private:
  friend class ProfScope;
  struct Frame {
    CostCenter center{};
    std::uint64_t start_ns = 0;
    std::uint64_t start_allocs = 0;
    std::uint64_t start_alloc_bytes = 0;
    std::uint64_t child_ns = 0;
    std::uint64_t child_allocs = 0;
    std::uint64_t child_alloc_bytes = 0;
  };

  // Reserved up front so pushing a frame never allocates — the profiler
  // must not see its own heap activity in the buckets.
  Profiler() { stack_.reserve(64); }

  bool enabled_ = false;
  std::array<CostBucket, kCostCenterCount> buckets_{};
  std::vector<Frame> stack_;
};

/// RAII cost-center scope. No-op (one branch) when the global profiler is
/// disabled, so instrumentation can stay in hot paths unconditionally.
class ProfScope {
 public:
  explicit ProfScope(CostCenter center);
  ~ProfScope();

  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  bool active_;
};

/// Writes the span tree as folded flamegraph stacks ("node0;core/EX;db/...
/// <self-us>" per line, lexicographically sorted, self-time in simulated
/// microseconds, instants skipped). Feed to flamegraph.pl / speedscope.
void write_folded(const Tracer& tracer, std::ostream& os);
bool write_folded_file(const Tracer& tracer, const std::string& path);

}  // namespace repli::obs
