// Hierarchical span tracer.
//
// A span is a named interval on one node — optionally tied to a request id
// and carrying key/value attributes. Span names are layered by prefix
// ("core/", "gcs/", "db/", "net/"): the functional-model phases of the
// paper (core/RE .. core/END) are spans like any other, so a Perfetto
// timeline shows the GCS rounds and storage work *inside* the phase that
// pays for them.
//
// Parentage is resolved by time containment per node: a span's parent is
// the smallest same-node span that encloses it. This matches how trace
// viewers nest events and — crucially for a discrete-event simulator, where
// phases are often recorded retrospectively — it works no matter the order
// spans were recorded in. Ties (identical intervals, common when no
// simulated time passes inside one event handler) resolve to the
// earlier-recorded span as the parent, so record the semantic parent first.
// An explicitly set parent overrides containment.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace repli::obs {

using Time = std::int64_t;    // microseconds, same clock as sim::Time
using NodeId = std::int32_t;  // same identity space as sim::NodeId

using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

using Attrs = std::vector<std::pair<std::string, std::string>>;

enum class SpanKind { Interval, Instant };

struct Span {
  SpanId id = kNoSpan;
  SpanId explicit_parent = kNoSpan;  // kNoSpan: resolve by containment
  NodeId node = -1;
  std::uint64_t trace = 0;  // causal trace id (0: outside any trace)
  std::string name;     // layered, e.g. "core/EX", "gcs/consensus.round"
  std::string request;  // request/transaction id; may be empty
  Time start = 0;
  Time end = 0;  // meaningful when !open
  SpanKind kind = SpanKind::Interval;
  bool open = false;
  Attrs attrs;

  Time effective_end(Time latest) const { return open ? latest : end; }
};

/// A cross-node message edge: sender span -> receiving node, with the
/// Lamport clock on both ends. Rendered as Chrome trace flow events so
/// Perfetto draws the message arrows of the paper's figures.
struct Flow {
  std::uint64_t id = 0;
  std::uint64_t trace = 0;       // causal trace id (0: outside any trace)
  SpanId src_span = kNoSpan;     // innermost open span on the sender
  NodeId from = -1;
  NodeId to = -1;
  Time sent = 0;
  Time recv = 0;
  std::int64_t lamport_send = 0;
  std::int64_t lamport_recv = 0;  // filled in at delivery
  // Wire type name; views the type's static kTypeName storage.
  std::string_view type;
};

class Tracer {
 public:
  /// Opens a span; close it later with end(). Begin/end may straddle many
  /// simulator events (e.g. a consensus round, a lock wait).
  SpanId begin(NodeId node, std::string name, Time start, std::string request = "");
  void end(SpanId id, Time end_time);

  /// Records a completed span retrospectively.
  SpanId record(NodeId node, std::string name, Time start, Time end, std::string request = "",
                Attrs attrs = {});

  /// Records a point event (suspicion, drop, deadlock, ...).
  SpanId instant(NodeId node, std::string name, Time at, std::string request = "",
                 Attrs attrs = {});

  void attr(SpanId id, std::string key, std::string value);
  void set_parent(SpanId id, SpanId parent);

  /// Allocates a fresh causal trace id (1, 2, ...). Spans recorded while a
  /// context carrying the id is current are stamped with it.
  std::uint64_t new_trace_id() { return ++last_trace_id_; }

  /// Records a message edge; assigns and returns its id.
  std::uint64_t flow(Flow f);
  /// Completes a flow at delivery with the receiver's merged Lamport clock.
  void flow_recv_lamport(std::uint64_t id, std::int64_t lamport);
  const std::vector<Flow>& flows() const { return flows_; }

  /// The latest-begun still-open span on `node` (kNoSpan when none) — the
  /// sender-side anchor for outgoing flows.
  SpanId innermost_open(NodeId node) const;

  /// Ends every still-open span at `t` (run teardown before export).
  void close_open(Time t);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(SpanId id) const;
  std::size_t size() const { return spans_.size(); }
  /// Latest start/end time seen (effective end for still-open spans).
  Time latest() const { return latest_; }

  // -- Tree queries (containment-resolved; deterministic) --
  SpanId parent_of(SpanId id) const;
  std::vector<SpanId> children_of(SpanId id) const;
  /// True when some ancestor's name starts with `name_prefix`.
  bool has_ancestor_named(SpanId id, std::string_view name_prefix) const;
  /// All spans whose name starts with `name_prefix`, in id order.
  std::vector<const Span*> named(std::string_view name_prefix) const;

  void clear();

 private:
  Span& span_at(SpanId id);
  void resolve() const;
  std::vector<SpanId>& open_stack(NodeId node);
  void unregister_open(NodeId node, SpanId id);

  std::vector<Span> spans_;  // spans_[i].id == i + 1
  // Per-node ids of still-open spans, in begin order (indexed node + 1 so
  // kNoNode-style negatives fit). innermost_open() reads the back in O(1);
  // the old implementation rescanned the whole span history per call, which
  // made every Network::send O(run length).
  std::vector<std::vector<SpanId>> open_;
  std::vector<Flow> flows_;  // flows_[i].id == i + 1
  std::uint64_t last_trace_id_ = 0;
  Time latest_ = 0;
  mutable std::vector<SpanId> parents_;  // parallel to spans_
  mutable bool resolved_ = false;
};

}  // namespace repli::obs
