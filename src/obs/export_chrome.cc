#include "obs/export_chrome.hh"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/json.hh"
#include "util/log.hh"

namespace repli::obs {

namespace {

/// Category = first path segment of the span name ("gcs/consensus.round" ->
/// "gcs"); lets Perfetto filter by layer.
std::string_view category_of(const std::string& name) {
  const auto slash = name.find('/');
  return slash == std::string::npos ? std::string_view(name)
                                    : std::string_view(name).substr(0, slash);
}

void write_args(JsonWriter& w, const Span& span) {
  if (span.request.empty() && span.attrs.empty() && span.trace == 0) return;
  w.key("args").begin_object();
  if (!span.request.empty()) w.field("request", span.request);
  if (span.trace != 0) w.field("trace", static_cast<std::int64_t>(span.trace));
  for (const auto& [key, value] : span.attrs) w.field(key, value);
  w.end_object();
}

}  // namespace

void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  JsonWriter w(os);
  w.begin_object();
  w.field("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();

  // Metadata: name the process and one track per node, so the timeline reads
  // "node 0", "node 1", ... instead of bare tids.
  std::set<NodeId> nodes;
  for (const auto& span : tracer.spans()) nodes.insert(span.node);
  w.begin_object();
  w.field("name", "process_name").field("ph", "M").field("pid", 0).field("tid", 0);
  w.key("args").begin_object().field("name", "replikit").end_object();
  w.end_object();
  for (const NodeId node : nodes) {
    w.begin_object();
    w.field("name", "thread_name").field("ph", "M").field("pid", 0);
    w.field("tid", static_cast<std::int64_t>(node));
    w.key("args").begin_object().field("name", "node " + std::to_string(node)).end_object();
    w.end_object();
  }

  // Events sorted by (ts, id) — viewers require non-decreasing timestamps
  // within a track to nest slices correctly.
  std::vector<const Span*> ordered;
  ordered.reserve(tracer.size());
  for (const auto& span : tracer.spans()) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(), [](const Span* a, const Span* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->id < b->id;
  });

  const Time latest = tracer.latest();
  for (const Span* span : ordered) {
    w.begin_object();
    w.field("name", span->name);
    w.field("cat", category_of(span->name));
    w.field("pid", 0);
    w.field("tid", static_cast<std::int64_t>(span->node));
    w.field("ts", span->start);
    if (span->kind == SpanKind::Instant) {
      w.field("ph", "i").field("s", "t");  // thread-scoped instant
    } else {
      w.field("ph", "X");
      w.field("dur", span->effective_end(latest) - span->start);
    }
    write_args(w, *span);
    w.end_object();
  }

  // Message edges as flow event pairs ("s" on the sender slice, "f" with
  // bp:"e" binding to the enclosing slice at the receiver) — Perfetto draws
  // these as the message arrows of the paper's figures.
  for (const Flow& flow : tracer.flows()) {
    w.begin_object();
    w.field("name", flow.type).field("cat", "net").field("ph", "s");
    w.field("id", static_cast<std::int64_t>(flow.id));
    w.field("pid", 0).field("tid", static_cast<std::int64_t>(flow.from));
    w.field("ts", flow.sent);
    w.key("args").begin_object();
    if (flow.trace != 0) w.field("trace", static_cast<std::int64_t>(flow.trace));
    w.field("lamport", flow.lamport_send);
    w.end_object();
    w.end_object();

    w.begin_object();
    w.field("name", flow.type).field("cat", "net").field("ph", "f").field("bp", "e");
    w.field("id", static_cast<std::int64_t>(flow.id));
    w.field("pid", 0).field("tid", static_cast<std::int64_t>(flow.to));
    w.field("ts", flow.recv);
    w.key("args").begin_object();
    if (flow.trace != 0) w.field("trace", static_cast<std::int64_t>(flow.trace));
    w.field("lamport", flow.lamport_recv);
    w.end_object();
    w.end_object();
  }

  w.end_array();
  w.end_object();
}

bool write_chrome_trace_file(const Tracer& tracer, const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    util::log_error("trace export: cannot open ", path);
    return false;
  }
  write_chrome_trace(tracer, os);
  os << '\n';
  return os.good();
}

}  // namespace repli::obs
