// Minimal JSON support: a streaming writer (exporters, bench reports) and a
// small strict parser (round-trip tests, tooling). No external dependency.
//
// The writer tracks container nesting and inserts commas; misuse (value
// without key inside an object, unbalanced end) trips an assertion. NaN and
// infinities are emitted as null — JSON has no representation for them, and
// a bench row with no samples must stay machine-readable.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace repli::obs {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// key + value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, T&& v) {
    key(k);
    return value(std::forward<T>(v));
  }

  /// True once every opened container has been closed.
  bool done() const { return stack_.empty() && wrote_top_; }

 private:
  enum class Frame { Object, Array };
  void before_value();
  std::ostream& os_;
  std::vector<Frame> stack_;
  std::vector<bool> first_;    // parallel to stack_: no comma needed yet
  bool pending_key_ = false;   // a key was written, value must follow
  bool wrote_top_ = false;
};

/// Parsed JSON document. Object member order is preserved.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is(Type t) const { return type == t; }
  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Strict parse of a complete JSON document; nullopt on any syntax error or
/// trailing garbage.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace repli::obs
