#include "obs/critpath.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "obs/json.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::obs {

namespace {

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

/// Nearest-rank percentile over a sorted ascending vector.
Time percentile_sorted(const std::vector<Time>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto n = static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(p / 100.0 * n + 0.999999);
  if (rank == 0) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

struct TxnSeed {
  std::string request;
  std::uint64_t trace = 0;
  NodeId client = -1;
  Time start = 0;
  Time end = 0;
  bool ok = true;
  bool have_re = false;
  bool have_end = false;
};

}  // namespace

std::string_view segment_kind_name(SegmentKind kind) {
  switch (kind) {
    case SegmentKind::ClientQueue: return "client_queue";
    case SegmentKind::SubmitWait: return "submit_wait";
    case SegmentKind::Ordering: return "ordering";
    case SegmentKind::NetTransit: return "net_transit";
    case SegmentKind::Retransmit: return "retransmit";
    case SegmentKind::LockWait: return "lock_wait";
    case SegmentKind::StorageExec: return "storage_exec";
    case SegmentKind::CommitFanin: return "commit_fanin";
    case SegmentKind::ReplicaApply: return "replica_apply";
    case SegmentKind::Other: return "other";
    case SegmentKind::Unattributed: return "unattributed";
  }
  util::fail("segment_kind_name: bad kind");
}

SegmentKind classify_span_name(std::string_view name) {
  // Most-specific prefixes first: the innermost covering span decides the
  // interval, but several taxonomy kinds share a layer prefix.
  if (starts_with(name, "db/lock.")) return SegmentKind::LockWait;
  if (starts_with(name, "db/exec")) return SegmentKind::StorageExec;
  if (starts_with(name, "db/wal")) return SegmentKind::StorageExec;
  if (starts_with(name, "db/apply")) return SegmentKind::ReplicaApply;
  if (starts_with(name, "core/apply")) return SegmentKind::ReplicaApply;
  if (starts_with(name, "gcs/abcast.submit")) return SegmentKind::SubmitWait;
  if (starts_with(name, "core/queue")) return SegmentKind::SubmitWait;
  if (starts_with(name, "gcs/abcast")) return SegmentKind::Ordering;
  if (starts_with(name, "gcs/consensus")) return SegmentKind::Ordering;
  if (starts_with(name, "gcs/link.retransmit")) return SegmentKind::Retransmit;
  if (starts_with(name, "core/client.retry")) return SegmentKind::Retransmit;
  if (starts_with(name, "core/lock.retry")) return SegmentKind::Retransmit;
  if (starts_with(name, "core/group_commit")) return SegmentKind::CommitFanin;
  if (starts_with(name, "core/ac.")) return SegmentKind::CommitFanin;
  if (name == "core/AC") return SegmentKind::CommitFanin;
  if (name == "core/SC") return SegmentKind::Ordering;
  if (name == "core/EX") return SegmentKind::StorageExec;
  if (name == "core/RE") return SegmentKind::ClientQueue;
  if (name == "core/END") return SegmentKind::ClientQueue;
  return SegmentKind::Other;
}

Time TxnPath::attributed() const {
  Time sum = 0;
  for (const auto& seg : segments) {
    if (seg.kind != SegmentKind::Unattributed) sum += seg.dur;
  }
  return sum;
}

namespace {

/// Tiles [lo, hi] on `node` by the innermost covering candidate span at
/// every instant; uncovered stretches get `fallback`. Appends segments in
/// REVERSE time order (the walk builds the path backwards).
void attribute_local(const std::vector<const Span*>& node_spans, NodeId node, Time lo, Time hi,
                     SegmentKind fallback, std::vector<PathSegment>& out) {
  if (hi <= lo) return;
  // Spans overlapping [lo, hi].
  std::vector<const Span*> cover;
  for (const Span* s : node_spans) {
    if (s->start < hi && s->end > lo) cover.push_back(s);
  }
  std::vector<Time> cuts;
  cuts.push_back(lo);
  cuts.push_back(hi);
  for (const Span* s : cover) {
    if (s->start > lo && s->start < hi) cuts.push_back(s->start);
    if (s->end > lo && s->end < hi) cuts.push_back(s->end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Walk elementary intervals back-to-front so `out` stays reverse-ordered.
  for (std::size_t i = cuts.size() - 1; i > 0; --i) {
    const Time a = cuts[i - 1];
    const Time b = cuts[i];
    const Span* best = nullptr;
    for (const Span* s : cover) {
      if (s->start > a || s->end < b) continue;
      // Innermost: latest start, then earliest end, then latest recorded
      // (the tracer resolves identical intervals to the later span as the
      // child).
      if (best == nullptr || s->start > best->start ||
          (s->start == best->start && (s->end < best->end ||
                                       (s->end == best->end && s->id > best->id)))) {
        best = s;
      }
    }
    PathSegment seg;
    seg.node = node;
    seg.start = a;
    seg.dur = b - a;
    if (best != nullptr) {
      seg.kind = classify_span_name(best->name);
      seg.detail = best->name;
    } else {
      seg.kind = fallback;
    }
    out.push_back(std::move(seg));
  }
}

}  // namespace

std::vector<TxnPath> critical_paths(const Tracer& tracer) {
  // Transaction inventory from the functional-model endpoints: core/RE
  // (invoke on the client) and core/END (response on the client).
  std::map<std::string, TxnSeed> txns;
  for (const auto& span : tracer.spans()) {
    if (span.request.empty()) continue;
    if (span.name == "core/RE") {
      TxnSeed& t = txns[span.request];
      if (!t.have_re) {  // a retry never re-records RE; first one wins
        t.request = span.request;
        t.client = span.node;
        t.start = span.start;
        t.trace = span.trace;
        t.have_re = true;
      }
    } else if (span.name == "core/END") {
      TxnSeed& t = txns[span.request];
      t.have_end = true;
      t.end = span.end;
      for (const auto& [key, value] : span.attrs) {
        if (key == "ok" && value == "0") t.ok = false;
      }
    }
  }

  // Flows by trace id, delivered ones only (lamport_recv is filled in at
  // the delivery event; a dropped or in-flight-at-crash message never gets
  // one and cannot have been waited on).
  std::map<std::uint64_t, std::vector<const Flow*>> flows_by_trace;
  for (const auto& flow : tracer.flows()) {
    if (flow.trace != 0 && flow.lamport_recv != 0) flows_by_trace[flow.trace].push_back(&flow);
  }

  std::vector<const TxnSeed*> ordered;
  for (const auto& [request, seed] : txns) {
    if (seed.have_re && seed.have_end && seed.end >= seed.start) ordered.push_back(&seed);
  }
  std::sort(ordered.begin(), ordered.end(), [](const TxnSeed* a, const TxnSeed* b) {
    if (a->start != b->start) return a->start < b->start;
    return a->request < b->request;
  });

  std::vector<TxnPath> out;
  out.reserve(ordered.size());
  for (const TxnSeed* seed : ordered) {
    TxnPath path;
    path.request = seed->request;
    path.trace = seed->trace;
    path.client = seed->client;
    path.start = seed->start;
    path.end = seed->end;
    path.ok = seed->ok;

    // Candidate spans for local attribution: the transaction's own spans
    // (request id, or an internal txn id derived from it) plus anything
    // recorded under its trace, grouped by node. Instants have no width.
    const std::string internal_prefix = seed->request + "@";
    std::map<NodeId, std::vector<const Span*>> by_node;
    for (const auto& span : tracer.spans()) {
      if (span.kind == SpanKind::Instant) continue;
      if (span.name == "core/RE" || span.name == "core/END") continue;
      const bool ours = span.request == seed->request ||
                        starts_with(span.request, internal_prefix) ||
                        (seed->trace != 0 && span.trace == seed->trace);
      if (ours) by_node[span.node].push_back(&span);
    }
    static const std::vector<const Span*> kNoSpans;
    const auto spans_on = [&](NodeId node) -> const std::vector<const Span*>& {
      const auto it = by_node.find(node);
      return it == by_node.end() ? kNoSpans : it->second;
    };

    // Backward walk: from the response, repeatedly hop across the
    // latest-arriving message of this trace — the one the next step
    // actually waited on (fan-ins resolve to the slowest ack, which is the
    // critical one).
    std::vector<const Flow*> avail;
    if (const auto it = flows_by_trace.find(seed->trace); it != flows_by_trace.end()) {
      avail = it->second;
    }
    NodeId cursor_node = seed->client;
    Time cursor_t = seed->end;
    while (cursor_t > seed->start) {
      const Flow* best = nullptr;
      std::size_t best_idx = 0;
      for (std::size_t i = 0; i < avail.size(); ++i) {
        const Flow* f = avail[i];
        if (f == nullptr || f->to != cursor_node) continue;
        if (f->recv > cursor_t || f->sent < seed->start) continue;
        if (best == nullptr || f->recv > best->recv ||
            (f->recv == best->recv && f->id > best->id)) {
          best = f;
          best_idx = i;
        }
      }
      if (best == nullptr) break;
      const SegmentKind gap =
          cursor_node == seed->client ? SegmentKind::ClientQueue : SegmentKind::Unattributed;
      attribute_local(spans_on(cursor_node), cursor_node, best->recv, cursor_t, gap,
                      path.segments);
      PathSegment transit;
      transit.kind = SegmentKind::NetTransit;
      transit.node = best->from;
      transit.start = best->sent;
      transit.dur = best->recv - best->sent;
      transit.detail = std::string(best->type);
      path.segments.push_back(std::move(transit));
      cursor_node = best->from;
      cursor_t = best->sent;
      avail[best_idx] = nullptr;  // a wait is consumed once
      ++path.hops;
    }
    // The remainder before the first followed message. On the client with
    // at least one hop this is genuine client-side time (dispatch, retry
    // queueing); anywhere else the causal chain is broken — never claim it.
    const SegmentKind gap = (cursor_node == seed->client && path.hops > 0)
                                ? SegmentKind::ClientQueue
                                : SegmentKind::Unattributed;
    attribute_local(spans_on(cursor_node), cursor_node, seed->start, cursor_t, gap,
                    path.segments);

    // The walk built the path back-to-front; flip it and merge adjacent
    // segments with identical classification.
    std::reverse(path.segments.begin(), path.segments.end());
    std::vector<PathSegment> merged;
    for (auto& seg : path.segments) {
      if (seg.dur <= 0 && seg.kind != SegmentKind::NetTransit) continue;
      if (!merged.empty() && merged.back().kind == seg.kind &&
          merged.back().node == seg.node && merged.back().detail == seg.detail &&
          merged.back().start + merged.back().dur == seg.start) {
        merged.back().dur += seg.dur;
        continue;
      }
      merged.push_back(std::move(seg));
    }
    path.segments = std::move(merged);
    out.push_back(std::move(path));
  }
  return out;
}

CritSummary summarize(const std::vector<TxnPath>& paths) {
  CritSummary sum;
  // Per-kind totals per committed transaction (0 when untouched), so the
  // percentiles compare like with like across kinds.
  std::vector<std::vector<Time>> per_kind(kSegmentKindCount);
  for (const auto& path : paths) {
    if (!path.ok) continue;
    ++sum.txns;
    sum.total_us += path.total();
    sum.attributed_us += path.attributed();
    std::vector<Time> totals(kSegmentKindCount, 0);
    for (const auto& seg : path.segments) {
      totals[static_cast<std::size_t>(seg.kind)] += seg.dur;
    }
    for (std::size_t k = 0; k < kSegmentKindCount; ++k) per_kind[k].push_back(totals[k]);
  }
  sum.coverage = sum.total_us > 0
                     ? static_cast<double>(sum.attributed_us) / static_cast<double>(sum.total_us)
                     : 1.0;
  for (std::size_t k = 0; k < kSegmentKindCount; ++k) {
    auto& values = per_kind[k];
    SegmentStat stat;
    stat.kind = static_cast<SegmentKind>(k);
    if (!values.empty()) {
      Time total = 0;
      for (const Time v : values) {
        if (v > 0) ++stat.txns_touched;
        total += v;
        stat.max_us = std::max(stat.max_us, v);
      }
      std::sort(values.begin(), values.end());
      stat.p50_us = percentile_sorted(values, 50);
      stat.p95_us = percentile_sorted(values, 95);
      stat.p99_us = percentile_sorted(values, 99);
      stat.mean_us = static_cast<double>(total) / static_cast<double>(values.size());
    }
    sum.segments.push_back(stat);
  }
  for (const auto& stat : sum.segments) {
    TailContribution tc;
    tc.kind = stat.kind;
    tc.p50_us = stat.p50_us;
    tc.p99_us = stat.p99_us;
    tc.delta_us = stat.p99_us - stat.p50_us;
    sum.tail.push_back(tc);
  }
  std::sort(sum.tail.begin(), sum.tail.end(),
            [](const TailContribution& a, const TailContribution& b) {
              if (a.delta_us != b.delta_us) return a.delta_us > b.delta_us;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return sum;
}

void write_crit_json(std::ostream& os, const std::string& name,
                     const std::vector<TxnPath>& paths) {
  const CritSummary sum = summarize(paths);
  JsonWriter w(os);
  w.begin_object();
  w.field("crit", name);
  w.field("schema_version", 1);
  w.key("txns").begin_array();
  for (const auto& path : paths) {
    w.begin_object();
    w.field("request", path.request);
    w.field("trace", path.trace);
    w.field("client", static_cast<std::int64_t>(path.client));
    w.field("ok", path.ok);
    w.field("start_us", static_cast<std::int64_t>(path.start));
    w.field("end_us", static_cast<std::int64_t>(path.end));
    w.field("total_us", static_cast<std::int64_t>(path.total()));
    w.field("attributed_us", static_cast<std::int64_t>(path.attributed()));
    w.field("hops", path.hops);
    w.key("segments").begin_array();
    for (const auto& seg : path.segments) {
      w.begin_object();
      w.field("kind", segment_kind_name(seg.kind));
      w.field("node", static_cast<std::int64_t>(seg.node));
      w.field("start_us", static_cast<std::int64_t>(seg.start));
      w.field("dur_us", static_cast<std::int64_t>(seg.dur));
      if (!seg.detail.empty()) w.field("detail", seg.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("summary").begin_object();
  w.field("txns", static_cast<std::int64_t>(sum.txns));
  w.field("total_us", static_cast<std::int64_t>(sum.total_us));
  w.field("attributed_us", static_cast<std::int64_t>(sum.attributed_us));
  w.field("coverage", sum.coverage);
  w.key("segments").begin_array();
  for (const auto& stat : sum.segments) {
    w.begin_object();
    w.field("kind", segment_kind_name(stat.kind));
    w.field("txns_touched", static_cast<std::int64_t>(stat.txns_touched));
    w.field("p50_us", static_cast<std::int64_t>(stat.p50_us));
    w.field("p95_us", static_cast<std::int64_t>(stat.p95_us));
    w.field("p99_us", static_cast<std::int64_t>(stat.p99_us));
    w.field("mean_us", stat.mean_us);
    w.field("max_us", static_cast<std::int64_t>(stat.max_us));
    w.end_object();
  }
  w.end_array();
  // Tail differential: which segments explain p99 - p50.
  w.key("tail").begin_array();
  for (const auto& tc : sum.tail) {
    w.begin_object();
    w.field("kind", segment_kind_name(tc.kind));
    w.field("p50_us", static_cast<std::int64_t>(tc.p50_us));
    w.field("p99_us", static_cast<std::int64_t>(tc.p99_us));
    w.field("delta_us", static_cast<std::int64_t>(tc.delta_us));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  w.end_object();
  os << "\n";
}

bool write_crit_json_file(const Tracer& tracer, const std::string& name,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_error("write_crit_json_file: cannot open ", path);
    return false;
  }
  write_crit_json(out, name, critical_paths(tracer));
  out.flush();
  return static_cast<bool>(out);
}

}  // namespace repli::obs
