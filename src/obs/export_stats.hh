// Newline-delimited JSON stats sink.
//
// One line per metric: counters carry their value, gauges their last set
// point, histograms count/mean/min/max/p50/p95/p99. Labels ride along as a
// nested object. NDJSON keeps the output greppable and trivially loadable
// (`jq -s`, pandas.read_json(lines=True)) without committing to a schema
// for the whole run.
#pragma once

#include <ostream>
#include <string>

#include "obs/metrics.hh"

namespace repli::obs {

/// Writes every metric in `registry` as one JSON object per line.
void write_stats_ndjson(const Registry& registry, std::ostream& os);

/// Convenience: write_stats_ndjson to a file. Returns false (and logs) on
/// I/O failure instead of throwing.
bool write_stats_ndjson_file(const Registry& registry, const std::string& path);

}  // namespace repli::obs
