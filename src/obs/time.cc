#include "obs/time.hh"

#include "util/log.hh"

namespace repli::obs {

TimeSource& TimeSource::instance() {
  static TimeSource source;
  return source;
}

TimeSource::Token TimeSource::push(Fn fn) {
  const Token token = next_token_++;
  providers_.emplace_back(token, std::move(fn));
  return token;
}

void TimeSource::remove(Token token) {
  for (auto it = providers_.begin(); it != providers_.end(); ++it) {
    if (it->first == token) {
      providers_.erase(it);
      return;
    }
  }
}

std::int64_t TimeSource::now() const {
  if (providers_.empty()) return 0;
  return providers_.back().second();
}

void install_log_time_prefix() {
  static const bool installed = [] {
    util::Logger::instance().set_prefix_hook([] {
      auto& source = TimeSource::instance();
      if (!source.active()) return std::string{};
      return "[t=" + std::to_string(source.now()) + "us] ";
    });
    return true;
  }();
  (void)installed;
}

}  // namespace repli::obs
