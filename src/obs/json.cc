#include "obs/json.hh"

#include <cmath>
#include <cstdio>

#include "util/assert.hh"

namespace repli::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (!stack_.empty() && stack_.back() == Frame::Object) {
    util::ensure(pending_key_, "JsonWriter: value inside object without a key");
    pending_key_ = false;
    return;
  }
  util::ensure(!pending_key_, "JsonWriter: dangling key");
  if (stack_.empty()) {
    util::ensure(!wrote_top_, "JsonWriter: second top-level value");
    wrote_top_ = true;
    return;
  }
  if (!first_.back()) os_ << ',';
  first_.back() = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Frame::Object);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  util::ensure(!stack_.empty() && stack_.back() == Frame::Object && !pending_key_,
               "JsonWriter: unbalanced end_object");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  wrote_top_ = wrote_top_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Frame::Array);
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  util::ensure(!stack_.empty() && stack_.back() == Frame::Array,
               "JsonWriter: unbalanced end_array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  wrote_top_ = wrote_top_ || stack_.empty();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  util::ensure(!stack_.empty() && stack_.back() == Frame::Object && !pending_key_,
               "JsonWriter: key outside object");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  os_ << '"' << json_escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v)) return null();
  before_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

const JsonValue* JsonValue::find(std::string_view k) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == k) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue out;
    if (!parse_value(out)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return out;
  }

 private:
  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (eof() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool consume_lit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  bool parse_value(JsonValue& out) {
    if (eof()) return false;
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.type = JsonValue::Type::String; return parse_string(out.str);
      case 't':
        out.type = JsonValue::Type::Bool;
        out.boolean = true;
        return consume_lit("true");
      case 'f':
        out.type = JsonValue::Type::Bool;
        out.boolean = false;
        return consume_lit("false");
      case 'n': out.type = JsonValue::Type::Null; return consume_lit("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::Object;
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::Array;
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.array.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Control-plane strings here are ASCII; encode BMP as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && ((peek() >= '0' && peek() <= '9') || peek() == '.' || peek() == 'e' ||
                      peek() == 'E' || peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    out.type = JsonValue::Type::Number;
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace repli::obs
