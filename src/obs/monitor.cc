#include "obs/monitor.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::obs {

std::string_view abort_cause_name(AbortCause cause) {
  switch (cause) {
    case AbortCause::Certification: return "certification";
    case AbortCause::Deadlock: return "deadlock";
    case AbortCause::Failover: return "failover";
    case AbortCause::Timeout: return "timeout";
    case AbortCause::Other: return "other";
  }
  util::fail("abort_cause_name: bad cause");
}

void HealthMonitor::instant(NodeId node, std::string name, Time at, std::string request,
                            Attrs attrs) {
  if (tracer_ != nullptr) {
    tracer_->instant(node, std::move(name), at, std::move(request), std::move(attrs));
  }
}

void HealthMonitor::sample_versions(Time at,
                                    const std::vector<std::pair<NodeId, std::uint64_t>>& versions) {
  if (versions.empty()) return;
  std::uint64_t frontier = 0;
  for (const auto& [node, seq] : versions) frontier = std::max(frontier, seq);
  if (frontier_log_.empty() || frontier_log_.back().first < frontier) {
    frontier_log_.emplace_back(frontier, at);
  }

  for (const auto& [node, seq] : versions) {
    StalenessSample sample;
    sample.node = node;
    sample.at = at;
    sample.version_lag = frontier - seq;
    // Age: how long ago the frontier first passed this replica's version —
    // i.e. for how long the replica has been missing committed state.
    if (sample.version_lag > 0) {
      for (const auto& [value, seen] : frontier_log_) {
        if (value > seq) {
          sample.age = at - seen;
          break;
        }
      }
    }
    staleness_.push_back(sample);
    if (registry_ != nullptr) {
      const auto idx = static_cast<std::size_t>(node);
      if (staleness_hist_.size() <= idx) staleness_hist_.resize(idx + 1, {nullptr, nullptr});
      auto& [lag_hist, age_hist] = staleness_hist_[idx];
      if (lag_hist == nullptr) {
        lag_hist = &registry_->histogram("monitor.staleness_versions", node_label(node));
        age_hist = &registry_->histogram("monitor.staleness_age_us", node_label(node));
      }
      lag_hist->observe(static_cast<double>(sample.version_lag));
      age_hist->observe(static_cast<double>(sample.age));
    }
  }
}

void HealthMonitor::digest_sample(Time at,
                                  const std::vector<std::pair<NodeId, std::uint64_t>>& digests) {
  if (digests.empty()) return;
  bool diverged = false;
  for (const auto& [node, digest] : digests) {
    if (digest != digests.front().second) diverged = true;
  }

  const bool was_open = diverged_now();
  if (diverged && !was_open) {
    windows_.push_back(DivergenceWindow{at, -1});
    instant(digests.front().first, "mon/divergence.start", at, "", {});
    if (registry_ != nullptr) registry_->incr("monitor.divergence_windows");
  } else if (!diverged && was_open) {
    DivergenceWindow& window = windows_.back();
    window.end = at;
    instant(digests.front().first, "mon/divergence.end", at, "", {});
    if (registry_ != nullptr) {
      registry_->histogram("monitor.divergence_window_us")
          .observe(static_cast<double>(window.end - window.start));
    }
  }
}

void HealthMonitor::abort_event(NodeId node, Time at, AbortCause cause,
                                const std::string& request, const std::string& detail) {
  aborts_.push_back(AbortEvent{node, at, cause, request, detail});
  Attrs attrs{{"cause", std::string(abort_cause_name(cause))}};
  if (!detail.empty()) attrs.emplace_back("detail", detail);
  instant(node, "mon/abort", at, request, std::move(attrs));
  if (registry_ != nullptr) {
    registry_->counter("monitor.aborts", label("cause", std::string(abort_cause_name(cause))))
        .incr();
  }
}

void HealthMonitor::suspected(NodeId failed, NodeId by, Time at) {
  for (const auto& timeline : failovers_) {
    if (timeline.failed == failed) return;  // further suspicions of the same node
  }
  FailoverTimeline timeline;
  timeline.failed = failed;
  timeline.suspected_at = at;
  failovers_.push_back(timeline);
  instant(by, "mon/failover.suspected", at, "",
          Attrs{{"failed", std::to_string(failed)}});
}

void HealthMonitor::promoted(NodeId new_primary, Time at) {
  for (auto it = failovers_.rbegin(); it != failovers_.rend(); ++it) {
    if (it->promoted_at >= 0) continue;
    it->new_primary = new_primary;
    it->promoted_at = at;
    instant(new_primary, "mon/failover.promoted", at, "",
            Attrs{{"failed", std::to_string(it->failed)}});
    return;
  }
}

void HealthMonitor::committed(NodeId node, Time at) {
  for (auto& timeline : failovers_) {
    if (timeline.first_commit_at >= 0 || timeline.new_primary != node) continue;
    if (timeline.promoted_at < 0) continue;
    timeline.first_commit_at = at;
    instant(node, "mon/failover.first_commit", at, "",
            Attrs{{"failed", std::to_string(timeline.failed)},
                  {"duration_us", std::to_string(timeline.duration())}});
    if (registry_ != nullptr) {
      registry_->histogram("monitor.failover_us")
          .observe(static_cast<double>(timeline.duration()));
    }
  }
}

std::uint64_t HealthMonitor::staleness_p95_versions() const {
  if (staleness_.empty()) return 0;
  std::vector<std::uint64_t> lags;
  lags.reserve(staleness_.size());
  for (const auto& sample : staleness_) lags.push_back(sample.version_lag);
  std::sort(lags.begin(), lags.end());
  const std::size_t idx =
      std::min(lags.size() - 1, static_cast<std::size_t>(0.95 * static_cast<double>(lags.size())));
  return lags[idx];
}

std::size_t HealthMonitor::aborts_by(AbortCause cause) const {
  std::size_t n = 0;
  for (const auto& ev : aborts_) {
    if (ev.cause == cause) ++n;
  }
  return n;
}

}  // namespace repli::obs
