// Chrome trace_event exporter.
//
// Writes a Tracer's spans in the Trace Event Format that chrome://tracing
// and https://ui.perfetto.dev load directly: one process ("replikit"), one
// track (tid) per node, "X" complete events for intervals, "i" instant
// events for point marks. Span request ids and attributes become event
// `args`, so clicking a slice in Perfetto shows which transaction paid for
// it.
#pragma once

#include <ostream>
#include <string>

#include "obs/trace.hh"

namespace repli::obs {

/// Writes the full trace document ({"displayTimeUnit":"ms","traceEvents":[...]})
/// to `os`. Spans still open are drawn up to tracer.latest().
void write_chrome_trace(const Tracer& tracer, std::ostream& os);

/// Convenience: write_chrome_trace to a file. Returns false (and logs) on
/// I/O failure instead of throwing — tracing must never sink a run.
bool write_chrome_trace_file(const Tracer& tracer, const std::string& path);

}  // namespace repli::obs
