// Online replication health monitors (the paper's Section 6 observables).
//
// The monitor consumes periodic samples from the cluster harness plus
// structured events from the techniques, and turns them into the health
// signals no per-node counter captures:
//   - staleness: each replica's committed-version lag behind the frontier
//     (the most-advanced live replica), sampled over simulated time;
//   - divergence: windows during which the replicas' value digests
//     disagree (expected transiently under lazy schemes, a bug if a window
//     never closes on a conflict-free run);
//   - abort attribution: why transactions aborted (certification conflict,
//     lock deadlock, failover-induced, client timeout);
//   - failover timelines: fd suspicion -> promotion -> first commit by the
//     new primary, as one structured record per failed primary.
// Everything is mirrored as tracer instants (mon/) and metrics (monitor.*),
// so traces, NDJSON stats, and replikit-report all see the same story.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace repli::obs {

enum class AbortCause { Certification, Deadlock, Failover, Timeout, Other };

std::string_view abort_cause_name(AbortCause cause);

struct StalenessSample {
  NodeId node = -1;
  Time at = 0;
  std::uint64_t version_lag = 0;  // commit-seq distance behind the frontier
  Time age = 0;                   // how long ago the frontier reached this lag
};

struct DivergenceWindow {
  Time start = 0;
  Time end = -1;  // -1: still open
  bool open() const { return end < 0; }
};

struct AbortEvent {
  NodeId node = -1;
  Time at = 0;
  AbortCause cause = AbortCause::Other;
  std::string request;
  std::string detail;
};

struct FailoverTimeline {
  NodeId failed = -1;
  NodeId new_primary = -1;
  Time suspected_at = -1;
  Time promoted_at = -1;
  Time first_commit_at = -1;
  bool complete() const { return suspected_at >= 0 && promoted_at >= 0 && first_commit_at >= 0; }
  /// Suspicion -> first commit by the new primary (-1 until complete).
  Time duration() const { return complete() ? first_commit_at - suspected_at : -1; }
};

class HealthMonitor {
 public:
  /// Mirrors events into `tracer` instants and `registry` metrics (either
  /// may be nullptr). Not owned.
  void bind(Tracer* tracer, Registry* registry) {
    tracer_ = tracer;
    registry_ = registry;
    staleness_hist_.clear();  // handles below point into the old registry
  }

  // -- Periodic samples (driven by the cluster harness) --

  /// One staleness sample per live replica: `versions` holds each node's
  /// last committed sequence number.
  void sample_versions(Time at, const std::vector<std::pair<NodeId, std::uint64_t>>& versions);

  /// One digest per live replica; opens/closes divergence windows.
  void digest_sample(Time at, const std::vector<std::pair<NodeId, std::uint64_t>>& digests);

  // -- Structured events (driven by techniques / clients) --

  void abort_event(NodeId node, Time at, AbortCause cause, const std::string& request,
                   const std::string& detail = "");

  /// Failure-detector suspicion of `failed` raised by `by`. Starts a
  /// timeline per failed node (duplicate suspicions are folded in).
  void suspected(NodeId failed, NodeId by, Time at);
  /// `new_primary` took over. Attaches to the latest open timeline.
  void promoted(NodeId new_primary, Time at);
  /// A commit applied on `node`; closes a timeline waiting for its new
  /// primary's first commit.
  void committed(NodeId node, Time at);

  // -- Queries --

  const std::vector<StalenessSample>& staleness() const { return staleness_; }
  const std::vector<DivergenceWindow>& divergence_windows() const { return windows_; }
  const std::vector<AbortEvent>& aborts() const { return aborts_; }
  const std::vector<FailoverTimeline>& failovers() const { return failovers_; }

  /// p95 of version lag over all samples (0 when unsampled).
  std::uint64_t staleness_p95_versions() const;
  bool diverged_now() const { return !windows_.empty() && windows_.back().open(); }
  std::size_t aborts_by(AbortCause cause) const;

 private:
  void instant(NodeId node, std::string name, Time at, std::string request, Attrs attrs);

  Tracer* tracer_ = nullptr;
  Registry* registry_ = nullptr;
  // Per-node staleness histogram handles, resolved once: sample_versions
  // runs on every monitor tick and must not redo labeled name lookups.
  std::vector<std::pair<HistogramMetric*, HistogramMetric*>> staleness_hist_;

  std::vector<StalenessSample> staleness_;
  std::vector<DivergenceWindow> windows_;
  std::vector<AbortEvent> aborts_;
  std::vector<FailoverTimeline> failovers_;
  // When each frontier value was first observed, for staleness age.
  std::vector<std::pair<std::uint64_t, Time>> frontier_log_;
};

}  // namespace repli::obs
