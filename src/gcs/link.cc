#include "gcs/link.hh"

#include "util/log.hh"

namespace repli::gcs {

ReliableLink::ReliableLink(sim::Process& host, std::uint32_t channel, LinkConfig config)
    : host_(host), channel_(channel), config_(config) {}

void ReliableLink::send_reliable(sim::NodeId to, const wire::Message& msg) {
  const std::uint64_t seq = next_seq_++;
  auto [it, inserted] = outbox_.emplace(seq, Pending{to, wire::to_blob(msg), 0});
  transmit(seq, it->second);
  arm_timer();
}

void ReliableLink::transmit(std::uint64_t seq, const Pending& p) {
  auto data = std::make_shared<LinkData>();
  data->channel = channel_;
  data->seq = seq;
  data->payload = p.payload;
  host_.send(p.to, std::move(data));
}

void ReliableLink::arm_timer() {
  if (timer_ != sim::Process::kNoTimer || outbox_.empty()) return;
  timer_ = host_.set_timer(config_.rto, [this] {
    timer_ = sim::Process::kNoTimer;
    on_tick();
  });
}

void ReliableLink::on_tick() {
  for (auto it = outbox_.begin(); it != outbox_.end();) {
    Pending& p = it->second;
    if (++p.retries > config_.max_retries) {
      util::log_debug("link ", host_.id(), ": giving up on seq ", it->first, " to ", p.to);
      it = outbox_.erase(it);
      continue;
    }
    transmit(it->first, p);
    ++it;
  }
  arm_timer();
}

bool ReliableLink::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  if (const auto data = wire::message_cast<LinkData>(msg)) {
    if (data->channel != channel_) return false;
    auto ack = std::make_shared<LinkAck>();
    ack->channel = channel_;
    ack->seq = data->seq;
    host_.send(from, std::move(ack));
    if (seen_[from].insert(data->seq).second && deliver_) {
      deliver_(from, wire::from_blob(data->payload));
    }
    return true;
  }
  if (const auto ack = wire::message_cast<LinkAck>(msg)) {
    if (ack->channel != channel_) return false;
    outbox_.erase(ack->seq);
    return true;
  }
  return false;
}

}  // namespace repli::gcs
