#include "gcs/link.hh"

#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "util/log.hh"

namespace repli::gcs {

ReliableLink::ReliableLink(sim::Process& host, std::uint32_t channel, LinkConfig config)
    : host_(host), channel_(channel), config_(config) {}

void ReliableLink::send_reliable(sim::NodeId to, const wire::Message& msg) {
  obs::ProfScope prof(obs::CostCenter::GcsLink);
  if (config_.batch_max_msgs <= 1) {
    send_now(to, wire::to_blob(msg));
    return;
  }
  // Packing: gather payloads per destination for up to batch_window, then
  // ship them as one LinkPack (one seq / ack / retransmission unit).
  PackBuffer& buf = pack_[to];
  buf.payloads.push_back(wire::to_blob(msg));
  if (static_cast<int>(buf.payloads.size()) >= config_.batch_max_msgs) {
    flush_pack(to);
    return;
  }
  if (buf.payloads.size() == 1) {
    const std::uint64_t epoch = buf.epoch;
    host_.set_timer(config_.batch_window, [this, to, epoch] {
      const auto it = pack_.find(to);
      if (it != pack_.end() && it->second.epoch == epoch && !it->second.payloads.empty()) {
        flush_pack(to);
      }
    });
  }
}

void ReliableLink::flush_pack(sim::NodeId to) {
  PackBuffer& buf = pack_[to];
  ++buf.epoch;
  if (buf.payloads.size() == 1) {
    // A lone payload skips the pack wrapper: same bytes as an unpacked send.
    std::string payload = std::move(buf.payloads.front());
    buf.payloads.clear();
    send_now(to, std::move(payload));
    return;
  }
  LinkPack pack;
  pack.payloads = std::move(buf.payloads);
  buf.payloads.clear();
  host_.sim().metrics().histogram("gcs.link.pack_occupancy")
      .observe(static_cast<double>(pack.payloads.size()));
  send_now(to, wire::to_blob(pack));
}

void ReliableLink::send_now(sim::NodeId to, std::string payload) {
  const std::uint64_t seq = next_seq_++;
  auto [it, inserted] = outbox_.emplace(seq, Pending{to, std::move(payload), 0});
  transmit(seq, it->second);
  arm_timer();
}

void ReliableLink::transmit(std::uint64_t seq, const Pending& p) {
  // Pooled: the recycled object's payload string keeps its capacity, so a
  // steady-state (re)transmit allocates nothing.
  auto data = wire::MessagePool<LinkData>::acquire();
  data->channel = channel_;
  data->seq = seq;
  data->payload = p.payload;
  host_.send(p.to, std::move(data));
}

void ReliableLink::arm_timer() {
  if (timer_ != sim::Process::kNoTimer || outbox_.empty()) return;
  timer_ = host_.set_timer(config_.rto, [this] {
    timer_ = sim::Process::kNoTimer;
    on_tick();
  });
}

void ReliableLink::on_tick() {
  for (auto it = outbox_.begin(); it != outbox_.end();) {
    Pending& p = it->second;
    if (++p.retries > config_.max_retries) {
      util::log_debug("link ", host_.id(), ": giving up on seq ", it->first, " to ", p.to);
      it = outbox_.erase(it);
      continue;
    }
    transmit(it->first, p);
    ++it;
  }
  arm_timer();
}

bool ReliableLink::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  if (const auto data = wire::message_cast<LinkData>(msg)) {
    if (data->channel != channel_) return false;
    obs::ProfScope prof(obs::CostCenter::GcsLink);
    auto ack = wire::MessagePool<LinkAck>::acquire();
    ack->channel = channel_;
    ack->seq = data->seq;
    host_.send(from, std::move(ack));
    if (seen_[from].insert(data->seq).second && deliver_) {
      const auto payload = wire::from_blob(data->payload);
      if (const auto pack = wire::message_cast<LinkPack>(payload)) {
        for (const auto& blob : pack->payloads) deliver_(from, wire::from_blob(blob));
      } else {
        deliver_(from, payload);
      }
    }
    return true;
  }
  if (const auto ack = wire::message_cast<LinkAck>(msg)) {
    if (ack->channel != channel_) return false;
    obs::ProfScope prof(obs::CostCenter::GcsLink);
    outbox_.erase(ack->seq);
    return true;
  }
  return false;
}

}  // namespace repli::gcs
