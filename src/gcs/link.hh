// Reliable point-to-point links (ARQ) over the lossy simulated network:
// per-destination sequence numbers, retransmission until acknowledged, and
// duplicate suppression at the receiver. This is the "quasi-reliable
// channel" abstraction the distributed-systems protocols assume.
//
// Retransmission stops after `max_retries` (the peer is then assumed
// crashed; crash-stop processes never return, so this only truncates
// pointless traffic and lets the simulation quiesce).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gcs/component.hh"

namespace repli::gcs {

struct LinkData : wire::MessageBase<LinkData> {
  static constexpr const char* kTypeName = "gcs.LinkData";
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(channel);
    ar(seq);
    ar(payload);
  }
  // Flat decode of the same layout (hottest type on the wire: the ARQ
  // wraps every application payload). Must mirror fields() exactly; the
  // flat/visitor equivalence test holds the two together.
  void decode_flat(wire::Reader& r) {
    channel = r.get_u32();
    seq = r.get_u64();
    r.get_string_into(payload);
  }
};

struct LinkAck : wire::MessageBase<LinkAck> {
  static constexpr const char* kTypeName = "gcs.LinkAck";
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(channel);
    ar(seq);
  }
  void decode_flat(wire::Reader& r) {
    channel = r.get_u32();
    seq = r.get_u64();
  }
};

/// Several application payloads packed into one LinkData: one sequence
/// number, one ack, one retransmission unit for the whole pack. The
/// receiver unpacks and delivers the payloads in send order.
struct LinkPack : wire::MessageBase<LinkPack> {
  static constexpr const char* kTypeName = "gcs.LinkPack";
  std::vector<std::string> payloads;
  template <class Ar>
  void fields(Ar& ar) {
    ar(payloads);
  }
};

struct LinkConfig {
  sim::Time rto = 5 * sim::kMsec;  // retransmission timeout
  int max_retries = 100;
  /// Send-side payload packing: with batch_max_msgs > 1, payloads to the
  /// same destination are gathered for up to batch_window and shipped as
  /// one LinkPack (one LinkData + one LinkAck for the whole pack). The
  /// default (<= 1) keeps every send its own LinkData — the byte-identical
  /// unbatched path.
  int batch_max_msgs = 1;
  sim::Time batch_window = 200 * sim::kUsec;
};

class ReliableLink : public Component {
 public:
  using DeliverFn = std::function<void(sim::NodeId from, wire::MessagePtr msg)>;

  /// `channel` separates independent link instances on the same process.
  ReliableLink(sim::Process& host, std::uint32_t channel, LinkConfig config = {});

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Sends `msg` to `to`; retransmits until acknowledged.
  void send_reliable(sim::NodeId to, const wire::Message& msg);

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  std::size_t unacked() const { return outbox_.size(); }

 private:
  struct Pending {
    sim::NodeId to;
    std::string payload;
    int retries = 0;
  };

  void transmit(std::uint64_t seq, const Pending& p);
  void arm_timer();
  void on_tick();
  void send_now(sim::NodeId to, std::string payload);
  void flush_pack(sim::NodeId to);

  sim::Process& host_;
  std::uint32_t channel_;
  LinkConfig config_;
  DeliverFn deliver_;
  std::uint64_t next_seq_ = 1;
  std::map<std::uint64_t, Pending> outbox_;
  std::map<sim::NodeId, std::set<std::uint64_t>> seen_;  // dedup per sender
  sim::Process::TimerId timer_ = sim::Process::kNoTimer;

  struct PackBuffer {
    std::vector<std::string> payloads;
    std::uint64_t epoch = 0;  // invalidates stale flush timers
  };
  std::map<sim::NodeId, PackBuffer> pack_;  // per-destination, batching only
};

}  // namespace repli::gcs
