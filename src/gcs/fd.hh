// Heartbeat failure detector.
//
// Every monitored process periodically broadcasts a heartbeat to the group;
// a peer silent for longer than `timeout` becomes suspected. Suspicion is
// revocable (an eventually-perfect / ◊S-style detector): a late heartbeat
// triggers a trust notification. With timeouts generous relative to network
// jitter the detector is accurate; aggressive timeouts yield the false
// suspicions the consensus-based protocols are designed to survive.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "gcs/component.hh"
#include "gcs/group.hh"
#include "obs/metrics.hh"

namespace repli::gcs {

struct Heartbeat : wire::MessageBase<Heartbeat> {
  static constexpr const char* kTypeName = "gcs.Heartbeat";
  std::uint64_t count = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(count);
  }
  void decode_flat(wire::Reader& r) { count = r.get_u64(); }
};

struct FdConfig {
  sim::Time interval = 2 * sim::kMsec;
  sim::Time timeout = 10 * sim::kMsec;
};

class FailureDetector : public Component {
 public:
  FailureDetector(sim::Process& host, Group group, FdConfig config = {});

  void start() override;
  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  bool suspects(sim::NodeId id) const { return suspected_.contains(id); }
  const std::set<sim::NodeId>& suspected() const { return suspected_; }

  /// Lowest group member not currently suspected (kNoNode if all suspected).
  sim::NodeId lowest_trusted() const;

  /// Listener registration is additive: several components may share one
  /// detector (e.g. ABCAST and membership on the same replica).
  using SuspicionFn = std::function<void(sim::NodeId)>;
  void on_suspect(SuspicionFn fn) { on_suspect_.push_back(std::move(fn)); }
  void on_trust(SuspicionFn fn) { on_trust_.push_back(std::move(fn)); }

 private:
  void tick();

  sim::Process& host_;
  Group group_;
  FdConfig config_;
  // Cached handle: tick() fires every interval on every node, so it must
  // not re-resolve the counter by name each time (map nodes are stable).
  obs::Counter* hb_sent_ = nullptr;
  std::uint64_t count_ = 0;
  std::map<sim::NodeId, sim::Time> last_heard_;
  std::set<sim::NodeId> suspected_;
  std::vector<SuspicionFn> on_suspect_;
  std::vector<SuspicionFn> on_trust_;
};

}  // namespace repli::gcs
