#include "gcs/fd.hh"

#include "sim/simulator.hh"
#include "util/log.hh"

namespace repli::gcs {

FailureDetector::FailureDetector(sim::Process& host, Group group, FdConfig config)
    : host_(host), group_(std::move(group)), config_(config) {}

void FailureDetector::start() {
  const sim::Time t0 = host_.now();
  for (const auto m : group_.members()) {
    if (m != host_.id()) last_heard_[m] = t0;
  }
  tick();
}

void FailureDetector::tick() {
  // Broadcast our heartbeat. One immutable message serves every peer this
  // tick — messages are shared_ptr<const>, so fan-out needs no copies.
  if (hb_sent_ == nullptr) hb_sent_ = &host_.sim().metrics().counter("gcs.fd.heartbeats_sent");
  auto hb = std::make_shared<Heartbeat>();
  hb->count = ++count_;
  for (const auto m : group_.members()) {
    if (m == host_.id()) continue;
    host_.send(m, hb);
    hb_sent_->incr();
  }
  // Re-evaluate suspicions.
  for (const auto& [peer, heard] : last_heard_) {
    const bool late = host_.now() - heard > config_.timeout;
    if (late && !suspected_.contains(peer)) {
      suspected_.insert(peer);
      host_.sim().metrics().incr("gcs.fd.suspicions");
      host_.sim().tracer().instant(host_.id(), "gcs/fd.suspect", host_.now(), "",
                                   obs::Attrs{{"peer", std::to_string(peer)}});
      util::log_info("fd ", host_.id(), ": suspects ", peer);
      for (const auto& fn : on_suspect_) fn(peer);
    }
  }
  host_.set_timer(config_.interval, [this] { tick(); });
}

bool FailureDetector::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  const auto hb = wire::message_cast<Heartbeat>(msg);
  if (!hb) return false;
  last_heard_[from] = host_.now();
  if (const auto it = suspected_.find(from); it != suspected_.end()) {
    suspected_.erase(it);
    host_.sim().metrics().incr("gcs.fd.trust_restored");
    host_.sim().tracer().instant(host_.id(), "gcs/fd.trust", host_.now(), "",
                                 obs::Attrs{{"peer", std::to_string(from)}});
    util::log_info("fd ", host_.id(), ": trusts ", from, " again");
    for (const auto& fn : on_trust_) fn(from);
  }
  return true;
}

sim::NodeId FailureDetector::lowest_trusted() const {
  for (const auto m : group_.members()) {
    if (m == host_.id() || !suspects(m)) return m;
  }
  return sim::kNoNode;
}

}  // namespace repli::gcs
