#include "gcs/abcast_sequencer.hh"

#include <algorithm>
#include <optional>

#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "util/log.hh"

namespace repli::gcs {

SequencerAbcast::SequencerAbcast(sim::Process& host, Group group, FailureDetector& fd,
                                 std::uint32_t channel, SequencerConfig config)
    : AtomicBroadcast(host, config.batch),
      host_(host),
      group_(std::move(group)),
      fd_(fd),
      config_(config),
      flood_(host, group_, channel, config.link) {
  flood_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) { on_flood(std::move(msg)); });
  fd_.on_suspect([this](sim::NodeId /*who*/) {
    // Wait out in-flight orders from the previous sequencer before taking
    // over; ordering decisions received meanwhile are adopted normally.
    // (Also guards against transient partitions looking like crashes: if
    // trust returns within the grace period, no takeover happens at all.)
    sequencing_allowed_at_ = std::max(sequencing_allowed_at_, host_.now() + config_.takeover_delay);
    host_.set_timer(config_.takeover_delay, [this] { sequence_backlog(); });
  });
}

bool SequencerAbcast::may_sequence() const {
  return current_sequencer() == host_.id() && host_.now() >= sequencing_allowed_at_;
}

sim::NodeId SequencerAbcast::current_sequencer() const { return fd_.lowest_trusted(); }

void SequencerAbcast::abcast_now(const wire::Message& msg) {
  AbData data;
  data.origin = host_.id();
  data.lseq = next_lseq_++;
  data.payload = wire::to_blob(msg);
  flood_.rbcast(data);
}

void SequencerAbcast::on_flood(wire::MessagePtr msg) {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  if (const auto data = wire::message_cast<AbData>(msg)) {
    const MsgId id{data->origin, data->lseq};
    const bool fresh = payloads_.emplace(id, data->payload).second;
    if (fresh) {
      // Remember the causal trace the payload arrived under: try_deliver
      // drains in gseq order, so this payload may be delivered later, from
      // an event belonging to a different broadcast's trace.
      trace_of_[id] = obs::current_context().trace_id;
      // Payload seen; the span stays open until its global order is known
      // and it is delivered — the width is the ordering latency.
      auto& tracer = host_.sim().tracer();
      const obs::SpanId span = tracer.begin(host_.id(), "gcs/abcast.order", host_.now());
      tracer.attr(span, "origin", std::to_string(id.first));
      tracer.attr(span, "lseq", std::to_string(id.second));
      order_spans_[id] = span;
      if (opt_deliver_) {
        unpack_into(data->origin, wire::from_blob(data->payload), opt_deliver_);
      }
    }
    if (may_sequence() && !ordered_.contains(id)) assign(id);
    try_deliver();
    return;
  }
  if (const auto order = wire::message_cast<AbOrder>(msg)) {
    apply_order(*order);
    return;
  }
  if (const auto batch = wire::message_cast<AbOrderBatch>(msg)) {
    for (const auto& order : batch->orders) apply_order(order);
    return;
  }
}

void SequencerAbcast::apply_order(const AbOrder& order) {
  const MsgId id{order.origin, order.lseq};
  assign_pending_.erase(id);
  if (ordered_.contains(id)) return;  // late duplicate order (failover race)
  if (order_.contains(order.gseq)) {
    // gseq collision from a failover race: the first-received order wins;
    // if we are the sequencer, give the losing message a fresh slot.
    if (may_sequence()) assign(id);
    return;
  }
  ordered_.insert(id);
  order_.emplace(order.gseq, id);
  next_gseq_ = std::max(next_gseq_, order.gseq + 1);
  try_deliver();
}

void SequencerAbcast::assign(const MsgId& id) {
  // A buffered-but-unflooded assignment is not in ordered_ yet; assigning
  // the id a second slot would leave a gseq hole that stalls delivery.
  if (assign_pending_.contains(id)) return;
  AbOrder order;
  order.origin = id.first;
  order.lseq = id.second;
  order.gseq = next_gseq_++;
  util::log_debug("abcast-seq ", host_.id(), ": ordering (", id.first, ",", id.second,
                  ") as gseq ", order.gseq);
  if (config_.batch.max_msgs <= 1) {
    flood_.rbcast(order);  // delivers to ourselves as well, updating state
    return;
  }
  // Batched ordering: gather assignments for a flush window and flood them
  // as one AbOrderBatch — one ordering flood amortized over the window.
  assign_pending_.insert(id);
  order_buffer_.push_back(order);
  if (static_cast<int>(order_buffer_.size()) >= config_.batch.max_msgs) {
    flush_orders();
    return;
  }
  if (order_buffer_.size() == 1) {
    const std::uint64_t epoch = order_epoch_;
    host_.set_timer(config_.batch.flush_window, [this, epoch] {
      if (epoch == order_epoch_ && !order_buffer_.empty()) flush_orders();
    });
  }
}

void SequencerAbcast::flush_orders() {
  ++order_epoch_;
  if (order_buffer_.size() == 1) {
    const AbOrder order = order_buffer_.front();
    order_buffer_.clear();
    flood_.rbcast(order);
    return;
  }
  AbOrderBatch batch;
  batch.orders = std::move(order_buffer_);
  order_buffer_.clear();
  host_.sim().metrics().histogram("gcs.abcast.order_batch_occupancy")
      .observe(static_cast<double>(batch.orders.size()));
  flood_.rbcast(batch);
}

void SequencerAbcast::sequence_backlog() {
  if (!may_sequence()) return;
  // New sequencer: order every known-but-unordered message deterministically.
  std::vector<MsgId> backlog;
  for (const auto& [id, payload] : payloads_) {
    if (!ordered_.contains(id)) backlog.push_back(id);
  }
  std::sort(backlog.begin(), backlog.end());
  for (const auto& id : backlog) assign(id);
}

void SequencerAbcast::try_deliver() {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  for (;;) {
    const auto oit = order_.find(next_deliver_);
    if (oit == order_.end()) return;
    const auto pit = payloads_.find(oit->second);
    if (pit == payloads_.end()) return;  // order known, payload still in flight
    const std::string payload = pit->second;
    const MsgId id = oit->second;
    const std::uint64_t gseq = next_deliver_;
    ++next_deliver_;
    // Deliver inside the payload's own causal trace — not whichever
    // broadcast's event happened to unblock the queue.
    std::optional<obs::ContextScope> scope;
    if (const auto tit = trace_of_.find(id); tit != trace_of_.end()) {
      if (tit->second != 0) scope.emplace(obs::TraceContext{tit->second, obs::kNoSpan, 0});
      trace_of_.erase(tit);
    }
    if (const auto sit = order_spans_.find(id); sit != order_spans_.end()) {
      auto& tracer = host_.sim().tracer();
      tracer.attr(sit->second, "gseq", std::to_string(gseq));
      tracer.end(sit->second, host_.now());
      const obs::Span* span = tracer.find(sit->second);
      host_.sim().metrics().histogram("gcs.abcast.order_latency_us")
          .observe(static_cast<double>(span->end - span->start));
      order_spans_.erase(sit);
    }
    host_.sim().metrics().incr("gcs.abcast.delivered");
    deliver_up(id.first, wire::from_blob(payload));
  }
}

bool SequencerAbcast::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  return flood_.handle(from, msg);
}

}  // namespace repli::gcs
