#include "gcs/fifo.hh"

#include <optional>

#include "obs/context.hh"

namespace repli::gcs {

FifoChannel::FifoChannel(sim::Process& host, std::uint32_t channel, LinkConfig link_config)
    : host_(host), link_(host, channel, link_config) {
  link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    const auto data = wire::message_cast<FifoData>(msg);
    if (!data) return;
    Incoming& in = in_[from];
    if (data->seq < in.next) return;  // stale duplicate
    in.buffer.emplace(data->seq, Stashed{data->payload, obs::current_context().trace_id});
    pump(from);
  });
}

void FifoChannel::send_fifo(sim::NodeId to, const wire::Message& msg) {
  FifoData data;
  data.channel = 0;  // stream identity is the (sender, link-channel) pair
  data.seq = ++next_out_[to];
  data.payload = wire::to_blob(msg);
  link_.send_reliable(to, data);
}

void FifoChannel::pump(sim::NodeId from) {
  Incoming& in = in_[from];
  for (auto it = in.buffer.begin(); it != in.buffer.end() && it->first == in.next;) {
    const Stashed stashed = std::move(it->second);
    it = in.buffer.erase(it);
    ++in.next;
    // A head-of-line-blocked message is released by a *later* message's
    // event; deliver it inside its own causal trace, not the unblocker's.
    std::optional<obs::ContextScope> scope;
    if (stashed.trace != 0 && stashed.trace != obs::current_context().trace_id) {
      scope.emplace(obs::TraceContext{stashed.trace, obs::kNoSpan, 0});
    }
    if (deliver_) deliver_(from, wire::from_blob(stashed.payload));
  }
}

bool FifoChannel::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  return link_.handle(from, msg);
}

}  // namespace repli::gcs
