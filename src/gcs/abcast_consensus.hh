// Consensus-based Atomic Broadcast (Chandra–Toueg reduction).
//
// Messages are disseminated by reliable flooding; undelivered messages are
// batched and agreed on through a sequence of consensus instances; each
// decided batch is delivered in a deterministic order. Inherits consensus's
// guarantees: safe under message loss, false suspicion, and a crashed
// minority — the "no assumptions beyond ◊S" counterpart to the sequencer.
#pragma once

#include <map>
#include <set>

#include "gcs/abcast.hh"
#include "gcs/consensus.hh"
#include "obs/trace.hh"

namespace repli::gcs {

/// A batch of messages proposed to / decided by one consensus instance.
struct AbBatch : wire::MessageBase<AbBatch> {
  static constexpr const char* kTypeName = "gcs.AbBatch";
  std::vector<AbData> entries;
  template <class Ar>
  void fields(Ar& ar) {
    ar(entries);
  }
};

class ConsensusAbcast : public AtomicBroadcast {
 public:
  /// Consumes flooding/link channels [channel, channel+3].
  ConsensusAbcast(sim::Process& host, Group group, FailureDetector& fd, std::uint32_t channel,
                  ConsensusConfig config = {});

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  std::uint64_t delivered_count() const { return delivered_.size(); }

 protected:
  void abcast_now(const wire::Message& msg) override;

 private:
  using MsgId = std::pair<std::int32_t, std::uint64_t>;

  void on_flood(wire::MessagePtr msg);
  void on_decide(std::uint64_t instance, const std::string& value);
  void apply_ready_decisions();
  void maybe_start_instance();

  sim::Process& host_;
  Group group_;
  Flooder flood_;
  Consensus consensus_;
  std::uint64_t next_lseq_ = 1;

  std::map<MsgId, std::string> pending_;           // received, not yet delivered
  std::set<MsgId> delivered_;
  std::uint64_t next_instance_ = 1;                // next instance to decide/apply
  std::map<std::uint64_t, std::string> decisions_; // decided, awaiting in-order apply
  bool proposed_current_ = false;
  std::map<MsgId, obs::SpanId> order_spans_;       // open gcs/abcast.order spans
};

}  // namespace repli::gcs
