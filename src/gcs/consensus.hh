// Chandra–Toueg ◊S consensus (rotating coordinator), multi-instance.
//
// Safety relies only on majority intersection, so it tolerates message loss
// (absorbed by ARQ links), false suspicions, and up to ⌈n/2⌉-1 crashes.
// Liveness needs the failure detector to eventually stop falsely suspecting
// a correct coordinator; round deadlines escalate to help that along.
//
// Supports *deferred initial values* (Défago/Schiper/Sergent, SRDS'98): a
// process may participate without proposing; a coordinator with no estimate
// asks `value_provider` for one only when its round actually starts. This is
// exactly the primitive semi-passive replication is built on — the provider
// is "execute the request and produce the update".
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "gcs/abcast.hh"
#include "gcs/fd.hh"
#include "gcs/flood.hh"
#include "gcs/group.hh"
#include "gcs/link.hh"
#include "obs/trace.hh"

namespace repli::gcs {

struct CsEstimate : wire::MessageBase<CsEstimate> {
  static constexpr const char* kTypeName = "gcs.CsEstimate";
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
  bool has_value = false;
  std::string estimate;
  std::uint64_t ts = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(instance);
    ar(round);
    ar(has_value);
    ar(estimate);
    ar(ts);
  }
};

struct CsProposal : wire::MessageBase<CsProposal> {
  static constexpr const char* kTypeName = "gcs.CsProposal";
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
  std::string value;
  template <class Ar>
  void fields(Ar& ar) {
    ar(instance);
    ar(round);
    ar(value);
  }
};

struct CsAck : wire::MessageBase<CsAck> {
  static constexpr const char* kTypeName = "gcs.CsAck";
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(instance);
    ar(round);
  }
};

struct CsDecide : wire::MessageBase<CsDecide> {
  static constexpr const char* kTypeName = "gcs.CsDecide";
  std::uint64_t instance = 0;
  std::string value;
  template <class Ar>
  void fields(Ar& ar) {
    ar(instance);
    ar(value);
  }
};

struct ConsensusConfig {
  sim::Time round_timeout = 20 * sim::kMsec;  // initial deadline, doubles per round
  sim::Time max_round_timeout = 500 * sim::kMsec;
  LinkConfig link;
  /// Submission batching for ConsensusAbcast (unused by bare Consensus).
  AbcastBatchConfig batch;
};

class Consensus : public Component {
 public:
  using DecideFn = std::function<void(std::uint64_t instance, const std::string& value)>;
  /// Produces a proposal on demand (deferred initial value). May return
  /// nullopt if no value can be produced yet; the round is then skipped.
  using ValueProvider = std::function<std::optional<std::string>(std::uint64_t instance)>;

  Consensus(sim::Process& host, Group group, FailureDetector& fd, std::uint32_t channel,
            ConsensusConfig config = {});

  void set_decide(DecideFn fn) { decide_ = std::move(fn); }
  void set_value_provider(ValueProvider fn) { provider_ = std::move(fn); }

  /// Proposes `value` for `instance`. Joins the instance if not yet active.
  void propose(std::uint64_t instance, std::string value);

  /// Joins `instance` without a value (deferred-initial-value mode).
  void participate(std::uint64_t instance);

  bool has_decided(std::uint64_t instance) const { return decided_.contains(instance); }
  const std::string& decision(std::uint64_t instance) const;

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

 private:
  struct Instance {
    std::uint64_t round = 0;
    bool has_estimate = false;
    std::string estimate;
    std::uint64_t ts = 0;
    bool acked_this_round = false;
    std::uint64_t deadline_epoch = 0;  // invalidates stale deadline timers
    // Coordinator-side collection for the current round.
    std::map<sim::NodeId, CsEstimate> estimates;
    std::set<sim::NodeId> acks;
    bool proposal_sent = false;
    obs::SpanId round_span = obs::kNoSpan;  // open gcs/consensus.round span
  };

  sim::NodeId coordinator_of(std::uint64_t round) const;
  Instance& instance(std::uint64_t k);
  void close_round_span(Instance& inst, const char* outcome);
  void begin_round(std::uint64_t k);
  void advance_round(std::uint64_t k);
  void arm_deadline(std::uint64_t k);
  void maybe_propose_as_coordinator(std::uint64_t k);
  void decide(std::uint64_t k, const std::string& value);

  sim::Process& host_;
  Group group_;
  FailureDetector& fd_;
  ConsensusConfig config_;
  ReliableLink link_;
  Flooder decide_flood_;
  DecideFn decide_;
  ValueProvider provider_;
  std::map<std::uint64_t, Instance> active_;
  std::map<std::uint64_t, std::string> decided_;
};

}  // namespace repli::gcs
