// FIFO reliable point-to-point channel: reliable delivery (via ARQ) plus
// per-sender in-order delivery. This is the "FIFO channel" primary-backup
// replication is described over in the paper (Section 3.3).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "gcs/link.hh"

namespace repli::gcs {

struct FifoData : wire::MessageBase<FifoData> {
  static constexpr const char* kTypeName = "gcs.FifoData";
  std::uint32_t channel = 0;
  std::uint64_t seq = 0;  // per (sender, receiver) stream position
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(channel);
    ar(seq);
    ar(payload);
  }
};

class FifoChannel : public Component {
 public:
  using DeliverFn = std::function<void(sim::NodeId from, wire::MessagePtr msg)>;

  FifoChannel(sim::Process& host, std::uint32_t channel, LinkConfig link_config = {});

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Sends `msg` to `to`; delivered reliably, in send order per sender.
  void send_fifo(sim::NodeId to, const wire::Message& msg);

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

 private:
  void pump(sim::NodeId from);

  sim::Process& host_;
  ReliableLink link_;
  DeliverFn deliver_;
  std::map<sim::NodeId, std::uint64_t> next_out_;  // per destination
  struct Stashed {
    std::string payload;
    std::uint64_t trace = 0;  // causal trace the message arrived under
  };
  struct Incoming {
    std::uint64_t next = 1;
    std::map<std::uint64_t, Stashed> buffer;  // out-of-order stash
  };
  std::map<sim::NodeId, Incoming> in_;
};

}  // namespace repli::gcs
