// Group membership with View Synchronous Broadcast (VSCAST).
//
// The group moves through a sequence of views v0, v1, ...; each view lists
// the members currently perceived correct. vscast() floods a message to the
// members of the current view; delivery happens in the view the message was
// sent in. When the failure detector suspects a view member, the flush
// coordinator (lowest trusted member) collects every member's set of
// messages delivered in the current view, re-disseminates the union, and
// installs the next view — so all survivors enter the new view having
// delivered exactly the same set of old-view messages (view synchrony).
//
// Crash of the coordinator mid-flush is healed by the next coordinator: a
// periodic check re-initiates the flush (with a higher view id) as long as
// the current view contains a suspected member. Joins are out of scope
// (crash-stop model; the paper's protocols only shrink groups).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gcs/fd.hh"
#include "gcs/group.hh"
#include "gcs/link.hh"

namespace repli::gcs {

struct View {
  std::uint64_t id = 0;
  std::vector<sim::NodeId> members;  // sorted

  bool contains(sim::NodeId n) const {
    return std::find(members.begin(), members.end(), n) != members.end();
  }
  /// The paper's primary convention: lowest member id of the view.
  sim::NodeId primary() const { return members.empty() ? sim::kNoNode : members.front(); }
};

struct VsData : wire::MessageBase<VsData> {
  static constexpr const char* kTypeName = "gcs.VsData";
  std::uint64_t view = 0;
  std::int32_t origin = 0;
  std::uint64_t seq = 0;
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(view);
    ar(origin);
    ar(seq);
    ar(payload);
  }
};

struct VsFlushReq : wire::MessageBase<VsFlushReq> {
  static constexpr const char* kTypeName = "gcs.VsFlushReq";
  std::uint64_t target_view = 0;
  std::vector<std::int32_t> members;
  template <class Ar>
  void fields(Ar& ar) {
    ar(target_view);
    ar(members);
  }
};

struct VsFlushAck : wire::MessageBase<VsFlushAck> {
  static constexpr const char* kTypeName = "gcs.VsFlushAck";
  std::uint64_t target_view = 0;
  std::uint64_t current_view = 0;
  std::vector<VsData> delivered;  // everything delivered in current view
  template <class Ar>
  void fields(Ar& ar) {
    ar(target_view);
    ar(current_view);
    ar(delivered);
  }
};

struct VsInstall : wire::MessageBase<VsInstall> {
  static constexpr const char* kTypeName = "gcs.VsInstall";
  std::uint64_t view = 0;
  std::vector<std::int32_t> members;
  std::vector<VsData> stabilized;  // union of survivors' deliveries
  template <class Ar>
  void fields(Ar& ar) {
    ar(view);
    ar(members);
    ar(stabilized);
  }
};

struct ViewGroupConfig {
  LinkConfig link;
  sim::Time flush_check_interval = 5 * sim::kMsec;  // coordinator self-healing poll
};

class ViewGroup : public Component {
 public:
  using DeliverFn = std::function<void(sim::NodeId origin, wire::MessagePtr msg)>;
  using ViewFn = std::function<void(const View& view)>;

  ViewGroup(sim::Process& host, Group initial, FailureDetector& fd, std::uint32_t channel,
            ViewGroupConfig config = {});

  void start() override;
  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  /// View-synchronously broadcasts `msg` to the current view (including
  /// self-delivery). Messages sent during a flush are queued and re-sent in
  /// the next view.
  void vscast(const wire::Message& msg);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void on_view(ViewFn fn) { on_view_ = std::move(fn); }

  const View& view() const { return view_; }
  bool flushing() const { return blocked_; }

 private:
  using MsgId = std::pair<std::int32_t, std::uint64_t>;  // (origin, seq)

  void accept(const VsData& data);
  void relay(const VsData& data);
  void check_membership();
  void initiate_flush();
  void maybe_complete_flush();
  void install(const VsInstall& inst);

  sim::Process& host_;
  FailureDetector& fd_;
  ViewGroupConfig config_;
  ReliableLink link_;
  DeliverFn deliver_;
  ViewFn on_view_;

  View view_;
  std::uint64_t next_seq_ = 1;
  // Per-origin FIFO delivery within the view (the paper's primary-backup
  // technique depends on FIFO from the primary, §3.3).
  std::map<std::int32_t, std::uint64_t> next_in_;            // origin -> next seq
  std::map<std::int32_t, std::map<std::uint64_t, VsData>> reorder_;
  std::set<MsgId> delivered_ids_;
  std::vector<VsData> delivered_log_;            // current view, for flush
  std::map<std::uint64_t, std::vector<VsData>> future_;  // msgs from views ahead of us

  bool blocked_ = false;
  std::vector<std::string> queued_;  // payloads deferred during flush

  // Coordinator-side flush state.
  std::uint64_t flush_target_ = 0;  // 0 = no flush in progress here
  std::vector<sim::NodeId> flush_members_;
  std::map<sim::NodeId, VsFlushAck> flush_acks_;
  VsInstall last_install_;  // replayed to coordinators that missed it
};

}  // namespace repli::gcs
