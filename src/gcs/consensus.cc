#include "gcs/consensus.hh"

#include <algorithm>

#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::gcs {

Consensus::Consensus(sim::Process& host, Group group, FailureDetector& fd, std::uint32_t channel,
                     ConsensusConfig config)
    : host_(host),
      group_(std::move(group)),
      fd_(fd),
      config_(config),
      link_(host, channel, config.link),
      decide_flood_(host, group_, channel + 1, config.link) {
  link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    const std::uint64_t k = [&]() -> std::uint64_t {
      if (const auto m = wire::message_cast<CsEstimate>(msg)) return m->instance;
      if (const auto m = wire::message_cast<CsProposal>(msg)) return m->instance;
      if (const auto m = wire::message_cast<CsAck>(msg)) return m->instance;
      return std::uint64_t(-1);
    }();
    if (k == std::uint64_t(-1) || decided_.contains(k)) return;
    Instance& inst = instance(k);

    if (const auto est = wire::message_cast<CsEstimate>(msg)) {
      // A peer is in a later round than us: catch up so the rotating
      // coordinator makes progress even when our deadline has not fired.
      if (est->round > inst.round) {
        inst.round = est->round;
        begin_round(k);
      }
      if (est->round == inst.round && coordinator_of(inst.round) == host_.id()) {
        inst.estimates.emplace(from, *est);
        maybe_propose_as_coordinator(k);
      }
      return;
    }
    if (const auto prop = wire::message_cast<CsProposal>(msg)) {
      if (prop->round < inst.round || inst.acked_this_round) return;
      if (prop->round > inst.round) {
        inst.round = prop->round;
        begin_round(k);
      }
      // Adopt the coordinator's proposal and ack it.
      inst.has_estimate = true;
      inst.estimate = prop->value;
      inst.ts = prop->round + 1;
      inst.acked_this_round = true;
      CsAck ack;
      ack.instance = k;
      ack.round = prop->round;
      link_.send_reliable(coordinator_of(prop->round), ack);
      return;
    }
    if (const auto ack = wire::message_cast<CsAck>(msg)) {
      if (ack->round != inst.round || coordinator_of(inst.round) != host_.id()) return;
      inst.acks.insert(from);
      if (inst.acks.size() >= group_.majority()) {
        util::ensure(inst.has_estimate, "Consensus: acked round without estimate");
        decide(k, inst.estimate);
      }
      return;
    }
  });

  decide_flood_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) {
    const auto dec = wire::message_cast<CsDecide>(msg);
    if (!dec || decided_.contains(dec->instance)) return;
    if (const auto it = active_.find(dec->instance); it != active_.end()) {
      close_round_span(it->second, "decided");
      host_.sim().metrics().histogram("gcs.consensus.rounds_to_decide")
          .observe(static_cast<double>(it->second.round + 1));
    }
    host_.sim().metrics().incr("gcs.consensus.decided");
    decided_.emplace(dec->instance, dec->value);
    active_.erase(dec->instance);
    if (decide_) decide_(dec->instance, dec->value);
  });
}

const std::string& Consensus::decision(std::uint64_t instance) const {
  const auto it = decided_.find(instance);
  util::ensure(it != decided_.end(), "Consensus::decision: not decided");
  return it->second;
}

sim::NodeId Consensus::coordinator_of(std::uint64_t round) const {
  return group_.members()[round % group_.size()];
}

Consensus::Instance& Consensus::instance(std::uint64_t k) {
  const auto it = active_.find(k);
  if (it != active_.end()) return it->second;
  auto& inst = active_[k];
  // Joining an instance lazily (triggered by a peer's message): enter round
  // 0 as a participant with no estimate.
  begin_round(k);
  return inst;
}

void Consensus::propose(std::uint64_t k, std::string value) {
  if (decided_.contains(k)) return;
  const auto it = active_.find(k);
  if (it == active_.end()) {
    Instance& inst = active_[k];
    inst.has_estimate = true;
    inst.estimate = std::move(value);
    inst.ts = 0;
    begin_round(k);
    return;
  }
  Instance& inst = it->second;
  if (inst.has_estimate) return;  // first proposal wins locally
  inst.has_estimate = true;
  inst.estimate = std::move(value);
  inst.ts = 0;
  // Late proposal into an already-active instance: surface the estimate to
  // the current coordinator without resetting round state.
  CsEstimate est;
  est.instance = k;
  est.round = inst.round;
  est.has_value = true;
  est.estimate = inst.estimate;
  est.ts = 0;
  const sim::NodeId coord = coordinator_of(inst.round);
  if (coord == host_.id()) {
    inst.estimates.insert_or_assign(host_.id(), est);
    maybe_propose_as_coordinator(k);
  } else {
    link_.send_reliable(coord, est);
  }
}

void Consensus::participate(std::uint64_t k) {
  if (decided_.contains(k)) return;
  instance(k);
}

void Consensus::close_round_span(Instance& inst, const char* outcome) {
  auto& tracer = host_.sim().tracer();
  const obs::Span* span = tracer.find(inst.round_span);
  if (span == nullptr || !span->open) return;
  tracer.attr(inst.round_span, "outcome", outcome);
  tracer.attr(inst.round_span, "estimates", std::to_string(inst.estimates.size()));
  tracer.attr(inst.round_span, "votes", std::to_string(inst.acks.size()));
  tracer.end(inst.round_span, host_.now());
}

void Consensus::begin_round(std::uint64_t k) {
  Instance& inst = active_[k];
  inst.acked_this_round = false;
  inst.estimates.clear();
  inst.acks.clear();
  inst.proposal_sent = false;

  close_round_span(inst, "superseded");
  auto& tracer = host_.sim().tracer();
  inst.round_span = tracer.begin(host_.id(), "gcs/consensus.round", host_.now());
  tracer.attr(inst.round_span, "instance", std::to_string(k));
  tracer.attr(inst.round_span, "round", std::to_string(inst.round));
  tracer.attr(inst.round_span, "coordinator", std::to_string(coordinator_of(inst.round)));
  host_.sim().metrics().incr("gcs.consensus.rounds");

  // Phase 1: send our estimate to the round coordinator.
  CsEstimate est;
  est.instance = k;
  est.round = inst.round;
  est.has_value = inst.has_estimate;
  est.estimate = inst.estimate;
  est.ts = inst.ts;
  const sim::NodeId coord = coordinator_of(inst.round);
  if (coord == host_.id()) {
    inst.estimates.emplace(host_.id(), est);
    maybe_propose_as_coordinator(k);
  } else {
    link_.send_reliable(coord, est);
  }
  arm_deadline(k);
}

void Consensus::arm_deadline(std::uint64_t k) {
  Instance& inst = active_[k];
  const std::uint64_t epoch = ++inst.deadline_epoch;
  const std::uint64_t round = inst.round;
  sim::Time timeout = config_.round_timeout;
  for (std::uint64_t r = 0; r < std::min<std::uint64_t>(round, 20); ++r) {
    timeout = std::min(timeout * 2, config_.max_round_timeout);
  }
  host_.set_timer(timeout, [this, k, epoch, round] {
    const auto it = active_.find(k);
    if (it == active_.end()) return;  // decided meanwhile
    Instance& cur = it->second;
    if (cur.deadline_epoch != epoch || cur.round != round) return;  // stale
    advance_round(k);
  });
}

void Consensus::advance_round(std::uint64_t k) {
  Instance& inst = active_[k];
  ++inst.round;
  host_.sim().metrics().incr("gcs.consensus.round_advances");
  util::log_debug("consensus ", host_.id(), ": instance ", k, " advancing to round ", inst.round);
  begin_round(k);
}

void Consensus::maybe_propose_as_coordinator(std::uint64_t k) {
  Instance& inst = active_[k];
  if (inst.proposal_sent) return;
  if (inst.estimates.size() < group_.majority()) return;

  // Pick the estimate with the highest timestamp; if none has a value,
  // fall back to the deferred-initial-value provider.
  const CsEstimate* best = nullptr;
  for (const auto& [node, est] : inst.estimates) {
    if (!est.has_value) continue;
    if (best == nullptr || est.ts > best->ts) best = &est;
  }
  std::string value;
  if (best != nullptr) {
    value = best->estimate;
  } else if (provider_) {
    const auto produced = provider_(k);
    if (!produced.has_value()) return;  // nothing to propose yet
    value = *produced;
  } else {
    return;  // cannot act as coordinator without any value
  }

  inst.proposal_sent = true;
  inst.has_estimate = true;
  inst.estimate = value;

  CsProposal prop;
  prop.instance = k;
  prop.round = inst.round;
  prop.value = value;
  for (const auto m : group_.members()) {
    if (m == host_.id()) continue;
    link_.send_reliable(m, prop);
  }
  // Coordinator adopts and acks its own proposal.
  inst.ts = inst.round + 1;
  inst.acked_this_round = true;
  inst.acks.insert(host_.id());
  if (inst.acks.size() >= group_.majority()) decide(k, inst.estimate);
}

void Consensus::decide(std::uint64_t k, const std::string& value) {
  if (decided_.contains(k)) return;
  CsDecide dec;
  dec.instance = k;
  dec.value = value;
  decide_flood_.rbcast(dec);  // flooding delivers locally too
}

bool Consensus::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  if (decide_flood_.handle(from, msg)) return true;
  return link_.handle(from, msg);
}

}  // namespace repli::gcs
