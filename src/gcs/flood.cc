#include "gcs/flood.hh"

namespace repli::gcs {

Flooder::Flooder(sim::Process& host, Group group, std::uint32_t channel, LinkConfig link_config)
    : host_(host),
      group_(std::move(group)),
      channel_(channel),
      link_(host, channel, link_config) {
  link_.set_deliver([this](sim::NodeId /*from*/, wire::MessagePtr msg) {
    const auto data = wire::message_cast<FloodData>(msg);
    if (data) accept(*data);
  });
}

void Flooder::rbcast(const wire::Message& msg) {
  FloodData data;
  data.channel = channel_;
  data.origin = host_.id();
  data.seq = next_seq_++;
  data.payload = wire::to_blob(msg);
  accept(data);
}

void Flooder::accept(const FloodData& data) {
  if (!seen_.insert({data.origin, data.seq}).second) return;
  // Relay first, then deliver: if we deliver, every correct process will
  // eventually receive the relays (uniform agreement under crash-stop).
  disseminate(data, host_.id());
  if (deliver_) deliver_(data.origin, wire::from_blob(data.payload));
}

void Flooder::disseminate(const FloodData& data, sim::NodeId skip) {
  for (const auto m : group_.members()) {
    if (m == skip) continue;
    if (m == data.origin) continue;  // the origin has it by construction
    link_.send_reliable(m, data);
  }
}

bool Flooder::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  return link_.handle(from, msg);
}

}  // namespace repli::gcs
