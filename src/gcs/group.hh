// Static group configuration: the fixed universe of replica processes a
// protocol instance runs over. Dynamic membership on top of this lives in
// gcs::ViewGroup.
#pragma once

#include <algorithm>
#include <vector>

#include "sim/time.hh"
#include "util/assert.hh"

namespace repli::gcs {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<sim::NodeId> members) : members_(std::move(members)) {
    std::sort(members_.begin(), members_.end());
    util::ensure(std::adjacent_find(members_.begin(), members_.end()) == members_.end(),
                 "Group: duplicate member");
  }

  const std::vector<sim::NodeId>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool contains(sim::NodeId id) const {
    return std::binary_search(members_.begin(), members_.end(), id);
  }

  /// Members other than `me`.
  std::vector<sim::NodeId> others(sim::NodeId me) const {
    std::vector<sim::NodeId> out;
    for (const auto m : members_) {
      if (m != me) out.push_back(m);
    }
    return out;
  }

  /// Smallest majority (⌊n/2⌋+1).
  std::size_t majority() const { return members_.size() / 2 + 1; }

 private:
  std::vector<sim::NodeId> members_;
};

}  // namespace repli::gcs
