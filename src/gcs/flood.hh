// Reliable broadcast by flooding (R-deliver despite sender crash mid-send):
// the first time a process receives a broadcast it relays it to every other
// group member before delivering, so if any correct process delivers, all
// correct processes eventually deliver. Point-to-point loss is absorbed by
// an internal ReliableLink.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <string>

#include "gcs/group.hh"
#include "gcs/link.hh"

namespace repli::gcs {

struct FloodData : wire::MessageBase<FloodData> {
  static constexpr const char* kTypeName = "gcs.FloodData";
  std::uint32_t channel = 0;
  std::int32_t origin = 0;
  std::uint64_t seq = 0;
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(channel);
    ar(origin);
    ar(seq);
    ar(payload);
  }
};

class Flooder : public Component {
 public:
  /// Delivery callback: `origin` is the broadcasting process.
  using DeliverFn = std::function<void(sim::NodeId origin, wire::MessagePtr msg)>;

  Flooder(sim::Process& host, Group group, std::uint32_t channel, LinkConfig link_config = {});

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Reliably broadcasts `msg` to the whole group (including self).
  void rbcast(const wire::Message& msg);

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

 private:
  void disseminate(const FloodData& data, sim::NodeId skip);
  void accept(const FloodData& data);

  sim::Process& host_;
  Group group_;
  std::uint32_t channel_;
  ReliableLink link_;
  DeliverFn deliver_;
  std::uint64_t next_seq_ = 1;
  std::set<std::pair<std::int32_t, std::uint64_t>> seen_;
};

}  // namespace repli::gcs
