#include "gcs/abcast.hh"

#include "obs/profile.hh"
#include "sim/simulator.hh"

namespace repli::gcs {

AtomicBroadcast::AtomicBroadcast(sim::Process& host, AbcastBatchConfig batch)
    : abcast_host_(host), batch_(batch) {}

void AtomicBroadcast::abcast(const wire::Message& msg) {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  if (batch_.max_msgs <= 1) {
    abcast_now(msg);
    return;
  }
  buffered_.push_back(wire::to_blob(msg));
  if (static_cast<int>(buffered_.size()) >= batch_.max_msgs) {
    flush_batch();
    return;
  }
  if (buffered_.size() == 1) {
    const std::uint64_t epoch = batch_epoch_;
    abcast_host_.set_timer(batch_.flush_window, [this, epoch] {
      if (epoch == batch_epoch_ && !buffered_.empty()) flush_batch();
    });
  }
}

void AtomicBroadcast::flush_batch() {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  ++batch_epoch_;
  AbEnvelope env;
  env.payloads = std::move(buffered_);
  buffered_.clear();
  const auto occupancy = static_cast<double>(env.payloads.size());
  abcast_host_.sim().metrics().histogram("gcs.abcast.batch_occupancy").observe(occupancy);
  abcast_host_.sim().tracer().instant(
      abcast_host_.id(), "gcs/abcast.batch_flush", abcast_host_.now(), "",
      obs::Attrs{{"occupancy", std::to_string(env.payloads.size())}});
  if (env.payloads.size() == 1) {
    // A lone payload skips the envelope: same bytes on the wire as an
    // unbatched submission (only the flush-window delay differs).
    abcast_now(*wire::from_blob(env.payloads.front()));
    return;
  }
  abcast_now(env);
}

void AtomicBroadcast::unpack_into(sim::NodeId origin, const wire::MessagePtr& msg,
                                  const DeliverFn& fn) {
  if (!fn) return;
  if (const auto env = wire::message_cast<AbEnvelope>(msg)) {
    for (const auto& blob : env->payloads) {
      const auto payload = wire::from_blob(blob);
      obs::ProfScope prof(obs::CostCenter::Technique);
      fn(origin, payload);
    }
    return;
  }
  obs::ProfScope prof(obs::CostCenter::Technique);
  fn(origin, msg);
}

void AtomicBroadcast::deliver_up(sim::NodeId origin, const wire::MessagePtr& msg) {
  unpack_into(origin, msg, deliver_);
}

}  // namespace repli::gcs
