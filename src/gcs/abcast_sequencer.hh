// Fixed-sequencer Atomic Broadcast.
//
// Data messages are disseminated by reliable flooding; the sequencer (the
// lowest non-suspected group member) assigns global sequence numbers and
// floods the ordering decisions; everyone delivers in global-sequence order
// once both the data and its order are known. On sequencer crash the next
// member takes over and sequences the backlog.
//
// This variant is fast (one ordering message per broadcast) but, like its
// real-world counterparts (ISIS-style sequencers), it assumes an accurate
// failure detector: two live sequencers under false suspicion could order
// divergently. The consensus-based variant makes no such assumption.
#pragma once

#include <map>
#include <set>

#include "gcs/abcast.hh"
#include "gcs/fd.hh"
#include "gcs/flood.hh"
#include "gcs/group.hh"
#include "obs/context.hh"
#include "obs/trace.hh"

namespace repli::gcs {

struct AbOrder : wire::MessageBase<AbOrder> {
  static constexpr const char* kTypeName = "gcs.AbOrder";
  std::int32_t origin = 0;
  std::uint64_t lseq = 0;
  std::uint64_t gseq = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(origin);
    ar(lseq);
    ar(gseq);
  }
};

/// Several ordering decisions in one flood: with batching enabled the
/// sequencer gathers assignments for a flush window and ships them together
/// (the order-side half of the batching fast path).
struct AbOrderBatch : wire::MessageBase<AbOrderBatch> {
  static constexpr const char* kTypeName = "gcs.AbOrderBatch";
  std::vector<AbOrder> orders;
  template <class Ar>
  void fields(Ar& ar) {
    ar(orders);
  }
};

struct SequencerConfig {
  LinkConfig link;
  /// Grace period between suspecting the sequencer and sequencing the
  /// backlog, sized to let in-flight orders from the previous sequencer
  /// settle (timed-asynchronous assumption; see file header).
  sim::Time takeover_delay = 50 * sim::kMsec;
  /// Submission batching (see AtomicBroadcast); also enables batching of
  /// the sequencer's ordering decisions into AbOrderBatch floods.
  AbcastBatchConfig batch;
};

class SequencerAbcast : public AtomicBroadcast {
 public:
  /// Consumes flooding channel `channel` (and `channel`+1 internally).
  SequencerAbcast(sim::Process& host, Group group, FailureDetector& fd, std::uint32_t channel,
                  SequencerConfig config = {});

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  /// Optimistic delivery (Kemme/Pedone/Alonso/Schiper [KPAS99a]): fires as
  /// soon as a broadcast's payload arrives, *before* its place in the total
  /// order is known. On a LAN the arrival order usually equals the final
  /// order, so a consumer can overlap processing with the ordering round
  /// and merely validate at final delivery.
  void set_opt_deliver(DeliverFn fn) { opt_deliver_ = std::move(fn); }

  sim::NodeId current_sequencer() const;
  std::uint64_t delivered_count() const { return next_deliver_ - 1; }

 protected:
  void abcast_now(const wire::Message& msg) override;

 private:
  using MsgId = std::pair<std::int32_t, std::uint64_t>;

  void on_flood(wire::MessagePtr msg);
  void sequence_backlog();
  void assign(const MsgId& id);
  void apply_order(const AbOrder& order);
  void flush_orders();
  void try_deliver();
  /// True when this node is the sequencer *and* its takeover grace period
  /// has elapsed (in-flight orders from the predecessor have settled).
  bool may_sequence() const;

  sim::Process& host_;
  Group group_;
  FailureDetector& fd_;
  SequencerConfig config_;
  Flooder flood_;
  std::uint64_t next_lseq_ = 1;

  std::map<MsgId, std::string> payloads_;     // everything received
  std::set<MsgId> ordered_;                   // ids that have a gseq
  std::map<std::uint64_t, MsgId> order_;      // gseq -> id
  std::uint64_t next_deliver_ = 1;            // next gseq to deliver
  std::uint64_t next_gseq_ = 1;               // sequencer-side allocator
  sim::Time sequencing_allowed_at_ = 0;       // takeover grace deadline
  DeliverFn opt_deliver_;
  std::map<MsgId, obs::SpanId> order_spans_;  // open gcs/abcast.order spans
  std::map<MsgId, std::uint64_t> trace_of_;   // causal trace each payload arrived under
  std::vector<AbOrder> order_buffer_;         // assignments awaiting a batched flood
  std::set<MsgId> assign_pending_;            // ids in order_buffer_ (double-assign guard)
  std::uint64_t order_epoch_ = 0;             // invalidates stale order-flush timers
};

}  // namespace repli::gcs
