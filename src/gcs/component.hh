// Protocol components.
//
// Group-communication layers (failure detector, reliable links, broadcast
// primitives, ...) are components embedded in a host process. The host
// forwards incoming messages to its components in registration order; a
// component consumes the messages of its own wire types and ignores the
// rest. Layers stack by composition: e.g. the consensus-based ABCAST owns a
// Flooder and a Consensus component and registers all three with the host.
#pragma once

#include <vector>

#include "obs/profile.hh"
#include "sim/process.hh"

namespace repli::gcs {

class Component {
 public:
  virtual ~Component() = default;

  /// Offers a delivered message; returns true if this component consumed it.
  virtual bool handle(sim::NodeId from, const wire::MessagePtr& msg) = 0;

  /// Called when the host process starts.
  virtual void start() {}
};

/// A process that routes deliveries through registered components. Protocol
/// processes (replicas, clients) typically derive from this and register
/// their stack in the constructor.
class ComponentHost : public sim::Process {
 public:
  using Process::Process;

  void add_component(Component& c) { components_.push_back(&c); }

  void start() override {
    for (Component* c : components_) c->start();
  }

  void on_message(sim::NodeId from, wire::MessagePtr msg) override {
    for (Component* c : components_) {
      if (c->handle(from, msg)) return;
    }
    obs::ProfScope prof(obs::CostCenter::Technique);
    on_unhandled(from, std::move(msg));
  }

 protected:
  /// Messages no component claimed; hosts override for their own traffic.
  virtual void on_unhandled(sim::NodeId /*from*/, wire::MessagePtr /*msg*/) {}

 private:
  std::vector<Component*> components_;
};

}  // namespace repli::gcs
