#include "gcs/view.hh"

#include <algorithm>

#include "util/assert.hh"
#include "util/log.hh"

namespace repli::gcs {

ViewGroup::ViewGroup(sim::Process& host, Group initial, FailureDetector& fd,
                     std::uint32_t channel, ViewGroupConfig config)
    : host_(host), fd_(fd), config_(config), link_(host, channel, config.link) {
  view_.id = 0;
  view_.members = initial.members();
  util::ensure(view_.contains(host_.id()), "ViewGroup: host not in initial membership");

  link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    if (const auto data = wire::message_cast<VsData>(msg)) {
      accept(*data);
      return;
    }
    if (const auto req = wire::message_cast<VsFlushReq>(msg)) {
      if (req->target_view <= view_.id) {
        // Stale attempt from a coordinator behind us (it missed a previous
        // install): help it catch up instead of leaving it stalled.
        if (last_install_.view >= req->target_view) {
          link_.send_reliable(from, last_install_);
        }
        return;
      }
      blocked_ = true;
      VsFlushAck ack;
      ack.target_view = req->target_view;
      ack.current_view = view_.id;
      ack.delivered = delivered_log_;
      link_.send_reliable(from, ack);
      return;
    }
    if (const auto ack = wire::message_cast<VsFlushAck>(msg)) {
      if (ack->target_view != flush_target_) return;  // a flush we are not running
      flush_acks_.emplace(from, *ack);
      maybe_complete_flush();
      return;
    }
    if (const auto inst = wire::message_cast<VsInstall>(msg)) {
      install(*inst);
      return;
    }
  });
}

void ViewGroup::start() {
  check_membership();
  if (on_view_) on_view_(view_);
}

void ViewGroup::vscast(const wire::Message& msg) {
  const std::string payload = wire::to_blob(msg);
  if (blocked_) {
    queued_.push_back(payload);
    return;
  }
  VsData data;
  data.view = view_.id;
  data.origin = host_.id();
  data.seq = next_seq_++;
  data.payload = payload;
  accept(data);  // self-delivery + relay to the rest of the view
}

void ViewGroup::accept(const VsData& data) {
  if (data.view < view_.id) return;  // old-view message: dropped (see header)
  if (data.view > view_.id) {
    future_[data.view].push_back(data);
    return;
  }
  // Once we have acked a flush our delivered-log snapshot is frozen:
  // delivering more current-view messages here would break view synchrony
  // (they would be missing from the stabilized union). If any survivor
  // delivered this message before blocking, the install re-delivers it.
  if (blocked_) return;
  const MsgId id{data.origin, data.seq};
  if (delivered_ids_.contains(id)) return;
  // FIFO per origin: stash and deliver in sequence order.
  auto& next = next_in_.try_emplace(data.origin, 1).first->second;
  if (data.seq < next) return;  // stale duplicate
  reorder_[data.origin].emplace(data.seq, data);
  auto& pending = reorder_[data.origin];
  while (!pending.empty() && pending.begin()->first == next && !blocked_) {
    const VsData ready = pending.begin()->second;
    pending.erase(pending.begin());
    ++next;
    delivered_ids_.insert({ready.origin, ready.seq});
    delivered_log_.push_back(ready);
    relay(ready);
    if (deliver_) deliver_(ready.origin, wire::from_blob(ready.payload));
  }
}

void ViewGroup::relay(const VsData& data) {
  for (const auto m : view_.members) {
    if (m == host_.id() || m == data.origin) continue;
    link_.send_reliable(m, data);
  }
}

void ViewGroup::check_membership() {
  // Self-healing flush initiation: whoever is the lowest trusted member of
  // the current view keeps (re)starting the flush while a suspected member
  // remains in the view. This survives coordinator crashes mid-flush.
  host_.set_timer(config_.flush_check_interval, [this] { check_membership(); });

  bool any_suspected = false;
  sim::NodeId lowest_trusted = sim::kNoNode;
  for (const auto m : view_.members) {
    if (m == host_.id() || !fd_.suspects(m)) {
      if (lowest_trusted == sim::kNoNode) lowest_trusted = m;
    } else {
      any_suspected = true;
    }
  }
  if (!any_suspected || lowest_trusted != host_.id()) return;
  if (flush_target_ != 0) return;  // flush already in progress here
  initiate_flush();
}

void ViewGroup::initiate_flush() {
  flush_target_ = view_.id + 1;
  flush_members_.clear();
  for (const auto m : view_.members) {
    if (m == host_.id() || !fd_.suspects(m)) flush_members_.push_back(m);
  }
  flush_acks_.clear();
  blocked_ = true;
  util::log_debug("vs ", host_.id(), ": flushing towards view ", flush_target_);

  VsFlushReq req;
  req.target_view = flush_target_;
  req.members.assign(flush_members_.begin(), flush_members_.end());
  for (const auto m : flush_members_) {
    if (m == host_.id()) {
      VsFlushAck mine;
      mine.target_view = flush_target_;
      mine.current_view = view_.id;
      mine.delivered = delivered_log_;
      flush_acks_.emplace(host_.id(), std::move(mine));
    } else {
      link_.send_reliable(m, req);
    }
  }
  maybe_complete_flush();
}

void ViewGroup::maybe_complete_flush() {
  if (flush_target_ == 0) return;
  // A member that crashed during the flush is dropped from the target view
  // on the next self-healing pass; here we wait for everyone proposed.
  for (const auto m : flush_members_) {
    if (!flush_acks_.contains(m)) {
      // If a proposed member is now suspected, restart with a smaller view.
      if (fd_.suspects(m)) {
        flush_target_ = 0;
        initiate_flush();
      }
      return;
    }
  }

  VsInstall inst;
  inst.view = flush_target_;
  inst.members.assign(flush_members_.begin(), flush_members_.end());
  std::set<MsgId> seen;
  for (const auto& [node, ack] : flush_acks_) {
    for (const auto& data : ack.delivered) {
      if (seen.insert({data.origin, data.seq}).second) inst.stabilized.push_back(data);
    }
  }
  std::sort(inst.stabilized.begin(), inst.stabilized.end(),
            [](const VsData& a, const VsData& b) {
              return std::tie(a.origin, a.seq) < std::tie(b.origin, b.seq);
            });
  for (const auto m : flush_members_) {
    if (m != host_.id()) link_.send_reliable(m, inst);
  }
  install(inst);
}

void ViewGroup::install(const VsInstall& inst) {
  if (inst.view <= view_.id) return;  // stale
  // View synchrony: deliver every stabilized old-view message we have not
  // delivered ourselves before entering the new view.
  for (const auto& data : inst.stabilized) {
    const MsgId id{data.origin, data.seq};
    if (!delivered_ids_.insert(id).second) continue;
    if (deliver_) deliver_(data.origin, wire::from_blob(data.payload));
  }

  view_.id = inst.view;
  view_.members.assign(inst.members.begin(), inst.members.end());
  std::sort(view_.members.begin(), view_.members.end());
  last_install_ = inst;
  next_seq_ = 1;
  delivered_ids_.clear();
  delivered_log_.clear();
  next_in_.clear();
  reorder_.clear();
  blocked_ = false;
  flush_target_ = 0;
  flush_acks_.clear();
  util::log_debug("vs ", host_.id(), ": installed view ", view_.id);
  if (on_view_) on_view_(view_);

  // Messages that raced ahead of our install.
  if (const auto it = future_.find(view_.id); it != future_.end()) {
    const auto msgs = it->second;
    future_.erase(it);
    for (const auto& data : msgs) accept(data);
  }
  future_.erase(future_.begin(), future_.lower_bound(view_.id));

  // Re-send what was queued during the flush.
  const auto queued = std::move(queued_);
  queued_.clear();
  for (const auto& payload : queued) {
    VsData data;
    data.view = view_.id;
    data.origin = host_.id();
    data.seq = next_seq_++;
    data.payload = payload;
    accept(data);
  }
}

bool ViewGroup::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  return link_.handle(from, msg);
}

}  // namespace repli::gcs
