#include "gcs/abcast_consensus.hh"

#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::gcs {

ConsensusAbcast::ConsensusAbcast(sim::Process& host, Group group, FailureDetector& fd,
                                 std::uint32_t channel, ConsensusConfig config)
    : AtomicBroadcast(host, config.batch),
      host_(host),
      group_(std::move(group)),
      flood_(host, group_, channel, config.link),
      consensus_(host, group_, fd, channel + 2, config) {
  flood_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) { on_flood(std::move(msg)); });
  consensus_.set_decide(
      [this](std::uint64_t instance, const std::string& value) { on_decide(instance, value); });
}

void ConsensusAbcast::abcast_now(const wire::Message& msg) {
  AbData data;
  data.origin = host_.id();
  data.lseq = next_lseq_++;
  data.payload = wire::to_blob(msg);
  flood_.rbcast(data);  // delivers locally too, which pends + proposes
}

void ConsensusAbcast::on_flood(wire::MessagePtr msg) {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  const auto data = wire::message_cast<AbData>(msg);
  if (!data) return;
  const MsgId id{data->origin, data->lseq};
  if (delivered_.contains(id)) return;
  if (pending_.emplace(id, data->payload).second) {
    auto& tracer = host_.sim().tracer();
    const obs::SpanId span = tracer.begin(host_.id(), "gcs/abcast.order", host_.now());
    tracer.attr(span, "origin", std::to_string(id.first));
    tracer.attr(span, "lseq", std::to_string(id.second));
    order_spans_[id] = span;
  }
  maybe_start_instance();
}

void ConsensusAbcast::maybe_start_instance() {
  if (pending_.empty() || proposed_current_) return;
  AbBatch batch;
  for (const auto& [id, payload] : pending_) {
    AbData entry;
    entry.origin = id.first;
    entry.lseq = id.second;
    entry.payload = payload;
    batch.entries.push_back(std::move(entry));
  }
  proposed_current_ = true;
  consensus_.propose(next_instance_, wire::to_blob(batch));
}

void ConsensusAbcast::on_decide(std::uint64_t instance, const std::string& value) {
  decisions_.emplace(instance, value);
  apply_ready_decisions();
}

void ConsensusAbcast::apply_ready_decisions() {
  obs::ProfScope prof(obs::CostCenter::GcsAbcast);
  for (;;) {
    const auto it = decisions_.find(next_instance_);
    if (it == decisions_.end()) break;
    const auto batch = wire::message_cast<AbBatch>(wire::from_blob(it->second));
    util::ensure(batch != nullptr, "ConsensusAbcast: decision is not an AbBatch");
    // Batch entries are already deterministically ordered: proposals are
    // built from a std::map keyed by MsgId, and consensus picks one
    // proposal verbatim.
    for (const auto& entry : batch->entries) {
      const MsgId id{entry.origin, entry.lseq};
      if (!delivered_.insert(id).second) continue;  // in an earlier batch too
      pending_.erase(id);
      if (const auto sit = order_spans_.find(id); sit != order_spans_.end()) {
        auto& tracer = host_.sim().tracer();
        tracer.attr(sit->second, "instance", std::to_string(next_instance_));
        tracer.end(sit->second, host_.now());
        const obs::Span* span = tracer.find(sit->second);
        host_.sim().metrics().histogram("gcs.abcast.order_latency_us")
            .observe(static_cast<double>(span->end - span->start));
        order_spans_.erase(sit);
      }
      host_.sim().metrics().incr("gcs.abcast.delivered");
      deliver_up(entry.origin, wire::from_blob(entry.payload));
    }
    decisions_.erase(it);
    ++next_instance_;
    proposed_current_ = false;
  }
  maybe_start_instance();
}

bool ConsensusAbcast::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  if (flood_.handle(from, msg)) return true;
  return consensus_.handle(from, msg);
}

}  // namespace repli::gcs
