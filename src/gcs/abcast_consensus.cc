#include "gcs/abcast_consensus.hh"

#include "util/assert.hh"
#include "util/log.hh"

namespace repli::gcs {

ConsensusAbcast::ConsensusAbcast(sim::Process& host, Group group, FailureDetector& fd,
                                 std::uint32_t channel, ConsensusConfig config)
    : host_(host),
      group_(std::move(group)),
      flood_(host, group_, channel, config.link),
      consensus_(host, group_, fd, channel + 2, config) {
  flood_.set_deliver([this](sim::NodeId /*origin*/, wire::MessagePtr msg) { on_flood(std::move(msg)); });
  consensus_.set_decide(
      [this](std::uint64_t instance, const std::string& value) { on_decide(instance, value); });
}

void ConsensusAbcast::abcast(const wire::Message& msg) {
  AbData data;
  data.origin = host_.id();
  data.lseq = next_lseq_++;
  data.payload = wire::to_blob(msg);
  flood_.rbcast(data);  // delivers locally too, which pends + proposes
}

void ConsensusAbcast::on_flood(wire::MessagePtr msg) {
  const auto data = wire::message_cast<AbData>(msg);
  if (!data) return;
  const MsgId id{data->origin, data->lseq};
  if (delivered_.contains(id)) return;
  pending_.emplace(id, data->payload);
  maybe_start_instance();
}

void ConsensusAbcast::maybe_start_instance() {
  if (pending_.empty() || proposed_current_) return;
  AbBatch batch;
  for (const auto& [id, payload] : pending_) {
    AbData entry;
    entry.origin = id.first;
    entry.lseq = id.second;
    entry.payload = payload;
    batch.entries.push_back(std::move(entry));
  }
  proposed_current_ = true;
  consensus_.propose(next_instance_, wire::to_blob(batch));
}

void ConsensusAbcast::on_decide(std::uint64_t instance, const std::string& value) {
  decisions_.emplace(instance, value);
  apply_ready_decisions();
}

void ConsensusAbcast::apply_ready_decisions() {
  for (;;) {
    const auto it = decisions_.find(next_instance_);
    if (it == decisions_.end()) break;
    const auto batch = wire::message_cast<AbBatch>(wire::from_blob(it->second));
    util::ensure(batch != nullptr, "ConsensusAbcast: decision is not an AbBatch");
    // Batch entries are already deterministically ordered: proposals are
    // built from a std::map keyed by MsgId, and consensus picks one
    // proposal verbatim.
    for (const auto& entry : batch->entries) {
      const MsgId id{entry.origin, entry.lseq};
      if (!delivered_.insert(id).second) continue;  // in an earlier batch too
      pending_.erase(id);
      if (deliver_) deliver_(entry.origin, wire::from_blob(entry.payload));
    }
    decisions_.erase(it);
    ++next_instance_;
    proposed_current_ = false;
  }
  maybe_start_instance();
}

bool ConsensusAbcast::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  if (flood_.handle(from, msg)) return true;
  return consensus_.handle(from, msg);
}

}  // namespace repli::gcs
