// Atomic Broadcast (total-order broadcast) interface, with the common wire
// records shared by its implementations. Guarantees: if one group member
// delivers m, all correct members deliver m (agreement), and any two members
// deliver common messages in the same order (total order).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gcs/component.hh"

namespace repli::gcs {

/// Application payload wrapper disseminated by ABCAST implementations.
struct AbData : wire::MessageBase<AbData> {
  static constexpr const char* kTypeName = "gcs.AbData";
  std::int32_t origin = 0;
  std::uint64_t lseq = 0;  // origin-local sequence number (message identity)
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(origin);
    ar(lseq);
    ar(payload);
  }
};

class AtomicBroadcast : public Component {
 public:
  /// Delivery callback: `origin` is the node that abcast the message.
  using DeliverFn = std::function<void(sim::NodeId origin, wire::MessagePtr msg)>;

  virtual void abcast(const wire::Message& msg) = 0;
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

 protected:
  DeliverFn deliver_;
};

}  // namespace repli::gcs
