// Atomic Broadcast (total-order broadcast) interface, with the common wire
// records shared by its implementations. Guarantees: if one group member
// delivers m, all correct members deliver m (agreement), and any two members
// deliver common messages in the same order (total order).
//
// The base class also owns the submission-side *batcher*: with batching
// enabled (max_msgs > 1), concurrently-submitted payloads are coalesced
// into one AbEnvelope that goes through the ordering protocol as a single
// totally-ordered message, amortizing the ordering round over the whole
// batch. Delivery unpacks the envelope, so consumers always see individual
// payloads in order. With max_msgs <= 1 (the default) abcast() forwards
// straight to the implementation — the byte-identical unbatched path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gcs/component.hh"

namespace repli::gcs {

/// Application payload wrapper disseminated by ABCAST implementations.
struct AbData : wire::MessageBase<AbData> {
  static constexpr const char* kTypeName = "gcs.AbData";
  std::int32_t origin = 0;
  std::uint64_t lseq = 0;  // origin-local sequence number (message identity)
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(origin);
    ar(lseq);
    ar(payload);
  }
};

/// Several application payloads riding one totally-ordered broadcast: the
/// unit the submission batcher hands to the ordering protocol.
struct AbEnvelope : wire::MessageBase<AbEnvelope> {
  static constexpr const char* kTypeName = "gcs.AbEnvelope";
  std::vector<std::string> payloads;  // to_blob'ed application messages
  template <class Ar>
  void fields(Ar& ar) {
    ar(payloads);
  }
};

/// Submission-side batching knobs. max_msgs <= 1 disables batching (every
/// abcast() goes straight down, no envelope, no timer). With batching on, a
/// partially-filled batch is flushed flush_window after its first payload.
struct AbcastBatchConfig {
  int max_msgs = 1;
  sim::Time flush_window = 200 * sim::kUsec;
};

class AtomicBroadcast : public Component {
 public:
  /// Delivery callback: `origin` is the node that abcast the message.
  using DeliverFn = std::function<void(sim::NodeId origin, wire::MessagePtr msg)>;

  /// Submits `msg` to the total order. With batching enabled the payload may
  /// be buffered briefly and ordered together with other submissions.
  void abcast(const wire::Message& msg);

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  const AbcastBatchConfig& batch_config() const { return batch_; }

 protected:
  AtomicBroadcast(sim::Process& host, AbcastBatchConfig batch);

  /// Implementation hook: hands one message (possibly an AbEnvelope) to the
  /// ordering protocol.
  virtual void abcast_now(const wire::Message& msg) = 0;

  /// Invokes `fn` once per application payload: envelopes are unpacked in
  /// submission order, everything else passes through unchanged. Used for
  /// final delivery and for optimistic-delivery hooks alike.
  static void unpack_into(sim::NodeId origin, const wire::MessagePtr& msg, const DeliverFn& fn);

  /// Delivers `msg` upward through the registered callback (unpacking
  /// envelopes).
  void deliver_up(sim::NodeId origin, const wire::MessagePtr& msg);

  sim::Process& abcast_host_;

 private:
  void flush_batch();

  AbcastBatchConfig batch_;
  std::vector<std::string> buffered_;  // to_blob'ed payloads awaiting flush
  std::uint64_t batch_epoch_ = 0;      // invalidates stale flush timers
  DeliverFn deliver_;
};

}  // namespace repli::gcs
