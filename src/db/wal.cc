#include "db/wal.hh"

#include <map>

namespace repli::db {

std::uint64_t Wal::record_bytes(const WalRecord& rec) {
  // lsn + type tag + string payloads; close enough to the wire encoding for
  // volume accounting.
  return 9 + rec.txn.size() + rec.key.size() + rec.value.size();
}

std::uint64_t Wal::append(WalType type, const std::string& txn, Key key, Value value) {
  WalRecord rec;
  rec.lsn = next_lsn_++;
  rec.type = type;
  rec.txn = txn;
  rec.key = std::move(key);
  rec.value = std::move(value);
  bytes_appended_ += record_bytes(rec);
  records_.push_back(std::move(rec));
  if (observer_) observer_(records_.back());
  return records_.back().lsn;
}

std::uint64_t Wal::begin(const std::string& txn) { return append(WalType::Begin, txn); }
std::uint64_t Wal::write(const std::string& txn, const Key& key, const Value& value) {
  return append(WalType::Write, txn, key, value);
}
std::uint64_t Wal::commit(const std::string& txn) { return append(WalType::Commit, txn); }
std::uint64_t Wal::abort(const std::string& txn) { return append(WalType::Abort, txn); }

std::vector<WalRecord> Wal::tail(std::uint64_t after) const {
  std::vector<WalRecord> out;
  for (const auto& rec : records_) {
    if (rec.lsn > after) out.push_back(rec);
  }
  return out;
}

std::size_t Wal::redo(const std::vector<WalRecord>& records, Storage& storage) {
  // Collect writes per transaction; apply them at the Commit record.
  std::map<std::string, std::vector<std::pair<Key, Value>>> staged;
  std::size_t applied = 0;
  for (const auto& rec : records) {
    switch (rec.type) {
      case WalType::Begin:
        staged[rec.txn];
        break;
      case WalType::Write:
        staged[rec.txn].emplace_back(rec.key, rec.value);
        break;
      case WalType::Abort:
        staged.erase(rec.txn);
        break;
      case WalType::Commit: {
        const auto it = staged.find(rec.txn);
        if (it == staged.end()) break;
        const auto seq = storage.next_commit_seq();
        for (const auto& [key, value] : it->second) storage.put(key, value, seq, rec.txn);
        staged.erase(it);
        ++applied;
        break;
      }
    }
  }
  return applied;
}

}  // namespace repli::db
