#include "db/exec.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::db {

std::vector<std::pair<Key, bool>> Operation::lock_plan() const {
  std::map<Key, bool> plan;  // key -> exclusive?
  for (const auto& k : read_set) plan.emplace(k, false);
  for (const auto& k : write_set) plan[k] = true;
  return {plan.begin(), plan.end()};
}

std::int64_t ReplayChoices::choose(std::int64_t /*n*/) {
  util::ensure(next_ < log_.size(), "ReplayChoices: log exhausted");
  return log_[next_++];
}

ProcCtx::ProcCtx(TxnExec& txn, const Operation& op, ChoiceSource& choices)
    : txn_(txn), op_(op), choices_(choices) {}

Value ProcCtx::get(const Key& key) {
  const bool declared =
      std::find(op_.read_set.begin(), op_.read_set.end(), key) != op_.read_set.end() ||
      std::find(op_.write_set.begin(), op_.write_set.end(), key) != op_.write_set.end();
  util::ensure(declared, "ProcCtx::get: undeclared read of '" + key + "' by " + op_.proc);
  return txn_.read(key);
}

void ProcCtx::put(const Key& key, Value value) {
  const bool declared =
      std::find(op_.write_set.begin(), op_.write_set.end(), key) != op_.write_set.end();
  util::ensure(declared, "ProcCtx::put: undeclared write of '" + key + "' by " + op_.proc);
  txn_.write(key, std::move(value));
}

const std::string& ProcCtx::arg(std::size_t i) const {
  util::ensure(i < op_.args.size(), "ProcCtx::arg: index out of range for " + op_.proc);
  return op_.args[i];
}

std::size_t ProcCtx::arg_count() const { return op_.args.size(); }

void ProcRegistry::add(const std::string& name, ProcFn fn, bool deterministic) {
  util::ensure(!procs_.contains(name), "ProcRegistry: duplicate procedure " + name);
  procs_.emplace(name, Entry{std::move(fn), deterministic});
}

const ProcFn& ProcRegistry::fn(const std::string& name) const {
  const auto it = procs_.find(name);
  util::ensure(it != procs_.end(), "ProcRegistry: unknown procedure " + name);
  return it->second.fn;
}

bool ProcRegistry::deterministic(const std::string& name) const {
  const auto it = procs_.find(name);
  util::ensure(it != procs_.end(), "ProcRegistry: unknown procedure " + name);
  return it->second.deterministic;
}

ProcRegistry ProcRegistry::with_builtins() {
  ProcRegistry reg;
  reg.add("get", [](ProcCtx& ctx) { ctx.result(ctx.get(ctx.arg(0))); });
  reg.add("put", [](ProcCtx& ctx) {
    ctx.put(ctx.arg(0), ctx.arg(1));
    ctx.result("ok");
  });
  reg.add("append", [](ProcCtx& ctx) {
    const auto cur = ctx.get(ctx.arg(0));
    ctx.put(ctx.arg(0), cur + ctx.arg(1));
    ctx.result("ok");
  });
  reg.add("add", [](ProcCtx& ctx) {
    const auto cur = ctx.get(ctx.arg(0));
    const std::int64_t base = cur.empty() ? 0 : std::stoll(cur);
    const std::int64_t delta = std::stoll(ctx.arg(1));
    ctx.put(ctx.arg(0), std::to_string(base + delta));
    ctx.result(std::to_string(base + delta));
  });
  reg.add("transfer", [](ProcCtx& ctx) {
    // transfer(from, to, amount): moves funds if sufficient balance.
    if (ctx.arg(0) == ctx.arg(1)) {
      // Self-transfer: a no-op, not a double write of the same account.
      ctx.result("ok");
      return;
    }
    const auto from_raw = ctx.get(ctx.arg(0));
    const auto to_raw = ctx.get(ctx.arg(1));
    const std::int64_t from_bal = from_raw.empty() ? 0 : std::stoll(from_raw);
    const std::int64_t to_bal = to_raw.empty() ? 0 : std::stoll(to_raw);
    const std::int64_t amount = std::stoll(ctx.arg(2));
    if (from_bal < amount) {
      ctx.result("insufficient");
      return;
    }
    ctx.put(ctx.arg(0), std::to_string(from_bal - amount));
    ctx.put(ctx.arg(1), std::to_string(to_bal + amount));
    ctx.result("ok");
  });
  reg.add(
      "spin_nondet",
      [](ProcCtx& ctx) {
        // Writes a value that depends on a nondeterministic choice — the
        // canonical determinism-breaker for active replication.
        const auto pick = ctx.choose(1'000'000);
        ctx.put(ctx.arg(0), "spin-" + std::to_string(pick));
        ctx.result(std::to_string(pick));
      },
      /*deterministic=*/false);
  return reg;
}

Value TxnExec::read(const Key& key) {
  if (const auto it = writes_.find(key); it != writes_.end()) return it->second;
  const auto rec = base_.get(key);
  if (!rec.has_value()) {
    reads_.emplace(key, 0);  // read of a non-existent record: version 0
    return "";
  }
  reads_.emplace(key, rec->version);
  return rec->value;
}

void TxnExec::write(const Key& key, Value value) { writes_[key] = std::move(value); }

std::string TxnExec::run(const ProcRegistry& registry, const Operation& op,
                         ChoiceSource& choices) {
  ProcCtx ctx(*this, op, choices);
  registry.fn(op.proc)(ctx);
  return ctx.current_result();
}

std::uint64_t TxnExec::commit_into(Storage& target) {
  const std::uint64_t seq = target.next_commit_seq();
  for (const auto& [key, value] : writes_) {
    target.put(key, value, seq, txn_id_);
  }
  return seq;
}

SingleOpResult execute_and_commit(const ProcRegistry& registry, const Operation& op,
                                  Storage& storage, ChoiceSource& choices,
                                  const std::string& txn_id) {
  TxnExec txn(txn_id, storage);
  SingleOpResult out;
  out.result = txn.run(registry, op, choices);
  out.read_versions = txn.read_versions();
  out.writes = txn.writes();
  if (!txn.writes().empty()) out.commit_seq = txn.commit_into(storage);
  return out;
}

}  // namespace repli::db
