// In-memory versioned key-value store: the per-replica "database".
//
// Each record carries the monotonically increasing commit sequence number of
// the transaction that wrote it; read versions feed the certification-based
// protocol and the serializability checker, and value digests feed the
// replica-convergence checker.
//
// Keys are interned to dense ids internally (one hash lookup per access,
// flat vector storage, no per-record map nodes). Replicas may intern the
// same keys in different orders — every cross-replica artifact (digest,
// records() export) therefore canonicalizes to key order at the boundary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/intern.hh"

namespace repli::db {

using Key = std::string;
using Value = std::string;

struct Record {
  Value value;
  std::uint64_t version = 0;     // commit sequence of the writing transaction
  std::string writer_txn;        // id of the writing transaction
};

class Storage {
 public:
  std::optional<Record> get(const Key& key) const;

  /// Installs a committed value. `version` must not regress for the key.
  void put(const Key& key, Value value, std::uint64_t version, std::string writer_txn);

  /// Installs a value even if `version` regresses (reconciliation undo).
  void force_put(const Key& key, Value value, std::uint64_t version, std::string writer_txn);

  std::size_t size() const { return live_count_; }
  /// Materialized key-ordered snapshot (export/inspection boundary; the
  /// records live in interned-id order internally).
  std::map<Key, Record> records() const;

  /// Order-independent digest over (key, value) pairs; versions excluded so
  /// replicas that converged through different paths still compare equal.
  std::uint64_t value_digest() const;

  /// Next commit sequence number for this site (monotone, starts at 1).
  std::uint64_t next_commit_seq() { return ++commit_seq_; }
  std::uint64_t last_commit_seq() const { return commit_seq_; }
  /// Fast-forward the local sequence (apply path for propagated updates).
  void observe_commit_seq(std::uint64_t seq);

 private:
  struct Slot {
    Record rec;
    bool present = false;
  };
  Slot& slot_for(const Key& key);
  /// Interned key ids sorted by key string — the canonical iteration order
  /// for digests and exports.
  std::vector<util::Interner::Id> sorted_ids() const;

  util::Interner key_names_;
  std::vector<Slot> slots_;  // indexed by interned key id
  std::size_t live_count_ = 0;
  std::uint64_t commit_seq_ = 0;
};

}  // namespace repli::db
