#include "db/tpc.hh"

#include "util/assert.hh"
#include "util/log.hh"

namespace repli::db {

TwoPhaseCommit::TwoPhaseCommit(sim::Process& host, std::uint32_t channel, TpcConfig config)
    : host_(host), config_(config), link_(host, channel, config.link) {
  link_.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
    if (const auto prep = wire::message_cast<TpcPrepare>(msg)) {
      deliver_prepare(from, *prep);
      return;
    }
    if (const auto vote = wire::message_cast<TpcVote>(msg)) {
      const auto it = coordinating_.find(vote->txn);
      if (it == coordinating_.end() || it->second.decided) return;
      Pending& p = it->second;
      if (!vote->yes) {
        decide(vote->txn, false);
        return;
      }
      p.yes_votes.insert(from);
      if (p.yes_votes.size() == p.participants.size()) decide(vote->txn, true);
      return;
    }
    if (const auto dec = wire::message_cast<TpcDecision>(msg)) {
      deliver_decision(*dec);
      return;
    }
  });
}

void TwoPhaseCommit::coordinate(const std::string& txn,
                                const std::vector<sim::NodeId>& participants,
                                const std::string& payload, OutcomeFn done) {
  util::ensure(!coordinating_.contains(txn), "TwoPhaseCommit: txn already coordinated: " + txn);
  Pending& p = coordinating_[txn];
  p.participants = participants;
  p.done = std::move(done);

  TpcPrepare prep;
  prep.txn = txn;
  prep.payload = payload;
  for (const auto node : participants) {
    if (node == host_.id()) {
      deliver_prepare(host_.id(), prep);
    } else {
      link_.send_fifo(node, prep);
    }
  }
  // Abort if votes do not all arrive in time (participant crash).
  host_.set_timer(config_.vote_timeout, [this, txn] {
    const auto it = coordinating_.find(txn);
    if (it == coordinating_.end() || it->second.decided) return;
    util::log_debug("2pc ", host_.id(), ": vote timeout, aborting ", txn);
    decide(txn, false);
  });
}

void TwoPhaseCommit::deliver_prepare(sim::NodeId coordinator, const TpcPrepare& prep) {
  if (resolved_.contains(prep.txn) || in_doubt_.contains(prep.txn)) return;  // duplicate
  const bool yes = vote_ ? vote_(prep.txn, prep.payload) : true;
  if (yes) in_doubt_.emplace(prep.txn, InDoubt{host_.now(), coordinator});

  TpcVote vote;
  vote.txn = prep.txn;
  vote.yes = yes;
  if (coordinator == host_.id()) {
    // Local short-circuit through the same code path as remote votes.
    const auto it = coordinating_.find(prep.txn);
    if (it != coordinating_.end() && !it->second.decided) {
      Pending& p = it->second;
      if (!yes) {
        decide(prep.txn, false);
      } else {
        p.yes_votes.insert(host_.id());
        if (p.yes_votes.size() == p.participants.size()) decide(prep.txn, true);
      }
    }
  } else {
    link_.send_fifo(coordinator, vote);
  }
  if (!yes) {
    // A no-voter can resolve unilaterally: the global outcome is abort.
    resolved_.insert(prep.txn);
    if (outcome_) outcome_(prep.txn, false);
  }
}

void TwoPhaseCommit::decide(const std::string& txn, bool commit) {
  const auto it = coordinating_.find(txn);
  util::ensure(it != coordinating_.end(), "TwoPhaseCommit::decide: unknown txn " + txn);
  Pending& p = it->second;
  if (p.decided) return;
  p.decided = true;

  TpcDecision dec;
  dec.txn = txn;
  dec.commit = commit;
  for (const auto node : p.participants) {
    if (node == host_.id()) {
      deliver_decision(dec);
    } else {
      link_.send_fifo(node, dec);
    }
  }
  if (p.done) p.done(txn, commit);
  coordinating_.erase(it);
}

void TwoPhaseCommit::deliver_decision(const TpcDecision& dec) {
  if (!resolved_.insert(dec.txn).second) return;  // duplicate decision
  in_doubt_.erase(dec.txn);
  if (outcome_) outcome_(dec.txn, dec.commit);
}

bool TwoPhaseCommit::handle(sim::NodeId from, const wire::MessagePtr& msg) {
  return link_.handle(from, msg);
}

}  // namespace repli::db
