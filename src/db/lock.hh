// Asynchronous lock manager: shared/exclusive key locks with FIFO-fair
// queuing, lock upgrade, wait-for-graph deadlock detection (youngest victim
// aborts), and a wait-timeout backstop. Grant and abort outcomes are
// reported through callbacks because lock waits in a replicated setting
// span message exchanges.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <set>
#include <string>

#include "db/storage.hh"
#include "obs/trace.hh"
#include "sim/process.hh"

namespace repli::db {

using TxnId = std::string;

enum class LockMode { Shared, Exclusive };

struct LockConfig {
  sim::Time wait_timeout = 500 * sim::kMsec;  // backstop against undetected cycles
  /// Wait-die deadlock *prevention*: a requester younger (higher priority
  /// number) than an incompatible holder aborts immediately instead of
  /// waiting. Waits then only run old->young, so no cycle can form — even
  /// across sites, which local wait-for-graph detection cannot see. The
  /// distributed-locking replication technique enables this.
  bool wait_die = false;
};

class LockManager {
 public:
  using GrantFn = std::function<void()>;
  using AbortFn = std::function<void()>;

  /// `host` provides timers for the wait-timeout backstop.
  LockManager(sim::Process& host, LockConfig config = {});

  /// Requests `mode` on `key` for `txn` (priority = age; smaller is older
  /// and wins deadlocks). Exactly one of `granted`/`aborted` fires, possibly
  /// synchronously. A transaction may hold at most one outstanding request.
  void acquire(const TxnId& txn, std::int64_t priority, const Key& key, LockMode mode,
               GrantFn granted, AbortFn aborted);

  /// Releases everything `txn` holds and cancels its pending request.
  void release_all(const TxnId& txn);

  bool holds(const TxnId& txn, const Key& key, LockMode mode) const;
  std::size_t waiting_count() const;
  std::int64_t deadlock_aborts() const { return deadlock_aborts_; }

 private:
  struct Request {
    TxnId txn;
    std::int64_t priority = 0;
    LockMode mode = LockMode::Shared;
    GrantFn granted;
    AbortFn aborted;
    sim::Process::TimerId timeout = sim::Process::kNoTimer;
    obs::SpanId wait_span = obs::kNoSpan;  // open db/lock.wait span
  };
  struct KeyLock {
    std::map<TxnId, LockMode> holders;  // mode is the strongest held
    std::list<Request> waiters;
  };

  static bool compatible(LockMode held, LockMode wanted) {
    return held == LockMode::Shared && wanted == LockMode::Shared;
  }
  bool can_grant(const KeyLock& kl, const TxnId& txn, LockMode mode) const;
  std::int64_t holder_priority(const TxnId& txn) const;
  void pump(const Key& key);
  /// Builds waits-for edges and aborts the youngest transaction on a cycle.
  void detect_deadlock(const Key& key, const TxnId& waiter);
  void abort_waiter(const Key& key, const TxnId& txn);
  /// Ends a queued request's db/lock.wait span and records the wait time.
  void close_wait_span(Request& req, const char* outcome);

  sim::Process& host_;
  LockConfig config_;
  std::map<Key, KeyLock> locks_;
  std::map<TxnId, std::set<Key>> held_by_txn_;
  std::map<TxnId, Key> waiting_on_;  // txn -> key of its pending request
  std::map<TxnId, std::int64_t> priorities_;  // first-seen priority per txn
  std::int64_t deadlock_aborts_ = 0;
};

}  // namespace repli::db
