// Asynchronous lock manager: shared/exclusive key locks with FIFO-fair
// queuing, lock upgrade, wait-for-graph deadlock detection (youngest victim
// aborts), and a wait-timeout backstop. Grant and abort outcomes are
// reported through callbacks because lock waits in a replicated setting
// span message exchanges.
//
// Internally, keys and transaction ids are interned to dense uint32 ids
// (util/intern.hh) and every table is a flat vector indexed by id — the
// string-keyed std::maps this replaced re-compared key strings on every
// lookup and allocated a node per insert. Strings appear only at the
// public API (interned on entry) and at the trace/log boundary
// (de-interned on exit); see docs/ARCHITECTURE.md "Interned keys".
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <vector>

#include "db/storage.hh"
#include "obs/trace.hh"
#include "sim/process.hh"
#include "util/arena.hh"
#include "util/intern.hh"

namespace repli::db {

using TxnId = std::string;

enum class LockMode { Shared, Exclusive };

struct LockConfig {
  sim::Time wait_timeout = 500 * sim::kMsec;  // backstop against undetected cycles
  /// Wait-die deadlock *prevention*: a requester younger (higher priority
  /// number) than an incompatible holder aborts immediately instead of
  /// waiting. Waits then only run old->young, so no cycle can form — even
  /// across sites, which local wait-for-graph detection cannot see. The
  /// distributed-locking replication technique enables this.
  bool wait_die = false;
};

class LockManager {
 public:
  using GrantFn = std::function<void()>;
  using AbortFn = std::function<void()>;

  /// `host` provides timers for the wait-timeout backstop.
  LockManager(sim::Process& host, LockConfig config = {});

  /// Requests `mode` on `key` for `txn` (priority = age; smaller is older
  /// and wins deadlocks). Exactly one of `granted`/`aborted` fires, possibly
  /// synchronously. A transaction may hold at most one outstanding request.
  void acquire(const TxnId& txn, std::int64_t priority, const Key& key, LockMode mode,
               GrantFn granted, AbortFn aborted);

  /// Releases everything `txn` holds and cancels its pending request.
  void release_all(const TxnId& txn);

  bool holds(const TxnId& txn, const Key& key, LockMode mode) const;
  std::size_t waiting_count() const { return waiting_count_; }
  std::int64_t deadlock_aborts() const { return deadlock_aborts_; }

 private:
  using Id = util::Interner::Id;
  static constexpr Id kNone = util::Interner::kNoId;

  struct Request {
    Id txn = kNone;
    std::int64_t priority = 0;
    LockMode mode = LockMode::Shared;
    GrantFn granted;
    AbortFn aborted;
    sim::Process::TimerId timeout = sim::Process::kNoTimer;
    obs::SpanId wait_span = obs::kNoSpan;  // open db/lock.wait span
  };
  struct KeyLock {
    // Holders in acquisition order; few per key, so linear scans beat the
    // node-based map they replaced.
    std::vector<std::pair<Id, LockMode>> holders;
    std::list<Request> waiters;
  };
  /// Per-transaction state, indexed by interned txn id. Cleared (capacity
  /// kept) on release_all, so a recycled txn id starts fresh.
  struct TxnState {
    std::vector<Id> held;     // keys locked, acquisition order
    Id waiting_on = kNone;    // key of the pending request
    std::int64_t priority = 0;
    bool priority_set = false;  // first-seen priority sticks
  };

  static bool compatible(LockMode held, LockMode wanted) {
    return held == LockMode::Shared && wanted == LockMode::Shared;
  }
  KeyLock& lock_at(Id key);
  TxnState& txn_at(Id txn);
  bool can_grant(const KeyLock& kl, Id txn, LockMode mode) const;
  std::int64_t holder_priority(Id txn) const;
  void pump(Id key);
  /// Builds waits-for edges and aborts the youngest transaction on a cycle.
  void detect_deadlock(Id waiter);
  /// DFS over waits-for edges; `path` is the txn chain walked so far.
  bool walk_cycle(Id txn, util::ArenaVec<Id>& path) const;
  void abort_waiter(Id key, Id txn);
  /// Ends a queued request's db/lock.wait span and records the wait time.
  void close_wait_span(Request& req, const char* outcome);

  sim::Process& host_;
  LockConfig config_;
  util::Interner key_names_;
  util::Interner txn_names_;
  std::vector<KeyLock> locks_;    // indexed by interned key id
  std::vector<TxnState> txns_;    // indexed by interned txn id
  /// Scratch for the deadlock walk. The walk can nest (abort callback ->
  /// acquire -> detect), so each level takes an ArenaScope; steady state
  /// allocates nothing.
  util::Arena scratch_;
  std::size_t waiting_count_ = 0;
  std::int64_t deadlock_aborts_ = 0;
};

}  // namespace repli::db
