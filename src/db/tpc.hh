// Two-Phase Commit over reliable links.
//
// Deliberately *blocking*, as the paper stresses (Section 2.1): a
// participant that voted yes holds its locks until it learns the outcome;
// if the coordinator crashes in the window between collecting votes and
// disseminating the decision, participants stay blocked (we expose the
// blocked set so benches can measure the window). A participant that fails
// to vote within the coordinator's timeout causes a global abort.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "gcs/fifo.hh"

namespace repli::db {

struct TpcPrepare : wire::MessageBase<TpcPrepare> {
  static constexpr const char* kTypeName = "db.TpcPrepare";
  std::string txn;
  std::string payload;  // protocol-specific (e.g. the writeset to install)
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(payload);
  }
};

struct TpcVote : wire::MessageBase<TpcVote> {
  static constexpr const char* kTypeName = "db.TpcVote";
  std::string txn;
  bool yes = false;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(yes);
  }
};

struct TpcDecision : wire::MessageBase<TpcDecision> {
  static constexpr const char* kTypeName = "db.TpcDecision";
  std::string txn;
  bool commit = false;
  template <class Ar>
  void fields(Ar& ar) {
    ar(txn);
    ar(commit);
  }
};

struct TpcConfig {
  gcs::LinkConfig link;
  sim::Time vote_timeout = 200 * sim::kMsec;  // coordinator aborts silent voters
};

/// Both roles in one component: any replica can coordinate a commit and
/// participate in commits coordinated by others.
class TwoPhaseCommit : public gcs::Component {
 public:
  /// `payload` is handed to the vote handler; return true to vote yes.
  using VoteFn = std::function<bool(const std::string& txn, const std::string& payload)>;
  using OutcomeFn = std::function<void(const std::string& txn, bool commit)>;

  TwoPhaseCommit(sim::Process& host, std::uint32_t channel, TpcConfig config = {});

  /// Participant-side handlers (a prepare is delivered to the coordinator's
  /// own handlers too, so state changes live in one place).
  void set_vote_handler(VoteFn fn) { vote_ = std::move(fn); }
  void set_outcome_handler(OutcomeFn fn) { outcome_ = std::move(fn); }

  /// Coordinator API: run 2PC for `txn` across `participants` (which may
  /// include the host itself). `done` fires with the global decision.
  void coordinate(const std::string& txn, const std::vector<sim::NodeId>& participants,
                  const std::string& payload, OutcomeFn done);

  bool handle(sim::NodeId from, const wire::MessagePtr& msg) override;

  struct InDoubt {
    sim::Time since = 0;
    sim::NodeId coordinator = sim::kNoNode;
  };
  /// Transactions this participant has voted yes on and not yet resolved —
  /// the blocking window of 2PC.
  const std::map<std::string, InDoubt>& in_doubt() const { return in_doubt_; }

 private:
  struct Pending {
    std::vector<sim::NodeId> participants;
    std::set<sim::NodeId> yes_votes;
    bool decided = false;
    OutcomeFn done;
  };

  void decide(const std::string& txn, bool commit);
  void deliver_prepare(sim::NodeId coordinator, const TpcPrepare& prep);
  void deliver_decision(const TpcDecision& dec);

  sim::Process& host_;
  TpcConfig config_;
  gcs::FifoChannel link_;
  VoteFn vote_;
  OutcomeFn outcome_;
  std::map<std::string, Pending> coordinating_;
  std::map<std::string, InDoubt> in_doubt_;  // yes-voted, outcome unknown
  std::set<std::string> resolved_;             // outcomes already applied here
};

}  // namespace repli::db
