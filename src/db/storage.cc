#include "db/storage.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::db {

namespace {
std::uint64_t fnv1a64(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Storage::Slot& Storage::slot_for(const Key& key) {
  const util::Interner::Id id = key_names_.intern(key);
  if (id >= slots_.size()) slots_.resize(id + 1);
  Slot& s = slots_[id];
  if (!s.present) {
    s.present = true;
    ++live_count_;
  }
  return s;
}

std::optional<Record> Storage::get(const Key& key) const {
  const util::Interner::Id id = key_names_.find(key);
  if (id == util::Interner::kNoId || id >= slots_.size() || !slots_[id].present)
    return std::nullopt;
  return slots_[id].rec;
}

void Storage::put(const Key& key, Value value, std::uint64_t version, std::string writer_txn) {
  Record& rec = slot_for(key).rec;
  util::ensure(version >= rec.version, "Storage::put: version regression on key " + key);
  rec.value = std::move(value);
  rec.version = version;
  rec.writer_txn = std::move(writer_txn);
}

void Storage::force_put(const Key& key, Value value, std::uint64_t version,
                        std::string writer_txn) {
  Record& rec = slot_for(key).rec;
  rec.value = std::move(value);
  rec.version = version;
  rec.writer_txn = std::move(writer_txn);
}

std::vector<util::Interner::Id> Storage::sorted_ids() const {
  std::vector<util::Interner::Id> ids;
  ids.reserve(live_count_);
  for (util::Interner::Id id = 0; id < slots_.size(); ++id) {
    if (slots_[id].present) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end(), [this](util::Interner::Id a, util::Interner::Id b) {
    return key_names_.str(a) < key_names_.str(b);
  });
  return ids;
}

std::map<Key, Record> Storage::records() const {
  std::map<Key, Record> out;
  for (const auto id : sorted_ids()) out.emplace(key_names_.str(id), slots_[id].rec);
  return out;
}

std::uint64_t Storage::value_digest() const {
  // Canonical key order, independent of interning (= insertion) order, so
  // replicas that converged through different paths digest equal.
  std::uint64_t h = 1469598103934665603ull;
  for (const auto id : sorted_ids()) {
    h = fnv1a64(key_names_.str(id), h);
    h = fnv1a64("=", h);
    h = fnv1a64(slots_[id].rec.value, h);
    h = fnv1a64(";", h);
  }
  return h;
}

void Storage::observe_commit_seq(std::uint64_t seq) {
  commit_seq_ = std::max(commit_seq_, seq);
}

}  // namespace repli::db
