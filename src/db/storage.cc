#include "db/storage.hh"

#include <algorithm>

#include "util/assert.hh"

namespace repli::db {

namespace {
std::uint64_t fnv1a64(std::string_view s, std::uint64_t h) {
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

std::optional<Record> Storage::get(const Key& key) const {
  const auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

void Storage::put(const Key& key, Value value, std::uint64_t version, std::string writer_txn) {
  auto& rec = records_[key];
  util::ensure(version >= rec.version, "Storage::put: version regression on key " + key);
  rec.value = std::move(value);
  rec.version = version;
  rec.writer_txn = std::move(writer_txn);
}

void Storage::force_put(const Key& key, Value value, std::uint64_t version,
                        std::string writer_txn) {
  auto& rec = records_[key];
  rec.value = std::move(value);
  rec.version = version;
  rec.writer_txn = std::move(writer_txn);
}

std::uint64_t Storage::value_digest() const {
  // Records are iterated in key order, so the digest is deterministic.
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& [key, rec] : records_) {
    h = fnv1a64(key, h);
    h = fnv1a64("=", h);
    h = fnv1a64(rec.value, h);
    h = fnv1a64(";", h);
  }
  return h;
}

void Storage::observe_commit_seq(std::uint64_t seq) {
  commit_seq_ = std::max(commit_seq_, seq);
}

}  // namespace repli::db
