#include "db/lock.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::db {

LockManager::LockManager(sim::Process& host, LockConfig config) : host_(host), config_(config) {}

LockManager::KeyLock& LockManager::lock_at(Id key) {
  if (key >= locks_.size()) locks_.resize(key + 1);
  return locks_[key];
}

LockManager::TxnState& LockManager::txn_at(Id txn) {
  if (txn >= txns_.size()) txns_.resize(txn + 1);
  return txns_[txn];
}

void LockManager::close_wait_span(Request& req, const char* outcome) {
  if (req.wait_span == obs::kNoSpan) return;
  auto& tracer = host_.sim().tracer();
  tracer.attr(req.wait_span, "outcome", outcome);
  tracer.end(req.wait_span, host_.now());
  const obs::Span* span = tracer.find(req.wait_span);
  host_.sim().metrics().histogram("db.lock.wait_us")
      .observe(static_cast<double>(span->end - span->start));
  req.wait_span = obs::kNoSpan;
}

bool LockManager::can_grant(const KeyLock& kl, Id txn, LockMode mode) const {
  for (const auto& [holder, held_mode] : kl.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::Exclusive || held_mode == LockMode::Exclusive) return false;
  }
  return true;
}

void LockManager::acquire(const TxnId& txn, std::int64_t priority, const Key& key, LockMode mode,
                          GrantFn granted, AbortFn aborted) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  const Id txn_id = txn_names_.intern(txn);
  const Id key_id = key_names_.intern(key);
  TxnState& ts = txn_at(txn_id);
  util::ensure(ts.waiting_on == kNone,
               "LockManager::acquire: transaction already has a pending request");
  if (!ts.priority_set) {  // first-seen priority sticks
    ts.priority = priority;
    ts.priority_set = true;
  }
  KeyLock& kl = lock_at(key_id);

  // Re-entrant cases: already holding a sufficient lock.
  const auto held_it = std::find_if(kl.holders.begin(), kl.holders.end(),
                                    [&](const auto& h) { return h.first == txn_id; });
  if (held_it != kl.holders.end()) {
    if (held_it->second == LockMode::Exclusive || mode == LockMode::Shared) {
      obs::ProfScope cb(obs::CostCenter::Technique);
      granted();
      return;
    }
    // Upgrade S -> X: possible when we are the only holder and no waiter
    // already queued an upgrade.
    if (kl.holders.size() == 1 && can_grant(kl, txn_id, LockMode::Exclusive)) {
      held_it->second = LockMode::Exclusive;
      obs::ProfScope cb(obs::CostCenter::Technique);
      granted();
      return;
    }
  } else if (kl.waiters.empty() && can_grant(kl, txn_id, mode)) {
    // FIFO fairness: jump the queue only when it is empty.
    kl.holders.emplace_back(txn_id, mode);
    ts.held.push_back(key_id);
    obs::ProfScope cb(obs::CostCenter::Technique);
    granted();
    return;
  }

  if (config_.wait_die) {
    // Die instead of waiting behind an older transaction's lock.
    for (const auto& [holder, held_mode] : kl.holders) {
      if (holder == txn_id) continue;
      const bool incompatible = mode == LockMode::Exclusive || held_mode == LockMode::Exclusive;
      if (incompatible && priority > holder_priority(holder)) {
        ++deadlock_aborts_;
        host_.sim().metrics().incr("db.lock.wait_die_aborts");
        host_.sim().tracer().instant(host_.id(), "db/lock.wait_die", host_.now(), txn,
                                     obs::Attrs{{"key", key}});
        obs::ProfScope cb(obs::CostCenter::Technique);
        aborted();
        return;
      }
    }
  }

  Request req;
  req.txn = txn_id;
  req.priority = priority;
  req.mode = mode;
  req.granted = std::move(granted);
  req.aborted = std::move(aborted);
  req.timeout = host_.set_timer(config_.wait_timeout, [this, key_id, txn_id] {
    util::log_debug("lock: wait timeout, aborting ", txn_names_.str(txn_id));
    abort_waiter(key_id, txn_id);
  });
  auto& tracer = host_.sim().tracer();
  req.wait_span = tracer.begin(host_.id(), "db/lock.wait", host_.now(), txn);
  tracer.attr(req.wait_span, "key", key);
  tracer.attr(req.wait_span, "mode", mode == LockMode::Exclusive ? "X" : "S");
  kl.waiters.push_back(std::move(req));
  ts.waiting_on = key_id;
  ++waiting_count_;
  detect_deadlock(txn_id);
}

void LockManager::pump(Id key) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  // Phase 1: decide and record every grant while no callbacks run, so a
  // callback that re-enters the lock manager (release_all, new acquires)
  // observes consistent state and cannot invalidate what we iterate.
  std::vector<Request> granted;
  {
    KeyLock& kl = lock_at(key);
    while (!kl.waiters.empty()) {
      Request& head = kl.waiters.front();
      const auto held_it = std::find_if(kl.holders.begin(), kl.holders.end(),
                                        [&](const auto& h) { return h.first == head.txn; });
      const bool upgrade = held_it != kl.holders.end();
      bool grantable;
      if (upgrade) {
        grantable = can_grant(kl, head.txn, head.mode);
      } else {
        grantable = can_grant(kl, head.txn, head.mode) &&
                    (kl.holders.empty() || head.mode == LockMode::Shared);
      }
      if (!grantable) break;
      Request req = std::move(head);
      kl.waiters.pop_front();
      txn_at(req.txn).held.push_back(key);
      host_.cancel_timer(req.timeout);
      close_wait_span(req, "granted");
      const auto hit = std::find_if(kl.holders.begin(), kl.holders.end(),
                                    [&](const auto& h) { return h.first == req.txn; });
      if (hit == kl.holders.end()) {
        kl.holders.emplace_back(req.txn, req.mode);
      } else if (req.mode == LockMode::Exclusive) {
        hit->second = LockMode::Exclusive;
      }
      txn_at(req.txn).waiting_on = kNone;
      --waiting_count_;
      granted.push_back(std::move(req));
    }
  }
  // Phase 2: fire the callbacks.
  obs::ProfScope cb(obs::CostCenter::Technique);
  for (auto& req : granted) req.granted();
}

void LockManager::release_all(const TxnId& txn) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  const Id txn_id = txn_names_.find(txn);
  if (txn_id == kNone || txn_id >= txns_.size()) return;
  TxnState& ts = txns_[txn_id];
  // Cancel a pending request, if any.
  if (ts.waiting_on != kNone) {
    KeyLock& kl = lock_at(ts.waiting_on);
    for (auto it = kl.waiters.begin(); it != kl.waiters.end(); ++it) {
      if (it->txn == txn_id) {
        host_.cancel_timer(it->timeout);
        close_wait_span(*it, "cancelled");
        kl.waiters.erase(it);
        break;
      }
    }
    ts.waiting_on = kNone;
    --waiting_count_;
  }
  ts.priority_set = false;
  // Release held locks. `held` may list a key twice (grant then upgrade);
  // the second pass finds the holder already gone and just re-pumps.
  std::vector<Id> held = std::move(ts.held);
  ts.held.clear();
  for (const Id key : held) {
    KeyLock& kl = lock_at(key);
    std::erase_if(kl.holders, [&](const auto& h) { return h.first == txn_id; });
    pump(key);
  }
}

std::int64_t LockManager::holder_priority(Id txn) const {
  // Unknown priority counts as oldest, so the requester defers to it.
  if (txn >= txns_.size() || !txns_[txn].priority_set)
    return std::numeric_limits<std::int64_t>::min();
  return txns_[txn].priority;
}

bool LockManager::holds(const TxnId& txn, const Key& key, LockMode mode) const {
  const Id txn_id = txn_names_.find(txn);
  const Id key_id = key_names_.find(key);
  if (txn_id == kNone || key_id == kNone || key_id >= locks_.size()) return false;
  const KeyLock& kl = locks_[key_id];
  for (const auto& [holder, held_mode] : kl.holders) {
    if (holder != txn_id) continue;
    return mode == LockMode::Shared || held_mode == LockMode::Exclusive;
  }
  return false;
}

bool LockManager::walk_cycle(Id txn, util::ArenaVec<Id>& path) const {
  if (txn >= txns_.size() || txns_[txn].waiting_on == kNone) return false;
  const Id key = txns_[txn].waiting_on;
  if (key >= locks_.size()) return false;
  for (const auto& [holder, mode] : locks_[key].holders) {
    if (holder == txn) continue;
    if (path.contains(holder)) return true;  // cycle
    path.push_back(holder);
    if (walk_cycle(holder, path)) return true;
    path.pop_back();
  }
  return false;
}

void LockManager::detect_deadlock(Id waiter) {
  // waits-for edges: each waiting txn -> every current holder of its key.
  // Follow the chain from `waiter`; if it loops back, abort the youngest
  // (largest priority number) waiter on the cycle. Paths are short, so the
  // arena-backed vector with linear membership checks beats the std::set +
  // std::function recursion this replaced (two allocations per contended
  // acquire); ArenaScope makes the nested-walk case stack cleanly.
  util::ArenaScope scope(scratch_);
  util::ArenaVec<Id> path(scratch_);
  path.push_back(waiter);
  if (!walk_cycle(waiter, path)) return;

  // Victim: the youngest transaction on the path that is actually waiting.
  Id victim = kNone;
  std::int64_t victim_priority = std::numeric_limits<std::int64_t>::min();
  for (const Id txn : path) {
    if (txn >= txns_.size() || txns_[txn].waiting_on == kNone) continue;
    const KeyLock& kl = locks_[txns_[txn].waiting_on];
    for (const auto& req : kl.waiters) {
      if (req.txn == txn && req.priority > victim_priority) {
        victim_priority = req.priority;
        victim = txn;
      }
    }
  }
  util::ensure(victim != kNone, "LockManager: cycle without waiting victim");
  const std::string& victim_txn = txn_names_.str(victim);  // de-intern at the boundary
  util::log_info("lock: deadlock, aborting ", victim_txn);
  ++deadlock_aborts_;
  host_.sim().metrics().incr("db.lock.deadlocks");
  host_.sim().tracer().instant(host_.id(), "db/lock.deadlock", host_.now(), victim_txn,
                               obs::Attrs{{"cycle_len", std::to_string(path.size())}});
  abort_waiter(txns_[victim].waiting_on, victim);
}

void LockManager::abort_waiter(Id key, Id txn) {
  if (key >= locks_.size()) return;
  KeyLock& kl = locks_[key];
  for (auto it = kl.waiters.begin(); it != kl.waiters.end(); ++it) {
    if (it->txn != txn) continue;
    host_.cancel_timer(it->timeout);
    close_wait_span(*it, "aborted");
    AbortFn aborted = std::move(it->aborted);
    kl.waiters.erase(it);
    txn_at(txn).waiting_on = kNone;
    --waiting_count_;
    pump(key);
    obs::ProfScope cb(obs::CostCenter::Technique);
    aborted();  // last: the callback usually calls release_all
    return;
  }
}

}  // namespace repli::db
