#include "db/lock.hh"

#include <algorithm>
#include <limits>
#include <vector>

#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/log.hh"

namespace repli::db {

LockManager::LockManager(sim::Process& host, LockConfig config) : host_(host), config_(config) {}

void LockManager::close_wait_span(Request& req, const char* outcome) {
  if (req.wait_span == obs::kNoSpan) return;
  auto& tracer = host_.sim().tracer();
  tracer.attr(req.wait_span, "outcome", outcome);
  tracer.end(req.wait_span, host_.now());
  const obs::Span* span = tracer.find(req.wait_span);
  host_.sim().metrics().histogram("db.lock.wait_us")
      .observe(static_cast<double>(span->end - span->start));
  req.wait_span = obs::kNoSpan;
}

bool LockManager::can_grant(const KeyLock& kl, const TxnId& txn, LockMode mode) const {
  for (const auto& [holder, held_mode] : kl.holders) {
    if (holder == txn) continue;  // self-compatibility handled by caller
    if (mode == LockMode::Exclusive || held_mode == LockMode::Exclusive) return false;
  }
  return true;
}

void LockManager::acquire(const TxnId& txn, std::int64_t priority, const Key& key, LockMode mode,
                          GrantFn granted, AbortFn aborted) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  util::ensure(!waiting_on_.contains(txn),
               "LockManager::acquire: transaction already has a pending request");
  priorities_.emplace(txn, priority);  // first-seen priority sticks
  KeyLock& kl = locks_[key];

  // Re-entrant cases: already holding a sufficient lock.
  if (const auto it = kl.holders.find(txn); it != kl.holders.end()) {
    if (it->second == LockMode::Exclusive || mode == LockMode::Shared) {
      obs::ProfScope cb(obs::CostCenter::Technique);
      granted();
      return;
    }
    // Upgrade S -> X: possible when we are the only holder and no waiter
    // already queued an upgrade.
    if (kl.holders.size() == 1 && can_grant(kl, txn, LockMode::Exclusive)) {
      it->second = LockMode::Exclusive;
      obs::ProfScope cb(obs::CostCenter::Technique);
      granted();
      return;
    }
  } else if (kl.waiters.empty() && can_grant(kl, txn, mode)) {
    // FIFO fairness: jump the queue only when it is empty.
    kl.holders.emplace(txn, mode);
    held_by_txn_[txn].insert(key);
    obs::ProfScope cb(obs::CostCenter::Technique);
    granted();
    return;
  }

  if (config_.wait_die) {
    // Die instead of waiting behind an older transaction's lock.
    for (const auto& [holder, held_mode] : kl.holders) {
      if (holder == txn) continue;
      const bool incompatible = mode == LockMode::Exclusive || held_mode == LockMode::Exclusive;
      if (incompatible && priority > holder_priority(holder)) {
        ++deadlock_aborts_;
        host_.sim().metrics().incr("db.lock.wait_die_aborts");
        host_.sim().tracer().instant(host_.id(), "db/lock.wait_die", host_.now(), txn,
                                     obs::Attrs{{"key", key}});
        obs::ProfScope cb(obs::CostCenter::Technique);
        aborted();
        return;
      }
    }
  }

  Request req;
  req.txn = txn;
  req.priority = priority;
  req.mode = mode;
  req.granted = std::move(granted);
  req.aborted = std::move(aborted);
  req.timeout = host_.set_timer(config_.wait_timeout, [this, key, txn] {
    util::log_debug("lock: wait timeout, aborting ", txn);
    abort_waiter(key, txn);
  });
  auto& tracer = host_.sim().tracer();
  req.wait_span = tracer.begin(host_.id(), "db/lock.wait", host_.now(), txn);
  tracer.attr(req.wait_span, "key", key);
  tracer.attr(req.wait_span, "mode", mode == LockMode::Exclusive ? "X" : "S");
  kl.waiters.push_back(std::move(req));
  waiting_on_[txn] = key;
  detect_deadlock(key, txn);
}

void LockManager::pump(const Key& key) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  // Phase 1: decide and record every grant while no callbacks run, so a
  // callback that re-enters the lock manager (release_all, new acquires)
  // observes consistent state and cannot invalidate what we iterate.
  std::vector<Request> granted;
  {
    const auto lit = locks_.find(key);
    if (lit == locks_.end()) return;
    KeyLock& kl = lit->second;
    while (!kl.waiters.empty()) {
      Request& head = kl.waiters.front();
      const bool upgrade = kl.holders.contains(head.txn);
      bool grantable;
      if (upgrade) {
        grantable = can_grant(kl, head.txn, head.mode);
      } else {
        grantable = can_grant(kl, head.txn, head.mode) &&
                    (kl.holders.empty() || head.mode == LockMode::Shared);
      }
      if (!grantable) break;
      Request req = std::move(head);
      kl.waiters.pop_front();
      held_by_txn_[req.txn].insert(key);
      host_.cancel_timer(req.timeout);
      close_wait_span(req, "granted");
      auto [hit, inserted] = kl.holders.emplace(req.txn, req.mode);
      if (!inserted && req.mode == LockMode::Exclusive) hit->second = LockMode::Exclusive;
      waiting_on_.erase(req.txn);
      granted.push_back(std::move(req));
    }
    if (kl.holders.empty() && kl.waiters.empty()) locks_.erase(lit);
  }
  // Phase 2: fire the callbacks.
  obs::ProfScope cb(obs::CostCenter::Technique);
  for (auto& req : granted) req.granted();
}

void LockManager::release_all(const TxnId& txn) {
  obs::ProfScope prof(obs::CostCenter::LockMgr);
  // Cancel a pending request, if any.
  if (const auto wit = waiting_on_.find(txn); wit != waiting_on_.end()) {
    const Key key = wit->second;
    KeyLock& kl = locks_[key];
    for (auto it = kl.waiters.begin(); it != kl.waiters.end(); ++it) {
      if (it->txn == txn) {
        host_.cancel_timer(it->timeout);
        close_wait_span(*it, "cancelled");
        kl.waiters.erase(it);
        break;
      }
    }
    waiting_on_.erase(wit);
  }
  priorities_.erase(txn);
  // Release held locks.
  if (const auto hit = held_by_txn_.find(txn); hit != held_by_txn_.end()) {
    const std::set<Key> keys = std::move(hit->second);
    held_by_txn_.erase(hit);
    for (const auto& key : keys) {
      auto& kl = locks_[key];
      kl.holders.erase(txn);
      pump(key);
    }
  }
}

std::int64_t LockManager::holder_priority(const TxnId& txn) const {
  const auto it = priorities_.find(txn);
  // Unknown priority counts as oldest, so the requester defers to it.
  return it == priorities_.end() ? std::numeric_limits<std::int64_t>::min() : it->second;
}

bool LockManager::holds(const TxnId& txn, const Key& key, LockMode mode) const {
  const auto lit = locks_.find(key);
  if (lit == locks_.end()) return false;
  const auto hit = lit->second.holders.find(txn);
  if (hit == lit->second.holders.end()) return false;
  return mode == LockMode::Shared || hit->second == LockMode::Exclusive;
}

std::size_t LockManager::waiting_count() const { return waiting_on_.size(); }

void LockManager::detect_deadlock(const Key& /*start_key*/, const TxnId& waiter) {
  // waits-for edges: each waiting txn -> every current holder of its key.
  // Follow the chain from `waiter`; if it loops back, abort the youngest
  // (largest priority number) waiter on the cycle.
  std::set<TxnId> on_path{waiter};
  std::vector<TxnId> path{waiter};
  // Iterative DFS over the (small) graph.
  std::function<bool(const TxnId&)> walk = [&](const TxnId& txn) -> bool {
    const auto wit = waiting_on_.find(txn);
    if (wit == waiting_on_.end()) return false;
    const auto lit = locks_.find(wit->second);
    if (lit == locks_.end()) return false;
    for (const auto& [holder, mode] : lit->second.holders) {
      if (holder == txn) continue;
      if (on_path.contains(holder)) return true;  // cycle
      on_path.insert(holder);
      path.push_back(holder);
      if (walk(holder)) return true;
      path.pop_back();
      on_path.erase(holder);
    }
    return false;
  };
  if (!walk(waiter)) return;

  // Victim: the youngest transaction on the path that is actually waiting.
  const TxnId* victim = nullptr;
  std::int64_t victim_priority = std::numeric_limits<std::int64_t>::min();
  for (const auto& txn : path) {
    const auto wit = waiting_on_.find(txn);
    if (wit == waiting_on_.end()) continue;
    const auto& kl = locks_.at(wit->second);
    for (const auto& req : kl.waiters) {
      if (req.txn == txn && req.priority > victim_priority) {
        victim_priority = req.priority;
        victim = &txn;
      }
    }
  }
  util::ensure(victim != nullptr, "LockManager: cycle without waiting victim");
  const TxnId victim_txn = *victim;  // copy before mutation
  util::log_info("lock: deadlock, aborting ", victim_txn);
  ++deadlock_aborts_;
  host_.sim().metrics().incr("db.lock.deadlocks");
  host_.sim().tracer().instant(host_.id(), "db/lock.deadlock", host_.now(), victim_txn,
                               obs::Attrs{{"cycle_len", std::to_string(path.size())}});
  abort_waiter(waiting_on_.at(victim_txn), victim_txn);
}

void LockManager::abort_waiter(const Key& key, const TxnId& txn) {
  const auto lit = locks_.find(key);
  if (lit == locks_.end()) return;
  KeyLock& kl = lit->second;
  for (auto it = kl.waiters.begin(); it != kl.waiters.end(); ++it) {
    if (it->txn != txn) continue;
    host_.cancel_timer(it->timeout);
    close_wait_span(*it, "aborted");
    AbortFn aborted = std::move(it->aborted);
    kl.waiters.erase(it);
    waiting_on_.erase(txn);
    pump(key);
    obs::ProfScope cb(obs::CostCenter::Technique);
    aborted();  // last: the callback usually calls release_all
    return;
  }
}

}  // namespace repli::db
