// Write-ahead log (in-memory): the redo records a primary ships to its
// secondaries in eager-primary-copy replication, and an audit trail for
// tests. Crash-recovery-from-disk is out of scope (crash-stop model).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "db/storage.hh"

namespace repli::db {

enum class WalType { Begin, Write, Commit, Abort };

struct WalRecord {
  std::uint64_t lsn = 0;
  WalType type = WalType::Begin;
  std::string txn;
  Key key;      // Write records only
  Value value;  // Write records only

  template <class Ar>
  void fields(Ar& ar) {
    ar(lsn);
    ar(type);
    ar(txn);
    ar(key);
    ar(value);
  }
};

class Wal {
 public:
  using AppendFn = std::function<void(const WalRecord&)>;

  /// Called after every append (metrics/tracing hook). One observer.
  void set_observer(AppendFn fn) { observer_ = std::move(fn); }

  std::uint64_t begin(const std::string& txn);
  std::uint64_t write(const std::string& txn, const Key& key, const Value& value);
  std::uint64_t commit(const std::string& txn);
  std::uint64_t abort(const std::string& txn);

  const std::vector<WalRecord>& records() const { return records_; }
  /// Records with lsn > `after` (what still needs shipping).
  std::vector<WalRecord> tail(std::uint64_t after) const;
  std::uint64_t last_lsn() const { return next_lsn_ - 1; }
  /// Approximate log volume (payload bytes plus fixed per-record overhead).
  std::uint64_t bytes_appended() const { return bytes_appended_; }

  /// Approximate encoded size of one record.
  static std::uint64_t record_bytes(const WalRecord& rec);

  /// Redo: applies the committed transactions found in `records` to
  /// `storage`, in log order. Returns the number of transactions applied.
  static std::size_t redo(const std::vector<WalRecord>& records, Storage& storage);

 private:
  std::uint64_t append(WalType type, const std::string& txn, Key key = {}, Value value = {});
  std::vector<WalRecord> records_;
  std::uint64_t next_lsn_ = 1;
  std::uint64_t bytes_appended_ = 0;
  AppendFn observer_;
};

}  // namespace repli::db
