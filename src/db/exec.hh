// Operations, stored procedures, and the transaction execution engine.
//
// An operation names a registered stored procedure and declares the data
// items it reads and writes (the paper's protocols coordinate on data
// items, so declared access sets are what gets locked/ordered). Execution
// runs against a TxnExec context: reads see the transaction's own buffered
// writes, record the version read (for certification), and writes stay
// buffered until commit.
//
// Nondeterminism is explicit: a procedure calls ctx.choose(n), answered by
// a ChoiceSource. Sources: replica-local randomness (genuinely
// nondeterministic across replicas — what active replication forbids),
// request-seeded (deterministic everywhere), recording and replaying
// (semi-active replication's leader/follower pair).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "db/storage.hh"
#include "util/rng.hh"
#include "wire/message.hh"

namespace repli::db {

struct Operation {
  std::string proc;               // registered stored-procedure name
  std::vector<std::string> args;
  std::vector<Key> read_set;      // declared data items read
  std::vector<Key> write_set;     // declared data items written

  template <class Ar>
  void fields(Ar& ar) {
    ar(proc);
    ar(args);
    ar(read_set);
    ar(write_set);
  }

  /// True if the operation declares no writes (a read-only query).
  bool read_only() const { return write_set.empty(); }
  /// All declared items (read ∪ write), each with the strongest access.
  std::vector<std::pair<Key, bool>> lock_plan() const;  // (key, exclusive?)
};

/// Answers choose() calls during execution.
class ChoiceSource {
 public:
  virtual ~ChoiceSource() = default;
  virtual std::int64_t choose(std::int64_t n) = 0;  // result in [0, n)
};

/// Replica-local randomness: different replicas draw different values.
class LocalRandomChoices : public ChoiceSource {
 public:
  explicit LocalRandomChoices(util::Rng& rng) : rng_(rng) {}
  std::int64_t choose(std::int64_t n) override { return rng_.uniform(0, n - 1); }

 private:
  util::Rng& rng_;
};

/// Deterministic: seeded from the request id, same everywhere.
class SeededChoices : public ChoiceSource {
 public:
  explicit SeededChoices(std::uint64_t seed) : rng_(seed) {}
  std::int64_t choose(std::int64_t n) override { return rng_.uniform(0, n - 1); }

 private:
  util::Rng rng_;
};

/// Wraps another source and records every answer (semi-active leader).
class RecordingChoices : public ChoiceSource {
 public:
  explicit RecordingChoices(ChoiceSource& inner) : inner_(inner) {}
  std::int64_t choose(std::int64_t n) override {
    const auto v = inner_.choose(n);
    log_.push_back(v);
    return v;
  }
  const std::vector<std::int64_t>& log() const { return log_; }

 private:
  ChoiceSource& inner_;
  std::vector<std::int64_t> log_;
};

/// Replays a recorded choice log (semi-active follower).
class ReplayChoices : public ChoiceSource {
 public:
  explicit ReplayChoices(std::vector<std::int64_t> log) : log_(std::move(log)) {}
  std::int64_t choose(std::int64_t n) override;
  bool exhausted() const { return next_ == log_.size(); }

 private:
  std::vector<std::int64_t> log_;
  std::size_t next_ = 0;
};

class TxnExec;

/// The interface a stored procedure sees.
class ProcCtx {
 public:
  ProcCtx(TxnExec& txn, const Operation& op, ChoiceSource& choices);

  /// Reads a declared data item ("" if absent).
  Value get(const Key& key);
  /// Writes a declared data item (buffered until commit).
  void put(const Key& key, Value value);
  std::int64_t choose(std::int64_t n) { return choices_.choose(n); }

  const std::string& arg(std::size_t i) const;
  std::size_t arg_count() const;
  /// Sets the operation's result returned to the client.
  void result(std::string r) { result_ = std::move(r); }
  const std::string& current_result() const { return result_; }

 private:
  TxnExec& txn_;
  const Operation& op_;
  ChoiceSource& choices_;
  std::string result_;
};

using ProcFn = std::function<void(ProcCtx&)>;

class ProcRegistry {
 public:
  /// `deterministic` marks procedures safe for active replication.
  void add(const std::string& name, ProcFn fn, bool deterministic = true);
  const ProcFn& fn(const std::string& name) const;
  bool deterministic(const std::string& name) const;
  bool contains(const std::string& name) const { return procs_.contains(name); }

  /// Registry preloaded with the built-in procedures:
  ///   get(k) / put(k,v) / append(k,v) / add(k,delta) / transfer(a,b,amt)
  ///   / spin_nondet(k) — writes a choose()-dependent value (nondeterministic).
  static ProcRegistry with_builtins();

 private:
  struct Entry {
    ProcFn fn;
    bool deterministic;
  };
  std::map<std::string, Entry> procs_;
};

/// One transaction's buffered execution against a base storage.
class TxnExec {
 public:
  TxnExec(std::string txn_id, const Storage& base) : txn_id_(std::move(txn_id)), base_(base) {}

  /// Executes one operation; returns its result string.
  std::string run(const ProcRegistry& registry, const Operation& op, ChoiceSource& choices);

  const std::string& txn_id() const { return txn_id_; }
  /// Keys read from base storage -> version read (own-writes reads excluded).
  const std::map<Key, std::uint64_t>& read_versions() const { return reads_; }
  /// Buffered writes.
  const std::map<Key, Value>& writes() const { return writes_; }

  /// Applies buffered writes to `target` under one commit sequence number.
  /// Returns the commit sequence used.
  std::uint64_t commit_into(Storage& target);

 private:
  friend class ProcCtx;
  Value read(const Key& key);
  void write(const Key& key, Value value);

  std::string txn_id_;
  const Storage& base_;
  std::map<Key, std::uint64_t> reads_;
  std::map<Key, Value> writes_;
};

/// Convenience: execute a single-operation transaction and commit it.
struct SingleOpResult {
  std::string result;
  std::map<Key, Value> writes;
  std::map<Key, std::uint64_t> read_versions;
  std::uint64_t commit_seq = 0;  // 0 when not committed (read-only fast path)
};
SingleOpResult execute_and_commit(const ProcRegistry& registry, const Operation& op,
                                  Storage& storage, ChoiceSource& choices,
                                  const std::string& txn_id);

}  // namespace repli::db
