#include "util/assert.hh"

namespace repli::util {

void raise_invariant(const char* msg) { throw InvariantViolation(msg); }

void ensure(bool cond, const std::string& msg) {
  if (!cond) throw InvariantViolation(msg);
}

void fail(const char* msg) { throw InvariantViolation(msg); }

void fail(const std::string& msg) { throw InvariantViolation(msg); }

}  // namespace repli::util
