#include "util/assert.hh"

namespace repli::util {

void ensure(bool cond, const std::string& msg) {
  if (!cond) throw InvariantViolation(msg);
}

void fail(const std::string& msg) { throw InvariantViolation(msg); }

}  // namespace repli::util
