// Bump-pointer arena allocator.
//
// An Arena hands out raw memory by advancing a pointer through fixed-size
// chunks; reset() rewinds to the first chunk in O(1) while keeping every
// chunk for reuse, so a steady-state scope (one delivered message, one
// transaction) performs zero global operator new calls after warm-up.
// Nothing is destructed: the arena is for trivially-destructible scratch
// data (byte buffers, PODs) whose lifetime is the scope, not the object.
//
// Lifetime rules (see docs/ARCHITECTURE.md "Arena lifetime"): the owner of
// the scope — the network for a delivery, a technique for a transaction —
// owns the arena and resets it when the scope ends; borrowed pointers must
// not outlive the reset. ArenaScope is the RAII form for nested scopes: it
// rewinds to the position captured at construction, so inner scopes stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <span>
#include <vector>

namespace repli::util {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes) : chunk_bytes_(chunk_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Allocates `bytes` aligned to `align` (power of two). Never fails short
  /// of ::operator new failing; oversized requests get a dedicated chunk.
  void* alloc(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(static_cast<std::uintptr_t>(align) - 1);
    }
    cursor_ = p + bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Typed array allocation (T must be trivially destructible: reset() runs
  /// no destructors).
  template <typename T>
  std::span<T> alloc_array(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors; use it for trivial types only");
    auto* p = static_cast<T*>(alloc(count * sizeof(T), alignof(T)));
    return {p, count};
  }

  /// Copies `bytes` into the arena and returns the stable copy.
  std::span<std::uint8_t> copy(std::span<const std::uint8_t> bytes) {
    auto out = alloc_array<std::uint8_t>(bytes.size());
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  /// Rewinds to empty, keeping all chunks for reuse.
  void reset() {
    chunk_index_ = 0;
    rewind_to_chunk_start();
  }

  /// Opaque position for ArenaScope.
  struct Mark {
    std::size_t chunk = 0;
    std::uintptr_t cursor = 0;
    std::uintptr_t limit = 0;
  };
  Mark mark() const { return {chunk_index_, cursor_, limit_}; }
  void rewind(const Mark& m) {
    chunk_index_ = m.chunk;
    cursor_ = m.cursor;
    limit_ = m.limit;
  }

  /// Bytes currently handed out (earlier chunks count whole — a gauge, not
  /// an invariant).
  std::size_t bytes_used() const {
    if (chunks_.empty()) return 0;
    std::size_t used = 0;
    for (std::size_t i = 0; i < chunk_index_; ++i) used += chunks_[i].size;
    return used + (cursor_ - reinterpret_cast<std::uintptr_t>(chunks_[chunk_index_].data.get()));
  }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  void rewind_to_chunk_start() {
    if (chunks_.empty()) {
      cursor_ = 0;
      limit_ = 0;
      return;
    }
    const Chunk& c = chunks_[chunk_index_];
    cursor_ = reinterpret_cast<std::uintptr_t>(c.data.get());
    limit_ = cursor_ + c.size;
  }

  void grow(std::size_t need) {
    // Advance to the next pre-existing chunk that fits, else append one.
    while (chunk_index_ + 1 < chunks_.size()) {
      ++chunk_index_;
      if (chunks_[chunk_index_].size >= need) {
        rewind_to_chunk_start();
        return;
      }
    }
    const std::size_t size = need > chunk_bytes_ ? need : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::uint8_t[]>(size), size});
    chunk_index_ = chunks_.size() - 1;
    rewind_to_chunk_start();
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t chunk_index_ = 0;
  std::uintptr_t cursor_ = 0;  // next free byte
  std::uintptr_t limit_ = 0;   // end of current chunk
};

/// RAII scope: rewinds the arena to the construction point on exit, so
/// nested scopes (a transaction containing per-message work) stack.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena) : arena_(arena), mark_(arena.mark()) {}
  ~ArenaScope() { arena_.rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// Growable array of trivially-copyable elements backed by an arena: scratch
/// for scoped algorithms (e.g. a deadlock-graph walk) whose calls may nest —
/// each level takes an ArenaScope and its ArenaVecs vanish on rewind.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> && std::is_trivially_destructible_v<T>);

 public:
  explicit ArenaVec(Arena& arena) : arena_(arena) {}

  void push_back(const T& v) {
    if (size_ == cap_) grow();
    data_[size_++] = v;
  }
  void pop_back() { --size_; }

  bool contains(const T& v) const {
    for (std::size_t i = 0; i < size_; ++i) {
      if (data_[i] == v) return true;
    }
    return false;
  }

  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T& operator[](std::size_t i) const { return data_[i]; }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    T* next = arena_.alloc_array<T>(new_cap).data();
    if (size_ > 0) std::memcpy(next, data_, size_ * sizeof(T));
    data_ = next;
    cap_ = new_cap;
  }

  Arena& arena_;
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = 0;
};

}  // namespace repli::util
