#include "util/rng.hh"

#include <algorithm>
#include <cmath>

#include "util/assert.hh"

namespace repli::util {

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  ensure(lo <= hi, "Rng::uniform: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine_());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - (std::uint64_t(-1) % range);
  std::uint64_t draw;
  do {
    draw = engine_();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

double Rng::uniform01() {
  // 53 bits of mantissa, in [0, 1).
  return static_cast<double>(engine_() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  double u = uniform01();
  // Guard log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(engine_()); }

Zipf::Zipf(std::size_t n, double theta) {
  ensure(n > 0, "Zipf: empty domain");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), theta);
    cdf_[r] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t Zipf::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace repli::util
