// Deterministic random number generation.
//
// Every source of randomness in a simulation run is derived from one seeded
// `Rng`, so a run is a pure function of (configuration, seed). Distribution
// helpers are implemented by hand (not via std::*_distribution) because the
// standard distributions are not guaranteed to produce identical streams
// across library implementations, and trace-determinism tests rely on that.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace repli::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponentially distributed double with the given mean (>= 0).
  double exponential(double mean);

  /// Derive an independent child generator (splittable-stream style).
  Rng split();

  /// Raw 64-bit draw, exposed for hashing/shuffling helpers.
  std::uint64_t next_u64() { return engine_(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-distributed ranks in [0, n): rank r drawn with probability
/// proportional to 1/(r+1)^theta. theta == 0 degenerates to uniform.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);

  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace repli::util
