#include "util/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assert.hh"

namespace repli::util {

namespace {
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
}  // namespace

void Histogram::sort_if_needed() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::mean() const {
  if (samples_.empty()) return kNan;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::min() const {
  if (samples_.empty()) return kNan;
  sort_if_needed();
  return samples_.front();
}

double Histogram::max() const {
  if (samples_.empty()) return kNan;
  sort_if_needed();
  return samples_.back();
}

double Histogram::percentile(double q) const {
  ensure(q >= 0.0 && q <= 100.0, "Histogram::percentile: q out of range");
  if (samples_.empty()) return kNan;
  sort_if_needed();
  if (samples_.size() == 1) return samples_[0];
  const double rank = q / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::stddev() const {
  if (samples_.empty()) return kNan;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size()));
}

}  // namespace repli::util
