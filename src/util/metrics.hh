// Sampling histogram with exact percentiles (sample counts here are small
// enough that storing every sample is cheaper and more precise than
// bucketing). The labeled metrics registry built on top of it lives in
// obs/metrics.hh.
#pragma once

#include <cstdint>
#include <vector>

namespace repli::util {

class Histogram {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  // All accessors return NaN on an empty histogram (never UB): a bench row
  // with no completed operations renders as "nan"/null instead of crashing.
  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile with linear interpolation; q in [0, 100].
  double percentile(double q) const;
  double p50() const { return percentile(50); }
  double p95() const { return percentile(95); }
  double p99() const { return percentile(99); }
  double median() const { return p50(); }
  double stddev() const;

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

}  // namespace repli::util
