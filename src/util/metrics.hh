// Lightweight metrics used by benches and tests: counters and a sampling
// histogram with exact percentiles (sample counts here are small enough that
// storing every sample is cheaper and more precise than bucketing).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace repli::util {

class Histogram {
 public:
  void add(double v) { samples_.push_back(v); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double min() const;
  double max() const;
  /// Exact percentile by nearest-rank; q in [0, 100]. Requires non-empty.
  double percentile(double q) const;
  double stddev() const;

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void sort_if_needed() const;
};

/// Named counters/histograms for one simulation run.
class Metrics {
 public:
  void incr(const std::string& name, std::int64_t by = 1) { counters_[name] += by; }
  std::int64_t counter(const std::string& name) const;

  Histogram& histo(const std::string& name) { return histos_[name]; }
  const Histogram* find_histo(const std::string& name) const;

  const std::map<std::string, std::int64_t>& counters() const { return counters_; }

 private:
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histos_;
};

}  // namespace repli::util
