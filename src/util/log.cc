#include "util/log.hh"

#include <iostream>

namespace repli::util {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& msg) {
  if (level_ < level) return;
  std::string prefix = prefix_ ? prefix_() : std::string{};
  std::cerr << prefix << msg << '\n';
}

}  // namespace repli::util
