// Internal invariant checking.
//
// `ensure` is for programmer invariants (a failure is a bug in replikit);
// it throws `InvariantViolation` so tests can observe violations and so a
// failure inside the simulator unwinds cleanly instead of calling abort().
#pragma once

#include <stdexcept>
#include <string>

namespace repli::util {

/// Thrown when an internal invariant does not hold. Catching this anywhere
/// other than a test is almost certainly wrong.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

/// Cold throw helper: the std::string for the exception is only built here,
/// so an ensure() that passes costs a branch — not a heap allocation. (The
/// old `ensure(bool, const std::string&)` signature materialized the message
/// string on every call; on the simulator hot path that was several
/// allocations per dispatched event.)
[[noreturn]] void raise_invariant(const char* msg);

/// Throws InvariantViolation with `msg` if `cond` is false. Allocation-free
/// when the invariant holds.
inline void ensure(bool cond, const char* msg) {
  if (!cond) [[unlikely]] raise_invariant(msg);
}

/// Overload for call sites that build a dynamic message; the string is
/// constructed by the caller, so keep these off hot paths.
void ensure(bool cond, const std::string& msg);

/// Unconditional invariant failure (e.g. unreachable switch arms).
[[noreturn]] void fail(const char* msg);
[[noreturn]] void fail(const std::string& msg);

}  // namespace repli::util
