// Internal invariant checking.
//
// `ensure` is for programmer invariants (a failure is a bug in replikit);
// it throws `InvariantViolation` so tests can observe violations and so a
// failure inside the simulator unwinds cleanly instead of calling abort().
#pragma once

#include <stdexcept>
#include <string>

namespace repli::util {

/// Thrown when an internal invariant does not hold. Catching this anywhere
/// other than a test is almost certainly wrong.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what) : std::logic_error(what) {}
};

/// Throws InvariantViolation with `msg` if `cond` is false.
void ensure(bool cond, const std::string& msg);

/// Unconditional invariant failure (e.g. unreachable switch arms).
[[noreturn]] void fail(const std::string& msg);

}  // namespace repli::util
