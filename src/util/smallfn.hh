// Move-only callable with inline storage, for the simulator's hot paths.
//
// std::function<void()> heap-allocates as soon as a lambda's captures
// exceed its (small) internal buffer — and every scheduled event, timer,
// and network delivery in the simulator is exactly such a lambda. SmallFn
// keeps captures up to kInlineBytes in place, so steady-state scheduling
// performs zero heap allocations; larger callables fall back to the heap
// transparently. Move-only: the event queue moves events, never copies
// them, and move-only captures (e.g. pooled buffers) are allowed.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "util/assert.hh"

namespace repli::util {

class SmallFn {
 public:
  /// Inline capture budget. Sized for the network-delivery lambda (this +
  /// two node ids + WireContext + flow id + shared_ptr) with headroom.
  /// Note: wrapping one SmallFn inside another always spills to the heap
  /// (the wrapper is strictly bigger than the buffer) — hot paths must
  /// erase exactly once (see Simulator's owner-guarded events).
  static constexpr std::size_t kInlineBytes = 64;

  SmallFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, SmallFn> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      manager_ = &inline_manager<Fn>;
    } else {
      heap_ = new Fn(std::forward<F>(f));
      manager_ = &heap_manager<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  explicit operator bool() const { return manager_ != nullptr; }

  void operator()() {
    ensure(manager_ != nullptr, "SmallFn: calling an empty function");
    manager_(Op::Call, this, nullptr);
  }

  void reset() {
    if (manager_ != nullptr) {
      manager_(Op::Destroy, this, nullptr);
      manager_ = nullptr;
    }
  }

 private:
  enum class Op { Call, Destroy, Move };
  using Manager = void (*)(Op, SmallFn*, SmallFn*);

  void move_from(SmallFn& other) noexcept {
    manager_ = other.manager_;
    if (manager_ != nullptr) {
      manager_(Op::Move, &other, this);
      other.manager_ = nullptr;
    }
  }

  template <typename Fn>
  static void inline_manager(Op op, SmallFn* self, SmallFn* dst) {
    auto* fn = std::launder(reinterpret_cast<Fn*>(self->buf_));
    switch (op) {
      case Op::Call: (*fn)(); break;
      case Op::Destroy: fn->~Fn(); break;
      case Op::Move:
        ::new (static_cast<void*>(dst->buf_)) Fn(std::move(*fn));
        fn->~Fn();
        break;
    }
  }

  template <typename Fn>
  static void heap_manager(Op op, SmallFn* self, SmallFn* dst) {
    auto* fn = static_cast<Fn*>(self->heap_);
    switch (op) {
      case Op::Call: (*fn)(); break;
      case Op::Destroy: delete fn; break;
      case Op::Move:
        dst->heap_ = fn;  // steal the pointer; no reallocation
        self->heap_ = nullptr;
        break;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    void* heap_;
  };
  Manager manager_ = nullptr;
};

}  // namespace repli::util
