// Minimal leveled logger. The simulator installs a time-prefix hook so log
// lines carry simulated time. Logging defaults to Off so tests stay quiet;
// benches and examples turn it on per run.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace repli::util {

enum class LogLevel { Off = 0, Error = 1, Info = 2, Debug = 3 };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Hook producing a prefix for each line (the simulator sets this to emit
  /// simulated timestamps). May be empty.
  void set_prefix_hook(std::function<std::string()> hook) { prefix_ = std::move(hook); }

  void write(LogLevel level, const std::string& msg);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::Off;
  std::function<std::string()> prefix_;
};

namespace detail {
inline void log_at(LogLevel level, const std::string& msg) {
  Logger::instance().write(level, msg);
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (Logger::instance().level() < LogLevel::Info) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_at(LogLevel::Info, os.str());
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (Logger::instance().level() < LogLevel::Debug) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_at(LogLevel::Debug, os.str());
}

template <typename... Args>
void log_error(Args&&... args) {
  if (Logger::instance().level() < LogLevel::Error) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_at(LogLevel::Error, os.str());
}

}  // namespace repli::util
