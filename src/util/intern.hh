// String interning: dense uint32 ids for repeated strings.
//
// The engine's hot structures (lock table, storage, checkers) historically
// keyed std::map<std::string, ...> — every lookup re-hashed/re-compared the
// key string and every insert allocated a node. An Interner maps each
// distinct string to a dense id exactly once; everything downstream indexes
// flat vectors by id and de-interns back to the string only at artifact
// edges (traces, exports, error text). Ids are assigned in first-seen
// order, so a deterministic run interns deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/assert.hh"

namespace repli::util {

class Interner {
 public:
  using Id = std::uint32_t;
  static constexpr Id kNoId = 0xFFFFFFFFu;

  /// Returns the id for `s`, assigning the next dense id on first sight.
  Id intern(std::string_view s) {
    const auto it = ids_.find(s);
    if (it != ids_.end()) return it->second;
    const Id id = static_cast<Id>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Id of `s` if already interned, else kNoId. Never allocates.
  Id find(std::string_view s) const {
    const auto it = ids_.find(s);
    return it == ids_.end() ? kNoId : it->second;
  }

  /// De-interns: the string for a live id.
  const std::string& str(Id id) const {
    ensure(id < strings_.size(), "Interner::str: bad id");
    return strings_[id];
  }

  std::size_t size() const { return strings_.size(); }

 private:
  // Keys are owned std::strings (stable storage); lookups by string_view
  // via transparent hashing, so find/intern never build a temporary string.
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const { return a == b; }
  };

  std::vector<std::string> strings_;
  std::unordered_map<std::string, Id, Hash, Eq> ids_;
};

}  // namespace repli::util
