#include "check/sequential.hh"

#include "obs/profile.hh"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "util/assert.hh"

namespace repli::check {

namespace {

std::int64_t to_int(const std::string& s) { return s.empty() ? 0 : std::stoll(s); }

bool apply(const ScOp& op, std::map<std::string, std::string>& state) {
  auto& cell = state[op.key];
  switch (op.kind) {
    case LinOp::Kind::Get:
      return op.result == cell;
    case LinOp::Kind::Put:
      if (op.result != "ok") return false;
      cell = op.arg;
      return true;
    case LinOp::Kind::Add: {
      const auto expected = to_int(cell) + to_int(op.arg);
      if (op.result != std::to_string(expected)) return false;
      cell = std::to_string(expected);
      return true;
    }
  }
  return false;
}

std::uint64_t fingerprint(const std::vector<std::size_t>& progress,
                          const std::map<std::string, std::string>& state) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h ^= static_cast<std::uint8_t>(c);
      h *= 1099511628211ull;
    }
    h ^= 0xFF;
    h *= 1099511628211ull;
  };
  for (const auto p : progress) {
    h ^= p + 1;
    h *= 1099511628211ull;
  }
  for (const auto& [key, value] : state) {
    mix(key);
    mix(value);
  }
  return h;
}

}  // namespace

bool check_sequential_history(const std::vector<ScOp>& ops, std::string* violation) {
  util::ensure(ops.size() <= 20, "check_sequential_history: history too large");

  // Per-client program-order queues.
  std::map<std::int32_t, std::vector<ScOp>> queues;
  for (const auto& op : ops) queues[op.client].push_back(op);
  std::vector<std::vector<ScOp>> clients;
  for (auto& [client, queue] : queues) clients.push_back(std::move(queue));

  struct Frame {
    std::vector<std::size_t> progress;
    std::map<std::string, std::string> state;
  };
  std::vector<Frame> stack{{std::vector<std::size_t>(clients.size(), 0), {}}};
  std::unordered_set<std::uint64_t> visited;

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    bool all_done = true;
    for (std::size_t c = 0; c < clients.size(); ++c) {
      all_done &= frame.progress[c] == clients[c].size();
    }
    if (all_done) return true;
    if (!visited.insert(fingerprint(frame.progress, frame.state)).second) continue;

    for (std::size_t c = 0; c < clients.size(); ++c) {
      if (frame.progress[c] == clients[c].size()) continue;
      const ScOp& op = clients[c][frame.progress[c]];
      auto next_state = frame.state;
      if (!apply(op, next_state)) continue;
      Frame next;
      next.progress = frame.progress;
      ++next.progress[c];
      next.state = std::move(next_state);
      stack.push_back(std::move(next));
    }
  }
  if (violation != nullptr) {
    std::string text = "no sequentially consistent order exists for:";
    for (const auto& op : ops) {
      text += "\n  client " + std::to_string(op.client) + ": ";
      switch (op.kind) {
        case LinOp::Kind::Get: text += "get(" + op.key + ") -> '" + op.result + "'"; break;
        case LinOp::Kind::Put: text += "put(" + op.key + ", '" + op.arg + "')"; break;
        case LinOp::Kind::Add: text += "add(" + op.key + ", " + op.arg + ") -> " + op.result; break;
      }
    }
    *violation = text;
  }
  return false;
}

LinReport check_sequential_consistency(const repli::core::History& history) {
  obs::ProfScope prof(obs::CostCenter::Checker);
  LinReport report;
  std::vector<ScOp> ops;
  // History records are appended in invocation order, which is program
  // order per client.
  for (const auto& rec : history.ops()) {
    if (rec.response == 0 || !rec.ok) continue;
    if (rec.ops.size() != 1) continue;
    const auto& op = rec.ops.front();
    ScOp sc;
    sc.client = rec.client;
    if (op.proc == "get") {
      sc.kind = LinOp::Kind::Get;
    } else if (op.proc == "put") {
      sc.kind = LinOp::Kind::Put;
      sc.arg = op.args[1];
    } else if (op.proc == "add") {
      sc.kind = LinOp::Kind::Add;
      sc.arg = op.args[1];
    } else {
      continue;
    }
    sc.key = op.args[0];
    sc.result = rec.result;
    ops.push_back(std::move(sc));
  }
  report.ops_checked = ops.size();
  report.keys_checked = 1;  // SC is global, one combined check
  std::string violation;
  if (!check_sequential_history(ops, &violation)) {
    report.linearizable = false;  // field reused: "consistent under the criterion"
    report.violation = violation;
  }
  return report;
}

}  // namespace repli::check
