#include "check/linearizability.hh"

#include "obs/profile.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <unordered_set>

#include "util/assert.hh"

namespace repli::check {

namespace {

std::int64_t to_int(const std::string& s) { return s.empty() ? 0 : std::stoll(s); }

/// Applies `op` to `state`; returns false if the observed result is
/// impossible from this state.
bool apply(const LinOp& op, std::string& state) {
  switch (op.kind) {
    case LinOp::Kind::Get:
      return op.result == state;
    case LinOp::Kind::Put:
      if (op.result != "ok") return false;
      state = op.arg;
      return true;
    case LinOp::Kind::Add: {
      const auto expected = to_int(state) + to_int(op.arg);
      if (op.result != std::to_string(expected)) return false;
      state = std::to_string(expected);
      return true;
    }
  }
  return false;
}

std::uint64_t hash_config(const std::vector<bool>& done, const std::string& state) {
  std::uint64_t h = 1469598103934665603ull;
  for (const bool b : done) {
    h ^= b ? 0x9Eu : 0x31u;
    h *= 1099511628211ull;
  }
  for (const char c : state) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// DFS over linearization orders with (done-set, state) memoization.
bool search(const std::vector<LinOp>& ops) {
  const std::size_t n = ops.size();
  std::vector<bool> done(n, false);
  std::string state;
  std::unordered_set<std::uint64_t> visited;

  struct Frame {
    std::vector<bool> done;
    std::string state;
  };
  std::vector<Frame> stack{{done, state}};
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (std::all_of(frame.done.begin(), frame.done.end(), [](bool b) { return b; })) {
      return true;
    }
    if (!visited.insert(hash_config(frame.done, frame.state)).second) continue;

    // Earliest response among pending ops bounds what may linearize first:
    // an op can be next only if no other pending op *responded* before it
    // was *invoked*.
    sim::Time min_response = std::numeric_limits<sim::Time>::max();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frame.done[i]) min_response = std::min(min_response, ops[i].response);
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (frame.done[i]) continue;
      if (ops[i].invoke > min_response) continue;  // would reorder real time
      std::string next_state = frame.state;
      if (!apply(ops[i], next_state)) continue;
      Frame next = frame;
      next.done[i] = true;
      next.state = std::move(next_state);
      stack.push_back(std::move(next));
    }
  }
  return false;
}

}  // namespace

bool check_register_history(const std::vector<LinOp>& ops, std::string* violation) {
  if (ops.size() > 24) {
    util::fail("check_register_history: history too large for exhaustive search");
  }
  const bool ok = search(ops);
  if (!ok && violation != nullptr) {
    std::string text = "no linearization found for history:";
    for (const auto& op : ops) {
      text += "\n  [" + std::to_string(op.invoke) + "," + std::to_string(op.response) + "] ";
      switch (op.kind) {
        case LinOp::Kind::Get: text += "get() -> '" + op.result + "'"; break;
        case LinOp::Kind::Put: text += "put('" + op.arg + "') -> " + op.result; break;
        case LinOp::Kind::Add: text += "add(" + op.arg + ") -> " + op.result; break;
      }
    }
    *violation = text;
  }
  return ok;
}

LinReport check_linearizability(const repli::core::History& history) {
  return check_linearizability(history, LinOptions{});
}

LinReport check_linearizability(const repli::core::History& history,
                                const LinOptions& options) {
  obs::ProfScope prof(obs::CostCenter::Checker);
  LinReport report;
  std::map<std::string, std::vector<LinOp>> per_key;
  for (const auto& rec : history.ops()) {
    if (rec.response == 0 || !rec.ok) continue;  // incomplete or failed
    if (rec.ops.size() != 1) continue;
    const auto& op = rec.ops.front();
    LinOp lin;
    if (op.proc == "get") {
      lin.kind = LinOp::Kind::Get;
    } else if (op.proc == "put") {
      lin.kind = LinOp::Kind::Put;
      lin.arg = op.args[1];
    } else if (op.proc == "add") {
      lin.kind = LinOp::Kind::Add;
      lin.arg = op.args[1];
    } else {
      continue;
    }
    lin.result = rec.result;
    lin.invoke = rec.invoke;
    lin.response = rec.response;
    per_key[op.args[0]].push_back(lin);
  }
  for (const auto& [key, ops] : per_key) {
    if (options.exclude_keys != nullptr && options.exclude_keys->count(key) > 0) {
      ++report.keys_skipped;
      continue;
    }
    if (ops.size() > options.max_ops_per_key) {
      ++report.keys_skipped;
      continue;
    }
    ++report.keys_checked;
    report.ops_checked += ops.size();
    std::string violation;
    if (!check_register_history(ops, &violation)) {
      report.linearizable = false;
      report.violation = "key '" + key + "': " + violation;
      return report;
    }
  }
  return report;
}

}  // namespace repli::check
