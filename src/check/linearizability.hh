// Linearizability checker (Wing & Gong style exhaustive search with
// memoization) for single-key register histories over the built-in
// get/put/add procedures. Linearizability is a local property, so a
// multi-key history is checked by checking each key independently.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/history.hh"

namespace repli::check {

struct LinOp {
  enum class Kind { Get, Put, Add };
  Kind kind = Kind::Get;
  std::string arg;      // put: value written; add: delta
  std::string result;   // observed result
  sim::Time invoke = 0;
  sim::Time response = 0;
};

struct LinReport {
  bool linearizable = true;
  std::string violation;  // human-readable witness when not linearizable
  std::size_t keys_checked = 0;
  std::size_t ops_checked = 0;
  std::size_t keys_skipped = 0;  // excluded or over the search-size cap
};

/// Extraction/search options for histories with faults (exploration runs).
struct LinOptions {
  /// Keys whose register history must not be checked — typically keys a
  /// failed or timed-out update touched: the write's outcome is unknown
  /// (it may have committed invisibly), so a read observing it is not a
  /// violation witness. Counted in keys_skipped. May be nullptr.
  const std::set<db::Key>* exclude_keys = nullptr;
  /// Keys with more ops than this are skipped (counted in keys_skipped)
  /// instead of aborting the run — the Wing&Gong search is exponential.
  std::size_t max_ops_per_key = 24;
};

/// Checks one key's operation history against a string register (put/get)
/// with integer add support. Initial value is the empty string / zero.
bool check_register_history(const std::vector<LinOp>& ops, std::string* violation = nullptr);

/// Extracts per-key histories from completed single-operation requests in
/// `history` and checks each. Multi-op transactions and unknown procedures
/// are skipped (they are covered by the serializability checker instead).
LinReport check_linearizability(const repli::core::History& history);
LinReport check_linearizability(const repli::core::History& history, const LinOptions& options);

}  // namespace repli::check
