// Batch checker invocation for exploration runs: one call that applies
// every checker that is *sound* for a technique to a possibly-faulty
// history, instead of each caller hand-picking checkers and re-deriving
// the soundness rules.
//
// Soundness under faults differs from the quiet-run tests:
//   - A failed or timed-out update has an unknown outcome (it may have
//     committed invisibly), so register histories for keys it touched
//     cannot be judged — they are *tainted* and skipped, not failed.
//   - An update that succeeded only after spanning at least one client
//     retry window may have executed at two delegates (the reply cache
//     dedups per replica, not across replicas), so its keys are tainted
//     under the same rule.
//   - Weak (lazy) techniques promise convergence after reconciliation,
//     not 1SR or linearizability, so only the digest check applies.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "check/linearizability.hh"
#include "check/serializability.hh"
#include "core/history.hh"
#include "core/technique.hh"

namespace repli::check {

struct BatchOptions {
  bool serializability = true;   // write-order agreement + acyclic SG
  bool linearizability = true;   // per-key register histories
  bool digests = true;           // live replicas converged to one value map
  std::size_t max_ops_per_key = 24;  // larger keys are skipped, not fatal
  /// When nonzero, keys written by a *successful* op that took at least
  /// this long are tainted too: the op likely spanned a client retry and
  /// may have executed at more than one delegate. Set to the client
  /// retry timeout.
  sim::Time taint_slow_ops = 0;
};

/// The checks that hold for `kind` under perturbed-but-fault-tolerated
/// schedules, mirroring what the repo's own consistency tests assert:
/// strong techniques get 1SR + digests; the distributed-systems-style
/// strong techniques additionally get per-op linearizability; weak (lazy)
/// techniques get digests only (and only after heal + settle).
BatchOptions checks_for(core::TechniqueKind kind);

/// Keys whose register verdict is unreliable: touched by the write set of
/// any failed, incomplete, or (see taint_slow_ops) suspiciously slow op.
std::set<db::Key> tainted_keys(const core::History& history, sim::Time taint_slow_ops = 0);

struct BatchVerdict {
  bool ok = true;
  std::string failed_check;  // "serializability" | "linearizability" | "digest"
  std::string violation;     // witness for the first failed check
  SrReport serializability;  // populated when that check ran
  LinReport linearizability; // populated when that check ran
  bool digests_agree = true;
  std::size_t tainted_keys = 0;
};

/// Runs the enabled checks over `history` and the live replicas'
/// `digests` (as returned by Cluster::storage_digests after healing all
/// partitions and settling). Returns on the first failed check.
BatchVerdict run_checks(const core::History& history,
                        const std::vector<std::uint64_t>& digests,
                        const BatchOptions& options);

}  // namespace repli::check
