#include "check/serializability.hh"

#include "obs/profile.hh"
#include "util/intern.hh"

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace repli::check {

namespace {

using repli::core::CommitRecord;
using repli::core::History;

/// Interned ids remapped to lexicographic ranks: rank order == name order,
/// so numeric iteration reproduces the string-keyed walk this replaced
/// (same start order, same witness on failure).
struct Ranked {
  std::vector<std::uint32_t> id_of_rank;  // rank -> interner id
  std::vector<std::uint32_t> rank_of_id;  // interner id -> rank

  explicit Ranked(const util::Interner& names) {
    id_of_rank.resize(names.size());
    for (std::uint32_t i = 0; i < id_of_rank.size(); ++i) id_of_rank[i] = i;
    std::sort(id_of_rank.begin(), id_of_rank.end(),
              [&](std::uint32_t a, std::uint32_t b) { return names.str(a) < names.str(b); });
    rank_of_id.resize(names.size());
    for (std::uint32_t r = 0; r < id_of_rank.size(); ++r) rank_of_id[id_of_rank[r]] = r;
  }
};

/// Cycle detection over a rank-indexed adjacency list (iterative three-color
/// DFS). Neighbor sets iterate in ascending rank = ascending name, matching
/// the lexicographic order of the string-keyed version.
bool has_cycle(const std::vector<std::set<std::uint32_t>>& graph,
               std::pair<std::uint32_t, std::uint32_t>* witness) {
  enum class Color : std::uint8_t { White, Gray, Black };
  std::vector<Color> color(graph.size(), Color::White);

  for (std::uint32_t start = 0; start < graph.size(); ++start) {
    if (color[start] != Color::White) continue;
    std::vector<std::pair<std::uint32_t, bool>> stack{{start, false}};
    while (!stack.empty()) {
      const auto [node, processed] = stack.back();
      stack.pop_back();
      if (processed) {
        color[node] = Color::Black;
        continue;
      }
      if (color[node] != Color::White) continue;
      color[node] = Color::Gray;
      stack.push_back({node, true});
      for (const auto next : graph[node]) {
        if (color[next] == Color::Gray) {
          if (witness != nullptr) *witness = {node, next};
          return true;
        }
        if (color[next] == Color::White) stack.push_back({next, false});
      }
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> writer_sequence(const History& history, sim::NodeId replica,
                                         const db::Key& key) {
  std::vector<std::string> out;
  for (const auto& rec : history.commits()) {
    if (rec.replica != replica) continue;
    if (rec.writes.contains(key)) out.push_back(rec.txn);
  }
  return out;
}

SrReport check_one_copy_serializability(const History& history) {
  obs::ProfScope prof(obs::CostCenter::Checker);
  SrReport report;

  // Intern transactions and written keys to dense ids; strings reappear only
  // in the report (see docs/ARCHITECTURE.md "Interned keys").
  util::Interner txn_names;
  util::Interner key_names;
  std::set<sim::NodeId> replicas;
  for (const auto& rec : history.commits()) {
    replicas.insert(rec.replica);
    txn_names.intern(rec.txn);
    for (const auto& [key, value] : rec.writes) key_names.intern(key);
  }
  report.transactions = txn_names.size();
  if (replicas.empty()) return report;

  const Ranked txn_rank(txn_names);
  const Ranked key_rank(key_names);
  const auto txn_str = [&](std::uint32_t rank) -> const std::string& {
    return txn_names.str(txn_rank.id_of_rank[rank]);
  };

  const std::vector<sim::NodeId> replica_list(replicas.begin(), replicas.end());
  const auto replica_idx = [&](sim::NodeId replica) {
    return static_cast<std::size_t>(
        std::lower_bound(replica_list.begin(), replica_list.end(), replica) -
        replica_list.begin());
  };

  // One pass builds every per-(replica, key) writer sequence — txn rank plus
  // the commit_seq the rw-edge scan needs — replacing the per-key
  // re-scans of the whole history the string version did.
  using Write = std::pair<std::uint64_t, std::uint32_t>;  // (commit_seq, txn rank)
  std::vector<std::vector<std::vector<Write>>> writers(
      replica_list.size(), std::vector<std::vector<Write>>(key_names.size()));
  for (const auto& rec : history.commits()) {
    const std::size_t ridx = replica_idx(rec.replica);
    const std::uint32_t t = txn_rank.rank_of_id[txn_names.find(rec.txn)];
    for (const auto& [key, value] : rec.writes) {
      writers[ridx][key_rank.rank_of_id[key_names.find(key)]].push_back({rec.commit_seq, t});
    }
  }

  // 1. Write-order agreement across replicas, per key. Replicas that never
  // saw a key's tail (e.g. crashed mid-run) are compared on the common
  // prefix only if they are a strict prefix; a genuine reorder fails.
  for (std::uint32_t kr = 0; kr < key_names.size(); ++kr) {
    const std::vector<Write>* longest = &writers[0][kr];
    for (std::size_t ridx = 1; ridx < replica_list.size(); ++ridx) {
      if (writers[ridx][kr].size() > longest->size()) longest = &writers[ridx][kr];
    }
    for (std::size_t ridx = 0; ridx < replica_list.size(); ++ridx) {
      const auto& seq = writers[ridx][kr];
      const bool prefix = std::equal(
          seq.begin(), seq.end(), longest->begin(),
          [](const Write& a, const Write& b) { return a.second == b.second; });
      if (!prefix) {
        report.write_orders_agree = false;
        report.serializable = false;
        report.violation = "replicas disagree on write order of key '" +
                           key_names.str(key_rank.id_of_rank[kr]) + "'";
        return report;
      }
    }
  }

  // 2. Serialization graph, rank-indexed. Edges derived per replica, then
  // unioned (the one-copy view: all replicas must embed into one serial
  // order).
  std::vector<std::set<std::uint32_t>> graph(txn_names.size());

  // ww edges: per replica, per key, install order.
  for (std::size_t ridx = 0; ridx < replica_list.size(); ++ridx) {
    for (std::uint32_t kr = 0; kr < key_names.size(); ++kr) {
      const auto& seq = writers[ridx][kr];
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i - 1].second != seq[i].second) {
          graph[seq[i - 1].second].insert(seq[i].second);
          ++report.edges;
        }
      }
    }
  }

  // wr and rw edges from recorded read versions: a read of version v at
  // replica r matches the commit with that commit_seq at r.
  std::map<std::pair<sim::NodeId, std::uint64_t>, const CommitRecord*> by_seq;
  for (const auto& rec : history.commits()) {
    by_seq[{rec.replica, rec.commit_seq}] = &rec;
  }
  for (const auto& rec : history.commits()) {
    const std::size_t ridx = replica_idx(rec.replica);
    const std::uint32_t self = txn_rank.rank_of_id[txn_names.find(rec.txn)];
    for (const auto& [key, version] : rec.read_versions) {
      if (version != 0) {
        const auto it = by_seq.find({rec.replica, version});
        if (it != by_seq.end() && it->second->writes.contains(key) &&
            it->second->txn != rec.txn) {
          const std::uint32_t writer = txn_rank.rank_of_id[txn_names.find(it->second->txn)];
          graph[writer].insert(self);  // wr: writer happens-before reader
          ++report.edges;
        }
      }
      // rw: the reader precedes any later writer of this key at its replica.
      // A key that was read but never written has no interned id — and no
      // writers, so no edges.
      const auto kid = key_names.find(key);
      if (kid == util::Interner::kNoId) continue;
      for (const auto& [seq, writer] : writers[ridx][key_rank.rank_of_id[kid]]) {
        if (seq > version && writer != self) {
          graph[self].insert(writer);
          ++report.edges;
        }
      }
    }
  }

  std::pair<std::uint32_t, std::uint32_t> witness;
  if (has_cycle(graph, &witness)) {
    report.serializable = false;
    report.violation =
        "cycle through " + txn_str(witness.first) + " -> " + txn_str(witness.second);
  }
  return report;
}

}  // namespace repli::check
