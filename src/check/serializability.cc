#include "check/serializability.hh"

#include "obs/profile.hh"

#include <algorithm>
#include <map>
#include <set>

namespace repli::check {

namespace {

using repli::core::CommitRecord;
using repli::core::History;

/// Cycle detection over an adjacency map (iterative three-color DFS).
bool has_cycle(const std::map<std::string, std::set<std::string>>& graph,
               std::string* witness) {
  enum class Color { White, Gray, Black };
  std::map<std::string, Color> color;
  for (const auto& [node, _] : graph) color[node] = Color::White;

  for (const auto& [start, _] : graph) {
    if (color[start] != Color::White) continue;
    std::vector<std::pair<std::string, bool>> stack{{start, false}};
    while (!stack.empty()) {
      auto [node, processed] = stack.back();
      stack.pop_back();
      if (processed) {
        color[node] = Color::Black;
        continue;
      }
      if (color[node] == Color::Black) continue;
      if (color[node] == Color::Gray) continue;
      color[node] = Color::Gray;
      stack.push_back({node, true});
      const auto it = graph.find(node);
      if (it == graph.end()) continue;
      for (const auto& next : it->second) {
        if (color.contains(next) && color[next] == Color::Gray) {
          if (witness != nullptr) *witness = "cycle through " + node + " -> " + next;
          return true;
        }
        if (!color.contains(next) || color[next] == Color::White) {
          stack.push_back({next, false});
        }
      }
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> writer_sequence(const History& history, sim::NodeId replica,
                                         const db::Key& key) {
  std::vector<std::string> out;
  for (const auto& rec : history.commits()) {
    if (rec.replica != replica) continue;
    if (rec.writes.contains(key)) out.push_back(rec.txn);
  }
  return out;
}

SrReport check_one_copy_serializability(const History& history) {
  obs::ProfScope prof(obs::CostCenter::Checker);
  SrReport report;

  // Collect replicas and keys.
  std::set<sim::NodeId> replicas;
  std::set<db::Key> keys;
  std::set<std::string> txns;
  for (const auto& rec : history.commits()) {
    replicas.insert(rec.replica);
    txns.insert(rec.txn);
    for (const auto& [key, value] : rec.writes) keys.insert(key);
  }
  report.transactions = txns.size();
  if (replicas.empty()) return report;

  // 1. Write-order agreement across replicas, per key. Replicas that never
  // saw a key's tail (e.g. crashed mid-run) are compared on the common
  // prefix only if they are a strict prefix; a genuine reorder fails.
  for (const auto& key : keys) {
    std::vector<std::vector<std::string>> sequences;
    for (const auto replica : replicas) {
      sequences.push_back(writer_sequence(history, replica, key));
    }
    const auto& longest =
        *std::max_element(sequences.begin(), sequences.end(),
                          [](const auto& a, const auto& b) { return a.size() < b.size(); });
    for (const auto& seq : sequences) {
      if (!std::equal(seq.begin(), seq.end(), longest.begin())) {
        report.write_orders_agree = false;
        report.serializable = false;
        report.violation = "replicas disagree on write order of key '" + key + "'";
        return report;
      }
    }
  }

  // 2. Serialization graph. Edges derived per replica, then unioned (the
  // one-copy view: all replicas must embed into one serial order).
  std::map<std::string, std::set<std::string>> graph;
  for (const auto& txn : txns) graph[txn];

  // ww edges: per replica, per key, install order.
  for (const auto replica : replicas) {
    for (const auto& key : keys) {
      const auto seq = writer_sequence(history, replica, key);
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i - 1] != seq[i]) {
          graph[seq[i - 1]].insert(seq[i]);
          ++report.edges;
        }
      }
    }
  }

  // wr and rw edges from recorded read versions: a read of version v at
  // replica r matches the commit with that commit_seq at r.
  std::map<std::pair<sim::NodeId, std::uint64_t>, const CommitRecord*> by_seq;
  for (const auto& rec : history.commits()) {
    by_seq[{rec.replica, rec.commit_seq}] = &rec;
  }
  for (const auto& rec : history.commits()) {
    for (const auto& [key, version] : rec.read_versions) {
      if (version != 0) {
        const auto it = by_seq.find({rec.replica, version});
        if (it != by_seq.end() && it->second->writes.contains(key) &&
            it->second->txn != rec.txn) {
          graph[it->second->txn].insert(rec.txn);  // wr: writer happens-before reader
          ++report.edges;
        }
      }
      // rw: the reader precedes any later writer of this key at its replica.
      for (const auto& wrec : history.commits()) {
        if (wrec.replica == rec.replica && wrec.writes.contains(key) &&
            wrec.commit_seq > version && wrec.txn != rec.txn) {
          graph[rec.txn].insert(wrec.txn);
          ++report.edges;
        }
      }
    }
  }

  std::string witness;
  if (has_cycle(graph, &witness)) {
    report.serializable = false;
    report.violation = witness;
  }
  return report;
}

}  // namespace repli::check
