#include "check/batch.hh"

namespace repli::check {

BatchOptions checks_for(core::TechniqueKind kind) {
  using core::TechniqueKind;
  BatchOptions opts;
  const auto& info = core::technique_info(kind);
  if (info.consistency == core::Consistency::Weak) {
    // Lazy techniques legitimately reorder conflicting work during
    // reconciliation; only post-settle convergence is promised.
    opts.serializability = false;
    opts.linearizability = false;
    return opts;
  }
  // The database-style strong techniques execute at a per-request
  // delegate; a cross-delegate retry can double-execute, which 1SR
  // tolerates (the duplicate serializes) but a register-level
  // linearizability witness would flag. Match the repo's consistency
  // tests: per-op linearizability is asserted for the DS-style group.
  if (kind == TechniqueKind::EagerPrimary || kind == TechniqueKind::EagerLocking) {
    opts.linearizability = false;
  }
  return opts;
}

std::set<db::Key> tainted_keys(const core::History& history, sim::Time taint_slow_ops) {
  std::set<db::Key> tainted;
  for (const auto& rec : history.ops()) {
    const bool unknown_outcome = rec.response == 0 || !rec.ok;
    const bool suspect_retry = taint_slow_ops > 0 && rec.response != 0 &&
                               rec.response - rec.invoke >= taint_slow_ops;
    if (!unknown_outcome && !suspect_retry) continue;
    for (const auto& op : rec.ops) {
      for (const auto& key : op.write_set) tainted.insert(key);
    }
  }
  return tainted;
}

BatchVerdict run_checks(const core::History& history,
                        const std::vector<std::uint64_t>& digests,
                        const BatchOptions& options) {
  BatchVerdict verdict;

  if (options.digests) {
    for (const auto d : digests) {
      if (d != digests.front()) {
        verdict.digests_agree = false;
        verdict.ok = false;
        verdict.failed_check = "digest";
        verdict.violation = "live replicas diverged: " + std::to_string(digests.size()) +
                            " digests do not all agree";
        return verdict;
      }
    }
  }

  if (options.serializability) {
    verdict.serializability = check_one_copy_serializability(history);
    if (!verdict.serializability.serializable) {
      verdict.ok = false;
      verdict.failed_check = "serializability";
      verdict.violation = verdict.serializability.violation;
      return verdict;
    }
  }

  if (options.linearizability) {
    const auto tainted = tainted_keys(history, options.taint_slow_ops);
    verdict.tainted_keys = tainted.size();
    LinOptions lin;
    lin.exclude_keys = &tainted;
    lin.max_ops_per_key = options.max_ops_per_key;
    verdict.linearizability = check_linearizability(history, lin);
    if (!verdict.linearizability.linearizable) {
      verdict.ok = false;
      verdict.failed_check = "linearizability";
      verdict.violation = verdict.linearizability.violation;
      return verdict;
    }
  }

  return verdict;
}

}  // namespace repli::check
