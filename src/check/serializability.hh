// 1-copy-serializability and convergence checks over a run's commit
// history.
//
// What the eager database techniques guarantee — and what this checker
// verifies from the recorded per-replica commit streams:
//   1. Write-order agreement: for every data item, all replicas installed
//      the same sequence of writer transactions (one logical copy).
//   2. Acyclic serialization graph: union of write-write edges (per-item
//      install order), write-read edges (a transaction read the version a
//      writer produced), and read-write edges (a transaction read a
//      version that a later writer overwrote). A cycle is a
//      serializability violation witness.
#pragma once

#include <string>
#include <vector>

#include "core/history.hh"

namespace repli::check {

struct SrReport {
  bool serializable = true;
  bool write_orders_agree = true;
  std::string violation;
  std::size_t transactions = 0;
  std::size_t edges = 0;
};

SrReport check_one_copy_serializability(const repli::core::History& history);

/// Per-key writer sequences of one replica, in commit order (exposed for
/// tests and for the write-order-agreement part of the report).
std::vector<std::string> writer_sequence(const repli::core::History& history,
                                         sim::NodeId replica, const db::Key& key);

}  // namespace repli::check
