// Sequential-consistency checker (§2.2: "linearisability is strictly
// stronger than sequential consistency... sequential consistency allows,
// under some conditions, to read old values").
//
// A history is sequentially consistent if some total order of all
// operations (a) respects each client's program order and (b) is legal for
// the register semantics — real time is *not* constrained, which is exactly
// what lets a lazy secondary serve a stale read. Unlike linearizability,
// SC is not local, so the search runs over all keys at once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/linearizability.hh"
#include "core/history.hh"

namespace repli::check {

struct ScOp {
  std::int32_t client = 0;
  std::string key;
  LinOp::Kind kind = LinOp::Kind::Get;
  std::string arg;     // put: value; add: delta
  std::string result;  // observed result
};

/// Exhaustive search with memoization; histories up to ~20 ops.
bool check_sequential_history(const std::vector<ScOp>& ops, std::string* violation = nullptr);

/// Extracts completed single-op get/put/add requests from `history`
/// (program order = per-client invocation order) and checks them.
LinReport check_sequential_consistency(const repli::core::History& history);

}  // namespace repli::check
