// Figure 13: eager update everywhere (distributed locking) with
// multi-operation transactions — SC (lock) -> EX loops per operation.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_multi_op(
      repli::core::TechniqueKind::EagerLocking, "Figure 13",
      "per-operation lock round and execution, final Two Phase Commit");
}
