// Figure 4: semi-active replication — ABCAST ordering, execution everywhere,
// the leader resolves nondeterministic choices over VSCAST.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::SemiActive, "Figure 4",
      "ordered execution; leader decides nondeterministic choices (AC)");
}
