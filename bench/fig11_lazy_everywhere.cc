// Figure 11: lazy update everywhere — optimistic local commit, later
// reconciliation decides the after-commit order.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::LazyEverywhere, "Figure 11",
      "commit anywhere, answer, reconcile via the ABCAST after-commit order");
}
