// Figure 1: the five-phase functional model itself. We exercise the one
// technique whose pattern uses all five phases (eager update-everywhere with
// distributed locking) and label each phase as the paper defines it, then
// list which phases each technique keeps, merges, or skips.
#include <iostream>

#include "bench/common.hh"

using namespace repli;

int main() {
  bench::print_header(
      "Figure 1 — functional model: RE -> SC -> EX -> AC -> END (Section 2.2)");
  std::cout <<
      "  1. Request (RE):                the client submits an operation\n"
      "  2. Server Coordination (SC):    replicas synchronise / order the operation\n"
      "  3. Execution (EX):              the operation is executed\n"
      "  4. Agreement Coordination (AC): replicas agree on the result (e.g. 2PC)\n"
      "  5. Response (END):              the outcome is sent back to the client\n";

  core::ClusterConfig cfg;
  cfg.kind = core::TechniqueKind::EagerLocking;  // exhibits all five phases
  cfg.replicas = 3;
  cfg.seed = 42;
  core::Cluster cluster(cfg);
  const auto probe = bench::probe_single_update(cluster);
  std::cout << "\n  a concrete five-phase run (eager update-everywhere locking):\n";
  std::cout << "  measured pattern: " << probe.measured_pattern << "\n\n";
  bench::print_timeline(cluster, probe.request_id);

  std::cout << "\n  how each technique instantiates the model (details: Figs. 2-14):\n";
  for (const auto& info : core::all_techniques()) {
    std::cout << "    " << std::string(info.name);
    for (std::size_t i = info.name.size(); i < 36; ++i) std::cout << ' ';
    std::cout << info.paper_pattern << "\n";
  }
  return probe.measured_pattern == "RE SC EX AC END" ? 0 : 1;
}
