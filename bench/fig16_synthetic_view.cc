// Figure 16: the synthetic view of approaches — one row per technique with
// its phase pattern and consistency class, all regenerated from
// instrumented runs and checked against the paper's table.
#include <iomanip>
#include <iostream>

#include "bench/common.hh"
#include "check/linearizability.hh"
#include "check/serializability.hh"

using namespace repli;

namespace {

/// Verifies the consistency class claim with the checkers: strong ->
/// serializable history (and converged); weak -> converges only after
/// reconciliation (we accept either, and report what we saw).
std::string probe_consistency(const core::TechniqueInfo& info, bool* matches) {
  core::ClusterConfig cfg;
  cfg.kind = info.kind;
  cfg.replicas = 3;
  cfg.clients = 3;
  cfg.seed = 11;
  if (info.consistency == core::Consistency::Weak) cfg.lazy_propagation_delay = 50 * sim::kMsec;
  core::Cluster cluster(cfg);

  int outstanding = 0;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 5; ++i) {
      ++outstanding;
      cluster.submit_op(c, core::op_put("hot", "c" + std::to_string(c) + "i" + std::to_string(i)),
                        [&outstanding](const core::ClientReply&) { --outstanding; });
    }
  }
  int guard = 0;
  while (outstanding > 0 && ++guard < 30000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  // Weak techniques may diverge here; measure before reconciliation drains.
  const bool diverged_mid_run = !cluster.converged();
  cluster.settle(5 * sim::kSec);
  const bool converged_eventually = cluster.converged();
  const auto sr = check::check_one_copy_serializability(cluster.history());

  if (info.consistency == core::Consistency::Strong) {
    *matches = converged_eventually && sr.serializable;
    return sr.serializable ? "1-copy-serializable" : ("VIOLATION: " + sr.violation);
  }
  *matches = converged_eventually;
  std::string out = "eventual convergence";
  if (diverged_mid_run) out += " (diverged during run, as expected)";
  return out;
}

}  // namespace

int main() {
  bench::print_header("Figure 16 — synthetic view of approaches (regenerated)");
  std::cout << "  technique                             paper pattern      measured           "
               "consistency check\n";
  bench::print_rule(110);
  int failures = 0;
  for (const auto& info : core::all_techniques()) {
    core::ClusterConfig cfg;
    cfg.kind = info.kind;
    cfg.replicas = 3;
    cfg.seed = 42;
    core::Cluster cluster(cfg);
    const auto probe = bench::probe_single_update(cluster);
    const bool pattern_ok = probe.measured_pattern == info.paper_pattern;

    bool consistency_ok = false;
    const auto consistency = probe_consistency(info, &consistency_ok);
    failures += (pattern_ok && consistency_ok) ? 0 : 1;

    std::cout << "  " << std::left << std::setw(38) << std::string(info.name)
              << std::setw(19) << std::string(info.paper_pattern) << std::setw(19)
              << probe.measured_pattern
              << (info.consistency == core::Consistency::Strong ? "strong: " : "weak:   ")
              << consistency << " " << bench::verdict(pattern_ok && consistency_ok) << "\n";
  }
  std::cout << "\n  strong group: coordination (SC/AC) precedes END; "
               "weak (lazy) group: END precedes AC.\n";
  return failures == 0 ? 0 : 1;
}
