// Figure 15: the possible combinations of phases. We run every technique,
// collect the distinct measured phase patterns, and verify the paper's
// observation that every strong-consistency combination has an SC and/or AC
// step before END.
#include <iostream>
#include <map>
#include <sstream>
#include <vector>

#include "bench/common.hh"

using namespace repli;

int main() {
  bench::print_header("Figure 15 — possible combinations of phases (measured)");
  std::map<std::string, std::vector<std::string>> by_pattern;
  std::map<std::string, bool> pattern_strong;
  int failures = 0;

  for (const auto& info : core::all_techniques()) {
    core::ClusterConfig cfg;
    cfg.kind = info.kind;
    cfg.replicas = 3;
    cfg.seed = 42;
    core::Cluster cluster(cfg);
    const auto probe = bench::probe_single_update(cluster);
    by_pattern[probe.measured_pattern].push_back(std::string(info.name));
    if (info.consistency == core::Consistency::Strong) {
      pattern_strong[probe.measured_pattern] = true;
    }
  }

  std::cout << "  distinct phase combinations observed across all techniques:\n\n";
  for (const auto& [pattern, users] : by_pattern) {
    std::cout << "    " << pattern;
    for (std::size_t i = pattern.size(); i < 20; ++i) std::cout << ' ';
    std::cout << "<- ";
    for (std::size_t i = 0; i < users.size(); ++i) {
      std::cout << (i ? ", " : "") << users[i];
    }
    std::cout << "\n";
  }

  std::cout << "\n  paper's claim: every strong-consistency combination has SC and/or AC "
               "before END\n";
  for (const auto& [pattern, strong] : pattern_strong) {
    if (!strong) continue;
    bool coord_before_end = false;
    std::istringstream stream(pattern);
    std::string tok;
    while (stream >> tok) {
      if (tok == "END") break;
      if (tok == "SC" || tok == "AC") coord_before_end = true;
    }
    std::cout << "    " << pattern;
    for (std::size_t i = pattern.size(); i < 20; ++i) std::cout << ' ';
    std::cout << bench::verdict(coord_before_end) << "\n";
    failures += coord_before_end ? 0 : 1;
  }
  std::cout << "\n  (lazy patterns place END before AC: that is exactly why they are weak)\n";
  return failures == 0 ? 0 : 1;
}
