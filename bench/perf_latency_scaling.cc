// The performance study the paper announces in Section 6 (part a):
// response time and message cost of every technique as the replica count
// grows. Expected shapes: lazy replies fastest (no coordination before
// END); ABCAST- and 2PC-based techniques pay per-replica coordination;
// update-everywhere-locking pays the most messages (per-op lock round at
// every site plus 2PC).
#include <iomanip>
#include <iostream>

#include "bench/common.hh"

using namespace repli;

int main() {
  bench::print_header(
      "Performance study (a): latency & messages/op vs. replication degree");
  std::cout << "  workload: 2 clients, 40 ops each, 50% writes, 64 keys, LAN-like network\n\n";
  std::cout << std::left << std::setw(38) << "  technique" << std::right;
  for (const int n : {2, 3, 5, 7}) std::cout << std::setw(12) << (std::to_string(n) + " repl");
  std::cout << "\n";
  bench::print_rule(98);

  std::vector<bench::RunStats> rows;
  for (const auto& info : core::all_techniques()) {
    // Rows per technique: latency percentiles and messages per op.
    std::vector<bench::RunStats> runs;
    for (const int n : {2, 3, 5, 7}) {
      bench::WorkloadParams params;
      params.replicas = n;
      params.clients = 2;
      params.ops_per_client = 40;
      params.write_ratio = 0.5;
      params.seed = 31;
      runs.push_back(bench::run_workload(info.kind, params));
    }
    std::cout << std::left << std::setw(38)
              << ("  " + std::string(info.name) + "  latency_us") << std::right;
    for (const auto& r : runs) {
      std::cout << std::setw(12) << std::fixed << std::setprecision(0) << r.mean_latency_us;
    }
    std::cout << "\n";
    std::cout << std::left << std::setw(38) << "        p50 / p99 latency_us" << std::right;
    for (const auto& r : runs) {
      std::cout << std::setw(12)
                << (std::to_string(static_cast<long long>(r.p50_latency_us)) + "/" +
                    std::to_string(static_cast<long long>(r.p99_latency_us)));
    }
    std::cout << "\n";
    std::cout << std::left << std::setw(38) << "        msgs/op" << std::right;
    for (const auto& r : runs) {
      std::cout << std::setw(12) << std::fixed << std::setprecision(1) << r.msgs_per_op;
    }
    std::cout << "\n";
    std::cout << std::left << std::setw(38) << "        ok/attempted" << std::right;
    for (const auto& r : runs) {
      std::cout << std::setw(12)
                << (std::to_string(r.ops_ok) + "/" + std::to_string(r.ops_attempted));
    }
    std::cout << "\n";
    rows.insert(rows.end(), runs.begin(), runs.end());
  }
  std::cout << "\n  expected shape: lazy < primary-based < abcast-based < locking in both\n"
            << "  latency and messages; costs grow with the replica count for the eager\n"
            << "  update-everywhere techniques, barely for the lazy ones.\n";
  bench::write_bench_json("perf_latency_scaling", rows);
  return 0;
}
