// Substrate microbenchmarks: raw simulator event throughput, wire codec
// cost, lock-manager acquire/release, event-queue push/pop, and end-to-end
// simulated cost of the two ABCAST implementations (the
// sequencer-vs-consensus ablation DESIGN.md calls out).
//
// Two modes in one binary:
//  - default: fixed-iteration measured loops that emit
//    BENCH_micro_substrate.json (ns/op, allocs/op per isolated substrate
//    op, for replikit-report and the perf-regression gate) plus
//    PROF_micro_substrate.json (per-cost-center attribution).
//  - any --benchmark_* flag: the google-benchmark suite as before
//    (auto-calibrated, human-oriented; numbers do not reach the artifacts).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>

#include "bench/common.hh"
#include "core/cluster.hh"
#include "db/lock.hh"
#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "obs/profile.hh"
#include "sim/simulator.hh"
#include "wire/message.hh"

using namespace repli;

namespace {

struct MicroMsg : wire::MessageBase<MicroMsg> {
  static constexpr const char* kTypeName = "bench.MicroMsg";
  std::uint64_t a = 0;
  std::string payload;
  std::vector<std::int64_t> numbers;
  template <class Ar>
  void fields(Ar& ar) {
    ar(a);
    ar(payload);
    ar(numbers);
  }
};

MicroMsg make_micro_msg(std::size_t payload_bytes) {
  MicroMsg msg;
  msg.a = 123456789;
  msg.payload = std::string(payload_bytes, 'x');
  for (int i = 0; i < 16; ++i) msg.numbers.push_back(i * i);
  return msg;
}

// -- google-benchmark suite (opt-in via --benchmark_* flags) ----------------

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_WireEncodeDecode(benchmark::State& state) {
  const MicroMsg msg = make_micro_msg(static_cast<std::size_t>(state.range(0)));
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = wire::encode_message(msg);
    bytes += encoded.size();
    const auto decoded = wire::decode_message(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WireEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

/// Minimal process host for components benched outside a cluster.
struct BenchHost : sim::Process {
  BenchHost(sim::NodeId id, sim::Simulator& sim) : Process(id, sim, "bench-host") {}
  void on_message(sim::NodeId /*from*/, wire::MessagePtr /*msg*/) override {}
};

void BM_LockAcquireRelease(benchmark::State& state) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<BenchHost>();
  db::LockManager locks(host);
  std::uint64_t txn_seq = 0;
  for (auto _ : state) {
    const db::TxnId txn = "t" + std::to_string(txn_seq++);
    bool granted = false;
    locks.acquire(txn, static_cast<std::int64_t>(txn_seq), "key-0", db::LockMode::Exclusive,
                  [&granted] { granted = true; }, [] {});
    locks.release_all(txn);
    benchmark::DoNotOptimize(granted);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LockAcquireRelease);

void BM_EventQueuePushPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int counter = 0;
    for (int i = 0; i < 1024; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueuePushPop);

/// Wall-clock cost of simulating a full client round trip, plus the
/// *simulated* latency exposed as a counter — sequencer vs consensus ABCAST.
void abcast_roundtrip(benchmark::State& state, int impl) {
  double total_sim_latency = 0;
  int runs = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.kind = core::TechniqueKind::Active;
    cfg.active_abcast_impl = impl;
    cfg.replicas = 3;
    cfg.seed = 7;
    core::Cluster cluster(cfg);
    const auto reply = cluster.run_op(0, core::op_put("k", "v"), 60 * sim::kSec);
    if (reply.ok && !cluster.history().ops().empty()) {
      const auto& rec = cluster.history().ops().front();
      total_sim_latency += static_cast<double>(rec.response - rec.invoke);
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["simulated_latency_us"] =
        benchmark::Counter(total_sim_latency / runs);
  }
}
void BM_AbcastSequencer(benchmark::State& state) { abcast_roundtrip(state, 0); }
void BM_AbcastConsensus(benchmark::State& state) { abcast_roundtrip(state, 1); }
BENCHMARK(BM_AbcastSequencer);
BENCHMARK(BM_AbcastConsensus);

// -- artifact mode: fixed-iteration measured loops --------------------------

std::uint64_t steady_ns_now() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Runs `op` `iters` times and returns a MicroRow with ns/op and heap
/// activity per op (thread-local allocation counters; exact, not sampled).
template <typename Fn>
bench::MicroRow measure(const std::string& name, std::uint64_t iters, Fn&& op) {
  const std::uint64_t a0 = obs::thread_alloc_count();
  const std::uint64_t b0 = obs::thread_alloc_bytes();
  const std::uint64_t t0 = steady_ns_now();
  for (std::uint64_t i = 0; i < iters; ++i) op(i);
  const std::uint64_t t1 = steady_ns_now();
  const std::uint64_t a1 = obs::thread_alloc_count();
  const std::uint64_t b1 = obs::thread_alloc_bytes();
  bench::MicroRow row;
  row.op = name;
  row.ops = iters;
  const auto n = static_cast<double>(iters);
  row.ns_per_op = static_cast<double>(t1 - t0) / n;
  row.allocs_per_op = static_cast<double>(a1 - a0) / n;
  row.alloc_bytes_per_op = static_cast<double>(b1 - b0) / n;
  std::cout << "  " << name << ": " << row.ns_per_op << " ns/op, " << row.allocs_per_op
            << " allocs/op (" << iters << " iters)\n";
  return row;
}

int artifact_main() {
  bench::print_header("Substrate microbenchmarks (artifact mode)");
  obs::Profiler::global().enable();
  std::vector<bench::MicroRow> rows;
  std::uint64_t total_ops = 0;

  {  // wire codec, small message (the common case on the hot path)
    const MicroMsg msg = make_micro_msg(64);
    const auto encoded = wire::encode_message(msg);
    constexpr std::uint64_t kIters = 100'000;
    rows.push_back(measure("wire.encode", kIters, [&](std::uint64_t) {
      const auto bytes = wire::encode_message(msg);
      benchmark::DoNotOptimize(bytes);
    }));
    rows.push_back(measure("wire.decode", kIters, [&](std::uint64_t) {
      const auto decoded = wire::decode_message(encoded);
      benchmark::DoNotOptimize(decoded);
    }));
    total_ops += 2 * kIters;
  }

  {  // event queue push+pop through a real run loop, batches of 1024
    constexpr std::uint64_t kBatches = 64;
    constexpr std::uint64_t kPerBatch = 1024;
    const auto row = measure("sim.event_push_pop", kBatches, [&](std::uint64_t) {
      sim::Simulator sim(1);
      int counter = 0;
      for (std::uint64_t i = 0; i < kPerBatch; ++i) {
        sim.schedule_at(static_cast<sim::Time>(i), [&counter] { ++counter; });
      }
      sim.run();
      benchmark::DoNotOptimize(counter);
    });
    // Rescale from per-batch to per-event: that is the number the gate
    // should hold steady.
    bench::MicroRow scaled = row;
    scaled.ops = kBatches * kPerBatch;
    scaled.ns_per_op = row.ns_per_op / static_cast<double>(kPerBatch);
    scaled.allocs_per_op = row.allocs_per_op / static_cast<double>(kPerBatch);
    scaled.alloc_bytes_per_op = row.alloc_bytes_per_op / static_cast<double>(kPerBatch);
    rows.push_back(scaled);
    total_ops += scaled.ops;
  }

  {  // cancel churn: 75% of events cancelled (crosses the bulk-compaction
     // threshold), then one stale cancel per executed event — both the lazy
     // reclamation and the stale-handle no-op path must stay O(1).
    constexpr std::uint64_t kBatches = 64;
    constexpr std::uint64_t kPerBatch = 1024;
    std::vector<sim::Simulator::EventId> ids;
    const auto row = measure("sim.cancel_churn", kBatches, [&](std::uint64_t) {
      sim::Simulator sim(1);
      int counter = 0;
      ids.clear();
      for (std::uint64_t i = 0; i < kPerBatch; ++i) {
        ids.push_back(sim.schedule_at(static_cast<sim::Time>(i), [&counter] { ++counter; }));
      }
      for (std::size_t i = 0; i < ids.size(); ++i) {
        if (i % 4 != 0) sim.cancel(ids[i]);
      }
      sim.run();
      for (const auto id : ids) sim.cancel(id);  // all stale: no-ops
      benchmark::DoNotOptimize(counter);
    });
    bench::MicroRow scaled = row;
    scaled.ops = kBatches * kPerBatch;
    scaled.ns_per_op = row.ns_per_op / static_cast<double>(kPerBatch);
    scaled.allocs_per_op = row.allocs_per_op / static_cast<double>(kPerBatch);
    scaled.alloc_bytes_per_op = row.alloc_bytes_per_op / static_cast<double>(kPerBatch);
    rows.push_back(scaled);
    total_ops += scaled.ops;
  }

  {  // uncontended lock acquire+release (the lock-table floor)
    sim::Simulator sim(1);
    auto& host = sim.spawn<BenchHost>();
    db::LockManager locks(host);
    constexpr std::uint64_t kIters = 50'000;
    rows.push_back(measure("db.lock_acquire_release", kIters, [&](std::uint64_t i) {
      const db::TxnId txn = "t" + std::to_string(i);
      locks.acquire(txn, static_cast<std::int64_t>(i), "key-0", db::LockMode::Exclusive,
                    [] {}, [] {});
      locks.release_all(txn);
    }));
    total_ops += kIters;
  }

  bench::write_micro_json("micro_substrate", rows);
  bench::write_prof_json("micro_substrate", total_ops);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::configure_logging_from_env();
  bool gbench = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark", 11) == 0) gbench = true;
  }
  if (!gbench) return artifact_main();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
