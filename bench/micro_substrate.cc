// Substrate microbenchmarks (google-benchmark): raw simulator event
// throughput, wire codec cost, and end-to-end simulated cost of the two
// ABCAST implementations (the sequencer-vs-consensus ablation DESIGN.md
// calls out).
#include <benchmark/benchmark.h>

#include "core/cluster.hh"
#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "sim/simulator.hh"
#include "wire/message.hh"

using namespace repli;

namespace {

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim(1);
    int counter = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.schedule_at(i, [&counter] { ++counter; });
    }
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

struct MicroMsg : wire::MessageBase<MicroMsg> {
  static constexpr const char* kTypeName = "bench.MicroMsg";
  std::uint64_t a = 0;
  std::string payload;
  std::vector<std::int64_t> numbers;
  template <class Ar>
  void fields(Ar& ar) {
    ar(a);
    ar(payload);
    ar(numbers);
  }
};

void BM_WireEncodeDecode(benchmark::State& state) {
  MicroMsg msg;
  msg.a = 123456789;
  msg.payload = std::string(static_cast<std::size_t>(state.range(0)), 'x');
  for (int i = 0; i < 16; ++i) msg.numbers.push_back(i * i);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const auto encoded = wire::encode_message(msg);
    bytes += encoded.size();
    const auto decoded = wire::decode_message(encoded);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_WireEncodeDecode)->Arg(16)->Arg(256)->Arg(4096);

/// Wall-clock cost of simulating a full client round trip, plus the
/// *simulated* latency exposed as a counter — sequencer vs consensus ABCAST.
void abcast_roundtrip(benchmark::State& state, int impl) {
  double total_sim_latency = 0;
  int runs = 0;
  for (auto _ : state) {
    core::ClusterConfig cfg;
    cfg.kind = core::TechniqueKind::Active;
    cfg.active_abcast_impl = impl;
    cfg.replicas = 3;
    cfg.seed = 7;
    core::Cluster cluster(cfg);
    const auto reply = cluster.run_op(0, core::op_put("k", "v"), 60 * sim::kSec);
    if (reply.ok && !cluster.history().ops().empty()) {
      const auto& rec = cluster.history().ops().front();
      total_sim_latency += static_cast<double>(rec.response - rec.invoke);
      ++runs;
    }
  }
  if (runs > 0) {
    state.counters["simulated_latency_us"] =
        benchmark::Counter(total_sim_latency / runs);
  }
}
void BM_AbcastSequencer(benchmark::State& state) { abcast_roundtrip(state, 0); }
void BM_AbcastConsensus(benchmark::State& state) { abcast_roundtrip(state, 1); }
BENCHMARK(BM_AbcastSequencer);
BENCHMARK(BM_AbcastConsensus);

}  // namespace

BENCHMARK_MAIN();
