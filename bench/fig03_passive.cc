// Figure 3: passive (primary-backup) replication — the primary executes and
// VSCASTs the update; backups apply; the primary answers.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::Passive, "Figure 3",
      "primary executes, update applied via View Synchronous Broadcast");
}
