// Figure 6: Gray et al.'s two-parameter classification of database
// replication (update propagation: eager/lazy x update location:
// primary/update-everywhere). Both axes probed at runtime:
//   - eager: the first Agreement Coordination event precedes the client
//     response in the phase trace;
//   - primary copy: an update submitted to a non-primary replica gets
//     redirected instead of being processed there.
#include <iostream>
#include <vector>

#include "bench/common.hh"

using namespace repli;
using core::TechniqueKind;

namespace {

bool probe_eager(TechniqueKind kind) {
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.seed = 7;
  core::Cluster cluster(cfg);
  cluster.run_op(0, core::op_put("k", "v"), 60 * sim::kSec);
  cluster.settle(2 * sim::kSec);
  const auto requests = cluster.sim().trace().requests();
  if (requests.empty()) return false;
  sim::Time response_at = -1;
  sim::Time first_ac = -1;
  for (const auto& ev : cluster.sim().trace().phases_for(requests.front())) {
    if (ev.phase == sim::Phase::Response) response_at = ev.start;
    if (ev.phase == sim::Phase::AgreementCoord && first_ac < 0) first_ac = ev.start;
  }
  if (first_ac < 0) return true;  // no AC at all: coordination finished pre-reply (SC)
  return first_ac <= response_at;
}

bool probe_update_everywhere(TechniqueKind kind) {
  // Submit an update via a client homed at replica 1 and look at the first
  // hop: primary-copy techniques funnel every update to the primary (node
  // 0); update-everywhere techniques accept it at the client's own server.
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 2;  // client 1 -> home replica 1
  cfg.seed = 7;
  core::Cluster cluster(cfg);
  const auto reply = cluster.run_op(1, core::op_put("k", "v"), 60 * sim::kSec);
  if (!reply.ok) return false;
  const auto client_node = cluster.client_node(1);
  for (const auto& ev : cluster.sim().trace().messages()) {
    if (ev.from == client_node && ev.type == "core.ClientRequest") {
      return ev.to != cluster.replica_node(0);
    }
  }
  return false;
}

}  // namespace

int main() {
  bench::print_header("Figure 6 — replication in database systems: probed classification");
  const std::vector<TechniqueKind> dbs = {TechniqueKind::EagerPrimary, TechniqueKind::EagerLocking,
                                          TechniqueKind::EagerAbcast, TechniqueKind::LazyPrimary,
                                          TechniqueKind::LazyEverywhere,
                                          TechniqueKind::Certification};
  std::cout << "  technique                            eager (paper/probed)   "
               "update-everywhere (paper/probed)\n";
  bench::print_rule(100);
  int mismatches = 0;
  auto fmt = [](bool b) { return b ? std::string("yes") : std::string("no "); };
  for (const auto kind : dbs) {
    const auto& info = core::technique_info(kind);
    const bool eager = probe_eager(kind);
    const bool everywhere = probe_update_everywhere(kind);
    const bool eager_ok = eager == info.eager;
    const bool ue_ok = everywhere == info.update_everywhere;
    mismatches += (eager_ok ? 0 : 1) + (ue_ok ? 0 : 1);
    std::cout << "  " << std::string(info.name);
    for (std::size_t i = info.name.size(); i < 36; ++i) std::cout << ' ';
    std::cout << fmt(info.eager) << " / " << fmt(eager) << " " << bench::verdict(eager_ok)
              << "     " << fmt(info.update_everywhere) << " / " << fmt(everywhere) << " "
              << bench::verdict(ue_ok) << "\n";
  }
  std::cout << "\n  the four quadrants of Fig. 6:\n"
            << "    eager + primary copy        : eager-primary-copy (hot standby)\n"
            << "    eager + update everywhere   : distributed locking, ABCAST-based, certification\n"
            << "    lazy  + primary copy        : lazy-primary-copy\n"
            << "    lazy  + update everywhere   : lazy-update-everywhere (reconciliation)\n";
  return mismatches == 0 ? 0 : 1;
}
