# Benchmark binaries. Defined via include() from the top-level CMakeLists so
# that ${CMAKE_BINARY_DIR}/bench contains only runnable binaries (the
# reproduction driver runs every file in that directory).

add_library(repli_bench_common ${CMAKE_SOURCE_DIR}/bench/common.cc)
target_link_libraries(repli_bench_common PUBLIC repli_core repli_check)
target_include_directories(repli_bench_common PUBLIC ${CMAKE_SOURCE_DIR})

# Provenance: stamp BENCH_*.json with the commit the binaries were built from.
execute_process(
  COMMAND git rev-parse --short HEAD
  WORKING_DIRECTORY ${CMAKE_SOURCE_DIR}
  OUTPUT_VARIABLE REPLI_GIT_SHA
  OUTPUT_STRIP_TRAILING_WHITESPACE
  ERROR_QUIET
)
if(NOT REPLI_GIT_SHA)
  set(REPLI_GIT_SHA "unknown")
endif()
target_compile_definitions(repli_bench_common PRIVATE REPLI_GIT_SHA="${REPLI_GIT_SHA}")

function(repli_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE repli_bench_common)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

repli_bench(fig01_functional_model)
repli_bench(fig02_active)
repli_bench(fig03_passive)
repli_bench(fig04_semi_active)
repli_bench(fig05_ds_classification)
repli_bench(fig06_db_classification)
repli_bench(fig07_eager_primary)
repli_bench(fig08_eager_locking)
repli_bench(fig09_eager_abcast)
repli_bench(fig10_lazy_primary)
repli_bench(fig11_lazy_everywhere)
repli_bench(fig12_eager_primary_txn)
repli_bench(fig13_eager_locking_txn)
repli_bench(fig14_certification)
repli_bench(fig15_phase_combinations)
repli_bench(fig16_synthetic_view)
repli_bench(ablation_options)
repli_bench(perf_latency_scaling)
repli_bench(perf_workloads)
repli_bench(perf_failures)
repli_bench(perf_batching)

add_executable(micro_substrate ${CMAKE_SOURCE_DIR}/bench/micro_substrate.cc)
target_link_libraries(micro_substrate PRIVATE repli_bench_common benchmark::benchmark)
set_target_properties(micro_substrate PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
