// The performance study the paper announces in Section 6 (part c):
// behaviour under failures — failover gap after crashing the
// coordinator/primary/sequencer, client-visible retries, and 2PC blocking.
#include <iomanip>
#include <iostream>
#include <optional>

#include "bench/common.hh"

using namespace repli;

namespace {

struct FailoverStats {
  bool recovered = false;
  double gap_ms = 0;  // last pre-crash reply -> first post-crash reply
  int client_timeouts = 0;
  bool converged = false;
  bench::RunStats run;  // standard workload stats for the machine-readable report
};

FailoverStats crash_study(core::TechniqueKind kind, std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 1;
  cfg.seed = seed;
  cfg.client_retry_timeout = 150 * sim::kMsec;
  core::Cluster cluster(cfg);

  FailoverStats stats;
  // Steady stream of updates; crash node 0 at t = 50ms.
  constexpr int kOps = 30;
  int completed = 0;
  sim::Time crash_at = 50 * sim::kMsec;
  std::optional<sim::Time> last_before;
  std::optional<sim::Time> first_after;

  std::function<void()> issue = [&] {
    if (completed >= kOps) return;
    cluster.submit_op(0, core::op_put("k" + std::to_string(completed), "v"),
                      [&](const core::ClientReply& reply) {
                        const auto now = cluster.sim().now();
                        if (reply.ok) {
                          ++completed;
                          if (now < crash_at) last_before = now;
                          if (now > crash_at && !first_after) first_after = now;
                        }
                        cluster.sim().schedule_after(2 * sim::kMsec, issue);
                      });
  };
  issue();
  cluster.sim().schedule_at(crash_at, [&cluster] { cluster.crash_replica(0); });
  int guard = 0;
  while (completed < kOps && ++guard < 12000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  const sim::Time busy_span = cluster.sim().now();
  cluster.settle(2 * sim::kSec);
  stats.recovered = completed >= kOps;
  if (last_before && first_after) {
    stats.gap_ms = static_cast<double>(*first_after - *last_before) / sim::kMsec;
  }
  stats.client_timeouts = cluster.client(0).timeouts();
  stats.converged = cluster.converged();
  stats.run = bench::collect_run_stats(cluster, kind, busy_span);
  return stats;
}

}  // namespace

int main() {
  bench::print_header(
      "Performance study (c): crash of the coordinator/primary/sequencer at t=50ms");
  std::cout << "  steady update stream; node 0 (primary / sequencer / round-0 coordinator)\n"
            << "  crashes mid-run. gap = last pre-crash reply -> first post-crash reply.\n\n";
  std::cout << std::left << std::setw(38) << "  technique" << std::right << std::setw(11)
            << "recovered" << std::setw(10) << "gap_ms" << std::setw(12) << "timeouts"
            << std::setw(12) << "converged" << "\n";
  bench::print_rule(86);
  std::vector<bench::BenchRow> rows;
  for (const auto& info : core::all_techniques()) {
    const auto stats = crash_study(info.kind, 23);
    rows.push_back({stats.run,
                    {{"failover_gap_ms", stats.gap_ms},
                     {"recovered", stats.recovered ? 1.0 : 0.0}}});
    std::cout << std::left << std::setw(38) << ("  " + std::string(info.name)) << std::right
              << std::setw(11) << (stats.recovered ? "yes" : "NO") << std::setw(10)
              << std::fixed << std::setprecision(1) << stats.gap_ms << std::setw(12)
              << stats.client_timeouts << std::setw(12) << (stats.converged ? "yes" : "NO")
              << "\n";
  }
  std::cout
      << "\n  expected shape: active/semi-active/semi-passive mask the crash (no client\n"
      << "  timeouts; gap bounded by failure detection), passive and the database\n"
      << "  primary-copy schemes show a client-visible failover gap (Fig. 5 / §4.1);\n"
      << "  lazy-primary keeps serving reads but loses its update point until failover.\n";
  bench::write_bench_json("perf_failures", rows);
  return 0;
}
