// Figure 8: eager update everywhere with distributed locking.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::EagerLocking, "Figure 8",
      "lock at all replicas (SC), execute everywhere, Two Phase Commit (AC)");
}
