// Figure 14: certification-based replication — optimistic execution, ABCAST
// of the read/write sets, deterministic certification at every replica.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::Certification, "Figure 14",
      "execute on shadow copies, ABCAST writeset, certify in delivery order");
}
