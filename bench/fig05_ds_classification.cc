// Figure 5: classification of the distributed-systems techniques along
// (server determinism needed) x (failure transparency). Both axes are
// *probed at runtime*, not just quoted from the table:
//   - determinism: run a nondeterministic stored procedure and check
//     whether replicas diverge;
//   - transparency: crash a replica mid-run and check whether the client
//     had to notice (timeout/redirect).
#include <iostream>
#include <vector>

#include "bench/common.hh"

using namespace repli;
using core::TechniqueKind;

namespace {

bool probe_needs_determinism(TechniqueKind kind) {
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.seed = 7;
  core::Cluster cluster(cfg);
  const auto reply = cluster.run_op(0, core::op_spin_nondet("slot"), 60 * sim::kSec);
  cluster.settle(2 * sim::kSec);
  return reply.ok && !cluster.converged();  // diverged => determinism was required
}

bool probe_failure_transparent(TechniqueKind kind) {
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.seed = 7;
  cfg.client_retry_timeout = 150 * sim::kMsec;
  core::Cluster cluster(cfg);
  if (!cluster.run_op(0, core::op_put("k", "v1"), 60 * sim::kSec).ok) return false;
  // Crash the "most important" replica: the coordinator/primary (node 0).
  cluster.crash_replica(0);
  cluster.settle(1 * sim::kSec);
  const auto reply = cluster.run_op(0, core::op_put("k", "v2"), 60 * sim::kSec);
  return reply.ok && cluster.client(0).timeouts() == 0;
}

}  // namespace

int main() {
  bench::print_header("Figure 5 — replication in distributed systems: probed classification");
  const std::vector<TechniqueKind> ds = {TechniqueKind::Active, TechniqueKind::SemiActive,
                                         TechniqueKind::SemiPassive, TechniqueKind::Passive};
  std::cout << "  technique       determinism-needed      failure-transparent\n";
  std::cout << "                  (paper / probed)        (paper / probed)\n";
  bench::print_rule();
  int mismatches = 0;
  for (const auto kind : ds) {
    const auto& info = core::technique_info(kind);
    const bool det = probe_needs_determinism(kind);
    const bool ft = probe_failure_transparent(kind);
    const bool det_ok = det == info.needs_determinism;
    const bool ft_ok = ft == info.failure_transparent;
    mismatches += (det_ok ? 0 : 1) + (ft_ok ? 0 : 1);
    auto fmt = [](bool b) { return b ? std::string("yes") : std::string("no "); };
    std::cout << "  " << std::string(info.name);
    for (std::size_t i = info.name.size(); i < 16; ++i) std::cout << ' ';
    std::cout << fmt(info.needs_determinism) << " / " << fmt(det) << "  "
              << bench::verdict(det_ok) << "      " << fmt(info.failure_transparent) << " / "
              << fmt(ft) << "  " << bench::verdict(ft_ok) << "\n";
  }
  std::cout << "\n  paper's quadrants (Fig. 5):\n"
            << "    failure transparent   + determinism needed     : active\n"
            << "    failure transparent   + determinism not needed : semi-active, semi-passive\n"
            << "    failure NOT transparent + determinism not needed: passive\n";
  return mismatches == 0 ? 0 : 1;
}
