// Figure 12: eager primary copy with multi-operation transactions — the
// EX -> AC (change propagation) loop runs once per operation, then 2PC.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_multi_op(
      repli::core::TechniqueKind::EagerPrimary, "Figure 12",
      "per-operation change propagation, final Two Phase Commit");
}
