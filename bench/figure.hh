// Shared driver for the per-figure protocol benches (Figs. 1-4, 7-14):
// runs one instrumented request through the technique, prints the paper's
// claimed phase pattern next to the measured one, an ASCII timeline in the
// style of the paper's figures, and the message mix.
#pragma once

#include <iostream>

#include "bench/common.hh"

namespace repli::bench {

inline int figure_single_op(core::TechniqueKind kind, const std::string& figure,
                            const std::string& description) {
  const auto& info = core::technique_info(kind);
  print_header(figure + " — " + std::string(info.name) + ": " + description);

  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 1;
  cfg.seed = 42;
  core::Cluster cluster(cfg);
  const auto probe = probe_single_update(cluster);

  std::cout << "  paper pattern    : " << info.paper_pattern << "\n";
  std::cout << "  measured pattern : " << probe.measured_pattern << "   "
            << verdict(probe.measured_pattern == info.paper_pattern) << "\n";
  std::cout << "  update latency   : " << probe.latency_us << " us  (3 replicas, "
            << "one client, LAN-like simulated network)\n";
  std::cout << "\n";
  print_timeline(cluster, probe.request_id);
  std::cout << "\n";
  print_message_mix(cluster);
  return probe.measured_pattern == info.paper_pattern ? 0 : 1;
}

inline int figure_multi_op(core::TechniqueKind kind, const std::string& figure,
                           const std::string& description) {
  const auto& info = core::technique_info(kind);
  print_header(figure + " — " + std::string(info.name) + " (multi-operation transaction): " +
               description);

  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 1;
  cfg.seed = 42;
  core::Cluster cluster(cfg);
  const core::Transaction txn{core::op_put("x", "1"), core::op_put("y", "2"),
                              core::op_add("x", 5)};
  const auto reply = cluster.run_txn(0, txn, 60 * sim::kSec);
  cluster.settle(2 * sim::kSec);
  const auto requests = cluster.sim().trace().requests();
  const auto request_id = requests.empty() ? std::string{} : requests.front();
  const auto pattern = sim::pattern_to_string(cluster.sim().trace().pattern(request_id));

  std::cout << "  transaction      : put(x,1); put(y,2); add(x,5)  ->  "
            << (reply.ok ? "committed" : "ABORTED") << "\n";
  std::cout << "  paper pattern    : " << info.paper_pattern
            << "  (with the per-operation coordination loop of " << figure << ")\n";
  std::cout << "  measured pattern : " << pattern << "\n";

  // The per-op loop: count how often the looped phase occurs.
  int ex_events = 0;
  int sc_events = 0;
  int ac_events = 0;
  for (const auto& ev : cluster.sim().trace().phases_for(request_id)) {
    ex_events += ev.phase == sim::Phase::Execution ? 1 : 0;
    sc_events += ev.phase == sim::Phase::ServerCoord ? 1 : 0;
    ac_events += ev.phase == sim::Phase::AgreementCoord ? 1 : 0;
  }
  std::cout << "  phase events     : SC x" << sc_events << "  EX x" << ex_events << "  AC x"
            << ac_events << "  (3 operations -> the loop repeats per operation)\n\n";
  print_timeline(cluster, request_id);
  std::cout << "\n";
  print_message_mix(cluster);
  return reply.ok ? 0 : 1;
}

}  // namespace repli::bench
