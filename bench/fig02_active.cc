// Figure 2: active replication — client ABCASTs to the group, total order
// is the server coordination, every replica executes, no agreement phase.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::Active, "Figure 2",
      "request via Atomic Broadcast, deterministic execution everywhere");
}
