// Figure 9: eager update everywhere based on Atomic Broadcast.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::EagerAbcast, "Figure 9",
      "total order from ABCAST replaces locks; no agreement round needed");
}
