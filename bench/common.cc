#include "bench/common.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "obs/critpath.hh"
#include "obs/export_chrome.hh"
#include "obs/export_stats.hh"
#include "obs/json.hh"
#include "obs/profile.hh"
#include "util/log.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace repli::bench {

using core::Cluster;
using core::ClusterConfig;
using core::TechniqueKind;

namespace {

std::string bench_output_dir() {
  if (const char* env = std::getenv("REPLI_BENCH_DIR"); env != nullptr && *env != '\0') {
    return env;
  }
  return ".";
}

}  // namespace

void configure_logging_from_env() {
  // Benches log at Info by default (failovers, retries, deadlocks are part
  // of the story); REPLI_LOG=off|error|info|debug overrides. Called from
  // every harness entry point (not a namespace-scope initializer, whose
  // static-init-order position relative to other globals is unspecified),
  // so fig* binaries and perf benches get the same behavior.
  static const bool done = [] {
    auto level = util::LogLevel::Info;
    if (const char* env = std::getenv("REPLI_LOG"); env != nullptr) {
      const std::string v(env);
      if (v == "off") level = util::LogLevel::Off;
      if (v == "error") level = util::LogLevel::Error;
      if (v == "info") level = util::LogLevel::Info;
      if (v == "debug") level = util::LogLevel::Debug;
    }
    util::Logger::instance().set_level(level);
    return true;
  }();
  (void)done;
}

RunStats run_workload(TechniqueKind kind, const WorkloadParams& params) {
  configure_logging_from_env();
  ClusterConfig cfg = params.overrides;
  cfg.kind = kind;
  cfg.replicas = params.replicas;
  cfg.clients = params.clients;
  cfg.seed = params.seed;
  Cluster cluster(cfg);

  util::Rng rng(params.seed * 7919 + 13);
  const util::Zipf zipf(static_cast<std::size_t>(params.keys), params.zipf_theta);

  // Closed loop per client: issue, await reply, think, repeat.
  struct ClientState {
    int remaining = 0;
    int failed = 0;
  };
  std::vector<ClientState> states(static_cast<std::size_t>(params.clients));
  for (auto& s : states) s.remaining = params.ops_per_client;
  int outstanding = 0;

  std::function<void(int)> issue = [&](int c) {
    auto& state = states[static_cast<std::size_t>(c)];
    if (state.remaining == 0) return;
    --state.remaining;
    ++outstanding;
    const auto key = "key-" + std::to_string(zipf.sample(rng));
    db::Operation op;
    if (rng.uniform01() < params.write_ratio) {
      op = params.rmw_writes ? core::op_add(key, 1)
                             : core::op_put(key, "v" + std::to_string(rng.uniform(0, 999)));
    } else {
      op = core::op_get(key);
    }
    cluster.submit_op(c, op, [&, c](const core::ClientReply& reply) {
      --outstanding;
      if (!reply.ok) ++states[static_cast<std::size_t>(c)].failed;
      const auto think =
          static_cast<sim::Time>(rng.exponential(static_cast<double>(params.think_time)));
      cluster.sim().schedule_after(think, [&issue, c] { issue(c); });
    });
  };
  for (int c = 0; c < params.clients; ++c) issue(c);

  auto work_left = [&] {
    if (outstanding > 0) return true;
    for (const auto& s : states) {
      if (s.remaining > 0) return true;
    }
    return false;
  };
  const sim::Time t0 = cluster.sim().now();
  int guard = 0;
  while (work_left() && ++guard < 2'000'000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  const sim::Time busy_span = cluster.sim().now() - t0;
  cluster.settle(3 * sim::kSec);  // propagation / reconciliation drain
  auto stats = collect_run_stats(cluster, kind, busy_span);
  static int trace_seq = 0;
  std::string tag = stats.technique;
  for (auto& ch : tag) {
    if (std::isalnum(static_cast<unsigned char>(ch)) == 0) ch = '-';
  }
  maybe_write_trace(cluster, tag + "-" + std::to_string(++trace_seq));
  return stats;
}

namespace {

/// Compact technique-knob summary for provenance (only knobs that shape the
/// technique's behavior; harness-level settings ride in their own fields).
std::string technique_config_string(const ClusterConfig& cfg) {
  std::ostringstream os;
  switch (cfg.kind) {
    case TechniqueKind::Active:
      os << "abcast_impl=" << (cfg.active_abcast_impl == 0 ? "sequencer" : "consensus");
      break;
    case TechniqueKind::EagerLocking:
      os << "max_attempts=" << cfg.locking_max_attempts
         << " wait_timeout_us=" << cfg.locking_wait_timeout
         << " rowa=" << (cfg.locking_read_one_write_all ? 1 : 0);
      break;
    case TechniqueKind::EagerAbcast:
      os << "optimistic=" << (cfg.eager_abcast_optimistic ? 1 : 0);
      break;
    case TechniqueKind::LazyPrimary:
      os << "propagation_delay_us=" << cfg.lazy_propagation_delay;
      break;
    case TechniqueKind::LazyEverywhere:
      os << "propagation_delay_us=" << cfg.lazy_propagation_delay
         << " reconciliation=" << (cfg.lazy_reconciliation == 0 ? "abcast" : "lww");
      break;
    case TechniqueKind::Certification:
      os << "max_attempts=" << cfg.certification_max_attempts
         << " local_reads=" << (cfg.certification_local_reads ? 1 : 0);
      break;
    default:
      break;
  }
  if (cfg.batch_max_ops > 1) {
    if (!os.str().empty()) os << " ";
    os << "batch_max_ops=" << cfg.batch_max_ops << " batch_flush_us=" << cfg.batch_flush_us;
  }
  return os.str();
}

}  // namespace

RunStats collect_run_stats(Cluster& cluster, TechniqueKind kind, sim::Time busy_span) {
  configure_logging_from_env();
  RunStats stats;
  stats.technique = std::string(core::technique_name(kind));
  stats.replicas = cluster.replica_count();
  stats.seed = cluster.config().seed;
  stats.technique_config = technique_config_string(cluster.config());
  util::Histogram latency;
  for (const auto& op : cluster.history().ops()) {
    ++stats.ops_attempted;
    if (op.response == 0) continue;
    if (op.ok) {
      ++stats.ops_ok;
      latency.add(static_cast<double>(op.response - op.invoke));
    } else {
      ++stats.ops_failed;
    }
  }
  if (!latency.empty()) {
    stats.mean_latency_us = latency.mean();
    stats.p50_latency_us = latency.percentile(50);
    stats.p95_latency_us = latency.percentile(95);
    stats.p99_latency_us = latency.percentile(99);
  }
  if (busy_span > 0) {
    stats.throughput_ops_per_s =
        static_cast<double>(stats.ops_ok) / (static_cast<double>(busy_span) / sim::kSec);
  }
  if (stats.ops_ok > 0) {
    // Protocol traffic only: failure-detector heartbeats scale with run
    // duration, not with work done, and would drown the comparison.
    stats.msgs_per_op =
        static_cast<double>(cluster.sim().net().messages_excluding("gcs.Heartbeat")) /
        stats.ops_ok;
    stats.bytes_per_op =
        static_cast<double>(cluster.sim().net().bytes_excluding("gcs.Heartbeat")) /
        stats.ops_ok;
  }
  for (int c = 0; c < cluster.client_count(); ++c) {
    stats.client_timeouts += cluster.client(c).timeouts();
  }
  stats.lazy_undone = cluster.sim().metrics().counter_value("lazy.undone");
  stats.certification_aborts = cluster.sim().metrics().counter_value("certification.aborts");
  if (const auto* h = cluster.sim().metrics().find_histogram("lazy.staleness_us");
      h != nullptr && !h->data().empty()) {
    stats.mean_staleness_ms = h->data().mean() / 1000.0;
  }
  stats.converged = cluster.converged();
  return stats;
}

bool write_bench_json(const std::string& bench, const std::vector<BenchRow>& rows) {
  configure_logging_from_env();
  const auto path = bench_output_dir() + "/BENCH_" + bench + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_error("write_bench_json: cannot open ", path);
    return false;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("bench", bench);
  w.field("schema_version", 2);
  // Run provenance: makes bench trajectories comparable across commits.
  w.key("provenance").begin_object();
#ifdef REPLI_GIT_SHA
  w.field("git_sha", REPLI_GIT_SHA);
#else
  w.field("git_sha", "unknown");
#endif
  w.end_object();
  w.key("rows").begin_array();
  for (const auto& row : rows) {
    const auto& s = row.stats;
    w.begin_object();
    w.field("technique", s.technique);
    w.field("replicas", s.replicas);
    w.field("seed", static_cast<std::int64_t>(s.seed));
    if (!s.technique_config.empty()) w.field("technique_config", s.technique_config);
    w.field("ops_attempted", s.ops_attempted);
    w.field("ops_ok", s.ops_ok);
    w.field("ops_failed", s.ops_failed);
    w.field("throughput_ops_per_s", s.throughput_ops_per_s);
    w.key("latency_us").begin_object();
    w.field("mean", s.mean_latency_us);
    w.field("p50", s.p50_latency_us);
    w.field("p95", s.p95_latency_us);
    w.field("p99", s.p99_latency_us);
    w.end_object();
    w.field("msgs_per_op", s.msgs_per_op);
    w.field("bytes_per_op", s.bytes_per_op);
    w.field("client_timeouts", s.client_timeouts);
    w.field("lazy_undone", s.lazy_undone);
    w.field("certification_aborts", s.certification_aborts);
    w.field("mean_staleness_ms", s.mean_staleness_ms);
    w.field("converged", s.converged);
    for (const auto& [key, value] : row.extra) w.field(key, value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  out.flush();
  if (!out) {
    util::log_error("write_bench_json: write failed for ", path);
    return false;
  }
  std::cout << "\n  wrote " << path << "\n";
  return true;
}

bool write_bench_json(const std::string& bench, const std::vector<RunStats>& rows) {
  std::vector<BenchRow> wrapped;
  wrapped.reserve(rows.size());
  for (const auto& s : rows) wrapped.push_back(BenchRow{s, {}});
  return write_bench_json(bench, wrapped);
}

namespace {

void write_provenance(obs::JsonWriter& w) {
  w.key("provenance").begin_object();
#ifdef REPLI_GIT_SHA
  w.field("git_sha", REPLI_GIT_SHA);
#else
  w.field("git_sha", "unknown");
#endif
  w.end_object();
}

}  // namespace

bool write_micro_json(const std::string& bench, const std::vector<MicroRow>& rows) {
  configure_logging_from_env();
  const auto path = bench_output_dir() + "/BENCH_" + bench + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_error("write_micro_json: cannot open ", path);
    return false;
  }
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("bench", bench);
  w.field("schema_version", 2);
  w.field("micro", true);
  write_provenance(w);
  w.key("rows").begin_array();
  for (const auto& row : rows) {
    w.begin_object();
    w.field("op", row.op);
    w.field("ops", static_cast<std::int64_t>(row.ops));
    w.field("ns_per_op", row.ns_per_op);
    w.field("allocs_per_op", row.allocs_per_op);
    w.field("alloc_bytes_per_op", row.alloc_bytes_per_op);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  out.flush();
  if (!out) {
    util::log_error("write_micro_json: write failed for ", path);
    return false;
  }
  std::cout << "\n  wrote " << path << "\n";
  return true;
}

bool write_prof_json(const std::string& bench, std::uint64_t total_ops) {
  configure_logging_from_env();
  const auto path = bench_output_dir() + "/PROF_" + bench + ".json";
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    util::log_error("write_prof_json: cannot open ", path);
    return false;
  }
  const auto& profiler = obs::Profiler::global();
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("prof", bench);
  w.field("schema_version", 1);
  write_provenance(w);
  w.field("enabled", profiler.enabled());
  w.field("ops", static_cast<std::int64_t>(total_ops));
  w.key("centers").begin_array();
  for (std::size_t i = 0; i < obs::kCostCenterCount; ++i) {
    const auto center = static_cast<obs::CostCenter>(i);
    const obs::CostBucket& b = profiler.bucket(center);
    w.begin_object();
    w.field("center", std::string(obs::cost_center_name(center)));
    w.field("calls", static_cast<std::int64_t>(b.calls));
    w.field("self_ns", static_cast<std::int64_t>(b.self_ns));
    w.field("total_ns", static_cast<std::int64_t>(b.total_ns));
    w.field("allocs", static_cast<std::int64_t>(b.self_allocs));
    w.field("alloc_bytes", static_cast<std::int64_t>(b.self_alloc_bytes));
    if (total_ops > 0) {
      const auto ops = static_cast<double>(total_ops);
      w.field("calls_per_op", static_cast<double>(b.calls) / ops);
      w.field("self_ns_per_op", static_cast<double>(b.self_ns) / ops);
      w.field("allocs_per_op", static_cast<double>(b.self_allocs) / ops);
      w.field("alloc_bytes_per_op", static_cast<double>(b.self_alloc_bytes) / ops);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
  out.flush();
  if (!out) {
    util::log_error("write_prof_json: write failed for ", path);
    return false;
  }
  std::cout << "  wrote " << path << "\n";
  return true;
}

void maybe_write_trace(Cluster& cluster, const std::string& name) {
  configure_logging_from_env();
  const char* env = std::getenv("REPLI_TRACE");
  if (env == nullptr || *env == '\0' || std::string(env) == "0") return;
  // A run shorter than monitor_interval never ticked the monitor; flush one
  // sample so STATS is never empty.
  cluster.final_monitor_sample();
  const std::string dir = (std::string(env) == "1") ? bench_output_dir() : env;
  const auto path = dir + "/TRACE_" + name + ".json";
  if (obs::write_chrome_trace_file(cluster.sim().tracer(), path)) {
    std::cout << "  wrote " << path << " (load in https://ui.perfetto.dev)\n";
  }
  // The matching NDJSON metrics dump: replikit-report's health tables come
  // from these monitor.* lines.
  const auto stats_path = dir + "/STATS_" + name + ".ndjson";
  if (obs::write_stats_ndjson_file(cluster.sim().metrics(), stats_path)) {
    std::cout << "  wrote " << stats_path << "\n";
  }
  // Folded flamegraph stacks from the same span tree (simulated self-time):
  // feed to flamegraph.pl / speedscope, or `replikit-report flame`.
  const auto folded_path = dir + "/PROF_" + name + ".folded";
  if (obs::write_folded_file(cluster.sim().tracer(), folded_path)) {
    std::cout << "  wrote " << folded_path << "\n";
  }
  // Critical-path waterfall: which segment every transaction's latency
  // went to (`replikit-report waterfall` renders these).
  const auto crit_path = dir + "/CRIT_" + name + ".json";
  if (obs::write_crit_json_file(cluster.sim().tracer(), name, crit_path)) {
    std::cout << "  wrote " << crit_path << "\n";
  }
}

ProbeResult probe_single_update(Cluster& cluster) {
  configure_logging_from_env();
  const auto t0 = cluster.sim().now();
  const auto reply = cluster.run_op(0, core::op_put("item-x", "update"), 60 * sim::kSec);
  ProbeResult probe;
  const auto requests = cluster.sim().trace().requests();
  if (requests.empty()) return probe;
  probe.request_id = requests.front();
  cluster.settle(2 * sim::kSec);  // let lazy AC land in the trace
  probe.measured_pattern =
      sim::pattern_to_string(cluster.sim().trace().pattern(probe.request_id));
  if (!cluster.history().ops().empty()) {
    const auto& rec = cluster.history().ops().front();
    probe.latency_us = static_cast<double>(rec.response - rec.invoke);
  }
  probe.messages = cluster.sim().net().messages_excluding("gcs.Heartbeat");
  probe.bytes = cluster.sim().net().bytes_excluding("gcs.Heartbeat");
  (void)reply;
  (void)t0;
  return probe;
}

void print_timeline(Cluster& cluster, const std::string& request_id, std::ostream& os) {
  const auto events = cluster.sim().trace().phases_for(request_id);
  if (events.empty()) {
    os << "  (no phase events recorded)\n";
    return;
  }
  sim::Time t_min = events.front().start;
  sim::Time t_max = 0;
  for (const auto& ev : events) {
    t_min = std::min(t_min, ev.start);
    t_max = std::max(t_max, ev.end);
  }
  const double span = std::max<double>(1.0, static_cast<double>(t_max - t_min));
  constexpr int kCols = 60;

  std::map<sim::NodeId, std::string> rows;
  for (const auto& ev : events) {
    auto& row = rows.try_emplace(ev.node, std::string(kCols + 1, '.')).first->second;
    const int a = static_cast<int>(static_cast<double>(ev.start - t_min) / span * kCols);
    const int b =
        std::max(a, static_cast<int>(static_cast<double>(ev.end - t_min) / span * kCols));
    const auto abbrev = sim::phase_abbrev(ev.phase);
    for (int i = a; i <= b && i <= kCols; ++i) {
      row[static_cast<std::size_t>(i)] =
          abbrev[static_cast<std::size_t>((i - a) % static_cast<int>(abbrev.size()))];
    }
  }
  os << "  timeline (" << (t_max - t_min) << "us total, request " << request_id << ")\n";
  for (const auto& [node, row] : rows) {
    const auto& name = cluster.sim().process(node).name();
    os << "    " << std::left << std::setw(18) << name << " |" << row << "|\n";
  }
  os << "    legend: RE request  SC server-coordination  EX execution  "
        "AC agreement-coordination  END response\n";
}

void print_message_mix(Cluster& cluster, std::ostream& os) {
  os << "  protocol messages on the wire ("
     << cluster.sim().net().messages_excluding("gcs.Heartbeat") << " total, "
     << cluster.sim().net().bytes_excluding("gcs.Heartbeat")
     << " bytes; failure-detector heartbeats excluded):\n";
  for (const auto& [type, count] : cluster.sim().net().per_type_count()) {
    if (type == "gcs.Heartbeat") continue;
    os << "    " << std::left << std::setw(24) << type << " " << count << "\n";
  }
}

void print_rule(std::size_t width, std::ostream& os) {
  os << std::string(width, '-') << "\n";
}

void print_header(const std::string& title, std::ostream& os) {
  configure_logging_from_env();
  os << "\n";
  print_rule(86, os);
  os << title << "\n";
  print_rule(86, os);
}

std::string verdict(bool ok) { return ok ? "MATCH" : "** MISMATCH **"; }

}  // namespace repli::bench
