#include "bench/common.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>

#include "util/metrics.hh"
#include "util/rng.hh"

namespace repli::bench {

using core::Cluster;
using core::ClusterConfig;
using core::TechniqueKind;

RunStats run_workload(TechniqueKind kind, const WorkloadParams& params) {
  ClusterConfig cfg = params.overrides;
  cfg.kind = kind;
  cfg.replicas = params.replicas;
  cfg.clients = params.clients;
  cfg.seed = params.seed;
  Cluster cluster(cfg);

  util::Rng rng(params.seed * 7919 + 13);
  const util::Zipf zipf(static_cast<std::size_t>(params.keys), params.zipf_theta);

  // Closed loop per client: issue, await reply, think, repeat.
  struct ClientState {
    int remaining = 0;
    int failed = 0;
  };
  std::vector<ClientState> states(static_cast<std::size_t>(params.clients));
  for (auto& s : states) s.remaining = params.ops_per_client;
  int outstanding = 0;

  std::function<void(int)> issue = [&](int c) {
    auto& state = states[static_cast<std::size_t>(c)];
    if (state.remaining == 0) return;
    --state.remaining;
    ++outstanding;
    const auto key = "key-" + std::to_string(zipf.sample(rng));
    db::Operation op;
    if (rng.uniform01() < params.write_ratio) {
      op = params.rmw_writes ? core::op_add(key, 1)
                             : core::op_put(key, "v" + std::to_string(rng.uniform(0, 999)));
    } else {
      op = core::op_get(key);
    }
    cluster.submit_op(c, op, [&, c](const core::ClientReply& reply) {
      --outstanding;
      if (!reply.ok) ++states[static_cast<std::size_t>(c)].failed;
      const auto think =
          static_cast<sim::Time>(rng.exponential(static_cast<double>(params.think_time)));
      cluster.sim().schedule_after(think, [&issue, c] { issue(c); });
    });
  };
  for (int c = 0; c < params.clients; ++c) issue(c);

  auto work_left = [&] {
    if (outstanding > 0) return true;
    for (const auto& s : states) {
      if (s.remaining > 0) return true;
    }
    return false;
  };
  const sim::Time t0 = cluster.sim().now();
  int guard = 0;
  while (work_left() && ++guard < 2'000'000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  const sim::Time busy_span = cluster.sim().now() - t0;
  cluster.settle(3 * sim::kSec);  // propagation / reconciliation drain

  RunStats stats;
  stats.technique = std::string(core::technique_name(kind));
  stats.replicas = params.replicas;
  util::Histogram latency;
  for (const auto& op : cluster.history().ops()) {
    ++stats.ops_attempted;
    if (op.response == 0) continue;
    if (op.ok) {
      ++stats.ops_ok;
      latency.add(static_cast<double>(op.response - op.invoke));
    } else {
      ++stats.ops_failed;
    }
  }
  if (!latency.empty()) {
    stats.mean_latency_us = latency.mean();
    stats.p95_latency_us = latency.percentile(95);
  }
  if (busy_span > 0) {
    stats.throughput_ops_per_s =
        static_cast<double>(stats.ops_ok) / (static_cast<double>(busy_span) / sim::kSec);
  }
  if (stats.ops_ok > 0) {
    // Protocol traffic only: failure-detector heartbeats scale with run
    // duration, not with work done, and would drown the comparison.
    stats.msgs_per_op =
        static_cast<double>(cluster.sim().net().messages_excluding("gcs.Heartbeat")) /
        stats.ops_ok;
    stats.bytes_per_op =
        static_cast<double>(cluster.sim().net().bytes_excluding("gcs.Heartbeat")) /
        stats.ops_ok;
  }
  for (int c = 0; c < params.clients; ++c) stats.client_timeouts += cluster.client(c).timeouts();
  stats.lazy_undone = cluster.sim().metrics().counter("lazy.undone");
  stats.certification_aborts = cluster.sim().metrics().counter("certification.aborts");
  if (const auto* h = cluster.sim().metrics().find_histo("lazy.staleness_us");
      h != nullptr && !h->empty()) {
    stats.mean_staleness_ms = h->mean() / 1000.0;
  }
  stats.converged = cluster.converged();
  return stats;
}

ProbeResult probe_single_update(Cluster& cluster) {
  const auto t0 = cluster.sim().now();
  const auto reply = cluster.run_op(0, core::op_put("item-x", "update"), 60 * sim::kSec);
  ProbeResult probe;
  const auto requests = cluster.sim().trace().requests();
  if (requests.empty()) return probe;
  probe.request_id = requests.front();
  cluster.settle(2 * sim::kSec);  // let lazy AC land in the trace
  probe.measured_pattern =
      sim::pattern_to_string(cluster.sim().trace().pattern(probe.request_id));
  if (!cluster.history().ops().empty()) {
    const auto& rec = cluster.history().ops().front();
    probe.latency_us = static_cast<double>(rec.response - rec.invoke);
  }
  probe.messages = cluster.sim().net().messages_excluding("gcs.Heartbeat");
  probe.bytes = cluster.sim().net().bytes_excluding("gcs.Heartbeat");
  (void)reply;
  (void)t0;
  return probe;
}

void print_timeline(Cluster& cluster, const std::string& request_id, std::ostream& os) {
  const auto events = cluster.sim().trace().phases_for(request_id);
  if (events.empty()) {
    os << "  (no phase events recorded)\n";
    return;
  }
  sim::Time t_min = events.front().start;
  sim::Time t_max = 0;
  for (const auto& ev : events) {
    t_min = std::min(t_min, ev.start);
    t_max = std::max(t_max, ev.end);
  }
  const double span = std::max<double>(1.0, static_cast<double>(t_max - t_min));
  constexpr int kCols = 60;

  std::map<sim::NodeId, std::string> rows;
  for (const auto& ev : events) {
    auto& row = rows.try_emplace(ev.node, std::string(kCols + 1, '.')).first->second;
    const int a = static_cast<int>(static_cast<double>(ev.start - t_min) / span * kCols);
    const int b =
        std::max(a, static_cast<int>(static_cast<double>(ev.end - t_min) / span * kCols));
    const auto abbrev = sim::phase_abbrev(ev.phase);
    for (int i = a; i <= b && i <= kCols; ++i) {
      row[static_cast<std::size_t>(i)] =
          abbrev[static_cast<std::size_t>((i - a) % static_cast<int>(abbrev.size()))];
    }
  }
  os << "  timeline (" << (t_max - t_min) << "us total, request " << request_id << ")\n";
  for (const auto& [node, row] : rows) {
    const auto& name = cluster.sim().process(node).name();
    os << "    " << std::left << std::setw(18) << name << " |" << row << "|\n";
  }
  os << "    legend: RE request  SC server-coordination  EX execution  "
        "AC agreement-coordination  END response\n";
}

void print_message_mix(Cluster& cluster, std::ostream& os) {
  os << "  protocol messages on the wire ("
     << cluster.sim().net().messages_excluding("gcs.Heartbeat") << " total, "
     << cluster.sim().net().bytes_excluding("gcs.Heartbeat")
     << " bytes; failure-detector heartbeats excluded):\n";
  for (const auto& [type, count] : cluster.sim().net().per_type_count()) {
    if (type == "gcs.Heartbeat") continue;
    os << "    " << std::left << std::setw(24) << type << " " << count << "\n";
  }
}

void print_rule(std::size_t width, std::ostream& os) {
  os << std::string(width, '-') << "\n";
}

void print_header(const std::string& title, std::ostream& os) {
  os << "\n";
  print_rule(86, os);
  os << title << "\n";
  print_rule(86, os);
}

std::string verdict(bool ok) { return ok ? "MATCH" : "** MISMATCH **"; }

}  // namespace repli::bench
