// Figure 10: lazy primary copy — reply first, propagate afterwards.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::LazyPrimary, "Figure 10",
      "commit locally at the primary, answer, then propagate (END before AC)");
}
