// Figure 7: eager primary copy — primary executes, ships the change, 2PC.
#include "bench/figure.hh"

int main() {
  return repli::bench::figure_single_op(
      repli::core::TechniqueKind::EagerPrimary, "Figure 7",
      "hot-standby: execute at primary, ship log records, Two Phase Commit");
}
