// Ablations for the design options DESIGN.md calls out:
//   A. ABCAST implementation (fixed sequencer vs. consensus-based) under
//      active replication — the assumption-vs-cost trade (§3.1).
//   B. Read-one/write-all for distributed locking (§5.4.1) — what local
//      reads buy.
//   C. Lazy reconciliation policy (§4.6) — the paper's ABCAST after-commit
//      order vs. classic timestamp last-writer-wins.
#include <iomanip>
#include <iostream>

#include "bench/common.hh"

using namespace repli;

namespace {

void print_row(const std::string& label, const bench::RunStats& s) {
  std::cout << std::left << std::setw(44) << ("  " + label) << std::right << std::setw(12)
            << std::fixed << std::setprecision(0) << s.mean_latency_us << std::setw(12)
            << std::setprecision(1) << s.msgs_per_op << std::setw(12) << std::setprecision(0)
            << s.bytes_per_op << std::setw(10) << s.lazy_undone << std::setw(10)
            << (s.converged ? "yes" : "NO") << "\n";
}

void header() {
  std::cout << std::left << std::setw(44) << "  configuration" << std::right << std::setw(12)
            << "latency_us" << std::setw(12) << "msgs/op" << std::setw(12) << "bytes/op"
            << std::setw(10) << "undone" << std::setw(10) << "converged" << "\n";
  bench::print_rule(100);
}

}  // namespace

int main() {
  bench::print_header("Ablation A — ABCAST: fixed sequencer vs consensus-based (active replication)");
  std::cout << "  sequencer: 1 ordering message/broadcast, needs accurate failure detection;\n"
            << "  consensus: safe under *S + majority, pays estimate/propose/ack rounds.\n\n";
  header();
  for (const int impl : {0, 1}) {
    bench::WorkloadParams params;
    params.replicas = 3;
    params.clients = 2;
    params.ops_per_client = 40;
    params.seed = 51;
    params.overrides.active_abcast_impl = impl;
    print_row(impl == 0 ? "active / sequencer abcast" : "active / consensus abcast",
              bench::run_workload(core::TechniqueKind::Active, params));
  }

  bench::print_header("Ablation B — distributed locking: read-one/write-all vs lock-everywhere reads");
  std::cout << "  90% reads; ROWA serves them with local locks only (§5.4.1 [BHG87]).\n\n";
  header();
  for (const bool rowa : {true, false}) {
    bench::WorkloadParams params;
    params.replicas = 3;
    params.clients = 2;
    params.ops_per_client = 40;
    params.write_ratio = 0.1;
    params.seed = 53;
    params.overrides.locking_read_one_write_all = rowa;
    print_row(rowa ? "locking / read-one-write-all" : "locking / reads locked everywhere",
              bench::run_workload(core::TechniqueKind::EagerLocking, params));
  }

  bench::print_header("Ablation C — lazy reconciliation: ABCAST after-commit order vs timestamp LWW");
  std::cout << "  90% writes on 16 hot keys; both converge, LWW skips the ordering traffic.\n\n";
  header();
  for (const int policy : {0, 1}) {
    bench::WorkloadParams params;
    params.replicas = 3;
    params.clients = 3;
    params.ops_per_client = 60;
    params.write_ratio = 0.9;
    params.keys = 16;
    params.think_time = 300 * sim::kUsec;
    params.seed = 57;
    params.overrides.lazy_reconciliation = policy;
    params.overrides.lazy_propagation_delay = 3 * sim::kMsec;
    print_row(policy == 0 ? "lazy-everywhere / abcast order" : "lazy-everywhere / timestamp lww",
              bench::run_workload(core::TechniqueKind::LazyEverywhere, params));
  }
  bench::print_header(
      "Ablation D — optimistic processing over ABCAST ([KPAS99a], eager UE ABCAST)");
  std::cout << "  tentative execution overlaps the ordering round; validated at final\n"
            << "  delivery (hit) or redone (miss). Hit rate is high at low contention.\n\n";
  header();
  for (const bool optimistic : {false, true}) {
    bench::WorkloadParams params;
    params.replicas = 3;
    params.clients = 2;
    params.ops_per_client = 40;
    params.seed = 59;
    params.overrides.eager_abcast_optimistic = optimistic;
    print_row(optimistic ? "eager-abcast / optimistic execution"
                         : "eager-abcast / conservative",
              bench::run_workload(core::TechniqueKind::EagerAbcast, params));
  }

  std::cout << "\n  expected: consensus abcast costs more messages+latency than the sequencer;\n"
            << "  ROWA cuts read latency and messages sharply at high read ratios; LWW\n"
            << "  converges with fewer messages but without a global after-commit order.\n";
  return 0;
}
