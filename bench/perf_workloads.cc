// The performance study the paper announces in Section 6 (part b):
// behaviour under different workloads — write ratio sweep, and a conflict
// (hot-key) sweep showing certification aborts and the lazy reconciliation
// cost growing with contention (Gray et al.'s "dangers of replication").
#include <iomanip>
#include <iostream>

#include "bench/common.hh"
#include "obs/profile.hh"

using namespace repli;

int main() {
  obs::Profiler::global().enable();  // cost accounting -> PROF_perf_workloads.json
  bench::print_header("Performance study (b): workload sensitivity");
  std::vector<bench::BenchRow> rows;

  std::cout << "  B1: throughput (ops/s of simulated time) vs. write ratio "
               "(3 replicas, 3 clients, 60 ops each)\n\n";
  std::cout << std::left << std::setw(38) << "  technique" << std::right << std::setw(10)
            << "10% wr" << std::setw(10) << "50% wr" << std::setw(10) << "90% wr" << "\n";
  bench::print_rule(70);
  for (const auto& info : core::all_techniques()) {
    std::cout << std::left << std::setw(38) << ("  " + std::string(info.name)) << std::right;
    for (const double wr : {0.1, 0.5, 0.9}) {
      bench::WorkloadParams params;
      params.replicas = 3;
      params.clients = 3;
      params.ops_per_client = 60;
      params.write_ratio = wr;
      params.seed = 17;
      const auto stats = bench::run_workload(info.kind, params);
      rows.push_back({stats, {{"write_ratio", wr}, {"zipf_theta", 0.0}}});
      std::cout << std::setw(10) << std::fixed << std::setprecision(0)
                << stats.throughput_ops_per_s;
    }
    std::cout << "\n";
  }

  std::cout << "\n  B2: contention sweep — skewed access (zipf theta), 90% writes.\n"
            << "      certification pays aborts+retries; lazy-update-everywhere pays "
               "undone transactions;\n"
            << "      locking pays deadlock aborts. (3 replicas, 3 clients, 60 ops)\n\n";
  std::cout << std::left << std::setw(30) << "  technique" << std::right << std::setw(8)
            << "theta" << std::setw(12) << "latency_us" << std::setw(10) << "aborts"
            << std::setw(10) << "undone" << std::setw(14) << "staleness_ms" << "\n";
  bench::print_rule(86);
  for (const auto kind : {core::TechniqueKind::Certification, core::TechniqueKind::EagerLocking,
                          core::TechniqueKind::LazyEverywhere}) {
    for (const double theta : {0.0, 0.9, 1.4}) {
      bench::WorkloadParams params;
      params.replicas = 3;
      params.clients = 3;
      params.ops_per_client = 80;
      params.write_ratio = 0.9;
      params.keys = 32;
      params.zipf_theta = theta;
      params.seed = 19;
      params.think_time = 200 * sim::kUsec;  // high concurrency
      params.rmw_writes = true;  // read-modify-writes: certification has reads to check
      params.overrides.lazy_propagation_delay = 3 * sim::kMsec;
      const auto stats = bench::run_workload(kind, params);
      rows.push_back({stats, {{"write_ratio", 0.9}, {"zipf_theta", theta}}});
      std::cout << std::left << std::setw(30) << ("  " + stats.technique) << std::right
                << std::setw(8) << std::setprecision(1) << std::fixed << theta << std::setw(12)
                << std::setprecision(0) << stats.mean_latency_us << std::setw(10)
                << stats.certification_aborts << std::setw(10) << stats.lazy_undone
                << std::setw(14) << std::setprecision(2) << stats.mean_staleness_ms << "\n";
    }
  }
  std::cout << "\n  expected shape: conflict-driven costs (aborts / undone work) grow with\n"
            << "  skew; eager techniques keep copies consistent and pay in latency instead.\n";
  bench::write_bench_json("perf_workloads", rows);
  std::uint64_t total_ops = 0;
  for (const auto& row : rows) total_ops += static_cast<std::uint64_t>(row.stats.ops_ok);
  bench::write_prof_json("perf_workloads", total_ops);
  return 0;
}
