// Shared bench harness: workload driver, metric collection, table and
// timeline rendering. Every figure/table bench builds on these.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/cluster.hh"
#include "core/technique.hh"

namespace repli::bench {

struct WorkloadParams {
  int replicas = 3;
  int clients = 2;
  int ops_per_client = 50;
  double write_ratio = 0.5;  // fraction of update operations
  bool rmw_writes = false;   // updates are read-modify-writes (add) instead of blind puts
  int keys = 64;             // keyspace size
  double zipf_theta = 0.0;   // access skew (0 = uniform)
  std::uint64_t seed = 1;
  sim::Time think_time = 1 * sim::kMsec;  // closed-loop client think time
  core::ClusterConfig overrides;          // kind/replicas/clients filled in
};

/// Applies $REPLI_LOG (off|error|info|debug; default info) to the logger.
/// Idempotent; every harness entry point calls it, so standalone bench
/// mains need not.
void configure_logging_from_env();

struct RunStats {
  std::string technique;
  int replicas = 0;
  std::uint64_t seed = 0;         // RNG seed the run used (provenance)
  std::string technique_config;   // technique-specific knobs (provenance)
  int ops_attempted = 0;
  int ops_ok = 0;
  int ops_failed = 0;
  double mean_latency_us = 0;
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  double throughput_ops_per_s = 0;  // completed ops per simulated second
  double msgs_per_op = 0;
  double bytes_per_op = 0;
  std::int64_t client_timeouts = 0;
  std::int64_t lazy_undone = 0;
  std::int64_t certification_aborts = 0;
  double mean_staleness_ms = 0;  // lazy techniques only
  bool converged = false;
};

/// Runs a closed-loop read/write workload on a fresh cluster of `kind`.
RunStats run_workload(core::TechniqueKind kind, const WorkloadParams& params);

/// Harvests RunStats from a cluster after a bench drove it: latency
/// percentiles from the history, msgs/bytes per op from the network,
/// conflict counters from the metrics registry. `busy_span` is the
/// simulated time the workload was actually running (throughput divisor).
RunStats collect_run_stats(core::Cluster& cluster, core::TechniqueKind kind,
                           sim::Time busy_span);

/// One machine-readable bench row: the standard stats plus bench-specific
/// numeric fields (sweep parameters, failover gaps, ...).
struct BenchRow {
  RunStats stats;
  std::vector<std::pair<std::string, double>> extra;
};

/// Writes BENCH_<bench>.json into $REPLI_BENCH_DIR (default: the working
/// directory). Returns false (and logs) on I/O failure — a bench must not
/// fail because its report could not be written.
bool write_bench_json(const std::string& bench, const std::vector<BenchRow>& rows);
bool write_bench_json(const std::string& bench, const std::vector<RunStats>& rows);

/// One microbenchmark row: an isolated substrate operation and its
/// wall-clock/heap cost. Written as BENCH_<bench>.json with "micro": true
/// so the regression gate knows these rows are keyed by "op".
struct MicroRow {
  std::string op;  // e.g. "wire.encode", "lock.acquire_release"
  std::uint64_t ops = 0;
  double ns_per_op = 0;
  double allocs_per_op = 0;
  double alloc_bytes_per_op = 0;
};
bool write_micro_json(const std::string& bench, const std::vector<MicroRow>& rows);

/// Writes PROF_<bench>.json from the global profiler's accumulated cost
/// buckets (same directory rules as write_bench_json). `total_ops` is the
/// workload-op divisor for the *_per_op fields; 0 omits them.
bool write_prof_json(const std::string& bench, std::uint64_t total_ops);

/// When $REPLI_TRACE is set, dumps the cluster's span trace as Chrome
/// trace_event JSON to TRACE_<name>.json (same directory rules as
/// write_bench_json; REPLI_TRACE may also name a directory).
void maybe_write_trace(core::Cluster& cluster, const std::string& name);

/// Runs one instrumented update, returning the cluster for inspection.
/// Prints nothing.
struct ProbeResult {
  std::string request_id;
  std::string measured_pattern;
  double latency_us = 0;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
};
ProbeResult probe_single_update(core::Cluster& cluster);

/// ASCII rendering of one request's phase timeline (paper-figure style).
void print_timeline(core::Cluster& cluster, const std::string& request_id,
                    std::ostream& os = std::cout);

/// Message counts by wire type for the run so far.
void print_message_mix(core::Cluster& cluster, std::ostream& os = std::cout);

/// Header/row helpers for aligned tables.
void print_rule(std::size_t width = 86, std::ostream& os = std::cout);
void print_header(const std::string& title, std::ostream& os = std::cout);

/// One-line verdict helper used by figure benches.
std::string verdict(bool ok);

}  // namespace repli::bench
