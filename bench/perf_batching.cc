// The batched replication fast path, measured: abcast submission batching,
// group commit, and writeset coalescing amortize one ordering/agreement
// round over many transactions. Sweeps batch_max_ops x replicas under a
// concurrent uniform workload, checks one-copy serializability on every
// run, and verifies the headline claim: >= 3x fewer messages per operation
// for active and eager-update-everywhere-abcast at batch_max_ops >= 8.
#include <functional>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

#include "bench/common.hh"
#include "check/serializability.hh"
#include "util/rng.hh"

using namespace repli;

namespace {

struct BatchedRun {
  bench::RunStats stats;
  bool serializable = false;
};

/// Closed-loop uniform workload with enough concurrency to fill batches:
/// many clients, short think times, read-modify-write updates (so the
/// serializability checker has real data dependencies to order).
BatchedRun run_batched(core::TechniqueKind kind, int replicas, int batch_max_ops,
                       std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = replicas;
  cfg.clients = 24;
  cfg.seed = seed;
  cfg.batch_max_ops = batch_max_ops;
  cfg.batch_flush_us = 800;  // wide windows: this bench trades latency for traffic
  core::Cluster cluster(cfg);

  util::Rng rng(seed * 7919 + 13);
  constexpr int kOpsPerClient = 16;
  constexpr int kKeys = 16;  // uniform access, no skew
  std::vector<int> remaining(static_cast<std::size_t>(cfg.clients), kOpsPerClient);
  int outstanding = 0;

  std::function<void(int)> issue = [&](int c) {
    auto& left = remaining[static_cast<std::size_t>(c)];
    if (left == 0) return;
    --left;
    ++outstanding;
    const auto key = "key-" + std::to_string(rng.uniform(0, kKeys - 1));
    const auto op = rng.uniform01() < 0.5 ? core::op_add(key, 1) : core::op_get(key);
    cluster.submit_op(c, op, [&, c](const core::ClientReply&) {
      --outstanding;
      const auto think = static_cast<sim::Time>(rng.exponential(100.0));  // ~100us
      cluster.sim().schedule_after(think, [&issue, c] { issue(c); });
    });
  };
  for (int c = 0; c < cfg.clients; ++c) issue(c);

  auto work_left = [&] {
    if (outstanding > 0) return true;
    for (const int left : remaining) {
      if (left > 0) return true;
    }
    return false;
  };
  const sim::Time t0 = cluster.sim().now();
  int guard = 0;
  while (work_left() && ++guard < 2'000'000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  const sim::Time busy_span = cluster.sim().now() - t0;
  cluster.settle(3 * sim::kSec);

  BatchedRun run;
  run.stats = bench::collect_run_stats(cluster, kind, busy_span);
  const auto report = check::check_one_copy_serializability(cluster.history());
  run.serializable = report.serializable && report.write_orders_agree;
  bench::maybe_write_trace(cluster, "batching-" + run.stats.technique +
                                        "-b" + std::to_string(batch_max_ops));
  return run;
}

}  // namespace

int main() {
  bench::print_header("Performance study (d): the batched replication fast path");
  std::cout << "  24 clients, 16 ops each, uniform keys, 50% read-modify-writes,\n"
            << "  ~100us think time and an 800us flush window (enough concurrency\n"
            << "  to fill batches; batching trades commit latency for traffic).\n"
            << "  batch_max_ops=1 is the unbatched baseline (legacy code path).\n";

  const std::vector<core::TechniqueKind> kinds = {
      core::TechniqueKind::Active,       core::TechniqueKind::SemiActive,
      core::TechniqueKind::EagerAbcast,  core::TechniqueKind::Certification,
      core::TechniqueKind::EagerPrimary, core::TechniqueKind::EagerLocking,
      core::TechniqueKind::Passive,
  };
  const std::vector<int> batches = {1, 4, 8, 16};
  constexpr std::uint64_t kSeed = 23;

  std::vector<bench::BenchRow> rows;
  // msgs_per_op keyed by (technique, replicas, batch) for the verdicts.
  std::map<std::tuple<std::string, int, int>, BatchedRun> runs;

  std::cout << "\n  C1: batch_max_ops sweep (3 replicas) — msgs/op, throughput, p50 latency\n\n";
  std::cout << std::left << std::setw(38) << "  technique" << std::right;
  for (const int b : batches) std::cout << std::setw(12) << ("batch=" + std::to_string(b));
  std::cout << "\n";
  bench::print_rule(86);
  for (const auto kind : kinds) {
    std::cout << std::left << std::setw(38)
              << ("  " + std::string(core::technique_name(kind))) << std::right;
    for (const int b : batches) {
      auto run = run_batched(kind, 3, b, kSeed);
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(1) << run.stats.msgs_per_op;
      std::cout << std::setw(12) << cell.str();
      rows.push_back({run.stats,
                      {{"batch_max_ops", static_cast<double>(b)},
                       {"batch_flush_us", 800.0},
                       {"serializable", run.serializable ? 1.0 : 0.0}}});
      runs.emplace(std::make_tuple(run.stats.technique, 3, b), std::move(run));
    }
    std::cout << "\n";
  }
  std::cout << "  (cells are msgs/op; full stats land in BENCH_perf_batching.json)\n";

  std::cout << "\n  C2: does batching still pay at 5 replicas? (batch 1 vs 8)\n\n";
  std::cout << std::left << std::setw(38) << "  technique" << std::right << std::setw(14)
            << "unbatched" << std::setw(14) << "batch=8" << std::setw(12) << "reduction"
            << "\n";
  bench::print_rule(86);
  for (const auto kind : kinds) {
    const auto base = run_batched(kind, 5, 1, kSeed);
    const auto fast = run_batched(kind, 5, 8, kSeed);
    const double reduction =
        fast.stats.msgs_per_op > 0 ? base.stats.msgs_per_op / fast.stats.msgs_per_op : 0.0;
    std::cout << std::left << std::setw(38)
              << ("  " + std::string(core::technique_name(kind))) << std::right << std::setw(14)
              << std::fixed << std::setprecision(1) << base.stats.msgs_per_op << std::setw(14)
              << fast.stats.msgs_per_op << std::setw(11) << std::setprecision(2) << reduction
              << "x\n";
    rows.push_back({base.stats,
                    {{"batch_max_ops", 1.0},
                     {"batch_flush_us", 800.0},
                     {"serializable", base.serializable ? 1.0 : 0.0}}});
    rows.push_back({fast.stats,
                    {{"batch_max_ops", 8.0},
                     {"batch_flush_us", 800.0},
                     {"serializable", fast.serializable ? 1.0 : 0.0}}});
  }

  std::cout << "\n  verdicts (3 replicas, uniform workload):\n";
  bool all_ok = true;
  for (const auto kind :
       {core::TechniqueKind::Active, core::TechniqueKind::EagerAbcast}) {
    const std::string name(core::technique_name(kind));
    const auto& base = runs.at(std::make_tuple(name, 3, 1));
    const auto& fast = runs.at(std::make_tuple(name, 3, 8));
    const double reduction =
        fast.stats.msgs_per_op > 0 ? base.stats.msgs_per_op / fast.stats.msgs_per_op : 0.0;
    const bool ok = reduction >= 3.0;
    all_ok = all_ok && ok;
    std::cout << "    " << std::left << std::setw(36) << name << " msgs/op "
              << std::fixed << std::setprecision(1) << base.stats.msgs_per_op << " -> "
              << fast.stats.msgs_per_op << "  (" << std::setprecision(2) << reduction
              << "x, need >= 3x)  " << bench::verdict(ok) << "\n";
  }
  bool all_serializable = true;
  bool all_converged = true;
  for (const auto& [key, run] : runs) {
    all_serializable = all_serializable && run.serializable;
    all_converged = all_converged && run.stats.converged;
  }
  std::cout << "    " << std::left << std::setw(36) << "one-copy serializability"
            << " every run in the sweep               " << bench::verdict(all_serializable)
            << "\n";
  std::cout << "    " << std::left << std::setw(36) << "replica convergence"
            << " every run in the sweep               " << bench::verdict(all_converged)
            << "\n";

  bench::write_bench_json("perf_batching", rows);
  return all_ok && all_serializable && all_converged ? 0 : 1;
}
