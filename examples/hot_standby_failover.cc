// Hot-standby failover on eager primary copy replication (§4.3, Fig. 7).
//
// An order-processing service runs on a primary with two standbys; orders
// stream in; we kill the primary mid-stream. The client notices (timeout,
// retry — §4.1: database failovers are client-visible), the next standby
// takes over, and crucially *no acknowledged order is lost*, because every
// commit reached the standbys through 2PC before the client heard "ok".
#include <iostream>
#include <set>

#include "core/cluster.hh"
#include "core/eager_primary.hh"

using namespace repli;

int main() {
  core::ClusterConfig config;
  config.kind = core::TechniqueKind::EagerPrimary;
  config.replicas = 3;
  config.clients = 1;
  config.seed = 99;
  config.client_retry_timeout = 150 * sim::kMsec;
  core::Cluster cluster(config);

  constexpr int kOrders = 20;
  std::set<int> acknowledged;
  int next_order = 0;
  bool crashed = false;

  std::function<void()> place_order = [&] {
    if (next_order >= kOrders) return;
    const int order = next_order++;
    cluster.submit(0,
                   {core::op_put("order-" + std::to_string(order), "widget x" +
                                     std::to_string(order))},
                   [&, order](const core::ClientReply& reply) {
                     if (reply.ok) acknowledged.insert(order);
                     cluster.sim().schedule_after(3 * sim::kMsec, place_order);
                   });
  };
  place_order();

  // Pull the plug on the primary mid-stream.
  cluster.sim().schedule_at(20 * sim::kMsec, [&] {
    std::cout << "t=20ms   PRIMARY (replica 0) CRASHES\n";
    cluster.crash_replica(0);
    crashed = true;
  });

  int guard = 0;
  while (next_order < kOrders && ++guard < 6000) cluster.settle(10 * sim::kMsec);
  cluster.settle(2 * sim::kSec);

  auto& standby = dynamic_cast<core::EagerPrimaryReplica&>(cluster.replica(1));
  std::cout << "standby promoted        : " << (standby.is_primary() ? "yes" : "no") << "\n";
  std::cout << "orders acknowledged     : " << acknowledged.size() << "/" << kOrders << "\n";
  std::cout << "client-visible retries  : " << cluster.client(0).timeouts()
            << " (the paper: DB failover is not transparent)\n";

  // The durability audit: every acknowledged order is present on the
  // surviving replicas.
  int lost = 0;
  for (const int order : acknowledged) {
    const auto reply = cluster.run_op(0, core::op_get("order-" + std::to_string(order)));
    if (!reply.ok || reply.result.empty()) ++lost;
  }
  std::cout << "acknowledged orders lost: " << lost << "\n";
  std::cout << "survivors converged     : " << (cluster.converged() ? "yes" : "no") << "\n";
  return (crashed && standby.is_primary() && lost == 0 && cluster.converged() &&
          !acknowledged.empty())
             ? 0
             : 1;
}
