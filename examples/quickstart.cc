// Quickstart: a replicated key-value service in ~30 lines.
//
// Build a 3-replica cluster running active replication (the state-machine
// approach), write and read through the public API, crash a replica, and
// observe that the service doesn't care.
//
//   $ cmake -B build -G Ninja && cmake --build build
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/cluster.hh"

using namespace repli;

int main() {
  // 1. Pick a technique and wire up a cluster (simulator, replicas, client).
  core::ClusterConfig config;
  config.kind = core::TechniqueKind::Active;  // try: Passive, Certification, ...
  config.replicas = 3;
  config.clients = 1;
  config.seed = 1;
  core::Cluster cluster(config);

  // 2. Write and read. run_op drives the simulation until the reply lands.
  const auto put = cluster.run_op(0, core::op_put("greeting", "hello, replication"));
  std::cout << "put(greeting)       -> " << (put.ok ? put.result : "FAILED") << "\n";

  const auto get = cluster.run_op(0, core::op_get("greeting"));
  std::cout << "get(greeting)       -> '" << get.result << "'\n";

  // 3. Increment a replicated counter a few times.
  for (int i = 0; i < 3; ++i) {
    const auto add = cluster.run_op(0, core::op_add("visits", 1));
    std::cout << "add(visits, 1)      -> " << add.result << "\n";
  }

  // 4. Crash a replica. Active replication is failure-transparent: the
  // client never notices (Fig. 5 of the paper).
  cluster.crash_replica(2);
  const auto after = cluster.run_op(0, core::op_get("visits"));
  std::cout << "after crash, get    -> " << after.result << "   (client timeouts: "
            << cluster.client(0).timeouts() << ")\n";

  // 5. Peek behind the curtain: every live replica holds the same state.
  std::cout << "replicas converged  -> " << (cluster.converged() ? "yes" : "no") << "\n";
  std::cout << "messages exchanged  -> " << cluster.sim().net().messages_sent() << " ("
            << cluster.sim().net().bytes_sent() << " bytes)\n";
  return (put.ok && get.result == "hello, replication" && after.result == "3" &&
          cluster.converged())
             ? 0
             : 1;
}
