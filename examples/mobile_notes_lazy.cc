// A note-syncing app on lazy update-everywhere replication (§4.6, Fig. 11).
//
// Three devices each edit notes locally with instant response (END before
// AC — the whole point of lazy replication for mobile users, §2.2).
// Concurrent edits of the *same* note on diverged copies are reconciled in
// ABCAST after-commit order: one edit wins everywhere, the loser's work is
// undone — measured, visible, and exactly the trade-off the paper (and
// Gray et al.) describe.
#include <iostream>

#include "core/cluster.hh"
#include "core/lazy_everywhere.hh"

using namespace repli;

int main() {
  core::ClusterConfig config;
  config.kind = core::TechniqueKind::LazyEverywhere;
  config.replicas = 3;  // three devices, each holding a full copy
  config.clients = 3;   // the user's hands on each device
  config.seed = 5;
  config.lazy_propagation_delay = 200 * sim::kMsec;  // sync every 200ms
  core::Cluster cluster(config);

  util::Histogram response_us;
  auto edit = [&](int device, const std::string& note, const std::string& text) {
    const auto t0 = cluster.sim().now();
    cluster.submit(device, {core::op_put(note, text)},
                   [&response_us, t0, &cluster](const core::ClientReply&) {
                     response_us.add(static_cast<double>(cluster.sim().now() - t0));
                   });
  };

  // Independent notes: no conflicts, everyone happy.
  edit(0, "groceries", "milk, eggs");
  edit(1, "travel", "pack charger");
  edit(2, "ideas", "paper on replication?");

  // The same note edited on two devices within the sync window: a conflict
  // that reconciliation must resolve.
  edit(0, "shared-list", "ADD: birthday cake");
  edit(1, "shared-list", "ADD: party hats");

  cluster.settle(50 * sim::kMsec);
  // Mid-window: devices disagree (this is the lazy divergence window).
  const bool diverged_mid_window = !cluster.converged();

  cluster.settle(3 * sim::kSec);  // several sync rounds later

  std::cout << "edit response time      : " << response_us.mean() / 1000.0
            << " ms mean (no coordination before the reply)\n";
  std::cout << "diverged mid-window     : " << (diverged_mid_window ? "yes" : "no")
            << "  (copies legitimately differ until sync)\n";
  std::cout << "converged after sync    : " << (cluster.converged() ? "yes" : "no") << "\n";

  const auto winner = cluster.run_op(2, core::op_get("shared-list"));
  std::cout << "shared-list everywhere  : '" << winner.result << "'\n";
  const auto undone = cluster.sim().metrics().counter_value("lazy.undone");
  std::cout << "edits undone in sync    : " << undone
            << "  (the conflicting edit was sacrificed)\n";
  const auto* staleness = cluster.sim().metrics().find_histogram("lazy.staleness_us");
  if (staleness != nullptr && !staleness->data().empty()) {
    std::cout << "propagation staleness   : " << staleness->data().mean() / 1000.0
              << " ms mean\n";
  }
  return (cluster.converged() && undone >= 1 && !winner.result.empty()) ? 0 : 1;
}
