// A replicated bank on certification-based replication (§5.4.2, Fig. 14).
//
// Three branches (replicas) each serve their own tellers (clients), who
// fire concurrent transfers between shared accounts. Transactions execute
// optimistically at the local branch and are certified in ABCAST order —
// conflicting ones abort and retry; the books must balance at the end.
#include <iostream>

#include "check/serializability.hh"
#include "core/cluster.hh"

using namespace repli;

int main() {
  core::ClusterConfig config;
  config.kind = core::TechniqueKind::Certification;
  config.replicas = 3;
  config.clients = 3;  // one teller per branch
  config.seed = 2026;
  core::Cluster cluster(config);

  // Seed the accounts in one atomic multi-op transaction.
  constexpr std::int64_t kInitial = 1000;
  const auto seeded = cluster.run_txn(
      0, {core::op_put("acct-ann", std::to_string(kInitial)),
          core::op_put("acct-bob", std::to_string(kInitial)),
          core::op_put("acct-cleo", std::to_string(kInitial))});
  if (!seeded.ok) {
    std::cerr << "seeding failed: " << seeded.result << "\n";
    return 1;
  }

  // Tellers run closed-loop: each finishes one transfer before starting the
  // next (they still conflict *across* branches — that is the point).
  const char* accounts[] = {"acct-ann", "acct-bob", "acct-cleo"};
  constexpr int kTransfersPerTeller = 12;
  int outstanding = 0;
  int committed = 0;
  int refused = 0;  // insufficient funds (a business outcome, not an error)
  util::Rng rng(7);
  std::function<void(int, int)> run_teller = [&](int teller, int remaining) {
    if (remaining == 0) return;
    const auto* from = accounts[rng.uniform(0, 2)];
    const auto* to = accounts[rng.uniform(0, 2)];
    const auto amount = rng.uniform(1, 200);
    ++outstanding;
    cluster.submit(teller, {core::op_transfer(from, to, amount)},
                   [&, teller, remaining](const core::ClientReply& reply) {
                     --outstanding;
                     if (reply.ok && reply.result == "ok") ++committed;
                     if (reply.ok && reply.result == "insufficient") ++refused;
                     run_teller(teller, remaining - 1);
                   });
  };
  for (int teller = 0; teller < 3; ++teller) run_teller(teller, kTransfersPerTeller);
  int guard = 0;
  while (outstanding > 0 && ++guard < 6000) cluster.settle(10 * sim::kMsec);
  cluster.settle(2 * sim::kSec);

  // Audit: total balance must be conserved, everywhere, serializably.
  std::int64_t total = 0;
  for (const auto* acct : accounts) {
    const auto reply = cluster.run_op(0, core::op_get(acct));
    std::cout << acct << " = " << reply.result << "\n";
    total += std::stoll(reply.result);
  }
  const auto report = check::check_one_copy_serializability(cluster.history());
  std::cout << "\ntransfers committed    : " << committed << "\n";
  std::cout << "transfers refused      : " << refused << " (insufficient funds)\n";
  std::cout << "certification aborts   : "
            << cluster.sim().metrics().counter_value("certification.aborts")
            << " (optimistic conflicts, retried transparently)\n";
  std::cout << "total balance          : " << total << " (expected " << 3 * kInitial << ")\n";
  std::cout << "branches converged     : " << (cluster.converged() ? "yes" : "no") << "\n";
  std::cout << "1-copy serializable    : " << (report.serializable ? "yes" : "NO") << "\n";
  return (total == 3 * kInitial && cluster.converged() && report.serializable) ? 0 : 1;
}
