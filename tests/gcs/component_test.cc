// ComponentHost routing and Group helpers: the glue every protocol stack
// relies on.
#include "gcs/component.hh"

#include <gtest/gtest.h>

#include "gcs/group.hh"
#include "tests/gcs/gcs_test_util.hh"
#include "util/assert.hh"

namespace repli::gcs {
namespace {

using testing::Note;
using testing::note;

/// Consumes Notes whose text starts with its tag; records what it saw.
class TagComponent : public Component {
 public:
  explicit TagComponent(std::string tag) : tag_(std::move(tag)) {}

  bool handle(sim::NodeId /*from*/, const wire::MessagePtr& msg) override {
    ++offered;
    const auto n = wire::message_cast<Note>(msg);
    if (!n || !n->text.starts_with(tag_)) return false;
    consumed.push_back(n->text);
    return true;
  }
  void start() override { started = true; }

  int offered = 0;
  bool started = false;
  std::vector<std::string> consumed;

 private:
  std::string tag_;
};

class Host : public ComponentHost {
 public:
  Host(sim::NodeId id, sim::Simulator& sim) : ComponentHost(id, sim, "host") {}

 protected:
  void on_unhandled(sim::NodeId /*from*/, wire::MessagePtr msg) override {
    unhandled.push_back(testing::note_text(msg));
  }

 public:
  std::vector<std::string> unhandled;
};

TEST(ComponentHost, RoutesToFirstConsumerInRegistrationOrder) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  TagComponent a("a:");
  TagComponent both("");  // consumes everything offered to it
  host.add_component(a);
  host.add_component(both);

  auto send_self = [&](const std::string& text) {
    sim.net().send(host.id(), host.id(), std::make_shared<Note>(note(text)));
  };
  send_self("a:first");
  send_self("b:second");
  sim.run();

  EXPECT_EQ(a.consumed, (std::vector<std::string>{"a:first"}));
  EXPECT_EQ(both.consumed, (std::vector<std::string>{"b:second"}))
      << "the earlier component must get first refusal";
  EXPECT_EQ(a.offered, 2);
  EXPECT_EQ(both.offered, 1) << "consumed messages must not be re-offered";
  EXPECT_TRUE(host.unhandled.empty());
}

TEST(ComponentHost, UnclaimedMessagesReachOnUnhandled) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  TagComponent a("a:");
  host.add_component(a);
  sim.net().send(host.id(), host.id(), std::make_shared<Note>(note("z:nobody")));
  sim.run();
  EXPECT_EQ(host.unhandled, (std::vector<std::string>{"z:nobody"}));
}

TEST(ComponentHost, StartPropagatesToComponents) {
  sim::Simulator sim(1);
  auto& host = sim.spawn<Host>();
  TagComponent a("a:");
  TagComponent b("b:");
  host.add_component(a);
  host.add_component(b);
  sim.start_all();
  EXPECT_TRUE(a.started);
  EXPECT_TRUE(b.started);
}

TEST(Group, MembersAreSortedAndDeduplicated) {
  const Group g({5, 1, 3});
  EXPECT_EQ(g.members(), (std::vector<sim::NodeId>{1, 3, 5}));
  EXPECT_EQ(g.size(), 3u);
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(2));
  EXPECT_THROW(Group({1, 1, 2}), util::InvariantViolation);
}

TEST(Group, OthersExcludesSelf) {
  const Group g({0, 1, 2});
  EXPECT_EQ(g.others(1), (std::vector<sim::NodeId>{0, 2}));
  EXPECT_EQ(g.others(7), (std::vector<sim::NodeId>{0, 1, 2}));  // non-member asks
}

TEST(Group, MajoritySizes) {
  EXPECT_EQ(Group({0}).majority(), 1u);
  EXPECT_EQ(Group({0, 1}).majority(), 2u);
  EXPECT_EQ(Group({0, 1, 2}).majority(), 2u);
  EXPECT_EQ(Group({0, 1, 2, 3}).majority(), 3u);
  EXPECT_EQ(Group({0, 1, 2, 3, 4}).majority(), 3u);
}

}  // namespace
}  // namespace repli::gcs
