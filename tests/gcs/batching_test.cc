// Batching inside the GCS stack: abcast submission envelopes, sequencer
// ordering batches, and link payload packing must preserve the abcast
// contract (total order, agreement, no duplication, no creation) while
// measurably reducing physical traffic.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "gcs/abcast.hh"
#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "gcs/link.hh"
#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::note;

enum class Impl { Sequencer, Consensus };

class BatchedNode : public ComponentHost {
 public:
  BatchedNode(sim::NodeId id, sim::Simulator& sim, const Group& group, Impl impl,
              AbcastBatchConfig batch)
      : ComponentHost(id, sim, "batched-node"), fd(*this, group, FdConfig{}) {
    add_component(fd);
    if (impl == Impl::Sequencer) {
      SequencerConfig config;
      config.batch = batch;
      abcast = std::make_unique<SequencerAbcast>(*this, group, fd, 10, config);
    } else {
      ConsensusConfig config;
      config.batch = batch;
      abcast = std::make_unique<ConsensusAbcast>(*this, group, fd, 10, config);
    }
    add_component(*abcast);
    abcast->set_deliver([this](sim::NodeId origin, wire::MessagePtr msg) {
      delivered.emplace_back(origin, testing::note_text(msg));
    });
  }

  FailureDetector fd;
  std::unique_ptr<AtomicBroadcast> abcast;
  std::vector<std::pair<sim::NodeId, std::string>> delivered;
};

struct Case {
  Impl impl;
  std::uint64_t seed;
  int max_msgs;
};

class BatchedAbcast : public ::testing::TestWithParam<Case> {};

TEST_P(BatchedAbcast, ContractHoldsUnderBatching) {
  const Case c = GetParam();
  sim::NetworkConfig net;
  net.jitter_mean = 300;
  sim::Simulator sim(c.seed, net);
  const auto group = testing::first_n(3);
  AbcastBatchConfig batch;
  batch.max_msgs = c.max_msgs;
  batch.flush_window = 200 * sim::kUsec;
  std::vector<BatchedNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<BatchedNode>(group, c.impl, batch));
  sim.start_all();

  std::set<std::string> sent;
  const int per_node = 12;
  for (int round = 0; round < per_node; ++round) {
    // Several submissions inside one flush window: real batching pressure.
    sim.schedule_at(round * 500, [&, round] {
      for (auto* n : nodes) {
        const std::string text = std::to_string(n->id()) + ":" + std::to_string(round);
        n->abcast->abcast(note(text));
      }
    });
  }
  for (const auto* n : nodes) {
    for (int round = 0; round < per_node; ++round) {
      sent.insert(std::to_string(n->id()) + ":" + std::to_string(round));
    }
  }
  sim.run_until(60 * sim::kSec);

  for (const auto* n : nodes) {
    ASSERT_EQ(n->delivered.size(), sent.size()) << "node " << n->id() << " seed " << c.seed;
    std::set<std::string> unique;
    for (const auto& [o, t] : n->delivered) {
      EXPECT_TRUE(sent.contains(t)) << "created message " << t;
      EXPECT_TRUE(unique.insert(t).second) << "duplicate delivery of " << t;
    }
  }
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->delivered, nodes[0]->delivered) << "total order violated";
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchedAbcast,
                         ::testing::Values(Case{Impl::Sequencer, 1, 4},
                                           Case{Impl::Sequencer, 2, 8},
                                           Case{Impl::Sequencer, 3, 16},
                                           Case{Impl::Consensus, 1, 4},
                                           Case{Impl::Consensus, 2, 8}),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const auto& c = info.param;
                           return std::string(c.impl == Impl::Sequencer ? "Sequencer"
                                                                        : "Consensus") +
                                  "_seed" + std::to_string(c.seed) + "_batch" +
                                  std::to_string(c.max_msgs);
                         });

TEST(BatchedAbcast, EnvelopesReduceAbcastTraffic) {
  auto run = [](int max_msgs) {
    sim::NetworkConfig net;
    net.jitter_mean = 0;
    sim::Simulator sim(7, net);
    const auto group = testing::first_n(3);
    AbcastBatchConfig batch;
    batch.max_msgs = max_msgs;
    batch.flush_window = 500 * sim::kUsec;
    std::vector<BatchedNode*> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(&sim.spawn<BatchedNode>(group, Impl::Sequencer, batch));
    }
    sim.start_all();
    for (int i = 0; i < 32; ++i) {
      nodes[1]->abcast->abcast(note("m" + std::to_string(i)));
    }
    sim.run_until(30 * sim::kSec);
    EXPECT_EQ(nodes[0]->delivered.size(), 32u);
    return sim.net().messages_excluding("gcs.Heartbeat");
  };
  const auto unbatched = run(1);
  const auto batched = run(8);
  EXPECT_LT(batched * 2, unbatched)
      << "batch=8 should cut abcast traffic at least in half (got " << batched << " vs "
      << unbatched << ")";
}

TEST(BatchedAbcast, SinglePayloadFlushSkipsTheEnvelope) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  AbcastBatchConfig batch;
  batch.max_msgs = 8;
  batch.flush_window = 100 * sim::kUsec;
  std::vector<BatchedNode*> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back(&sim.spawn<BatchedNode>(group, Impl::Sequencer, batch));
  }
  sim.start_all();
  nodes[1]->abcast->abcast(note("alone"));  // flushes by timer with one payload
  sim.run_until(5 * sim::kSec);
  ASSERT_EQ(nodes[0]->delivered.size(), 1u);
  EXPECT_FALSE(sim.net().per_type_count().contains("gcs.AbEnvelope"))
      << "a lone payload must not be wrapped";
}

class PackNode : public ComponentHost {
 public:
  PackNode(sim::NodeId id, sim::Simulator& sim, LinkConfig config)
      : ComponentHost(id, sim, "pack-node"), link(*this, 5, config) {
    add_component(link);
    link.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
      delivered.emplace_back(from, testing::note_text(msg));
    });
  }
  ReliableLink link;
  std::vector<std::pair<sim::NodeId, std::string>> delivered;
};

TEST(LinkPack, PayloadsDeliveredInOrderWithFewerLinkFrames) {
  auto run = [](int batch_max) {
    sim::NetworkConfig net;
    net.jitter_mean = 0;
    sim::Simulator sim(3, net);
    LinkConfig config;
    config.batch_max_msgs = batch_max;
    config.batch_window = 300 * sim::kUsec;
    auto& a = sim.spawn<PackNode>(config);
    auto& b = sim.spawn<PackNode>(config);
    sim.start_all();
    for (int i = 0; i < 20; ++i) a.link.send_reliable(b.id(), note("p" + std::to_string(i)));
    sim.run_until(10 * sim::kSec);
    EXPECT_EQ(b.delivered.size(), 20u);
    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(b.delivered[static_cast<std::size_t>(i)].second, "p" + std::to_string(i));
    }
    return sim.net().per_type_count().at("gcs.LinkData");
  };
  const auto unpacked = run(1);
  const auto packed = run(8);
  EXPECT_LT(packed * 2, unpacked)
      << "packing should at least halve LinkData frames (got " << packed << " vs " << unpacked
      << ")";
}

TEST(LinkPack, SurvivesMessageLoss) {
  sim::NetworkConfig net;
  net.drop_probability = 0.2;
  net.jitter_mean = 200;
  sim::Simulator sim(17, net);
  LinkConfig config;
  config.batch_max_msgs = 4;
  config.batch_window = 200 * sim::kUsec;
  auto& a = sim.spawn<PackNode>(config);
  auto& b = sim.spawn<PackNode>(config);
  sim.start_all();
  for (int i = 0; i < 30; ++i) a.link.send_reliable(b.id(), note("p" + std::to_string(i)));
  sim.run_until(30 * sim::kSec);
  // Retransmissions may reorder packs (the link is reliable, not FIFO), so
  // assert exactly-once delivery of every payload rather than order.
  ASSERT_EQ(b.delivered.size(), 30u) << "ARQ must retransmit whole packs";
  std::set<std::string> unique;
  for (const auto& [from, text] : b.delivered) unique.insert(text);
  EXPECT_EQ(unique.size(), 30u);
}

}  // namespace
}  // namespace repli::gcs
