#include "gcs/flood.hh"

#include <gtest/gtest.h>

#include <set>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::note;

class FloodNode : public ComponentHost {
 public:
  FloodNode(sim::NodeId id, sim::Simulator& sim, const Group& group, LinkConfig cfg = {})
      : ComponentHost(id, sim, "flood-node"), flood(*this, group, 1, cfg) {
    add_component(flood);
    flood.set_deliver([this](sim::NodeId origin, wire::MessagePtr msg) {
      delivered.emplace_back(origin, testing::note_text(msg));
    });
  }

  Flooder flood;
  std::vector<std::pair<sim::NodeId, std::string>> delivered;
};

std::multiset<std::string> texts(const FloodNode& n) {
  std::multiset<std::string> out;
  for (const auto& [origin, text] : n.delivered) out.insert(text);
  return out;
}

TEST(Flooder, BroadcastReachesEveryoneIncludingSelf) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(4);
  std::vector<FloodNode*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<FloodNode>(group));
  nodes[2]->flood.rbcast(note("hello"));
  sim.run();
  for (const auto* n : nodes) {
    ASSERT_EQ(n->delivered.size(), 1u);
    EXPECT_EQ(n->delivered[0].first, 2);
    EXPECT_EQ(n->delivered[0].second, "hello");
  }
}

TEST(Flooder, ExactlyOnceUnderLoss) {
  sim::NetworkConfig net;
  net.drop_probability = 0.3;
  sim::Simulator sim(17, net);
  const auto group = testing::first_n(3);
  std::vector<FloodNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<FloodNode>(group));
  for (int i = 0; i < 30; ++i) nodes[static_cast<std::size_t>(i % 3)]->flood.rbcast(note(std::to_string(i)));
  sim.run_until(30 * sim::kSec);
  for (const auto* n : nodes) {
    ASSERT_EQ(n->delivered.size(), 30u) << "node " << n->id();
    std::set<std::string> unique;
    for (const auto& [o, t] : n->delivered) unique.insert(t);
    EXPECT_EQ(unique.size(), 30u) << "duplicates at node " << n->id();
  }
}

TEST(Flooder, AgreementWhenOriginCrashesMidBroadcast) {
  // The origin crashes immediately after rbcast: its initial transmissions
  // are in flight. Whoever receives one relays, so either nobody delivers
  // (only possible if every initial copy is lost) or every correct node
  // delivers.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    sim::NetworkConfig net;
    net.drop_probability = 0.5;
    sim::Simulator sim(seed, net);
    const auto group = testing::first_n(4);
    std::vector<FloodNode*> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<FloodNode>(group));
    nodes[0]->flood.rbcast(note("last words"));
    sim.schedule_at(1, [&] { sim.crash(0); });
    sim.run_until(60 * sim::kSec);
    const std::size_t at1 = nodes[1]->delivered.size();
    const std::size_t at2 = nodes[2]->delivered.size();
    const std::size_t at3 = nodes[3]->delivered.size();
    EXPECT_EQ(at1, at2) << "agreement violated, seed " << seed;
    EXPECT_EQ(at2, at3) << "agreement violated, seed " << seed;
  }
}

TEST(Flooder, ConcurrentBroadcastsAllDelivered) {
  sim::NetworkConfig net;
  net.jitter_mean = 300;
  sim::Simulator sim(23, net);
  const auto group = testing::first_n(5);
  std::vector<FloodNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&sim.spawn<FloodNode>(group));
  for (int round = 0; round < 10; ++round) {
    for (auto* n : nodes) n->flood.rbcast(note(std::to_string(n->id()) + ":" + std::to_string(round)));
  }
  sim.run_until(30 * sim::kSec);
  const auto expected = texts(*nodes[0]);
  EXPECT_EQ(expected.size(), 50u);
  for (const auto* n : nodes) EXPECT_EQ(texts(*n), expected) << "node " << n->id();
}

TEST(Flooder, SeparateChannelsAreIndependent) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(2);

  class TwoFloodNode : public ComponentHost {
   public:
    TwoFloodNode(sim::NodeId id, sim::Simulator& s, const Group& g)
        : ComponentHost(id, s, "two-flood"), f1(*this, g, 1), f2(*this, g, 3) {
      add_component(f1);
      add_component(f2);
      f1.set_deliver([this](sim::NodeId, wire::MessagePtr m) { via1.push_back(testing::note_text(m)); });
      f2.set_deliver([this](sim::NodeId, wire::MessagePtr m) { via2.push_back(testing::note_text(m)); });
    }
    Flooder f1, f2;
    std::vector<std::string> via1, via2;
  };

  auto& a = sim.spawn<TwoFloodNode>(group);
  auto& b = sim.spawn<TwoFloodNode>(group);
  a.f1.rbcast(note("one"));
  b.f2.rbcast(note("two"));
  sim.run();
  EXPECT_EQ(a.via1, (std::vector<std::string>{"one"}));
  EXPECT_EQ(a.via2, (std::vector<std::string>{"two"}));
  EXPECT_EQ(b.via1, (std::vector<std::string>{"one"}));
  EXPECT_EQ(b.via2, (std::vector<std::string>{"two"}));
}

}  // namespace
}  // namespace repli::gcs
