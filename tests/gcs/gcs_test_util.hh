// Shared helpers for group-communication tests.
#pragma once

#include <string>
#include <vector>

#include "gcs/component.hh"
#include "gcs/group.hh"
#include "sim/simulator.hh"

namespace repli::gcs::testing {

/// Simple application payload used across gcs tests.
struct Note : wire::MessageBase<Note> {
  static constexpr const char* kTypeName = "test.Note";
  std::string text;
  template <class Ar>
  void fields(Ar& ar) {
    ar(text);
  }
};

inline Note note(std::string text) {
  Note n;
  n.text = std::move(text);
  return n;
}

inline std::string note_text(const wire::MessagePtr& msg) {
  const auto n = wire::message_cast<Note>(msg);
  return n ? n->text : std::string("<not-a-note>");
}

/// Group of the first `n` node ids (tests spawn nodes first, ids 0..n-1).
inline Group first_n(int n) {
  std::vector<sim::NodeId> ids;
  for (int i = 0; i < n; ++i) ids.push_back(i);
  return Group(ids);
}

}  // namespace repli::gcs::testing
