#include "gcs/link.hh"

#include <gtest/gtest.h>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::Note;
using testing::note;
using testing::note_text;

class LinkNode : public ComponentHost {
 public:
  LinkNode(sim::NodeId id, sim::Simulator& sim, LinkConfig cfg = {})
      : ComponentHost(id, sim, "link-node"), link(*this, 1, cfg) {
    add_component(link);
    link.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
      received.emplace_back(from, testing::note_text(msg));
    });
  }

  ReliableLink link;
  std::vector<std::pair<sim::NodeId, std::string>> received;
};

TEST(ReliableLink, DeliversWithoutLoss) {
  sim::Simulator sim(1);
  auto& a = sim.spawn<LinkNode>();
  auto& b = sim.spawn<LinkNode>();
  for (int i = 0; i < 10; ++i) a.link.send_reliable(b.id(), note("m" + std::to_string(i)));
  sim.run();
  EXPECT_EQ(b.received.size(), 10u);
  EXPECT_EQ(a.link.unacked(), 0u);
}

TEST(ReliableLink, SurvivesHeavyLossExactlyOnce) {
  sim::NetworkConfig net;
  net.drop_probability = 0.4;
  sim::Simulator sim(7, net);
  auto& a = sim.spawn<LinkNode>();
  auto& b = sim.spawn<LinkNode>();
  const int n = 100;
  for (int i = 0; i < n; ++i) a.link.send_reliable(b.id(), note(std::to_string(i)));
  sim.run_until(10 * sim::kSec);
  ASSERT_EQ(b.received.size(), static_cast<std::size_t>(n)) << "lost or duplicated messages";
  std::set<std::string> unique;
  for (const auto& [from, text] : b.received) unique.insert(text);
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(a.link.unacked(), 0u);
}

TEST(ReliableLink, BidirectionalTrafficKeepsChannelsSeparate) {
  sim::Simulator sim(3);
  auto& a = sim.spawn<LinkNode>();
  auto& b = sim.spawn<LinkNode>();
  a.link.send_reliable(b.id(), note("from-a"));
  b.link.send_reliable(a.id(), note("from-b"));
  sim.run();
  ASSERT_EQ(a.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.received[0].second, "from-b");
  EXPECT_EQ(b.received[0].second, "from-a");
}

TEST(ReliableLink, GivesUpAfterMaxRetriesToCrashedPeer) {
  LinkConfig cfg;
  cfg.max_retries = 5;
  cfg.rto = 1 * sim::kMsec;
  sim::Simulator sim(1);
  auto& a = sim.spawn<LinkNode>(cfg);
  auto& b = sim.spawn<LinkNode>(cfg);
  sim.crash(b.id());
  a.link.send_reliable(b.id(), note("into the void"));
  EXPECT_EQ(a.link.unacked(), 1u);
  sim.run_until(1 * sim::kSec);
  EXPECT_EQ(a.link.unacked(), 0u);  // gave up, simulation quiesces
  EXPECT_TRUE(b.received.empty());
}

TEST(ReliableLink, RetransmissionsAreDeduplicated) {
  // Force retransmission by dropping the first ack direction only.
  sim::NetworkConfig net;
  net.drop_probability = 0.0;
  sim::Simulator sim(1, net);
  LinkConfig cfg;
  cfg.rto = 1 * sim::kMsec;
  auto& a = sim.spawn<LinkNode>(cfg);
  auto& b = sim.spawn<LinkNode>(cfg);
  // Block b->a (acks) briefly so a retransmits, then heal.
  sim.net().set_partition([&](sim::NodeId from, sim::NodeId to) {
    return from == b.id() && to == a.id();
  });
  a.link.send_reliable(b.id(), note("once"));
  sim.schedule_at(10 * sim::kMsec, [&] { sim.net().set_partition(nullptr); });
  sim.run_until(1 * sim::kSec);
  ASSERT_EQ(b.received.size(), 1u) << "duplicate deliveries after retransmission";
  EXPECT_EQ(a.link.unacked(), 0u);
}

TEST(ReliableLink, DifferentChannelsDoNotInterfere) {
  sim::Simulator sim(1);

  class TwoLinkNode : public ComponentHost {
   public:
    TwoLinkNode(sim::NodeId id, sim::Simulator& s)
        : ComponentHost(id, s, "two-link"), link1(*this, 1), link2(*this, 2) {
      add_component(link1);
      add_component(link2);
      link1.set_deliver([this](sim::NodeId, wire::MessagePtr m) { via1.push_back(note_text(m)); });
      link2.set_deliver([this](sim::NodeId, wire::MessagePtr m) { via2.push_back(note_text(m)); });
    }
    ReliableLink link1, link2;
    std::vector<std::string> via1, via2;
  };

  auto& a = sim.spawn<TwoLinkNode>();
  auto& b = sim.spawn<TwoLinkNode>();
  a.link1.send_reliable(b.id(), note("one"));
  a.link2.send_reliable(b.id(), note("two"));
  sim.run();
  EXPECT_EQ(b.via1, (std::vector<std::string>{"one"}));
  EXPECT_EQ(b.via2, (std::vector<std::string>{"two"}));
}

}  // namespace
}  // namespace repli::gcs
