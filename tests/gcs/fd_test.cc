#include "gcs/fd.hh"

#include <gtest/gtest.h>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

class FdNode : public ComponentHost {
 public:
  FdNode(sim::NodeId id, sim::Simulator& sim, const Group& group, FdConfig cfg = {})
      : ComponentHost(id, sim, "fd-node"), fd(*this, group, cfg) {
    add_component(fd);
    fd.on_suspect([this](sim::NodeId who) { suspicions.push_back(who); });
    fd.on_trust([this](sim::NodeId who) { trusts.push_back(who); });
  }

  FailureDetector fd;
  std::vector<sim::NodeId> suspicions;
  std::vector<sim::NodeId> trusts;
};

TEST(FailureDetector, NoSuspicionsOnHealthyGroup) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  auto& a = sim.spawn<FdNode>(group);
  auto& b = sim.spawn<FdNode>(group);
  auto& c = sim.spawn<FdNode>(group);
  sim.start_all();
  sim.run_until(1 * sim::kSec);
  EXPECT_TRUE(a.suspicions.empty());
  EXPECT_TRUE(b.suspicions.empty());
  EXPECT_TRUE(c.suspicions.empty());
  EXPECT_EQ(a.fd.lowest_trusted(), 0);
  EXPECT_EQ(c.fd.lowest_trusted(), 0);
}

TEST(FailureDetector, CrashedMemberSuspectedWithinTimeout) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  auto& a = sim.spawn<FdNode>(group);
  sim.spawn<FdNode>(group);
  auto& c = sim.spawn<FdNode>(group);
  sim.start_all();
  sim.schedule_at(100 * sim::kMsec, [&] { sim.crash(1); });
  sim.run_until(200 * sim::kMsec);
  EXPECT_TRUE(a.fd.suspects(1));
  EXPECT_TRUE(c.fd.suspects(1));
  EXPECT_FALSE(a.fd.suspects(2));
  EXPECT_EQ(a.suspicions, (std::vector<sim::NodeId>{1}));
  EXPECT_EQ(a.fd.lowest_trusted(), 0);
}

TEST(FailureDetector, LowestTrustedSkipsCrashedHead) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  sim.spawn<FdNode>(group);
  auto& b = sim.spawn<FdNode>(group);
  auto& c = sim.spawn<FdNode>(group);
  sim.start_all();
  sim.schedule_at(50 * sim::kMsec, [&] { sim.crash(0); });
  sim.run_until(200 * sim::kMsec);
  EXPECT_EQ(b.fd.lowest_trusted(), 1);
  EXPECT_EQ(c.fd.lowest_trusted(), 1);
}

TEST(FailureDetector, FalseSuspicionRevokedAfterPartitionHeals) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(2);
  auto& a = sim.spawn<FdNode>(group);
  sim.spawn<FdNode>(group);
  sim.start_all();
  // Cut node 1's heartbeats towards node 0 for a while.
  sim.schedule_at(20 * sim::kMsec, [&] {
    sim.net().set_partition([](sim::NodeId from, sim::NodeId to) { return from == 1 && to == 0; });
  });
  sim.schedule_at(100 * sim::kMsec, [&] { sim.net().set_partition(nullptr); });
  sim.run_until(300 * sim::kMsec);
  EXPECT_FALSE(a.fd.suspects(1));
  EXPECT_EQ(a.suspicions, (std::vector<sim::NodeId>{1}));
  EXPECT_EQ(a.trusts, (std::vector<sim::NodeId>{1}));
}

TEST(FailureDetector, AllOthersCrashedMeansLowestTrustedIsSelf) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  sim.spawn<FdNode>(group);
  sim.spawn<FdNode>(group);
  auto& c = sim.spawn<FdNode>(group);
  sim.start_all();
  sim.schedule_at(50 * sim::kMsec, [&] {
    sim.crash(0);
    sim.crash(1);
  });
  sim.run_until(300 * sim::kMsec);
  EXPECT_EQ(c.fd.lowest_trusted(), 2);
  EXPECT_EQ(c.fd.suspected().size(), 2u);
}

TEST(FailureDetector, MultipleListenersAllNotified) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(2);
  auto& a = sim.spawn<FdNode>(group);
  sim.spawn<FdNode>(group);
  int second_listener_calls = 0;
  a.fd.on_suspect([&](sim::NodeId) { ++second_listener_calls; });
  sim.start_all();
  sim.schedule_at(30 * sim::kMsec, [&] { sim.crash(1); });
  sim.run_until(200 * sim::kMsec);
  EXPECT_EQ(a.suspicions.size(), 1u);
  EXPECT_EQ(second_listener_calls, 1);
}

}  // namespace
}  // namespace repli::gcs
