// Property tests for Atomic Broadcast, parameterized over both
// implementations (fixed sequencer, consensus-based) and multiple seeds:
// total order, agreement, no duplication, no creation.
#include "gcs/abcast.hh"

#include <gtest/gtest.h>

#include <memory>

#include "gcs/abcast_consensus.hh"
#include "gcs/abcast_sequencer.hh"
#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::note;

enum class Impl { Sequencer, Consensus };

std::string impl_name(Impl impl) {
  return impl == Impl::Sequencer ? "Sequencer" : "Consensus";
}

class AbcastNode : public ComponentHost {
 public:
  AbcastNode(sim::NodeId id, sim::Simulator& sim, const Group& group, Impl impl)
      : ComponentHost(id, sim, "abcast-node"), fd(*this, group, FdConfig{}) {
    add_component(fd);
    if (impl == Impl::Sequencer) {
      abcast = std::make_unique<SequencerAbcast>(*this, group, fd, 10);
    } else {
      abcast = std::make_unique<ConsensusAbcast>(*this, group, fd, 10);
    }
    add_component(*abcast);
    abcast->set_deliver([this](sim::NodeId origin, wire::MessagePtr msg) {
      delivered.emplace_back(origin, testing::note_text(msg));
    });
  }

  FailureDetector fd;
  std::unique_ptr<AtomicBroadcast> abcast;
  std::vector<std::pair<sim::NodeId, std::string>> delivered;
};

struct Case {
  Impl impl;
  std::uint64_t seed;
  double drop;
};

class AbcastProperties : public ::testing::TestWithParam<Case> {};

TEST_P(AbcastProperties, TotalOrderAgreementNoDupNoCreation) {
  const Case c = GetParam();
  sim::NetworkConfig net;
  net.drop_probability = c.drop;
  net.jitter_mean = 300;
  sim::Simulator sim(c.seed, net);
  const auto group = testing::first_n(4);
  std::vector<AbcastNode*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<AbcastNode>(group, c.impl));
  sim.start_all();

  std::set<std::string> sent;
  const int per_node = 8;
  for (int round = 0; round < per_node; ++round) {
    sim.schedule_at(round * 2 * sim::kMsec, [&, round] {
      for (auto* n : nodes) {
        const std::string text = std::to_string(n->id()) + ":" + std::to_string(round);
        n->abcast->abcast(note(text));
      }
    });
  }
  for (auto* n : nodes) {
    for (int round = 0; round < per_node; ++round) {
      sent.insert(std::to_string(n->id()) + ":" + std::to_string(round));
    }
  }
  sim.run_until(60 * sim::kSec);

  // Agreement + completeness: every node delivered every message.
  for (const auto* n : nodes) {
    ASSERT_EQ(n->delivered.size(), sent.size())
        << impl_name(c.impl) << " node " << n->id() << " seed " << c.seed;
    std::set<std::string> unique;
    for (const auto& [o, t] : n->delivered) {
      EXPECT_TRUE(sent.contains(t)) << "created message " << t;
      EXPECT_TRUE(unique.insert(t).second) << "duplicate delivery of " << t;
    }
  }
  // Total order: identical delivery sequence everywhere.
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->delivered, nodes[0]->delivered)
        << impl_name(c.impl) << ": nodes 0 and " << i << " disagree, seed " << c.seed;
  }
}

std::vector<Case> cases() {
  std::vector<Case> out;
  for (const std::uint64_t seed : {1, 2, 3}) {
    out.push_back({Impl::Sequencer, seed, 0.0});
    out.push_back({Impl::Consensus, seed, 0.0});
    out.push_back({Impl::Consensus, seed, 0.1});  // consensus variant under loss
    out.push_back({Impl::Sequencer, seed, 0.05});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AbcastProperties, ::testing::ValuesIn(cases()),
                         [](const ::testing::TestParamInfo<Case>& info) {
                           const auto& c = info.param;
                           return impl_name(c.impl) + "_seed" + std::to_string(c.seed) + "_drop" +
                                  std::to_string(static_cast<int>(c.drop * 100));
                         });

TEST(SequencerAbcast, SelfDeliveryWhenAlone) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(1);
  auto& n = sim.spawn<AbcastNode>(group, Impl::Sequencer);
  sim.start_all();
  n.abcast->abcast(note("solo"));
  sim.run_until(1 * sim::kSec);
  ASSERT_EQ(n.delivered.size(), 1u);
  EXPECT_EQ(n.delivered[0].second, "solo");
}

TEST(SequencerAbcast, FailoverContinuesOrdering) {
  sim::Simulator sim(11);
  const auto group = testing::first_n(3);
  std::vector<AbcastNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<AbcastNode>(group, Impl::Sequencer));
  sim.start_all();

  for (int i = 0; i < 5; ++i) nodes[1]->abcast->abcast(note("before-" + std::to_string(i)));
  // Crash the sequencer (node 0) mid-stream, then keep broadcasting.
  sim.schedule_at(50 * sim::kMsec, [&] { sim.crash(0); });
  sim.schedule_at(300 * sim::kMsec, [&] {
    for (int i = 0; i < 5; ++i) nodes[2]->abcast->abcast(note("after-" + std::to_string(i)));
  });
  sim.run_until(10 * sim::kSec);

  for (const auto* n : {nodes[1], nodes[2]}) {
    ASSERT_EQ(n->delivered.size(), 10u) << "node " << n->id();
  }
  EXPECT_EQ(nodes[1]->delivered, nodes[2]->delivered);
  const auto* seq = dynamic_cast<SequencerAbcast*>(nodes[1]->abcast.get());
  ASSERT_NE(seq, nullptr);
  EXPECT_EQ(seq->current_sequencer(), 1);
}

TEST(ConsensusAbcast, SurvivesMinorityCrashWithLoss) {
  sim::NetworkConfig net;
  net.drop_probability = 0.1;
  sim::Simulator sim(13, net);
  const auto group = testing::first_n(5);
  std::vector<AbcastNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&sim.spawn<AbcastNode>(group, Impl::Consensus));
  sim.start_all();
  for (auto* n : nodes) n->abcast->abcast(note("pre-" + std::to_string(n->id())));
  sim.schedule_at(5 * sim::kMsec, [&] {
    sim.crash(0);
    sim.crash(4);
  });
  sim.schedule_at(500 * sim::kMsec,
                  [&] { nodes[2]->abcast->abcast(note("post-crash")); });
  sim.run_until(60 * sim::kSec);
  // The three survivors agree on one total order that includes post-crash
  // traffic; pre-crash messages may or may not have made it in (the two
  // crashed nodes might have died before dissemination).
  const auto& ref = nodes[1]->delivered;
  EXPECT_EQ(nodes[2]->delivered, ref);
  EXPECT_EQ(nodes[3]->delivered, ref);
  bool has_post = false;
  for (const auto& [o, t] : ref) has_post |= (t == "post-crash");
  EXPECT_TRUE(has_post);
}

TEST(SequencerAbcast, TransientFalseSuspicionDoesNotSplitBrain) {
  // Partition node 0 (the sequencer) away from 1 and 2 briefly: they
  // falsely suspect it, but the takeover grace period outlasts the
  // partition, so nobody self-sequences and the total order stays intact.
  sim::Simulator sim(31);
  const auto group = testing::first_n(3);
  std::vector<AbcastNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<AbcastNode>(group, Impl::Sequencer));
  sim.start_all();
  nodes[1]->abcast->abcast(note("before"));
  sim.run_until(20 * sim::kMsec);

  sim.net().set_partition([](sim::NodeId from, sim::NodeId to) {
    return (from == 0) != (to == 0);
  });
  // Both sides broadcast during the partition (suspicion will fire).
  sim.schedule_at(25 * sim::kMsec, [&] {
    nodes[1]->abcast->abcast(note("majority-side"));
    nodes[0]->abcast->abcast(note("isolated-side"));
  });
  sim.schedule_at(45 * sim::kMsec, [&] { sim.net().set_partition(nullptr); });
  sim.run_until(10 * sim::kSec);

  for (const auto* n : nodes) {
    ASSERT_EQ(n->delivered.size(), 3u) << "node " << n->id();
  }
  EXPECT_EQ(nodes[0]->delivered, nodes[1]->delivered);
  EXPECT_EQ(nodes[1]->delivered, nodes[2]->delivered);
}

TEST(SequencerAbcast, BacklogSequencedAfterGraceOnRealCrash) {
  sim::Simulator sim(33);
  const auto group = testing::first_n(3);
  std::vector<AbcastNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<AbcastNode>(group, Impl::Sequencer));
  sim.start_all();
  // Crash the sequencer, then broadcast immediately: the message waits out
  // the grace period and is then ordered by the new sequencer.
  sim.schedule_at(10 * sim::kMsec, [&] { sim.crash(0); });
  sim.schedule_at(12 * sim::kMsec, [&] { nodes[2]->abcast->abcast(note("orphan")); });
  sim.run_until(5 * sim::kSec);
  ASSERT_EQ(nodes[1]->delivered.size(), 1u);
  EXPECT_EQ(nodes[1]->delivered[0].second, "orphan");
  EXPECT_EQ(nodes[1]->delivered, nodes[2]->delivered);
}

}  // namespace
}  // namespace repli::gcs
