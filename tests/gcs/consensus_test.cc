#include "gcs/consensus.hh"

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

class ConsensusNode : public ComponentHost {
 public:
  ConsensusNode(sim::NodeId id, sim::Simulator& sim, const Group& group,
                ConsensusConfig cfg = {})
      : ComponentHost(id, sim, "consensus-node"),
        fd(*this, group, FdConfig{}),
        consensus(*this, group, fd, 10, cfg) {
    add_component(fd);
    add_component(consensus);
    consensus.set_decide([this](std::uint64_t instance, const std::string& value) {
      decisions[instance] = value;
    });
  }

  FailureDetector fd;
  Consensus consensus;
  std::map<std::uint64_t, std::string> decisions;
};

class ConsensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusSweep, AgreementAndValidityAcrossSeeds) {
  const std::uint64_t seed = GetParam();
  sim::NetworkConfig net;
  net.drop_probability = 0.05;
  net.jitter_mean = 200;
  sim::Simulator sim(seed, net);
  const auto group = testing::first_n(5);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  std::set<std::string> proposed;
  for (auto* n : nodes) {
    const std::string v = "value-from-" + std::to_string(n->id());
    proposed.insert(v);
    n->consensus.propose(1, v);
  }
  sim.run_until(5 * sim::kSec);
  ASSERT_TRUE(nodes[0]->decisions.contains(1)) << "no decision, seed " << seed;
  const std::string& decided = nodes[0]->decisions.at(1);
  EXPECT_TRUE(proposed.contains(decided)) << "validity violated";
  for (auto* n : nodes) {
    ASSERT_TRUE(n->decisions.contains(1)) << "node " << n->id() << " undecided";
    EXPECT_EQ(n->decisions.at(1), decided) << "agreement violated at node " << n->id();
    EXPECT_TRUE(n->consensus.has_decided(1));
    EXPECT_EQ(n->consensus.decision(1), decided);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusSweep, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Consensus, SingleProposerValueWins) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  nodes[2]->consensus.propose(1, "only-choice");
  sim.run_until(2 * sim::kSec);
  for (auto* n : nodes) {
    ASSERT_TRUE(n->decisions.contains(1));
    EXPECT_EQ(n->decisions.at(1), "only-choice");
  }
}

TEST(Consensus, DecidesDespiteCoordinatorCrash) {
  // Node 0 coordinates round 0; crash it right after proposals start.
  sim::Simulator sim(42);
  const auto group = testing::first_n(5);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  for (auto* n : nodes) n->consensus.propose(1, "v" + std::to_string(n->id()));
  sim.schedule_at(1 * sim::kMsec, [&] { sim.crash(0); });
  sim.run_until(10 * sim::kSec);
  std::optional<std::string> decided;
  for (auto* n : nodes) {
    if (n->id() == 0) continue;
    ASSERT_TRUE(n->decisions.contains(1)) << "node " << n->id() << " undecided after crash";
    if (!decided) decided = n->decisions.at(1);
    EXPECT_EQ(n->decisions.at(1), *decided);
  }
}

TEST(Consensus, ToleratesMinorityCrashes) {
  sim::Simulator sim(7);
  const auto group = testing::first_n(5);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  sim.crash(1);
  sim.crash(3);
  for (auto* n : nodes) {
    if (!n->crashed()) n->consensus.propose(1, "survivor-" + std::to_string(n->id()));
  }
  sim.run_until(10 * sim::kSec);
  std::optional<std::string> decided;
  for (auto* n : nodes) {
    if (n->crashed()) continue;
    ASSERT_TRUE(n->decisions.contains(1));
    if (!decided) decided = n->decisions.at(1);
    EXPECT_EQ(n->decisions.at(1), *decided);
  }
}

TEST(Consensus, IndependentInstancesDecideIndependently) {
  sim::Simulator sim(3);
  const auto group = testing::first_n(3);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  for (std::uint64_t k = 1; k <= 5; ++k) {
    for (auto* n : nodes) n->consensus.propose(k, "k" + std::to_string(k) + "-n" + std::to_string(n->id()));
  }
  sim.run_until(10 * sim::kSec);
  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(nodes[0]->decisions.contains(k)) << "instance " << k;
    const auto& v = nodes[0]->decisions.at(k);
    EXPECT_TRUE(v.starts_with("k" + std::to_string(k))) << "cross-instance value leak";
    for (auto* n : nodes) EXPECT_EQ(n->decisions.at(k), v);
  }
}

TEST(Consensus, DeferredInitialValueProviderUsed) {
  // Nobody proposes; everyone participates; the round-0 coordinator's
  // provider supplies the value on demand (semi-passive building block).
  sim::Simulator sim(5);
  const auto group = testing::first_n(3);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  int provider_calls = 0;
  for (auto* n : nodes) {
    n->consensus.set_value_provider([&provider_calls, n](std::uint64_t) {
      ++provider_calls;
      return std::optional<std::string>("computed-by-" + std::to_string(n->id()));
    });
  }
  sim.start_all();
  for (auto* n : nodes) n->consensus.participate(1);
  sim.run_until(5 * sim::kSec);
  for (auto* n : nodes) {
    ASSERT_TRUE(n->decisions.contains(1));
    EXPECT_EQ(n->decisions.at(1), "computed-by-0");  // round-0 coordinator is node 0
  }
  EXPECT_EQ(provider_calls, 1) << "deferred value computed more than once";
}

TEST(Consensus, DeferredProviderFallsToNextCoordinatorOnCrash) {
  sim::Simulator sim(9);
  const auto group = testing::first_n(3);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  for (auto* n : nodes) {
    n->consensus.set_value_provider(
        [n](std::uint64_t) { return std::optional<std::string>("from-" + std::to_string(n->id())); });
  }
  sim.start_all();
  sim.crash(0);
  for (auto* n : nodes) {
    if (!n->crashed()) n->consensus.participate(1);
  }
  sim.run_until(10 * sim::kSec);
  for (auto* n : nodes) {
    if (n->crashed()) continue;
    ASSERT_TRUE(n->decisions.contains(1));
    EXPECT_EQ(n->decisions.at(1), "from-1");  // next coordinator in rotation
  }
}

TEST(Consensus, DuplicateProposalIsIgnoredLocally) {
  sim::Simulator sim(2);
  const auto group = testing::first_n(3);
  std::vector<ConsensusNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ConsensusNode>(group));
  sim.start_all();
  nodes[0]->consensus.propose(1, "first");
  nodes[0]->consensus.propose(1, "second");  // must not replace "first"
  sim.run_until(2 * sim::kSec);
  for (auto* n : nodes) {
    ASSERT_TRUE(n->decisions.contains(1));
    EXPECT_EQ(n->decisions.at(1), "first");
  }
}

}  // namespace
}  // namespace repli::gcs
