// Flat-decode oracle tests: the visitor codec is the reference; the flat
// paths (decode_flat() and the *View structs) must produce field-identical
// results from the same bytes, and reject malformed input the same way.
#include "wire/flat.hh"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gcs/fd.hh"
#include "gcs/link.hh"
#include "wire/message.hh"
#include "wire/visit.hh"

namespace repli::gcs {
namespace {

/// Restores the process-wide flat-decode switch on scope exit.
class FlatSwitch {
 public:
  explicit FlatSwitch(bool on) : prev_(wire::flat_decode_enabled()) {
    wire::set_flat_decode_enabled(on);
  }
  ~FlatSwitch() { wire::set_flat_decode_enabled(prev_); }

 private:
  bool prev_;
};

/// Payload-only bytes (what follows the type id), as fields() encodes them.
template <typename T>
std::vector<std::uint8_t> payload_bytes(const T& msg) {
  wire::Writer w;
  wire::Encoder enc(w);
  const_cast<T&>(msg).fields(enc);
  const auto s = w.span();
  return {s.begin(), s.end()};
}

std::vector<std::string> sample_payloads() {
  return {
      "",                                   // empty
      "hello",                              // short
      std::string("\x00\xff\x7f\x80", 4),   // binary, embedded NUL
      std::string(10000, 'x'),              // forces multi-byte length varint
  };
}

TEST(FlatWire, LinkDataFlatAndVisitorDecodeAgree) {
  for (const auto& payload : sample_payloads()) {
    LinkData msg;
    msg.channel = 7;
    msg.seq = 123456789;
    msg.payload = payload;
    const auto bytes = wire::encode_message(msg);

    for (const bool flat : {true, false}) {
      FlatSwitch sw(flat);
      const auto decoded = wire::message_cast<LinkData>(wire::decode_message(bytes));
      ASSERT_TRUE(decoded);
      EXPECT_EQ(decoded->channel, msg.channel);
      EXPECT_EQ(decoded->seq, msg.seq);
      EXPECT_EQ(decoded->payload, msg.payload);
    }
  }
}

TEST(FlatWire, LinkAckFlatAndVisitorDecodeAgree) {
  LinkAck msg;
  msg.channel = 3;
  msg.seq = 0xDEADBEEFCAFEull;
  const auto bytes = wire::encode_message(msg);
  for (const bool flat : {true, false}) {
    FlatSwitch sw(flat);
    const auto decoded = wire::message_cast<LinkAck>(wire::decode_message(bytes));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->channel, msg.channel);
    EXPECT_EQ(decoded->seq, msg.seq);
  }
}

TEST(FlatWire, HeartbeatFlatAndVisitorDecodeAgree) {
  Heartbeat msg;
  msg.count = 42;
  const auto bytes = wire::encode_message(msg);
  for (const bool flat : {true, false}) {
    FlatSwitch sw(flat);
    const auto decoded = wire::message_cast<Heartbeat>(wire::decode_message(bytes));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->count, msg.count);
  }
}

TEST(FlatWire, ViewsParseTheVisitorEncodedBytes) {
  LinkData data;
  data.channel = 9;
  data.seq = 77;
  data.payload = "opaque blob";
  const auto data_bytes = payload_bytes(data);
  const auto dv = wire::LinkDataView::parse(data_bytes);
  EXPECT_EQ(dv.channel, data.channel);
  EXPECT_EQ(dv.seq, data.seq);
  EXPECT_EQ(dv.payload, data.payload);
  // Zero-copy: the view aliases the input buffer.
  EXPECT_GE(reinterpret_cast<const std::uint8_t*>(dv.payload.data()), data_bytes.data());
  EXPECT_LE(reinterpret_cast<const std::uint8_t*>(dv.payload.data()) + dv.payload.size(),
            data_bytes.data() + data_bytes.size());

  LinkAck ack;
  ack.channel = 2;
  ack.seq = 555;
  const auto av = wire::LinkAckView::parse(payload_bytes(ack));
  EXPECT_EQ(av.channel, ack.channel);
  EXPECT_EQ(av.seq, ack.seq);

  Heartbeat hb;
  hb.count = 31337;
  const auto hv = wire::HeartbeatView::parse(payload_bytes(hb));
  EXPECT_EQ(hv.count, hb.count);
}

TEST(FlatWire, ViewsRejectMalformedBytes) {
  LinkData data;
  data.channel = 1;
  data.seq = 2;
  data.payload = "abc";
  auto bytes = payload_bytes(data);

  // Trailing garbage.
  auto extra = bytes;
  extra.push_back(0);
  EXPECT_THROW(wire::LinkDataView::parse(extra), wire::WireError);

  // Every truncation point must be caught by bounds checks, not read past.
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> trunc(bytes.begin(),
                                          bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(wire::LinkDataView::parse(trunc), wire::WireError) << "cut at " << cut;
  }

  EXPECT_THROW(wire::LinkAckView::parse(std::vector<std::uint8_t>{}), wire::WireError);
  EXPECT_THROW(wire::HeartbeatView::parse(std::vector<std::uint8_t>{}), wire::WireError);
}

TEST(FlatWire, FlatDecodeRejectsTruncatedMessage) {
  LinkData msg;
  msg.channel = 1;
  msg.seq = 2;
  msg.payload = "payload";
  auto bytes = wire::encode_message(msg);
  bytes.pop_back();
  for (const bool flat : {true, false}) {
    FlatSwitch sw(flat);
    EXPECT_THROW(wire::decode_message(bytes), wire::WireError);
  }
}

// Decoded objects are pool-recycled; every field must be assigned by decode
// so a recycled object cannot leak the previous message's state.
TEST(FlatWire, PooledDecodeDoesNotLeakAcrossMessages) {
  LinkData big;
  big.channel = 5;
  big.seq = 1;
  big.payload = std::string(4096, 'Z');
  const auto big_bytes = wire::encode_message(big);

  LinkData empty;
  empty.channel = 0;
  empty.seq = 0;
  empty.payload.clear();
  const auto empty_bytes = wire::encode_message(empty);

  for (const bool flat : {true, false}) {
    FlatSwitch sw(flat);
    { const auto first = wire::decode_message(big_bytes); }  // returns to pool
    const auto second = wire::message_cast<LinkData>(wire::decode_message(empty_bytes));
    ASSERT_TRUE(second);
    EXPECT_EQ(second->channel, 0u);
    EXPECT_EQ(second->seq, 0u);
    EXPECT_TRUE(second->payload.empty());
  }
}

}  // namespace
}  // namespace repli::gcs
