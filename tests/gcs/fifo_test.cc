#include "gcs/fifo.hh"

#include <gtest/gtest.h>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::note;

class FifoNode : public ComponentHost {
 public:
  FifoNode(sim::NodeId id, sim::Simulator& sim, LinkConfig cfg = {})
      : ComponentHost(id, sim, "fifo-node"), fifo(*this, 1, cfg) {
    add_component(fifo);
    fifo.set_deliver([this](sim::NodeId from, wire::MessagePtr msg) {
      received.emplace_back(from, testing::note_text(msg));
    });
  }

  FifoChannel fifo;
  std::vector<std::pair<sim::NodeId, std::string>> received;
};

TEST(FifoChannel, InOrderOnCleanNetwork) {
  sim::Simulator sim(1);
  auto& a = sim.spawn<FifoNode>();
  auto& b = sim.spawn<FifoNode>();
  for (int i = 0; i < 20; ++i) a.fifo.send_fifo(b.id(), note(std::to_string(i)));
  sim.run();
  ASSERT_EQ(b.received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(b.received[static_cast<std::size_t>(i)].second, std::to_string(i));
}

TEST(FifoChannel, InOrderUnderJitterAndLoss) {
  sim::NetworkConfig net;
  net.jitter_mean = 2000;       // heavy reordering pressure
  net.drop_probability = 0.3;   // heavy loss
  sim::Simulator sim(99, net);
  auto& a = sim.spawn<FifoNode>();
  auto& b = sim.spawn<FifoNode>();
  const int n = 200;
  for (int i = 0; i < n; ++i) a.fifo.send_fifo(b.id(), note(std::to_string(i)));
  sim.run_until(30 * sim::kSec);
  ASSERT_EQ(b.received.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(b.received[static_cast<std::size_t>(i)].second, std::to_string(i))
        << "FIFO order violated at position " << i;
  }
}

TEST(FifoChannel, StreamsFromDifferentSendersAreIndependent) {
  sim::NetworkConfig net;
  net.jitter_mean = 500;
  sim::Simulator sim(5, net);
  auto& a = sim.spawn<FifoNode>();
  auto& b = sim.spawn<FifoNode>();
  auto& c = sim.spawn<FifoNode>();
  for (int i = 0; i < 50; ++i) {
    a.fifo.send_fifo(c.id(), note("a" + std::to_string(i)));
    b.fifo.send_fifo(c.id(), note("b" + std::to_string(i)));
  }
  sim.run_until(10 * sim::kSec);
  ASSERT_EQ(c.received.size(), 100u);
  int next_a = 0;
  int next_b = 0;
  for (const auto& [from, text] : c.received) {
    if (from == a.id()) {
      EXPECT_EQ(text, "a" + std::to_string(next_a++));
    } else {
      EXPECT_EQ(text, "b" + std::to_string(next_b++));
    }
  }
  EXPECT_EQ(next_a, 50);
  EXPECT_EQ(next_b, 50);
}

TEST(FifoChannel, ManyToOneFanIn) {
  sim::Simulator sim(11);
  std::vector<FifoNode*> senders;
  auto& sink = sim.spawn<FifoNode>();
  for (int i = 0; i < 5; ++i) senders.push_back(&sim.spawn<FifoNode>());
  for (int round = 0; round < 10; ++round) {
    for (auto* s : senders) s->fifo.send_fifo(sink.id(), note(std::to_string(round)));
  }
  sim.run_until(5 * sim::kSec);
  EXPECT_EQ(sink.received.size(), 50u);
}

}  // namespace
}  // namespace repli::gcs
