#include "gcs/view.hh"

#include <gtest/gtest.h>

#include <map>

#include "tests/gcs/gcs_test_util.hh"

namespace repli::gcs {
namespace {

using testing::note;

class ViewNode : public ComponentHost {
 public:
  ViewNode(sim::NodeId id, sim::Simulator& sim, const Group& group)
      : ComponentHost(id, sim, "view-node"),
        fd(*this, group, FdConfig{}),
        vg(*this, group, fd, 10) {
    add_component(fd);
    add_component(vg);
    vg.set_deliver([this](sim::NodeId origin, wire::MessagePtr msg) {
      // Record which view the message was delivered in.
      delivered_by_view[vg.view().id].emplace_back(origin, testing::note_text(msg));
    });
    vg.on_view([this](const View& v) { views.push_back(v); });
  }

  std::vector<std::pair<sim::NodeId, std::string>> all_delivered() const {
    std::vector<std::pair<sim::NodeId, std::string>> out;
    for (const auto& [vid, msgs] : delivered_by_view) {
      out.insert(out.end(), msgs.begin(), msgs.end());
    }
    return out;
  }

  FailureDetector fd;
  ViewGroup vg;
  std::map<std::uint64_t, std::vector<std::pair<sim::NodeId, std::string>>> delivered_by_view;
  std::vector<View> views;
};

TEST(ViewGroup, InitialViewContainsEveryone) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.run_until(100 * sim::kMsec);
  for (const auto* n : nodes) {
    ASSERT_FALSE(n->views.empty());
    EXPECT_EQ(n->views[0].id, 0u);
    EXPECT_EQ(n->views[0].members, group.members());
    EXPECT_EQ(n->views[0].primary(), 0);
  }
}

TEST(ViewGroup, VscastReachesWholeView) {
  sim::Simulator sim(1);
  const auto group = testing::first_n(4);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(10 * sim::kMsec, [&] { nodes[1]->vg.vscast(note("hi")); });
  sim.run_until(200 * sim::kMsec);
  for (const auto* n : nodes) {
    const auto all = n->all_delivered();
    ASSERT_EQ(all.size(), 1u) << "node " << n->id();
    EXPECT_EQ(all[0].first, 1);
    EXPECT_EQ(all[0].second, "hi");
  }
}

TEST(ViewGroup, CrashInstallsNewViewWithoutTheDead) {
  sim::Simulator sim(5);
  const auto group = testing::first_n(4);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(50 * sim::kMsec, [&] { sim.crash(2); });
  sim.run_until(2 * sim::kSec);
  for (const auto* n : nodes) {
    if (n->crashed()) continue;
    const auto& v = n->vg.view();
    EXPECT_GE(v.id, 1u) << "node " << n->id() << " never installed a new view";
    EXPECT_FALSE(v.contains(2));
    EXPECT_EQ(v.members, (std::vector<sim::NodeId>{0, 1, 3}));
  }
}

TEST(ViewGroup, PrimaryCrashPromotesNextLowest) {
  sim::Simulator sim(5);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(50 * sim::kMsec, [&] { sim.crash(0); });
  sim.run_until(2 * sim::kSec);
  EXPECT_EQ(nodes[1]->vg.view().primary(), 1);
  EXPECT_EQ(nodes[2]->vg.view().primary(), 1);
}

TEST(ViewGroup, ViewSynchronyMessagesDeliveredInSendingView) {
  // Survivors must agree on the set of view-0 messages before entering
  // view 1, even when the sender crashes mid-broadcast.
  for (const std::uint64_t seed : {1, 2, 3, 4, 5}) {
    sim::NetworkConfig net;
    net.jitter_mean = 300;
    sim::Simulator sim(seed, net);
    const auto group = testing::first_n(4);
    std::vector<ViewNode*> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
    sim.start_all();
    sim.schedule_at(10 * sim::kMsec, [&] {
      nodes[3]->vg.vscast(note("doomed-1"));
      nodes[3]->vg.vscast(note("doomed-2"));
      nodes[1]->vg.vscast(note("steady"));
    });
    sim.schedule_at(10 * sim::kMsec + 200, [&] { sim.crash(3); });
    sim.run_until(3 * sim::kSec);

    // All survivors reach view >= 1 without node 3.
    for (const auto* n : nodes) {
      if (n->crashed()) continue;
      ASSERT_GE(n->vg.view().id, 1u) << "seed " << seed;
    }
    // View synchrony: view-0 deliveries identical across survivors.
    auto view0 = [&](const ViewNode& n) {
      std::multiset<std::string> out;
      if (const auto it = n.delivered_by_view.find(0); it != n.delivered_by_view.end()) {
        for (const auto& [o, t] : it->second) out.insert(t);
      }
      return out;
    };
    const auto ref = view0(*nodes[0]);
    EXPECT_EQ(view0(*nodes[1]), ref) << "seed " << seed;
    EXPECT_EQ(view0(*nodes[2]), ref) << "seed " << seed;
    // "steady" from a surviving sender must be in there.
    EXPECT_TRUE(ref.contains("steady")) << "seed " << seed;
  }
}

TEST(ViewGroup, SendsDuringFlushArriveInNextView) {
  sim::Simulator sim(9);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(20 * sim::kMsec, [&] { sim.crash(2); });
  // Poll until node 0 is mid-flush, then vscast.
  bool sent_during_flush = false;
  std::function<void()> poll = [&] {
    if (nodes[0]->crashed()) return;
    if (nodes[0]->vg.flushing() && !sent_during_flush) {
      sent_during_flush = true;
      nodes[0]->vg.vscast(note("queued"));
      return;
    }
    if (!sent_during_flush) sim.schedule_after(1 * sim::kMsec, poll);
  };
  sim.schedule_at(21 * sim::kMsec, poll);
  sim.run_until(3 * sim::kSec);

  ASSERT_TRUE(sent_during_flush) << "flush window never observed";
  for (const auto* n : {nodes[0], nodes[1]}) {
    bool found_in_later_view = false;
    for (const auto& [vid, msgs] : n->delivered_by_view) {
      for (const auto& [o, t] : msgs) {
        if (t == "queued") {
          found_in_later_view = vid >= 1;
        }
      }
    }
    EXPECT_TRUE(found_in_later_view) << "node " << n->id();
  }
}

TEST(ViewGroup, CascadingCrashesShrinkToSingleton) {
  sim::Simulator sim(3);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(50 * sim::kMsec, [&] { sim.crash(0); });
  sim.schedule_at(1 * sim::kSec, [&] { sim.crash(1); });
  sim.run_until(5 * sim::kSec);
  EXPECT_EQ(nodes[2]->vg.view().members, (std::vector<sim::NodeId>{2}));
  EXPECT_EQ(nodes[2]->vg.view().primary(), 2);
}

TEST(ViewGroup, MessagesKeepFlowingAcrossViewChange) {
  sim::Simulator sim(21);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(10 * sim::kMsec, [&] { nodes[1]->vg.vscast(note("v0-msg")); });
  sim.schedule_at(30 * sim::kMsec, [&] { sim.crash(2); });
  sim.schedule_at(2 * sim::kSec, [&] { nodes[1]->vg.vscast(note("v1-msg")); });
  sim.run_until(4 * sim::kSec);
  for (const auto* n : {nodes[0], nodes[1]}) {
    std::multiset<std::string> texts;
    for (const auto& [vid, msgs] : n->delivered_by_view) {
      for (const auto& [o, t] : msgs) texts.insert(t);
    }
    EXPECT_TRUE(texts.contains("v0-msg")) << "node " << n->id();
    EXPECT_TRUE(texts.contains("v1-msg")) << "node " << n->id();
  }
}

TEST(ViewGroup, VscastSurvivesMessageLoss) {
  sim::NetworkConfig net;
  net.drop_probability = 0.25;
  sim::Simulator sim(41, net);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at((10 + i) * sim::kMsec,
                    [&, i] { nodes[0]->vg.vscast(note("m" + std::to_string(i))); });
  }
  sim.run_until(10 * sim::kSec);
  for (const auto* n : nodes) {
    ASSERT_EQ(n->all_delivered().size(), 10u) << "node " << n->id();
  }
}

TEST(ViewGroup, FifoPerOriginWithinView) {
  sim::NetworkConfig net;
  net.jitter_mean = 1000;  // heavy reordering pressure
  sim::Simulator sim(43, net);
  const auto group = testing::first_n(3);
  std::vector<ViewNode*> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(&sim.spawn<ViewNode>(group));
  sim.start_all();
  sim.schedule_at(10 * sim::kMsec, [&] {
    for (int i = 0; i < 20; ++i) nodes[1]->vg.vscast(note(std::to_string(i)));
  });
  sim.run_until(10 * sim::kSec);
  for (const auto* n : nodes) {
    const auto all = n->all_delivered();
    ASSERT_EQ(all.size(), 20u) << "node " << n->id();
    for (int i = 0; i < 20; ++i) {
      ASSERT_EQ(all[static_cast<std::size_t>(i)].second, std::to_string(i))
          << "FIFO from the primary violated at node " << n->id() << " (§3.3!)";
    }
  }
}

}  // namespace
}  // namespace repli::gcs
