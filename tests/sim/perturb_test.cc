// Schedule perturbation: randomized tie-breaking and delivery jitter must
// stay a pure function of the perturbation seed (that is what makes an
// exploration trial replayable), and the crash / partition mutators the
// fault injector leans on must be safe to call redundantly mid-run.
#include <gtest/gtest.h>

#include <vector>

#include "sim/network.hh"
#include "sim/simulator.hh"
#include "tests/sim/sim_test_util.hh"
#include "util/assert.hh"

namespace repli::sim {
namespace {

/// Runs `n` same-time events under `pc` and returns their execution order.
std::vector<int> tie_order(const PerturbConfig& pc, int n,
                           std::uint64_t* digest = nullptr) {
  Simulator sim(7);
  sim.enable_perturbation(pc);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    sim.schedule_after(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until(100);
  if (digest != nullptr) *digest = sim.schedule_digest();
  return order;
}

TEST(Perturb, OffKeepsInsertionOrderForTies) {
  Simulator sim(7);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.schedule_after(5, [&order, i] { order.push_back(i); });
  }
  sim.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_TRUE(sim.tie_decisions().empty());
}

TEST(Perturb, TieBreakIsAPureFunctionOfTheSeed) {
  PerturbConfig pc;
  pc.seed = 42;
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  const auto a = tie_order(pc, 16, &d1);
  const auto b = tie_order(pc, 16, &d2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(d1, d2);
}

TEST(Perturb, DifferentSeedsExploreDifferentOrders) {
  PerturbConfig pc;
  pc.seed = 1;
  std::uint64_t d1 = 0;
  std::uint64_t d2 = 0;
  const auto a = tie_order(pc, 16, &d1);
  pc.seed = 2;
  const auto b = tie_order(pc, 16, &d2);
  // 16 same-time events: two seeds agreeing on the permutation would be a
  // 1-in-16! coincidence.
  EXPECT_NE(a, b);
  EXPECT_NE(d1, d2);
}

TEST(Perturb, TieDecisionsAreRecorded) {
  Simulator sim(7);
  PerturbConfig pc;
  pc.seed = 3;
  sim.enable_perturbation(pc);
  for (int i = 0; i < 4; ++i) {
    sim.schedule_after(5, [] {});
  }
  sim.schedule_after(9, [] {});  // singleton: not a tie, must not be recorded
  sim.run_until(100);
  ASSERT_FALSE(sim.tie_decisions().empty());
  for (const auto& d : sim.tie_decisions()) {
    EXPECT_GE(d.ties, 2u);
    EXPECT_LT(d.chosen, d.ties);
  }
}

TEST(Perturb, JitterStaysWithinTheConfiguredBound) {
  Simulator sim(7);
  PerturbConfig pc;
  pc.seed = 9;
  pc.tie_break = false;
  pc.max_extra_delay = 250;
  sim.enable_perturbation(pc);
  for (int i = 0; i < 200; ++i) {
    const Time extra = sim.perturb_extra_delay();
    EXPECT_GE(extra, 0);
    EXPECT_LE(extra, 250);
  }
}

TEST(Perturb, NoJitterWhenDisabled) {
  Simulator sim(7);
  EXPECT_EQ(sim.perturb_extra_delay(), 0);
  PerturbConfig pc;
  pc.seed = 9;
  pc.max_extra_delay = 0;
  sim.enable_perturbation(pc);
  EXPECT_EQ(sim.perturb_extra_delay(), 0);
}

TEST(Perturb, EnableAfterDispatchIsAnInvariantViolation) {
  Simulator sim(7);
  sim.schedule_after(1, [] {});
  sim.run_until(10);
  ASSERT_GT(sim.events_dispatched(), 0u);
  EXPECT_THROW(sim.enable_perturbation(PerturbConfig{}), util::InvariantViolation);
}

TEST(Perturb, DigestCoversEveryDispatchedEvent) {
  Simulator sim(7);
  const auto d0 = sim.schedule_digest();
  sim.schedule_after(1, [] {});
  EXPECT_EQ(sim.schedule_digest(), d0);  // scheduling alone changes nothing
  sim.run_until(10);
  EXPECT_EQ(sim.events_dispatched(), 1u);
  EXPECT_NE(sim.schedule_digest(), d0);
}

TEST(Crash, SecondCrashOfSameNodeIsANoOp) {
  Simulator sim(7);
  sim.spawn<testing::Recorder>();
  sim.crash(0);
  ASSERT_TRUE(sim.crashed(0));
  EXPECT_NO_THROW(sim.crash(0));
  EXPECT_TRUE(sim.crashed(0));
}

TEST(Partition, MidRunReplacementIsACleanSwap) {
  Simulator sim(7);
  auto& before = sim.metrics().counter("net.partition_swaps");
  const auto swaps0 = before.value();
  sim.net().set_partition([](NodeId, NodeId) { return true; });
  sim.net().set_partition([](NodeId from, NodeId) { return from == 1; });
  sim.net().set_partition(nullptr);
  EXPECT_EQ(sim.metrics().counter("net.partition_swaps").value() - swaps0, 3);
}

}  // namespace
}  // namespace repli::sim
