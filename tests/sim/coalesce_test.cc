// Frame coalescing: with coalesce_window > 0, messages queued inside the
// window ride one physical frame. messages_sent() counts frames while
// per_type_count() keeps counting logical messages; heartbeats are exempt;
// delivery order and content are preserved.
#include <gtest/gtest.h>

#include "sim/network.hh"
#include "sim/simulator.hh"
#include "tests/sim/sim_test_util.hh"

namespace repli::sim {
namespace {

using testing::Ping;
using testing::Recorder;

/// Shares the failure detector's wire type name to probe the exemption.
struct FakeHeartbeat : wire::MessageBase<FakeHeartbeat> {
  static constexpr const char* kTypeName = "gcs.Heartbeat";
  std::int64_t n = 0;
  template <class Ar>
  void fields(Ar& ar) {
    ar(n);
  }
};

NetworkConfig quiet(Time window = 0) {
  NetworkConfig cfg;
  cfg.base_latency = 100;
  cfg.jitter_mean = 0;
  cfg.bytes_per_usec = 0.0;
  cfg.coalesce_window = window;
  return cfg;
}

TEST(Coalesce, BurstSharesOnePhysicalFrame) {
  Simulator sim(1, quiet(200));
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 5; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 5u);
  // In-order delivery, all on the same frame arrival.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(b.deliveries[static_cast<std::size_t>(i)].seq, i);
    EXPECT_EQ(b.deliveries[static_cast<std::size_t>(i)].at, b.deliveries[0].at);
  }
  EXPECT_EQ(sim.net().messages_sent(), 1);                     // one frame
  EXPECT_EQ(sim.net().per_type_count().at("test.Ping"), 5);    // five messages
}

TEST(Coalesce, MaxMsgsFlushesEarly) {
  auto cfg = quiet(10'000);
  cfg.coalesce_max_msgs = 3;
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 7; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 7u);
  EXPECT_EQ(sim.net().messages_sent(), 3);  // 3 + 3 + 1
}

TEST(Coalesce, WindowZeroIsPerMessage) {
  Simulator sim(1, quiet(0));
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 5; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 5u);
  EXPECT_EQ(sim.net().messages_sent(), 5);
}

TEST(Coalesce, SpacedSendsUseSeparateFrames) {
  Simulator sim(1, quiet(200));
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 0);
  a.set_timer(1000, [&] { a.send_ping(b.id(), 1); });
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 2u);
  EXPECT_EQ(sim.net().messages_sent(), 2);
  EXPECT_LT(b.deliveries[0].at, b.deliveries[1].at);
}

TEST(Coalesce, HeartbeatsAreExemptAndAccountingStaysExact) {
  Simulator sim(1, quiet(500));
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  // A heartbeat-typed message between two pings must neither delay for the
  // window nor fold into the frame.
  a.send_ping(b.id(), 0);
  sim.net().send(a.id(), b.id(), std::make_shared<FakeHeartbeat>());
  a.send_ping(b.id(), 1);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 2u);  // Recorder ignores the heartbeat
  EXPECT_EQ(sim.net().messages_sent(), 2);  // 1 frame + 1 heartbeat
  EXPECT_EQ(sim.net().messages_excluding("gcs.Heartbeat"), 1);
  EXPECT_EQ(sim.net().per_type_count().at("test.Ping"), 2);
}

TEST(Coalesce, SelfSendsBypassCoalescing) {
  Simulator sim(1, quiet(500));
  auto& a = sim.spawn<Recorder>();
  a.send_ping(a.id(), 0);
  sim.run();
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries[0].at, 0);  // still immediate
}

TEST(Coalesce, DropsCountPerLogicalMessage) {
  auto cfg = quiet(200);
  cfg.drop_probability = 1.0;
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 4; ++i) a.send_ping(b.id(), i);
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(sim.net().messages_dropped(), 4);
  EXPECT_EQ(sim.net().messages_sent(), 4);  // dropped sends count like legacy
}

}  // namespace
}  // namespace repli::sim
