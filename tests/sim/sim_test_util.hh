// Shared helpers for simulator tests: a trivial payload message and a
// recording process.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/process.hh"
#include "sim/simulator.hh"
#include "wire/message.hh"

namespace repli::sim::testing {

struct Ping : wire::MessageBase<Ping> {
  static constexpr const char* kTypeName = "test.Ping";
  std::int64_t seq = 0;
  std::string payload;
  template <class Ar>
  void fields(Ar& ar) {
    ar(seq);
    ar(payload);
  }
};

/// Records every delivery as (from, seq, time).
class Recorder : public Process {
 public:
  struct Delivery {
    NodeId from;
    std::int64_t seq;
    Time at;
  };

  Recorder(NodeId id, Simulator& sim) : Process(id, sim, "recorder-" + std::to_string(id)) {}

  void on_message(NodeId from, wire::MessagePtr msg) override {
    const auto ping = wire::message_cast<Ping>(msg);
    if (ping) deliveries.push_back(Delivery{from, ping->seq, now()});
  }

  void send_ping(NodeId to, std::int64_t seq, std::string payload = {}) {
    auto msg = std::make_shared<Ping>();
    msg->seq = seq;
    msg->payload = std::move(payload);
    send(to, std::move(msg));
  }

  using Process::cancel_timer;
  using Process::cpu_execute;
  using Process::set_timer;

  std::vector<Delivery> deliveries;
};

}  // namespace repli::sim::testing
