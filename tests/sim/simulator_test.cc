#include "sim/simulator.hh"

#include <gtest/gtest.h>

#include "sim/process.hh"
#include "tests/sim/sim_test_util.hh"
#include "util/assert.hh"

namespace repli::sim {
namespace {

using testing::Ping;
using testing::Recorder;

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim(1);
  std::vector<int> order;
  sim.schedule_at(300, [&] { order.push_back(3); });
  sim.schedule_at(100, [&] { order.push_back(1); });
  sim.schedule_at(200, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder) {
  Simulator sim(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(50, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, CancelledEventsDoNotRun) {
  Simulator sim(1);
  bool ran = false;
  const auto id = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, NestedSchedulingFromEvent) {
  Simulator sim(1);
  std::vector<Time> times;
  sim.schedule_at(10, [&] {
    times.push_back(sim.now());
    sim.schedule_after(5, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<Time>{10, 15}));
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim(1);
  sim.schedule_at(100, [&] {
    EXPECT_THROW(sim.schedule_at(50, [] {}), util::InvariantViolation);
  });
  sim.run();
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim(1);
  int ran = 0;
  sim.schedule_at(100, [&] { ++ran; });
  sim.schedule_at(300, [&] { ++ran; });
  sim.run_until(200);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), 200);  // horizon reached even though an event is pending
  sim.run_until(400);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), 400);
}

TEST(Simulator, EventBudgetGuardsRunaway) {
  Simulator sim(1);
  // Self-perpetuating event chain.
  std::function<void()> loop = [&] { sim.schedule_after(1, loop); };
  sim.schedule_at(0, loop);
  EXPECT_THROW(sim.run_until(1'000'000'000, 1000), util::InvariantViolation);
}

TEST(Simulator, SpawnAssignsDenseIds) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  EXPECT_EQ(a.id(), 0);
  EXPECT_EQ(b.id(), 1);
  EXPECT_EQ(sim.process_count(), 2u);
  EXPECT_EQ(&sim.process(0), &a);
}

TEST(Simulator, CrashStopsTimersAndDeliveries) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  bool timer_fired = false;
  a.set_timer(100, [&] { timer_fired = true; });
  b.send_ping(a.id(), 1);
  sim.schedule_at(10, [&] { sim.crash(a.id()); });
  sim.run();
  EXPECT_TRUE(sim.crashed(a.id()));
  EXPECT_FALSE(timer_fired);
  EXPECT_TRUE(a.deliveries.empty());
}

TEST(Simulator, CrashedProcessCannotSend) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  sim.crash(a.id());
  a.send_ping(b.id(), 1);
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
}

TEST(Simulator, MessagesInFlightSurviveSenderCrash) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 7);
  sim.schedule_at(1, [&] { sim.crash(a.id()); });  // crash before delivery latency elapses
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].seq, 7);
}

TEST(Simulator, CpuExecuteSerializesWork) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  std::vector<Time> done_at;
  sim.schedule_at(0, [&] {
    a.cpu_execute(100, [&] { done_at.push_back(sim.now()); });
    a.cpu_execute(50, [&] { done_at.push_back(sim.now()); });
  });
  sim.run();
  // Second job queues behind the first on the single core.
  EXPECT_EQ(done_at, (std::vector<Time>{100, 150}));
}

TEST(Simulator, CpuExecuteAfterIdlePeriodStartsFresh) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  std::vector<Time> done_at;
  sim.schedule_at(0, [&] { a.cpu_execute(10, [&] { done_at.push_back(sim.now()); }); });
  sim.schedule_at(1000, [&] { a.cpu_execute(10, [&] { done_at.push_back(sim.now()); }); });
  sim.run();
  EXPECT_EQ(done_at, (std::vector<Time>{10, 1010}));
}

TEST(Simulator, TimerCancellation) {
  Simulator sim(1);
  auto& a = sim.spawn<Recorder>();
  bool fired = false;
  const auto t = a.set_timer(100, [&] { fired = true; });
  a.cancel_timer(t);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, DeterminismSameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.drop_probability = 0.1;
    Simulator sim(seed, cfg);
    auto& a = sim.spawn<Recorder>();
    auto& b = sim.spawn<Recorder>();
    for (int i = 0; i < 200; ++i) {
      sim.schedule_at(i * 10, [&a, &b, i] {
        a.send_ping(b.id(), i);
        b.send_ping(a.id(), 1000 + i);
      });
    }
    sim.run();
    std::vector<std::tuple<NodeId, std::int64_t, Time>> trace;
    for (const auto& d : a.deliveries) trace.emplace_back(d.from, d.seq, d.at);
    for (const auto& d : b.deliveries) trace.emplace_back(d.from, d.seq, d.at);
    return trace;
  };
  EXPECT_EQ(run(12345), run(12345));
  EXPECT_NE(run(12345), run(54321));
}

}  // namespace
}  // namespace repli::sim
