#include "sim/trace.hh"

#include <gtest/gtest.h>

#include "util/assert.hh"

namespace repli::sim {
namespace {

TEST(Trace, PhaseNamesAndAbbrevs) {
  EXPECT_EQ(phase_abbrev(Phase::Request), "RE");
  EXPECT_EQ(phase_abbrev(Phase::ServerCoord), "SC");
  EXPECT_EQ(phase_abbrev(Phase::Execution), "EX");
  EXPECT_EQ(phase_abbrev(Phase::AgreementCoord), "AC");
  EXPECT_EQ(phase_abbrev(Phase::Response), "END");
  EXPECT_EQ(phase_name(Phase::AgreementCoord), "Agreement Coordination");
}

TEST(Trace, PatternOrdersByFirstStart) {
  Trace t;
  t.phase("r1", 0, Phase::Request, 0, 10);
  t.phase("r1", 1, Phase::ServerCoord, 10, 30);
  t.phase("r1", 2, Phase::ServerCoord, 12, 30);  // same phase on another node
  t.phase("r1", 1, Phase::Execution, 30, 40);
  t.phase("r1", 2, Phase::Execution, 31, 41);
  t.phase("r1", 0, Phase::Response, 50, 50);
  EXPECT_EQ(pattern_to_string(t.pattern("r1")), "RE SC EX END");
}

TEST(Trace, LazyPatternPutsResponseBeforeAgreement) {
  Trace t;
  t.phase("r1", 0, Phase::Request, 0, 5);
  t.phase("r1", 1, Phase::Execution, 5, 20);
  t.phase("r1", 0, Phase::Response, 25, 25);
  t.phase("r1", 1, Phase::AgreementCoord, 40, 60);  // propagation after reply
  EXPECT_EQ(pattern_to_string(t.pattern("r1")), "RE EX END AC");
}

TEST(Trace, PatternsAreIndependentPerRequest) {
  Trace t;
  t.phase("a", 0, Phase::Request, 0, 1);
  t.phase("a", 0, Phase::Response, 2, 2);
  t.phase("b", 0, Phase::Request, 5, 6);
  t.phase("b", 0, Phase::Execution, 6, 8);
  t.phase("b", 0, Phase::Response, 9, 9);
  EXPECT_EQ(pattern_to_string(t.pattern("a")), "RE END");
  EXPECT_EQ(pattern_to_string(t.pattern("b")), "RE EX END");
}

TEST(Trace, UnknownRequestHasEmptyPattern) {
  Trace t;
  EXPECT_TRUE(t.pattern("ghost").empty());
}

TEST(Trace, RequestsInFirstAppearanceOrder) {
  Trace t;
  t.phase("x", 0, Phase::Request, 0, 0);
  t.phase("y", 0, Phase::Request, 1, 1);
  t.phase("x", 0, Phase::Response, 2, 2);
  EXPECT_EQ(t.requests(), (std::vector<std::string>{"x", "y"}));
}

TEST(Trace, PhasesForSortsByStartThenNode) {
  Trace t;
  t.phase("r", 2, Phase::Execution, 10, 20);
  t.phase("r", 1, Phase::Execution, 10, 22);
  t.phase("r", 0, Phase::Request, 0, 5);
  const auto events = t.phases_for("r");
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].phase, Phase::Request);
  EXPECT_EQ(events[1].node, 1);
  EXPECT_EQ(events[2].node, 2);
}

TEST(Trace, RejectsNegativeSpans) {
  Trace t;
  EXPECT_THROW(t.phase("r", 0, Phase::Request, 10, 5), util::InvariantViolation);
}

TEST(Trace, ClearEmptiesEverything) {
  Trace t;
  t.phase("r", 0, Phase::Request, 0, 0);
  t.message(MessageEvent{0, 1, "m", 0, 1, 10, false});
  t.clear();
  EXPECT_TRUE(t.phases().empty());
  EXPECT_TRUE(t.messages().empty());
  EXPECT_TRUE(t.requests().empty());
}

}  // namespace
}  // namespace repli::sim
