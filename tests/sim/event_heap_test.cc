#include "sim/event_heap.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <queue>
#include <vector>

#include "sim/simulator.hh"
#include "util/assert.hh"
#include "util/rng.hh"

namespace repli::sim {
namespace {

struct Item {
  Time time = 0;
  std::uint64_t id = 0;
};

struct ItemAfter {
  // std::priority_queue is a max-heap: "after" == reverse of the heap's
  // (time asc, id asc) order.
  bool operator()(const Item& a, const Item& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.id > b.id;
  }
};

using RefQueue = std::priority_queue<Item, std::vector<Item>, ItemAfter>;

TEST(EventHeap, PopsInTimeThenIdOrder) {
  EventHeap<Item> heap;
  heap.push({30, 1});
  heap.push({10, 2});
  heap.push({10, 3});
  heap.push({20, 4});
  std::vector<std::uint64_t> ids;
  while (!heap.empty()) ids.push_back(heap.pop_min().id);
  EXPECT_EQ(ids, (std::vector<std::uint64_t>{2, 3, 4, 1}));
}

TEST(EventHeap, PopOnEmptyThrows) {
  EventHeap<Item> heap;
  EXPECT_THROW(heap.pop_min(), util::InvariantViolation);
}

// The determinism contract: (time, id) is a unique total order, so the
// 4-ary heap must pop in exactly the order std::priority_queue (the
// implementation it replaced) pops, under any interleaving of pushes and
// pops. Clustered times force heavy tie-breaking on id.
TEST(EventHeap, FuzzMatchesPriorityQueue) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull, 1234ull}) {
    util::Rng rng(seed);
    EventHeap<Item> heap;
    RefQueue ref;
    std::uint64_t next_id = 1;
    for (int op = 0; op < 20000; ++op) {
      if (ref.empty() || rng.uniform01() < 0.6) {
        const Item item{rng.uniform(0, 50), next_id++};
        heap.push(item);
        ref.push(item);
      } else {
        const Item expect = ref.top();
        ref.pop();
        const Item got = heap.pop_min();
        ASSERT_EQ(got.time, expect.time) << "seed " << seed << " op " << op;
        ASSERT_EQ(got.id, expect.id) << "seed " << seed << " op " << op;
      }
    }
    while (!ref.empty()) {
      const Item expect = ref.top();
      ref.pop();
      const Item got = heap.pop_min();
      ASSERT_EQ(got.id, expect.id);
    }
    EXPECT_TRUE(heap.empty());
  }
}

TEST(EventHeap, CompactDropsDeadAndKeepsOrder) {
  util::Rng rng(99);
  EventHeap<Item> heap;
  std::vector<Item> live;
  for (std::uint64_t id = 1; id <= 500; ++id) {
    const Item item{rng.uniform(0, 100), id};
    heap.push(item);
    if (id % 3 != 0) live.push_back(item);  // every third id will die
  }
  const std::size_t removed = heap.compact([](const Item& it) { return it.id % 3 == 0; });
  EXPECT_EQ(removed, 500 / 3);
  EXPECT_EQ(heap.size(), live.size());
  std::sort(live.begin(), live.end(), [](const Item& a, const Item& b) {
    return a.time != b.time ? a.time < b.time : a.id < b.id;
  });
  for (const Item& expect : live) {
    const Item got = heap.pop_min();
    ASSERT_EQ(got.time, expect.time);
    ASSERT_EQ(got.id, expect.id);
  }
}

TEST(IdWindow, TracksLiveness) {
  IdWindow w;
  w.push(1);
  w.push(2);
  w.push(3);
  EXPECT_EQ(w.live_count(), 3u);
  EXPECT_TRUE(w.is_live(2));
  w.kill(2);
  EXPECT_FALSE(w.is_live(2));
  EXPECT_EQ(w.live_count(), 2u);
  EXPECT_FALSE(w.is_live(0));   // never issued
  EXPECT_FALSE(w.is_live(99));  // not issued yet
  EXPECT_THROW(w.kill(2), util::InvariantViolation);  // already dead
}

TEST(IdWindow, BaseAdvancesPastDeadPrefix) {
  IdWindow w;
  for (IdWindow::Id id = 1; id <= 2000; ++id) w.push(id);
  // Kill in issue order: the window's span must track the live ids left,
  // not the total ids ever issued.
  for (IdWindow::Id id = 1; id <= 1990; ++id) w.kill(id);
  EXPECT_EQ(w.live_count(), 10u);
  EXPECT_EQ(w.window_span(), 10u);
  for (IdWindow::Id id = 1991; id <= 2000; ++id) EXPECT_TRUE(w.is_live(id));
}

TEST(IdWindow, RejectsNonIncreasingIds) {
  IdWindow w;
  w.push(5);
  EXPECT_THROW(w.push(5), util::InvariantViolation);
  EXPECT_THROW(w.push(3), util::InvariantViolation);
}

// --- Simulator event-lifecycle regressions -------------------------------

// Regression: cancelling an id that already executed (a stale timer handle)
// must be a no-op. The PR-6 implementation recorded every such cancel in a
// set forever — a leak, and pending_events() drifted.
TEST(SimulatorLifecycle, StaleCancelIsNoOp) {
  Simulator sim(1);
  int runs = 0;
  const auto id = sim.schedule_at(10, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 1);
  for (int i = 0; i < 100; ++i) sim.cancel(id);  // executed: no-op
  sim.cancel(Simulator::kNoEvent);               // null handle: no-op
  sim.cancel(123456);                            // never issued: no-op
  EXPECT_EQ(sim.pending_events(), 0u);
  // The stale cancels must not poison later events.
  sim.schedule_at(20, [&] { ++runs; });
  sim.run();
  EXPECT_EQ(runs, 2);
}

TEST(SimulatorLifecycle, DoubleCancelIsNoOp) {
  Simulator sim(1);
  bool ran = false;
  const auto id = sim.schedule_at(10, [&] { ran = true; });
  sim.cancel(id);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run();
  EXPECT_FALSE(ran);
}

// Regression: pending_events() used to report the raw queue size, counting
// cancelled-but-unpopped entries — the queue.events gauge read too high.
TEST(SimulatorLifecycle, PendingEventsCountsLiveOnly) {
  Simulator sim(1);
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(sim.schedule_at(10 + i, [] {}));
  EXPECT_EQ(sim.pending_events(), 10u);
  for (int i = 0; i < 4; ++i) sim.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(sim.pending_events(), 6u);
  EXPECT_EQ(sim.run(), 6u);
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Heavy cancel churn crosses the bulk-compaction threshold; survivors must
// still run, in order, exactly once.
TEST(SimulatorLifecycle, CancelChurnStillRunsSurvivorsInOrder) {
  Simulator sim(1);
  util::Rng rng(7);
  std::vector<Time> ran;
  std::vector<Simulator::EventId> ids;
  std::vector<Time> expect;
  for (int i = 0; i < 2000; ++i) {
    const Time t = rng.uniform(1, 1000);
    ids.push_back(sim.schedule_at(t, [&ran, t] { ran.push_back(t); }));
    expect.push_back(t);
  }
  // Cancel ~90% (well past the compaction floor).
  std::vector<Time> survivors;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i % 10 != 0) {
      sim.cancel(ids[i]);
    } else {
      survivors.push_back(expect[i]);
    }
  }
  EXPECT_EQ(sim.pending_events(), survivors.size());
  EXPECT_EQ(sim.run(), survivors.size());
  std::sort(survivors.begin(), survivors.end());
  EXPECT_EQ(ran, survivors);  // same-time survivors were scheduled in id order
}

// run_until() horizon handling when the queue minimum is a dead entry: the
// first live event past the horizon must be preserved for a later run.
TEST(SimulatorLifecycle, RunUntilRequeuesLiveEventPastHorizonBehindDeadMin) {
  Simulator sim(1);
  std::vector<Time> ran;
  const auto early = sim.schedule_at(100, [&] { ran.push_back(100); });
  sim.schedule_at(200, [&] { ran.push_back(200); });
  sim.cancel(early);
  EXPECT_EQ(sim.run_until(150), 0u);  // dead min at 100, live 200 is past t_end
  EXPECT_EQ(sim.now(), 150);
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(ran, (std::vector<Time>{200}));
  EXPECT_EQ(sim.now(), 200);
}

// run() and run_until() share one checked dispatch path: time never moves
// backwards across the boundary between the two, with cancels interleaved.
TEST(SimulatorLifecycle, RunAfterRunUntilKeepsTimeMonotone) {
  Simulator sim(1);
  util::Rng rng(21);
  std::vector<Time> ran;
  std::vector<Simulator::EventId> ids;
  for (int i = 0; i < 200; ++i) {
    const Time t = rng.uniform(1, 400);
    ids.push_back(sim.schedule_at(t, [&ran, &sim] { ran.push_back(sim.now()); }));
  }
  for (std::size_t i = 0; i < ids.size(); i += 3) sim.cancel(ids[i]);
  sim.run_until(200);
  EXPECT_GE(sim.now(), 200);
  sim.run();
  for (std::size_t i = 1; i < ran.size(); ++i) ASSERT_LE(ran[i - 1], ran[i]);
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace repli::sim
