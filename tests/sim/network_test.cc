#include "sim/network.hh"

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "tests/sim/sim_test_util.hh"

namespace repli::sim {
namespace {

using testing::Ping;
using testing::Recorder;

NetworkConfig quiet() {
  NetworkConfig cfg;
  cfg.base_latency = 100;
  cfg.jitter_mean = 0;
  cfg.bytes_per_usec = 0.0;  // disable transmission delay
  return cfg;
}

TEST(Network, DeliveryAfterBaseLatency) {
  Simulator sim(1, quiet());
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 1);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].at, 100);
  EXPECT_EQ(b.deliveries[0].from, a.id());
}

TEST(Network, SelfSendIsImmediateButAsynchronous) {
  Simulator sim(1, quiet());
  auto& a = sim.spawn<Recorder>();
  a.send_ping(a.id(), 1);
  EXPECT_TRUE(a.deliveries.empty());  // not delivered re-entrantly
  sim.run();
  ASSERT_EQ(a.deliveries.size(), 1u);
  EXPECT_EQ(a.deliveries[0].at, 0);
}

TEST(Network, JitterAddsNonNegativeDelay) {
  auto cfg = quiet();
  cfg.jitter_mean = 500;
  Simulator sim(77, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 200; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 200u);
  bool saw_jitter = false;
  for (const auto& d : b.deliveries) {
    EXPECT_GE(d.at, 100);
    if (d.at > 100) saw_jitter = true;
  }
  EXPECT_TRUE(saw_jitter);
}

TEST(Network, BandwidthChargesPerByte) {
  auto cfg = quiet();
  cfg.bytes_per_usec = 1.0;  // 1 byte per microsecond
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 1, std::string(1000, 'x'));
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_GT(b.deliveries[0].at, 1000);  // >= payload transmission time
}

TEST(Network, DropProbabilityOneDropsEverything) {
  auto cfg = quiet();
  cfg.drop_probability = 1.0;
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 50; ++i) a.send_ping(b.id(), i);
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
  EXPECT_EQ(sim.net().messages_dropped(), 50);
}

TEST(Network, SelfSendNeverDropped) {
  auto cfg = quiet();
  cfg.drop_probability = 1.0;
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  a.send_ping(a.id(), 1);
  sim.run();
  EXPECT_EQ(a.deliveries.size(), 1u);
}

TEST(Network, DropRateRoughlyMatchesProbability) {
  auto cfg = quiet();
  cfg.drop_probability = 0.25;
  Simulator sim(3, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  const int n = 4000;
  for (int i = 0; i < n; ++i) a.send_ping(b.id(), i);
  sim.run();
  EXPECT_NEAR(static_cast<double>(b.deliveries.size()) / n, 0.75, 0.03);
}

TEST(Network, PartitionBlocksAndHeals) {
  Simulator sim(1, quiet());
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  sim.net().set_partition([](NodeId from, NodeId to) { return from == 0 && to == 1; });
  a.send_ping(b.id(), 1);
  b.send_ping(a.id(), 2);  // reverse direction unaffected
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
  ASSERT_EQ(a.deliveries.size(), 1u);

  sim.net().set_partition(nullptr);
  a.send_ping(b.id(), 3);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 1u);
  EXPECT_EQ(b.deliveries[0].seq, 3);
}

TEST(Network, PartitionCutsInFlightMessages) {
  Simulator sim(1, quiet());
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 1);  // in flight until t=100
  sim.schedule_at(10, [&] {
    sim.net().set_partition([](NodeId, NodeId) { return true; });
  });
  sim.run();
  EXPECT_TRUE(b.deliveries.empty());
}

TEST(Network, NonFifoLinksCanReorder) {
  auto cfg = quiet();
  cfg.jitter_mean = 1000;
  Simulator sim(5, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 100; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 100u);
  bool reordered = false;
  for (std::size_t i = 1; i < b.deliveries.size(); ++i) {
    if (b.deliveries[i].seq < b.deliveries[i - 1].seq) reordered = true;
  }
  EXPECT_TRUE(reordered);
}

TEST(Network, FifoLinksPreserveSendOrder) {
  auto cfg = quiet();
  cfg.jitter_mean = 1000;
  cfg.fifo_links = true;
  Simulator sim(5, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  for (int i = 0; i < 100; ++i) a.send_ping(b.id(), i);
  sim.run();
  ASSERT_EQ(b.deliveries.size(), 100u);
  for (std::size_t i = 0; i < b.deliveries.size(); ++i) {
    EXPECT_EQ(b.deliveries[i].seq, static_cast<std::int64_t>(i));
  }
}

TEST(Network, AccountingCountsMessagesAndBytes) {
  Simulator sim(1, quiet());
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 1, "hello");
  a.send_ping(b.id(), 2, "world!");
  sim.run();
  EXPECT_EQ(sim.net().messages_sent(), 2);
  EXPECT_GT(sim.net().bytes_sent(), 10);
  EXPECT_EQ(sim.net().per_type_count().at("test.Ping"), 2);
  sim.net().reset_accounting();
  EXPECT_EQ(sim.net().messages_sent(), 0);
  EXPECT_EQ(sim.net().bytes_sent(), 0);
}

TEST(Network, SerializationDeliversFreshObject) {
  Simulator sim(1, quiet());
  // Deliveries decode fresh bytes, so mutating the sender's object after
  // send must not affect what the receiver sees. We verify via the payload.
  class Sender : public Process {
   public:
    Sender(NodeId id, Simulator& s) : Process(id, s, "sender") {}
    void on_message(NodeId, wire::MessagePtr) override {}
    void go(NodeId to) {
      auto msg = std::make_shared<Ping>();
      msg->seq = 1;
      msg->payload = "original";
      send(to, msg);
      msg->payload = "mutated-after-send";  // must not be visible downstream
    }
  };
  class Receiver : public Process {
   public:
    Receiver(NodeId id, Simulator& s) : Process(id, s, "receiver") {}
    void on_message(NodeId, wire::MessagePtr msg) override {
      seen = std::string(wire::message_cast<Ping>(msg)->payload);
    }
    std::string seen;
  };
  auto& s = sim.spawn<Sender>();
  auto& r = sim.spawn<Receiver>();
  s.go(r.id());
  sim.run();
  EXPECT_EQ(r.seen, "original");
}

TEST(Network, MessageTraceRecordsDropsAndDeliveries) {
  auto cfg = quiet();
  cfg.drop_probability = 1.0;
  Simulator sim(1, cfg);
  auto& a = sim.spawn<Recorder>();
  auto& b = sim.spawn<Recorder>();
  a.send_ping(b.id(), 1);
  sim.run();
  ASSERT_EQ(sim.trace().messages().size(), 1u);
  const auto& ev = sim.trace().messages()[0];
  EXPECT_TRUE(ev.dropped);
  EXPECT_EQ(ev.from, a.id());
  EXPECT_EQ(ev.to, b.id());
  EXPECT_EQ(ev.type, "test.Ping");
  EXPECT_GT(ev.bytes, 0u);
}

}  // namespace
}  // namespace repli::sim
