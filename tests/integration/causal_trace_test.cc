// Cross-node causal tracing end to end: one client request must come out of
// the Chrome trace exporter as ONE connected trace — its core/ phase spans
// tagged with the same trace id on >= 3 nodes, stitched together by flow
// events — and the report tool must rebuild the paper's phase orders from
// those measured spans (Fig. 2 for active, Fig. 7 for eager primary copy).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/cluster.hh"
#include "obs/export_chrome.hh"
#include "tests/core/core_test_util.hh"
#include "tools/report/report.hh"

namespace repli::core {
namespace {

tools::TraceData exported_trace(Cluster& cluster, const std::string& tag) {
  std::ostringstream os;
  obs::write_chrome_trace(cluster.sim().tracer(), os);
  auto parsed = tools::parse_chrome_trace(os.str(), tag);
  EXPECT_TRUE(parsed.has_value()) << "exporter emitted unparseable JSON";
  return parsed.has_value() ? std::move(*parsed) : tools::TraceData{};
}

TEST(CausalTrace, OneRequestIsOneConnectedTraceAcrossNodes) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  ASSERT_TRUE(cluster.run_op(0, op_put("item-x", "update")).ok);
  cluster.settle(2 * sim::kSec);

  const auto trace = exported_trace(cluster, "active-1");
  const auto requests = tools::trace_requests(trace);
  ASSERT_FALSE(requests.empty());
  const auto& request = requests.front();

  // Every phase span of the request carries one non-zero trace id.
  std::uint64_t trace_id = 0;
  std::set<std::int64_t> phase_nodes;
  for (const auto& span : trace.spans) {
    if (span.request != request || span.name.rfind("core/", 0) != 0) continue;
    ASSERT_NE(span.trace, 0u) << span.name << " on node " << span.node
                              << " lost the causal context";
    if (trace_id == 0) trace_id = span.trace;
    EXPECT_EQ(span.trace, trace_id)
        << span.name << " on node " << span.node << " belongs to a different trace";
    phase_nodes.insert(span.node);
  }
  ASSERT_NE(trace_id, 0u);
  EXPECT_GE(phase_nodes.size(), 4u)  // 3 replicas + the client
      << "active replication must execute the request on every replica";

  // Flow events carry the same trace id across >= 3 nodes, with Lamport
  // send-before-receive order preserved by the exporter round-trip.
  std::set<std::int64_t> flow_nodes;
  std::size_t tagged_flows = 0;
  for (const auto& flow : trace.flows) {
    if (flow.trace != trace_id) continue;
    ++tagged_flows;
    flow_nodes.insert(flow.from);
    flow_nodes.insert(flow.to);
    EXPECT_LE(flow.sent, flow.recv);
  }
  EXPECT_GE(tagged_flows, 3u) << "request's messages lost their flow events";
  EXPECT_GE(flow_nodes.size(), 3u)
      << "one request's flows must link at least three nodes";
}

TEST(CausalTrace, ConcurrentRequestsStayInDistinctTraces) {
  auto cfg = testing::quiet_config(TechniqueKind::Active, 3, 2);
  Cluster cluster(cfg);
  int done = 0;
  cluster.submit_op(0, op_put("a", "1"), [&](const ClientReply&) { ++done; });
  cluster.submit_op(1, op_put("b", "2"), [&](const ClientReply&) { ++done; });
  cluster.sim().run_until(cluster.sim().now() + 10 * sim::kSec);
  ASSERT_EQ(done, 2);

  const auto trace = exported_trace(cluster, "active-1");
  std::set<std::uint64_t> ids;
  for (const auto& request : tools::trace_requests(trace)) {
    std::uint64_t trace_id = 0;
    for (const auto& span : trace.spans) {
      if (span.request == request && span.trace != 0) trace_id = span.trace;
    }
    EXPECT_NE(trace_id, 0u) << request;
    ids.insert(trace_id);
  }
  EXPECT_EQ(ids.size(), 2u) << "two requests collapsed into one causal trace";
}

TEST(CausalTrace, ReportReproducesFig2ActivePattern) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  ASSERT_TRUE(cluster.run_op(0, op_put("item-x", "update")).ok);
  cluster.settle(2 * sim::kSec);

  const auto trace = exported_trace(cluster, "active-1");
  const auto requests = tools::trace_requests(trace);
  ASSERT_FALSE(requests.empty());
  EXPECT_EQ(tools::trace_pattern(trace, requests.front()), "RE SC EX END");

  tools::ReportInputs inputs;
  inputs.traces.push_back(trace);
  std::ostringstream report;
  tools::write_report(inputs, report);
  EXPECT_NE(report.str().find("measured pattern `RE SC EX END`"), std::string::npos);
  EXPECT_NE(report.str().find("matches the paper figure"), std::string::npos);
}

TEST(CausalTrace, ReportReproducesFig7EagerPrimaryPattern) {
  Cluster cluster(testing::quiet_config(TechniqueKind::EagerPrimary));
  ASSERT_TRUE(cluster.run_op(0, op_put("item-x", "update")).ok);
  cluster.settle(2 * sim::kSec);

  const auto trace = exported_trace(cluster, "eager-primary-copy-1");
  const auto requests = tools::trace_requests(trace);
  ASSERT_FALSE(requests.empty());
  EXPECT_EQ(tools::trace_pattern(trace, requests.front()), "RE EX AC END");

  tools::ReportInputs inputs;
  inputs.traces.push_back(trace);
  std::ostringstream report;
  tools::write_report(inputs, report);
  EXPECT_NE(report.str().find("measured pattern `RE EX AC END`"), std::string::npos);
  EXPECT_NE(report.str().find("matches the paper figure"), std::string::npos);
}

TEST(CausalTrace, LamportClocksRespectCausalOrderOnFlows) {
  Cluster cluster(testing::quiet_config(TechniqueKind::Active));
  ASSERT_TRUE(cluster.run_op(0, op_put("item-x", "update")).ok);

  // Straight from the tracer: every cross-node delivery must advance the
  // receiver's Lamport clock past the sender's send stamp. Flows whose
  // message is still in flight have no receive stamp yet — skip those.
  std::size_t delivered = 0;
  for (const auto& flow : cluster.sim().tracer().flows()) {
    if (flow.lamport_recv == 0) continue;
    ++delivered;
    EXPECT_GT(flow.lamport_recv, flow.lamport_send)
        << flow.type << " " << flow.from << "->" << flow.to;
  }
  EXPECT_GT(delivered, 0u);
}

}  // namespace
}  // namespace repli::core
