// End-to-end exploration: a short randomized sweep across all ten
// techniques must come back clean (the generator stays inside each
// technique's documented fault model), the EXPLORE artifact must be
// byte-deterministic, and the artifact alone must be enough to replay
// any trial bit-for-bit.
#include <gtest/gtest.h>

#include <sstream>

#include "core/technique.hh"
#include "explore/artifact.hh"
#include "explore/explore.hh"

namespace repli::explore {
namespace {

ExploreConfig smoke_config(core::TechniqueKind kind) {
  ExploreConfig config;
  config.kind = kind;
  config.seed = 5;
  config.trials = 2;
  config.clients = 2;
  config.ops_per_client = 10;
  config.settle = 5 * sim::kSec;
  return config;
}

TEST(ExploreSweep, AllTenTechniquesSurviveAShortSweep) {
  for (const auto& info : core::all_techniques()) {
    const auto result = explore(smoke_config(info.kind));
    EXPECT_EQ(result.rows.size(), 2u);
    for (const auto& v : result.violations) {
      ADD_FAILURE() << info.name << " trial " << v.trial.trial << " violated "
                    << v.trial.result.failed_check << " under plan '" << v.trial.plan
                    << "' (minimal: '" << v.minimal_plan << "')";
    }
  }
}

TEST(ExploreSweep, ArtifactIsByteDeterministic) {
  const auto config = smoke_config(core::TechniqueKind::Certification);
  const auto r1 = explore(config);
  const auto r2 = explore(config);
  std::ostringstream s1;
  std::ostringstream s2;
  write_explore_json(r1, s1);
  write_explore_json(r2, s2);
  ASSERT_FALSE(s1.str().empty());
  EXPECT_EQ(s1.str(), s2.str()) << "same config must serialize byte-identically";
}

TEST(ExploreSweep, ArtifactAloneReplaysATrialBitForBit) {
  const auto config = smoke_config(core::TechniqueKind::SemiPassive);
  const auto result = explore(config);
  std::ostringstream out;
  write_explore_json(result, out);

  std::string error;
  const auto loaded = load_explore_json(out.str(), &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->rows.size(), result.rows.size());

  // Rebuild trial 1 purely from what the artifact recorded.
  const auto& row = loaded->rows.at(1);
  TrialConfig tc;
  tc.kind = loaded->config.kind;
  tc.workload_seed = row.workload_seed;
  tc.schedule_seed = row.schedule_seed;
  tc.plan = parse_plan(row.plan).value();
  tc.replicas = loaded->config.replicas;
  tc.clients = loaded->config.clients;
  tc.ops_per_client = loaded->config.ops_per_client;
  tc.keys = loaded->config.keys;
  tc.settle = loaded->config.settle;
  const auto replayed = run_trial(tc);
  EXPECT_EQ(replayed.schedule_digest, row.result.schedule_digest);
  EXPECT_EQ(replayed.events, row.result.events);
  EXPECT_EQ(replayed.ok, row.result.ok);
}

TEST(ExploreSweep, PlantedViolationIsShrunkAndRecorded) {
  // Weakened checker planted through the test hook: flag any run whose
  // plan partitions a replica. The driver must catch it, shrink it to the
  // single partition fault, and keep the minimal reproducer failing.
  auto tc = trial_config(smoke_config(core::TechniqueKind::Active), 0);
  tc.plan = parse_plan("tie; jitter=200; crash@t8000:r0; part@t12000:r2+2500").value();
  tc.extra_check = [](const TrialConfig& config, core::Cluster&) -> std::string {
    for (const auto& fault : config.plan.faults) {
      if (fault.kind == Fault::Kind::Partition) return "planted partition bug";
    }
    return "";
  };
  const auto shrunk = shrink(tc);
  EXPECT_FALSE(shrunk.result.ok);
  ASSERT_EQ(shrunk.minimal.faults.size(), 1u);
  EXPECT_EQ(shrunk.minimal.faults[0].kind, Fault::Kind::Partition);
  EXPECT_FALSE(shrunk.minimal.tie_break);
  EXPECT_EQ(shrunk.minimal.jitter, 0);

  auto replay = tc;
  replay.plan = shrunk.minimal;
  const auto a = run_trial(replay);
  const auto b = run_trial(replay);
  EXPECT_FALSE(a.ok);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.schedule_digest, shrunk.result.schedule_digest);
}

}  // namespace
}  // namespace repli::explore
