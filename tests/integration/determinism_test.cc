// Whole-run determinism: a cluster run is a pure function of (config, seed).
// Same seed -> byte-identical storage digests, message counts, and latency
// histories; different seed -> (almost surely) different timings.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

struct RunFingerprint {
  std::vector<std::uint64_t> digests;
  std::int64_t messages = 0;
  std::int64_t bytes = 0;
  std::vector<sim::Time> latencies;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_once(TechniqueKind kind, std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 2;
  cfg.seed = seed;
  cfg.net.jitter_mean = 300;
  cfg.net.drop_probability = 0.05;
  Cluster cluster(cfg);
  for (int i = 0; i < 8; ++i) {
    cluster.run_op(i % 2, i % 3 == 0 ? op_add("n", 1) : op_put("k" + std::to_string(i), "v"),
                   120 * sim::kSec);
  }
  cluster.settle(5 * sim::kSec);
  RunFingerprint fp;
  fp.digests = cluster.storage_digests();
  fp.messages = cluster.sim().net().messages_sent();
  fp.bytes = cluster.sim().net().bytes_sent();
  for (const auto& op : cluster.history().ops()) fp.latencies.push_back(op.response - op.invoke);
  return fp;
}

class WholeRunDeterminism : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(WholeRunDeterminism, SameSeedSameRun) {
  const auto a = run_once(GetParam(), 1234);
  const auto b = run_once(GetParam(), 1234);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.latencies, b.latencies);
}

TEST_P(WholeRunDeterminism, DifferentSeedDifferentTimings) {
  const auto a = run_once(GetParam(), 1);
  const auto b = run_once(GetParam(), 2);
  // State can coincide; the full fingerprint (timings included) should not.
  EXPECT_FALSE(a == b);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, WholeRunDeterminism,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

}  // namespace
}  // namespace repli::core
