// The paper's qualitative cost claims, pinned as executable assertions:
// lazy replies faster than eager; eager pays its coordination before the
// reply; active replication burns CPU everywhere while passive only applies
// at the backups; locking pays more messages than lazy.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

struct Economics {
  double mean_latency_us = 0;
  double msgs_per_op = 0;
};

Economics measure(TechniqueKind kind, std::uint64_t seed = 29) {
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 1;
  cfg.seed = seed;
  Cluster cluster(cfg);
  const int n = 10;
  for (int i = 0; i < n; ++i) {
    const auto reply = cluster.run_op(0, op_put("k" + std::to_string(i), "v"), 60 * sim::kSec);
    EXPECT_TRUE(reply.ok);
  }
  Economics out;
  double total = 0;
  for (const auto& op : cluster.history().ops()) {
    total += static_cast<double>(op.response - op.invoke);
  }
  out.mean_latency_us = total / n;
  out.msgs_per_op =
      static_cast<double>(cluster.sim().net().messages_excluding("gcs.Heartbeat")) / n;
  return out;
}

TEST(Economics, LazyRepliesFasterThanCoordinationHeavyTechniques) {
  // §4.2: eager "is expensive in terms of message overhead and response
  // time". The structural gap is against techniques with an agreement round
  // before the reply; the ABCAST-based ones are only marginally slower than
  // lazy (ordering overlaps execution), so those get a tolerance instead.
  const auto lazy = measure(TechniqueKind::LazyPrimary);
  for (const auto kind : {TechniqueKind::Passive, TechniqueKind::EagerPrimary,
                          TechniqueKind::EagerLocking, TechniqueKind::SemiPassive}) {
    const auto eager = measure(kind);
    EXPECT_LT(lazy.mean_latency_us, eager.mean_latency_us)
        << "lazy should beat " << technique_name(kind) << " on response time (§4.2)";
  }
  for (const auto kind : {TechniqueKind::Active, TechniqueKind::EagerAbcast,
                          TechniqueKind::Certification}) {
    const auto eager = measure(kind);
    EXPECT_LT(lazy.mean_latency_us, eager.mean_latency_us * 1.25)
        << "lazy should be at least competitive with " << technique_name(kind);
  }
}

TEST(Economics, LazyPrimaryUsesFewestMessages) {
  const auto lazy = measure(TechniqueKind::LazyPrimary);
  for (const auto& info : all_techniques()) {
    if (info.kind == TechniqueKind::LazyPrimary) continue;
    const auto other = measure(info.kind);
    EXPECT_LE(lazy.msgs_per_op, other.msgs_per_op)
        << "lazy primary copy should be cheapest in messages, vs " << info.name;
  }
}

TEST(Economics, TwoPhaseCommitCostsMoreLatencyThanAbcastOrdering) {
  // §4.4.2's argument for ABCAST-based replication: skipping the AC round
  // saves a round trip against distributed locking + 2PC.
  const auto abcast = measure(TechniqueKind::EagerAbcast);
  const auto locking = measure(TechniqueKind::EagerLocking);
  EXPECT_LT(abcast.mean_latency_us, locking.mean_latency_us);
  EXPECT_LT(abcast.msgs_per_op, locking.msgs_per_op);
}

TEST(Economics, ActiveReplicationBurnsCpuEverywhere) {
  // §3.2: "having all the processing done on all replicas consumes too much
  // resources" vs. passive applying cheap updates. Compare simulated CPU:
  // execution costs 100us, applying 20us; with 3 replicas active burns
  // 3x100us per op, passive 100 + 2x20.
  auto cpu_burned = [](TechniqueKind kind) {
    ClusterConfig cfg;
    cfg.kind = kind;
    cfg.replicas = 3;
    cfg.seed = 3;
    Cluster cluster(cfg);
    for (int i = 0; i < 5; ++i) cluster.run_op(0, op_put("k", "v" + std::to_string(i)));
    // Count executions/applies from the trace (EX spans cost exec, AC-with-
    // apply cost apply; we use commits as a proxy: every replica that
    // recorded a commit did work).
    double exec_spans = 0;
    for (const auto& ev : cluster.sim().trace().phases()) {
      if (ev.phase == sim::Phase::Execution) exec_spans += 1;
    }
    return exec_spans;
  };
  const auto active_execs = cpu_burned(TechniqueKind::Active);
  const auto passive_execs = cpu_burned(TechniqueKind::Passive);
  EXPECT_NEAR(active_execs, 15, 0.1) << "active: every replica executes every op";
  EXPECT_NEAR(passive_execs, 5, 0.1) << "passive: only the primary executes";
}

TEST(Economics, EagerCoordinationHappensBeforeReplyLazyAfter) {
  for (const auto& info : all_techniques()) {
    ClusterConfig cfg;
    cfg.kind = info.kind;
    cfg.replicas = 3;
    cfg.seed = 41;
    // Push lazy propagation beyond run_op's polling window so the
    // at-reply message sample genuinely precedes it.
    cfg.lazy_propagation_delay = 100 * sim::kMsec;
    Cluster cluster(cfg);
    const auto reply = cluster.run_op(0, op_put("k", "v"), 60 * sim::kSec);
    ASSERT_TRUE(reply.ok);
    const sim::Time reply_at = cluster.sim().now();
    const auto msgs_at_reply = cluster.sim().net().messages_excluding("gcs.Heartbeat");
    cluster.settle(5 * sim::kSec);
    const auto msgs_after = cluster.sim().net().messages_excluding("gcs.Heartbeat");
    if (info.eager) {
      // Eager: nothing protocol-related remains after the reply (all
      // coordination already happened); allow trailing acks.
      EXPECT_LE(msgs_after - msgs_at_reply, 8)
          << info.name << " kept coordinating after the reply";
    } else {
      // Lazy: the propagation traffic happens after the reply.
      EXPECT_GT(msgs_after - msgs_at_reply, 0)
          << info.name << " should propagate after replying";
    }
    (void)reply_at;
  }
}

}  // namespace
}  // namespace repli::core
