// Critical-path attribution must cover (nearly) all of every committed
// transaction's end-to-end latency, for every technique, under the same
// closed-loop conditions perf_workloads measures. The <5% unattributed
// budget is the contract that keeps the waterfall honest: a regression here
// means some continuation lost its causal context (a queue pump, timer, or
// batch running under another transaction's trace) or a wait has no span.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.hh"
#include "obs/critpath.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

/// Closed-loop workload in the style of bench::run_workload: each client
/// issues, awaits the reply, thinks, repeats. Deterministic op mix.
void drive_workload(Cluster& cluster, int ops_per_client, int keys = 8,
                    bool write_heavy = false) {
  const int clients = cluster.client_count();
  std::vector<int> remaining(static_cast<std::size_t>(clients), ops_per_client);
  int outstanding = 0;
  std::function<void(int)> issue = [&](int c) {
    auto& left = remaining[static_cast<std::size_t>(c)];
    if (left == 0) return;
    --left;
    ++outstanding;
    const int n = ops_per_client - left;
    const auto key = "key-" + std::to_string((c * 7 + n * 3) % keys);
    db::Operation op = (write_heavy || n % 2 == 0) ? op_put(key, "v" + std::to_string(n))
                                                   : op_get(key);
    cluster.submit_op(c, op, [&, c](const ClientReply&) {
      --outstanding;
      cluster.sim().schedule_after(500, [&issue, c] { issue(c); });
    });
  };
  for (int c = 0; c < clients; ++c) issue(c);
  auto work_left = [&] {
    if (outstanding > 0) return true;
    for (const int r : remaining) {
      if (r > 0) return true;
    }
    return false;
  };
  int guard = 0;
  while (work_left() && ++guard < 100000) {
    cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
  }
  ASSERT_LT(guard, 100000) << "workload did not drain";
  // Drain the trailing think-time events (they reference this frame).
  cluster.sim().run_until(cluster.sim().now() + 10 * sim::kMsec);
}

std::string describe(const obs::CritSummary& sum, const std::vector<obs::TxnPath>& paths) {
  std::ostringstream os;
  os << "coverage " << sum.coverage << " over " << sum.txns << " txns\n";
  for (const auto& stat : sum.segments) {
    if (stat.mean_us <= 0) continue;
    os << "  " << obs::segment_kind_name(stat.kind) << ": mean " << stat.mean_us
       << "us p99 " << stat.p99_us << "us\n";
  }
  // The three worst-covered transactions, with their segment lists.
  std::vector<const obs::TxnPath*> worst;
  for (const auto& p : paths) {
    if (p.ok) worst.push_back(&p);
  }
  std::sort(worst.begin(), worst.end(), [](const obs::TxnPath* a, const obs::TxnPath* b) {
    return (a->total() - a->attributed()) > (b->total() - b->attributed());
  });
  for (std::size_t i = 0; i < worst.size() && i < 3; ++i) {
    const auto& p = *worst[i];
    os << "  txn " << p.request << " total " << p.total() << "us attributed "
       << p.attributed() << "us hops " << p.hops << "\n";
    for (const auto& seg : p.segments) {
      os << "    [" << seg.start << "+" << seg.dur << "us] node " << seg.node << " "
         << obs::segment_kind_name(seg.kind) << " " << seg.detail << "\n";
    }
  }
  return os.str();
}

class CritPathCoverage : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(CritPathCoverage, AttributesAtLeast95PercentOfCommitLatency) {
  auto cfg = testing::quiet_config(GetParam(), 3, 2, 17);
  Cluster cluster(cfg);
  drive_workload(cluster, 15);
  cluster.settle(3 * sim::kSec);

  const auto paths = obs::critical_paths(cluster.sim().tracer());
  const auto sum = obs::summarize(paths);
  ASSERT_GE(sum.txns, 20u) << "workload produced too few committed transactions";
  EXPECT_GE(sum.coverage, 0.95) << describe(sum, paths);

  // Every committed path must tile [invoke, response] exactly: segments
  // contiguous, durations summing to the total.
  for (const auto& path : paths) {
    obs::Time covered = 0;
    obs::Time cursor = path.start;
    for (const auto& seg : path.segments) {
      EXPECT_EQ(seg.start, cursor) << path.request << ": gap in the tiling";
      covered += seg.dur;
      cursor = seg.start + seg.dur;
    }
    EXPECT_EQ(covered, path.total()) << path.request << ": segments do not sum to total";
  }
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, CritPathCoverage,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

TEST(CritPathCoverage, WaitDieRetryBackoffsStayAttributed) {
  // The quiet AllTechniques configs are too gentle to trigger wait-die
  // aborts, which is exactly how an uninstrumented retry backoff once slipped
  // past this suite while perf_workloads' zipf sweep dropped to 40% coverage.
  // Six writers hammering two keys force aborts; every randomized backoff
  // fires from a bare timer, so its span is the only thing keeping the
  // waterfall honest here.
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking, 3, 6, 19);
  Cluster cluster(cfg);
  drive_workload(cluster, 12, /*keys=*/2, /*write_heavy=*/true);
  cluster.settle(3 * sim::kSec);
  ASSERT_GT(cluster.sim().metrics().counter_value("core.lock_aborts"), 0)
      << "no wait-die aborts: the contended path was not exercised";

  const auto paths = obs::critical_paths(cluster.sim().tracer());
  const auto sum = obs::summarize(paths);
  ASSERT_GE(sum.txns, 20u) << "workload produced too few committed transactions";
  EXPECT_GE(sum.coverage, 0.95) << describe(sum, paths);
}

}  // namespace
}  // namespace repli::core
