// The observability layer end to end: a workload's span tree must (a) keep
// reproducing the paper's Fig 16 phase patterns through Trace::pattern(),
// (b) nest lower-layer spans (gcs/, db/) inside the core/ phases that pay
// for them — at least three layers deep for the consensus- and WAL-backed
// techniques — and (c) export as Chrome trace JSON that parses and carries
// the same tree.
#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.hh"
#include "obs/export_chrome.hh"
#include "obs/export_stats.hh"
#include "obs/json.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

class SpanTrees : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(SpanTrees, PhasePatternStillMatchesPaper) {
  // The phase model now rides on the span tracer; the Fig 16 patterns must
  // come out unchanged.
  const auto& info = technique_info(GetParam());
  Cluster cluster(testing::quiet_config(GetParam()));
  const auto reply = cluster.run_op(0, op_put("item-x", "update"));
  ASSERT_TRUE(reply.ok) << reply.result;
  cluster.settle(2 * sim::kSec);

  const auto requests = cluster.sim().trace().requests();
  ASSERT_FALSE(requests.empty());
  EXPECT_EQ(sim::pattern_to_string(cluster.sim().trace().pattern(requests.front())),
            info.paper_pattern)
      << info.name;

  // Every phase event doubles as a core/ span.
  auto& tracer = cluster.sim().tracer();
  EXPECT_EQ(tracer.named("core/").size() -
                tracer.named("core/ac.").size(),  // sub-phase spans ride extra
            cluster.sim().trace().phases().size());
}

TEST_P(SpanTrees, ExecutionSpansNestInsideCorePhases) {
  Cluster cluster(testing::quiet_config(GetParam()));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  cluster.settle(2 * sim::kSec);

  auto& tracer = cluster.sim().tracer();
  const auto ops = tracer.named("db/exec.op");
  ASSERT_FALSE(ops.empty()) << "no db/exec.op spans recorded";
  for (const auto* op : ops) {
    EXPECT_TRUE(tracer.has_ancestor_named(op->id, "core/"))
        << "db/exec.op at t=" << op->start << " on node " << op->node
        << " floats outside every core/ phase";
  }
}

TEST_P(SpanTrees, ChromeExportParsesAndKeepsEverySpan) {
  Cluster cluster(testing::quiet_config(GetParam()));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  cluster.settle(2 * sim::kSec);
  auto& tracer = cluster.sim().tracer();
  tracer.close_open(cluster.sim().now());

  std::ostringstream os;
  obs::write_chrome_trace(tracer, os);
  const auto doc = obs::json_parse(os.str());
  ASSERT_TRUE(doc.has_value()) << "chrome trace is not valid JSON";
  const auto* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::size_t metadata = 0;
  std::size_t flow_events = 0;
  for (const auto& ev : events->array) {
    const auto& ph = ev.find("ph")->str;
    if (ph == "M") ++metadata;
    if (ph == "s" || ph == "f") ++flow_events;
  }
  EXPECT_EQ(events->array.size() - metadata - flow_events, tracer.size());
  // Message edges export as start/finish pairs.
  EXPECT_EQ(flow_events, 2 * tracer.flows().size());
}

TEST_P(SpanTrees, StatsExportIsParseableNdjson) {
  Cluster cluster(testing::quiet_config(GetParam()));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  std::ostringstream os;
  obs::write_stats_ndjson(cluster.sim().metrics(), os);
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(obs::json_parse(line).has_value()) << line;
  }
  EXPECT_GT(lines, 0);
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, SpanTrees,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

TEST(SpanTrees, SemiPassiveNestsThreeLayers) {
  // The acceptance chain: the semi-passive coordinator provides the value
  // *inside* an open consensus round, so the tree reads
  //   gcs/consensus.round -> core/EX -> db/exec.op.
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiPassive));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  cluster.settle(2 * sim::kSec);

  auto& tracer = cluster.sim().tracer();
  bool found_chain = false;
  for (const auto* op : tracer.named("db/exec.op")) {
    obs::SpanId walk = tracer.parent_of(op->id);
    bool saw_core = false;
    while (walk != obs::kNoSpan) {
      const auto& name = tracer.find(walk)->name;
      if (name.starts_with("core/")) saw_core = true;
      if (saw_core && name.starts_with("gcs/consensus.round")) {
        found_chain = true;
        break;
      }
      walk = tracer.parent_of(walk);
    }
    if (found_chain) break;
  }
  EXPECT_TRUE(found_chain)
      << "no db/exec.op span under core/* under gcs/consensus.round";
}

TEST(SpanTrees, EagerPrimaryWalFlushNestsUnderAgreementPhase) {
  // Second three-layer chain: the primary's commit application logs to the
  // WAL inside the AC apply phase: core/AC -> db/wal.flush.
  Cluster cluster(testing::quiet_config(TechniqueKind::EagerPrimary));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  cluster.settle(2 * sim::kSec);

  auto& tracer = cluster.sim().tracer();
  const auto flushes = tracer.named("db/wal.flush");
  ASSERT_FALSE(flushes.empty()) << "eager-primary commit wrote no WAL flush span";
  bool nested = false;
  for (const auto* flush : flushes) {
    if (tracer.has_ancestor_named(flush->id, "core/AC")) nested = true;
  }
  EXPECT_TRUE(nested) << "db/wal.flush floats outside core/AC";

  // And the WAL metrics rode along, labeled per node.
  EXPECT_GT(cluster.sim().metrics().counter_value("db.wal.appends"), 0);
  EXPECT_GT(cluster.sim().metrics().counter_value("db.wal.bytes"), 0);
}

TEST(SpanTrees, ConsensusRoundsCarryOutcomeAttrs) {
  Cluster cluster(testing::quiet_config(TechniqueKind::SemiPassive));
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  auto& tracer = cluster.sim().tracer();
  const auto rounds = tracer.named("gcs/consensus.round");
  ASSERT_FALSE(rounds.empty());
  bool decided = false;
  for (const auto* round : rounds) {
    for (const auto& [key, value] : round->attrs) {
      if (key == "outcome" && value == "decided") decided = true;
    }
  }
  EXPECT_TRUE(decided) << "no consensus round closed with outcome=decided";
  EXPECT_GT(cluster.sim().metrics().counter_value("gcs.consensus.rounds"), 0);
}

TEST(SpanTrees, LockWaitsAreSpannedUnderContention) {
  // Two clients hammer one key through update-everywhere locking: someone
  // must queue, and the wait becomes a db/lock.wait span plus histogram.
  auto cfg = testing::quiet_config(TechniqueKind::EagerLocking, 3, 2, 11);
  Cluster cluster(cfg);
  int outstanding = 2;
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 6; ++i) {
      cluster.submit_op(c, op_add("hot", 1), [&outstanding](const ClientReply&) {});
    }
  }
  cluster.settle(10 * sim::kSec);
  (void)outstanding;

  auto& tracer = cluster.sim().tracer();
  EXPECT_FALSE(tracer.named("db/lock.wait").empty())
      << "contended run recorded no lock-wait spans";
  const auto* waits =
      cluster.sim().metrics().find_histogram("db.lock.wait_us");
  ASSERT_NE(waits, nullptr);
  EXPECT_GT(waits->data().count(), 0u);
}

}  // namespace
}  // namespace repli::core
