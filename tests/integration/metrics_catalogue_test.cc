// docs/METRICS.md is the authoritative metric catalogue: every name the
// registry can emit must be listed there. This test runs workloads across
// the techniques (with enough adversity to light up the conflict, monitor
// and queue families) and asserts observed names ⊆ catalogue — so an
// undocumented metric fails CI, loudly, next to the doc that needs a row.
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "core/cluster.hh"
#include "explore/trial.hh"
#include "obs/metrics.hh"

namespace repli::core {
namespace {

/// Backticked dot-separated names in markdown table rows: "| `a.b.c` |".
std::set<std::string> catalogue_names(const std::string& markdown) {
  std::set<std::string> names;
  std::size_t pos = 0;
  while ((pos = markdown.find("| `", pos)) != std::string::npos) {
    pos += 3;
    const auto end = markdown.find('`', pos);
    if (end == std::string::npos) break;
    const std::string name = markdown.substr(pos, end - pos);
    if (name.find('.') != std::string::npos && name.find(' ') == std::string::npos) {
      names.insert(name);
    }
    pos = end;
  }
  return names;
}

std::set<std::string> observed_names(obs::Registry& registry) {
  std::set<std::string> names;
  for (const auto& [key, value] : registry.counters()) names.insert(key.name);
  for (const auto& [key, value] : registry.gauges()) names.insert(key.name);
  for (const auto& [key, value] : registry.histograms()) names.insert(key.name);
  return names;
}

TEST(MetricsCatalogue, EveryObservedMetricIsDocumented) {
  std::ifstream in(std::string(REPLI_SOURCE_DIR) + "/docs/METRICS.md");
  ASSERT_TRUE(in.good()) << "docs/METRICS.md not found under " << REPLI_SOURCE_DIR;
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto catalogue = catalogue_names(buf.str());
  ASSERT_GT(catalogue.size(), 30u) << "catalogue parse came back suspiciously small";

  std::set<std::string> observed;
  for (const auto& info : all_techniques()) {
    ClusterConfig cfg;
    cfg.kind = info.kind;
    cfg.replicas = 3;
    cfg.clients = 2;
    cfg.seed = 11;
    cfg.net.drop_probability = 0.05;  // exercise drop/retransmit counters
    Cluster cluster(cfg);
    for (int i = 0; i < 6; ++i) {
      cluster.run_op(i % 2, op_add("hot", 1), 60 * sim::kSec);  // contended key
    }
    cluster.settle(5 * sim::kSec);
    for (const auto& name : observed_names(cluster.sim().metrics())) observed.insert(name);
  }

  // One exploration trial with a fault plan lights up the explore.* and
  // partition-swap families. The cluster only lives inside run_trial, so
  // the metric names are collected through the test hook.
  {
    explore::TrialConfig tc;
    tc.kind = TechniqueKind::Active;
    tc.workload_seed = 11;
    tc.schedule_seed = 12;
    tc.clients = 2;
    tc.ops_per_client = 8;
    tc.settle = 2 * sim::kSec;
    tc.plan = explore::parse_plan("tie; jitter=200; part@t6000:r2+2000").value();
    tc.extra_check = [&observed](const explore::TrialConfig&, Cluster& cluster) {
      for (const auto& name : observed_names(cluster.sim().metrics())) observed.insert(name);
      return std::string();
    };
    const auto result = explore::run_trial(tc);
    EXPECT_TRUE(result.ok) << result.violation;
  }

  ASSERT_GT(observed.size(), 10u);
  ASSERT_TRUE(observed.count("explore.faults_injected") == 1)
      << "the exploration trial did not emit its counters";

  std::string missing;
  for (const auto& name : observed) {
    if (catalogue.count(name) == 0) missing += "  " + name + "\n";
  }
  EXPECT_TRUE(missing.empty()) << "metrics missing from docs/METRICS.md:\n" << missing;
}

}  // namespace
}  // namespace repli::core
