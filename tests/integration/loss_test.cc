// End-to-end behaviour on a lossy network: every technique is built on ARQ
// links, so operations must still complete and replicas must still converge
// when the network drops a sizable fraction of messages.
#include <gtest/gtest.h>

#include "check/serializability.hh"
#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

struct LossCase {
  TechniqueKind kind;
  double drop;
  std::uint64_t seed;
};

std::string loss_name(const ::testing::TestParamInfo<LossCase>& info) {
  std::string name{technique_name(info.param.kind)};
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name + "_drop" + std::to_string(static_cast<int>(info.param.drop * 100)) + "_seed" +
         std::to_string(info.param.seed);
}

class LossyNetwork : public ::testing::TestWithParam<LossCase> {};

TEST_P(LossyNetwork, OperationsCompleteAndReplicasConverge) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.kind = param.kind;
  cfg.replicas = 3;
  cfg.clients = 2;
  cfg.seed = param.seed;
  cfg.net.drop_probability = param.drop;
  cfg.net.jitter_mean = 200;
  cfg.client_max_attempts = 20;  // raw client<->server hops face the raw loss rate
  Cluster cluster(cfg);

  for (int i = 0; i < 6; ++i) {
    const auto reply =
        cluster.run_op(i % 2, op_put("key-" + std::to_string(i), "v"), 120 * sim::kSec);
    ASSERT_TRUE(reply.ok) << technique_name(param.kind) << " op " << i << ": " << reply.result;
  }
  const auto read = cluster.run_op(0, op_get("key-0"), 120 * sim::kSec);
  ASSERT_TRUE(read.ok);
  EXPECT_EQ(read.result, "v");

  cluster.settle(10 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << technique_name(param.kind) << " diverged under loss";
  const auto report = check::check_one_copy_serializability(cluster.history());
  EXPECT_TRUE(report.serializable) << report.violation;
}

std::vector<LossCase> loss_cases() {
  std::vector<LossCase> out;
  for (const auto& info : all_techniques()) {
    out.push_back({info.kind, 0.05, 3});
    out.push_back({info.kind, 0.20, 9});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Sweep, LossyNetwork, ::testing::ValuesIn(loss_cases()), loss_name);

TEST(LossyNetwork, HeavyLossStillConvergesForActive) {
  ClusterConfig cfg;
  cfg.kind = TechniqueKind::Active;
  cfg.replicas = 3;
  cfg.seed = 5;
  cfg.net.drop_probability = 0.4;
  cfg.client_max_attempts = 30;
  Cluster cluster(cfg);
  for (int i = 0; i < 4; ++i) {
    const auto reply = cluster.run_op(0, op_add("counter", 1), 120 * sim::kSec);
    ASSERT_TRUE(reply.ok) << reply.result;
    EXPECT_EQ(reply.result, std::to_string(i + 1));
  }
  cluster.settle(10 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
}

}  // namespace
}  // namespace repli::core
