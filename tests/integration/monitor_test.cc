// The cluster-driven health monitor: staleness must show up under lazy
// propagation and stay ~zero under eager schemes, divergence windows must
// all close on conflict-free runs, and a primary crash must produce one
// complete failover timeline (suspicion -> promotion -> first commit).
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

TEST(MonitorIntegration, StalenessPositiveUnderLazyPropagation) {
  auto cfg = testing::quiet_config(TechniqueKind::LazyPrimary);
  cfg.monitor_interval = 1 * sim::kMsec;
  cfg.lazy_propagation_delay = 20 * sim::kMsec;
  Cluster cluster(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.run_op(0, op_put("k" + std::to_string(i), "v")).ok);
  }
  cluster.settle(200 * sim::kMsec);

  const auto& samples = cluster.monitor().staleness();
  ASSERT_FALSE(samples.empty());
  std::uint64_t max_lag = 0;
  sim::Time max_age = 0;
  for (const auto& s : samples) {
    max_lag = std::max(max_lag, s.version_lag);
    max_age = std::max(max_age, s.age);
  }
  EXPECT_GT(max_lag, 0u) << "backups lag the lazy primary by whole versions";
  EXPECT_GT(max_age, 0) << "staleness age must accumulate while the lag persists";
}

TEST(MonitorIntegration, StalenessNearZeroUnderEagerReplication) {
  auto cfg = testing::quiet_config(TechniqueKind::Active);
  cfg.monitor_interval = 1 * sim::kMsec;
  Cluster cluster(cfg);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.run_op(0, op_put("k" + std::to_string(i), "v")).ok);
  }
  cluster.settle(200 * sim::kMsec);

  ASSERT_FALSE(cluster.monitor().staleness().empty());
  // Transient single-version gaps can be sampled mid-broadcast, but eager
  // replication keeps the distribution pinned at zero.
  EXPECT_EQ(cluster.monitor().staleness_p95_versions(), 0u);
}

TEST(MonitorIntegration, DivergenceWindowsAllCloseOnConflictFreeRuns) {
  for (const auto kind : {TechniqueKind::Active, TechniqueKind::LazyPrimary}) {
    auto cfg = testing::quiet_config(kind);
    cfg.monitor_interval = 1 * sim::kMsec;
    Cluster cluster(cfg);
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(cluster.run_op(0, op_put("k" + std::to_string(i), "v")).ok);
    }
    cluster.settle(2 * sim::kSec);
    ASSERT_TRUE(cluster.converged()) << technique_name(kind);
    // Windows may open transiently while updates are in flight, but a
    // conflict-free converged run must close every one of them.
    EXPECT_FALSE(cluster.monitor().diverged_now()) << technique_name(kind);
    for (const auto& window : cluster.monitor().divergence_windows()) {
      EXPECT_FALSE(window.open()) << technique_name(kind);
    }
  }
}

TEST(MonitorIntegration, PrimaryCrashYieldsCompleteFailoverTimeline) {
  Cluster cluster(testing::quiet_config(TechniqueKind::EagerPrimary));
  ASSERT_TRUE(cluster.run_op(0, op_put("k1", "committed-before")).ok);
  cluster.crash_replica(0);
  const auto reply = cluster.run_op(0, op_put("k2", "after-failover"), 60 * sim::kSec);
  ASSERT_TRUE(reply.ok) << "cluster never recovered from the primary crash";

  const auto& failovers = cluster.monitor().failovers();
  ASSERT_EQ(failovers.size(), 1u);
  const auto& timeline = failovers.front();
  EXPECT_EQ(timeline.failed, cluster.replica_node(0));
  EXPECT_TRUE(timeline.complete())
      << "suspected_at=" << timeline.suspected_at << " promoted_at=" << timeline.promoted_at
      << " first_commit_at=" << timeline.first_commit_at;
  EXPECT_LE(timeline.suspected_at, timeline.promoted_at);
  EXPECT_LE(timeline.promoted_at, timeline.first_commit_at);
  EXPECT_GT(timeline.duration(), 0);
}

TEST(MonitorIntegration, NoFailoverTimelinesOnHealthyRuns) {
  for (const auto kind : {TechniqueKind::EagerPrimary, TechniqueKind::Passive}) {
    Cluster cluster(testing::quiet_config(kind));
    ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
    cluster.settle(2 * sim::kSec);
    EXPECT_TRUE(cluster.monitor().failovers().empty()) << technique_name(kind);
  }
}

TEST(MonitorIntegration, ShortRunsStillGetAFinalSample) {
  // A run that finishes inside the first monitor_interval never ticks the
  // periodic sampler; the teardown flush must still capture one staleness
  // sample per replica, or short benches report empty health tables.
  auto cfg = testing::quiet_config(TechniqueKind::Active);
  cfg.monitor_interval = 20 * sim::kMsec;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("k", "v")).ok);
  ASSERT_LT(cluster.sim().now(), cfg.monitor_interval)
      << "run outlived the interval; the test no longer tests the flush";
  EXPECT_TRUE(cluster.monitor().staleness().empty());

  cluster.final_monitor_sample();
  EXPECT_EQ(cluster.monitor().staleness().size(),
            static_cast<std::size_t>(cluster.replica_count()));
}

TEST(MonitorIntegration, ClientGiveUpAttributedAsTimeoutAbort) {
  // Crash every replica: the client exhausts its retries and gives up; the
  // monitor must attribute that as a timeout abort.
  auto cfg = testing::quiet_config(TechniqueKind::Active);
  cfg.client_retry_timeout = 50 * sim::kMsec;
  cfg.client_max_attempts = 2;
  Cluster cluster(cfg);
  for (int i = 0; i < cluster.replica_count(); ++i) cluster.crash_replica(i);
  const auto reply = cluster.run_op(0, op_put("k", "v"), 30 * sim::kSec);
  EXPECT_FALSE(reply.ok);
  EXPECT_GE(cluster.monitor().aborts_by(obs::AbortCause::Timeout), 1u);
}

}  // namespace
}  // namespace repli::core
