// Profiling must be read-only with respect to the simulation: it samples
// wall-clock time and heap counters but never touches simulated time, the
// RNG, the tracer, or the registry. So the same (config, seed) run must
// export a byte-identical Chrome trace and identical storage digests with
// the profiler on or off — the guarantee that lets the benches leave
// profiling enabled without forking the numbers they report.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/cluster.hh"
#include "obs/export_chrome.hh"
#include "obs/profile.hh"

namespace repli::core {
namespace {

struct RunArtifacts {
  std::string chrome_trace;
  std::string folded;
  std::vector<std::uint64_t> digests;
};

RunArtifacts run_once(TechniqueKind kind, bool profiled) {
  if (profiled) {
    obs::Profiler::global().enable();
  } else {
    obs::Profiler::global().disable();
  }
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 2;
  cfg.seed = 99;
  cfg.net.jitter_mean = 200;
  Cluster cluster(cfg);
  for (int i = 0; i < 6; ++i) {
    cluster.run_op(i % 2, op_put("k" + std::to_string(i), "v"), 60 * sim::kSec);
  }
  cluster.settle(5 * sim::kSec);
  obs::Profiler::global().disable();

  RunArtifacts out;
  std::ostringstream trace;
  obs::write_chrome_trace(cluster.sim().tracer(), trace);
  out.chrome_trace = trace.str();
  std::ostringstream folded;
  obs::write_folded(cluster.sim().tracer(), folded);
  out.folded = folded.str();
  out.digests = cluster.storage_digests();
  return out;
}

class ProfiledRunIdentity : public ::testing::TestWithParam<TechniqueKind> {
 protected:
  void TearDown() override {
    obs::Profiler::global().disable();
    obs::Profiler::global().clear();
  }
};

TEST_P(ProfiledRunIdentity, TracesAreBitIdenticalWithProfilingOnOrOff) {
  const auto off = run_once(GetParam(), false);
  const auto on = run_once(GetParam(), true);
  EXPECT_EQ(off.chrome_trace, on.chrome_trace);
  EXPECT_EQ(off.folded, on.folded);
  EXPECT_EQ(off.digests, on.digests);
  // And the profiled run actually profiled something.
  std::uint64_t calls = 0;
  for (const auto& bucket : obs::Profiler::global().buckets()) calls += bucket.calls;
  EXPECT_GT(calls, 0u);
}

INSTANTIATE_TEST_SUITE_P(Techniques, ProfiledRunIdentity,
                         ::testing::Values(TechniqueKind::Active, TechniqueKind::EagerPrimary,
                                           TechniqueKind::Certification,
                                           TechniqueKind::LazyEverywhere));

}  // namespace
}  // namespace repli::core
