// Network partitions: transient partitions heal and the protocols recover;
// a majority partition keeps consensus-based techniques live.
#include <gtest/gtest.h>

#include "core/cluster.hh"
#include "tests/core/core_test_util.hh"

namespace repli::core {
namespace {

/// Cuts replica `isolated` off from the other replicas (clients unaffected).
void isolate_replica(Cluster& cluster, sim::NodeId isolated, int replicas) {
  cluster.sim().net().set_partition([isolated, replicas](sim::NodeId from, sim::NodeId to) {
    const bool from_replica = from < replicas;
    const bool to_replica = to < replicas;
    if (!from_replica || !to_replica) return false;
    return from == isolated || to == isolated;
  });
}

TEST(Partition, ActiveReplicationHealsAfterTransientPartition) {
  ClusterConfig cfg;
  cfg.kind = TechniqueKind::Active;
  cfg.replicas = 3;
  cfg.seed = 7;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("before", "1")).ok);

  isolate_replica(cluster, 2, 3);
  const auto mid = cluster.run_op(0, op_put("during", "2"), 60 * sim::kSec);
  ASSERT_TRUE(mid.ok) << "majority side should keep working";

  cluster.sim().net().set_partition(nullptr);
  cluster.settle(5 * sim::kSec);  // retransmissions reach the healed member
  ASSERT_TRUE(cluster.run_op(0, op_put("after", "3"), 60 * sim::kSec).ok);
  cluster.settle(5 * sim::kSec);
  EXPECT_TRUE(cluster.converged())
      << "replica 2 should catch up via ARQ retransmissions after the heal";
  EXPECT_EQ(cluster.replica(2).storage().get("during")->value, "2");
}

TEST(Partition, ConsensusAbcastLiveInMajorityPartition) {
  ClusterConfig cfg;
  cfg.kind = TechniqueKind::Active;
  cfg.active_abcast_impl = 1;  // consensus-based: tolerates the minority loss
  cfg.replicas = 5;
  cfg.seed = 11;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("a", "1"), 60 * sim::kSec).ok);

  // Cut two replicas off: the three-member majority continues.
  cluster.sim().net().set_partition([](sim::NodeId from, sim::NodeId to) {
    auto minority = [](sim::NodeId n) { return n == 3 || n == 4; };
    if (from >= 5 || to >= 5) return false;  // client links stay up
    return minority(from) != minority(to);
  });
  const auto reply = cluster.run_op(0, op_put("b", "2"), 120 * sim::kSec);
  EXPECT_TRUE(reply.ok) << "majority partition must stay live: " << reply.result;

  cluster.sim().net().set_partition(nullptr);
  cluster.settle(20 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << "minority should catch up after healing";
}

TEST(Partition, SemiPassiveSurvivesTransientCoordinatorIsolation) {
  // A false suspicion scenario: the round-0 coordinator is unreachable for
  // a while (not crashed). Consensus moves to the next coordinator; when
  // the partition heals, the old coordinator rejoins without split-brain.
  ClusterConfig cfg;
  cfg.kind = TechniqueKind::SemiPassive;
  cfg.replicas = 3;
  cfg.seed = 13;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.run_op(0, op_put("pre", "1")).ok);

  isolate_replica(cluster, 0, 3);
  const auto during = cluster.run_op(0, op_put("during", "2"), 60 * sim::kSec);
  EXPECT_TRUE(during.ok) << during.result;

  cluster.sim().net().set_partition(nullptr);
  cluster.settle(10 * sim::kSec);
  ASSERT_TRUE(cluster.run_op(0, op_put("post", "3"), 60 * sim::kSec).ok);
  cluster.settle(10 * sim::kSec);
  EXPECT_TRUE(cluster.converged());
  EXPECT_EQ(cluster.replica(0).storage().get("during")->value, "2");
}

TEST(Partition, LazyEverywhereMergesDivergentPartitions) {
  // The classic lazy selling point: both sides of a partition keep
  // accepting writes; reconciliation merges them after the heal. The
  // partition must heal before the sequencer takeover grace expires —
  // the fixed-sequencer ABCAST that orders the reconciliation assumes an
  // accurate failure detector, and a long-lived partition would look like
  // a crash to both sides (split-brain; DESIGN.md documents this as the
  // sequencer variant's assumption).
  ClusterConfig cfg;
  cfg.kind = TechniqueKind::LazyEverywhere;
  cfg.replicas = 3;
  cfg.clients = 3;
  cfg.seed = 17;
  cfg.lazy_propagation_delay = 2 * sim::kMsec;
  Cluster cluster(cfg);

  isolate_replica(cluster, 2, 3);
  // Client 2 writes at isolated replica 2; client 0 at the majority side.
  const auto left = cluster.run_op(0, op_put("doc-left", "A"), 60 * sim::kSec);
  const auto right = cluster.run_op(2, op_put("doc-right", "B"), 60 * sim::kSec);
  ASSERT_TRUE(left.ok);
  ASSERT_TRUE(right.ok) << "isolated replica must still serve its client (lazy!)";
  cluster.settle(25 * sim::kMsec);
  EXPECT_FALSE(cluster.converged()) << "sides should have diverged";

  cluster.sim().net().set_partition(nullptr);  // heal before sequencer takeover
  cluster.settle(20 * sim::kSec);
  EXPECT_TRUE(cluster.converged()) << "reconciliation should merge both sides";
  const auto doc_right = cluster.replica(0).storage().get("doc-right");
  const auto doc_left = cluster.replica(2).storage().get("doc-left");
  ASSERT_TRUE(doc_right.has_value());
  ASSERT_TRUE(doc_left.has_value());
  EXPECT_EQ(doc_right->value, "B");
  EXPECT_EQ(doc_left->value, "A");
}

}  // namespace
}  // namespace repli::core
