// The flat decode paths parse the exact bytes the visitor codec writes, so
// the same (config, seed) run must export a byte-identical Chrome trace and
// identical storage digests whichever decode path is active. This is the
// whole-system form of the per-type oracle tests in tests/gcs/flat_wire_test
// — it would catch a flat path that diverges only under real traffic
// (retransmissions, packs, heartbeat storms).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/cluster.hh"
#include "obs/export_chrome.hh"
#include "wire/flat.hh"

namespace repli::core {
namespace {

struct RunArtifacts {
  std::string chrome_trace;
  std::string folded;
  std::vector<std::uint64_t> digests;
};

RunArtifacts run_once(TechniqueKind kind, bool flat) {
  wire::set_flat_decode_enabled(flat);
  ClusterConfig cfg;
  cfg.kind = kind;
  cfg.replicas = 3;
  cfg.clients = 2;
  cfg.seed = 4242;
  cfg.net.jitter_mean = 200;
  cfg.net.drop_probability = 0.05;  // force ARQ retransmissions through LinkData
  Cluster cluster(cfg);
  for (int i = 0; i < 8; ++i) {
    cluster.run_op(i % 2, op_put("k" + std::to_string(i % 3), "v" + std::to_string(i)),
                   60 * sim::kSec);
  }
  cluster.settle(5 * sim::kSec);
  wire::set_flat_decode_enabled(true);

  RunArtifacts out;
  std::ostringstream trace;
  obs::write_chrome_trace(cluster.sim().tracer(), trace);
  out.chrome_trace = trace.str();
  std::ostringstream folded;
  obs::write_folded(cluster.sim().tracer(), folded);
  out.folded = folded.str();
  out.digests = cluster.storage_digests();
  return out;
}

class FlatRunIdentity : public ::testing::TestWithParam<TechniqueKind> {
 protected:
  void TearDown() override { wire::set_flat_decode_enabled(true); }
};

TEST_P(FlatRunIdentity, TracesAreBitIdenticalWithFlatDecodeOnOrOff) {
  const auto visitor = run_once(GetParam(), false);
  const auto flat = run_once(GetParam(), true);
  EXPECT_EQ(visitor.chrome_trace, flat.chrome_trace);
  EXPECT_EQ(visitor.folded, flat.folded);
  EXPECT_EQ(visitor.digests, flat.digests);
}

INSTANTIATE_TEST_SUITE_P(Techniques, FlatRunIdentity,
                         ::testing::Values(TechniqueKind::Active, TechniqueKind::EagerPrimary,
                                           TechniqueKind::Certification,
                                           TechniqueKind::LazyEverywhere));

}  // namespace
}  // namespace repli::core
