// Flow-arrow integrity across all ten techniques: in a loss-free run every
// cross-node message edge recorded by the tracer must be delivered (its
// receive side filled in) unless its delivery was still scheduled when the
// simulation stopped — an undelivered flow inside the run window is an
// orphan arrow, i.e. a send span with no matching receive. The exported
// Chrome trace must round-trip every edge as a matched s/f pair (a receive
// with no send would be dropped by the parser and shrink the count).
#include <gtest/gtest.h>

#include <sstream>

#include "core/cluster.hh"
#include "obs/export_chrome.hh"
#include "tests/core/core_test_util.hh"
#include "tools/report/report.hh"

namespace repli::core {
namespace {

class FlowIntegrity : public ::testing::TestWithParam<TechniqueKind> {};

TEST_P(FlowIntegrity, EverySendHasAMatchingReceive) {
  Cluster cluster(testing::quiet_config(GetParam(), 3, 2, 7));
  for (int i = 0; i < 8; ++i) {
    const auto key = "key-" + std::to_string(i % 4);
    const auto reply = (i % 2 == 0)
                           ? cluster.run_op(i % 2, op_put(key, "v" + std::to_string(i)))
                           : cluster.run_op(i % 2, op_get(key));
    ASSERT_TRUE(reply.ok) << "op " << i;
  }
  cluster.settle(2 * sim::kSec);
  const sim::Time end_time = cluster.sim().now();

  const auto& flows = cluster.sim().tracer().flows();
  ASSERT_FALSE(flows.empty());
  std::size_t delivered = 0;
  for (const auto& flow : flows) {
    EXPECT_NE(flow.from, flow.to) << "self-sends must not record flows";
    EXPECT_LE(flow.sent, flow.recv) << flow.type;
    if (flow.lamport_recv != 0) {
      ++delivered;
      EXPECT_GT(flow.lamport_recv, flow.lamport_send)
          << flow.type << " " << flow.from << "->" << flow.to;
    } else {
      // Orphan arrow unless the delivery event simply lies beyond the end
      // of the run (e.g. a heartbeat still in flight at teardown).
      EXPECT_GT(flow.recv, end_time)
          << "orphan arrow: " << flow.type << " " << flow.from << "->" << flow.to
          << " sent at " << flow.sent << " never received";
    }
  }
  EXPECT_GT(delivered, 0u);

  // Exporter round-trip: the parser pairs s/f events by id and drops
  // unmatched halves, so a full-count round-trip proves every arrow is a
  // matched pair in the artifact too.
  std::ostringstream os;
  obs::write_chrome_trace(cluster.sim().tracer(), os);
  const auto parsed = tools::parse_chrome_trace(os.str(), "flow-integrity");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->flows.size(), flows.size());
}

INSTANTIATE_TEST_SUITE_P(AllTechniques, FlowIntegrity,
                         ::testing::ValuesIn(testing::all_kinds()),
                         testing::kind_param_name);

}  // namespace
}  // namespace repli::core
