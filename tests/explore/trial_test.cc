// Trial determinism: a trial is a pure function of its TrialConfig. Same
// seeds + plan must reproduce the identical run — schedule digest, event
// count, op tallies — because that is the entire replay story.
#include "explore/trial.hh"

#include <gtest/gtest.h>

#include "explore/explore.hh"
#include "util/assert.hh"

namespace repli::explore {
namespace {

TrialConfig small_config() {
  TrialConfig tc;
  tc.kind = core::TechniqueKind::Active;
  tc.workload_seed = 11;
  tc.schedule_seed = 22;
  tc.clients = 2;
  tc.ops_per_client = 10;
  tc.settle = 2 * sim::kSec;
  return tc;
}

void expect_identical(const TrialResult& a, const TrialResult& b) {
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.failed_check, b.failed_check);
  EXPECT_EQ(a.schedule_digest, b.schedule_digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.ops_ok, b.ops_ok);
  EXPECT_EQ(a.ops_failed, b.ops_failed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.ties_randomized, b.ties_randomized);
  EXPECT_EQ(a.tainted_keys, b.tainted_keys);
}

TEST(Trial, SameConfigReproducesTheIdenticalRun) {
  auto tc = small_config();
  std::string error;
  tc.plan = parse_plan("tie; jitter=300; crash@t9000:r2", &error).value();
  const auto a = run_trial(tc);
  const auto b = run_trial(tc);
  EXPECT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.faults_injected, 1u);
  EXPECT_GT(a.ties_randomized, 0u);
  expect_identical(a, b);
}

TEST(Trial, ScheduleSeedChangesTheSchedule) {
  auto tc = small_config();
  tc.plan.tie_break = true;
  const auto a = run_trial(tc);
  tc.schedule_seed = 23;
  const auto b = run_trial(tc);
  EXPECT_TRUE(a.ok && b.ok);
  EXPECT_NE(a.schedule_digest, b.schedule_digest);
}

TEST(Trial, UnperturbedPlanLeavesTheScheduleAlone) {
  auto tc = small_config();
  const auto a = run_trial(tc);
  EXPECT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.ties_randomized, 0u);
  EXPECT_EQ(a.ops_ok, 20u);
}

TEST(Trial, PhaseTriggeredFaultFires) {
  auto tc = small_config();
  tc.plan = parse_plan("crash@sc3:r1").value();
  const auto a = run_trial(tc);
  EXPECT_TRUE(a.ok) << a.violation;
  EXPECT_EQ(a.faults_injected, 1u);
}

TEST(Trial, PartitionHealsAndConverges) {
  auto tc = small_config();
  tc.settle = 5 * sim::kSec;
  tc.plan = parse_plan("part@t5000:r2+3000").value();
  const auto a = run_trial(tc);
  EXPECT_TRUE(a.ok) << a.failed_check << ": " << a.violation;
  EXPECT_EQ(a.faults_injected, 1u);
}

TEST(Trial, FaultOnNonReplicaIsAnInvariantViolation) {
  auto tc = small_config();
  tc.plan = parse_plan("crash@t5000:r7").value();
  EXPECT_THROW(run_trial(tc), util::InvariantViolation);
}

TEST(DeriveSeed, LanesAreDecorrelated) {
  const auto a = derive_seed(1, 0, 0);
  const auto b = derive_seed(1, 0, 1);
  const auto c = derive_seed(1, 1, 0);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_seed(1, 0, 0));
}

TEST(GeneratePlan, IsPureAndStaysInsideTheEnvelope) {
  ExploreConfig config;
  config.kind = core::TechniqueKind::Certification;
  config.seed = 99;
  for (int t = 0; t < 50; ++t) {
    const auto plan = generate_plan(config, t);
    EXPECT_EQ(format_plan(plan), format_plan(generate_plan(config, t)));
    int crashes = 0;
    bool has_partition = false;
    for (const auto& f : plan.faults) {
      EXPECT_GE(f.replica, 0);
      EXPECT_LT(f.replica, config.replicas);
      if (f.kind == Fault::Kind::Crash) {
        ++crashes;
      } else {
        has_partition = true;
        // Partitions must heal before the failure detector can falsely
        // suspect anyone (see the envelope comment in generate_plan).
        EXPECT_LT(f.heal_after, 10 * sim::kMsec);
      }
    }
    EXPECT_LE(crashes, (config.replicas - 1) / 2);
    if (has_partition) {
      EXPECT_LE(plan.jitter, 800);
    }
  }
}

}  // namespace
}  // namespace repli::explore
