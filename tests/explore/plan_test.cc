// Fault-plan grammar: format_plan and parse_plan must round-trip exactly —
// a plan printed into a CI log is the replay input.
#include "explore/plan.hh"

#include <gtest/gtest.h>

namespace repli::explore {
namespace {

Plan roundtrip(const Plan& plan) {
  std::string error;
  const auto parsed = parse_plan(format_plan(plan), &error);
  EXPECT_TRUE(parsed.has_value()) << error << " for '" << format_plan(plan) << "'";
  return parsed.value_or(Plan{});
}

TEST(PlanGrammar, EmptyPlanIsNone) {
  Plan plan;
  EXPECT_EQ(format_plan(plan), "none");
  const auto parsed = parse_plan("none");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(PlanGrammar, FullPlanRoundTrips) {
  Plan plan;
  plan.tie_break = true;
  plan.jitter = 400;
  Fault crash;
  crash.kind = Fault::Kind::Crash;
  crash.trigger.kind = Trigger::Kind::Phase;
  crash.trigger.phase = "sc";
  crash.trigger.occurrence = 2;
  crash.replica = 1;
  plan.faults.push_back(crash);
  Fault part;
  part.kind = Fault::Kind::Partition;
  part.trigger.kind = Trigger::Kind::Time;
  part.trigger.at = 20000;
  part.replica = 0;
  part.heal_after = 50000;
  plan.faults.push_back(part);

  EXPECT_EQ(format_plan(plan), "tie; jitter=400; crash@sc2:r1; part@t20000:r0+50000");
  const auto back = roundtrip(plan);
  EXPECT_EQ(format_plan(back), format_plan(plan));
  EXPECT_TRUE(back.tie_break);
  EXPECT_EQ(back.jitter, 400);
  ASSERT_EQ(back.faults.size(), 2u);
  EXPECT_EQ(back.faults[0].kind, Fault::Kind::Crash);
  EXPECT_EQ(back.faults[0].trigger.phase, "sc");
  EXPECT_EQ(back.faults[0].trigger.occurrence, 2u);
  EXPECT_EQ(back.faults[1].kind, Fault::Kind::Partition);
  EXPECT_EQ(back.faults[1].trigger.at, 20000);
  EXPECT_EQ(back.faults[1].heal_after, 50000);
}

TEST(PlanGrammar, EveryPhaseAbbrevParses) {
  for (const char* ph : {"re", "sc", "ex", "ac", "end"}) {
    const std::string text = std::string("crash@") + ph + "3:r0";
    const auto parsed = parse_plan(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->faults.at(0).trigger.phase, ph);
    EXPECT_EQ(format_plan(*parsed), text);
  }
}

TEST(PlanGrammar, ToleratesSpacePaddingAroundSeparators) {
  const auto parsed = parse_plan("tie ;  jitter=10;crash@t5:r2");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(format_plan(*parsed), "tie; jitter=10; crash@t5:r2");
}

TEST(PlanGrammar, MalformedInputsAreRejectedWithADiagnostic) {
  for (const char* bad : {
           "ties",                   // unknown entry
           "jitter=",                // missing number
           "jitter=-5",              // negative
           "crash@t5",               // missing replica
           "crash@t5:x2",            // bad replica marker
           "crash@zz2:r0",           // unknown phase
           "crash@sc0:r0",           // occurrence is 1-based
           "part@t5:r1",             // partition without duration
           "part@t5:r1+",            // empty duration
           "crash@t5:r1 extra",      // trailing garbage
           "none; tie",              // "none" must stand alone
       }) {
    std::string error;
    EXPECT_FALSE(parse_plan(bad, &error).has_value()) << "accepted: '" << bad << "'";
    EXPECT_FALSE(error.empty()) << bad;
  }
}

}  // namespace
}  // namespace repli::explore
