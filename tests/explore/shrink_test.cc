// The delta-debugging shrinker, exercised against a hand-planted
// violation: a deliberately weakened "checker" (the extra_check hook)
// that flags any plan containing a crash fault. The shrinker must strip
// everything else — extra faults, jitter, tie-breaking — and hand back
// the minimal 1-fault plan, still failing.
#include <gtest/gtest.h>

#include "explore/explore.hh"
#include "util/assert.hh"

namespace repli::explore {
namespace {

TrialConfig planted_config() {
  TrialConfig tc;
  tc.kind = core::TechniqueKind::Active;
  tc.workload_seed = 31;
  tc.schedule_seed = 32;
  tc.clients = 2;
  tc.ops_per_client = 8;
  tc.settle = 2 * sim::kSec;
  // The planted bug: "any run that crashed a replica is wrong". Everything
  // except one crash fault is noise the shrinker must discard.
  tc.extra_check = [](const TrialConfig& config, core::Cluster&) -> std::string {
    for (const auto& fault : config.plan.faults) {
      if (fault.kind == Fault::Kind::Crash) return "planted: a replica crashed";
    }
    return "";
  };
  return tc;
}

TEST(Shrink, ReducesToTheMinimalOneFaultPlan) {
  auto tc = planted_config();
  tc.plan = parse_plan(
                "tie; jitter=500; part@t4000:r0+2000; crash@t9000:r1; part@t15000:r2+2500")
                .value();
  const auto shrunk = shrink(tc);

  EXPECT_FALSE(shrunk.result.ok);
  EXPECT_EQ(shrunk.result.failed_check, "extra");
  EXPECT_FALSE(shrunk.minimal.tie_break);
  EXPECT_EQ(shrunk.minimal.jitter, 0);
  ASSERT_EQ(shrunk.minimal.faults.size(), 1u);
  EXPECT_EQ(shrunk.minimal.faults[0].kind, Fault::Kind::Crash);
  EXPECT_EQ(shrunk.minimal.faults[0].replica, 1);
  EXPECT_EQ(format_plan(shrunk.minimal), "crash@t9000:r1");
  EXPECT_GE(shrunk.steps, 4);  // two partitions, jitter, tie all dropped
  EXPECT_GT(shrunk.runs, shrunk.steps);

  // The minimal reproducer replays deterministically.
  auto replay = tc;
  replay.plan = shrunk.minimal;
  const auto again = run_trial(replay);
  EXPECT_FALSE(again.ok);
  EXPECT_EQ(again.schedule_digest, shrunk.result.schedule_digest);
}

TEST(Shrink, PassingTrialIsAnInvariantViolation) {
  TrialConfig tc;
  tc.kind = core::TechniqueKind::Active;
  tc.workload_seed = 31;
  tc.clients = 2;
  tc.ops_per_client = 5;
  tc.settle = 2 * sim::kSec;
  EXPECT_THROW(shrink(tc), util::InvariantViolation);
}

TEST(Shrink, AlreadyMinimalPlanIsUntouched) {
  auto tc = planted_config();
  tc.plan = parse_plan("crash@t9000:r1").value();
  const auto shrunk = shrink(tc);
  EXPECT_EQ(shrunk.steps, 0);
  EXPECT_EQ(format_plan(shrunk.minimal), "crash@t9000:r1");
}

}  // namespace
}  // namespace repli::explore
