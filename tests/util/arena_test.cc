#include "util/arena.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

namespace repli::util {
namespace {

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena;
  auto* a = static_cast<std::uint8_t*>(arena.alloc(100));
  auto* b = static_cast<std::uint8_t*>(arena.alloc(100));
  EXPECT_NE(a, b);
  std::memset(a, 0xAA, 100);
  std::memset(b, 0xBB, 100);
  EXPECT_EQ(a[99], 0xAA);  // no overlap
  auto* c = arena.alloc(1, 64);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
}

TEST(Arena, ResetReusesChunksWithoutNewAllocation) {
  Arena arena(1024);
  for (int i = 0; i < 10; ++i) arena.alloc(512);
  const std::size_t chunks = arena.chunk_count();
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) arena.alloc(512);
    arena.reset();
  }
  EXPECT_EQ(arena.chunk_count(), chunks);  // steady state: no growth
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(256);
  auto span = arena.alloc_array<std::uint8_t>(10000);
  ASSERT_EQ(span.size(), 10000u);
  std::memset(span.data(), 0x5A, span.size());
  EXPECT_EQ(span[9999], 0x5A);
}

TEST(Arena, ScopesNestAndRewind) {
  Arena arena;
  arena.alloc(100);
  const std::size_t outer = arena.bytes_used();
  {
    ArenaScope s1(arena);
    arena.alloc(200);
    const std::size_t mid = arena.bytes_used();
    EXPECT_GE(mid, outer + 200);  // >= : alignment may pad
    {
      ArenaScope s2(arena);
      arena.alloc(300);
      EXPECT_GE(arena.bytes_used(), mid + 300);
    }
    EXPECT_EQ(arena.bytes_used(), mid);
  }
  EXPECT_EQ(arena.bytes_used(), outer);
}

TEST(ArenaVec, GrowsAndPreservesContents) {
  Arena arena;
  ArenaVec<std::uint32_t> v(arena);
  EXPECT_TRUE(v.empty());
  for (std::uint32_t i = 0; i < 1000; ++i) v.push_back(i * 3);
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) ASSERT_EQ(v[i], i * 3);
  EXPECT_TRUE(v.contains(999 * 3));
  EXPECT_FALSE(v.contains(999 * 3 + 1));
  v.pop_back();
  EXPECT_EQ(v.size(), 999u);
  EXPECT_FALSE(v.contains(999 * 3));
}

TEST(ArenaVec, NestedScopedVecsDoNotInterfere) {
  // The deadlock-walk shape: an inner walk borrows the same arena while an
  // outer one is mid-flight; the scope rewinds only the inner storage.
  Arena arena;
  ArenaScope outer_scope(arena);
  ArenaVec<int> outer(arena);
  outer.push_back(1);
  {
    ArenaScope inner_scope(arena);
    ArenaVec<int> inner(arena);
    for (int i = 0; i < 100; ++i) inner.push_back(100 + i);
    EXPECT_EQ(inner.size(), 100u);
    EXPECT_EQ(outer[0], 1);
  }
  outer.push_back(2);  // allocates from the rewound region, still valid
  EXPECT_EQ(outer[0], 1);
  EXPECT_EQ(outer[1], 2);
}

}  // namespace
}  // namespace repli::util
