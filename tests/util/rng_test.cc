#include "util/rng.hh"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/assert.hh"

#include <set>
#include <vector>

namespace repli::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(Rng, UniformDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(3, 3), 3);
}

TEST(Rng, UniformCoversAllValuesInSmallRange) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(0, 3));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Rng, UniformRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2, 1), InvariantViolation);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRoughlyMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(250.0);
  EXPECT_NEAR(sum / n, 250.0, 10.0);
}

TEST(Rng, ExponentialNonPositiveMeanIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.exponential(0.0), 0.0);
  EXPECT_EQ(rng.exponential(-5.0), 0.0);
}

TEST(Rng, SplitIsIndependentButDeterministic) {
  Rng a(99), b(99);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
  // Parent stream continues identically after the split.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Zipf, UniformWhenThetaZero) {
  Rng rng(23);
  Zipf zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(Zipf, SkewedTowardsLowRanks) {
  Rng rng(29);
  Zipf zipf(100, 0.99);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], counts[99] * 10);
}

TEST(Zipf, SamplesInDomain) {
  Rng rng(31);
  Zipf zipf(10, 0.5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.sample(rng), 10u);
}

TEST(Zipf, RejectsEmptyDomain) { EXPECT_THROW(Zipf(0, 1.0), InvariantViolation); }

}  // namespace
}  // namespace repli::util
