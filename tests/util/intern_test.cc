#include "util/intern.hh"

#include <gtest/gtest.h>

#include <string>

#include "util/assert.hh"

namespace repli::util {
namespace {

TEST(Interner, AssignsDenseFirstSeenIds) {
  Interner in;
  EXPECT_EQ(in.intern("alpha"), 0u);
  EXPECT_EQ(in.intern("beta"), 1u);
  EXPECT_EQ(in.intern("alpha"), 0u);  // stable on re-intern
  EXPECT_EQ(in.intern("gamma"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(Interner, FindDoesNotIntern) {
  Interner in;
  in.intern("present");
  EXPECT_EQ(in.find("present"), 0u);
  EXPECT_EQ(in.find("absent"), Interner::kNoId);
  EXPECT_EQ(in.size(), 1u);  // find() must not grow the table
}

TEST(Interner, DeInternsRoundTrip) {
  Interner in;
  const std::string names[] = {"k0", "", "a much longer key name than the others"};
  for (const auto& name : names) {
    const auto id = in.intern(name);
    EXPECT_EQ(in.str(id), name);
  }
  EXPECT_THROW(in.str(99), InvariantViolation);
}

TEST(Interner, IdsStayValidAcrossGrowth) {
  // The id->string vector reallocates as it grows; ids and map lookups must
  // survive that (the map owns its keys, not views into the vector).
  Interner in;
  for (int i = 0; i < 10000; ++i) in.intern("key-" + std::to_string(i));
  EXPECT_EQ(in.size(), 10000u);
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const auto id = in.find(key);
    ASSERT_EQ(id, static_cast<Interner::Id>(i));
    ASSERT_EQ(in.str(id), key);
  }
}

}  // namespace
}  // namespace repli::util
