#include "util/metrics.hh"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hh"

namespace repli::util {
namespace {

TEST(Histogram, MeanMinMax) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.001);
  EXPECT_NEAR(h.percentile(95), 95.05, 0.1);
}

TEST(Histogram, SingleSamplePercentiles) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
}

TEST(Histogram, AddAfterReadKeepsAllSamples) {
  Histogram h;
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
}

TEST(Histogram, AddAfterReadResortsBeforePercentiles) {
  Histogram h;
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);  // forces the lazy sort
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 10.0);
}

TEST(Histogram, EmptyAccessorsReturnNan) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(std::isnan(h.mean()));
  EXPECT_TRUE(std::isnan(h.percentile(50)));
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  EXPECT_TRUE(std::isnan(h.stddev()));
}

TEST(Histogram, NamedPercentileShorthands) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.p50(), h.percentile(50));
  EXPECT_DOUBLE_EQ(h.median(), h.p50());
  EXPECT_DOUBLE_EQ(h.p95(), h.percentile(95));
  EXPECT_DOUBLE_EQ(h.p99(), h.percentile(99));
}

TEST(Histogram, PercentileRejectsOutOfRangeQ) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(h.percentile(-1), InvariantViolation);
  EXPECT_THROW(h.percentile(101), InvariantViolation);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.add(3.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

}  // namespace
}  // namespace repli::util
