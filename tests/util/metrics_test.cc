#include "util/metrics.hh"

#include <gtest/gtest.h>

#include "util/assert.hh"

namespace repli::util {
namespace {

TEST(Histogram, MeanMinMax) {
  Histogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(9.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 9.0);
  EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 100.0);
  EXPECT_NEAR(h.percentile(50), 50.5, 0.001);
  EXPECT_NEAR(h.percentile(95), 95.05, 0.1);
}

TEST(Histogram, SingleSamplePercentiles) {
  Histogram h;
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
}

TEST(Histogram, AddAfterReadKeepsAllSamples) {
  Histogram h;
  h.add(5.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  h.add(10.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
}

TEST(Histogram, EmptyAccessorsThrow) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_THROW(h.mean(), InvariantViolation);
  EXPECT_THROW(h.percentile(50), InvariantViolation);
  EXPECT_THROW(h.min(), InvariantViolation);
}

TEST(Histogram, PercentileRejectsOutOfRangeQ) {
  Histogram h;
  h.add(1.0);
  EXPECT_THROW(h.percentile(-1), InvariantViolation);
  EXPECT_THROW(h.percentile(101), InvariantViolation);
}

TEST(Histogram, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 5; ++i) h.add(3.0);
  EXPECT_DOUBLE_EQ(h.stddev(), 0.0);
}

TEST(Metrics, CountersDefaultToZeroAndAccumulate) {
  Metrics m;
  EXPECT_EQ(m.counter("nope"), 0);
  m.incr("msgs");
  m.incr("msgs", 4);
  EXPECT_EQ(m.counter("msgs"), 5);
}

TEST(Metrics, HistogramsAreNamed) {
  Metrics m;
  EXPECT_EQ(m.find_histo("latency"), nullptr);
  m.histo("latency").add(10.0);
  ASSERT_NE(m.find_histo("latency"), nullptr);
  EXPECT_EQ(m.find_histo("latency")->count(), 1u);
}

}  // namespace
}  // namespace repli::util
