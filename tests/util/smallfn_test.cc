#include "util/smallfn.hh"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "util/assert.hh"

namespace repli::util {
namespace {

TEST(SmallFn, CallsInlineLambda) {
  int hits = 0;
  SmallFn fn([&] { ++hits; });
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, EmptyFnThrowsOnCall) {
  SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_THROW(fn(), InvariantViolation);
}

TEST(SmallFn, MoveTransfersOwnership) {
  int hits = 0;
  SmallFn a([&] { ++hits; });
  SmallFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  SmallFn fn([p = std::move(p)] { ++*p; });
  fn();
  SmallFn moved(std::move(fn));
  moved();
}

TEST(SmallFn, LargeCapturesSpillToHeapAndStillRun) {
  std::array<std::uint64_t, 32> big{};  // 256 bytes: well past kInlineBytes
  big[31] = 7;
  std::uint64_t got = 0;
  SmallFn fn([big, &got] { got = big[31]; });
  SmallFn moved(std::move(fn));
  moved();
  EXPECT_EQ(got, 7u);
}

TEST(SmallFn, DestructorRunsCaptures) {
  auto token = std::make_shared<int>(0);
  {
    SmallFn fn([token] {});
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);  // inline capture destroyed

  {
    std::array<std::shared_ptr<int>, 16> many;
    many.fill(token);
    SmallFn fn([many] {});  // heap fallback
    EXPECT_EQ(token.use_count(), 1 + 2 * 16);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFn, AssignmentReplacesAndDestroysOld) {
  auto old_token = std::make_shared<int>(0);
  SmallFn fn([old_token] {});
  EXPECT_EQ(old_token.use_count(), 2);
  int hits = 0;
  fn = SmallFn([&hits] { ++hits; });
  EXPECT_EQ(old_token.use_count(), 1);
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(SmallFn, DeliveryCaptureBudgetIsInline) {
  // The simulator's network-delivery lambda is engineered to fit exactly in
  // kInlineBytes; this pins the budget so a capture added later fails loudly
  // (there is a matching static_assert at the capture site).
  struct Captures {
    void* self;
    std::int32_t from, to;
    std::uint64_t trace_id, parent_span;
    std::int64_t lamport, flow;
    std::shared_ptr<int> msg;
  };
  static_assert(sizeof(Captures) <= SmallFn::kInlineBytes);
}

}  // namespace
}  // namespace repli::util
