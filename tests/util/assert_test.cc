#include "util/assert.hh"

#include <gtest/gtest.h>

namespace repli::util {
namespace {

TEST(Ensure, PassesOnTrue) { EXPECT_NO_THROW(ensure(true, "ok")); }

TEST(Ensure, ThrowsWithMessageOnFalse) {
  try {
    ensure(false, "broken invariant");
    FAIL() << "ensure(false) did not throw";
  } catch (const InvariantViolation& e) {
    EXPECT_STREQ(e.what(), "broken invariant");
  }
}

TEST(Fail, AlwaysThrows) { EXPECT_THROW(fail("unreachable"), InvariantViolation); }

}  // namespace
}  // namespace repli::util
