#include <gtest/gtest.h>

#include <sstream>

#include "obs/export_chrome.hh"
#include "obs/export_stats.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace repli::obs {
namespace {

const JsonValue* find_event(const JsonValue& doc, std::string_view name) {
  const auto* events = doc.find("traceEvents");
  if (events == nullptr) return nullptr;
  for (const auto& ev : events->array) {
    const auto* n = ev.find("name");
    if (n != nullptr && n->str == name) return &ev;
  }
  return nullptr;
}

TEST(ChromeExport, DocumentParsesAndCarriesEverySpan) {
  Tracer t;
  t.record(0, "core/EX", 100, 500, "req-1");
  const auto round = t.begin(1, "gcs/consensus.round", 150, "req-1");
  t.attr(round, "round", "0");
  t.end(round, 400);
  t.instant(1, "gcs/fd.suspect", 300, "", {{"peer", "2"}});

  std::ostringstream os;
  write_chrome_trace(t, os);
  const auto doc = json_parse(os.str());
  ASSERT_TRUE(doc.has_value()) << os.str();
  EXPECT_EQ(doc->find("displayTimeUnit")->str, "ms");

  const auto* ex = find_event(*doc, "core/EX");
  ASSERT_NE(ex, nullptr);
  EXPECT_EQ(ex->find("ph")->str, "X");
  EXPECT_DOUBLE_EQ(ex->find("ts")->number, 100);
  EXPECT_DOUBLE_EQ(ex->find("dur")->number, 400);
  EXPECT_EQ(ex->find("tid")->number, 0);
  EXPECT_EQ(ex->find("cat")->str, "core");
  EXPECT_EQ(ex->find("args")->find("request")->str, "req-1");

  const auto* rnd = find_event(*doc, "gcs/consensus.round");
  ASSERT_NE(rnd, nullptr);
  EXPECT_EQ(rnd->find("args")->find("round")->str, "0");

  const auto* mark = find_event(*doc, "gcs/fd.suspect");
  ASSERT_NE(mark, nullptr);
  EXPECT_EQ(mark->find("ph")->str, "i");
  EXPECT_EQ(mark->find("args")->find("peer")->str, "2");
}

TEST(ChromeExport, EmitsThreadMetadataPerNode) {
  Tracer t;
  t.record(0, "core/EX", 0, 10);
  t.record(3, "core/AC", 0, 10);
  std::ostringstream os;
  write_chrome_trace(t, os);
  const auto doc = json_parse(os.str());
  ASSERT_TRUE(doc.has_value());
  int thread_names = 0;
  bool process_named = false;
  for (const auto& ev : doc->find("traceEvents")->array) {
    const auto* n = ev.find("name");
    if (n == nullptr) continue;
    if (n->str == "thread_name") ++thread_names;
    if (n->str == "process_name") process_named = true;
  }
  EXPECT_TRUE(process_named);
  EXPECT_EQ(thread_names, 2);  // one track per node
}

TEST(ChromeExport, EventsAreTimeSorted) {
  Tracer t;
  t.record(0, "b", 500, 600);
  t.record(0, "a", 100, 200);
  std::ostringstream os;
  write_chrome_trace(t, os);
  const auto doc = json_parse(os.str());
  ASSERT_TRUE(doc.has_value());
  double last_ts = -1;
  for (const auto& ev : doc->find("traceEvents")->array) {
    const auto* ph = ev.find("ph");
    if (ph == nullptr || ph->str == "M") continue;
    EXPECT_GE(ev.find("ts")->number, last_ts);
    last_ts = ev.find("ts")->number;
  }
}

TEST(ChromeExport, OpenSpansAreDrawnToLatest) {
  Tracer t;
  t.begin(0, "gcs/consensus.round", 100);
  t.record(0, "core/EX", 100, 900);  // pushes latest() to 900
  std::ostringstream os;
  write_chrome_trace(t, os);
  const auto doc = json_parse(os.str());
  ASSERT_TRUE(doc.has_value());
  const auto* rnd = find_event(*doc, "gcs/consensus.round");
  ASSERT_NE(rnd, nullptr);
  EXPECT_DOUBLE_EQ(rnd->find("dur")->number, 800);
}

TEST(StatsExport, EveryLineIsValidJson) {
  Registry r;
  r.incr("gcs.abcast.delivered", 7);
  r.counter("db.wal.appends", node_label(2)).incr(3);
  r.gauge("queue.depth").set(1.5);
  for (int i = 1; i <= 4; ++i) r.histogram("db.exec.op_us").observe(i * 100.0);
  r.histogram("empty_histo");  // no samples: percentiles are null, not NaN

  std::ostringstream os;
  write_stats_ndjson(r, os);
  std::istringstream in(os.str());
  std::string line;
  int lines = 0;
  bool saw_labeled = false;
  bool saw_histo = false;
  bool saw_empty = false;
  while (std::getline(in, line)) {
    ++lines;
    const auto doc = json_parse(line);
    ASSERT_TRUE(doc.has_value()) << line;
    const auto& name = doc->find("metric")->str;
    if (name == "db.wal.appends") {
      saw_labeled = true;
      EXPECT_EQ(doc->find("labels")->find("node")->str, "2");
      EXPECT_DOUBLE_EQ(doc->find("value")->number, 3);
    }
    if (name == "db.exec.op_us") {
      saw_histo = true;
      EXPECT_DOUBLE_EQ(doc->find("count")->number, 4);
      EXPECT_DOUBLE_EQ(doc->find("mean")->number, 250.0);
      EXPECT_NE(doc->find("p99"), nullptr);
    }
    if (name == "empty_histo") {
      saw_empty = true;
      EXPECT_TRUE(doc->find("mean")->is(JsonValue::Type::Null));
    }
  }
  EXPECT_EQ(lines, 5);
  EXPECT_TRUE(saw_labeled);
  EXPECT_TRUE(saw_histo);
  EXPECT_TRUE(saw_empty);
}

}  // namespace
}  // namespace repli::obs
