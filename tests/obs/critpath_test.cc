// Critical-path extraction on a hand-built trace: a known span/flow graph
// with exact expected tiling, so the backward walk, the innermost-span
// attribution, the honest Unattributed fallback, and the summary math are
// each pinned independently of any technique implementation.
#include <gtest/gtest.h>

#include "obs/context.hh"
#include "obs/critpath.hh"
#include "obs/trace.hh"

namespace repli::obs {
namespace {

std::uint64_t add_flow(Tracer& t, std::uint64_t trace, NodeId from, NodeId to, Time sent,
                       Time recv, std::int64_t lamport) {
  Flow f;
  f.trace = trace;
  f.from = from;
  f.to = to;
  f.sent = sent;
  f.recv = recv;
  f.lamport_send = lamport;
  f.type = "w.Test";
  const auto id = t.flow(f);
  t.flow_recv_lamport(id, lamport + 1);
  return id;
}

/// One transaction through client 9 -> primary 0 -> replica 1 and back,
/// with a deliberate 20us instrumentation hole on node 0 before the reply.
void record_txn(Tracer& t) {
  const auto trace = t.new_trace_id();
  ContextScope scope{TraceContext{trace, kNoSpan, 0}};
  t.record(9, "core/RE", 0, 10, "r1");
  add_flow(t, trace, 9, 0, 10, 60, 1);        // request
  t.record(0, "db/exec.op", 60, 160, "r1");
  add_flow(t, trace, 0, 1, 160, 220, 2);      // ship writeset
  t.record(1, "db/apply.writeset", 220, 260, "r1");
  add_flow(t, trace, 1, 0, 260, 300, 3);      // ack
  // [300, 320] on node 0: no span — must surface as Unattributed.
  add_flow(t, trace, 0, 9, 320, 380, 4);      // reply
  t.record(9, "core/END", 380, 385, "r1");
}

TEST(CritPath, BackwardWalkTilesTheKnownPathExactly) {
  Tracer t;
  record_txn(t);

  const auto paths = critical_paths(t);
  ASSERT_EQ(paths.size(), 1u);
  const auto& p = paths.front();
  EXPECT_EQ(p.request, "r1");
  EXPECT_EQ(p.client, 9);
  EXPECT_TRUE(p.ok);
  EXPECT_EQ(p.hops, 4);
  EXPECT_EQ(p.total(), 385);
  EXPECT_EQ(p.attributed(), 365);  // everything but the 20us hole

  struct Expect {
    SegmentKind kind;
    NodeId node;
    Time start;
    Time dur;
  };
  const Expect want[] = {
      {SegmentKind::ClientQueue, 9, 0, 10},     // dispatch before the send
      {SegmentKind::NetTransit, 9, 10, 50},     // request on the wire
      {SegmentKind::StorageExec, 0, 60, 100},   // db/exec.op
      {SegmentKind::NetTransit, 0, 160, 60},    // writeset ship
      {SegmentKind::ReplicaApply, 1, 220, 40},  // db/apply.writeset
      {SegmentKind::NetTransit, 1, 260, 40},    // ack
      {SegmentKind::Unattributed, 0, 300, 20},  // the instrumentation hole
      {SegmentKind::NetTransit, 0, 320, 60},    // reply
      {SegmentKind::ClientQueue, 9, 380, 5},    // delivery before core/END closes
  };
  ASSERT_EQ(p.segments.size(), std::size(want));
  Time cursor = p.start;
  for (std::size_t i = 0; i < std::size(want); ++i) {
    const auto& seg = p.segments[i];
    EXPECT_EQ(seg.kind, want[i].kind) << "segment " << i;
    EXPECT_EQ(seg.node, want[i].node) << "segment " << i;
    EXPECT_EQ(seg.start, want[i].start) << "segment " << i;
    EXPECT_EQ(seg.dur, want[i].dur) << "segment " << i;
    EXPECT_EQ(seg.start, cursor) << "segment " << i << ": tiling gap";
    cursor = seg.start + seg.dur;
  }
  EXPECT_EQ(cursor, p.end);
}

TEST(CritPath, FailedTransactionsStayOutOfTheSummary) {
  Tracer t;
  record_txn(t);
  {
    const auto trace = t.new_trace_id();
    ContextScope scope{TraceContext{trace, kNoSpan, 0}};
    t.record(8, "core/RE", 0, 10, "r2");
    const auto end_span = t.record(8, "core/END", 5000, 5001, "r2");
    t.attr(end_span, "ok", "0");  // client timeout
  }

  const auto paths = critical_paths(t);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_FALSE(paths[1].ok);

  const auto sum = summarize(paths);
  EXPECT_EQ(sum.txns, 1u);  // only the committed one
  EXPECT_EQ(sum.total_us, 385);
  EXPECT_EQ(sum.attributed_us, 365);
  EXPECT_NEAR(sum.coverage, 365.0 / 385.0, 1e-9);

  // One stat row per taxonomy kind; net_transit saw 50+60+40+60 = 210us.
  ASSERT_EQ(sum.segments.size(), kSegmentKindCount);
  for (const auto& stat : sum.segments) {
    if (stat.kind == SegmentKind::NetTransit) {
      EXPECT_EQ(stat.txns_touched, 1u);
      EXPECT_EQ(stat.p50_us, 210);
      EXPECT_EQ(stat.max_us, 210);
      EXPECT_DOUBLE_EQ(stat.mean_us, 210.0);
    }
  }
}

TEST(CritPath, DroppedFlowsAreNeverFollowed) {
  Tracer t;
  const auto trace = t.new_trace_id();
  ContextScope scope{TraceContext{trace, kNoSpan, 0}};
  t.record(9, "core/RE", 0, 10, "r1");
  // The message never got a delivery lamport (dropped in flight): the walk
  // must not hop it, leaving the whole server time unattributed instead of
  // inventing a causal chain.
  Flow f;
  f.trace = trace;
  f.from = 0;
  f.to = 9;
  f.sent = 50;
  f.recv = 90;
  f.lamport_send = 1;
  f.type = "w.Test";
  t.flow(f);
  t.record(9, "core/END", 100, 101, "r1");

  const auto paths = critical_paths(t);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths.front().hops, 0);
  EXPECT_EQ(paths.front().attributed(), 0);
}

TEST(CritPath, ClassifierCoversTheInstrumentationVocabulary) {
  EXPECT_EQ(classify_span_name("db/lock.wait"), SegmentKind::LockWait);
  EXPECT_EQ(classify_span_name("db/exec.op"), SegmentKind::StorageExec);
  EXPECT_EQ(classify_span_name("db/wal.flush"), SegmentKind::StorageExec);
  EXPECT_EQ(classify_span_name("db/apply.writeset"), SegmentKind::ReplicaApply);
  EXPECT_EQ(classify_span_name("core/queue.wait"), SegmentKind::SubmitWait);
  EXPECT_EQ(classify_span_name("gcs/abcast.submit"), SegmentKind::SubmitWait);
  EXPECT_EQ(classify_span_name("gcs/abcast.order"), SegmentKind::Ordering);
  EXPECT_EQ(classify_span_name("gcs/consensus.round"), SegmentKind::Ordering);
  EXPECT_EQ(classify_span_name("gcs/link.retransmit"), SegmentKind::Retransmit);
  EXPECT_EQ(classify_span_name("core/client.retry"), SegmentKind::Retransmit);
  EXPECT_EQ(classify_span_name("core/lock.retry_backoff"), SegmentKind::Retransmit);
  EXPECT_EQ(classify_span_name("core/group_commit"), SegmentKind::CommitFanin);
  EXPECT_EQ(classify_span_name("core/ac.ship"), SegmentKind::CommitFanin);
  EXPECT_EQ(classify_span_name("core/AC"), SegmentKind::CommitFanin);
  EXPECT_EQ(classify_span_name("core/SC"), SegmentKind::Ordering);
  EXPECT_EQ(classify_span_name("core/EX"), SegmentKind::StorageExec);
  EXPECT_EQ(classify_span_name("something/else"), SegmentKind::Other);
}

}  // namespace
}  // namespace repli::obs
