#include "obs/json.hh"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "util/assert.hh"

namespace repli::obs {
namespace {

std::string write_doc(const std::function<void(JsonWriter&)>& fn) {
  std::ostringstream os;
  JsonWriter w(os);
  fn(w);
  EXPECT_TRUE(w.done());
  return os.str();
}

TEST(JsonWriter, ObjectWithMixedValues) {
  const auto doc = write_doc([](JsonWriter& w) {
    w.begin_object();
    w.field("name", "run-1");
    w.field("count", 42);
    w.field("ratio", 0.5);
    w.field("ok", true);
    w.key("missing").null();
    w.end_object();
  });
  EXPECT_EQ(doc, R"({"name":"run-1","count":42,"ratio":0.5,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedArraysGetCommasRight) {
  const auto doc = write_doc([](JsonWriter& w) {
    w.begin_array();
    w.value(1);
    w.begin_array();
    w.value(2);
    w.value(3);
    w.end_array();
    w.begin_object().end_object();
    w.end_array();
  });
  EXPECT_EQ(doc, "[1,[2,3],{}]");
}

TEST(JsonWriter, NanAndInfinityBecomeNull) {
  const auto doc = write_doc([](JsonWriter& w) {
    w.begin_array();
    w.value(std::nan(""));
    w.value(std::numeric_limits<double>::infinity());
    w.value(1.5);
    w.end_array();
  });
  EXPECT_EQ(doc, "[null,null,1.5]");
}

TEST(JsonWriter, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriter, ValueWithoutKeyInObjectTrips) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  EXPECT_THROW(w.value(1), util::InvariantViolation);
}

TEST(JsonParser, RoundTripsWriterOutput) {
  const auto doc = write_doc([](JsonWriter& w) {
    w.begin_object();
    w.field("bench", "perf_workloads");
    w.key("rows").begin_array();
    w.begin_object();
    w.field("technique", "active replication");
    w.field("p99", 1234.5);
    w.field("converged", true);
    w.end_object();
    w.end_array();
    w.end_object();
  });
  const auto parsed = json_parse(doc);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->is(JsonValue::Type::Object));
  EXPECT_EQ(parsed->find("bench")->str, "perf_workloads");
  const auto* rows = parsed->find("rows");
  ASSERT_NE(rows, nullptr);
  ASSERT_EQ(rows->array.size(), 1u);
  EXPECT_DOUBLE_EQ(rows->array[0].find("p99")->number, 1234.5);
  EXPECT_TRUE(rows->array[0].find("converged")->boolean);
}

TEST(JsonParser, HandlesEscapesAndUnicode) {
  const auto parsed = json_parse(R"({"s":"a\"\\\nA"})");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("s")->str, "a\"\\\nA");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse("[1,]").has_value());
  EXPECT_FALSE(json_parse("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(json_parse("nul").has_value());
  EXPECT_FALSE(json_parse("\"unterminated").has_value());
}

TEST(JsonParser, ParsesNumbersStrictly) {
  EXPECT_DOUBLE_EQ(json_parse("-12.5e2")->number, -1250.0);
  EXPECT_FALSE(json_parse("1.2.3").has_value());
}

}  // namespace
}  // namespace repli::obs
