// HealthMonitor unit tests: staleness sampling against the version
// frontier, divergence window bookkeeping, abort attribution, and the
// failover timeline state machine — plus their mirrored metrics.
#include <gtest/gtest.h>

#include "obs/metrics.hh"
#include "obs/monitor.hh"
#include "obs/trace.hh"

namespace repli::obs {
namespace {

TEST(HealthMonitor, StalenessLagIsDistanceBehindFrontier) {
  HealthMonitor mon;
  mon.sample_versions(100, {{0, 10}, {1, 8}, {2, 10}});
  ASSERT_EQ(mon.staleness().size(), 3u);
  EXPECT_EQ(mon.staleness()[0].version_lag, 0u);
  EXPECT_EQ(mon.staleness()[1].version_lag, 2u);
  EXPECT_EQ(mon.staleness()[2].version_lag, 0u);
  EXPECT_EQ(mon.staleness()[0].age, 0);
}

TEST(HealthMonitor, StalenessAgeGrowsWhileReplicaStaysBehind) {
  HealthMonitor mon;
  mon.sample_versions(100, {{0, 10}, {1, 8}});
  mon.sample_versions(300, {{0, 10}, {1, 8}});
  // Node 1 has been missing state since the frontier hit 10 at t=100.
  const auto& late = mon.staleness().back();
  EXPECT_EQ(late.node, 1);
  EXPECT_EQ(late.version_lag, 2u);
  EXPECT_EQ(late.age, 200);
}

TEST(HealthMonitor, StalenessP95OverAllSamples) {
  HealthMonitor mon;
  for (int i = 0; i < 19; ++i) mon.sample_versions(i, {{0, 5}, {1, 5}});
  mon.sample_versions(100, {{0, 9}, {1, 5}});
  EXPECT_EQ(mon.staleness_p95_versions(), 0u);  // one laggy sample out of 40
  mon.sample_versions(101, {{0, 9}, {1, 5}});
  mon.sample_versions(102, {{0, 9}, {1, 5}});
  EXPECT_EQ(mon.staleness().back().version_lag, 4u);
}

TEST(HealthMonitor, StalenessMirroredAsPerNodeHistograms) {
  Registry registry;
  HealthMonitor mon;
  mon.bind(nullptr, &registry);
  mon.sample_versions(100, {{0, 10}, {1, 7}});
  const auto* lag = registry.find_histogram("monitor.staleness_versions", node_label(1));
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->data().max(), 3.0);
  ASSERT_NE(registry.find_histogram("monitor.staleness_age_us", node_label(0)), nullptr);
}

TEST(HealthMonitor, DivergenceWindowOpensAndCloses) {
  Registry registry;
  Tracer tracer;
  HealthMonitor mon;
  mon.bind(&tracer, &registry);

  mon.digest_sample(10, {{0, 111}, {1, 111}});
  EXPECT_FALSE(mon.diverged_now());
  EXPECT_TRUE(mon.divergence_windows().empty());

  mon.digest_sample(20, {{0, 111}, {1, 222}});
  EXPECT_TRUE(mon.diverged_now());
  mon.digest_sample(30, {{0, 333}, {1, 222}});  // still diverged: same window
  ASSERT_EQ(mon.divergence_windows().size(), 1u);
  EXPECT_TRUE(mon.divergence_windows().front().open());

  mon.digest_sample(50, {{0, 333}, {1, 333}});
  EXPECT_FALSE(mon.diverged_now());
  EXPECT_EQ(mon.divergence_windows().front().end, 50);

  EXPECT_EQ(registry.counter_value("monitor.divergence_windows"), 1);
  const auto* h = registry.find_histogram("monitor.divergence_window_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data().max(), 30.0);  // 50 - 20
  EXPECT_EQ(tracer.named("mon/divergence.start").size(), 1u);
  EXPECT_EQ(tracer.named("mon/divergence.end").size(), 1u);
}

TEST(HealthMonitor, AbortAttributionByCause) {
  Registry registry;
  HealthMonitor mon;
  mon.bind(nullptr, &registry);
  mon.abort_event(0, 10, AbortCause::Certification, "t1", "writeset-conflict");
  mon.abort_event(1, 20, AbortCause::Certification, "t2");
  mon.abort_event(2, 30, AbortCause::Deadlock, "t3", "wait-die");
  EXPECT_EQ(mon.aborts().size(), 3u);
  EXPECT_EQ(mon.aborts_by(AbortCause::Certification), 2u);
  EXPECT_EQ(mon.aborts_by(AbortCause::Deadlock), 1u);
  EXPECT_EQ(mon.aborts_by(AbortCause::Timeout), 0u);
  EXPECT_EQ(registry.counter("monitor.aborts", label("cause", "certification")).value(), 2);
  EXPECT_EQ(registry.counter("monitor.aborts", label("cause", "deadlock")).value(), 1);
}

TEST(HealthMonitor, FailoverTimelineSuspectPromoteCommit) {
  Registry registry;
  Tracer tracer;
  HealthMonitor mon;
  mon.bind(&tracer, &registry);

  mon.suspected(0, 1, 1000);
  mon.suspected(0, 2, 1100);  // duplicate suspicion of the same node: folded
  ASSERT_EQ(mon.failovers().size(), 1u);
  EXPECT_FALSE(mon.failovers().front().complete());

  mon.committed(1, 1200);  // not promoted yet: must not close the timeline
  mon.promoted(1, 1500);
  mon.committed(2, 1600);  // some other node's commit: ignored
  EXPECT_FALSE(mon.failovers().front().complete());

  mon.committed(1, 2000);
  const auto& timeline = mon.failovers().front();
  EXPECT_TRUE(timeline.complete());
  EXPECT_EQ(timeline.failed, 0);
  EXPECT_EQ(timeline.new_primary, 1);
  EXPECT_EQ(timeline.duration(), 1000);  // suspicion at 1000 -> commit at 2000

  mon.committed(1, 3000);  // later commits leave the closed timeline alone
  EXPECT_EQ(mon.failovers().front().first_commit_at, 2000);

  const auto* h = registry.find_histogram("monitor.failover_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data().count(), 1u);
  EXPECT_EQ(h->data().max(), 1000.0);
  EXPECT_EQ(tracer.named("mon/failover.suspected").size(), 1u);
  EXPECT_EQ(tracer.named("mon/failover.promoted").size(), 1u);
  EXPECT_EQ(tracer.named("mon/failover.first_commit").size(), 1u);
}

TEST(HealthMonitor, PromotionWithoutSuspicionIsIgnored) {
  HealthMonitor mon;
  // Ordinary view installs promote a primary with no failure in sight; the
  // monitor must not invent a failover timeline for them.
  mon.promoted(0, 100);
  mon.committed(0, 200);
  EXPECT_TRUE(mon.failovers().empty());
}

}  // namespace
}  // namespace repli::obs
