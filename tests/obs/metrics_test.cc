#include "obs/metrics.hh"

#include <gtest/gtest.h>

namespace repli::obs {
namespace {

TEST(Registry, CountersAccumulatePerLabelSet) {
  Registry r;
  r.counter("db.wal.appends", node_label(0)).incr();
  r.counter("db.wal.appends", node_label(0)).incr(4);
  r.counter("db.wal.appends", node_label(1)).incr(2);
  EXPECT_EQ(r.counter("db.wal.appends", node_label(0)).value(), 5);
  EXPECT_EQ(r.counter("db.wal.appends", node_label(1)).value(), 2);
}

TEST(Registry, CounterValueSumsAcrossLabels) {
  Registry r;
  r.counter("net.dropped_by_reason", label("reason", "loss")).incr(3);
  r.counter("net.dropped_by_reason", label("reason", "partition")).incr(2);
  EXPECT_EQ(r.counter_value("net.dropped_by_reason"), 5);
  EXPECT_EQ(r.counter_value("absent"), 0);
}

TEST(Registry, IncrConvenienceHitsTheUnlabeledCounter) {
  Registry r;
  r.incr("optimistic.hits");
  r.incr("optimistic.hits", 2);
  EXPECT_EQ(r.counter_value("optimistic.hits"), 3);
}

TEST(Registry, LabelsAreSortedSoOrderDoesNotSplitSeries) {
  Registry r;
  r.counter("m", {{"b", "2"}, {"a", "1"}}).incr();
  r.counter("m", {{"a", "1"}, {"b", "2"}}).incr();
  EXPECT_EQ(r.counter_value("m"), 2);
  EXPECT_EQ(r.counters().size(), 1u);
}

TEST(Registry, GaugesKeepTheLastSetPoint) {
  Registry r;
  r.gauge("queue.depth").set(4);
  r.gauge("queue.depth").set(7);
  EXPECT_DOUBLE_EQ(r.gauge("queue.depth").value(), 7);
}

TEST(Registry, HistogramsObserveAndExposePercentiles) {
  Registry r;
  for (int i = 1; i <= 100; ++i) {
    r.histogram("db.lock.wait_us").observe(static_cast<double>(i));
  }
  const auto* h = r.find_histogram("db.lock.wait_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data().count(), 100u);
  EXPECT_NEAR(h->data().p50(), 50.5, 0.001);
  EXPECT_NEAR(h->data().p99(), 99.01, 0.1);
}

TEST(Registry, FindHistogramIsExactMatch) {
  Registry r;
  r.histogram("lat", node_label(3)).observe(1.0);
  EXPECT_EQ(r.find_histogram("lat"), nullptr);
  EXPECT_NE(r.find_histogram("lat", node_label(3)), nullptr);
}

TEST(Registry, ClearEmptiesEverything) {
  Registry r;
  r.incr("a");
  r.gauge("b").set(1);
  r.histogram("c").observe(1);
  r.clear();
  EXPECT_TRUE(r.counters().empty());
  EXPECT_TRUE(r.gauges().empty());
  EXPECT_TRUE(r.histograms().empty());
}

}  // namespace
}  // namespace repli::obs
