#include "obs/metrics.hh"

#include <gtest/gtest.h>

#include <cmath>

namespace repli::obs {
namespace {

TEST(Registry, CountersAccumulatePerLabelSet) {
  Registry r;
  r.counter("db.wal.appends", node_label(0)).incr();
  r.counter("db.wal.appends", node_label(0)).incr(4);
  r.counter("db.wal.appends", node_label(1)).incr(2);
  EXPECT_EQ(r.counter("db.wal.appends", node_label(0)).value(), 5);
  EXPECT_EQ(r.counter("db.wal.appends", node_label(1)).value(), 2);
}

TEST(Registry, CounterValueSumsAcrossLabels) {
  Registry r;
  r.counter("net.dropped_by_reason", label("reason", "loss")).incr(3);
  r.counter("net.dropped_by_reason", label("reason", "partition")).incr(2);
  EXPECT_EQ(r.counter_value("net.dropped_by_reason"), 5);
  EXPECT_EQ(r.counter_value("absent"), 0);
}

TEST(Registry, IncrConvenienceHitsTheUnlabeledCounter) {
  Registry r;
  r.incr("optimistic.hits");
  r.incr("optimistic.hits", 2);
  EXPECT_EQ(r.counter_value("optimistic.hits"), 3);
}

TEST(Registry, LabelsAreSortedSoOrderDoesNotSplitSeries) {
  Registry r;
  r.counter("m", {{"b", "2"}, {"a", "1"}}).incr();
  r.counter("m", {{"a", "1"}, {"b", "2"}}).incr();
  EXPECT_EQ(r.counter_value("m"), 2);
  EXPECT_EQ(r.counters().size(), 1u);
}

TEST(Registry, GaugesKeepTheLastSetPoint) {
  Registry r;
  r.gauge("queue.depth").set(4);
  r.gauge("queue.depth").set(7);
  EXPECT_DOUBLE_EQ(r.gauge("queue.depth").value(), 7);
}

TEST(Registry, HistogramsObserveAndExposePercentiles) {
  Registry r;
  for (int i = 1; i <= 100; ++i) {
    r.histogram("db.lock.wait_us").observe(static_cast<double>(i));
  }
  const auto* h = r.find_histogram("db.lock.wait_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->data().count(), 100u);
  EXPECT_NEAR(h->data().p50(), 50.5, 0.001);
  EXPECT_NEAR(h->data().p99(), 99.01, 0.1);
}

TEST(Registry, FindHistogramIsExactMatch) {
  Registry r;
  r.histogram("lat", node_label(3)).observe(1.0);
  EXPECT_EQ(r.find_histogram("lat"), nullptr);
  EXPECT_NE(r.find_histogram("lat", node_label(3)), nullptr);
}

TEST(Registry, ClearEmptiesEverything) {
  Registry r;
  r.incr("a");
  r.gauge("b").set(1);
  r.histogram("c").observe(1);
  r.clear();
  EXPECT_TRUE(r.counters().empty());
  EXPECT_TRUE(r.gauges().empty());
  EXPECT_TRUE(r.histograms().empty());
}

// -- degenerate histogram summaries ------------------------------------------
//
// util::Histogram returns NaN percentiles on empty data (and the NDJSON
// export pins null for those); summarize() is the consumer-facing wrapper
// that must never hand NaN to arithmetic like the regression gate.

TEST(Summarize, EmptyHistogramIsDefinedFalseWithZeroes) {
  util::Histogram h;
  const HistogramSummary s = summarize(h);
  EXPECT_FALSE(s.defined);
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 0);
  EXPECT_EQ(s.p50, 0);
  EXPECT_EQ(s.p95, 0);
  EXPECT_EQ(s.p99, 0);
  EXPECT_EQ(s.stddev, 0);
}

TEST(Summarize, SingleSampleCollapsesEveryPercentileToIt) {
  util::Histogram h;
  h.add(42.5);
  const HistogramSummary s = summarize(h);
  EXPECT_TRUE(s.defined);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.5);
  EXPECT_DOUBLE_EQ(s.min, 42.5);
  EXPECT_DOUBLE_EQ(s.max, 42.5);
  EXPECT_DOUBLE_EQ(s.p50, 42.5);
  EXPECT_DOUBLE_EQ(s.p95, 42.5);
  EXPECT_DOUBLE_EQ(s.p99, 42.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Summarize, TwoSamplesStayFinite) {
  util::Histogram h;
  h.add(10);
  h.add(20);
  const HistogramSummary s = summarize(h);
  EXPECT_TRUE(s.defined);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 15);
  EXPECT_DOUBLE_EQ(s.min, 10);
  EXPECT_DOUBLE_EQ(s.max, 20);
  EXPECT_GE(s.p50, 10);
  EXPECT_LE(s.p99, 20);
  EXPECT_TRUE(std::isfinite(s.stddev));
}

TEST(Summarize, RegistryHistogramRoundTrips) {
  Registry r;
  const HistogramSummary empty = summarize(r.histogram("queue.sim_events").data());
  EXPECT_FALSE(empty.defined);
  r.histogram("queue.sim_events").observe(7);
  const HistogramSummary one = summarize(r.histogram("queue.sim_events").data());
  EXPECT_TRUE(one.defined);
  EXPECT_DOUBLE_EQ(one.p95, 7);
}

}  // namespace
}  // namespace repli::obs
