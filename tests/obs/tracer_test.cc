#include "obs/trace.hh"

#include <gtest/gtest.h>

namespace repli::obs {
namespace {

TEST(Tracer, BeginEndRecordsAnInterval) {
  Tracer t;
  const auto id = t.begin(0, "gcs/consensus.round", 100, "req-1");
  t.end(id, 250);
  const auto* span = t.find(id);
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->start, 100);
  EXPECT_EQ(span->end, 250);
  EXPECT_FALSE(span->open);
  EXPECT_EQ(span->request, "req-1");
}

TEST(Tracer, ContainmentResolvesParent) {
  Tracer t;
  const auto outer = t.record(0, "core/EX", 100, 500);
  const auto inner = t.record(0, "db/exec.op", 200, 300);
  EXPECT_EQ(t.parent_of(inner), outer);
  EXPECT_EQ(t.parent_of(outer), kNoSpan);
}

TEST(Tracer, SmallestEnclosingSpanWins) {
  Tracer t;
  const auto wide = t.record(0, "core/AC", 0, 1000);
  const auto mid = t.record(0, "gcs/consensus.round", 100, 600);
  const auto leaf = t.record(0, "db/exec.op", 200, 300);
  EXPECT_EQ(t.parent_of(leaf), mid);
  EXPECT_EQ(t.parent_of(mid), wide);
}

TEST(Tracer, ContainmentIsPerNode) {
  Tracer t;
  t.record(1, "core/EX", 0, 1000);
  const auto other = t.record(2, "db/exec.op", 200, 300);
  EXPECT_EQ(t.parent_of(other), kNoSpan);  // enclosing span is on another node
}

TEST(Tracer, IdenticalIntervalsNestUnderEarlierRecorded) {
  // Common in a discrete-event sim: no simulated time passes inside one
  // handler, so the phase and its sub-span share [t, t]. The span recorded
  // first is the semantic parent.
  Tracer t;
  const auto phase = t.record(0, "core/EX", 400, 400);
  const auto op = t.record(0, "db/exec.op", 400, 400);
  EXPECT_EQ(t.parent_of(op), phase);
}

TEST(Tracer, ZeroWidthSpanAtIntervalEndNests) {
  Tracer t;
  const auto outer = t.record(0, "core/AC", 100, 400);
  const auto flush = t.record(0, "db/wal.flush", 400, 400);
  EXPECT_EQ(t.parent_of(flush), outer);
}

TEST(Tracer, ExplicitParentOverridesContainment) {
  Tracer t;
  const auto a = t.record(0, "core/EX", 0, 1000);
  const auto b = t.record(0, "core/AC", 2000, 3000);
  const auto child = t.record(0, "db/exec.op", 100, 200);
  EXPECT_EQ(t.parent_of(child), a);
  t.set_parent(child, b);
  EXPECT_EQ(t.parent_of(child), b);
}

TEST(Tracer, InstantsNestButNeverParent) {
  Tracer t;
  const auto outer = t.record(0, "core/SC", 100, 500);
  const auto mark = t.instant(0, "gcs/fd.suspect", 300);
  const auto interval = t.record(0, "gcs/abcast.order", 300, 350);
  EXPECT_EQ(t.parent_of(interval), outer);  // never the instant
  // The mark itself nests under the smallest enclosing interval.
  EXPECT_EQ(t.parent_of(mark), interval);
  const auto lone_mark = t.instant(0, "net/drop", 450);
  EXPECT_EQ(t.parent_of(lone_mark), outer);
}

TEST(Tracer, HasAncestorNamedWalksUpThePrefixes) {
  Tracer t;
  t.record(0, "core/EX", 0, 1000);
  const auto round = t.record(0, "gcs/consensus.round", 100, 800);
  const auto op = t.record(0, "db/exec.op", 200, 300);
  EXPECT_TRUE(t.has_ancestor_named(op, "gcs/consensus"));
  EXPECT_TRUE(t.has_ancestor_named(op, "core/"));
  EXPECT_TRUE(t.has_ancestor_named(round, "core/EX"));
  EXPECT_FALSE(t.has_ancestor_named(round, "db/"));
}

TEST(Tracer, ChildrenOfListsDirectChildrenOnly) {
  Tracer t;
  const auto root = t.record(0, "core/AC", 0, 1000);
  const auto mid = t.record(0, "gcs/consensus.round", 100, 900);
  t.record(0, "db/exec.op", 200, 300);  // grandchild of root
  const auto kids = t.children_of(root);
  ASSERT_EQ(kids.size(), 1u);
  EXPECT_EQ(kids.front(), mid);
}

TEST(Tracer, CloseOpenEndsEverythingStillRunning) {
  Tracer t;
  const auto a = t.begin(0, "gcs/consensus.round", 100);
  const auto b = t.begin(1, "db/lock.wait", 150);
  t.close_open(700);
  EXPECT_FALSE(t.find(a)->open);
  EXPECT_EQ(t.find(a)->end, 700);
  EXPECT_EQ(t.find(b)->end, 700);
}

TEST(Tracer, AttrsAccumulate) {
  Tracer t;
  const auto id = t.begin(0, "gcs/consensus.round", 0);
  t.attr(id, "round", "1");
  t.attr(id, "outcome", "decided");
  t.end(id, 10);
  const auto& attrs = t.find(id)->attrs;
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].first, "round");
  EXPECT_EQ(attrs[1].second, "decided");
}

TEST(Tracer, NamedFiltersByPrefix) {
  Tracer t;
  t.record(0, "db/lock.wait", 0, 10);
  t.record(0, "db/wal.flush", 5, 10);
  t.record(0, "core/EX", 0, 20);
  EXPECT_EQ(t.named("db/").size(), 2u);
  EXPECT_EQ(t.named("db/wal").size(), 1u);
  EXPECT_EQ(t.named("net/").size(), 0u);
}

TEST(Tracer, ResolveIsStableAcrossLaterInserts) {
  Tracer t;
  const auto outer = t.record(0, "core/EX", 0, 100);
  const auto in1 = t.record(0, "db/exec.op", 10, 20);
  EXPECT_EQ(t.parent_of(in1), outer);  // forces a resolve
  const auto in2 = t.record(0, "db/exec.op", 30, 40);
  EXPECT_EQ(t.parent_of(in2), outer);  // re-resolves after the insert
  EXPECT_EQ(t.parent_of(in1), outer);
}

}  // namespace
}  // namespace repli::obs
